#include "apps/producer_consumer.hpp"

#include <memory>

#include "apps/payload.hpp"

namespace snoc::apps {

ProducerIp::ProducerIp(TileId consumer_tile, std::size_t item_count, Round interval)
    : consumer_(consumer_tile), item_count_(item_count), interval_(interval) {
    SNOC_EXPECT(interval >= 1);
}

void ProducerIp::on_round(TileContext& ctx) {
    if (next_item_ >= item_count_) return;
    if (ctx.round() % interval_ != 0) return;
    PayloadWriter w;
    w.put<std::uint64_t>(next_item_);
    ctx.send(consumer_, kItemTag, w.take());
    ++next_item_;
}

void ConsumerIp::on_message(const Message& message, TileContext& ctx) {
    if (message.tag != kItemTag) return;
    PayloadReader r(message.payload);
    received_items_.push_back(r.get<std::uint64_t>());
    arrival_rounds_.push_back(ctx.round());
}

ConsumerIp& make_producer_consumer(GossipNetwork& net, TileId producer_tile,
                                   TileId consumer_tile, std::size_t items,
                                   Round interval) {
    net.attach(producer_tile,
               std::make_unique<ProducerIp>(consumer_tile, items, interval));
    auto consumer = std::make_unique<ConsumerIp>(items);
    ConsumerIp& ref = *consumer;
    net.attach(consumer_tile, std::move(consumer));
    return ref;
}

} // namespace snoc::apps
