// Round-robin bus arbitration.  "Because a bus is a shared communication
// channel, it requires arbitration in order to ensure the mutual exclusion
// between the components accessing the channel" (Ch. 1).  The rotating
// priority guarantees starvation freedom: a requester waits at most
// (n - 1) grants.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/expect.hpp"

namespace snoc {

class RoundRobinArbiter {
public:
    explicit RoundRobinArbiter(std::size_t modules) : modules_(modules) {
        SNOC_EXPECT(modules > 0);
    }

    /// Grant the bus to the requesting module closest (cyclically) after
    /// the previous grant.  Returns nullopt when nobody requests.
    std::optional<std::size_t> grant(const std::vector<bool>& requests) {
        SNOC_EXPECT(requests.size() == modules_);
        for (std::size_t i = 0; i < modules_; ++i) {
            const std::size_t candidate = (last_ + 1 + i) % modules_;
            if (requests[candidate]) {
                last_ = candidate;
                return candidate;
            }
        }
        return std::nullopt;
    }

    std::size_t module_count() const { return modules_; }

private:
    std::size_t modules_;
    std::size_t last_{0};
};

} // namespace snoc
