#include <thread>
// BAD: std::thread in simulator code outside src/common/ — thread
// lifecycles belong to the ThreadPool.
namespace snoc {
void fire_and_forget() {
    std::thread worker([] {});
    worker.join();
}
} // namespace snoc
