# Empty dependencies file for snoc_diversity.
# This may be replaced when dependencies are built.
