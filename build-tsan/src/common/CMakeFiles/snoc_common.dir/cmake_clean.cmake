file(REMOVE_RECURSE
  "CMakeFiles/snoc_common.dir/cli.cpp.o"
  "CMakeFiles/snoc_common.dir/cli.cpp.o.d"
  "CMakeFiles/snoc_common.dir/parallel.cpp.o"
  "CMakeFiles/snoc_common.dir/parallel.cpp.o.d"
  "CMakeFiles/snoc_common.dir/stats.cpp.o"
  "CMakeFiles/snoc_common.dir/stats.cpp.o.d"
  "CMakeFiles/snoc_common.dir/table.cpp.o"
  "CMakeFiles/snoc_common.dir/table.cpp.o.d"
  "libsnoc_common.a"
  "libsnoc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snoc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
