// Run manifests: a small JSON file written next to every exported
// artifact so no result is ever unattributable.  It records what produced
// the artifact (program, experiment, backend), how to reproduce it (full
// config echo, seeds, repeats, jobs) and what code produced it (git SHA,
// SNOC_CHECK level) — everything needed to regenerate or disqualify a
// figure months later.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace snoc {

struct RunManifest {
    std::string program;    ///< binary / bench that ran (e.g. "fig4_4").
    std::string experiment; ///< ExperimentSpec name or scenario label.
    std::string backend;    ///< interconnect backend name, if one applies.
    std::uint64_t base_seed{0};
    std::size_t repeats{1};
    std::size_t jobs{0};
    /// Config echo, key -> value, in insertion order (GossipConfig fields,
    /// FaultScenario description, sweep axes, ...).
    std::vector<std::pair<std::string, std::string>> config;
    /// Paths of the artifacts this manifest attributes.
    std::vector<std::string> artifacts;
};

/// The manifest as a JSON document (schema_version, provenance fields —
/// git SHA captured at configure time, SNOC_CHECK_LEVEL — then the echo).
std::string manifest_json(const RunManifest& manifest);

void write_manifest(const RunManifest& manifest, std::ostream& os);
void write_manifest(const RunManifest& manifest, const std::string& path);

/// The git SHA baked into this build ("unknown" outside a git checkout).
const char* build_git_sha();

/// `path` with its extension replaced by ".manifest.json"
/// ("out/run.jsonl" -> "out/run.manifest.json").
std::string manifest_path_for(const std::string& artifact_path);

} // namespace snoc
