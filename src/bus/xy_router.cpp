#include "bus/xy_router.hpp"

#include <algorithm>

#include "common/expect.hpp"
#include "router/accounting.hpp"
#include "router/policy.hpp"
#include "router/ports.hpp"

namespace snoc {

std::vector<TileId> xy_route(const Topology& mesh, TileId src, TileId dst) {
    return router::dimension_order_path(mesh, src, dst);
}

namespace {

bool path_alive(const Topology& mesh, const std::vector<TileId>& path,
                const CrashState& crashes) {
    for (std::size_t i = 0; i < path.size(); ++i) {
        if (crashes.dead_tiles[path[i]]) return false;
        if (i + 1 < path.size() &&
            crashes.dead_links[router::link_between(mesh, path[i], path[i + 1])])
            return false;
    }
    return true;
}

/// The tile the packet dies at on a dead path: the first dead tile, or
/// the downstream endpoint of the first dead link.
TileId first_dead_tile(const Topology& mesh, const std::vector<TileId>& path,
                       const CrashState& crashes) {
    for (std::size_t i = 0; i < path.size(); ++i) {
        if (crashes.dead_tiles[path[i]]) return path[i];
        if (i + 1 < path.size() &&
            crashes.dead_links[router::link_between(mesh, path[i], path[i + 1])])
            return path[i + 1];
    }
    SNOC_ENSURE(false && "first_dead_tile on a live path");
    return path.back();
}

} // namespace

XyRunResult run_xy_trace(const Topology& mesh, const TrafficTrace& trace,
                         const CrashState& crashes, TraceSink* sink) {
    using router::emit;
    SNOC_EXPECT(crashes.dead_tiles.size() == mesh.node_count());
    SNOC_EXPECT(crashes.dead_links.size() == mesh.link_count());
    XyRunResult result;
    std::vector<std::uint32_t> next_sequence(mesh.node_count(), 0);
    for (const auto& phase : trace.phases) {
        // Rounds accumulate across phases; hop h of this phase happens at
        // round base + h (the per-phase pipeline cost model).
        const auto base = static_cast<Round>(result.rounds);
        std::size_t longest = 0;
        for (const auto& m : phase.messages) {
            const auto path = xy_route(mesh, m.src, m.dst);
            const MessageId id{m.src, next_sequence[m.src]++};
            emit(sink, base, TraceEventKind::MessageCreated, m.src, kNoTile, id);
            if (!path_alive(mesh, path, crashes)) {
                ++result.lost;
                emit(sink, base, TraceEventKind::CrashDrop,
                     first_dead_tile(mesh, path, crashes), kNoTile, id);
                continue;
            }
            ++result.delivered;
            const std::size_t hops = path.size() - 1;
            if (sink) {
                for (std::size_t h = 0; h < hops; ++h)
                    emit(sink, base + static_cast<Round>(h),
                         TraceEventKind::Transmitted, path[h], path[h + 1], id);
                emit(sink, base + static_cast<Round>(hops),
                     TraceEventKind::Delivered, m.dst, kNoTile, id);
            }
            longest = std::max(longest, hops);
            result.hops += hops;
            result.bits += m.bits * hops;
        }
        result.rounds += longest;
    }
    return result;
}

} // namespace snoc
