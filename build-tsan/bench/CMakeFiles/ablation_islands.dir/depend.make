# Empty dependencies file for ablation_islands.
# This may be replaced when dependencies are built.
