// Applies a FaultScenario to a running network: rolls the initial crash
// pattern, scrambles packets on links, forces buffer-overflow drops and
// jitters round durations.  All draws come from dedicated RNG streams so
// fault injection never perturbs the protocol's own randomness.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "fault/fault_model.hpp"
#include "noc/packet.hpp"
#include "noc/topology.hpp"

namespace snoc {

/// The crash pattern rolled for one run.
struct CrashState {
    std::vector<bool> dead_tiles;
    std::vector<bool> dead_links;

    std::size_t dead_tile_count() const;
    std::size_t dead_link_count() const;
};

class FaultInjector {
public:
    FaultInjector(FaultScenario scenario, const RngPool& pool);

    const FaultScenario& scenario() const { return scenario_; }

    /// Roll the initial crash pattern.  Tiles listed in `protected_tiles`
    /// never crash (the thesis replicates *slaves*, but a run where the
    /// unique master or the consumer die has no defined latency; sweep
    /// harnesses may protect those tiles and report completion rates for
    /// the unprotected case separately).
    CrashState roll_crashes(const Topology& topo,
                            const std::vector<TileId>& protected_tiles = {});

    /// Roll a crash pattern with *exactly* k dead tiles chosen uniformly
    /// among unprotected tiles (x-axis of Fig. 4-4 is a defect count).
    CrashState roll_exact_tile_crashes(const Topology& topo, std::size_t k,
                                       const std::vector<TileId>& protected_tiles = {});

    /// Possibly scramble a packet in flight (probability p_upset).
    /// Returns true iff the packet was corrupted.
    bool maybe_upset(Packet& packet);

    /// The gate half of maybe_upset: roll whether this transmission is
    /// upset without touching any bytes.  Pair with apply_upset() — the
    /// engine shares one encoded wire image across a round's port
    /// transmissions and copies the bytes only when a transmission is
    /// actually upset, so the decision must come before the copy.
    /// Draw-for-draw identical to maybe_upset()'s gate.
    bool upset_roll();

    /// The corruption half: scramble wire bytes in place (and count the
    /// upset).  Only call after upset_roll() returned true.
    void apply_upset(std::vector<std::byte>& wire);

    /// True iff this reception should be dropped as a forced buffer
    /// overflow (probability p_overflow).
    bool overflow_drop();

    /// Duration of one round for a given tile: N(t_r, sigma_synchr * t_r),
    /// clamped to be positive.
    double round_duration(double t_r, TileId tile);

    /// Counters for reporting.
    std::size_t upsets_injected() const { return upsets_; }
    std::size_t overflows_forced() const { return overflows_; }

private:
    void corrupt(std::vector<std::byte>& wire);

    FaultScenario scenario_;
    RngStream crash_rng_;
    RngStream upset_rng_;
    RngStream overflow_rng_;
    RngStream synchr_rng_;
    std::size_t upsets_{0};
    std::size_t overflows_{0};
};

} // namespace snoc
