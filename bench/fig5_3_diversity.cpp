// Figure 5-3: on-chip diversity — comparing the three Fig. 5-2
// communication architectures on the acoustic beamforming workload.
//
// Expected shape (thesis, preliminary experiment with [42]): the
// hierarchical NoC has the lowest number of message transmissions (lowest
// power); the flat NoC has slightly better latency than the others; the
// bus-connected NoCs are the least efficient, but ease migration from
// today's bus-based designs.
#include <iostream>

#include "bench_util.hpp"
#include "diversity/architecture.hpp"

int main(int argc, char** argv) {
    using namespace snoc;
    const auto opt = bench::options(argc, argv, 5);
    constexpr std::size_t kFrames = 4;
    const std::vector<diversity::ArchitectureKind> kKinds{
        diversity::ArchitectureKind::FlatNoc,
        diversity::ArchitectureKind::HierarchicalNoc,
        diversity::ArchitectureKind::CentralRouterMesh,
        diversity::ArchitectureKind::BusConnectedNocs};

    // The declarative flavour: one axis enumerating the architectures, a
    // backend factory per cell, the beamforming trace mapped per cell.
    ExperimentSpec spec;
    spec.name = "fig5_3";
    spec.axes = {{"arch", {0, 1, 2, 3}}};
    spec.repeats = opt.repeats;
    spec.base_seed = opt.seed;
    spec.jobs = opt.jobs;
    spec.max_rounds = 20000;
    spec.telemetry = opt.telemetry;
    spec.engine = bench::engine_select(opt);
    spec.backend = [&](const SweepPoint& pt, std::uint64_t seed) {
        return diversity::make_interconnect(kKinds[pt.index_of("arch")],
                                            bench::config_with_p(0.75, 40),
                                            FaultScenario::none(), seed,
                                            spec.engine);
    };
    spec.trace = [&](const SweepPoint& pt) {
        const auto arch =
            diversity::make_architecture(kKinds[pt.index_of("arch")]);
        return diversity::beamforming_trace_for(arch, kFrames);
    };
    const auto cells = ScenarioRunner(spec).run();

    Table table({"architecture", "latency [rounds]", "message transmissions",
                 "completion"});
    double flat_tx = 0.0, hier_tx = 0.0, flat_lat = 0.0, bus_lat = 0.0;
    for (const CellResult& cell : cells) {
        const auto kind = kKinds[cell.point.index_of("arch")];
        const CellStats& s = cell.stats;
        table.add_row({to_string(kind), format_number(s.rounds, 1),
                       format_number(s.transmissions, 0),
                       format_number(100.0 * s.completion_rate, 0) + "%"});
        switch (kind) {
        case diversity::ArchitectureKind::FlatNoc:
            flat_tx = s.transmissions;
            flat_lat = s.rounds;
            break;
        case diversity::ArchitectureKind::HierarchicalNoc:
            hier_tx = s.transmissions;
            break;
        case diversity::ArchitectureKind::BusConnectedNocs:
            bus_lat = s.rounds;
            break;
        case diversity::ArchitectureKind::CentralRouterMesh:
            break; // extension row, not part of the Fig. 5-3 ratios
        }
    }
    bench::emit(table, opt, "Fig. 5-3: on-chip diversity architecture comparison");
    std::cout << "\nflat/hierarchical transmission ratio: "
              << format_number(flat_tx / hier_tx, 2)
              << " (paper: flat highest, hierarchical lowest)\n"
              << "bus/flat latency ratio: " << format_number(bus_lat / flat_lat, 2)
              << " (paper: flat slightly best)\n";
    return (hier_tx < flat_tx && flat_lat <= bus_lat) ? 0 : 1;
}
