# Empty dependencies file for test_deflection.
# This may be replaced when dependencies are built.
