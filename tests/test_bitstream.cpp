#include "apps/bitstream.hpp"

#include <gtest/gtest.h>

#include "apps/quantizer.hpp"
#include "common/expect.hpp"
#include "common/rng.hpp"

namespace snoc::apps {
namespace {

TEST(BitWriter, SingleBits) {
    BitWriter w;
    w.put_bit(true);
    w.put_bit(false);
    w.put_bit(true);
    EXPECT_EQ(w.bit_count(), 3u);
    const auto bytes = w.take();
    ASSERT_EQ(bytes.size(), 1u);
    EXPECT_EQ(bytes[0], std::byte{0b10100000});
}

TEST(BitWriter, MsbFirstMultiBit) {
    BitWriter w;
    w.put_bits(0b1011, 4);
    w.put_bits(0xFF, 8);
    EXPECT_EQ(w.bit_count(), 12u);
    const auto bytes = w.take();
    ASSERT_EQ(bytes.size(), 2u);
    EXPECT_EQ(bytes[0], std::byte{0b10111111});
    EXPECT_EQ(bytes[1], std::byte{0b11110000});
}

TEST(BitReader, ReadsBackWhatWasWritten) {
    BitWriter w;
    w.put_bits(0x3A5, 10);
    w.put_bit(true);
    const auto bits = w.bit_count();
    BitReader r(w.take(), bits);
    EXPECT_EQ(r.get_bits(10), 0x3A5u);
    EXPECT_TRUE(r.get_bit());
    EXPECT_EQ(r.bits_left(), 0u);
}

TEST(BitReader, OverreadThrows) {
    BitWriter w;
    w.put_bit(true);
    BitReader r(w.take(), 1);
    r.get_bit();
    EXPECT_THROW(r.get_bit(), snoc::ContractViolation);
}

TEST(BitReader, BitCountBeyondBufferThrows) {
    EXPECT_THROW(BitReader({}, 5), snoc::ContractViolation);
}

TEST(LineCode, KnownEncodings) {
    {
        BitWriter w;
        w.put_line(0);
        EXPECT_EQ(w.bit_count(), 1u);
        EXPECT_EQ(w.take()[0], std::byte{0b00000000});
    }
    {
        BitWriter w;
        w.put_line(1); // '1' '0' sign(0) -> 100
        EXPECT_EQ(w.bit_count(), 3u);
        EXPECT_EQ(w.take()[0], std::byte{0b10000000});
    }
    {
        BitWriter w;
        w.put_line(-1); // 101
        EXPECT_EQ(w.take()[0], std::byte{0b10100000});
    }
}

TEST(LineCode, CostMatchesModel) {
    // The wire cost must be exactly coded_bits_of for every value.
    for (std::int32_t v = -300; v <= 300; ++v) {
        BitWriter w;
        w.put_line(v);
        EXPECT_EQ(w.bit_count(), coded_bits_of(v)) << "v=" << v;
    }
}

TEST(LineCode, RoundtripExhaustiveSmall) {
    for (std::int32_t v = -1000; v <= 1000; ++v) {
        BitWriter w;
        w.put_line(v);
        const auto bits = w.bit_count();
        BitReader r(w.take(), bits);
        EXPECT_EQ(r.get_line(), v);
    }
}

TEST(LineCode, RoundtripLargeMagnitudes) {
    for (std::int32_t v : {1 << 20, -(1 << 20), 0x7FFFFFF, -0x7FFFFFF}) {
        BitWriter w;
        w.put_line(v);
        const auto bits = w.bit_count();
        EXPECT_EQ(bits, coded_bits_of(v));
        BitReader r(w.take(), bits);
        EXPECT_EQ(r.get_line(), v);
    }
}

TEST(PackLines, VectorRoundtrip) {
    const std::vector<std::int32_t> lines{0, 5, -3, 0, 0, 127, -128, 1, 0};
    auto [bytes, bits] = pack_lines(lines);
    EXPECT_EQ(bits, coded_bits_of(lines));
    const auto decoded = unpack_lines(bytes, bits, lines.size());
    EXPECT_EQ(decoded, lines);
}

TEST(PackLines, EmptyVector) {
    auto [bytes, bits] = pack_lines({});
    EXPECT_EQ(bits, 0u);
    EXPECT_TRUE(unpack_lines(bytes, bits, 0).empty());
}

class PackSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PackSweep, RandomVectorsRoundtrip) {
    snoc::RngStream rng(GetParam() * 7 + 1);
    std::vector<std::int32_t> lines(GetParam());
    for (auto& v : lines) {
        if (rng.bernoulli(0.4)) {
            v = 0; // realistic spectra are mostly zeros
        } else {
            v = static_cast<std::int32_t>(rng.below(5000)) - 2500;
        }
    }
    auto [bytes, bits] = pack_lines(lines);
    EXPECT_EQ(bits, coded_bits_of(lines));
    EXPECT_EQ(unpack_lines(bytes, bits, lines.size()), lines);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PackSweep, ::testing::Values(1, 2, 16, 64, 576, 4096));

} // namespace
} // namespace snoc::apps
