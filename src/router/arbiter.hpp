// Rotating-priority arbitration — the arbitration stage of the layered
// router core.  "Because a bus is a shared communication channel, it
// requires arbitration in order to ensure the mutual exclusion between
// the components accessing the channel" (Ch. 1); the same rotating scan
// arbitrates a router's switch ports.  The rotating priority guarantees
// starvation freedom: a requester waits at most (slots - 1) grants
// (test_router_stress proves it under full injection).
#pragma once

#include <cstddef>
#include <optional>
#include <type_traits>
#include <vector>

#include "common/expect.hpp"

namespace snoc::router {

/// One rotating-priority arbiter over a fixed set of request slots.  The
/// scan starts just past the previous winner and priority advances only
/// on an actual grant — the rule the shared bus and the wormhole switch
/// each used to hand-roll.
class RotatingArbiter {
public:
    explicit RotatingArbiter(std::size_t slots)
        : slots_(slots), grants_(slots, 0) {
        SNOC_EXPECT(slots > 0);
    }

    /// Grant the first slot (cyclically after the previous winner) whose
    /// `request(slot)` returns true.  `request` may do the caller's full
    /// eligibility work — route lookup, credit checks, downstream VC
    /// claims — including side effects that persist across a refusal;
    /// the arbiter only promises the scan order and that priority moves
    /// past winners alone.  Returns nullopt when every slot refuses.
    template <class Request,
              class = std::enable_if_t<
                  std::is_invocable_r_v<bool, Request&, std::size_t>>>
    std::optional<std::size_t> grant(Request&& request) {
        for (std::size_t i = 0; i < slots_; ++i) {
            const std::size_t slot = (last_ + 1 + i) % slots_;
            if (request(slot)) {
                last_ = slot;
                ++grants_[slot];
                return slot;
            }
        }
        return std::nullopt;
    }

    /// Plain request-vector flavour (the shared-bus shape).
    std::optional<std::size_t> grant(const std::vector<bool>& requests) {
        SNOC_EXPECT(requests.size() == slots_);
        return grant([&](std::size_t slot) { return requests[slot]; });
    }

    std::size_t slot_count() const { return slots_; }

    /// Grants won by `slot` so far — the observable the starvation-
    /// freedom stress test asserts on.
    std::size_t grants(std::size_t slot) const {
        SNOC_EXPECT(slot < slots_);
        return grants_[slot];
    }

private:
    std::size_t slots_;
    std::size_t last_{0};
    std::vector<std::size_t> grants_;
};

} // namespace snoc::router
