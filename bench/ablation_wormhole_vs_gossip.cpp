// Ablation (ours): conventional wormhole-routed NoC vs stochastic
// communication.
//
// Part 1 — the wormhole saturation curve (latency & throughput vs offered
// load): the classic behaviour the thesis' "prohibitive cost" argument
// assumes as the alternative.
//
// Part 2 — crash sensitivity: the same corner-to-corner traffic over (a)
// the flit-level wormhole mesh and (b) gossip, with k crashed tiles.  A
// dead router blocks every worm routed through it *and* everything that
// backs up behind the blocked worm; gossip routes around the corpse.
#include <iostream>

#include "apps/trace_app.hpp"
#include "bench_util.hpp"
#include "wormhole/router.hpp"

int main(int argc, char** argv) {
    using namespace snoc;
    const auto opt = bench::options(argc, argv, 15);

    // ---- Part 1: saturation curve.
    wormhole::Config wc;
    Table saturation({"offered load", "avg latency [cycles]", "throughput",
                      "delivered [%]"});
    for (double load : {0.02, 0.05, 0.1, 0.2, 0.35, 0.5}) {
        const auto p = wormhole::run_uniform_load(8, wc, load, 300, 1500, 7);
        saturation.add_row({format_number(load, 2), format_number(p.avg_latency, 1),
                            format_number(p.throughput, 3),
                            format_number(100.0 * p.delivered_fraction, 1)});
    }
    bench::emit(saturation, opt,
                "Wormhole 8x8 mesh: latency / throughput vs offered load");

    // ---- Part 2: crash sensitivity.
    const auto mesh = Topology::mesh(5, 5);
    const std::vector<std::pair<TileId, TileId>> flows{{0, 24}, {4, 20}, {20, 4},
                                                       {24, 0}, {2, 22}, {10, 14}};

    struct Trial {
        std::size_t worm{0}, wf{0}, gossip{0};
    };

    Table crash({"crashed tiles", "wormhole XY [%]", "wormhole west-first [%]",
                 "gossip delivery [%]"});
    for (std::size_t k : {0u, 1u, 2u, 4u, 6u}) {
        const auto trials = run_trials(
            opt.repeats,
            [&](std::uint64_t seed) {
                // Shared crash pattern (protect the endpoints).
                RngPool pool(seed);
                FaultInjector inj(FaultScenario::none(), pool);
                std::vector<TileId> protected_tiles;
                for (const auto& [s, d] : flows) {
                    protected_tiles.push_back(s);
                    protected_tiles.push_back(d);
                }
                const auto crashes =
                    inj.roll_exact_tile_crashes(mesh, k, protected_tiles);

                Trial out;
                wormhole::Network wnet(5, 5, wc);
                for (TileId t = 0; t < 25; ++t)
                    if (crashes.dead_tiles[t]) wnet.crash_router(t);
                for (const auto& [s, d] : flows) wnet.inject(s, d);
                wnet.run(3000);
                out.worm = wnet.delivered();

                wormhole::Config wfc = wc;
                wfc.routing = wormhole::Routing::WestFirst;
                wormhole::Network wfnet(5, 5, wfc);
                for (TileId t = 0; t < 25; ++t)
                    if (crashes.dead_tiles[t]) wfnet.crash_router(t);
                for (const auto& [s, d] : flows) wfnet.inject(s, d);
                wfnet.run(3000);
                out.wf = wfnet.delivered();

                GossipConfig gc = bench::config_with_p(0.5, 40);
                GossipNetwork gnet(mesh, gc, FaultScenario::none(), seed,
                                   bench::engine_select(opt));
                TrafficTrace trace;
                TrafficPhase phase;
                for (const auto& [s, d] : flows) phase.messages.push_back({s, d, 256});
                trace.phases.push_back(phase);
                apps::TraceDriver driver(gnet, trace);
                for (TileId t : protected_tiles) gnet.protect(t);
                gnet.force_exact_tile_crashes(k);
                gnet.run_until([&driver] { return driver.complete(); }, 500);
                out.gossip = driver.delivered_messages();
                return out;
            },
            opt.jobs);
        std::size_t worm_delivered = 0, wf_delivered = 0, gossip_delivered = 0;
        for (const Trial& t : trials) {
            worm_delivered += t.worm;
            wf_delivered += t.wf;
            gossip_delivered += t.gossip;
        }
        const double total = static_cast<double>(opt.repeats * flows.size());
        crash.add_row({std::to_string(k),
                       format_number(100.0 * worm_delivered / total, 1),
                       format_number(100.0 * wf_delivered / total, 1),
                       format_number(100.0 * gossip_delivered / total, 1)});
    }
    bench::emit(crash, opt,
                "Crash sensitivity: wormhole XY / west-first vs gossip "
                "(5x5, 6 flows)");
    return 0;
}
