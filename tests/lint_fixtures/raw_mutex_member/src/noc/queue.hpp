#pragma once
#include <cstddef>
#include <mutex>
// BAD: a raw std::mutex member is invisible to the Clang thread-safety
// analysis; lock-owning classes must use snoc::Mutex (annotations.hpp).
namespace snoc {
class BoundedQueue {
public:
    void push();

private:
    std::mutex mu_;
    std::condition_variable cv_;
};
} // namespace snoc
