#include "check/invariant_auditor.hpp"

#include <cmath>
#include <numeric>
#include <sstream>

#include "bus/deflection.hpp"
#include "common/expect.hpp"
#include "common/postmortem.hpp"
#include "core/engine.hpp"
#include "router/core.hpp"
#include "wormhole/router.hpp"

namespace snoc::check {

namespace {

std::size_t sum(const std::vector<std::size_t>& v) {
    return std::accumulate(v.begin(), v.end(), std::size_t{0});
}

} // namespace

void InvariantAuditor::begin_run(std::string label) {
    label_ = std::move(label);
    have_snapshot_ = false;
    last_ = CounterSnapshot{};
    last_ttl_.clear();
}

void InvariantAuditor::violate(const char* invariant, std::string detail) {
    ++total_violations_;
    if (violations_.size() >= kMaxStoredViolations) return;
    if (!label_.empty()) detail = "[" + label_ + "] " + detail;
    // First stored violation wakes any armed flight recorder: auditors
    // often only *count* (throw_if_dirty comes much later, if ever), and
    // the event history around the violating round is worth preserving
    // the moment the law breaks, not at end of run.
    postmortem::notify(invariant, detail);
    violations_.push_back(Violation{invariant, std::move(detail)});
}

void InvariantAuditor::check_conservation(const ConservationLedger& ledger) {
    if (ledger.wire_imbalance() != 0)
        violate("wire-conservation", ledger.to_string());
    if (ledger.buffer_imbalance() != 0)
        violate("buffer-conservation", ledger.to_string());
}

void InvariantAuditor::check_occupancy(TileId tile, std::size_t size,
                                       std::size_t capacity) {
    if (size > capacity) {
        std::ostringstream os;
        os << "tile " << tile << " holds " << size << " > capacity " << capacity;
        violate("occupancy", os.str());
    }
}

void InvariantAuditor::check_metrics(const NetworkMetrics& metrics,
                                     bool include_round_histogram) {
    if (!metrics.bits_sent_by_tile.empty() &&
        sum(metrics.bits_sent_by_tile) != metrics.bits_sent) {
        std::ostringstream os;
        os << "sum(bits_sent_by_tile)=" << sum(metrics.bits_sent_by_tile)
           << " != bits_sent=" << metrics.bits_sent;
        violate("per-tile-bits", os.str());
    }
    if (!metrics.packets_by_link.empty() &&
        sum(metrics.packets_by_link) != metrics.packets_sent) {
        std::ostringstream os;
        os << "sum(packets_by_link)=" << sum(metrics.packets_by_link)
           << " != packets_sent=" << metrics.packets_sent;
        violate("per-link-packets", os.str());
    }
    // Receive-side overflow drops are a slice of the total overflow count.
    if (metrics.port_overflow_drops > metrics.overflow_drops) {
        std::ostringstream os;
        os << "port_overflow_drops=" << metrics.port_overflow_drops
           << " > overflow_drops=" << metrics.overflow_drops;
        violate("overflow-taxonomy", os.str());
    }
    // Every transmitted bit belongs to a packet (and vice versa).
    if ((metrics.packets_sent == 0) != (metrics.bits_sent == 0)) {
        std::ostringstream os;
        os << "packets_sent=" << metrics.packets_sent
           << " inconsistent with bits_sent=" << metrics.bits_sent;
        violate("bits-vs-packets", os.str());
    }
    // O(rounds) — end-of-run only, or it turns per-round audits quadratic.
    if (include_round_histogram &&
        sum(metrics.packets_per_round) != metrics.packets_sent) {
        std::ostringstream os;
        os << "sum(packets_per_round)=" << sum(metrics.packets_per_round)
           << " != packets_sent=" << metrics.packets_sent;
        violate("round-histogram", os.str());
    }
}

void InvariantAuditor::check_monotonic(const CounterSnapshot& now) {
    if (have_snapshot_) {
        const auto mono = [&](std::size_t prev, std::size_t cur, const char* name) {
            if (cur < prev) {
                std::ostringstream os;
                os << name << " decreased: " << prev << " -> " << cur;
                violate("counter-monotonicity", os.str());
            }
        };
        mono(last_.rounds, now.rounds, "rounds");
        mono(last_.packets_sent, now.packets_sent, "packets_sent");
        mono(last_.bits_sent, now.bits_sent, "bits_sent");
        mono(last_.messages_created, now.messages_created, "messages_created");
        mono(last_.deliveries, now.deliveries, "deliveries");
        mono(last_.duplicates_ignored, now.duplicates_ignored, "duplicates_ignored");
        mono(last_.crc_drops, now.crc_drops, "crc_drops");
        mono(last_.overflow_drops, now.overflow_drops, "overflow_drops");
        mono(last_.ttl_expired, now.ttl_expired, "ttl_expired");
        mono(last_.crash_drops, now.crash_drops, "crash_drops");
        mono(last_.port_overflow_drops, now.port_overflow_drops, "port_overflow_drops");
        mono(last_.packets_accepted, now.packets_accepted, "packets_accepted");
        mono(last_.fec_uncorrectable, now.fec_uncorrectable, "fec_uncorrectable");
        mono(last_.skew_deferrals, now.skew_deferrals, "skew_deferrals");
        mono(last_.upsets_undetected, now.upsets_undetected, "upsets_undetected");
        mono(last_.fec_corrected, now.fec_corrected, "fec_corrected");
    }
    last_ = now;
    have_snapshot_ = true;
}

void InvariantAuditor::check_round(const GossipNetwork& net) {
    ++rounds_audited_;
    check_conservation(net.ledger());
    // Event engine only (trivially true under lockstep): the skip-idle
    // optimisation is sound iff the active set is exactly the live tiles
    // with non-empty send buffers.
    if (!net.event_active_set_consistent())
        violate("event-active-set",
                "active-tile set diverged from live non-empty send buffers");

    const auto& m = net.metrics();
    check_metrics(m, /*include_round_histogram=*/false);

    CounterSnapshot now;
    now.rounds = m.rounds;
    now.packets_sent = m.packets_sent;
    now.bits_sent = m.bits_sent;
    now.messages_created = m.messages_created;
    now.deliveries = m.deliveries;
    now.duplicates_ignored = m.duplicates_ignored;
    now.crc_drops = m.crc_drops;
    now.overflow_drops = m.overflow_drops;
    now.ttl_expired = m.ttl_expired;
    now.crash_drops = m.crash_drops;
    now.port_overflow_drops = m.port_overflow_drops;
    now.packets_accepted = m.packets_accepted;
    now.fec_uncorrectable = m.fec_uncorrectable;
    now.skew_deferrals = m.skew_deferrals;
    now.upsets_undetected = m.upsets_undetected;
    now.fec_corrected = m.fec_corrected;
    check_monotonic(now);

    const std::size_t tiles = net.topology().node_count();
    if (last_ttl_.size() != tiles) {
        last_ttl_.clear();
        last_ttl_.resize(tiles);
    }
    const std::size_t capacity = net.config().send_buffer_capacity;
    for (TileId t = 0; t < tiles; ++t) {
        const SendBuffer& buf = net.send_buffer(t);
        check_occupancy(t, buf.size(), capacity);
        auto& seen = last_ttl_[t];
        for (const Message& msg : buf.messages()) {
            if (msg.ttl == 0) {
                std::ostringstream os;
                os << "tile " << t << " buffers a TTL-0 message after ageing";
                violate("ttl-liveness", os.str());
            }
            // A rumor's TTL only ever decreases while a tile holds it —
            // re-receiving a fresher copy must not resurrect it.
            auto it = seen.find(msg.id);
            if (it != seen.end() && msg.ttl > it->second) {
                std::ostringstream os;
                os << "tile " << t << " message {" << msg.id.origin << ","
                   << msg.id.sequence << "} TTL grew " << it->second << " -> "
                   << msg.ttl;
                violate("ttl-monotonicity", os.str());
                it->second = msg.ttl;
            } else if (it != seen.end()) {
                it->second = msg.ttl;
            } else {
                seen.emplace(msg.id, msg.ttl);
            }
        }
    }
}

void InvariantAuditor::check_final(const GossipNetwork& net) {
    check_round(net);
    // The full per-round traffic histogram is only worth summing once.
    check_metrics(net.metrics(), /*include_round_histogram=*/true);
}

void InvariantAuditor::check_report(const RunReport& report, BackendKind kind,
                                    const TrafficTrace* trace, Round limit) {
    const auto bad = [&](const char* invariant, const std::string& detail) {
        violate(invariant, std::string(to_string(kind)) + ": " + detail);
    };
    if (report.attempts < 1) bad("report-attempts", "attempts == 0");
    if (!(std::isfinite(report.seconds) && report.seconds >= 0.0)) {
        std::ostringstream os;
        os << "seconds=" << report.seconds;
        bad("report-time", os.str());
    }
    if (!(std::isfinite(report.joules) && report.joules >= 0.0)) {
        std::ostringstream os;
        os << "joules=" << report.joules;
        bad("report-energy", os.str());
    }
    if (report.transmissions == 0 && report.bits != 0) {
        std::ostringstream os;
        os << "bits=" << report.bits << " with zero transmissions";
        bad("report-bits", os.str());
    }
    if (trace != nullptr) {
        // run(trace, limit) reports logical trace-level delivery accounting.
        // (App-driven run_until reports raw engine counters, where per-tile
        // broadcast deliveries can legitimately exceed messages offered.)
        if (report.messages != trace->message_count()) {
            std::ostringstream os;
            os << "messages=" << report.messages
               << " != trace offers " << trace->message_count();
            bad("report-offered", os.str());
        }
        if (report.deliveries > report.messages) {
            std::ostringstream os;
            os << "deliveries=" << report.deliveries
               << " > messages=" << report.messages;
            bad("report-deliveries", os.str());
        }
        if (report.deliveries + report.dropped != report.messages) {
            std::ostringstream os;
            os << "deliveries=" << report.deliveries << " + dropped="
               << report.dropped << " != messages=" << report.messages;
            bad("report-fate", os.str());
        }
        if (report.completed && report.deliveries != report.messages) {
            std::ostringstream os;
            os << "completed with deliveries=" << report.deliveries
               << " != messages=" << report.messages;
            bad("report-completion", os.str());
        }
    }
    if (limit > 0 && report.rounds > limit) {
        std::ostringstream os;
        os << "rounds=" << report.rounds << " > budget=" << limit;
        bad("report-budget", os.str());
    }
    // Backends that fill the full NetworkMetrics taxonomy (the gossip
    // engine and the router-core backends, whose shared accounting stage
    // maintains every histogram) get the structural-consistency laws too.
    if (kind == BackendKind::Gossip || kind == BackendKind::StoreForward ||
        kind == BackendKind::CutThrough || kind == BackendKind::Adaptive)
        check_metrics(report.metrics, /*include_round_histogram=*/true);
}

void InvariantAuditor::check_router(const router::RouterCore& core) {
    ++rounds_audited_;
    std::size_t delivered_records = 0;
    std::size_t dropped_records = 0;
    for (const auto& rec : core.records()) {
        if (rec.delivered_cycle && rec.dropped) {
            std::ostringstream os;
            os << "packet " << rec.id << " both delivered and dropped";
            violate("router-fate", os.str());
        }
        if (rec.delivered_cycle) {
            ++delivered_records;
            if (*rec.delivered_cycle < rec.injected_cycle) {
                std::ostringstream os;
                os << "packet " << rec.id << " delivered at cycle "
                   << *rec.delivered_cycle << " before injection at "
                   << rec.injected_cycle;
                violate("router-causality", os.str());
            }
        }
        if (rec.dropped) ++dropped_records;
        if (rec.hops > core.config().max_hops) {
            std::ostringstream os;
            os << "packet " << rec.id << " took " << rec.hops
               << " hops past the budget " << core.config().max_hops;
            violate("router-hop-budget", os.str());
        }
    }
    if (delivered_records != core.delivered() ||
        dropped_records != core.dropped()) {
        std::ostringstream os;
        os << "records delivered/dropped=" << delivered_records << "/"
           << dropped_records << " != counters " << core.delivered() << "/"
           << core.dropped();
        violate("router-accounting", os.str());
    }
    // Every injected packet has exactly one fate.
    if (core.delivered() + core.dropped() + core.in_flight() !=
        core.records().size()) {
        std::ostringstream os;
        os << "delivered=" << core.delivered() << " + dropped=" << core.dropped()
           << " + in_flight=" << core.in_flight()
           << " != injected=" << core.records().size();
        violate("router-conservation", os.str());
    }
    // The shared accounting stage must agree with the per-packet records.
    const NetworkMetrics& m = core.metrics();
    if (m.deliveries != core.delivered() ||
        m.messages_created != core.records().size() ||
        m.crash_drops + m.ttl_expired != core.dropped()) {
        std::ostringstream os;
        os << "metrics deliveries/created/drops=" << m.deliveries << "/"
           << m.messages_created << "/" << (m.crash_drops + m.ttl_expired)
           << " != core " << core.delivered() << "/" << core.records().size()
           << "/" << core.dropped();
        violate("router-metrics", os.str());
    }
    check_metrics(m, /*include_round_histogram=*/true);
}

void InvariantAuditor::check_wormhole(const wormhole::Network& net) {
    std::size_t delivered_records = 0;
    for (const auto& rec : net.records()) {
        if (!rec.delivered_cycle) continue;
        ++delivered_records;
        if (*rec.delivered_cycle < rec.injected_cycle) {
            std::ostringstream os;
            os << "packet " << rec.id << " delivered at cycle "
               << *rec.delivered_cycle << " before injection at "
               << rec.injected_cycle;
            violate("wormhole-causality", os.str());
        }
    }
    if (delivered_records != net.delivered()) {
        std::ostringstream os;
        os << "delivered records=" << delivered_records
           << " != delivered counter=" << net.delivered();
        violate("wormhole-accounting", os.str());
    }
    if (net.delivered() > net.injected()) {
        std::ostringstream os;
        os << "delivered=" << net.delivered() << " > injected=" << net.injected();
        violate("wormhole-accounting", os.str());
    }
}

void InvariantAuditor::check_deflection(const deflection::Network& net) {
    std::size_t delivered_records = 0;
    std::size_t dropped_records = 0;
    for (const auto& rec : net.records()) {
        if (rec.delivered_cycle && rec.dropped) {
            std::ostringstream os;
            os << "packet " << rec.id << " both delivered and dropped";
            violate("deflection-fate", os.str());
        }
        if (rec.delivered_cycle) {
            ++delivered_records;
            if (*rec.delivered_cycle < rec.injected_cycle) {
                std::ostringstream os;
                os << "packet " << rec.id << " delivered at cycle "
                   << *rec.delivered_cycle << " before injection at "
                   << rec.injected_cycle;
                violate("deflection-causality", os.str());
            }
        }
        if (rec.dropped) ++dropped_records;
    }
    if (delivered_records != net.delivered() || dropped_records != net.dropped()) {
        std::ostringstream os;
        os << "records delivered/dropped=" << delivered_records << "/"
           << dropped_records << " != counters " << net.delivered() << "/"
           << net.dropped();
        violate("deflection-accounting", os.str());
    }
    // Every injected packet has exactly one fate.
    if (net.delivered() + net.dropped() + net.in_flight() != net.records().size()) {
        std::ostringstream os;
        os << "delivered=" << net.delivered() << " + dropped=" << net.dropped()
           << " + in_flight=" << net.in_flight()
           << " != injected=" << net.records().size();
        violate("deflection-conservation", os.str());
    }
}

std::string InvariantAuditor::summary() const {
    std::ostringstream os;
    os << total_violations_ << " violation(s) across " << rounds_audited_
       << " audited round(s)";
    for (const auto& v : violations_) os << "\n  [" << v.invariant << "] " << v.detail;
    if (total_violations_ > violations_.size())
        os << "\n  ... " << (total_violations_ - violations_.size()) << " more dropped";
    return os.str();
}

void InvariantAuditor::throw_if_dirty() const {
    if (!clean()) throw ContractViolation("invariant audit failed: " + summary());
}

void InvariantAuditor::reset() {
    violations_.clear();
    total_violations_ = 0;
    rounds_audited_ = 0;
    label_.clear();
    have_snapshot_ = false;
    last_ = CounterSnapshot{};
    last_ttl_.clear();
}

} // namespace snoc::check
