file(REMOVE_RECURSE
  "CMakeFiles/test_statechart.dir/test_statechart.cpp.o"
  "CMakeFiles/test_statechart.dir/test_statechart.cpp.o.d"
  "test_statechart"
  "test_statechart.pdb"
  "test_statechart[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_statechart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
