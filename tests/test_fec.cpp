#include "noc/fec.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace snoc::fec {
namespace {

TEST(SecdedWord, CleanRoundtrip) {
    for (std::uint64_t data : {0ULL, 1ULL, 0xFFFFFFFFFFFFFFFFULL,
                               0xDEADBEEFCAFEBABEULL, 0x8000000000000001ULL}) {
        const auto w = encode_word(data);
        const auto d = decode_word(w);
        EXPECT_EQ(d.status, WordStatus::Clean);
        EXPECT_EQ(d.data, data);
    }
}

TEST(SecdedWord, EverySingleBitErrorIsCorrected) {
    const std::uint64_t data = 0xA5A5F00D12345678ULL;
    for (std::size_t bit = 0; bit < 72; ++bit) {
        auto w = encode_word(data);
        flip_bit(w, bit);
        const auto d = decode_word(w);
        EXPECT_EQ(d.status, WordStatus::Corrected) << "bit " << bit;
        EXPECT_EQ(d.data, data) << "bit " << bit;
    }
}

TEST(SecdedWord, EveryDoubleBitErrorIsDetectedNotMiscorrected) {
    const std::uint64_t data = 0x0123456789ABCDEFULL;
    std::size_t uncorrectable = 0, total = 0;
    for (std::size_t i = 0; i < 72; ++i) {
        for (std::size_t j = i + 1; j < 72; ++j) {
            auto w = encode_word(data);
            flip_bit(w, i);
            flip_bit(w, j);
            const auto d = decode_word(w);
            ++total;
            if (d.status == WordStatus::Uncorrectable) ++uncorrectable;
            // SECDED must never silently return wrong data for <=2 errors.
            if (d.status != WordStatus::Uncorrectable) {
                EXPECT_EQ(d.data, data) << i << "," << j;
            }
        }
    }
    EXPECT_EQ(uncorrectable, total); // all 2556 double errors detected
}

TEST(SecdedWord, DifferentDataDifferentCheck) {
    EXPECT_NE(encode_word(1).check, encode_word(2).check);
}

TEST(SecdedStream, ProtectRecoverRoundtrip) {
    for (std::size_t n : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 100u}) {
        std::vector<std::byte> payload(n);
        for (std::size_t i = 0; i < n; ++i)
            payload[i] = static_cast<std::byte>(i * 37 + 1);
        const auto prot = protect(payload);
        EXPECT_EQ(prot.bytes.size(), 4 + ((n + 7) / 8) * 9);
        const auto rec = recover(prot.bytes);
        EXPECT_TRUE(rec.ok);
        EXPECT_EQ(rec.corrected_words, 0u);
        EXPECT_EQ(rec.payload, payload);
    }
}

TEST(SecdedStream, SingleBitFlipsInEveryWordAreRepaired) {
    std::vector<std::byte> payload(64);
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<std::byte>(i);
    auto prot = protect(payload);
    // Flip one bit in each of the 8 words (data region).
    for (std::size_t w = 0; w < 8; ++w) {
        const std::size_t byte = 4 + w * 9 + (w % 8);
        prot.bytes[byte] ^= static_cast<std::byte>(1u << (w % 8));
    }
    const auto rec = recover(prot.bytes);
    EXPECT_TRUE(rec.ok);
    EXPECT_EQ(rec.corrected_words, 8u);
    EXPECT_EQ(rec.payload, payload);
}

TEST(SecdedStream, DoubleFlipInOneWordIsFlagged) {
    std::vector<std::byte> payload(16, std::byte{0x3C});
    auto prot = protect(payload);
    prot.bytes[5] ^= std::byte{0x01};
    prot.bytes[6] ^= std::byte{0x01};
    const auto rec = recover(prot.bytes);
    EXPECT_FALSE(rec.ok);
}

TEST(SecdedStream, BrokenFramingIsRejected) {
    EXPECT_FALSE(recover({}).ok);
    EXPECT_FALSE(recover({std::byte{1}, std::byte{0}}).ok);
    std::vector<std::byte> payload(8, std::byte{0x11});
    auto prot = protect(payload);
    prot.bytes.pop_back();
    EXPECT_FALSE(recover(prot.bytes).ok);
}

TEST(SecdedStream, RandomFuzzNeverReturnsWrongBytesSilently) {
    RngStream rng(99);
    for (int trial = 0; trial < 300; ++trial) {
        std::vector<std::byte> payload(1 + rng.below(64));
        for (auto& b : payload) b = static_cast<std::byte>(rng.bits() & 0xFF);
        auto prot = protect(payload);
        // Flip 0, 1 or 2 random bits in the word region.
        const auto flips = rng.below(3);
        for (std::uint64_t f = 0; f < flips; ++f) {
            const std::size_t bit = 32 + rng.below((prot.bytes.size() - 4) * 8);
            prot.bytes[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
        }
        const auto rec = recover(prot.bytes);
        if (rec.ok) {
            EXPECT_EQ(rec.payload, payload);
        }
    }
}

} // namespace
} // namespace snoc::fec
