#include "telemetry/flight_recorder.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/expect.hpp"
#include "telemetry/export.hpp"
#include "telemetry/manifest.hpp"
#include "telemetry/metrics_registry.hpp"

namespace snoc {

FlightRecorder::FlightRecorder(std::size_t capacity, std::size_t lanes)
    : capacity_(capacity), lanes_(std::max<std::size_t>(lanes, 1)) {
    SNOC_EXPECT(capacity >= 1);
    for (Lane& lane : lanes_) {
        lane.capacity = capacity_;
        lane.totals.assign(kTraceEventKinds, 0);
        // Preallocate so steady-state record() never allocates.
        lane.ring.reserve(capacity_);
    }
}

void FlightRecorder::Lane::record(const TraceEvent& event) {
    ++totals[static_cast<std::size_t>(event.kind)];
    if (ring.size() < capacity) {
        ring.push_back(event);
        return;
    }
    ring[next] = event;
    next = next + 1 == capacity ? 0 : next + 1;
    ++dropped;
}

void FlightRecorder::record(const TraceEvent& event) { lanes_[0].record(event); }

TraceSink& FlightRecorder::lane(std::size_t lane) {
    SNOC_EXPECT(lane < lanes_.size());
    return lanes_[lane];
}

std::size_t FlightRecorder::size() const {
    std::size_t n = 0;
    for (const Lane& lane : lanes_) n += lane.ring.size();
    return n;
}

std::size_t FlightRecorder::dropped() const {
    std::size_t n = 0;
    for (const Lane& lane : lanes_) n += lane.dropped;
    return n;
}

std::vector<std::size_t> FlightRecorder::kind_totals() const {
    std::vector<std::size_t> totals(kTraceEventKinds, 0);
    for (const Lane& lane : lanes_)
        for (std::size_t k = 0; k < kTraceEventKinds; ++k)
            totals[k] += lane.totals[k];
    return totals;
}

std::vector<TraceEvent> FlightRecorder::drain() const {
    // Each lane's retained events in insertion order: the ring's oldest
    // element sits at `next` once it has wrapped.
    std::vector<std::vector<TraceEvent>> per_lane;
    per_lane.reserve(lanes_.size());
    std::size_t total = 0;
    for (const Lane& lane : lanes_) {
        std::vector<TraceEvent> events;
        events.reserve(lane.ring.size());
        if (lane.ring.size() < lane.capacity) {
            events.assign(lane.ring.begin(), lane.ring.end());
        } else {
            events.insert(events.end(), lane.ring.begin() +
                                            static_cast<std::ptrdiff_t>(lane.next),
                          lane.ring.end());
            events.insert(events.end(), lane.ring.begin(),
                          lane.ring.begin() +
                              static_cast<std::ptrdiff_t>(lane.next));
        }
        total += events.size();
        per_lane.push_back(std::move(events));
    }
    if (per_lane.size() == 1) return std::move(per_lane.front());

    // Deterministic cross-lane merge: ascending round, ties by lane index
    // then intra-lane order.  Rounds are monotone within a lane, so one
    // k-way front scan suffices.
    std::vector<TraceEvent> merged;
    merged.reserve(total);
    std::vector<std::size_t> cursor(per_lane.size(), 0);
    while (merged.size() < total) {
        std::size_t best = per_lane.size();
        for (std::size_t l = 0; l < per_lane.size(); ++l) {
            if (cursor[l] >= per_lane[l].size()) continue;
            if (best == per_lane.size() ||
                per_lane[l][cursor[l]].round < per_lane[best][cursor[best]].round)
                best = l;
        }
        SNOC_ENSURE(best < per_lane.size());
        merged.push_back(per_lane[best][cursor[best]++]);
    }
    return merged;
}

void FlightRecorder::clear() {
    for (Lane& lane : lanes_) {
        lane.ring.clear();
        lane.next = 0;
        lane.dropped = 0;
        std::fill(lane.totals.begin(), lane.totals.end(), 0);
    }
}

namespace {

// Minimal JSON string escaping for detector-formatted detail text.
void write_json_string(std::ostream& os, const std::string& text) {
    os << '"';
    for (const char c : text) {
        switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\r': os << "\\r"; break;
        case '\t': os << "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                os << ' '; // control characters never carry meaning here
            else
                os << c;
        }
    }
    os << '"';
}

} // namespace

void write_postmortem_bundle(const FlightRecorder& recorder,
                             const PostmortemInfo& info, std::ostream& os) {
    const auto events = recorder.drain();
    Round first_round = 0, last_round = 0;
    if (!events.empty()) {
        first_round = events.front().round;
        last_round = events.back().round;
        for (const TraceEvent& e : events)
            last_round = std::max(last_round, e.round);
    }
    os << "{\"postmortem\":1,\"schema\":\"snoc-postmortem-v1\",\"reason\":";
    write_json_string(os, info.reason);
    os << ",\"detail\":";
    write_json_string(os, info.detail);
    os << ",\"experiment\":";
    write_json_string(os, info.experiment);
    os << ",\"backend\":";
    write_json_string(os, info.backend);
    os << ",\"seed\":" << info.seed << ",\"git_sha\":\"" << build_git_sha()
       << "\",\"check_level\":" << SNOC_CHECK_LEVEL
       << ",\"events\":" << events.size()
       << ",\"events_overwritten\":" << recorder.dropped()
       << ",\"first_round\":" << first_round << ",\"last_round\":" << last_round
       << ",\"kind_totals\":{";
    const auto& totals = recorder.kind_totals();
    for (std::size_t k = 0; k < totals.size(); ++k)
        os << (k ? "," : "") << '"' << kTraceEventKindNames[k]
           << "\":" << totals[k];
    os << '}';
    if (info.has_metrics) {
        // Reuse the canonical flat metrics object (snoc_lint holds it in
        // lock-step with NetworkMetrics), inlined under one key.
        std::ostringstream metrics;
        write_metrics_json(info.metrics, metrics);
        std::string flat = metrics.str();
        // write_metrics_json pretty-prints over several lines; the bundle
        // header must stay a single JSONL line.
        std::string one_line;
        one_line.reserve(flat.size());
        for (const char c : flat)
            if (c != '\n') one_line += c;
        os << ",\"metrics\":" << one_line;
    }
    os << "}\n";
    for (const TraceEvent& e : events) {
        os << "{\"round\":" << e.round << ",\"kind\":\"" << to_string(e.kind)
           << "\",\"tile\":" << e.tile;
        if (e.peer != kNoTile) os << ",\"peer\":" << e.peer;
        if (e.message.origin != kNoTile)
            os << ",\"msg\":\"" << format_message_id(e.message) << '"';
        os << "}\n";
    }
}

void write_postmortem_bundle(const FlightRecorder& recorder,
                             const PostmortemInfo& info,
                             const std::string& path) {
    std::ofstream os(path, std::ios::binary);
    SNOC_EXPECT(os.is_open());
    write_postmortem_bundle(recorder, info, os);
}

PostmortemDumper::PostmortemDumper(std::string path,
                                   const FlightRecorder* recorder,
                                   PostmortemInfo info)
    : path_(std::move(path)),
      recorder_(recorder),
      info_(std::move(info)),
      scope_([this](const postmortem::Context& ctx) {
          if (dumped_ || recorder_ == nullptr || path_.empty()) return;
          dumped_ = true; // first failure wins; set before I/O can throw.
          info_.reason = ctx.reason;
          info_.detail = ctx.detail;
          if (live_ != nullptr) {
              info_.has_metrics = true;
              info_.metrics = *live_;
          }
          write_postmortem_bundle(*recorder_, info_, path_);
          MetricsRegistry::global().inc(MetricId::PostmortemsTotal);
      }) {}

} // namespace snoc
