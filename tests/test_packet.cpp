#include "noc/packet.hpp"

#include <span>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "noc/crc.hpp"

namespace snoc {
namespace {

Message sample_message() {
    Message m;
    m.id = MessageId{6, 42};
    m.source = 6;
    m.destination = 12;
    m.tag = 0xABCD1234;
    m.ttl = 17;
    for (int i = 0; i < 32; ++i) m.payload.push_back(static_cast<std::byte>(i * 7));
    return m;
}

TEST(Packet, EncodeDecodeRoundtrip) {
    const Message m = sample_message();
    const Packet p = Packet::encode(m);
    EXPECT_TRUE(p.crc_ok());
    const auto decoded = p.decode();
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->id, m.id);
    EXPECT_EQ(decoded->source, m.source);
    EXPECT_EQ(decoded->destination, m.destination);
    EXPECT_EQ(decoded->tag, m.tag);
    EXPECT_EQ(decoded->ttl, m.ttl);
    EXPECT_EQ(decoded->payload, m.payload);
}

TEST(Packet, EmptyPayloadRoundtrip) {
    Message m = sample_message();
    m.payload.clear();
    const auto decoded = Packet::encode(m).decode();
    ASSERT_TRUE(decoded.has_value());
    EXPECT_TRUE(decoded->payload.empty());
}

TEST(Packet, BitSizeAccountsHeaderPayloadAndCrc) {
    Message m = sample_message();
    const std::size_t header = 4 + 4 + 4 + 4 + 4 + 2 + 4;
    EXPECT_EQ(Packet::encode(m).byte_size(), header + m.payload.size() + 4);
    EXPECT_EQ(Packet::encode(m).bit_size(), (header + m.payload.size() + 4) * 8);
}

TEST(Packet, EverySingleBitFlipIsDetected) {
    const Packet clean = Packet::encode(sample_message());
    for (std::size_t bit = 0; bit < clean.bit_size(); ++bit) {
        auto wire = clean.wire();
        wire[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
        const Packet corrupt = Packet::from_wire(std::move(wire));
        EXPECT_FALSE(corrupt.crc_ok()) << "bit " << bit;
        EXPECT_FALSE(corrupt.decode().has_value());
    }
}

TEST(Packet, TruncatedWireFailsGracefully) {
    const Packet p = Packet::encode(sample_message());
    for (std::size_t keep = 0; keep < p.byte_size(); keep += 5) {
        auto wire = p.wire();
        wire.resize(keep);
        const Packet truncated = Packet::from_wire(std::move(wire));
        EXPECT_FALSE(truncated.crc_ok());
        EXPECT_FALSE(truncated.decode().has_value());
    }
}

TEST(Packet, LengthFieldMismatchRejectedEvenWithValidCrc) {
    // Craft a wire whose CRC is recomputed after corrupting the length
    // field: crc_ok passes, framing check must still reject.
    Message m = sample_message();
    auto wire = Packet::encode(m).wire();
    // payload_len lives at offset 22 (after 5*u32 + u16).
    wire[22] = static_cast<std::byte>(200);
    // Recompute the CRC over the tampered body.
    const std::size_t body = wire.size() - 4;
    const std::uint32_t crc =
        crc::crc32(std::span<const std::byte>(wire.data(), body));
    for (std::size_t i = 0; i < 4; ++i)
        wire[body + i] = static_cast<std::byte>((crc >> (8 * i)) & 0xFF);
    const Packet tampered = Packet::from_wire(std::move(wire));
    EXPECT_TRUE(tampered.crc_ok());
    EXPECT_FALSE(tampered.decode().has_value());
}

TEST(Packet, BroadcastDestinationSurvivesRoundtrip) {
    Message m = sample_message();
    m.destination = kBroadcast;
    const auto decoded = Packet::encode(m).decode();
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->destination, kBroadcast);
}

// Property sweep: random payload sizes all round-trip.
class PacketSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PacketSizeSweep, Roundtrip) {
    RngStream rng(GetParam() * 31 + 7);
    Message m;
    m.id = MessageId{static_cast<TileId>(rng.below(1000)),
                     static_cast<std::uint32_t>(rng.below(100000))};
    m.source = m.id.origin;
    m.destination = static_cast<TileId>(rng.below(1000));
    m.tag = static_cast<std::uint32_t>(rng.bits());
    m.ttl = static_cast<std::uint16_t>(1 + rng.below(64));
    m.payload.resize(GetParam());
    for (auto& b : m.payload) b = static_cast<std::byte>(rng.bits() & 0xFF);

    const auto decoded = Packet::encode(m).decode();
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, m);
    EXPECT_EQ(decoded->ttl, m.ttl);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PacketSizeSweep,
                         ::testing::Values(0, 1, 2, 3, 8, 64, 255, 1024, 4096));

} // namespace
} // namespace snoc
