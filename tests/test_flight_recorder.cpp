// Flight recorder + post-mortem bundle tests: ring wraparound semantics
// at the capacity edge cases, deterministic multi-lane drain order (also
// under concurrent lane writers), the golden bundle byte layout, and the
// end-to-end guarantee that an injected conservation violation inside an
// audited ScenarioRunner sweep produces a bundle containing the violating
// round's events.
//
// The last suite doubles as the CI post-mortem mutation self-test: with
// SNOC_EXPECT_POSTMORTEM=1 in the environment it *requires* a bundle —
// CI tampers the engine's ledger ([mutation-point:ledger-transmitted]),
// rebuilds, and runs it to prove a real accounting bug still reaches a
// dump on disk.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "check/invariant_auditor.hpp"
#include "common/expect.hpp"
#include "sim/backends.hpp"
#include "sim/scenario.hpp"
#include "telemetry/export.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/query.hpp"

namespace snoc {
namespace {

TraceEvent event(Round round, TraceEventKind kind, TileId tile) {
    TraceEvent e;
    e.round = round;
    e.kind = kind;
    e.tile = tile;
    return e;
}

/// A deterministic synthetic event stream: round r emits two events.
std::vector<TraceEvent> stream(std::size_t rounds) {
    std::vector<TraceEvent> events;
    for (std::size_t r = 0; r < rounds; ++r) {
        events.push_back(event(static_cast<Round>(r),
                               TraceEventKind::Transmitted,
                               static_cast<TileId>(r % 25)));
        events.push_back(event(static_cast<Round>(r), TraceEventKind::Delivered,
                               static_cast<TileId>((r + 1) % 25)));
    }
    return events;
}

std::string drain_image(const FlightRecorder& recorder) {
    std::ostringstream os;
    for (const TraceEvent& e : recorder.drain())
        os << e.round << ' ' << static_cast<int>(e.kind) << ' ' << e.tile
           << '\n';
    return os.str();
}

TEST(FlightRecorder, KeepsNewestAtEveryCapacityEdge) {
    const auto events = stream(8); // 16 events
    for (const std::size_t capacity : {std::size_t{1}, events.size() - 1,
                                       events.size(), events.size() + 1}) {
        FlightRecorder recorder(capacity);
        for (const TraceEvent& e : events) recorder.record(e);
        const auto drained = recorder.drain();
        const std::size_t kept = std::min(capacity, events.size());
        ASSERT_EQ(drained.size(), kept) << "capacity " << capacity;
        EXPECT_EQ(recorder.dropped(), events.size() - kept);
        // The retained window is exactly the newest `kept` events, in
        // their original order.
        for (std::size_t i = 0; i < kept; ++i) {
            const TraceEvent& want = events[events.size() - kept + i];
            EXPECT_EQ(drained[i].round, want.round);
            EXPECT_EQ(drained[i].kind, want.kind);
            EXPECT_EQ(drained[i].tile, want.tile);
        }
    }
}

TEST(FlightRecorder, DrainIsByteIdenticalAcrossRepeats) {
    const auto events = stream(100);
    for (const std::size_t capacity : {std::size_t{1}, events.size() - 1,
                                       events.size(), events.size() + 1}) {
        FlightRecorder a(capacity);
        FlightRecorder b(capacity);
        for (const TraceEvent& e : events) a.record(e);
        for (const TraceEvent& e : events) b.record(e);
        EXPECT_EQ(drain_image(a), drain_image(b)) << "capacity " << capacity;
    }
}

TEST(FlightRecorder, TotalsSurviveOverwrites) {
    FlightRecorder recorder(2);
    for (const TraceEvent& e : stream(10)) recorder.record(e);
    const auto& totals = recorder.kind_totals();
    EXPECT_EQ(totals[static_cast<std::size_t>(TraceEventKind::Transmitted)],
              10u);
    EXPECT_EQ(totals[static_cast<std::size_t>(TraceEventKind::Delivered)], 10u);
    EXPECT_EQ(recorder.size(), 2u);
    EXPECT_EQ(recorder.dropped(), 18u);
}

TEST(FlightRecorder, ClearForgetsEverything) {
    FlightRecorder recorder(4);
    for (const TraceEvent& e : stream(10)) recorder.record(e);
    recorder.clear();
    EXPECT_EQ(recorder.size(), 0u);
    EXPECT_EQ(recorder.dropped(), 0u);
    EXPECT_TRUE(recorder.drain().empty());
    recorder.record(event(3, TraceEventKind::Delivered, 7));
    EXPECT_EQ(recorder.drain().size(), 1u);
}

/// Lanes merge by ascending round with lane-index tie-breaks — the
/// canonical order, independent of which lane was written first.
TEST(FlightRecorder, MultiLaneDrainOrderIsCanonical) {
    FlightRecorder recorder(16, 3);
    // Write lanes in "wrong" wall order: lane 2 first, then 0, then 1.
    for (const std::size_t lane : {2u, 0u, 1u})
        for (Round r = 0; r < 4; ++r)
            recorder.lane(lane).record(event(
                r, TraceEventKind::Transmitted, static_cast<TileId>(lane)));
    const auto drained = recorder.drain();
    ASSERT_EQ(drained.size(), 12u);
    for (std::size_t i = 0; i < drained.size(); ++i) {
        EXPECT_EQ(drained[i].round, static_cast<Round>(i / 3));
        EXPECT_EQ(drained[i].tile, static_cast<TileId>(i % 3)); // lane index
    }
}

/// Concurrent shard writers (the --jobs shape): each lane is written by
/// its own thread, yet the drain is identical to the serial fill — the
/// cross-lane order depends only on (round, lane), never on thread
/// scheduling.
TEST(FlightRecorder, ConcurrentLaneWritersDrainDeterministically) {
    constexpr std::size_t kLanes = 4;
    constexpr Round kRounds = 200;
    const auto fill = [](FlightRecorder& recorder, bool threaded) {
        const auto writer = [&recorder](std::size_t lane) {
            for (Round r = 0; r < kRounds; ++r)
                recorder.lane(lane).record(
                    event(r, TraceEventKind::Accepted,
                          static_cast<TileId>(lane * 100 + r % 100)));
        };
        if (threaded) {
            std::vector<std::thread> threads;
            for (std::size_t lane = 0; lane < kLanes; ++lane)
                threads.emplace_back(writer, lane);
            for (auto& t : threads) t.join();
        } else {
            for (std::size_t lane = 0; lane < kLanes; ++lane) writer(lane);
        }
    };
    FlightRecorder serial(64, kLanes);
    fill(serial, false);
    const std::string want = drain_image(serial);
    for (int repeat = 0; repeat < 4; ++repeat) {
        FlightRecorder threaded(64, kLanes);
        fill(threaded, true);
        EXPECT_EQ(drain_image(threaded), want) << "repeat " << repeat;
    }
}

/// The bundle byte layout is golden-checked; build-dependent header
/// fields (git SHA, check level) are scrubbed before comparing.
std::string scrub(std::string text) {
    text = std::regex_replace(text, std::regex("\"git_sha\":\"[^\"]*\""),
                              "\"git_sha\":\"SCRUBBED\"");
    text = std::regex_replace(text, std::regex("\"check_level\":[0-9]+"),
                              "\"check_level\":0");
    return text;
}

TEST(PostmortemBundle, GoldenBytes) {
    FlightRecorder recorder(6);
    for (const TraceEvent& e : stream(5)) recorder.record(e);
    TraceEvent with_msg = event(5, TraceEventKind::MessageCreated, 3);
    with_msg.message = MessageId{3, 1};
    recorder.record(with_msg);

    PostmortemInfo info;
    info.reason = "wire-conservation";
    info.detail = "injected: transmitted != accounted (test fixture)";
    info.experiment = "golden";
    info.backend = "gossip";
    info.seed = 42;
    info.has_metrics = true;
    info.metrics.rounds = 6;
    info.metrics.packets_sent = 11;
    info.metrics.deliveries = 5;

    std::ostringstream os;
    write_postmortem_bundle(recorder, info, os);
    const std::string image = scrub(os.str());

    const std::string path =
        std::string(SNOC_GOLDEN_DIR) + "/postmortem_bundle.golden";
    if (std::getenv("SNOC_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << image;
        GTEST_SKIP() << "golden updated: " << path;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << "missing golden " << path
                           << " (run with SNOC_UPDATE_GOLDEN=1 to capture)";
    std::ostringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(image, scrub(golden.str()));
}

TEST(PostmortemBundle, RoundTripsThroughTracequery) {
    FlightRecorder recorder(8);
    for (const TraceEvent& e : stream(6)) recorder.record(e);
    PostmortemInfo info;
    info.reason = "deadlock-sentinel";
    info.detail = "no packet moved for 64 cycles";
    info.experiment = "p=0.5";
    info.backend = "cut-through";
    info.seed = 7;
    std::ostringstream os;
    write_postmortem_bundle(recorder, info, os);

    std::istringstream is(os.str());
    const auto loaded = tracequery::load_jsonl(is);
    EXPECT_EQ(loaded.skipped, 0u);
    ASSERT_TRUE(loaded.postmortem.has_value());
    EXPECT_EQ(loaded.postmortem->reason, "deadlock-sentinel");
    EXPECT_EQ(loaded.postmortem->backend, "cut-through");
    EXPECT_EQ(loaded.postmortem->seed, 7u);
    EXPECT_EQ(loaded.postmortem->events, 8u);
    EXPECT_EQ(loaded.postmortem->events_overwritten, 4u);
    EXPECT_EQ(loaded.postmortem->first_round, 2u);
    EXPECT_EQ(loaded.postmortem->last_round, 5u);
    EXPECT_EQ(loaded.events.size(), 8u);
    // The round filters snoc_trace exposes work on the bundle's events.
    EXPECT_EQ(tracequery::last_rounds(loaded.events, 1).size(), 2u);
    EXPECT_EQ(tracequery::since_round(loaded.events, 4).size(), 4u);
}

/// An InvariantAuditor violation fires the thread-local hook, and an
/// armed dumper turns it into a bundle containing the recorder's events
/// for the violating round.  Dump-once: a second violation is ignored.
TEST(PostmortemDumper, AuditorViolationProducesBundle) {
    const std::string path = ::testing::TempDir() + "auditor.postmortem.jsonl";
    std::remove(path.c_str());

    FlightRecorder recorder(32);
    for (const TraceEvent& e : stream(9)) recorder.record(e);

    PostmortemInfo info;
    info.experiment = "unit";
    info.backend = "gossip";
    info.seed = 1;
    PostmortemDumper dumper(path, &recorder, info);
    EXPECT_FALSE(dumper.dumped());

    check::InvariantAuditor auditor;
    auditor.begin_run("unit");
    NetworkMetrics tampered;
    tampered.packets_sent = 5; // packets with zero bits: conservation broken.
    auditor.check_metrics(tampered, true);
    ASSERT_FALSE(auditor.clean());
    EXPECT_TRUE(dumper.dumped());

    const auto loaded = tracequery::load_jsonl_file(path);
    ASSERT_TRUE(loaded.postmortem.has_value());
    EXPECT_EQ(loaded.events.size(), 18u);
    EXPECT_EQ(loaded.postmortem->last_round, 8u);

    // Second violation in the same scope: first failure wins.
    const std::string first = loaded.postmortem->detail;
    auditor.check_metrics(tampered, true);
    const auto reloaded = tracequery::load_jsonl_file(path);
    ASSERT_TRUE(reloaded.postmortem.has_value());
    EXPECT_EQ(reloaded.postmortem->detail, first);
    std::remove(path.c_str());
}

/// End-to-end through ScenarioRunner: an audited gossip sweep with
/// --postmortem-out armed.  On a healthy build no bundle appears; when
/// CI tampers the conservation ledger ([mutation-point:ledger-transmitted]
/// in src/core/engine.cpp) and sets SNOC_EXPECT_POSTMORTEM=1, the bundle
/// MUST appear and carry the violating round's events — the proof that a
/// real accounting bug still reaches a dump on disk.
TEST(PostmortemDumper, AuditedSweepMutationSelfTest) {
    const std::string path = ::testing::TempDir() + "sweep.postmortem.jsonl";
    std::remove(path.c_str());

    ExperimentSpec spec;
    spec.name = "postmortem-self-test";
    spec.repeats = 1;
    spec.base_seed = 3;
    spec.max_rounds = 60;
    spec.audit = true;
    spec.telemetry.postmortem_out = path;
    spec.telemetry.flight_capacity = 256;
    spec.backend = [](const SweepPoint&, std::uint64_t seed) {
        GossipSpec gs;
        gs.topology = Topology::mesh(4, 4);
        gs.config.forward_p = 0.6;
        gs.config.default_ttl = 12;
        return make_interconnect(std::move(gs), FaultScenario::none(), seed);
    };
    spec.trace = [](const SweepPoint&) {
        TrafficTrace trace;
        TrafficPhase phase;
        phase.messages.push_back({0, 15, 64});
        phase.messages.push_back({15, 0, 64});
        trace.phases.push_back(phase);
        return trace;
    };
    const bool expect_bundle =
        std::getenv("SNOC_EXPECT_POSTMORTEM") != nullptr;
    std::vector<CellResult> results;
    try {
        results = ScenarioRunner(std::move(spec)).run();
    } catch (const ContractViolation&) {
        // On a tampered build the engine's own SNOC_CHECK(2) conservation
        // contract may abort the trial after the dumper has fired; the
        // bundle on disk is what this test is about.
        ASSERT_TRUE(expect_bundle) << "clean build threw ContractViolation";
    }

    std::ifstream bundle(path, std::ios::binary);
    if (!expect_bundle) {
        ASSERT_EQ(results.size(), 1u);
        EXPECT_EQ(results[0].stats.audit_violations, 0u);
        EXPECT_FALSE(bundle.good())
            << "clean run unexpectedly produced a post-mortem bundle";
        return;
    }
    ASSERT_TRUE(bundle.good())
        << "mutated build produced no post-mortem bundle at " << path;
    const auto loaded = tracequery::load_jsonl_file(path);
    ASSERT_TRUE(loaded.postmortem.has_value());
    EXPECT_FALSE(loaded.events.empty());
    // The bundle must contain events from the round the auditor flagged:
    // conservation is checked per round, so the violating round is the
    // last one the recorder saw.
    bool has_violating_round = false;
    for (const TraceEvent& e : loaded.events)
        if (e.round == loaded.postmortem->last_round) has_violating_round = true;
    EXPECT_TRUE(has_violating_round);
    std::remove(path.c_str());
}

} // namespace
} // namespace snoc
