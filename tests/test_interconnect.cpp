// The unified Interconnect adapters (sim/backends.hpp) must be zero-cost
// wrappers: a run through an adapter is metric-for-metric identical to
// driving the underlying backend by hand with the same seed, because the
// adapters reproduce the benches' exact construction order and RNG
// derivation.  These are the backend-parity tests the refactor rests on.
#include <gtest/gtest.h>

#include <cstdint>

#include "apps/trace_app.hpp"
#include "bus/bus.hpp"
#include "bus/xy_router.hpp"
#include "common/rng.hpp"
#include "core/engine.hpp"
#include "fault/injector.hpp"
#include "sim/backends.hpp"

namespace snoc {
namespace {

TrafficTrace corner_trace() {
    TrafficTrace trace;
    TrafficPhase phase;
    phase.messages.push_back({0, 24, 256});
    phase.messages.push_back({4, 20, 256});
    phase.messages.push_back({20, 4, 256});
    phase.messages.push_back({24, 0, 256});
    trace.phases.push_back(phase);
    return trace;
}

TEST(GossipAdapter, MatchesDirectNetworkRun) {
    const auto trace = corner_trace();
    FaultScenario scenario;
    scenario.p_tiles = 0.1;
    GossipConfig config;
    config.forward_p = 0.5;
    config.default_ttl = 40;

    for (std::uint64_t seed = 0; seed < 5; ++seed) {
        // By hand, exactly as the old ablation bench did.
        GossipNetwork net(Topology::mesh(5, 5), config, scenario, seed);
        for (TileId t : {0u, 4u, 20u, 24u}) net.protect(t);
        apps::TraceDriver driver(net, trace);
        const auto direct =
            net.run_until([&driver] { return driver.complete(); }, 1000);

        GossipSpec spec;
        spec.topology = Topology::mesh(5, 5);
        spec.config = config;
        spec.protect = {0, 4, 20, 24};
        GossipAdapter adapter(std::move(spec), scenario, seed);
        const RunReport report = adapter.run(trace, 1000);

        EXPECT_EQ(report.completed, direct.completed) << seed;
        EXPECT_EQ(report.rounds, direct.rounds) << seed;
        EXPECT_DOUBLE_EQ(report.seconds, direct.elapsed_seconds) << seed;
        EXPECT_EQ(report.transmissions, net.metrics().packets_sent) << seed;
        EXPECT_EQ(report.bits, net.metrics().bits_sent) << seed;
        EXPECT_EQ(report.deliveries, driver.delivered_messages()) << seed;
        EXPECT_EQ(report.metrics.deliveries, net.metrics().deliveries) << seed;
        EXPECT_EQ(report.seed, seed);
        EXPECT_EQ(adapter.kind(), BackendKind::Gossip);
    }
}

TEST(GossipAdapter, DrainMatchesManualDrain) {
    GossipConfig config;
    config.forward_p = 0.75;
    const auto trace = corner_trace();

    GossipNetwork net(Topology::mesh(5, 5), config, FaultScenario::none(), 7);
    apps::TraceDriver driver(net, trace);
    (void)net.run_until([&driver] { return driver.complete(); }, 1000);
    net.drain();

    GossipSpec spec;
    spec.config = config;
    spec.drain = true;
    GossipAdapter adapter(std::move(spec), FaultScenario::none(), 7);
    const RunReport report = adapter.run(trace, 1000);

    EXPECT_EQ(report.bits, net.metrics().bits_sent);
    EXPECT_EQ(report.transmissions, net.metrics().packets_sent);
}

TEST(GossipAdapter, ExactCrashesMatchForcedNetwork) {
    GossipConfig config;
    config.forward_p = 0.5;
    GossipNetwork net(Topology::mesh(5, 5), config, FaultScenario::none(), 3);
    net.protect(12);
    net.force_exact_tile_crashes(4);
    const auto direct = net.run_until([] { return false; }, 30);

    GossipSpec spec;
    spec.config = config;
    spec.protect = {12};
    spec.exact_tile_crashes = 4;
    GossipAdapter adapter(std::move(spec), FaultScenario::none(), 3);
    const RunReport report =
        adapter.run_until([] { return false; }, 30);

    EXPECT_EQ(report.completed, direct.completed);
    EXPECT_EQ(report.transmissions, net.metrics().packets_sent);
    EXPECT_EQ(report.bits, net.metrics().bits_sent);
}

TEST(BusAdapter, MatchesDirectBusRun) {
    const auto trace = corner_trace();
    const auto tech = Technology::cmos_025um();
    SharedBus bus(25, tech);
    const BusRunResult direct = bus.run(trace);

    BusAdapter adapter(BusSpec{25, tech}, FaultScenario::none(), 0);
    const RunReport report = adapter.run(trace, 0);

    EXPECT_TRUE(report.completed);
    EXPECT_DOUBLE_EQ(report.seconds, direct.seconds);
    EXPECT_DOUBLE_EQ(report.joules, direct.joules);
    EXPECT_EQ(report.transmissions, direct.transfers);
    EXPECT_EQ(report.bits, direct.bits);
    EXPECT_EQ(report.deliveries, trace.message_count());
    EXPECT_EQ(report.dropped, 0u);
}

TEST(BusAdapter, LinkCrashKillsTheBus) {
    FaultScenario scenario;
    scenario.p_links = 1.0; // certain crash: the medium is one link.
    BusAdapter adapter(BusSpec{}, scenario, 11);
    const RunReport report = adapter.run(corner_trace(), 0);
    EXPECT_FALSE(report.completed);
    EXPECT_EQ(report.deliveries, 0u);
    EXPECT_EQ(report.dropped, corner_trace().message_count());
}

TEST(XyAdapter, MatchesDirectXyRun) {
    const auto mesh = Topology::mesh(5, 5);
    const auto trace = corner_trace();
    FaultScenario scenario;
    scenario.p_tiles = 0.15;
    const std::vector<TileId> endpoints{0, 4, 20, 24};

    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        // By hand, exactly as the old ablation bench did.
        RngPool pool(seed);
        FaultInjector injector(scenario, pool);
        const auto crashes = injector.roll_crashes(mesh, endpoints);
        const XyRunResult direct = run_xy_trace(mesh, trace, crashes);

        XyAdapter adapter(XySpec{mesh, endpoints}, scenario, seed);
        const RunReport report = adapter.run(trace, 0);

        EXPECT_EQ(adapter.crashes().dead_tile_count(), crashes.dead_tile_count())
            << seed;
        EXPECT_EQ(report.deliveries, direct.delivered) << seed;
        EXPECT_EQ(report.dropped, direct.lost) << seed;
        EXPECT_EQ(report.transmissions, direct.hops) << seed;
        EXPECT_EQ(report.bits, direct.bits) << seed;
        EXPECT_EQ(report.completed, direct.lost == 0) << seed;
    }
}

TEST(WormholeAdapter, DeliversHealthyTrace) {
    WormholeAdapter adapter(WormholeSpec{}, FaultScenario::none(), 0);
    const RunReport report = adapter.run(corner_trace(), 10000);
    EXPECT_TRUE(report.completed);
    EXPECT_EQ(report.deliveries, 4u);
    EXPECT_EQ(report.dropped, 0u);
    EXPECT_GT(report.transmissions, 0u);
    EXPECT_GT(report.seconds, 0.0);
    EXPECT_GT(report.joules, 0.0);
}

TEST(DeflectionAdapter, DeliversHealthyTrace) {
    DeflectionAdapter adapter(DeflectionSpec{}, FaultScenario::none(), 0);
    const RunReport report = adapter.run(corner_trace(), 10000);
    EXPECT_TRUE(report.completed);
    EXPECT_EQ(report.deliveries, 4u);
    // Each corner-to-corner message needs at least the Manhattan distance.
    EXPECT_GE(report.transmissions, 4u * 8u);
    EXPECT_GT(report.bits, 0u);
}

TEST(StoreForwardAdapter, MatchesDirectRouterCoreRun) {
    const auto mesh = Topology::mesh(5, 5);
    const auto trace = corner_trace();
    FaultScenario scenario;
    scenario.p_tiles = 0.15;

    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        // By hand: the adapter's exact crash derivation and injection.
        StoreForwardSpec spec;
        RngPool pool(seed);
        FaultInjector injector(scenario, pool);
        const auto crashes = injector.roll_crashes(mesh, spec.protect);
        router::RouterCore core(mesh, spec.config);
        core.apply_crashes(crashes);
        for (const auto& m : trace.phases.front().messages)
            core.inject(m.src, m.dst, m.bits);
        while (!core.idle()) core.step();

        StoreForwardAdapter adapter(StoreForwardSpec{}, scenario, seed);
        const RunReport report = adapter.run(trace, 10000);

        EXPECT_EQ(adapter.crashes().dead_tile_count(), crashes.dead_tile_count())
            << seed;
        EXPECT_EQ(report.deliveries, core.delivered()) << seed;
        EXPECT_EQ(report.dropped, core.dropped()) << seed;
        EXPECT_EQ(report.rounds, static_cast<Round>(core.cycle())) << seed;
        EXPECT_EQ(report.transmissions, core.metrics().packets_sent) << seed;
        EXPECT_EQ(report.bits, core.metrics().bits_sent) << seed;
        EXPECT_EQ(report.completed, core.dropped() == 0) << seed;
    }
}

TEST(CutThroughAdapter, FasterThanStoreAndForwardOnLongPaths) {
    const auto trace = corner_trace();
    StoreForwardAdapter saf(StoreForwardSpec{}, FaultScenario::none(), 0);
    CutThroughAdapter vct(CutThroughSpec{}, FaultScenario::none(), 0);
    const RunReport rs = saf.run(trace, 10000);
    const RunReport rv = vct.run(trace, 10000);
    ASSERT_TRUE(rs.completed);
    ASSERT_TRUE(rv.completed);
    EXPECT_EQ(rs.deliveries, 4u);
    EXPECT_EQ(rv.deliveries, 4u);
    // Same hop counts (both dimension-ordered), fewer cycles cut-through.
    EXPECT_EQ(rv.transmissions, rs.transmissions);
    EXPECT_LT(rv.rounds, rs.rounds);
    EXPECT_LT(rv.seconds, rs.seconds);
}

TEST(AdaptiveAdapter, SurvivesFaultsThatKillDimensionOrder) {
    // Hunt for a seed whose crash pattern blocks at least one XY path but
    // leaves a detour; the adaptive backend must then strictly beat
    // store-and-forward's delivery count under the identical crash roll.
    const auto trace = corner_trace();
    FaultScenario scenario;
    scenario.p_tiles = 0.2;
    bool found = false;
    for (std::uint64_t seed = 0; seed < 64 && !found; ++seed) {
        StoreForwardAdapter dor(StoreForwardSpec{}, scenario, seed);
        AdaptiveAdapter adaptive(AdaptiveSpec{}, scenario, seed);
        const RunReport rd = dor.run(trace, 10000);
        const RunReport ra = adaptive.run(trace, 10000);
        EXPECT_GE(ra.deliveries, rd.deliveries) << seed;
        if (ra.deliveries > rd.deliveries) found = true;
    }
    EXPECT_TRUE(found) << "no seed where the detour mattered in 64 rolls";
}

TEST(Factory, BuildsEveryBackendKind) {
    for (const BackendKind kind : kBackendKinds) {
        const auto backend = make_interconnect(kind, FaultScenario::none(), 1);
        ASSERT_NE(backend, nullptr);
        EXPECT_EQ(backend->kind(), kind);
        EXPECT_FALSE(backend->name().empty());
    }
}

TEST(Factory, BackendsRunTheSameTrace) {
    const auto trace = corner_trace();
    for (const BackendKind kind : kBackendKinds) {
        const auto backend = make_interconnect(kind, FaultScenario::none(), 1);
        const RunReport report = backend->run(trace, 10000);
        EXPECT_TRUE(report.completed) << to_string(kind);
        EXPECT_EQ(report.messages, 4u) << to_string(kind);
        EXPECT_EQ(report.deliveries, 4u) << to_string(kind);
    }
}

} // namespace
} // namespace snoc
