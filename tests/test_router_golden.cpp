// The refactor proof for the layered router core (src/router/): the XY,
// wormhole and deflection backends must produce byte-identical RunReports
// and trace JSONL before and after being re-expressed as configurations
// of the shared core.  The golden files under tests/golden/ were captured
// from the pre-refactor implementations; this suite replays the same
// (config, scenario, seed) grid and compares bytes.
//
// Regenerating (only legitimate when a deliberate behaviour change is
// being made, never to paper over an accidental divergence):
//   SNOC_UPDATE_GOLDEN=1 build/tests/test_router_golden
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/backends.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"

namespace snoc {
namespace {

TrafficTrace corner_trace() {
    TrafficTrace trace;
    TrafficPhase phase;
    phase.messages.push_back({0, 24, 256});
    phase.messages.push_back({4, 20, 256});
    phase.messages.push_back({20, 4, 256});
    phase.messages.push_back({24, 0, 256});
    trace.phases.push_back(phase);
    return trace;
}

/// Two phases with crossing flows: enough contention that arbitration,
/// VC allocation and deflection-shuffle order all leave fingerprints in
/// the event stream.
TrafficTrace crossing_trace() {
    TrafficTrace trace;
    TrafficPhase a;
    a.messages.push_back({0, 24, 128});
    a.messages.push_back({1, 23, 128});
    a.messages.push_back({2, 22, 128});
    a.messages.push_back({10, 14, 64});
    a.messages.push_back({14, 10, 64});
    trace.phases.push_back(a);
    TrafficPhase b;
    b.messages.push_back({24, 0, 256});
    b.messages.push_back({20, 4, 256});
    b.messages.push_back({12, 0, 32});
    trace.phases.push_back(b);
    return trace;
}

std::string serialize_report(const RunReport& r) {
    std::ostringstream os;
    os << r.completed << ' ' << r.rounds << ' '
       << std::hexfloat << r.seconds << std::defaultfloat << ' '
       << r.transmissions << ' ' << r.bits << ' ' << r.messages << ' '
       << r.deliveries << ' ' << r.dropped << ' '
       << std::hexfloat << r.joules << std::defaultfloat << ' '
       << r.seed << ' ' << r.attempts << '\n';
    write_metrics_json(r.metrics, os);
    return os.str();
}

/// RunReport bytes + trace JSONL bytes for one adapter-driven run.
std::string run_image(Interconnect& backend, const TrafficTrace& trace,
                      Round limit) {
    Telemetry telemetry;
    backend.set_trace_sink(&telemetry);
    const RunReport report = backend.run(trace, limit);
    std::ostringstream os;
    os << serialize_report(report);
    os << "--- jsonl ---\n";
    write_jsonl(telemetry, os);
    return os.str();
}

FaultScenario faulty() {
    FaultScenario s;
    s.p_tiles = 0.12;
    return s;
}

/// The pre/post-refactor comparison grid: every packet-switched backend x
/// {fault-free, crashing} x seeds, on both traces.
std::string golden_image(const std::string& name) {
    const std::vector<TileId> corners{0, 4, 20, 24};
    std::ostringstream os;
    for (const bool faults : {false, true}) {
        const FaultScenario scenario = faults ? faulty() : FaultScenario::none();
        for (std::uint64_t seed = 1; seed <= 3; ++seed) {
            for (const bool crossing : {false, true}) {
                const auto trace = crossing ? crossing_trace() : corner_trace();
                os << "# faults=" << faults << " seed=" << seed
                   << " crossing=" << crossing << '\n';
                if (name == "xy") {
                    XyAdapter adapter(XySpec{Topology::mesh(5, 5), corners},
                                      scenario, seed);
                    os << run_image(adapter, trace, 0);
                } else if (name == "wormhole_xy" || name == "wormhole_wf") {
                    WormholeSpec spec;
                    spec.protect = corners;
                    spec.config.routing = name == "wormhole_wf"
                                              ? wormhole::Routing::WestFirst
                                              : wormhole::Routing::Xy;
                    WormholeAdapter adapter(std::move(spec), scenario, seed);
                    os << run_image(adapter, trace, 10000);
                } else if (name == "deflection") {
                    DeflectionSpec spec;
                    spec.protect = corners;
                    DeflectionAdapter adapter(std::move(spec), scenario, seed);
                    os << run_image(adapter, trace, 10000);
                } else {
                    ADD_FAILURE() << "unknown golden backend " << name;
                }
            }
        }
    }
    return os.str();
}

class RouterGolden : public ::testing::TestWithParam<const char*> {};

TEST_P(RouterGolden, BytesMatchPreRefactorCapture) {
    const std::string name = GetParam();
    const std::string path =
        std::string(SNOC_GOLDEN_DIR) + "/router_" + name + ".golden";
    const std::string image = golden_image(name);
    ASSERT_FALSE(image.empty());

    if (std::getenv("SNOC_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << image;
        GTEST_SKIP() << "golden updated: " << path;
    }

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << "missing golden " << path
                           << " (run with SNOC_UPDATE_GOLDEN=1 to capture)";
    std::ostringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(image, golden.str())
        << name << " diverged from the pre-refactor capture";
}

INSTANTIATE_TEST_SUITE_P(PacketSwitched, RouterGolden,
                         ::testing::Values("xy", "wormhole_xy", "wormhole_wf",
                                           "deflection"));

} // namespace
} // namespace snoc
