
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/audio.cpp" "src/apps/CMakeFiles/snoc_apps.dir/audio.cpp.o" "gcc" "src/apps/CMakeFiles/snoc_apps.dir/audio.cpp.o.d"
  "/root/repo/src/apps/beamforming.cpp" "src/apps/CMakeFiles/snoc_apps.dir/beamforming.cpp.o" "gcc" "src/apps/CMakeFiles/snoc_apps.dir/beamforming.cpp.o.d"
  "/root/repo/src/apps/bitstream.cpp" "src/apps/CMakeFiles/snoc_apps.dir/bitstream.cpp.o" "gcc" "src/apps/CMakeFiles/snoc_apps.dir/bitstream.cpp.o.d"
  "/root/repo/src/apps/fft.cpp" "src/apps/CMakeFiles/snoc_apps.dir/fft.cpp.o" "gcc" "src/apps/CMakeFiles/snoc_apps.dir/fft.cpp.o.d"
  "/root/repo/src/apps/fft2d_app.cpp" "src/apps/CMakeFiles/snoc_apps.dir/fft2d_app.cpp.o" "gcc" "src/apps/CMakeFiles/snoc_apps.dir/fft2d_app.cpp.o.d"
  "/root/repo/src/apps/master_slave_pi.cpp" "src/apps/CMakeFiles/snoc_apps.dir/master_slave_pi.cpp.o" "gcc" "src/apps/CMakeFiles/snoc_apps.dir/master_slave_pi.cpp.o.d"
  "/root/repo/src/apps/mdct.cpp" "src/apps/CMakeFiles/snoc_apps.dir/mdct.cpp.o" "gcc" "src/apps/CMakeFiles/snoc_apps.dir/mdct.cpp.o.d"
  "/root/repo/src/apps/mp3_app.cpp" "src/apps/CMakeFiles/snoc_apps.dir/mp3_app.cpp.o" "gcc" "src/apps/CMakeFiles/snoc_apps.dir/mp3_app.cpp.o.d"
  "/root/repo/src/apps/mp3_decoder.cpp" "src/apps/CMakeFiles/snoc_apps.dir/mp3_decoder.cpp.o" "gcc" "src/apps/CMakeFiles/snoc_apps.dir/mp3_decoder.cpp.o.d"
  "/root/repo/src/apps/producer_consumer.cpp" "src/apps/CMakeFiles/snoc_apps.dir/producer_consumer.cpp.o" "gcc" "src/apps/CMakeFiles/snoc_apps.dir/producer_consumer.cpp.o.d"
  "/root/repo/src/apps/psycho.cpp" "src/apps/CMakeFiles/snoc_apps.dir/psycho.cpp.o" "gcc" "src/apps/CMakeFiles/snoc_apps.dir/psycho.cpp.o.d"
  "/root/repo/src/apps/quantizer.cpp" "src/apps/CMakeFiles/snoc_apps.dir/quantizer.cpp.o" "gcc" "src/apps/CMakeFiles/snoc_apps.dir/quantizer.cpp.o.d"
  "/root/repo/src/apps/sat.cpp" "src/apps/CMakeFiles/snoc_apps.dir/sat.cpp.o" "gcc" "src/apps/CMakeFiles/snoc_apps.dir/sat.cpp.o.d"
  "/root/repo/src/apps/sensors.cpp" "src/apps/CMakeFiles/snoc_apps.dir/sensors.cpp.o" "gcc" "src/apps/CMakeFiles/snoc_apps.dir/sensors.cpp.o.d"
  "/root/repo/src/apps/trace_app.cpp" "src/apps/CMakeFiles/snoc_apps.dir/trace_app.cpp.o" "gcc" "src/apps/CMakeFiles/snoc_apps.dir/trace_app.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/snoc_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/snoc_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fault/CMakeFiles/snoc_fault.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/noc/CMakeFiles/snoc_noc.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/snoc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
