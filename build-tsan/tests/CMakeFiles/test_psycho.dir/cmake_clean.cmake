file(REMOVE_RECURSE
  "CMakeFiles/test_psycho.dir/test_psycho.cpp.o"
  "CMakeFiles/test_psycho.dir/test_psycho.cpp.o.d"
  "test_psycho"
  "test_psycho.pdb"
  "test_psycho[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_psycho.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
