// Ablation (ours): scalability in mesh size.  The thesis simulates 16-25
// tiles and argues "gossip algorithms are known to scale extremely well
// even beyond these dimensions" — this bench measures it: rounds for a
// full broadcast vs. mesh side (expected ~ diameter + O(log n) at fixed
// p), packets per tile (expected ~ flat: each tile relays a bounded
// number of copies per rumor), against Pittel's fully-connected bound.
//
// Flags beyond the uniform bench set:
//   --sides 4,8,256     mesh sides to sweep (default 4,6,8,10,12,16)
//   --ttl 40            rumor TTL (default 512; small TTLs keep the
//                       active region a thin wavefront, the sparse
//                       workload the --engine event executor skips idle
//                       tiles on — scripts/bench_snapshot.sh drives a
//                       1000x1000 mesh through it in seconds)
// Each cell reports wall-clock seconds per trial next to the simulated
// rounds, so lockstep-vs-event comparisons drop out of two runs; a trial
// ends when the rumor has reached every tile or died out (quiescence),
// and the coverage column tells which.
#include <chrono>
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "core/analytic.hpp"
#include "core/tuning.hpp"

namespace {

class CornerSource final : public snoc::IpCore {
public:
    void on_start(snoc::TileContext& ctx) override {
        ctx.send(snoc::kBroadcast, 0xB1, {std::byte{7}});
    }
    void on_message(const snoc::Message&, snoc::TileContext&) override {}
};

std::vector<std::size_t> parse_sides(const std::string& csv) {
    std::vector<std::size_t> sides;
    std::size_t pos = 0;
    while (pos < csv.size()) {
        const auto comma = csv.find(',', pos);
        const auto token = csv.substr(
            pos, comma == std::string::npos ? std::string::npos : comma - pos);
        const auto side = static_cast<std::size_t>(std::strtoull(token.c_str(), nullptr, 10));
        if (side >= 2) sides.push_back(side);
        if (comma == std::string::npos) break;
        pos = comma + 1;
    }
    return sides;
}

} // namespace

int main(int argc, char** argv) {
    using namespace snoc;
    const CliArgs args(argc, argv);
    const auto opt = bench::options(argc, argv, 10);
    constexpr double kP = 0.5;

    std::vector<std::size_t> sides = {4, 6, 8, 10, 12, 16};
    if (args.has("sides")) sides = parse_sides(args.get_string("sides", ""));
    const auto ttl = static_cast<std::uint16_t>(args.get_u64("ttl", 512));
    // A single-trial cell (the mega-mesh configuration) shards its one
    // network across --jobs strips; multi-trial cells keep one strip and
    // let the trial fan-out fill the pool instead.
    const EngineSelect engine =
        bench::engine_select(opt, opt.repeats == 1 ? opt.jobs : 1);
    const Round cap = std::max<Round>(2000, 4 * static_cast<Round>(ttl));

    struct Trial {
        bool completed{false}; ///< the rumor reached every tile.
        double rounds{0.0}, packets{0.0}, coverage{0.0}, wall_s{0.0};
    };

    Table table({"mesh", "tiles", "rounds", "diameter/p + slack",
                 "Pittel (full graph)", "packets/tile", "coverage [%]",
                 "wall [s]"});
    for (std::size_t side : sides) {
        const auto topo = Topology::mesh(side, side);
        const std::size_t n = topo.node_count();
        const std::size_t diameter = 2 * (side - 1);
        const auto trials = run_trials(
            opt.repeats,
            [&](std::uint64_t seed) {
                GossipConfig c = bench::config_with_p(kP, ttl);
                GossipNetwork net(topo, c, FaultScenario::none(), seed, engine);
                net.attach(0, std::make_unique<CornerSource>());
                // Wall time measures the simulator, never the simulation:
                // the duration feeds only this report column.  Timing
                // starts after construction — building the tiles costs
                // the same under either engine, and the column exists to
                // compare the engines' round execution.
                const auto t0 = std::chrono::steady_clock::now();
                const MessageId rumor{0, 0};
                // Stop at full coverage or at rumor death (quiescence) —
                // with a small TTL the broadcast is a travelling wavefront
                // that dies before reaching the far corner, and the run
                // should end with it.
                const auto r = net.run_until(
                    [&net, &rumor, n]() mutable {
                        return net.tiles_knowing(rumor) == n || net.quiescent();
                    },
                    cap);
                Trial out;
                const std::size_t knowing = net.tiles_knowing(rumor);
                out.completed = knowing == n;
                out.rounds = static_cast<double>(r.rounds);
                out.coverage =
                    100.0 * static_cast<double>(knowing) / static_cast<double>(n);
                if (r.rounds > 0)
                    out.packets = static_cast<double>(net.metrics().packets_sent) /
                                  static_cast<double>(n) /
                                  static_cast<double>(r.rounds);
                out.wall_s = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
                return out;
            },
            opt.jobs);
        Accumulator rounds, packets, coverage, wall;
        for (const Trial& t : trials) {
            rounds.add(t.rounds);
            packets.add(t.packets);
            coverage.add(t.coverage);
            wall.add(t.wall_s);
        }
        table.add_row({std::to_string(side) + "x" + std::to_string(side),
                       std::to_string(n), format_number(rounds.mean(), 1),
                       std::to_string(estimate_ttl(diameter, kP)),
                       format_number(analytic::pittel_rounds(n), 1),
                       format_number(packets.mean(), 2),
                       format_number(coverage.mean(), 1),
                       format_number(wall.mean(), 3)});
    }
    bench::emit(table, opt,
                std::string("Ablation: broadcast scalability vs mesh size "
                            "(p=0.5, engine=") +
                    to_string(opt.engine) + ")");
    std::cout << "\nReading: rounds grow with the diameter (linear in the\n"
                 "side), per-tile per-round traffic stays flat - the locality\n"
                 "property that makes gossip viable at hundreds of IPs.\n";
    return 0;
}
