#!/usr/bin/env bash
# Static-analysis entry point: determinism lint (always) + clang-tidy
# (when installed; the container ships gcc only, CI installs clang-tidy).
#
#   scripts/lint.sh [build-dir]
#
# The build dir is only needed for clang-tidy (compile_commands.json);
# configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON (the default here).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "== determinism lint =="
python3 scripts/lint_determinism.py

if command -v clang-tidy >/dev/null 2>&1; then
    if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
        echo "clang-tidy: no ${BUILD_DIR}/compile_commands.json - configure first" >&2
        exit 1
    fi
    echo "== clang-tidy =="
    # First-party translation units only; checks come from .clang-tidy.
    mapfile -t sources < <(find src bench examples -name '*.cpp' | sort)
    if command -v run-clang-tidy >/dev/null 2>&1; then
        run-clang-tidy -quiet -p "${BUILD_DIR}" "${sources[@]}"
    else
        clang-tidy -p "${BUILD_DIR}" --quiet "${sources[@]}"
    fi
else
    echo "clang-tidy not installed - skipping (CI runs it)" >&2
fi

echo "lint: OK"
