"""Reporting: text, machine JSON, SARIF 2.1.0, and the suppression baseline.

The baseline (scripts/lint_baseline.json) lets pre-existing findings be
burned down incrementally: a finding whose (rule, file, key) triple is
listed there is reported as suppressed and does not fail the run.
Baseline entries that no longer match anything are themselves reported
(`baseline-stale`) so the file can only shrink.
"""

from __future__ import annotations

import json
from pathlib import Path

from model import Finding

BASELINE_FILE = "scripts/lint_baseline.json"

RULE_DESCRIPTIONS = {
    "layer-forbidden": "include crosses the layer DAG the wrong way",
    "layer-cycle": "include cycle between first-party files",
    "layer-unassigned": "file matches no layer in scripts/layers.toml",
    "registry-event-emit": "TraceEventKind with no emit site",
    "registry-event-test": "TraceEventKind never referenced by a test",
    "registry-metrics-telemetry":
        "NetworkMetrics counter missing from the telemetry summary exporter",
    "registry-metrics-audit":
        "NetworkMetrics counter missing from the invariant auditor",
    "registry-backend-equivalence":
        "BackendKind missing from the engine-equivalence test marker",
    "check-level": "SNOC_CHECK level is not the literal 0, 1 or 2",
    "det-rand": "std::rand/srand in simulator code",
    "det-random-device": "std::random_device in simulator code",
    "det-wall-clock": "wall-clock call in simulator code",
    "det-mt19937-unseeded": "default-constructed (unseeded) mt19937",
    "det-chrono-clock": "unallowlisted chrono clock read",
    "det-unordered-container": "unallowlisted unordered container",
    "det-unordered-iteration": "range-for over an unordered container",
    "rng-raw-dist": "raw std::*_distribution outside src/common/",
    "pragma-once": "header lacks #pragma once",
    "stale-allowlist": "determinism allowlist entry no longer matches",
    "baseline-stale": "baseline suppression no longer matches any finding",
    "conc-raw-mutex":
        "raw std::mutex/std::condition_variable member (use snoc::Mutex)",
    "conc-guarded-by":
        "member of a lock-owning class lacks SNOC_GUARDED_BY",
    "conc-relaxed-unjustified":
        "memory_order_relaxed without a relaxed[tag] justification",
    "conc-relaxed-unknown-tag":
        "relaxed[tag] not present in scripts/ordering_allowlist.txt",
    "conc-naked-thread": "std::thread outside src/common/",
    "conc-ordering-stale-tag": "ordering allowlist tag no longer used",
    "conc-allowlist-stale": "concurrency allowlist entry no longer matches",
}

# SARIF severity per rule: structural violations that must gate a merge
# are errors (the default); hygiene/bookkeeping findings still fail the
# run but annotate as warnings; staleness in the baseline itself is a
# note.  Anything unlisted is an error so a new rule cannot silently
# ship at a soft severity.
RULE_LEVELS = {
    "pragma-once": "warning",
    "layer-unassigned": "warning",
    "stale-allowlist": "warning",
    "conc-ordering-stale-tag": "warning",
    "conc-allowlist-stale": "warning",
    "baseline-stale": "note",
}


def rule_level(rule: str) -> str:
    return RULE_LEVELS.get(rule, "error")


def load_baseline(root: Path, path: str | None) -> list[dict]:
    baseline_path = root / (path or BASELINE_FILE)
    if not baseline_path.exists():
        return []
    data = json.loads(baseline_path.read_text())
    return list(data.get("suppressions", []))


def _write_entries(root: Path, path: str | None, entries: list[dict]) -> None:
    entries = sorted(entries, key=lambda e: (e.get("rule", ""),
                                             e.get("file", ""),
                                             e.get("key", "")))
    payload = {
        "comment": "snoc_lint suppression baseline - burn down, never grow "
                   "(regenerate with --update-baseline).",
        "suppressions": entries,
    }
    (root / (path or BASELINE_FILE)).write_text(
        json.dumps(payload, indent=2) + "\n")


def write_baseline(root: Path, path: str | None,
                   findings: list[Finding]) -> None:
    _write_entries(root, path, [
        {"rule": f.rule, "file": f.file, "key": f.key or f.message}
        for f in findings])


def prune_baseline(root: Path, path: str | None,
                   findings: list[Finding]) -> int:
    """Drop baseline suppressions that no longer match any current
    finding (the `--baseline-prune` flag) and rewrite the file in place.
    Returns the number of entries removed; the file is untouched when
    nothing is stale."""
    suppressions = load_baseline(root, path)
    live = {f.identity() for f in findings}
    kept = [s for s in suppressions
            if (s.get("rule", ""), s.get("file", ""), s.get("key", "")) in live]
    removed = len(suppressions) - len(kept)
    if removed:
        _write_entries(root, path, kept)
    return removed


def apply_baseline(findings: list[Finding], suppressions: list[dict]
                   ) -> tuple[list[Finding], list[Finding], list[Finding]]:
    """-> (active, suppressed, stale-baseline findings)."""
    table = {(s.get("rule", ""), s.get("file", ""), s.get("key", "")): False
             for s in suppressions}
    active: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in findings:
        ident = finding.identity()
        if ident in table:
            table[ident] = True
            suppressed.append(finding)
        else:
            active.append(finding)
    stale = [Finding(rule="baseline-stale", file=BASELINE_FILE, line=0,
                     message=f"suppression ({rule}, {file}, {key}) matches "
                             "no current finding; delete it",
                     key=f"{rule}|{file}|{key}")
             for (rule, file, key), hit in table.items() if not hit]
    return active, suppressed, stale


def to_json(findings: list[Finding], suppressed: list[Finding],
            scanned: int) -> dict:
    def one(f: Finding) -> dict:
        return {"rule": f.rule, "file": f.file, "line": f.line,
                "message": f.message, "key": f.key or f.message}
    return {"tool": "snoc_lint", "scanned_files": scanned,
            "findings": [one(f) for f in findings],
            "suppressed": [one(f) for f in suppressed]}


def to_sarif(findings: list[Finding], suppressed: list[Finding]) -> dict:
    """SARIF 2.1.0 - the schema GitHub code scanning ingests for inline
    PR annotations.  Suppressed findings ride along with a suppression
    object so the baseline is visible in the artifact."""
    rules_used = sorted({f.rule for f in findings + list(suppressed)})
    results = []
    for finding, is_suppressed in ([(f, False) for f in findings]
                                   + [(f, True) for f in suppressed]):
        result = {
            "ruleId": finding.rule,
            "level": rule_level(finding.rule),
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.file or "scripts/layers.toml",
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {"startLine": max(finding.line, 1)},
                },
            }],
        }
        if is_suppressed:
            result["suppressions"] = [{"kind": "external",
                                       "justification": BASELINE_FILE}]
        results.append(result)
    return {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                   "master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "snoc_lint",
                "informationUri": "https://example.invalid/snoc_lint",
                "rules": [{
                    "id": rule,
                    "shortDescription": {
                        "text": RULE_DESCRIPTIONS.get(rule, rule)},
                    "defaultConfiguration": {"level": rule_level(rule)},
                } for rule in rules_used],
            }},
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "results": results,
        }],
    }
