"""Concurrency-discipline checkers — the lint half of the thread-safety
story (the compiler half is Clang `-Wthread-safety` behind the
SNOC_THREAD_SAFETY CMake option; see DESIGN.md §16).

The Clang analysis can only check what is annotated.  These rules close
the holes annotation-based checking cannot see:

* conc-raw-mutex — a `std::mutex` / `std::condition_variable` data
  member is invisible to the analysis; lock-owning classes must use
  `snoc::Mutex` / `snoc::CondVar` (common/annotations.hpp) or carry an
  allowlist entry saying why not.
* conc-guarded-by — a class that owns a `snoc::Mutex` must mark every
  plain data member with `SNOC_GUARDED_BY(...)`; an unannotated member
  of a lock-owning class is exactly the state the analysis silently
  stops checking.
* conc-relaxed-unjustified / conc-relaxed-unknown-tag — every
  `memory_order_relaxed` site needs a `relaxed[tag]` comment naming a
  justification pattern from scripts/ordering_allowlist.txt; relaxed
  is the one ordering the hardware will never punish you for locally
  and always punish you for globally.
* conc-naked-thread — `std::thread` in simulator code outside
  src/common/: thread lifecycles belong to the ThreadPool.
* conc-ordering-stale-tag / conc-allowlist-stale — allowlist entries
  must rot loudly, not silently.
"""

from __future__ import annotations

import re
from pathlib import Path

from model import Finding, Project

CONCURRENCY_ALLOWLIST_FILE = "scripts/concurrency_allowlist.txt"
ORDERING_ALLOWLIST_FILE = "scripts/ordering_allowlist.txt"

# The annotated-lock vocabulary itself wraps the raw primitives.
ANNOTATIONS_HEADER = "src/common/annotations.hpp"

MEMBER_TOPS = ("src", "bench", "tools", "examples")

CLASS_RE = re.compile(
    r"\b(?:class|struct)\s+(?:SNOC_\w+(?:\([^)]*\))?\s+)*(\w+)\s*"
    r"(?:final\s*)?(?::[^;{]*)?\{")

SNOC_MUTEX_MEMBER = re.compile(
    r"(?:^|\s)(?:mutable\s+)?(?:snoc::)?Mutex\s+(\w+)\s*;")
RAW_SYNC_MEMBER = re.compile(
    r"(?:^|\s)(?:mutable\s+)?std::(mutex|recursive_mutex|timed_mutex|"
    r"shared_mutex|condition_variable|condition_variable_any)\s+(\w+)\s*;")
MEMBER_NAME = re.compile(r"([A-Za-z_]\w*)\s*(?:\{[^{}]*\})?\s*;\s*$")

# Types that legitimately live unannotated in a lock-owning class: the
# lock vocabulary itself and lock-free atomics.
EXEMPT_MEMBER_TYPES = re.compile(
    r"\b(?:snoc::)?(?:Mutex|CondVar|UniqueLock|LockGuard)\b|"
    r"\bstd::atomic\b|\bstd::condition_variable\b|\bstd::mutex\b")
SKIP_MEMBER_PREFIX = re.compile(
    r"^\s*(?:using\b|typedef\b|static\b|friend\b|template\b|enum\b|"
    r"public\s*:|private\s*:|protected\s*:|#)")

RELAXED = re.compile(r"\bmemory_order_relaxed\b")
RELAXED_TAG = re.compile(r"relaxed\[([a-z0-9-]+)\]")

NAKED_THREAD = re.compile(r"\bstd::thread\b")


def load_keyed_allowlist(root: Path, rel: str) -> dict[str, int]:
    """`key  justification` lines -> {key: line number}."""
    entries: dict[str, int] = {}
    path = root / rel
    if not path.exists():
        return entries
    for lineno, raw in enumerate(path.read_text().splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        entries.setdefault(line.split()[0], lineno)
    return entries


def iter_class_bodies(code: str):
    """Yield (class_name, [(lineno, depth-1 line)]) for every class/struct
    body in comment-stripped text.  Depth-1 lines are the class's own
    member/declaration lines; nested braces (function bodies, nested
    classes — which get their own iteration) are skipped."""
    for m in CLASS_RE.finditer(code):
        name = m.group(1)
        open_pos = code.index("{", m.end() - 1)
        depth = 0
        i = open_pos
        line_start = code.count("\n", 0, open_pos) + 1
        body_lines: list[tuple[int, str]] = []
        current: list[str] = []
        lineno = line_start
        while i < len(code):
            c = code[i]
            if c == "{":
                depth += 1
            elif c == "}":
                depth -= 1
                if depth == 0:
                    if current:
                        body_lines.append((lineno, "".join(current)))
                    break
            elif c == "\n":
                if depth == 1 and current:
                    body_lines.append((lineno, "".join(current)))
                current = []
                lineno += 1
                i += 1
                continue
            if depth == 1 and c not in "{}":
                current.append(c)
            i += 1
        yield name, body_lines


def _member_findings(src, allow: dict[str, int]) -> list[Finding]:
    findings: list[Finding] = []
    for cls, body in iter_class_bodies(src.code):
        mutex_names = []
        for _, line in body:
            m = SNOC_MUTEX_MEMBER.search(line)
            if m:
                mutex_names.append(m.group(1))
        for lineno, line in body:
            raw_sync = RAW_SYNC_MEMBER.search(line)
            if raw_sync and src.rel != ANNOTATIONS_HEADER:
                key = f"{src.rel}:{cls}::{raw_sync.group(2)}"
                if key not in allow:
                    findings.append(Finding(
                        rule="conc-raw-mutex", file=src.rel, line=lineno,
                        message=f"std::{raw_sync.group(1)} member "
                                f"'{raw_sync.group(2)}' in '{cls}': invisible "
                                f"to the thread-safety analysis; use "
                                f"snoc::Mutex/snoc::CondVar "
                                f"(common/annotations.hpp) or allowlist "
                                f"'{key}' in {CONCURRENCY_ALLOWLIST_FILE}",
                        key=key))
        if not mutex_names or src.rel == ANNOTATIONS_HEADER:
            continue
        guard = mutex_names[0]
        for lineno, line in body:
            if "SNOC_GUARDED_BY" in line or "SNOC_PT_GUARDED_BY" in line:
                continue
            if "(" in line:
                continue  # functions; heuristic also skips std::function members
            if SKIP_MEMBER_PREFIX.search(line):
                continue
            m = MEMBER_NAME.search(line)
            if not m:
                continue
            member = m.group(1)
            decl = line[:m.start(1)]
            if not decl.strip():
                continue  # label / lone identifier, not a declaration
            if EXEMPT_MEMBER_TYPES.search(decl) or \
                    re.search(r"(?:^|\s)const\s", " " + decl):
                continue
            key = f"{src.rel}:{cls}::{member}"
            if key not in allow:
                findings.append(Finding(
                    rule="conc-guarded-by", file=src.rel, line=lineno,
                    message=f"member '{member}' of lock-owning class '{cls}' "
                            f"has no SNOC_GUARDED_BY annotation; mark it "
                            f"SNOC_GUARDED_BY({guard}) (or the right "
                            f"capability), or allowlist '{key}' in "
                            f"{CONCURRENCY_ALLOWLIST_FILE} with why it needs "
                            f"no lock",
                    key=key))
    return findings


def check_concurrency(project: Project) -> list[Finding]:
    allow = load_keyed_allowlist(project.root, CONCURRENCY_ALLOWLIST_FILE)
    ordering = load_keyed_allowlist(project.root, ORDERING_ALLOWLIST_FILE)
    findings: list[Finding] = []
    used_tags: set[str] = set()

    for src in sorted(project.by_top(*MEMBER_TOPS), key=lambda f: f.rel):
        findings.extend(_member_findings(src, allow))
        raw_lines = src.raw.splitlines()
        for lineno, line in enumerate(src.code_lines(), 1):
            if RELAXED.search(line):
                window = raw_lines[max(0, lineno - 2):lineno]
                tags = [t for raw in window for t in RELAXED_TAG.findall(raw)]
                if not tags:
                    findings.append(Finding(
                        rule="conc-relaxed-unjustified", file=src.rel,
                        line=lineno,
                        message="memory_order_relaxed without a "
                                "'relaxed[tag]' justification comment (same "
                                "line or the line above); pick a tag from "
                                f"{ORDERING_ALLOWLIST_FILE}",
                        key=f"relaxed:{lineno}"))
                for tag in tags:
                    used_tags.add(tag)
                    if tag not in ordering:
                        findings.append(Finding(
                            rule="conc-relaxed-unknown-tag", file=src.rel,
                            line=lineno,
                            message=f"justification tag 'relaxed[{tag}]' is "
                                    f"not in {ORDERING_ALLOWLIST_FILE}; add "
                                    f"the tag there with its reasoning, or "
                                    f"use an existing one",
                            key=tag))
            if src.top == "src" and not src.rel.startswith("src/common/") \
                    and NAKED_THREAD.search(line):
                key = f"{src.rel}:thread"
                if key not in allow:
                    findings.append(Finding(
                        rule="conc-naked-thread", file=src.rel, line=lineno,
                        message="std::thread outside src/common/: thread "
                                "lifecycles belong to ThreadPool "
                                "(common/parallel.hpp); or allowlist "
                                f"'{key}' in {CONCURRENCY_ALLOWLIST_FILE}",
                        key=key))

    # Staleness: every allowlist entry must still name something real.
    for key, lineno in sorted(allow.items(), key=lambda kv: kv[1]):
        rel, _, ident = key.partition(":")
        src = project.files.get(rel)
        alive = False
        if src is not None:
            if ident == "thread":
                alive = NAKED_THREAD.search(src.code) is not None
            elif "::" in ident:
                member = ident.rsplit("::", 1)[1]
                alive = re.search(rf"\b{re.escape(member)}\b", src.code) \
                    is not None
        if not alive:
            findings.append(Finding(
                rule="conc-allowlist-stale", file=CONCURRENCY_ALLOWLIST_FILE,
                line=lineno,
                message=f"entry '{key}': no longer matches anything in "
                        f"'{rel}' (file gone or member renamed); delete the "
                        f"entry",
                key=key))
    for tag, lineno in sorted(ordering.items(), key=lambda kv: kv[1]):
        if tag not in used_tags:
            findings.append(Finding(
                rule="conc-ordering-stale-tag", file=ORDERING_ALLOWLIST_FILE,
                line=lineno,
                message=f"ordering tag '{tag}' is justified here but no "
                        f"'relaxed[{tag}]' site uses it; delete the entry",
                key=tag))
    return findings
