// Ablation (ours): link protection — CRC-detect-and-drop (the thesis'
// scheme) vs Hamming(72,64) SECDED forward error correction.
//
// Chapter 3 argues FEC "incurs significant additional processing
// complexity" and picks error-detection + gossip redundancy instead.
// This bench measures the actual trade: SECDED repairs most single-burst
// upsets (fewer losses, lower latency at high p_upset) but pays ~12.5%
// wire overhead on every packet, upset or not.
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
    using namespace snoc;
    const auto opt = bench::options(argc, argv, 10);

    struct Trial {
        bool completed{false};
        double latency{0.0}, loss{0.0}, bits{0.0};
    };

    Table table({"p_upset", "CRC latency", "FEC latency", "CRC loss [%]",
                 "FEC loss [%]", "CRC bits", "FEC bits"});
    for (double upset : {0.0, 0.2, 0.4, 0.6, 0.8, 0.9}) {
        struct Stats {
            Accumulator latency, loss, bits;
            std::size_t completed{0};
        };
        Stats stats[2];
        for (int mode = 0; mode < 2; ++mode) {
            const auto prot = mode == 0 ? LinkProtection::CrcDetect
                                        : LinkProtection::SecdedCorrect;
            const auto trials = run_trials(
                opt.repeats,
                [&](std::uint64_t seed) {
                    FaultScenario s;
                    s.p_upset = upset;
                    GossipConfig c = bench::config_with_p(0.5, 60);
                    c.link_protection = prot;
                    GossipNetwork net(Topology::mesh(5, 5), c, s, seed,
                                      bench::engine_select(opt));
                    apps::PiDeployment d;
                    auto& master = apps::deploy_pi(net, d);
                    net.protect(d.master_tile);
                    const auto r =
                        net.run_until([&master] { return master.done(); }, 3000);
                    Trial out;
                    if (!r.completed) return out;
                    out.completed = true;
                    out.latency = static_cast<double>(r.rounds);
                    net.drain();
                    const auto& m = net.metrics();
                    out.loss = 100.0 *
                               static_cast<double>(m.crc_drops + m.fec_uncorrectable) /
                               static_cast<double>(m.packets_sent);
                    out.bits = static_cast<double>(m.bits_sent);
                    return out;
                },
                opt.jobs);
            for (const Trial& t : trials) {
                if (!t.completed) continue;
                ++stats[mode].completed;
                stats[mode].latency.add(t.latency);
                stats[mode].loss.add(t.loss);
                stats[mode].bits.add(t.bits);
            }
        }
        auto cell = [](const Stats& s, auto f) {
            return s.completed ? f() : std::string("DNF");
        };
        table.add_row(
            {format_number(upset, 2),
             cell(stats[0], [&] { return format_number(stats[0].latency.mean(), 1); }),
             cell(stats[1], [&] { return format_number(stats[1].latency.mean(), 1); }),
             cell(stats[0], [&] { return format_number(stats[0].loss.mean(), 1); }),
             cell(stats[1], [&] { return format_number(stats[1].loss.mean(), 1); }),
             cell(stats[0], [&] { return format_sci(stats[0].bits.mean(), 2); }),
             cell(stats[1], [&] { return format_sci(stats[1].bits.mean(), 2); })});
    }
    bench::emit(table, opt,
                "Ablation: CRC-drop vs SECDED link protection (Master-Slave, p=0.5)");
    std::cout << "\nReading: FEC turns packet losses into corrections (lower\n"
                 "latency under heavy upsets) but every packet pays the Hamming\n"
                 "overhead even on a clean chip - the thesis' argument for\n"
                 "detection + gossip redundancy at low upset rates.\n";
    return 0;
}
