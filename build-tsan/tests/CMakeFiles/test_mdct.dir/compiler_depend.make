# Empty compiler generated dependencies file for test_mdct.
# This may be replaced when dependencies are built.
