#include "router/core.hpp"

#include <gtest/gtest.h>

#include "noc/topology.hpp"
#include "router/ports.hpp"
#include "sim/trace.hpp"

namespace snoc::router {
namespace {

CrashState crashes_none(const Topology& topo) {
    CrashState s;
    s.dead_tiles.assign(topo.node_count(), false);
    s.dead_links.assign(topo.link_count(), false);
    return s;
}

RouterConfig config(FlowControl flow, PolicyKind policy = PolicyKind::DimensionOrder) {
    RouterConfig c;
    c.flow = flow;
    c.policy = policy;
    return c;
}

TEST(RouterCore, StoreAndForwardLonePacketLatency) {
    RouterCore core(Topology::mesh(4, 4), config(FlowControl::StoreAndForward));
    core.inject(0, 3, 160); // 3 hops east
    core.run(1000);
    ASSERT_EQ(core.delivered(), 1u);
    const auto& rec = core.records()[0];
    EXPECT_EQ(rec.hops, 3u);
    // The source packet is wholly resident at injection; after that each
    // hop costs the full serialization time L (flits_per_packet = 5) and
    // ejection happens the cycle the tail is resident: latency = hops * L.
    ASSERT_TRUE(rec.delivered_cycle.has_value());
    EXPECT_EQ(*rec.delivered_cycle - rec.injected_cycle, 3u * 5u);
}

TEST(RouterCore, CutThroughLonePacketIsFaster) {
    RouterCore saf(Topology::mesh(4, 4), config(FlowControl::StoreAndForward));
    RouterCore vct(Topology::mesh(4, 4), config(FlowControl::CutThrough));
    for (RouterCore* core : {&saf, &vct}) {
        core->inject(0, 15, 160);
        core->run(1000);
        ASSERT_EQ(core->delivered(), 1u);
        EXPECT_EQ(core->records()[0].hops, 6u);
    }
    const auto lat = [](const RouterCore& c) {
        return *c.records()[0].delivered_cycle - c.records()[0].injected_cycle;
    };
    // Cut-through pipelines the header ahead of the tail: hops cost one
    // cycle each and the tail streams behind, so the lone-packet latency
    // is hops + L - 1 rather than hops * L.
    EXPECT_EQ(lat(vct), 6u + 5u - 1u);
    EXPECT_EQ(lat(saf), 6u * 5u);
    EXPECT_LT(lat(vct), lat(saf));
}

TEST(RouterCore, DimensionOrderDropsAtDeadHop) {
    const auto topo = Topology::mesh(4, 4);
    auto crashes = crashes_none(topo);
    crashes.dead_tiles[1] = true; // first XY hop of 0 -> 3
    RouterCore core(topo, config(FlowControl::StoreAndForward));
    core.apply_crashes(crashes);
    core.inject(0, 3, 160);
    core.run(1000);
    EXPECT_EQ(core.delivered(), 0u);
    EXPECT_EQ(core.dropped(), 1u);
    EXPECT_TRUE(core.records()[0].dropped);
    EXPECT_EQ(core.metrics().crash_drops, 1u);
    EXPECT_TRUE(core.idle());
}

TEST(RouterCore, AdaptivePolicyDetoursAroundDeadRow) {
    const auto topo = Topology::mesh(4, 4);
    auto crashes = crashes_none(topo);
    crashes.dead_tiles[1] = true;
    crashes.dead_tiles[2] = true; // whole minimal XY path 0 -> 3 blocked
    RouterCore core(topo,
                    config(FlowControl::CutThrough, PolicyKind::FaultAdaptive));
    core.apply_crashes(crashes);
    core.inject(0, 3, 160);
    core.run(1000);
    ASSERT_EQ(core.delivered(), 1u);
    EXPECT_GT(core.records()[0].hops, 3u); // strictly longer than minimal
    EXPECT_EQ(core.dropped(), 0u);
}

TEST(RouterCore, AdaptivePolicyMatchesXyWhenFaultFree) {
    RouterCore core(Topology::mesh(4, 4),
                    config(FlowControl::CutThrough, PolicyKind::FaultAdaptive));
    core.inject(12, 3, 160);
    core.run(1000);
    ASSERT_EQ(core.delivered(), 1u);
    EXPECT_EQ(core.records()[0].hops, 6u); // minimal, XY-tie-broken
}

TEST(RouterCore, WalledInAdaptivePacketCrashDrops) {
    const auto topo = Topology::mesh(3, 3);
    auto crashes = crashes_none(topo);
    crashes.dead_tiles[1] = true;
    crashes.dead_tiles[3] = true; // both ports out of corner 0 dead
    RouterCore core(topo,
                    config(FlowControl::CutThrough, PolicyKind::FaultAdaptive));
    core.apply_crashes(crashes);
    core.inject(0, 8, 160);
    core.run(1000);
    EXPECT_EQ(core.delivered(), 0u);
    EXPECT_EQ(core.dropped(), 1u);
    EXPECT_EQ(core.metrics().crash_drops, 1u);
    EXPECT_TRUE(core.idle());
}

TEST(RouterCore, DeadSourceDropsAtInjection) {
    const auto topo = Topology::mesh(3, 3);
    auto crashes = crashes_none(topo);
    crashes.dead_tiles[0] = true;
    RouterCore core(topo, config(FlowControl::StoreAndForward));
    core.apply_crashes(crashes);
    core.inject(0, 8, 160);
    EXPECT_EQ(core.dropped(), 1u);
    EXPECT_TRUE(core.idle());
    EXPECT_EQ(core.metrics().crash_drops, 1u);
}

TEST(RouterCore, DeadLinkIsAvoidedByAdaptive) {
    const auto topo = Topology::mesh(3, 3);
    auto crashes = crashes_none(topo);
    const auto port = port_to(topo, 0, 1);
    ASSERT_TRUE(port.has_value());
    crashes.dead_links[topo.out_links(0)[*port]] = true; // kill link 0 -> 1
    RouterCore core(topo,
                    config(FlowControl::CutThrough, PolicyKind::FaultAdaptive));
    core.apply_crashes(crashes);
    core.inject(0, 2, 160);
    core.run(1000);
    ASSERT_EQ(core.delivered(), 1u); // detoured via row 1
    EXPECT_GT(core.records()[0].hops, 2u);
}

TEST(RouterCore, ManyToOneAllDeliveredAndCountersAgree) {
    for (const FlowControl flow :
         {FlowControl::StoreAndForward, FlowControl::CutThrough}) {
        RouterCore core(Topology::mesh(4, 4), config(flow));
        std::size_t injected = 0;
        for (TileId t = 0; t < 16; ++t) {
            if (t == 5) continue;
            core.inject(t, 5, 160);
            ++injected;
        }
        core.run(10000);
        EXPECT_EQ(core.delivered(), injected) << to_string(flow);
        EXPECT_TRUE(core.idle());
        const auto& m = core.metrics();
        EXPECT_EQ(m.messages_created, injected);
        EXPECT_EQ(m.deliveries, injected);
        std::size_t hops = 0;
        for (const auto& rec : core.records()) hops += rec.hops;
        EXPECT_EQ(m.packets_sent, hops);
    }
}

TEST(RouterCore, TraceEventsMatchCounters) {
    RingBufferSink sink(4096);
    RouterCore core(Topology::mesh(4, 4), config(FlowControl::CutThrough));
    core.set_trace_sink(&sink);
    core.inject(0, 15, 160);
    core.inject(15, 0, 160);
    core.run(1000);
    std::size_t created = 0, transmitted = 0, delivered = 0;
    for (const auto& e : sink.events()) {
        if (e.kind == TraceEventKind::MessageCreated) ++created;
        if (e.kind == TraceEventKind::Transmitted) ++transmitted;
        if (e.kind == TraceEventKind::Delivered) ++delivered;
    }
    EXPECT_EQ(created, core.metrics().messages_created);
    EXPECT_EQ(transmitted, core.metrics().packets_sent);
    EXPECT_EQ(delivered, core.metrics().deliveries);
}

TEST(RouterCore, DeterministicAcrossRuns) {
    const auto run_once = [] {
        RouterCore core(Topology::mesh(5, 5), config(FlowControl::CutThrough));
        for (TileId t = 0; t < 25; ++t)
            for (TileId d = 0; d < 25; ++d)
                if (t != d && (t + d) % 3 == 0) core.inject(t, d, 128);
        core.run(20000);
        return core;
    };
    const auto a = run_once();
    const auto b = run_once();
    ASSERT_EQ(a.records().size(), b.records().size());
    for (std::size_t i = 0; i < a.records().size(); ++i) {
        EXPECT_EQ(a.records()[i].delivered_cycle, b.records()[i].delivered_cycle);
        EXPECT_EQ(a.records()[i].hops, b.records()[i].hops);
    }
    EXPECT_EQ(a.cycle(), b.cycle());
}

} // namespace
} // namespace snoc::router
