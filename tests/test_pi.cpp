#include "apps/master_slave_pi.hpp"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

namespace snoc::apps {
namespace {

TEST(PiMath, ReferenceConvergesToPi) {
    EXPECT_NEAR(pi_reference(1000), std::numbers::pi, 1e-6);
    EXPECT_NEAR(pi_reference(100000), std::numbers::pi, 1e-10);
}

TEST(PiMath, ArchimedesBounds) {
    // 223/71 < pi < 22/7 — the bound quoted in Sec. 4.1.1.
    const double pi = pi_reference(100000);
    EXPECT_GT(pi, 223.0 / 71.0);
    EXPECT_LT(pi, 22.0 / 7.0);
}

TEST(PiMath, PartialSumsComposeExactly) {
    const std::uint64_t terms = 10000;
    double sum = 0.0;
    for (int task = 0; task < 8; ++task)
        sum += pi_partial_sum(terms * task / 8, terms * (task + 1) / 8, terms);
    // Addition is not associative in floating point; the split changes
    // the rounding path but not the value beyond ~1 ulp per term.
    EXPECT_NEAR(sum, pi_reference(terms), 1e-10);
}

TEST(PiMath, EmptyRangeIsZero) {
    EXPECT_DOUBLE_EQ(pi_partial_sum(5, 5, 100), 0.0);
}

GossipConfig default_config() {
    GossipConfig c;
    c.forward_p = 0.5;
    c.default_ttl = 30;
    return c;
}

TEST(PiNoc, FaultFreeRunAssemblesPi) {
    GossipNetwork net(Topology::mesh(5, 5), default_config(), FaultScenario::none(), 1);
    PiDeployment d;
    auto& master = deploy_pi(net, d);
    const auto result = net.run_until([&master] { return master.done(); }, 500);
    EXPECT_TRUE(result.completed);
    EXPECT_NEAR(master.pi(), std::numbers::pi, 1e-6);
    ASSERT_TRUE(master.completion_round().has_value());
    // Fig. 4-4: Master-Slave completes in 6-9 rounds at p = 0.5 (seed noise
    // allows a little slack).
    EXPECT_LE(*master.completion_round(), 15u);
    EXPECT_GE(*master.completion_round(), 2u);
}

TEST(PiNoc, FloodingIsFourishRounds) {
    GossipConfig c = default_config();
    c.forward_p = 1.0;
    GossipNetwork net(Topology::mesh(5, 5), c, FaultScenario::none(), 2);
    auto& master = deploy_pi(net, PiDeployment{});
    net.run_until([&master] { return master.done(); }, 100);
    ASSERT_TRUE(master.done());
    // Work + reply each cross <= 2 hops from centre tile 12 to the ring.
    EXPECT_LE(*master.completion_round(), 6u);
}

TEST(PiNoc, PiValueUnharmedByUpsets) {
    // CRC-filtered gossip: data upsets delay but never corrupt the result.
    FaultScenario s;
    s.p_upset = 0.5;
    GossipConfig c = default_config();
    c.default_ttl = 60;
    GossipNetwork net(Topology::mesh(5, 5), c, s, 3);
    auto& master = deploy_pi(net, PiDeployment{});
    const auto result = net.run_until([&master] { return master.done(); }, 2000);
    ASSERT_TRUE(result.completed);
    EXPECT_NEAR(master.pi(), std::numbers::pi, 1e-6);
}

TEST(PiNoc, DuplicationSurvivesPrimarySlaveCrash) {
    // Kill a primary slave tile; its replica answers instead.
    FaultScenario s;
    GossipNetwork net(Topology::mesh(5, 5), default_config(), s, 4);
    PiDeployment d;
    d.duplicate_slaves = true;
    auto& master = deploy_pi(net, d);
    // Protect everything except tile 6 (primary slave of task 0).
    for (TileId t = 0; t < 25; ++t)
        if (t != 6) net.protect(t);
    net.force_exact_tile_crashes(1);
    const auto result = net.run_until([&master] { return master.done(); }, 500);
    EXPECT_TRUE(result.completed);
    EXPECT_FALSE(net.tile_alive(6));
    EXPECT_NEAR(master.pi(), std::numbers::pi, 1e-6);
}

TEST(PiNoc, WithoutDuplicationSlaveCrashIsFatal) {
    GossipNetwork net(Topology::mesh(5, 5), default_config(), FaultScenario::none(), 5);
    PiDeployment d;
    d.duplicate_slaves = false;
    auto& master = deploy_pi(net, d);
    for (TileId t = 0; t < 25; ++t)
        if (t != 6) net.protect(t);
    net.force_exact_tile_crashes(1);
    const auto result = net.run_until([&master] { return master.done(); }, 300);
    EXPECT_FALSE(result.completed);
}

TEST(PiNoc, DuplicationDoesNotInflateUniqueResults) {
    // Sec. 4.1.3: replicas emit the same messages, so the per-message
    // traffic does not double.  Compare unique result rumors: with
    // replication the master still sees 8 results.
    GossipNetwork net(Topology::mesh(5, 5), default_config(), FaultScenario::none(), 6);
    PiDeployment d;
    d.duplicate_slaves = true;
    auto& master = deploy_pi(net, d);
    net.run_until([&master] { return master.done(); }, 500);
    ASSERT_TRUE(master.done());
    EXPECT_NEAR(master.pi(), std::numbers::pi, 1e-6);
}

TEST(PiNoc, DirectAddressingStillAssemblesPi) {
    GossipConfig c = default_config();
    c.stop_spread_on_delivery = true;
    GossipNetwork net(Topology::mesh(5, 5), c, FaultScenario::none(), 7);
    PiDeployment d;
    d.direct_addressing = true;
    auto& master = deploy_pi(net, d);
    const auto result = net.run_until([&master] { return master.done(); }, 500);
    ASSERT_TRUE(result.completed);
    EXPECT_NEAR(master.pi(), std::numbers::pi, 1e-6);
}

TEST(PiNoc, DirectAddressingUsesFewerPackets) {
    auto packets_for = [](bool direct) {
        GossipConfig c = default_config();
        c.stop_spread_on_delivery = direct;
        GossipNetwork net(Topology::mesh(5, 5), c, FaultScenario::none(), 8);
        PiDeployment d;
        d.direct_addressing = direct;
        auto& master = deploy_pi(net, d);
        net.run_until([&master] { return master.done(); }, 500);
        net.drain();
        return net.metrics().packets_sent;
    };
    EXPECT_LT(packets_for(true), packets_for(false));
}

TEST(PiTrace, ShapeMatchesDeployment) {
    PiDeployment d;
    const auto trace = pi_trace(d);
    ASSERT_EQ(trace.phases.size(), 2u);
    EXPECT_EQ(trace.phases[0].messages.size(), 8u);
    EXPECT_EQ(trace.phases[1].messages.size(), 8u);
    for (const auto& m : trace.phases[0].messages) EXPECT_EQ(m.src, d.master_tile);
    for (const auto& m : trace.phases[1].messages) EXPECT_EQ(m.dst, d.master_tile);
    EXPECT_GT(trace.useful_bits(), 0u);
}

class PiTermSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PiTermSweep, AccuracyImprovesWithTerms) {
    const auto terms = GetParam();
    const double err = std::abs(pi_reference(terms) - std::numbers::pi);
    // Midpoint rule error ~ 1/(24 n^2) * f'' bound; just check a loose cap.
    EXPECT_LT(err, 1.0 / static_cast<double>(terms));
}

INSTANTIATE_TEST_SUITE_P(Terms, PiTermSweep,
                         ::testing::Values(10, 100, 1000, 10000, 1000000));

} // namespace
} // namespace snoc::apps
