"""Layering enforcement: the dependency DAG between source layers.

`scripts/layers.toml` declares named layers (glob-matched file sets) and
each layer's *direct* dependencies.  A file may include headers from its
own layer or from any layer in the transitive closure of its layer's
deps — anything else is an inverted or skipped-layer edge and is flagged.
Two cycle checks back this up: the declared layer graph itself must be a
DAG (a cyclic rules file is a config error), and the resolved file-level
include graph must be acyclic (mutual inclusion is a bug even when the
layer assignment would permit both edges).
"""

from __future__ import annotations

import fnmatch
import tomllib
from pathlib import Path

from model import ConfigError, Finding, Project, strongly_connected_components

LAYERS_FILE = "scripts/layers.toml"


class LayerConfig:
    def __init__(self, layers: dict[str, dict]):
        self.patterns: dict[str, list[str]] = {}
        self.direct: dict[str, set[str]] = {}
        self.unrestricted: set[str] = set()
        for name, spec in layers.items():
            self.patterns[name] = list(spec.get("paths", []))
            self.direct[name] = set(spec.get("deps", []))
            if spec.get("unrestricted", False):
                self.unrestricted.add(name)
        for name, deps in self.direct.items():
            for dep in deps:
                if dep not in self.patterns:
                    raise ConfigError(
                        f"{LAYERS_FILE}: layer '{name}' depends on unknown "
                        f"layer '{dep}'")
        # Declared graph must be a DAG before closures mean anything.
        cycles = strongly_connected_components(
            {n: {d for d in deps if d != n} for n, deps in self.direct.items()})
        if cycles:
            raise ConfigError(
                f"{LAYERS_FILE}: dependency cycle between layers: "
                + " <-> ".join(cycles[0]))
        self.allowed: dict[str, set[str]] = {}
        for name in self.patterns:
            seen: set[str] = set()
            work = list(self.direct[name])
            while work:
                dep = work.pop()
                if dep in seen:
                    continue
                seen.add(dep)
                work.extend(self.direct[dep])
            seen.add(name)
            self.allowed[name] = seen

    def layer_of(self, rel: str) -> str | None:
        """Most-specific match wins: an exact (wildcard-free) pattern beats
        any glob; among globs, the longest pattern wins."""
        best: tuple[int, int, str] | None = None
        for name, patterns in self.patterns.items():
            for pat in patterns:
                exact = "*" not in pat and "?" not in pat
                if exact:
                    if pat != rel:
                        continue
                elif not fnmatch.fnmatchcase(rel, pat.replace("**", "*")):
                    continue
                rank = (1 if exact else 0, len(pat), name)
                if best is None or rank > best:
                    best = rank
        return best[2] if best else None


def load_config(root: Path) -> LayerConfig | None:
    path = root / LAYERS_FILE
    if not path.exists():
        return None
    try:
        data = tomllib.loads(path.read_text())
    except tomllib.TOMLDecodeError as err:
        raise ConfigError(f"{LAYERS_FILE}: {err}") from err
    layers = data.get("layers")
    if not isinstance(layers, dict) or not layers:
        raise ConfigError(f"{LAYERS_FILE}: missing [layers.*] tables")
    return LayerConfig(layers)


def check_layering(project: Project) -> list[Finding]:
    config = load_config(project.root)
    findings: list[Finding] = []

    # File-level include cycles, independent of layer assignment (and of
    # whether a rules file exists at all): mutual inclusion is a bug even
    # when the layer assignment would permit both edges.
    graph = {rel: {t for _, t in edges}
             for rel, edges in project.include_graph.items()}
    for comp in strongly_connected_components(graph):
        findings.append(Finding(
            rule="layer-cycle", file=comp[0], line=0,
            message="include cycle: " + " -> ".join(comp + [comp[0]]),
            key="cycle:" + ",".join(comp)))

    if config is None:
        return findings  # fixtures without a rules file skip DAG checks.

    assignment: dict[str, str] = {}
    for rel in sorted(project.files):
        layer = config.layer_of(rel)
        if layer is None:
            findings.append(Finding(
                rule="layer-unassigned", file=rel, line=0,
                message=f"file matches no layer in {LAYERS_FILE}; add it to "
                        "a layer (or a new one) so the DAG covers it"))
            continue
        assignment[rel] = layer

    for rel in sorted(assignment):
        layer = assignment[rel]
        if layer in config.unrestricted:
            continue
        for line, target in project.include_graph[rel]:
            target_layer = assignment.get(target)
            if target_layer is None or target_layer == layer:
                continue
            if target_layer not in config.allowed[layer]:
                findings.append(Finding(
                    rule="layer-forbidden", file=rel, line=line,
                    message=f"layer '{layer}' may not include '{target}' "
                            f"(layer '{target_layer}'); allowed from here: "
                            + ", ".join(sorted(config.allowed[layer] - {layer})),
                    key=f"{layer}->{target}"))
    return findings
