#pragma once
// Mini backend registry in the real file's shape.  "Valiant" is a new
// BackendKind the engine-equivalence marker below never picked up.
enum class BackendKind {
    Gossip,
    Bus,
    Valiant,
};
