# Empty compiler generated dependencies file for test_psycho.
# This may be replaced when dependencies are built.
