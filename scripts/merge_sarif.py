#!/usr/bin/env python3
"""Merge SARIF 2.1.0 logs into one file by concatenating their `runs`
arrays — the shape GitHub code scanning ingests, and how snoc_verify's
verdict stream joins snoc_lint's findings in one CI artifact.

    scripts/merge_sarif.py OUT IN [IN ...]

Inputs must be SARIF 2.1.0 (every run keeps its own tool/driver block,
so findings stay attributed).  Missing inputs are an error: a gate that
silently merges fewer streams than it was asked to is not a gate.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def main(argv: list[str]) -> int:
    if len(argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    out_path = Path(argv[1])
    runs = []
    version = "2.1.0"
    schema = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
              "master/Schemata/sarif-schema-2.1.0.json")
    for raw in argv[2:]:
        path = Path(raw)
        if not path.exists():
            print(f"merge_sarif: missing input {path}", file=sys.stderr)
            return 2
        data = json.loads(path.read_text())
        if data.get("version") != version:
            print(f"merge_sarif: {path} is not SARIF {version}",
                  file=sys.stderr)
            return 2
        runs.extend(data.get("runs", []))
    out_path.write_text(json.dumps(
        {"$schema": schema, "version": version, "runs": runs},
        indent=2) + "\n")
    results = sum(len(r.get("results", [])) for r in runs)
    print(f"merge_sarif: {len(runs)} run(s), {results} result(s) "
          f"-> {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
