file(REMOVE_RECURSE
  "CMakeFiles/test_trace_app.dir/test_trace_app.cpp.o"
  "CMakeFiles/test_trace_app.dir/test_trace_app.cpp.o.d"
  "test_trace_app"
  "test_trace_app.pdb"
  "test_trace_app[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
