# Empty dependencies file for diversity_explorer.
# This may be replaced when dependencies are built.
