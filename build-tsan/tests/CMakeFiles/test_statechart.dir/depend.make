# Empty dependencies file for test_statechart.
# This may be replaced when dependencies are built.
