#include "bus/broadcast_tree.hpp"

#include <algorithm>
#include <queue>

#include "common/expect.hpp"
#include "router/accounting.hpp"
#include "router/ports.hpp"

namespace snoc {

std::vector<TileId> spanning_tree(const Topology& topo, TileId root) {
    SNOC_EXPECT(root < topo.node_count());
    std::vector<TileId> parent(topo.node_count(), kNoTile);
    std::queue<TileId> frontier;
    parent[root] = root;
    frontier.push(root);
    while (!frontier.empty()) {
        const TileId cur = frontier.front();
        frontier.pop();
        for (TileId next : topo.neighbours(cur)) {
            if (parent[next] != kNoTile) continue;
            parent[next] = cur;
            frontier.push(next);
        }
    }
    return parent;
}

TreeBroadcastResult tree_broadcast(const Topology& topo, TileId root,
                                   const CrashState& crashes, TraceSink* sink,
                                   std::size_t bits) {
    SNOC_EXPECT(crashes.dead_tiles.size() == topo.node_count());
    const auto parent = spanning_tree(topo, root);

    // Children lists in ascending tile order (the traversal order the
    // O(n^2) per-node scan used to produce).
    std::vector<std::vector<TileId>> children(topo.node_count());
    for (TileId next = 0; next < topo.node_count(); ++next)
        if (next != root && parent[next] != kNoTile)
            children[parent[next]].push_back(next);

    // The shared accounting stage counts transmissions / deliveries /
    // crash drops and emits the matching trace events; one broadcast is
    // one message, rounds are tree depths.
    router::Accounting accounting;
    accounting.attach(topo);
    accounting.set_trace_sink(sink);
    const MessageId id{root, 0};

    TreeBroadcastResult result;
    if (crashes.dead_tiles[root]) {
        accounting.created(0, root, id);
        accounting.crash_drop(0, root, id);
        result.metrics = accounting.metrics();
        return result;
    }

    accounting.created(0, root, id);
    accounting.delivered(0, root, id);

    // BFS down the tree, pruning at dead tiles.
    std::vector<std::size_t> depth(topo.node_count(), 0);
    std::queue<TileId> frontier;
    frontier.push(root);
    while (!frontier.empty()) {
        const TileId cur = frontier.front();
        frontier.pop();
        for (const TileId next : children[cur]) {
            const auto round = static_cast<Round>(depth[cur] + 1);
            // The parent transmits regardless of the child's fate.
            accounting.transmitted(round, cur, next,
                                   router::link_between(topo, cur, next), id,
                                   bits);
            if (crashes.dead_tiles[next]) { // subtree lost
                accounting.crash_drop(round, next, id);
                continue;
            }
            accounting.delivered(round, next, id);
            depth[next] = depth[cur] + 1;
            result.depth = std::max(result.depth, depth[next]);
            frontier.push(next);
        }
    }
    result.reached = accounting.metrics().deliveries;
    result.transmissions = accounting.metrics().packets_sent;
    result.metrics = accounting.metrics();
    return result;
}

} // namespace snoc
