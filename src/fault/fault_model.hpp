// Chapter 2: a failure model for NoCs.
//
// The model is parameterised by
//   * p_tiles, p_links   — probability that a tile / link is crashed,
//   * p_upset            — probability that a packet is scrambled in flight,
//   * p_overflow         — probability that a packet is dropped by overflow,
//   * sigma_synchr       — std-dev of the round duration (fraction of T_R),
// and by the *shape* of upsets: the random-bit-error model (independent
// bit flips) or the random-error-vector model (any non-null error vector
// equally likely).
#pragma once

#include <cstdint>
#include <string>

namespace snoc {

enum class UpsetModel : std::uint8_t {
    RandomBitError,    ///< e_1..e_n independent; few bits flip.
    RandomErrorVector, ///< all 2^n - 1 non-null vectors equally likely.
};

constexpr const char* to_string(UpsetModel m) {
    switch (m) {
    case UpsetModel::RandomBitError: return "random-bit-error";
    case UpsetModel::RandomErrorVector: return "random-error-vector";
    }
    return "?";
}

struct FaultScenario {
    double p_tiles{0.0};    ///< tile crash probability (at start of run).
    double p_links{0.0};    ///< link crash probability (at start of run).
    double p_upset{0.0};    ///< per-transmission packet scramble probability.
    double p_overflow{0.0}; ///< per-reception forced-overflow drop probability.
    double sigma_synchr{0.0}; ///< round-duration std-dev as a fraction of T_R.
    UpsetModel upset_model{UpsetModel::RandomBitError};

    /// A scenario with every failure mode off.
    static FaultScenario none() { return {}; }

    /// Throws ContractViolation unless every probability is in range.
    void validate() const;

    /// e.g. "tiles=0.1 links=0 upset=0.3(random-bit-error) ovf=0 sync=0.05"
    std::string describe() const;
};

} // namespace snoc
