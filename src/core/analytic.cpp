#include "core/analytic.hpp"

#include <cmath>

#include "common/expect.hpp"

namespace snoc::analytic {

std::vector<double> informed_curve(std::size_t n, std::size_t rounds) {
    SNOC_EXPECT(n >= 1);
    std::vector<double> curve;
    curve.reserve(rounds + 1);
    const double nd = static_cast<double>(n);
    double informed = 1.0;
    curve.push_back(informed);
    for (std::size_t t = 0; t < rounds; ++t) {
        informed = nd - (nd - informed) * std::exp(-informed / nd);
        curve.push_back(informed);
    }
    return curve;
}

std::size_t rounds_to_reach(std::size_t n, double fraction) {
    SNOC_EXPECT(fraction > 0.0 && fraction <= 1.0);
    const double target = fraction * static_cast<double>(n);
    const double nd = static_cast<double>(n);
    double informed = 1.0;
    std::size_t t = 0;
    // The logistic recurrence converges to n but only asymptotically;
    // treat "within half a node" as everyone for fraction == 1.
    const double goal = (fraction == 1.0) ? nd - 0.5 : target;
    while (informed < goal) {
        informed = nd - (nd - informed) * std::exp(-informed / nd);
        ++t;
        SNOC_ENSURE(t < 10000);
    }
    return t;
}

double pittel_rounds(std::size_t n) {
    SNOC_EXPECT(n >= 2);
    const double nd = static_cast<double>(n);
    return std::log2(nd) + std::log(nd);
}

std::vector<std::size_t> simulate_push_gossip(std::size_t n, RngStream& rng,
                                              std::size_t max_rounds) {
    SNOC_EXPECT(n >= 2);
    std::vector<bool> informed(n, false);
    informed[0] = true;
    std::size_t count = 1;
    std::vector<std::size_t> curve{count};
    for (std::size_t round = 0; round < max_rounds && count < n; ++round) {
        std::vector<std::size_t> targets;
        targets.reserve(count);
        for (std::size_t i = 0; i < n; ++i) {
            if (!informed[i]) continue;
            // Choose a confidant uniformly among the other n-1 nodes.
            auto pick = static_cast<std::size_t>(rng.below(n - 1));
            if (pick >= i) ++pick;
            targets.push_back(pick);
        }
        for (std::size_t t : targets) {
            if (!informed[t]) {
                informed[t] = true;
                ++count;
            }
        }
        curve.push_back(count);
    }
    return curve;
}

} // namespace snoc::analytic
