// Query engine over a JSONL trace dump — the brains of the snoc_trace
// CLI, kept in the library so tests can drive it without spawning a
// process.  Loads the line format written by write_jsonl and answers:
// per-run summary, per-round table, a single message's lifeline, top-K
// lossiest tiles/links, and the kind histogram.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/trace.hpp"

namespace snoc::tracequery {

struct LoadResult {
    std::vector<TraceEvent> events;
    std::size_t skipped{0}; ///< malformed / unknown-kind lines ignored.
};

LoadResult load_jsonl(std::istream& is);
LoadResult load_jsonl_file(const std::string& path);

/// "5:12" -> MessageId{5, 12}; nullopt on malformed input.
std::optional<MessageId> parse_message_id(std::string_view text);

/// Kind histogram plus headline totals (events, rounds, tiles, messages,
/// deliveries, drops) — the counters mirror NetworkMetrics.
std::string summary(const std::vector<TraceEvent>& events);

/// One line per round: each kind's count that round.
std::string per_round(const std::vector<TraceEvent>& events);

/// Every event touching one message, in order — its lifeline.
std::string lifeline(const std::vector<TraceEvent>& events, MessageId id);

/// Tiles ranked by drops sunk at them (crash, overflow, CRC, FEC,
/// eviction); ties broken by tile id.
std::string top_tiles(const std::vector<TraceEvent>& events, std::size_t k);

/// Directed links ranked by transmissions carried; ties by (from, to).
std::string top_links(const std::vector<TraceEvent>& events, std::size_t k);

} // namespace snoc::tracequery
