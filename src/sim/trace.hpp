// Structured event tracing — the simulator's flight recorder.
//
// The engine emits one TraceEvent per interesting happening (creation,
// transmission, delivery, each drop cause, TTL expiry, skew deferral);
// sinks decide what to do with them: count, keep the last N for post-
// mortems, or stream human-readable lines.  Tracing is off unless a sink
// is attached, and sinks are engine-agnostic (pure data in, no calls
// back), so they cannot perturb a simulation.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <iterator>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace snoc {

/// The single source of truth for event kinds.  Enumerator, wire name and
/// count are all generated from this table, so adding a kind cannot
/// desynchronize CountingSink's array, to_string, from_string or any
/// exporter — extend the list and everything follows.
#define SNOC_TRACE_EVENT_KIND_LIST(X)                                          \
    X(MessageCreated, "created")     /* a fresh rumor entered a send buffer */ \
    X(Transmitted, "transmitted")    /* one link (or bus/flit) traversal */    \
    X(Accepted, "accepted")          /* received copy merged into a buffer */  \
    X(Delivered, "delivered")        /* first-time delivery to the dest IP */  \
    X(CrcDrop, "crc-drop")           /* scrambled packet caught by the CRC */  \
    X(FecUncorrectable, "fec-drop")  /* multi-bit upset beyond SECDED */       \
    X(OverflowDrop, "overflow-drop") /* port-buffer overflow (forced/cap) */   \
    X(DuplicateIgnored, "duplicate") /* re-received known message */           \
    X(TtlExpired, "ttl-expired")     /* rumor garbage-collected at TTL 0 */    \
    X(SkewDeferral, "skew-deferral") /* arrival pushed a round by skew */      \
    X(CrashDrop, "crash-drop")       /* transmission sunk into a dead tile */  \
    X(BufferEvicted, "buffer-evicted") /* send-buffer overflow eviction */

enum class TraceEventKind : std::uint8_t {
#define SNOC_TRACE_EVENT_KIND_ENUM(name, str) name,
    SNOC_TRACE_EVENT_KIND_LIST(SNOC_TRACE_EVENT_KIND_ENUM)
#undef SNOC_TRACE_EVENT_KIND_ENUM
};

inline constexpr const char* kTraceEventKindNames[] = {
#define SNOC_TRACE_EVENT_KIND_NAME(name, str) str,
    SNOC_TRACE_EVENT_KIND_LIST(SNOC_TRACE_EVENT_KIND_NAME)
#undef SNOC_TRACE_EVENT_KIND_NAME
};

inline constexpr std::size_t kTraceEventKinds = std::size(kTraceEventKindNames);

// The one place the count is spelled out, so a stray edit to the X-macro
// (or a hand-added enumerator bypassing it) fails to compile rather than
// silently shearing counters off their labels.
static_assert(kTraceEventKinds == 12,
              "TraceEventKind changed: update this count and audit every "
              "exporter/test that enumerates kinds");
static_assert(static_cast<std::size_t>(TraceEventKind::BufferEvicted) + 1 ==
                  kTraceEventKinds,
              "enum and name table fell out of step");

constexpr const char* to_string(TraceEventKind k) {
    const auto i = static_cast<std::size_t>(k);
    return i < kTraceEventKinds ? kTraceEventKindNames[i] : "?";
}

/// Inverse of to_string, for trace loaders; nullopt on unknown names.
std::optional<TraceEventKind> trace_kind_from_string(std::string_view name);

struct TraceEvent {
    Round round{0};
    TraceEventKind kind{TraceEventKind::MessageCreated};
    TileId tile{0};          ///< where it happened.
    TileId peer{kNoTile};    ///< other endpoint (transmissions), if any.
    /// Rumor identity when known; origin == kNoTile means "no message"
    /// (e.g. a CRC drop, where the id was unreadable by definition).
    MessageId message{kNoTile, 0};
};

class TraceSink {
public:
    virtual ~TraceSink() = default;
    virtual void record(const TraceEvent& event) = 0;
};

/// Per-kind counters.
class CountingSink final : public TraceSink {
public:
    void record(const TraceEvent& event) override;
    std::size_t count(TraceEventKind kind) const;
    std::size_t total() const;

private:
    std::size_t counts_[kTraceEventKinds] = {};
};

/// Keeps the newest `capacity` events (post-mortem flight recorder).
class RingBufferSink final : public TraceSink {
public:
    explicit RingBufferSink(std::size_t capacity);
    void record(const TraceEvent& event) override;
    const std::deque<TraceEvent>& events() const { return events_; }
    std::size_t dropped() const { return dropped_; }

private:
    std::size_t capacity_;
    std::deque<TraceEvent> events_;
    std::size_t dropped_{0};
};

/// Streams one formatted line per event.
class StreamSink final : public TraceSink {
public:
    explicit StreamSink(std::ostream& os) : os_(os) {}
    void record(const TraceEvent& event) override;

private:
    std::ostream& os_;
};

/// "r12 transmitted tile 5 -> 6 msg (5,0)" style formatting.
std::string format_event(const TraceEvent& event);

/// Fan-out to several sinks.
class TeeSink final : public TraceSink {
public:
    void add(TraceSink* sink);
    void record(const TraceEvent& event) override;

private:
    std::vector<TraceSink*> sinks_;
};

} // namespace snoc
