# Empty compiler generated dependencies file for snoc_energy.
# This may be replaced when dependencies are built.
