#include "router/core.hpp"

#include <algorithm>

#include "common/expect.hpp"
#include "common/postmortem.hpp"
#include "router/ports.hpp"

namespace snoc::router {

void RouterConfig::validate() const {
    SNOC_EXPECT(flits_per_packet >= 1);
    SNOC_EXPECT(buffer_packets >= 1);
    SNOC_EXPECT(max_hops >= 1);
}

RouterCore::RouterCore(Topology topo, RouterConfig config)
    : RouterCore(std::move(topo), config, make_policy(config.policy)) {}

RouterCore::RouterCore(Topology topo, RouterConfig config,
                       std::unique_ptr<const RoutingPolicy> policy)
    : topo_(std::move(topo)),
      config_(config),
      policy_(std::move(policy)),
      dead_tiles_(topo_.node_count(), false),
      dead_links_(topo_.link_count(), false),
      pending_(topo_.node_count()) {
    config_.validate();
    SNOC_EXPECT(policy_ != nullptr);
    SNOC_EXPECT(topo_.is_grid());
    // Auto watchdog threshold: by the time every buffer slot in the mesh
    // could have streamed a full packet, a silent network is wedged, not
    // slow.  The slack term keeps tiny meshes from hair-triggering.
    stall_limit_ = config_.stall_limit != 0
                       ? config_.stall_limit
                       : topo_.node_count() * config_.buffer_packets *
                                 config_.flits_per_packet +
                             128;
    accounting_.attach(topo_);
    in_.resize(topo_.node_count());
    arbiters_.reserve(topo_.node_count());
    link_free_at_.resize(topo_.node_count());
    committed_.resize(topo_.node_count());
    for (TileId t = 0; t < topo_.node_count(); ++t) {
        in_[t].resize(input_count(t));
        arbiters_.emplace_back(output_count(t), RotatingArbiter(input_count(t)));
        link_free_at_[t].assign(topo_.neighbours(t).size(), 0);
        committed_[t].assign(input_count(t), 0);
    }
}

void RouterCore::apply_crashes(const CrashState& crashes) {
    SNOC_EXPECT(crashes.dead_tiles.size() == topo_.node_count());
    SNOC_EXPECT(crashes.dead_links.size() == topo_.link_count());
    SNOC_EXPECT(records_.empty() && "apply crashes before injecting");
    dead_tiles_ = crashes.dead_tiles;
    dead_links_ = crashes.dead_links;
}

std::uint32_t RouterCore::inject(TileId source, TileId destination,
                                 std::size_t bits) {
    SNOC_EXPECT(source < topo_.node_count());
    SNOC_EXPECT(destination < topo_.node_count());
    SNOC_EXPECT(source != destination);
    const auto id = static_cast<std::uint32_t>(records_.size());
    records_.push_back(PacketRecord{id, source, destination, bits,
                                    cycle_, std::nullopt, 0, false});
    const MessageId mid{source, id};
    accounting_.created(static_cast<Round>(cycle_), source, mid);
    if (dead_tiles_[source]) {
        // A dead source accepts nothing: the packet dies where it was born.
        records_.back().dropped = true;
        ++dropped_;
        accounting_.crash_drop(static_cast<Round>(cycle_), source, mid);
        return id;
    }
    ++outstanding_;
    pending_[source].push_back(id);
    return id;
}

bool RouterCore::head_ready(const Buffered& head) const {
    // Store-and-forward waits for the tail; cut-through switches the
    // header as soon as it has landed.
    return config_.flow == FlowControl::StoreAndForward
               ? head.full_at <= cycle_
               : head.head_at <= cycle_;
}

std::optional<std::size_t> RouterCore::choose_output(TileId t,
                                                     const Buffered& head) const {
    const PacketRecord& rec = records_[head.id];
    const auto& nbrs = topo_.neighbours(t);
    const auto& links = topo_.out_links(t);
    for (const std::size_t c :
         policy_->candidates(topo_, t, head.from, rec.destination, dead_tiles_)) {
        const TileId next = nbrs[c];
        if (dead_tiles_[next] || dead_links_[links[c]]) continue;
        if (link_free_at_[t][c] > cycle_) continue; // serializing a packet
        const std::size_t in_at_next = input_port_from(topo_, next, t);
        if (in_[next][in_at_next].size() + committed_[next][in_at_next] >=
            config_.buffer_packets)
            continue; // no downstream credit
        return c;
    }
    return std::nullopt;
}

void RouterCore::drop_head(TileId t, std::size_t in_port, bool ttl) {
    Buffered head = in_[t][in_port].front();
    in_[t][in_port].pop_front();
    PacketRecord& rec = records_[head.id];
    rec.dropped = true;
    ++dropped_;
    --outstanding_;
    const MessageId mid{rec.source, rec.id};
    if (ttl)
        accounting_.ttl_expired(static_cast<Round>(cycle_), t, mid);
    else
        accounting_.crash_drop(static_cast<Round>(cycle_), t, mid);
}

void RouterCore::resolve_head_fates(TileId t, std::size_t in_port) {
    // Only the head of a FIFO can be doomed: once it is gone, the next
    // packet surfaces and gets its own verdict this same cycle.
    auto& fifo = in_[t][in_port];
    while (!fifo.empty()) {
        const Buffered& head = fifo.front();
        if (head.head_at > cycle_) return; // still streaming in
        const PacketRecord& rec = records_[head.id];
        if (rec.destination == t) return; // ejects, never drops
        if (rec.hops >= config_.max_hops) {
            drop_head(t, in_port, /*ttl=*/true);
            continue;
        }
        const auto cands =
            policy_->candidates(topo_, t, head.from, rec.destination, dead_tiles_);
        bool viable = false;
        const auto& nbrs = topo_.neighbours(t);
        const auto& links = topo_.out_links(t);
        for (const std::size_t c : cands)
            if (!dead_tiles_[nbrs[c]] && !dead_links_[links[c]]) {
                viable = true;
                break;
            }
        if (!viable) {
            // No live port the policy will ever name again (the policy is
            // a pure function of position and the static crash pattern):
            // a fault-blind route hit its dead hop, or an adaptive packet
            // is walled in.
            drop_head(t, in_port, /*ttl=*/false);
            continue;
        }
        return;
    }
}

void RouterCore::step() {
    // DeadlockSentinel progress ledger: admissions, drops and moves all
    // count; a cycle with none of them (and packets outstanding) extends
    // the zero-progress streak the watchdog trips on.
    [[maybe_unused]] std::size_t admitted = 0; // unused only at level 0.
    [[maybe_unused]] const std::size_t dropped_before = dropped_;

    // ---- Injection: one packet per tile per cycle enters the local
    // input FIFO as space allows (source packets are wholly resident).
    for (TileId t = 0; t < topo_.node_count(); ++t) {
        if (pending_[t].empty()) continue;
        auto& local = in_[t][local_port(t)];
        if (local.size() >= config_.buffer_packets) continue;
        local.push_back(Buffered{pending_[t].front(), kNoTile, cycle_, cycle_});
        pending_[t].pop_front();
        ++admitted;
    }

    // ---- Head-of-line fate resolution: crash and hop-budget drops.
    for (TileId t = 0; t < topo_.node_count(); ++t)
        for (std::size_t ip = 0; ip < input_count(t); ++ip)
            resolve_head_fates(t, ip);

    // ---- Switch allocation: per output, a rotating arbiter over the
    // input ports; downstream slots committed here are visible to every
    // later decision this cycle.
    struct Move {
        TileId tile;
        std::size_t in_port;
        std::size_t out;
        bool eject;
    };
    std::vector<Move> moves;
    for (TileId t = 0; t < topo_.node_count(); ++t)
        std::fill(committed_[t].begin(), committed_[t].end(), 0);
    std::vector<bool> input_used;
    for (TileId t = 0; t < topo_.node_count(); ++t) {
        if (dead_tiles_[t]) continue;
        input_used.assign(input_count(t), false);
        const std::size_t outputs = output_count(t);
        for (std::size_t out = 0; out < outputs; ++out) {
            const bool is_eject = out == eject_port(t);
            if (!is_eject && link_free_at_[t][out] > cycle_)
                continue; // link still serializing; nobody can win it
            arbiters_[t][out].grant([&](std::size_t ip) {
                if (input_used[ip]) return false;
                auto& fifo = in_[t][ip];
                if (fifo.empty()) return false;
                const Buffered& head = fifo.front();
                if (head.head_at > cycle_) return false;
                const PacketRecord& rec = records_[head.id];
                if (is_eject) {
                    // Delivery means the tail arrived, whatever the scheme.
                    if (rec.destination != t || head.full_at > cycle_)
                        return false;
                } else {
                    if (rec.destination == t) return false;
                    if (!head_ready(head)) return false;
                    const auto chosen = choose_output(t, head);
                    if (!chosen || *chosen != out) return false;
                    const TileId next = topo_.neighbours(t)[out];
                    ++committed_[next][input_port_from(topo_, next, t)];
                }
                input_used[ip] = true;
                moves.push_back(Move{t, ip, out, is_eject});
                return true;
            });
        }
    }

    // ---- Apply phase.
    for (const auto& m : moves) {
        auto& fifo = in_[m.tile][m.in_port];
        SNOC_ENSURE(!fifo.empty());
        const Buffered head = fifo.front();
        fifo.pop_front();
        PacketRecord& rec = records_[head.id];
        const MessageId mid{rec.source, rec.id};
        if (m.eject) {
            rec.delivered_cycle = cycle_;
            ++delivered_;
            --outstanding_;
            accounting_.delivered(static_cast<Round>(cycle_), m.tile, mid);
            continue;
        }
        const TileId next = topo_.neighbours(m.tile)[m.out];
        const LinkId link = topo_.out_links(m.tile)[m.out];
        ++rec.hops;
        accounting_.transmitted(static_cast<Round>(cycle_), m.tile, next, link,
                                mid, rec.bits);
        // The header lands next cycle; the tail trails it by the packet's
        // serialization time, and can never outrun its own arrival here.
        const std::size_t full_at_next =
            std::max(head.full_at + 1, cycle_ + config_.flits_per_packet);
        link_free_at_[m.tile][m.out] = full_at_next;
        in_[next][input_port_from(topo_, next, m.tile)].push_back(
            Buffered{head.id, m.tile, cycle_ + 1, full_at_next});
    }

    accounting_.advance_to(static_cast<Round>(cycle_));
    accounting_.publish_registry();

    // ---- DeadlockSentinel.  Compiled out at level 0 with the rest of
    // the checking machinery (the observables then stay false/0).
    if constexpr (SNOC_CHECK_LEVEL >= 1) {
        const std::size_t progress =
            admitted + (dropped_ - dropped_before) + moves.size();
        if (outstanding_ == 0 || progress > 0) {
            stalled_cycles_ = 0;
        } else if (++stalled_cycles_ >= stall_limit_ && !sentinel_fired_) {
            sentinel_fired_ = true;
            const std::string what =
                "DeadlockSentinel: " + std::to_string(outstanding_) +
                " packet(s) outstanding with zero progress for " +
                std::to_string(stalled_cycles_) + " cycles (cycle " +
                std::to_string(cycle_) + ")";
            // Even the non-throwing firing (a config without the
            // deadlock-free expectation) is post-mortem-worthy: an armed
            // flight recorder dumps its evidence either way.
            postmortem::notify("deadlock-sentinel", what);
            if (config_.expect_deadlock_free)
                throw ContractViolation(
                    what + " on a configuration statically verified "
                           "deadlock-free");
        }
    }
    ++cycle_;
}

void RouterCore::run(std::size_t cycles) {
    // A fired sentinel means no further cycle can make progress (the
    // watchdog only trips on a closed buffer-wait cycle); stop burning
    // cycles on a wedged network.
    for (std::size_t i = 0; i < cycles && !idle() && !sentinel_fired_; ++i)
        step();
}

const RotatingArbiter& RouterCore::arbiter(TileId t, std::size_t output) const {
    SNOC_EXPECT(t < topo_.node_count());
    SNOC_EXPECT(output < output_count(t));
    return arbiters_[t][output];
}

} // namespace snoc::router
