# Empty compiler generated dependencies file for snoc_noc.
# This may be replaced when dependencies are built.
