// Cross-module integration checks: the qualitative claims of Chapter 4,
// each verified end-to-end on the real stack (apps over gossip over faults
// over the NoC substrate).
#include <gtest/gtest.h>

#include "apps/master_slave_pi.hpp"
#include "apps/trace_app.hpp"
#include "bus/bus.hpp"
#include "bus/xy_router.hpp"
#include "common/stats.hpp"
#include "energy/energy.hpp"

namespace snoc {
namespace {

GossipConfig config_with_p(double p, std::uint16_t ttl = 30) {
    GossipConfig c;
    c.forward_p = p;
    c.default_ttl = ttl;
    return c;
}

struct PiRun {
    bool completed;
    Round rounds;
    std::size_t packets;
    std::size_t bits;
    double seconds;
};

PiRun run_pi(double p, FaultScenario scenario, std::uint64_t seed,
             Round max_rounds = 2000, bool drain_for_energy = false) {
    GossipNetwork net(Topology::mesh(5, 5), config_with_p(p), scenario, seed);
    auto& master = apps::deploy_pi(net, apps::PiDeployment{});
    net.protect(12); // the unique master must exist for latency to be defined
    const auto r = net.run_until([&master] { return master.done(); }, max_rounds);
    // Latency is the completion round, but the energy bill keeps running
    // until every rumor's TTL expires.
    if (drain_for_energy) net.drain();
    return {r.completed, r.rounds, net.metrics().packets_sent,
            net.metrics().bits_sent, r.elapsed_seconds};
}

TEST(Integration, FloodingIsLatencyOptimalButEnergyWorst) {
    // Sec. 4.1.3 / Fig. 4-4: p=1 gives the best latency and the most
    // packets; lowering p trades latency for energy.
    Accumulator rounds_p100, rounds_p25, packets_p100, packets_p50;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        const auto flood = run_pi(1.0, FaultScenario::none(), seed, 2000, true);
        const auto half = run_pi(0.5, FaultScenario::none(), seed, 2000, true);
        const auto quarter = run_pi(0.25, FaultScenario::none(), seed);
        ASSERT_TRUE(flood.completed && half.completed && quarter.completed);
        rounds_p100.add(flood.rounds);
        rounds_p25.add(quarter.rounds);
        packets_p100.add(static_cast<double>(flood.packets));
        packets_p50.add(static_cast<double>(half.packets));
    }
    EXPECT_LT(rounds_p100.mean(), rounds_p25.mean());
    EXPECT_GT(packets_p100.mean(), packets_p50.mean());
    // "its energy dissipation is about half of the one of the flooding" —
    // allow a generous band around 0.5.
    const double ratio = packets_p50.mean() / packets_p100.mean();
    EXPECT_GT(ratio, 0.3);
    EXPECT_LT(ratio, 0.75);
}

TEST(Integration, TileCrashesBarelyMoveLatency) {
    // Fig. 4-4: "the number of tile failures does not have a big impact on
    // latency" (slaves replicated, master protected).
    auto run_with_crashes = [](std::size_t k, std::uint64_t seed) {
        GossipNetwork net(Topology::mesh(5, 5), config_with_p(0.5),
                          FaultScenario::none(), seed);
        apps::PiDeployment d;
        d.duplicate_slaves = true;
        auto& master = apps::deploy_pi(net, d);
        net.protect(12);
        for (TileId slave : {6u, 7u, 8u, 11u, 13u, 16u, 17u, 18u}) net.protect(slave);
        net.force_exact_tile_crashes(k);
        const auto r = net.run_until([&master] { return master.done(); }, 2000);
        return std::pair<bool, Round>(r.completed, r.rounds);
    };
    Accumulator clean, crashed;
    int completed_crashed = 0;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        const auto a = run_with_crashes(0, seed);
        const auto b = run_with_crashes(4, seed);
        ASSERT_TRUE(a.first);
        clean.add(a.second);
        if (b.first) {
            crashed.add(b.second);
            ++completed_crashed;
        }
    }
    EXPECT_GE(completed_crashed, 8);
    EXPECT_LT(crashed.mean(), clean.mean() * 2.5);
}

TEST(Integration, UpsetsAboveHalfInflateLatency) {
    // Fig. 4-5: upsets dominate latency once p_upset > 0.5.
    Accumulator clean, noisy;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        FaultScenario s;
        const auto a = run_pi(0.5, s, seed);
        s.p_upset = 0.7;
        const auto b = run_pi(0.5, s, seed);
        ASSERT_TRUE(a.completed);
        ASSERT_TRUE(b.completed);
        clean.add(a.rounds);
        noisy.add(b.rounds);
    }
    EXPECT_GT(noisy.mean(), clean.mean() * 1.5);
}

TEST(Integration, NocLatencyBeatsBusByALot) {
    // Fig. 4-6: "the latency of the stochastic communication was 11 times
    // better than that of the bus".  We check the order of magnitude.
    const auto tech = Technology::cmos_025um();
    const auto trace = apps::pi_trace(apps::PiDeployment{});

    // NoC: measured rounds * T_R (Eq. 2 with measured traffic).
    const auto noc = run_pi(0.5, FaultScenario::none(), 3);
    ASSERT_TRUE(noc.completed);
    GossipNetwork probe(Topology::mesh(5, 5), config_with_p(0.5),
                        FaultScenario::none(), 3);
    const double s_bits = static_cast<double>(noc.bits) /
                          static_cast<double>(noc.packets);
    RoundTiming timing;
    timing.link_frequency_hz = tech.link_frequency_hz;
    timing.packet_bits = s_bits;
    timing.packets_per_round = 1.0;
    const double noc_seconds = static_cast<double>(noc.rounds) * timing.round_seconds();

    SharedBus bus(25, tech);
    const auto bus_result = bus.run(trace);
    ASSERT_TRUE(bus_result.completed);
    // The bus carries far fewer bits but at 43 MHz with full serialisation
    // the NoC still wins clearly.
    EXPECT_LT(noc_seconds, bus_result.seconds);
}

TEST(Integration, GossipDeliversWhereXyRoutingDies) {
    // The Ch. 1 motivation, measured: same crash pattern, static XY loses
    // messages while gossip still completes.
    const auto mesh = Topology::mesh(5, 5);
    // Long corner-to-corner routes so crashes actually intersect XY paths.
    TrafficTrace trace;
    TrafficPhase phase;
    phase.messages.push_back({0, 24, 256});
    phase.messages.push_back({4, 20, 256});
    phase.messages.push_back({20, 4, 256});
    phase.messages.push_back({24, 0, 256});
    trace.phases.push_back(phase);
    const std::vector<TileId> endpoints{0, 4, 20, 24};

    int xy_lost_somewhere = 0, gossip_completed = 0;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        FaultScenario s;
        s.p_tiles = 0.15;
        RngPool pool(seed);
        FaultInjector inj(s, pool);
        const auto crashes = inj.roll_crashes(mesh, endpoints);
        const auto xy = run_xy_trace(mesh, trace, crashes);
        if (xy.lost > 0) ++xy_lost_somewhere;

        GossipNetwork net(mesh, config_with_p(0.5, 40), s, seed);
        apps::TraceDriver driver(net, trace);
        for (TileId t : endpoints) net.protect(t);
        if (net.run_until([&driver] { return driver.complete(); }, 2000).completed)
            ++gossip_completed;
    }
    EXPECT_GT(xy_lost_somewhere, 0);
    // Gossip degrades gracefully: most runs still complete (an unlucky
    // crash pattern can isolate a corner, which no routing survives).
    EXPECT_GE(gossip_completed, 8);
}

TEST(Integration, EnergyAccountingConsistentAcrossModules) {
    const auto noc = run_pi(0.5, FaultScenario::none(), 5);
    ASSERT_TRUE(noc.completed);
    NetworkMetrics m;
    m.packets_sent = noc.packets;
    m.bits_sent = noc.bits;
    m.rounds = noc.rounds;
    const auto trace = apps::pi_trace(apps::PiDeployment{});
    const auto report = noc_energy(m, Technology::cmos_025um(), noc.seconds,
                                   trace.useful_bits());
    EXPECT_GT(report.joules, 0.0);
    EXPECT_GT(report.joules_per_useful_bit, Technology::cmos_025um().link_ebit_joules);
    EXPECT_GT(report.energy_delay_product, 0.0);
}

TEST(Integration, SameSeedSameEverything) {
    const auto a = run_pi(0.5, FaultScenario::none(), 11);
    const auto b = run_pi(0.5, FaultScenario::none(), 11);
    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_EQ(a.packets, b.packets);
    EXPECT_EQ(a.bits, b.bits);
    EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
}

class UpsetSweep : public ::testing::TestWithParam<double> {};

TEST_P(UpsetSweep, PiStillCompletesUnderUpsets) {
    FaultScenario s;
    s.p_upset = GetParam();
    int completed = 0;
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
        GossipNetwork net(Topology::mesh(5, 5), config_with_p(0.5, 60), s, seed);
        auto& master = apps::deploy_pi(net, apps::PiDeployment{});
        net.protect(12);
        if (net.run_until([&master] { return master.done(); }, 4000).completed)
            ++completed;
    }
    EXPECT_GE(completed, 4) << "p_upset=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Upsets, UpsetSweep, ::testing::Values(0.0, 0.3, 0.5, 0.7));

} // namespace
} // namespace snoc
