// Ablation (ours): deterministic XY routing vs. stochastic communication
// under tile crash failures — quantifying the Ch. 1 claim that static
// routing "would fail if even a single tile or a link on the path is
// faulty" while gossip degrades gracefully.
//
// Two ScenarioRunner experiments over the same p_tiles axis and the same
// per-repeat seeds: the XyAdapter and the gossip engine roll their crash
// patterns independently from the shared seed, exactly as the old
// hand-rolled loop did.
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
    using namespace snoc;
    const auto opt = bench::options(argc, argv, 20);
    const auto mesh = Topology::mesh(5, 5);
    const std::vector<double> kPTiles{0.0, 0.05, 0.1, 0.15, 0.2, 0.3};

    // Corner-to-corner traffic: long routes, maximal crash exposure.
    TrafficTrace trace;
    TrafficPhase phase;
    phase.messages.push_back({0, 24, 256});
    phase.messages.push_back({4, 20, 256});
    phase.messages.push_back({20, 4, 256});
    phase.messages.push_back({24, 0, 256});
    trace.phases.push_back(phase);
    const std::vector<TileId> endpoints{0, 4, 20, 24};

    const auto scenario_for = [](double p_tiles) {
        FaultScenario s;
        s.p_tiles = p_tiles;
        return s;
    };

    ExperimentSpec xy_spec;
    xy_spec.name = "ablation xy";
    xy_spec.axes = {{"p_tiles", kPTiles}};
    xy_spec.repeats = opt.repeats;
    xy_spec.base_seed = opt.seed;
    xy_spec.jobs = opt.jobs;
    xy_spec.telemetry = bench::tag_telemetry(opt.telemetry, "_xy");
    xy_spec.backend = [&](const SweepPoint& pt, std::uint64_t seed) {
        return std::make_unique<XyAdapter>(XySpec{mesh, endpoints},
                                           scenario_for(pt.value("p_tiles")), seed);
    };
    xy_spec.trace = [&](const SweepPoint&) { return trace; };

    ExperimentSpec gossip_spec;
    gossip_spec.name = "ablation gossip";
    gossip_spec.axes = {{"p_tiles", kPTiles}};
    gossip_spec.repeats = opt.repeats;
    gossip_spec.base_seed = opt.seed;
    gossip_spec.jobs = opt.jobs;
    gossip_spec.max_rounds = 1000;
    gossip_spec.telemetry = bench::tag_telemetry(opt.telemetry, "_gossip");
    gossip_spec.engine = bench::engine_select(opt);
    gossip_spec.backend = [&](const SweepPoint& pt, std::uint64_t seed) {
        GossipSpec spec;
        spec.topology = mesh;
        spec.config = bench::config_with_p(0.5, 40);
        spec.protect = endpoints;
        spec.engine = gossip_spec.engine;
        return std::make_unique<GossipAdapter>(
            std::move(spec), scenario_for(pt.value("p_tiles")), seed);
    };
    gossip_spec.trace = [&](const SweepPoint&) { return trace; };

    const auto xy_cells = ScenarioRunner(xy_spec).run();
    const auto gossip_cells = ScenarioRunner(gossip_spec).run();

    Table table({"p_tiles", "XY delivery [%]", "gossip delivery [%]",
                 "gossip completion [%]"});
    for (std::size_t c = 0; c < kPTiles.size(); ++c) {
        std::size_t xy_delivered = 0, xy_total = 0;
        for (const RunReport& r : xy_cells[c].reports) {
            xy_delivered += r.deliveries;
            xy_total += r.messages;
        }
        std::size_t gossip_delivered = 0;
        for (const RunReport& r : gossip_cells[c].reports)
            gossip_delivered += r.deliveries;
        table.add_row(
            {format_number(kPTiles[c], 2),
             format_number(100.0 * xy_delivered / xy_total, 1),
             format_number(100.0 * gossip_delivered /
                               (opt.repeats * trace.message_count()),
                           1),
             format_number(100.0 * gossip_cells[c].stats.completion_rate, 0)});
    }
    bench::emit(table, opt, "Ablation: XY routing vs gossip under tile crashes");
    return 0;
}
