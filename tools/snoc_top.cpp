// snoc_top — live terminal summary of a running sweep.
//
// Tails the JSONL heartbeat file a ScenarioRunner writes when launched
// with --heartbeat-out, rendering the newest record as a small dashboard
// (cell/trial progress bars, rounds/s, ETA, post-mortem alerts) that
// refreshes in place until the sweep's final `done` heartbeat arrives.
//
//   snoc_top sweep.heartbeat.jsonl                 # follow until done
//   snoc_top sweep.heartbeat.jsonl --once          # one render (CI-safe)
//   snoc_top sweep.heartbeat.jsonl --interval-ms 500 --max-seconds 60
//
// --once never waits: it renders whatever the file holds right now (or
// "no heartbeats yet") and exits 0, so CI smoke steps can assert on the
// output without racing the producer.  Follow mode exits 0 on the done
// record and 1 if --max-seconds elapses first.
#include <chrono>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "telemetry/heartbeat.hpp"

namespace {

int usage(const char* argv0) {
    std::cerr << "usage: " << argv0
              << " <heartbeat.jsonl> [--once] [--interval-ms N]"
                 " [--max-seconds N] [--no-clear]\n";
    return 2;
}

void render(const std::vector<snoc::HeartbeatRecord>& records, bool clear) {
    // ANSI home+clear keeps the dashboard in place; --no-clear appends
    // frames instead (plays nicer with logs and non-terminals).
    if (clear) std::cout << "\x1b[H\x1b[2J";
    snoc::render_top(records, std::cout);
    std::cout.flush();
}

} // namespace

int main(int argc, char** argv) {
    const snoc::CliArgs args(argc, argv);
    if (args.positional().size() != 1) return usage(argv[0]);
    const std::string path = args.positional()[0];
    const bool once = args.has("once");
    const bool clear = !args.has("no-clear") && !once;
    const auto interval =
        std::chrono::milliseconds(args.get_u64("interval-ms", 1000));
    const double max_seconds =
        args.get_double("max-seconds", 0.0); // 0 = no deadline

    if (once) {
        render(snoc::load_heartbeats_file(path), false);
        return 0;
    }

    const auto start = std::chrono::steady_clock::now();
    std::uint64_t last_seq = 0;
    bool rendered = false;
    for (;;) {
        const auto records = snoc::load_heartbeats_file(path);
        const std::uint64_t seq = records.empty() ? 0 : records.back().seq;
        if (!rendered || seq != last_seq) {
            render(records, clear);
            rendered = true;
            last_seq = seq;
        }
        if (!records.empty() && records.back().done) return 0;
        if (max_seconds > 0.0) {
            const double elapsed =
                std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              start)
                    .count();
            if (elapsed >= max_seconds) {
                std::cerr << "snoc_top: no done heartbeat within "
                          << max_seconds << "s\n";
                return 1;
            }
        }
        std::this_thread::sleep_for(interval);
    }
}
