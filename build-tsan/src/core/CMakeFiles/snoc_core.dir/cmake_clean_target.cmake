file(REMOVE_RECURSE
  "libsnoc_core.a"
)
