file(REMOVE_RECURSE
  "libsnoc_common.a"
)
