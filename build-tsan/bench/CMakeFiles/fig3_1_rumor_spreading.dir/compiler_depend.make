# Empty compiler generated dependencies file for fig3_1_rumor_spreading.
# This may be replaced when dependencies are built.
