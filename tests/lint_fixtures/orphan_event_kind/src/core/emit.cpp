#include "sim/trace.hpp"
namespace snoc { TraceEventKind used_emit_site() { return TraceEventKind::Used; } }
