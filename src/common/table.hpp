// Small result-table builder: the bench binaries print the same rows /
// series the paper's figures plot, both as an aligned ASCII table for the
// terminal and as CSV for replotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace snoc {

class Table {
public:
    explicit Table(std::vector<std::string> headers);

    /// Add a row of already-formatted cells; must match the header width.
    void add_row(std::vector<std::string> cells);

    std::size_t row_count() const { return rows_.size(); }
    const std::vector<std::string>& headers() const { return headers_; }
    const std::vector<std::string>& row(std::size_t i) const;

    /// Aligned, boxed ASCII rendering.
    void print(std::ostream& os) const;
    /// RFC-4180-ish CSV (cells containing comma/quote/newline are quoted).
    void print_csv(std::ostream& os) const;
    /// JSON array of objects, one per row, keyed by header.  Cells stay
    /// strings — they are already formatted for presentation.
    void print_json(std::ostream& os) const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Format a double with the given precision, trimming trailing zeros.
std::string format_number(double value, int precision = 4);

/// Format a double in scientific notation (for J/bit style values).
std::string format_sci(double value, int precision = 3);

} // namespace snoc
