#!/usr/bin/env python3
"""Determinism linter for the simulator sources.

The repro contract is bit-identical results for a given seed, for any
--jobs value, on any host.  That dies quietly when somebody reaches for a
wall clock, an OS entropy source, or iterates an unordered container in a
path whose iteration order can leak into results.  This script scans
src/ and bench/ for the known offenders:

  hard errors (never allowed in simulator code):
    * std::rand / srand           - global hidden state, not seedable per-trial
    * std::random_device          - OS entropy, different every run
    * time( / clock( / gettimeofday  - wall-clock in a sim-visible value
    * default-constructed std::mt19937 / mt19937_64 - unseeded PRNG

  allowlisted declarations (fine only when order never escapes):
    * std::unordered_map / std::unordered_set members or locals - each
      declaration must appear in scripts/determinism_allowlist.txt with a
      one-line justification (membership/lookup-only, never iterated, ...)
    * chrono clock reads (steady_clock / system_clock /
      high_resolution_clock) - wall time must never feed a sim-visible
      value, but *measuring the simulator itself* (SNOC_PROF scopes, bench
      harness timing) is legitimate; each file doing so must carry a
      `relpath:wall_clock` allowlist entry justifying that the readings
      only ever flow into reports, never into simulation state

  hard errors derived from the above:
    * range-for iteration over an identifier that was declared unordered
      in the same file - iteration order is hash-order, which depends on
      libstdc++ version and insertion history

Usage:  scripts/lint_determinism.py [--root DIR]
Exit status: 0 clean, 1 violations found.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

SCAN_DIRS = ("src", "bench", "tools")
EXTENSIONS = {".hpp", ".cpp", ".h", ".cc"}

# (regex, message) pairs that are always errors in simulator code.
HARD_PATTERNS = [
    (re.compile(r"\bstd::rand\b|\bsrand\s*\("),
     "std::rand/srand: global hidden RNG state; use common/rng.hpp streams"),
    (re.compile(r"\brandom_device\b"),
     "std::random_device: OS entropy is never reproducible; derive from the trial seed"),
    (re.compile(r"(?<![\w.:>])time\s*\(|\bgettimeofday\s*\(|(?<![\w.:>_])clock\s*\(\s*\)"),
     "wall-clock call: sim-visible time must come from the round/cycle model"),
]

# `mt19937 rng;` / `mt19937()`: unseeded unless the enclosing constructor
# seeds the member in its initializer list - allowlistable for that case.
MT19937_DECL = re.compile(
    r"\bmt19937(?:_64)?\s+(\w+)\s*;|\bmt19937(?:_64)?\s*\(\s*\)")

# Chrono clock reads: allowlistable per file (key `relpath:wall_clock`)
# for code that times the simulator itself rather than the simulation.
CHRONO_CLOCK = re.compile(
    r"\bstd::chrono::(?:steady|system|high_resolution)_clock\b")

UNORDERED_DECL = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;=]*?>\s*(\w+)\s*[;{(]")
RANGE_FOR = re.compile(r"\bfor\s*\(\s*[^;:)]*?:\s*(?:\w+(?:\.|->))*(\w+)\s*\)")


def strip_comments(text: str) -> str:
    """Blank out // and /* */ comments and string literals, preserving
    line structure so reported line numbers stay exact."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(c if c == "\n" else " ")
        i += 1
    return "".join(out)


def load_allowlist(path: Path) -> set[str]:
    """Entries are `relpath:identifier` followed by free-text justification."""
    entries: set[str] = set()
    if not path.exists():
        return entries
    for raw in path.read_text().splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        entries.add(line.split()[0])
    return entries


def lint_file(path: Path, rel: str, allow: set[str]) -> list[str]:
    problems: list[str] = []
    code = strip_comments(path.read_text(errors="replace"))
    lines = code.splitlines()

    unordered_names: set[str] = set()
    for lineno, line in enumerate(lines, 1):
        for pattern, message in HARD_PATTERNS:
            if pattern.search(line):
                problems.append(f"{rel}:{lineno}: error: {message}")
        for m in MT19937_DECL.finditer(line):
            name = m.group(1) or "<temporary>"
            key = f"{rel}:{name}"
            if key not in allow:
                problems.append(
                    f"{rel}:{lineno}: error: default-constructed mt19937 '{name}': "
                    f"unseeded PRNG; seed it from the trial seed (or allowlist "
                    f"'{key}' if the constructor's initializer list seeds it)")
        if CHRONO_CLOCK.search(line):
            key = f"{rel}:wall_clock"
            if key not in allow:
                problems.append(
                    f"{rel}:{lineno}: error: chrono clock read: wall time in "
                    f"simulator code; if this only ever measures the simulator "
                    f"(profiling/benchmark harness) and never feeds simulation "
                    f"state, allowlist '{key}' with that justification")
        for m in UNORDERED_DECL.finditer(line):
            name = m.group(1)
            unordered_names.add(name)
            key = f"{rel}:{name}"
            if key not in allow:
                problems.append(
                    f"{rel}:{lineno}: error: unordered container '{name}' is not "
                    f"allowlisted; add '{key}' to scripts/determinism_allowlist.txt "
                    "with a justification, or use an ordered/indexed container")
    # Second pass: iteration over anything declared unordered in this file.
    # Hash-order iteration is the classic silent determinism leak, so it is
    # an error even for allowlisted containers.
    for lineno, line in enumerate(lines, 1):
        m = RANGE_FOR.search(line)
        if m and m.group(1) in unordered_names:
            problems.append(
                f"{rel}:{lineno}: error: range-for over unordered container "
                f"'{m.group(1)}': iteration order is hash-order and can leak "
                "into results; copy into a sorted vector first")
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repository root (default: the script's parent repo)")
    args = parser.parse_args()
    root = Path(args.root) if args.root else Path(__file__).resolve().parent.parent
    allow = load_allowlist(root / "scripts" / "determinism_allowlist.txt")

    problems: list[str] = []
    scanned = 0
    for top in SCAN_DIRS:
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in EXTENSIONS:
                continue
            scanned += 1
            problems.extend(lint_file(path, path.relative_to(root).as_posix(), allow))

    for p in problems:
        print(p)
    print(f"lint_determinism: scanned {scanned} files, "
          f"{len(problems)} violation(s)", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
