#!/usr/bin/env bash
# Tier-1 check: configure + build + full ctest, honoring SNOC_SANITIZE.
#
#   scripts/check.sh                 # plain build in build/
#   SNOC_SANITIZE=thread scripts/check.sh   # TSan build in build-thread/
#
# Ends with an explicit pass over the interconnect/scenario labels — the
# backend-parity and runner-determinism suites this repo's refactors rest
# on — so a sanitizer run can target just them with CHECK_LABELS.
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZE="${SNOC_SANITIZE:-}"
if [[ -n "${SANITIZE}" ]]; then
    BUILD_DIR="build-${SANITIZE}"
    CONFIGURE_ARGS=(-DSNOC_SANITIZE="${SANITIZE}")
else
    BUILD_DIR="build"
    CONFIGURE_ARGS=()
fi

JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    "${CONFIGURE_ARGS[@]+"${CONFIGURE_ARGS[@]}"}"
cmake --build "${BUILD_DIR}" -j "${JOBS}"

ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

# The unified-interconnect suites, runnable on their own via
# CHECK_LABELS='interconnect|scenario' (the default below).
LABELS="${CHECK_LABELS:-interconnect|scenario}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}" -L "${LABELS}"
