file(REMOVE_RECURSE
  "CMakeFiles/fig4_4_latency_energy.dir/fig4_4_latency_energy.cpp.o"
  "CMakeFiles/fig4_4_latency_energy.dir/fig4_4_latency_energy.cpp.o.d"
  "fig4_4_latency_energy"
  "fig4_4_latency_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_4_latency_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
