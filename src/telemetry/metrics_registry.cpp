#include "telemetry/metrics_registry.hpp"

#include <fstream>
#include <ostream>

#include "common/expect.hpp"

namespace snoc {

namespace {

std::ofstream open_exposition(const std::string& path) {
    std::ofstream os(path, std::ios::binary);
    SNOC_EXPECT(os.is_open());
    return os;
}

} // namespace

MetricsRegistry::MetricsRegistry() { reset(); }

MetricsRegistry& MetricsRegistry::global() {
    static MetricsRegistry registry;
    return registry;
}

void MetricsRegistry::inc(MetricId id, std::uint64_t delta) {
    SNOC_EXPECT(metric_desc(id).kind != MetricKind::Histogram);
    scalars_[static_cast<std::size_t>(id)].fetch_add(delta,
                                                     std::memory_order_relaxed); // relaxed[monotone-metrics]
}

void MetricsRegistry::dec(MetricId id, std::uint64_t delta) {
    SNOC_EXPECT(metric_desc(id).kind == MetricKind::Gauge);
    scalars_[static_cast<std::size_t>(id)].fetch_sub(delta,
                                                     std::memory_order_relaxed); // relaxed[monotone-metrics]
}

void MetricsRegistry::set(MetricId id, std::uint64_t value) {
    SNOC_EXPECT(metric_desc(id).kind == MetricKind::Gauge);
    scalars_[static_cast<std::size_t>(id)].store(value,
                                                 std::memory_order_relaxed); // relaxed[monotone-metrics]
}

std::uint64_t MetricsRegistry::value(MetricId id) const {
    SNOC_EXPECT(metric_desc(id).kind != MetricKind::Histogram);
    return scalars_[static_cast<std::size_t>(id)].load(
        std::memory_order_relaxed); // relaxed[monotone-metrics]
}

void MetricsRegistry::observe(MetricId id, std::uint64_t sample) {
    SNOC_EXPECT(metric_desc(id).kind == MetricKind::Histogram);
    Histogram& h = histograms_[static_cast<std::size_t>(id)];
    std::size_t bucket = kHistogramBucketCount - 1; // +Inf
    for (std::size_t b = 0; b < std::size(kHistogramBounds); ++b) {
        if (sample <= kHistogramBounds[b]) {
            bucket = b;
            break;
        }
    }
    h.buckets[bucket].fetch_add(1, std::memory_order_relaxed); // relaxed[monotone-metrics]
    h.sum.fetch_add(sample, std::memory_order_relaxed); // relaxed[monotone-metrics]
    h.count.fetch_add(1, std::memory_order_relaxed); // relaxed[monotone-metrics]
}

std::uint64_t MetricsRegistry::histogram_count(MetricId id) const {
    SNOC_EXPECT(metric_desc(id).kind == MetricKind::Histogram);
    return histograms_[static_cast<std::size_t>(id)].count.load(
        std::memory_order_relaxed); // relaxed[monotone-metrics]
}

std::uint64_t MetricsRegistry::histogram_sum(MetricId id) const {
    SNOC_EXPECT(metric_desc(id).kind == MetricKind::Histogram);
    return histograms_[static_cast<std::size_t>(id)].sum.load(
        std::memory_order_relaxed); // relaxed[monotone-metrics]
}

std::uint64_t MetricsRegistry::histogram_bucket(MetricId id,
                                                std::size_t bucket) const {
    SNOC_EXPECT(metric_desc(id).kind == MetricKind::Histogram);
    SNOC_EXPECT(bucket < kHistogramBucketCount);
    const Histogram& h = histograms_[static_cast<std::size_t>(id)];
    // Prometheus buckets are cumulative: le="8" counts everything <= 8.
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b <= bucket; ++b)
        cumulative += h.buckets[b].load(std::memory_order_relaxed); // relaxed[monotone-metrics]
    return cumulative;
}

void MetricsRegistry::reset() {
    for (auto& scalar : scalars_) scalar.store(0, std::memory_order_relaxed); // relaxed[monotone-metrics]
    for (auto& h : histograms_) {
        for (auto& bucket : h.buckets)
            bucket.store(0, std::memory_order_relaxed); // relaxed[monotone-metrics]
        h.sum.store(0, std::memory_order_relaxed); // relaxed[monotone-metrics]
        h.count.store(0, std::memory_order_relaxed); // relaxed[monotone-metrics]
    }
}

namespace {

constexpr const char* kind_name(MetricKind kind) {
    switch (kind) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
    }
    return "?";
}

} // namespace

void MetricsRegistry::write_json(std::ostream& os) const {
    os << "{\n  \"schema\": \"snoc-metrics-v1\",\n  \"metrics\": {\n";
    for (std::size_t i = 0; i < kMetricCount; ++i) {
        const MetricDesc& desc = kMetricDescs[i];
        const auto id = static_cast<MetricId>(i);
        os << "    \"" << desc.wire << "\": {\"kind\": \""
           << kind_name(desc.kind) << "\", ";
        if (desc.kind == MetricKind::Histogram) {
            os << "\"count\": " << histogram_count(id)
               << ", \"sum\": " << histogram_sum(id) << ", \"buckets\": {";
            for (std::size_t b = 0; b < kHistogramBucketCount; ++b) {
                if (b) os << ", ";
                if (b + 1 == kHistogramBucketCount)
                    os << "\"+Inf\"";
                else
                    os << '"' << kHistogramBounds[b] << '"';
                os << ": " << histogram_bucket(id, b);
            }
            os << '}';
        } else {
            os << "\"value\": " << value(id);
        }
        os << '}' << (i + 1 < kMetricCount ? "," : "") << '\n';
    }
    os << "  }\n}\n";
}

void MetricsRegistry::write_json(const std::string& path) const {
    auto os = open_exposition(path);
    write_json(os);
}

void MetricsRegistry::write_prometheus(std::ostream& os) const {
    for (std::size_t i = 0; i < kMetricCount; ++i) {
        const MetricDesc& desc = kMetricDescs[i];
        const auto id = static_cast<MetricId>(i);
        os << "# HELP " << desc.wire << ' ' << desc.help << '\n';
        os << "# TYPE " << desc.wire << ' ' << kind_name(desc.kind) << '\n';
        if (desc.kind == MetricKind::Histogram) {
            for (std::size_t b = 0; b < kHistogramBucketCount; ++b) {
                os << desc.wire << "_bucket{le=\"";
                if (b + 1 == kHistogramBucketCount)
                    os << "+Inf";
                else
                    os << kHistogramBounds[b];
                os << "\"} " << histogram_bucket(id, b) << '\n';
            }
            os << desc.wire << "_sum " << histogram_sum(id) << '\n';
            os << desc.wire << "_count " << histogram_count(id) << '\n';
        } else {
            os << desc.wire << ' ' << value(id) << '\n';
        }
    }
}

void MetricsRegistry::write_prometheus(const std::string& path) const {
    auto os = open_exposition(path);
    write_prometheus(os);
}

} // namespace snoc
