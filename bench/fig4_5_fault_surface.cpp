// Figure 4-5: impact of defective tiles and data upsets on latency — the
// 2-D surface (tile failures x p_upset) -> latency [rounds], for the
// Master-Slave case study at p = 0.5.
//
// Expected shape: latency is nearly flat along the tile-failure axis and
// climbs steeply along the upset axis once p_upset > 0.5; even at 90%
// upsets the run terminates (at ~100 rounds scale).
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
    using namespace snoc;
    const auto opt = bench::options(argc, argv, 10);
    const std::vector<std::size_t> kCrashes{0, 1, 2, 3, 4};
    const std::vector<double> kUpsets{0.0, 0.3, 0.5, 0.7, 0.8, 0.9};

    std::vector<std::string> headers{"tile crashes \\ p_upset"};
    for (double u : kUpsets) headers.push_back(format_number(u, 2));
    Table latency(headers);
    Table completion(headers);

    for (std::size_t crashes : kCrashes) {
        std::vector<std::string> lat_row{std::to_string(crashes)};
        std::vector<std::string> comp_row{std::to_string(crashes)};
        for (double upset : kUpsets) {
            FaultScenario s;
            s.p_upset = upset;
            const auto avg = bench::average_runs(
                [&](std::uint64_t seed) {
                    // Long TTL so heavily-upset rumors survive long enough.
                    return bench::run_pi_once(bench::config_with_p(0.5, 120), s,
                                              crashes, seed, true, 5000, false,
                                              nullptr, nullptr,
                                              bench::engine_select(opt));
                },
                opt.repeats, opt.jobs);
            lat_row.push_back(avg.completion_rate > 0.0
                                  ? format_number(avg.rounds, 1)
                                  : std::string("-"));
            comp_row.push_back(format_number(avg.completion_rate * 100.0, 0) + "%");
        }
        latency.add_row(lat_row);
        completion.add_row(comp_row);
    }
    bench::emit(latency, opt,
                "Fig. 4-5: latency [rounds] vs (tile crashes, p_upset), Master-Slave");
    bench::emit(completion, opt, "Fig. 4-5 companion: completion rate");
    return 0;
}
