file(REMOVE_RECURSE
  "CMakeFiles/snoc_energy.dir/energy.cpp.o"
  "CMakeFiles/snoc_energy.dir/energy.cpp.o.d"
  "libsnoc_energy.a"
  "libsnoc_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snoc_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
