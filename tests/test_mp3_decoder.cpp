#include "apps/mp3_decoder.hpp"

#include <gtest/gtest.h>

#include "apps/audio.hpp"
#include "apps/mp3_app.hpp"

namespace snoc::apps {
namespace {

GossipConfig clean_config() {
    GossipConfig c;
    c.forward_p = 0.75;
    c.default_ttl = 30;
    return c;
}

Mp3Config codec_config(std::size_t budget) {
    Mp3Config c;
    c.frame_samples = 64;
    c.frame_count = 8;
    c.frame_interval = 2;
    c.band_count = 8;
    c.frame_budget_bits = budget;
    c.reservoir_capacity = 2 * budget;
    return c;
}

/// Run the full pipeline and decode what the Output tile collected.
struct CodecRun {
    std::vector<double> reference;
    std::vector<double> decoded;
    std::size_t frames;
};

CodecRun run_codec(std::size_t budget, FaultScenario scenario, std::uint64_t seed,
                   Round skip_after = 0) {
    auto cfg = codec_config(budget);
    cfg.skip_after_rounds = skip_after;
    const std::uint64_t audio_seed = 7;
    GossipNetwork net(Topology::mesh(4, 4), clean_config(), scenario, seed);
    auto& output = deploy_mp3(net, cfg, Mp3Deployment{}, audio_seed);
    net.run_until([&output] { return output.complete(); }, 4000);

    CodecRun run;
    run.frames = output.frames_received();
    run.decoded =
        decode_stream_to_pcm(output.stream_chunks(), cfg.frame_samples, cfg.frame_count);
    // Regenerate the exact source audio (same generator, same seed).
    ToneGenerator gen(AudioParams{}, audio_seed);
    for (std::size_t f = 0; f < cfg.frame_count; ++f) {
        const auto frame = gen.frame(cfg.frame_samples);
        run.reference.insert(run.reference.end(), frame.begin(), frame.end());
    }
    return run;
}

TEST(Mp3Decoder, RoundtripHasReasonableSnr) {
    const auto run = run_codec(800, FaultScenario::none(), 1);
    ASSERT_EQ(run.frames, 8u);
    // Interior region: skip the zero-history ramp-in and the open tail.
    const double snr = snr_db(run.reference, run.decoded, 64, 7 * 64);
    EXPECT_GT(snr, 8.0) << "snr=" << snr;
}

TEST(Mp3Decoder, MoreBitsBetterAudio) {
    const auto coarse = run_codec(250, FaultScenario::none(), 2);
    const auto fine = run_codec(2000, FaultScenario::none(), 2);
    const double snr_coarse = snr_db(coarse.reference, coarse.decoded, 64, 7 * 64);
    const double snr_fine = snr_db(fine.reference, fine.decoded, 64, 7 * 64);
    EXPECT_GT(snr_fine, snr_coarse + 3.0);
}

TEST(Mp3Decoder, UpsetsDoNotCorruptAudioOnlyDelayIt) {
    FaultScenario s;
    s.p_upset = 0.5;
    const auto clean = run_codec(800, FaultScenario::none(), 3);
    const auto noisy = run_codec(800, s, 3);
    ASSERT_EQ(noisy.frames, 8u);
    // CRC filtering means the decoded audio is bit-identical in content.
    const double snr_clean = snr_db(clean.reference, clean.decoded, 64, 7 * 64);
    const double snr_noisy = snr_db(noisy.reference, noisy.decoded, 64, 7 * 64);
    EXPECT_NEAR(snr_clean, snr_noisy, 1e-9);
}

TEST(Mp3Decoder, SkippedFramesDecodeAsSilence) {
    // Build one data chunk and one skip chunk by hand.
    std::vector<std::byte> skip_chunk;
    for (int i = 0; i < 4; ++i) skip_chunk.push_back(std::byte{0});
    skip_chunk.push_back(std::byte{1}); // skip marker
    EXPECT_FALSE(decode_stream_chunk(skip_chunk).has_value());
}

TEST(Mp3Decoder, MalformedChunksRejected) {
    EXPECT_FALSE(decode_stream_chunk({}).has_value());
    std::vector<std::byte> junk(3, std::byte{0xFF});
    EXPECT_FALSE(decode_stream_chunk(junk).has_value());
}

TEST(Mp3Decoder, SnrHelperBounds) {
    std::vector<double> a{1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(snr_db(a, a, 0, 3), 300.0);
    std::vector<double> zeros{0.0, 0.0, 0.0};
    std::vector<double> junk{1.0, 1.0, 1.0};
    EXPECT_DOUBLE_EQ(snr_db(zeros, junk, 0, 3), 0.0);
    EXPECT_THROW(snr_db(a, a, 2, 2), ContractViolation);
}

TEST(Mp3Decoder, StreamingModeLosesFramesGracefully) {
    // Heavy overflow in streaming mode: some frames skipped, the rest
    // still decode; decoded output stays the right length.
    FaultScenario s;
    s.p_overflow = 0.7;
    const auto run = run_codec(800, s, 4, /*skip_after=*/12);
    EXPECT_EQ(run.decoded.size(), 8u * 64u);
    EXPECT_LE(run.frames, 8u);
}

} // namespace
} // namespace snoc::apps
