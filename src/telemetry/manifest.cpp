#include "telemetry/manifest.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "common/expect.hpp"

#ifndef SNOC_GIT_SHA
#define SNOC_GIT_SHA "unknown"
#endif

namespace snoc {

namespace {

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

const char* build_git_sha() { return SNOC_GIT_SHA; }

std::string manifest_json(const RunManifest& manifest) {
    std::ostringstream os;
    os << "{\n";
    os << "  \"schema_version\": 1,\n";
    os << "  \"generator\": \"snoc\",\n";
    os << "  \"git_sha\": \"" << json_escape(build_git_sha()) << "\",\n";
    os << "  \"check_level\": " << SNOC_CHECK_LEVEL << ",\n";
    os << "  \"program\": \"" << json_escape(manifest.program) << "\",\n";
    os << "  \"experiment\": \"" << json_escape(manifest.experiment) << "\",\n";
    os << "  \"backend\": \"" << json_escape(manifest.backend) << "\",\n";
    os << "  \"base_seed\": " << manifest.base_seed << ",\n";
    os << "  \"repeats\": " << manifest.repeats << ",\n";
    os << "  \"jobs\": " << manifest.jobs << ",\n";
    os << "  \"config\": {";
    for (std::size_t i = 0; i < manifest.config.size(); ++i) {
        os << (i ? ",\n    " : "\n    ");
        os << '"' << json_escape(manifest.config[i].first) << "\": \""
           << json_escape(manifest.config[i].second) << '"';
    }
    os << (manifest.config.empty() ? "},\n" : "\n  },\n");
    os << "  \"artifacts\": [";
    for (std::size_t i = 0; i < manifest.artifacts.size(); ++i) {
        os << (i ? ", " : "");
        os << '"' << json_escape(manifest.artifacts[i]) << '"';
    }
    os << "]\n";
    os << "}\n";
    return os.str();
}

void write_manifest(const RunManifest& manifest, std::ostream& os) {
    os << manifest_json(manifest);
}

void write_manifest(const RunManifest& manifest, const std::string& path) {
    std::ofstream os(path, std::ios::binary);
    SNOC_EXPECT(os.is_open());
    write_manifest(manifest, os);
}

std::string manifest_path_for(const std::string& artifact_path) {
    const auto slash = artifact_path.find_last_of("/\\");
    const auto dot = artifact_path.find_last_of('.');
    const bool has_ext =
        dot != std::string::npos && (slash == std::string::npos || dot > slash);
    const std::string stem =
        has_ext ? artifact_path.substr(0, dot) : artifact_path;
    return stem + ".manifest.json";
}

} // namespace snoc
