# Empty compiler generated dependencies file for test_trace_app.
# This may be replaced when dependencies are built.
