#include "noc/crc.hpp"

#include <string_view>
#include <vector>

#include <gtest/gtest.h>

namespace snoc {
namespace {

std::vector<std::byte> bytes_of(std::string_view s) {
    std::vector<std::byte> out;
    out.reserve(s.size());
    for (char c : s) out.push_back(static_cast<std::byte>(c));
    return out;
}

// "123456789" is the standard CRC check string.
TEST(Crc32, KnownCheckValue) {
    const auto data = bytes_of("123456789");
    EXPECT_EQ(crc::crc32(data), 0xCBF43926u);
}

TEST(Crc32, EmptyInput) {
    EXPECT_EQ(crc::crc32({}), 0x00000000u);
}

TEST(Crc16Ccitt, KnownCheckValue) {
    // CRC-16/CCITT-FALSE check value.
    const auto data = bytes_of("123456789");
    EXPECT_EQ(crc::crc16_ccitt(data), 0x29B1u);
}

TEST(Crc16Ccitt, EmptyInput) {
    EXPECT_EQ(crc::crc16_ccitt({}), 0xFFFFu);
}

TEST(Crc32, DetectsEverySingleBitFlip) {
    auto data = bytes_of("stochastic communication");
    const auto clean = crc::crc32(data);
    for (std::size_t bit = 0; bit < data.size() * 8; ++bit) {
        data[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
        EXPECT_NE(crc::crc32(data), clean) << "missed flip at bit " << bit;
        data[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
    }
    EXPECT_EQ(crc::crc32(data), clean);
}

TEST(Crc16Ccitt, DetectsEverySingleBitFlip) {
    auto data = bytes_of("network-on-chip");
    const auto clean = crc::crc16_ccitt(data);
    for (std::size_t bit = 0; bit < data.size() * 8; ++bit) {
        data[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
        EXPECT_NE(crc::crc16_ccitt(data), clean);
        data[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
    }
}

TEST(Crc32, DetectsAllDoubleBitFlipsInShortMessage) {
    auto data = bytes_of("NoC");
    const auto clean = crc::crc32(data);
    const std::size_t nbits = data.size() * 8;
    for (std::size_t i = 0; i < nbits; ++i) {
        for (std::size_t j = i + 1; j < nbits; ++j) {
            data[i / 8] ^= static_cast<std::byte>(1u << (i % 8));
            data[j / 8] ^= static_cast<std::byte>(1u << (j % 8));
            EXPECT_NE(crc::crc32(data), clean) << i << "," << j;
            data[i / 8] ^= static_cast<std::byte>(1u << (i % 8));
            data[j / 8] ^= static_cast<std::byte>(1u << (j % 8));
        }
    }
}

TEST(Crc32, DetectsBurstErrors) {
    // CRC-32 detects all burst errors up to 32 bits.
    auto data = bytes_of("burst error detection property");
    const auto clean = crc::crc32(data);
    for (std::size_t start = 0; start + 32 <= data.size() * 8; start += 3) {
        auto corrupted = data;
        for (std::size_t b = start; b < start + 32; ++b)
            corrupted[b / 8] ^= static_cast<std::byte>(1u << (b % 8));
        EXPECT_NE(crc::crc32(corrupted), clean);
    }
}

TEST(Crc32, IsConstexpr) {
    constexpr std::array<std::byte, 3> data{std::byte{'a'}, std::byte{'b'},
                                            std::byte{'c'}};
    constexpr auto value = crc::crc32(std::span<const std::byte>(data));
    static_assert(value == 0x352441C2u); // crc32("abc")
    EXPECT_EQ(value, 0x352441C2u);
}

TEST(Crc, DifferentMessagesDifferentCrc) {
    EXPECT_NE(crc::crc32(bytes_of("tile 6")), crc::crc32(bytes_of("tile 7")));
    EXPECT_NE(crc::crc16_ccitt(bytes_of("tile 6")),
              crc::crc16_ccitt(bytes_of("tile 7")));
}

} // namespace
} // namespace snoc
