// The invariant auditor's own test suite (ctest label: check).
//
// Positive half: every backend, run under the auditor on the scenario
// shapes the figures actually use (corner traffic, the Fig. 4-4 pi / FFT
// deployments, the Fig. 4-6 tuned-TTL unicast, the Fig. 5-3 diversity
// architectures), must produce zero violations — the conservation laws
// hold on real runs, fault injection and all.
//
// Negative half: the auditor must *catch* what it claims to catch.  We
// feed it a leaked ledger, an over-capacity buffer, a self-inconsistent
// RunReport and tampered metrics, and assert each one is flagged — a
// checker nobody has ever seen fail is not evidence of anything.
#include <gtest/gtest.h>

#include <cstdint>

#include "apps/trace_app.hpp"
#include "bench_util.hpp"
#include "check/invariant_auditor.hpp"
#include "check/ledger.hpp"
#include "common/expect.hpp"
#include "diversity/architecture.hpp"
#include "sim/backends.hpp"
#include "sim/scenario.hpp"
#include "telemetry/telemetry.hpp"

namespace snoc {
namespace {

TrafficTrace corner_trace() {
    TrafficTrace trace;
    TrafficPhase phase;
    phase.messages.push_back({0, 24, 256});
    phase.messages.push_back({4, 20, 256});
    phase.messages.push_back({20, 4, 256});
    phase.messages.push_back({24, 0, 256});
    trace.phases.push_back(phase);
    return trace;
}

// --- Positive: all five backends audit clean ---------------------------

// Adapters with the trace endpoints protected, so crash scenarios stay
// well-formed for every backend (deflection refuses dead sources).
std::unique_ptr<Interconnect> make_protected(BackendKind kind,
                                             const FaultScenario& scenario,
                                             std::uint64_t seed) {
    const std::vector<TileId> corners{0, 4, 20, 24};
    switch (kind) {
    case BackendKind::Gossip: {
        GossipSpec spec;
        spec.protect = corners;
        return std::make_unique<GossipAdapter>(std::move(spec), scenario, seed);
    }
    case BackendKind::Bus:
        return std::make_unique<BusAdapter>(BusSpec{}, scenario, seed);
    case BackendKind::Xy: {
        XySpec spec;
        spec.protect = corners;
        return std::make_unique<XyAdapter>(std::move(spec), scenario, seed);
    }
    case BackendKind::Wormhole: {
        WormholeSpec spec;
        spec.protect = corners;
        return std::make_unique<WormholeAdapter>(std::move(spec), scenario, seed);
    }
    case BackendKind::Deflection: {
        DeflectionSpec spec;
        spec.protect = corners;
        return std::make_unique<DeflectionAdapter>(std::move(spec), scenario,
                                                   seed);
    }
    case BackendKind::StoreForward: {
        StoreForwardSpec spec;
        spec.protect = corners;
        return std::make_unique<StoreForwardAdapter>(std::move(spec), scenario,
                                                     seed);
    }
    case BackendKind::CutThrough: {
        CutThroughSpec spec;
        spec.protect = corners;
        return std::make_unique<CutThroughAdapter>(std::move(spec), scenario,
                                                   seed);
    }
    case BackendKind::Adaptive: {
        AdaptiveSpec spec;
        spec.protect = corners;
        return std::make_unique<AdaptiveAdapter>(std::move(spec), scenario,
                                                 seed);
    }
    }
    return nullptr;
}

TEST(AuditParity, AllBackendsCleanOnCornerTrace) {
    const auto trace = corner_trace();
    FaultScenario scenario;
    scenario.p_tiles = 0.1;
    scenario.p_upset = 0.01;
    for (const BackendKind kind : kBackendKinds) {
        for (std::uint64_t seed = 0; seed < 3; ++seed) {
            check::InvariantAuditor auditor;
            auto backend = make_protected(kind, scenario, seed);
            backend->set_auditor(&auditor);
            const RunReport report = backend->run(trace, 3000);
            EXPECT_TRUE(auditor.clean())
                << to_string(kind) << " seed " << seed << ": "
                << auditor.summary();
            EXPECT_EQ(report.audit_violations, 0u)
                << to_string(kind) << " seed " << seed;
        }
        // Fault-free flavour must complete and still audit clean.
        check::InvariantAuditor auditor;
        auto backend = make_interconnect(kind, FaultScenario::none(), 1);
        backend->set_auditor(&auditor);
        const RunReport report = backend->run(trace, 3000);
        EXPECT_TRUE(report.completed) << to_string(kind);
        EXPECT_TRUE(auditor.clean()) << to_string(kind) << ": "
                                     << auditor.summary();
    }
}

// Backend parity for the telemetry layer: every backend must speak the
// same TraceEvent vocabulary through the same sink API.  On the fault-free
// corner trace the stream is also *quantitatively* consistent: one created
// and one delivered event per logical message, transmitted events equal to
// the report's transmission counter, and no loss events at all.
TEST(AuditParity, AllBackendsEmitConsistentEventStream) {
    const auto trace = corner_trace();
    for (const BackendKind kind : kBackendKinds) {
        Telemetry telemetry;
        auto backend = make_interconnect(kind, FaultScenario::none(), 1);
        backend->set_trace_sink(&telemetry);
        const RunReport report = backend->run(trace, 3000);
        ASSERT_TRUE(report.completed) << to_string(kind);
        EXPECT_GT(telemetry.total(), 0u) << to_string(kind);
        EXPECT_EQ(telemetry.count(TraceEventKind::MessageCreated),
                  trace.message_count())
            << to_string(kind);
        EXPECT_EQ(telemetry.count(TraceEventKind::Delivered),
                  trace.message_count())
            << to_string(kind);
        EXPECT_EQ(telemetry.count(TraceEventKind::Transmitted),
                  report.transmissions)
            << to_string(kind);
        // No faults injected, so the loss taxonomy must stay silent.
        for (const TraceEventKind k :
             {TraceEventKind::CrcDrop, TraceEventKind::FecUncorrectable,
              TraceEventKind::CrashDrop}) {
            EXPECT_EQ(telemetry.count(k), 0u)
                << to_string(kind) << " emitted " << to_string(k);
        }
        // Every event carries an in-range kind (the stream round-trips
        // through to_string/from_string without falling off the table).
        for (const TraceEvent& e : telemetry.events()) {
            const auto name = to_string(e.kind);
            ASSERT_STRNE(name, "?") << to_string(kind);
            EXPECT_EQ(trace_kind_from_string(name), e.kind);
        }
    }
}

TEST(AuditParity, AuditingDoesNotChangeResults) {
    const auto trace = corner_trace();
    FaultScenario scenario;
    scenario.p_tiles = 0.1;
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
        auto plain = make_interconnect(BackendKind::Gossip, scenario, seed);
        const RunReport a = plain->run(trace, 1000);

        check::InvariantAuditor auditor;
        auto audited = make_interconnect(BackendKind::Gossip, scenario, seed);
        audited->set_auditor(&auditor);
        const RunReport b = audited->run(trace, 1000);

        EXPECT_EQ(a.completed, b.completed) << seed;
        EXPECT_EQ(a.rounds, b.rounds) << seed;
        EXPECT_EQ(a.transmissions, b.transmissions) << seed;
        EXPECT_EQ(a.bits, b.bits) << seed;
        EXPECT_EQ(a.deliveries, b.deliveries) << seed;
        EXPECT_TRUE(auditor.clean()) << auditor.summary();
    }
}

// --- Positive: the figure workloads audit clean ------------------------

// Fig. 4-4 shape: pi and FFT deployments under exact tile crashes plus
// data upsets — the workload that exercises CRC drops, crash sinks, TTL
// expiry and the drain all at once.
TEST(AuditFigures, PiDeploymentWithFaults) {
    FaultScenario scenario;
    scenario.p_upset = 0.01;
    scenario.p_overflow = 0.01;
    check::InvariantAuditor auditor;
    const RunReport r = bench::run_pi_once(bench::config_with_p(0.5),
                                           scenario, /*exact_tile_crashes=*/2,
                                           /*seed=*/3, true, 3000, false,
                                           &auditor);
    EXPECT_GT(auditor.rounds_audited(), 0u);
    EXPECT_TRUE(auditor.clean()) << auditor.summary();
    EXPECT_EQ(r.audit_violations, 0u);
}

TEST(AuditFigures, FftDeploymentWithFaults) {
    FaultScenario scenario;
    scenario.p_upset = 0.005;
    scenario.sigma_synchr = 0.1;
    check::InvariantAuditor auditor;
    const RunReport r = bench::run_fft_once(bench::config_with_p(0.6),
                                            scenario, /*exact_tile_crashes=*/1,
                                            /*seed=*/5, 3000, &auditor);
    EXPECT_GT(auditor.rounds_audited(), 0u);
    EXPECT_TRUE(auditor.clean()) << auditor.summary();
    EXPECT_EQ(r.audit_violations, 0u);
}

// Fig. 4-6 shape: tuned (short) TTL, stop-spread-on-delivery, direct
// addressing — the configuration where rumors die young and the
// stop-spread GC path is hot.
TEST(AuditFigures, TunedTtlUnicast) {
    auto config = bench::config_with_p(0.5, /*ttl=*/8);
    config.stop_spread_on_delivery = true;
    check::InvariantAuditor auditor;
    (void)bench::run_pi_once(config, FaultScenario::none(), 0, /*seed=*/1,
                             /*duplicate_slaves=*/false, 3000,
                             /*direct_addressing=*/true, &auditor);
    EXPECT_GT(auditor.rounds_audited(), 0u);
    EXPECT_TRUE(auditor.clean()) << auditor.summary();
}

// Fig. 5-3 shape: the diversity architectures through ScenarioRunner's
// declarative audit flag — per-trial auditors, violations aggregated.
TEST(AuditFigures, DiversityArchitecturesViaScenarioRunner) {
    constexpr diversity::ArchitectureKind kKinds[] = {
        diversity::ArchitectureKind::FlatNoc,
        diversity::ArchitectureKind::HierarchicalNoc,
        diversity::ArchitectureKind::CentralRouterMesh,
        diversity::ArchitectureKind::BusConnectedNocs};
    ExperimentSpec spec;
    spec.name = "check fig5_3";
    spec.axes = {{"arch", {0, 1, 2, 3}}};
    spec.repeats = 1;
    spec.max_rounds = 20000;
    spec.audit = true;
    spec.backend = [&](const SweepPoint& pt, std::uint64_t seed) {
        return diversity::make_interconnect(kKinds[pt.index_of("arch")],
                                            bench::config_with_p(0.75, 40),
                                            FaultScenario::none(), seed);
    };
    spec.trace = [&](const SweepPoint& pt) {
        const auto arch =
            diversity::make_architecture(kKinds[pt.index_of("arch")]);
        return diversity::beamforming_trace_for(arch, /*frames=*/2);
    };
    const auto cells = ScenarioRunner(spec).run();
    ASSERT_EQ(cells.size(), 4u);
    for (const CellResult& cell : cells) {
        EXPECT_EQ(cell.stats.audit_violations, 0u) << cell.point.label();
        for (const RunReport& r : cell.reports)
            EXPECT_EQ(r.audit_violations, 0u) << cell.point.label();
    }
}

TEST(AuditFigures, ScenarioRunnerAuditFlagCoversRetries) {
    ExperimentSpec spec;
    spec.name = "check gossip sweep";
    spec.axes = {{"p", {0.3, 0.6}}};
    spec.repeats = 2;
    spec.max_attempts = 3;
    spec.audit = true;
    spec.backend = [](const SweepPoint& pt, std::uint64_t seed) {
        GossipSpec g;
        g.config = bench::config_with_p(pt.value("p"), /*ttl=*/12);
        return std::make_unique<GossipAdapter>(std::move(g),
                                               FaultScenario::none(), seed);
    };
    spec.trace = [](const SweepPoint&) { return corner_trace(); };
    for (const CellResult& cell : ScenarioRunner(spec).run())
        EXPECT_EQ(cell.stats.audit_violations, 0u) << cell.point.label();
}

// --- Negative: the auditor detects what it claims to -------------------

TEST(AuditDetects, LeakedWireCopy) {
    // A real run's ledger, then a copy leaks: one transmitted packet
    // vanishes without a recorded fate.
    GossipNetwork net(Topology::mesh(5, 5), bench::config_with_p(0.5),
                      FaultScenario::none(), 11);
    apps::TraceDriver driver(net, corner_trace());
    (void)net.run_until([&driver] { return driver.complete(); }, 500);
    check::ConservationLedger ledger = net.ledger();
    EXPECT_TRUE(ledger.balanced());
    ledger.accepted -= 1; // the leak: an accepted copy unaccounted for.

    check::InvariantAuditor auditor;
    auditor.check_conservation(ledger);
    ASSERT_FALSE(auditor.clean());
    EXPECT_EQ(auditor.violations().front().invariant, "wire-conservation");
    EXPECT_THROW(auditor.throw_if_dirty(), ContractViolation);
}

TEST(AuditDetects, BufferLeak) {
    check::ConservationLedger ledger;
    ledger.injected = 10;
    ledger.transmitted = 5; // wire law balanced: all 5 accepted.
    ledger.accepted = 5;
    ledger.ttl_expired = 9;
    ledger.buffered = 4; // 15 in, 13 accounted: two copies leaked.
    check::InvariantAuditor auditor;
    auditor.check_conservation(ledger);
    ASSERT_FALSE(auditor.clean());
    EXPECT_EQ(auditor.violations().front().invariant, "buffer-conservation");
}

TEST(AuditDetects, BufferOverrun) {
    check::InvariantAuditor auditor;
    auditor.check_occupancy(/*tile=*/7, /*size=*/9, /*capacity=*/8);
    ASSERT_FALSE(auditor.clean());
    EXPECT_EQ(auditor.violations().front().invariant, "occupancy");
    auditor.reset();
    auditor.check_occupancy(7, 8, 8); // at capacity is legal.
    EXPECT_TRUE(auditor.clean());
}

TEST(AuditDetects, InconsistentRunReport) {
    const auto trace = corner_trace();
    RunReport report;
    report.messages = trace.message_count();
    report.deliveries = report.messages + 1; // more delivered than offered.
    report.dropped = 0;
    report.completed = true;
    check::InvariantAuditor auditor;
    auditor.check_report(report, BackendKind::Xy, &trace, 0);
    EXPECT_FALSE(auditor.clean());

    auditor.reset();
    RunReport budget;
    budget.messages = trace.message_count();
    budget.deliveries = budget.messages;
    budget.rounds = 501; // over the budget it was given.
    budget.completed = true;
    auditor.check_report(budget, BackendKind::Wormhole, &trace, 500);
    ASSERT_FALSE(auditor.clean());
    EXPECT_EQ(auditor.violations().front().invariant, "report-budget");
}

TEST(AuditDetects, TamperedMetricsHistograms) {
    GossipNetwork net(Topology::mesh(5, 5), bench::config_with_p(0.5),
                      FaultScenario::none(), 2);
    apps::TraceDriver driver(net, corner_trace());
    (void)net.run_until([&driver] { return driver.complete(); }, 500);

    NetworkMetrics tampered = net.metrics();
    tampered.packets_sent += 1; // per-link histogram no longer sums up.
    check::InvariantAuditor auditor;
    auditor.check_metrics(tampered, /*include_round_histogram=*/true);
    EXPECT_FALSE(auditor.clean()) << "histogram tamper went unnoticed";
}

// The router core exposes its live record table to check_router; a clean
// run must pass, and the report-level metrics gate (which full-metrics
// backends opt into) must notice a tampered counter for the router kinds.
TEST(AuditDetects, RouterMetricsGateCatchesTamper) {
    const auto trace = corner_trace();
    StoreForwardAdapter adapter(StoreForwardSpec{}, FaultScenario::none(), 1);
    RunReport report = adapter.run(trace, 10000);
    ASSERT_TRUE(report.completed);

    check::InvariantAuditor auditor;
    auditor.check_report(report, BackendKind::StoreForward, &trace, 10000);
    EXPECT_TRUE(auditor.clean()) << auditor.summary();

    report.metrics.packets_sent += 1; // per-link histogram no longer sums up.
    auditor.reset();
    auditor.check_report(report, BackendKind::StoreForward, &trace, 10000);
    EXPECT_FALSE(auditor.clean()) << "router metrics tamper went unnoticed";
}

TEST(AuditDetects, RouterCoreCleanAfterDirectRun) {
    router::RouterCore core(Topology::mesh(5, 5), router::RouterConfig{});
    const auto trace = corner_trace();
    for (const auto& m : trace.phases.front().messages)
        core.inject(m.src, m.dst, m.bits);
    while (!core.idle()) core.step();
    check::InvariantAuditor auditor;
    auditor.check_router(core);
    EXPECT_TRUE(auditor.clean()) << auditor.summary();
    EXPECT_GT(auditor.rounds_audited(), 0u);
}

TEST(AuditDetects, SummaryNamesTheBrokenInvariant) {
    check::InvariantAuditor auditor;
    auditor.begin_run("negative");
    auditor.check_occupancy(3, 10, 4);
    const std::string s = auditor.summary();
    EXPECT_NE(s.find("occupancy"), std::string::npos) << s;
    EXPECT_NE(s.find("negative"), std::string::npos) << s;
    EXPECT_EQ(auditor.violation_count(), 1u);
    auditor.reset();
    EXPECT_TRUE(auditor.clean());
    EXPECT_EQ(auditor.violation_count(), 0u);
}

} // namespace
} // namespace snoc
