// Wall-clock profiling scopes for the simulator itself.
//
// `SNOC_PROF("engine/forward")` drops an RAII timer into a block; when
// profiling is enabled (--prof, or prof::set_enabled(true)) every entry
// accumulates call count and elapsed seconds under its label, merged
// across threads.  When disabled a scope costs one relaxed atomic load
// and a branch — cheap enough to leave in the engine's hot phases.
//
// These timers measure the *simulator*, never the simulation: no value
// read from the clock can reach a RunReport, a metric, or any seeded
// decision.  That is why the steady_clock use below carries a justified
// entry in scripts/determinism_allowlist.txt.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace snoc::prof {

namespace detail {
inline std::atomic<bool> g_enabled{false};
void record(const char* name, double seconds);
} // namespace detail

inline bool enabled() {
    return detail::g_enabled.load(
        std::memory_order_relaxed); // relaxed[enable-flag]
}

void set_enabled(bool on);

struct Stat {
    std::uint64_t calls{0};
    double seconds{0.0};
};

/// Merged view over every thread's accumulators (ordered by label).
std::map<std::string, Stat> snapshot();

/// Drop all accumulated stats (tests; between benchmark repetitions).
void reset();

/// Human-readable table of snapshot(), sorted by total time, one line per
/// label; empty string when nothing was recorded.
std::string report();

/// Machine-readable snapshot() — schema "snoc-prof-v1", one entry per
/// label in label order, so two dumps of identical stats are
/// byte-identical.  Always returns a full document (empty `entries`
/// when nothing was recorded) so --prof-out files always parse.
std::string json_report();

/// json_report() written to `path` (bench_util's --prof-out atexit hook).
void write_json_report(const std::string& path);

class Scope {
public:
    explicit Scope(const char* name) {
        if (enabled()) {
            name_ = name;
            start_ = std::chrono::steady_clock::now();
        }
    }
    ~Scope() {
        if (!name_) return;
        const auto elapsed = std::chrono::steady_clock::now() - start_;
        detail::record(name_,
                       std::chrono::duration<double>(elapsed).count());
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

private:
    const char* name_{nullptr};
    std::chrono::steady_clock::time_point start_{};
};

} // namespace snoc::prof

#define SNOC_PROF_CONCAT2(a, b) a##b
#define SNOC_PROF_CONCAT(a, b) SNOC_PROF_CONCAT2(a, b)
#define SNOC_PROF(name) \
    ::snoc::prof::Scope SNOC_PROF_CONCAT(snoc_prof_scope_, __COUNTER__)(name)
