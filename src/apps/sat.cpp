#include "apps/sat.hpp"

#include <algorithm>
#include <memory>
#include <sstream>

#include "apps/payload.hpp"
#include "common/expect.hpp"
#include "common/rng.hpp"

namespace snoc::apps {

bool satisfies(const Cnf& cnf, const Assignment& assignment) {
    SNOC_EXPECT(assignment.size() >= cnf.variables + 1);
    for (const Clause& clause : cnf.clauses) {
        bool sat = false;
        for (Literal lit : clause) {
            const auto var = static_cast<std::size_t>(std::abs(lit));
            const std::int8_t value = assignment[var];
            if ((lit > 0 && value > 0) || (lit < 0 && value < 0)) {
                sat = true;
                break;
            }
        }
        if (!sat) return false;
    }
    return true;
}

namespace {

enum class PropagateOutcome { Ok, Conflict };

/// Unit propagation over the current assignment; extends it in place.
PropagateOutcome propagate(const Cnf& cnf, Assignment& assignment,
                           std::size_t& propagations) {
    bool changed = true;
    while (changed) {
        changed = false;
        for (const Clause& clause : cnf.clauses) {
            bool satisfied = false;
            Literal unit = 0;
            std::size_t unassigned = 0;
            for (Literal lit : clause) {
                const auto var = static_cast<std::size_t>(std::abs(lit));
                const std::int8_t value = assignment[var];
                if (value == 0) {
                    ++unassigned;
                    unit = lit;
                } else if ((lit > 0) == (value > 0)) {
                    satisfied = true;
                    break;
                }
            }
            if (satisfied) continue;
            if (unassigned == 0) return PropagateOutcome::Conflict;
            if (unassigned == 1) {
                const auto var = static_cast<std::size_t>(std::abs(unit));
                assignment[var] = unit > 0 ? 1 : -1;
                ++propagations;
                changed = true;
            }
        }
    }
    return PropagateOutcome::Ok;
}

/// Assign every pure literal (appears with one polarity only).
void eliminate_pure(const Cnf& cnf, Assignment& assignment) {
    std::vector<std::uint8_t> polarity(cnf.variables + 1, 0); // bit0 pos, bit1 neg
    for (const Clause& clause : cnf.clauses) {
        // Only clauses not yet satisfied constrain polarity.
        bool satisfied = false;
        for (Literal lit : clause) {
            const auto var = static_cast<std::size_t>(std::abs(lit));
            if (assignment[var] != 0 && (lit > 0) == (assignment[var] > 0))
                satisfied = true;
        }
        if (satisfied) continue;
        for (Literal lit : clause) {
            const auto var = static_cast<std::size_t>(std::abs(lit));
            if (assignment[var] == 0)
                polarity[var] |= lit > 0 ? 1u : 2u;
        }
    }
    for (std::size_t var = 1; var <= cnf.variables; ++var) {
        if (assignment[var] != 0) continue;
        if (polarity[var] == 1) assignment[var] = 1;
        if (polarity[var] == 2) assignment[var] = -1;
    }
}

bool dpll_recurse(const Cnf& cnf, Assignment& assignment, SatResult& stats) {
    if (propagate(cnf, assignment, stats.propagations) == PropagateOutcome::Conflict)
        return false;
    eliminate_pure(cnf, assignment);
    // Find the first unassigned variable.
    std::size_t branch_var = 0;
    for (std::size_t var = 1; var <= cnf.variables; ++var) {
        if (assignment[var] == 0) {
            branch_var = var;
            break;
        }
    }
    if (branch_var == 0) return satisfies(cnf, assignment);

    for (std::int8_t value : {std::int8_t{1}, std::int8_t{-1}}) {
        Assignment attempt = assignment;
        attempt[branch_var] = value;
        ++stats.decisions;
        if (dpll_recurse(cnf, attempt, stats)) {
            assignment = std::move(attempt);
            return true;
        }
    }
    return false;
}

} // namespace

SatResult dpll(const Cnf& cnf, const std::vector<Literal>& assumptions) {
    SatResult result;
    Assignment assignment(cnf.variables + 1, 0);
    for (Literal lit : assumptions) {
        const auto var = static_cast<std::size_t>(std::abs(lit));
        SNOC_EXPECT(var >= 1 && var <= cnf.variables);
        const std::int8_t value = lit > 0 ? 1 : -1;
        if (assignment[var] != 0 && assignment[var] != value) return result; // UNSAT
        assignment[var] = value;
    }
    if (dpll_recurse(cnf, assignment, result)) {
        result.satisfiable = true;
        // Complete the model (free variables default to false).
        for (std::size_t var = 1; var <= cnf.variables; ++var)
            if (assignment[var] == 0) assignment[var] = -1;
        result.model = std::move(assignment);
    }
    return result;
}

bool brute_force_satisfiable(const Cnf& cnf) {
    SNOC_EXPECT(cnf.variables <= 24);
    const std::uint32_t combos = 1u << cnf.variables;
    Assignment assignment(cnf.variables + 1, 0);
    for (std::uint32_t bits = 0; bits < combos; ++bits) {
        for (std::size_t var = 1; var <= cnf.variables; ++var)
            assignment[var] = (bits >> (var - 1)) & 1u ? 1 : -1;
        if (satisfies(cnf, assignment)) return true;
    }
    return false;
}

Cnf random_ksat(std::uint32_t variables, std::size_t clauses, std::size_t k,
                std::uint64_t seed) {
    SNOC_EXPECT(variables >= k && k >= 1);
    Cnf cnf;
    cnf.variables = variables;
    RngStream rng(splitmix64(seed));
    for (std::size_t c = 0; c < clauses; ++c) {
        Clause clause;
        std::vector<std::uint32_t> vars;
        while (vars.size() < k) {
            const auto v = static_cast<std::uint32_t>(1 + rng.below(variables));
            if (std::find(vars.begin(), vars.end(), v) == vars.end()) vars.push_back(v);
        }
        for (auto v : vars)
            clause.push_back(rng.bernoulli(0.5) ? static_cast<Literal>(v)
                                                : -static_cast<Literal>(v));
        cnf.clauses.push_back(std::move(clause));
    }
    return cnf;
}

Cnf pigeonhole(std::uint32_t holes) {
    SNOC_EXPECT(holes >= 1);
    const std::uint32_t pigeons = holes + 1;
    // Variable p*holes + h + 1 <=> pigeon p sits in hole h.
    auto var = [holes](std::uint32_t p, std::uint32_t h) {
        return static_cast<Literal>(p * holes + h + 1);
    };
    Cnf cnf;
    cnf.variables = pigeons * holes;
    // Every pigeon sits somewhere.
    for (std::uint32_t p = 0; p < pigeons; ++p) {
        Clause clause;
        for (std::uint32_t h = 0; h < holes; ++h) clause.push_back(var(p, h));
        cnf.clauses.push_back(std::move(clause));
    }
    // No two pigeons share a hole.
    for (std::uint32_t h = 0; h < holes; ++h)
        for (std::uint32_t p1 = 0; p1 < pigeons; ++p1)
            for (std::uint32_t p2 = p1 + 1; p2 < pigeons; ++p2)
                cnf.clauses.push_back({-var(p1, h), -var(p2, h)});
    return cnf;
}

Cnf parse_dimacs(std::istream& in) {
    Cnf cnf;
    bool have_header = false;
    std::size_t expected_clauses = 0;
    std::string token;
    Clause current;
    while (in >> token) {
        if (token == "c") {
            std::string rest;
            std::getline(in, rest); // skip comment line
            continue;
        }
        if (token == "p") {
            std::string kind;
            in >> kind;
            SNOC_EXPECT(kind == "cnf");
            SNOC_EXPECT(!have_header);
            long vars = 0;
            long clauses = 0;
            in >> vars >> clauses;
            SNOC_EXPECT(!in.fail());
            SNOC_EXPECT(vars >= 0 && clauses >= 0);
            cnf.variables = static_cast<std::uint32_t>(vars);
            expected_clauses = static_cast<std::size_t>(clauses);
            have_header = true;
            continue;
        }
        SNOC_EXPECT(have_header);
        long lit = 0;
        try {
            std::size_t pos = 0;
            lit = std::stol(token, &pos);
            SNOC_EXPECT(pos == token.size());
        } catch (const std::exception&) {
            SNOC_EXPECT(false && "malformed DIMACS literal");
        }
        if (lit == 0) {
            cnf.clauses.push_back(std::move(current));
            current.clear();
        } else {
            const auto var = static_cast<std::uint32_t>(std::labs(lit));
            SNOC_EXPECT(var >= 1 && var <= cnf.variables);
            current.push_back(static_cast<Literal>(lit));
        }
    }
    SNOC_EXPECT(have_header);
    SNOC_EXPECT(current.empty()); // every clause 0-terminated
    SNOC_EXPECT(cnf.clauses.size() == expected_clauses);
    return cnf;
}

Cnf parse_dimacs(const std::string& text) {
    std::istringstream in(text);
    return parse_dimacs(in);
}

std::string to_dimacs(const Cnf& cnf) {
    std::ostringstream os;
    os << "c generated by snoc apps/sat\n";
    os << "p cnf " << cnf.variables << ' ' << cnf.clauses.size() << '\n';
    for (const Clause& clause : cnf.clauses) {
        for (Literal lit : clause) os << lit << ' ';
        os << "0\n";
    }
    return os.str();
}

// ---------------------------------------------------------------------------

namespace {

std::vector<Literal> cube_assumptions(std::uint32_t cube, std::uint32_t split_vars,
                                      std::uint32_t variables) {
    std::vector<Literal> assumptions;
    for (std::uint32_t v = 0; v < split_vars && v < variables; ++v) {
        const auto lit = static_cast<Literal>(v + 1);
        assumptions.push_back((cube >> v) & 1u ? lit : -lit);
    }
    return assumptions;
}

const std::vector<TileId> kSatSlaveTiles = {6, 7, 8, 11, 13, 16, 17, 18};

} // namespace

SatMasterIp::SatMasterIp(Cnf cnf, std::uint32_t split_vars)
    : cnf_(std::move(cnf)),
      split_vars_(split_vars),
      cubes_(std::size_t{1} << split_vars),
      answered_(cubes_, false) {
    SNOC_EXPECT(split_vars >= 1 && split_vars <= 8);
}

void SatMasterIp::on_start(TileContext& ctx) {
    // One work rumor per cube; slaves filter by cube id (the formula is
    // compiled into each slave at deployment, so work messages stay small).
    for (std::uint32_t cube = 0; cube < cubes_; ++cube) {
        PayloadWriter w;
        w.put<std::uint32_t>(cube);
        w.put<std::uint32_t>(split_vars_);
        ctx.send(kBroadcast, kSatWorkTag, w.take());
    }
}

void SatMasterIp::on_message(const Message& message, TileContext& ctx) {
    if (message.tag != kSatResultTag || done_) return;
    PayloadReader r(message.payload);
    const auto cube = r.get<std::uint32_t>();
    const auto sat = r.get<std::uint8_t>();
    if (cube >= cubes_ || answered_[cube]) return;
    answered_[cube] = true;
    if (sat != 0) {
        model_.assign(cnf_.variables + 1, 0);
        for (std::size_t var = 1; var <= cnf_.variables; ++var)
            model_[var] = r.get<std::int8_t>();
        SNOC_ENSURE(satisfies(cnf_, model_)); // slaves must not lie
        satisfiable_ = true;
        done_ = true;
        completion_round_ = ctx.round();
        return;
    }
    if (++unsat_count_ == cubes_) {
        satisfiable_ = false;
        done_ = true;
        completion_round_ = ctx.round();
    }
}

bool SatMasterIp::satisfiable() const {
    SNOC_EXPECT(done_);
    return satisfiable_;
}

const Assignment& SatMasterIp::model() const {
    SNOC_EXPECT(done_ && satisfiable_);
    return model_;
}

SatSlaveIp::SatSlaveIp(Cnf cnf, std::uint32_t cube, TileId master_tile)
    : cnf_(std::move(cnf)), cube_(cube), master_(master_tile) {}

void SatSlaveIp::on_message(const Message& message, TileContext& ctx) {
    if (message.tag != kSatWorkTag || answered_) return;
    PayloadReader r(message.payload);
    const auto cube = r.get<std::uint32_t>();
    if (cube != cube_) return;
    const auto split_vars = r.get<std::uint32_t>();
    const auto result =
        dpll(cnf_, cube_assumptions(cube_, split_vars, cnf_.variables));

    PayloadWriter w;
    w.put<std::uint32_t>(cube_);
    w.put<std::uint8_t>(result.satisfiable ? 1 : 0);
    if (result.satisfiable)
        for (std::size_t var = 1; var <= cnf_.variables; ++var)
            w.put<std::int8_t>(result.model[var]);
    ctx.send_with_id(MessageId{TileContext::replica_origin(0x200u | cube_), 0},
                     master_, kSatResultTag, w.take());
    answered_ = true;
}

SatMasterIp& deploy_sat(GossipNetwork& net, Cnf cnf, const SatDeployment& d) {
    SNOC_EXPECT(net.topology().node_count() >= 25);
    const std::size_t cubes = std::size_t{1} << d.split_vars;
    SNOC_EXPECT(cubes <= kSatSlaveTiles.size());
    auto master = std::make_unique<SatMasterIp>(cnf, d.split_vars);
    SatMasterIp& ref = *master;
    net.attach(d.master_tile, std::move(master));
    for (std::uint32_t cube = 0; cube < cubes; ++cube)
        net.attach(kSatSlaveTiles[cube],
                   std::make_unique<SatSlaveIp>(cnf, cube, d.master_tile));
    return ref;
}

} // namespace snoc::apps
