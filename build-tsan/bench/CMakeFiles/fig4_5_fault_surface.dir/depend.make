# Empty dependencies file for fig4_5_fault_surface.
# This may be replaced when dependencies are built.
