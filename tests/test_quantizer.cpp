#include "apps/quantizer.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "common/rng.hpp"

namespace snoc::apps {
namespace {

TEST(CodedBits, ZeroCostsOneBit) {
    EXPECT_EQ(coded_bits_of(0), 1u);
}

TEST(CodedBits, CostIsTwoLenPlusOne) {
    EXPECT_EQ(coded_bits_of(1), 3u);    // len 1
    EXPECT_EQ(coded_bits_of(-1), 3u);
    EXPECT_EQ(coded_bits_of(2), 5u);    // len 2
    EXPECT_EQ(coded_bits_of(3), 5u);
    EXPECT_EQ(coded_bits_of(4), 7u);    // len 3
    EXPECT_EQ(coded_bits_of(255), 17u); // len 8
    EXPECT_EQ(coded_bits_of(256), 19u); // len 9
}

TEST(CodedBits, VectorSums) {
    EXPECT_EQ(coded_bits_of(std::vector<std::int32_t>{0, 1, 2}), 1u + 3u + 5u);
    EXPECT_EQ(coded_bits_of(std::vector<std::int32_t>{}), 0u);
}

PsychoAnalysis flat_psycho(std::size_t bands, double threshold = 1e-6) {
    PsychoAnalysis a;
    a.band_energy.assign(bands, 1.0);
    a.band_threshold.assign(bands, threshold);
    a.smr_db.assign(bands, 60.0);
    return a;
}

std::vector<double> random_lines(std::size_t n, std::uint64_t seed, double scale) {
    snoc::RngStream rng(seed);
    std::vector<double> v(n);
    for (auto& x : v) x = scale * (2.0 * rng.uniform() - 1.0);
    return v;
}

TEST(Quantizer, FitsBudget) {
    const std::size_t n = 64;
    IterativeQuantizer q(band_of_lines(n, 8), 8);
    const auto lines = random_lines(n, 1, 10.0);
    for (std::size_t budget : {100u, 300u, 1000u}) {
        const auto frame = q.quantize(lines, flat_psycho(8), budget, 0);
        EXPECT_LE(frame.coded_bits, budget) << "budget " << budget;
        EXPECT_EQ(frame.values.size(), n);
        EXPECT_EQ(coded_bits_of(frame.values), frame.coded_bits);
    }
}

TEST(Quantizer, MoreBitsLessNoise) {
    const std::size_t n = 64;
    IterativeQuantizer q(band_of_lines(n, 8), 8);
    const auto lines = random_lines(n, 2, 5.0);

    auto error_at = [&](std::size_t budget) {
        const auto frame = q.quantize(lines, flat_psycho(8), budget, 0);
        const auto rebuilt = dequantize(frame);
        double err = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            err += (rebuilt[i] - lines[i]) * (rebuilt[i] - lines[i]);
        return err;
    };
    const double coarse = error_at(150);
    const double fine = error_at(1500);
    EXPECT_LT(fine, coarse);
}

TEST(Quantizer, GenerousBudgetGivesTinyError) {
    const std::size_t n = 32;
    IterativeQuantizer q(band_of_lines(n, 8), 8);
    const auto lines = random_lines(n, 3, 1.0);
    const auto frame = q.quantize(lines, flat_psycho(8, 1e-8), 100000, 0);
    const auto rebuilt = dequantize(frame);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(rebuilt[i], lines[i], 1e-3) << i;
}

TEST(Quantizer, HighThresholdMeansCoarserCheaperCode) {
    const std::size_t n = 64;
    IterativeQuantizer q(band_of_lines(n, 8), 8);
    const auto lines = random_lines(n, 4, 1.0);
    const auto precise = q.quantize(lines, flat_psycho(8, 1e-9), 100000, 0);
    const auto masked = q.quantize(lines, flat_psycho(8, 1e-1), 100000, 0);
    EXPECT_LT(masked.coded_bits, precise.coded_bits);
}

TEST(Quantizer, SilenceCodesMinimally) {
    const std::size_t n = 16;
    IterativeQuantizer q(band_of_lines(n, 4), 4);
    const auto frame =
        q.quantize(std::vector<double>(n, 0.0), flat_psycho(4), 1000, 7);
    EXPECT_EQ(frame.coded_bits, n); // one bit per zero line
    EXPECT_EQ(frame.frame_index, 7u);
    for (auto v : frame.values) EXPECT_EQ(v, 0);
}

TEST(Quantizer, RejectsMismatchedLineCount) {
    IterativeQuantizer q(band_of_lines(16, 4), 4);
    EXPECT_THROW(q.quantize(std::vector<double>(8, 0.0), flat_psycho(4), 100, 0),
                 snoc::ContractViolation);
}

TEST(Quantizer, RejectsMismatchedBands) {
    IterativeQuantizer q(band_of_lines(16, 4), 4);
    EXPECT_THROW(q.quantize(std::vector<double>(16, 0.0), flat_psycho(8), 100, 0),
                 snoc::ContractViolation);
}

TEST(BitReservoir, BanksSurplus) {
    BitReservoir r(1000);
    EXPECT_EQ(r.level(), 0u);
    r.settle(500, 300); // banks 200
    EXPECT_EQ(r.level(), 200u);
    EXPECT_EQ(r.available(500), 700u);
}

TEST(BitReservoir, BorrowDrainsBank) {
    BitReservoir r(1000);
    r.settle(500, 100); // banks 400
    r.settle(500, 800); // borrows 300
    EXPECT_EQ(r.level(), 100u);
}

TEST(BitReservoir, CapacityCapsBanking) {
    BitReservoir r(250);
    r.settle(500, 0);
    EXPECT_EQ(r.level(), 250u);
    r.settle(500, 0);
    EXPECT_EQ(r.level(), 250u);
}

TEST(BitReservoir, OverdraftIsAContractViolation) {
    BitReservoir r(100);
    EXPECT_THROW(r.settle(500, 700), snoc::ContractViolation);
}

TEST(BitReservoir, SmoothsVariableFrames) {
    // Alternating cheap/expensive frames stay within budget+bank.
    BitReservoir r(600);
    std::size_t worst_over = 0;
    for (int f = 0; f < 20; ++f) {
        const std::size_t budget = 500;
        const std::size_t want = (f % 2 == 0) ? 200u : 750u;
        const std::size_t allowed = r.available(budget);
        const std::size_t used = std::min(want, allowed);
        if (used > budget) worst_over = std::max(worst_over, used - budget);
        r.settle(budget, used);
    }
    EXPECT_GE(worst_over, 200u); // the reservoir actually funded overruns
}

// Round-trip property: dequantize(quantize(x)) is within half a step.
class QuantizerScaleSweep : public ::testing::TestWithParam<double> {};

TEST_P(QuantizerScaleSweep, ReconstructionBoundedByStep) {
    const std::size_t n = 64;
    const double scale = GetParam();
    IterativeQuantizer q(band_of_lines(n, 8), 8);
    const auto lines = random_lines(n, 77, scale);
    const double threshold = 1e-6;
    const auto frame = q.quantize(lines, flat_psycho(8, threshold), 1u << 20, 0);
    const auto rebuilt = dequantize(frame);
    const double step = frame.global_gain * std::sqrt(threshold);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_LE(std::abs(rebuilt[i] - lines[i]), step * 0.5 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Scales, QuantizerScaleSweep,
                         ::testing::Values(0.01, 0.1, 1.0, 10.0, 1000.0));

} // namespace
} // namespace snoc::apps
