// The telemetry layer's test suite (ctest label: telemetry).
//
// Three layers of guarantees:
//   * golden output — the exporters are pure functions of a recording, so
//     a hand-built event sequence must serialise to exactly these bytes
//     (JSONL, Chrome trace, heatmap/link CSV, manifest);
//   * determinism — two identically seeded engine runs must export
//     byte-identical artifacts, and a JSONL dump must load back into the
//     exact event sequence that produced it;
//   * parity — the query engine's counters over a dump must equal the
//     run's own NetworkMetrics, which is what makes `snoc_trace summary`
//     trustworthy as a post-mortem view of a run.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/backends.hpp"
#include "sim/scenario.hpp"
#include "telemetry/export.hpp"
#include "telemetry/manifest.hpp"
#include "telemetry/prof.hpp"
#include "telemetry/query.hpp"
#include "telemetry/telemetry.hpp"

namespace snoc {
namespace {

TrafficTrace corner_trace() {
    TrafficTrace trace;
    TrafficPhase phase;
    phase.messages.push_back({0, 24, 256});
    phase.messages.push_back({4, 20, 256});
    phase.messages.push_back({20, 4, 256});
    phase.messages.push_back({24, 0, 256});
    trace.phases.push_back(phase);
    return trace;
}

/// A tiny fixed recording: one message created at tile 0, hopped to tile
/// 1, delivered there; a second message that dies to the TTL.
Telemetry fixed_recording() {
    Telemetry t;
    t.record({0, TraceEventKind::MessageCreated, 0, kNoTile, {0, 0}});
    t.record({0, TraceEventKind::Transmitted, 0, 1, {0, 0}});
    t.record({1, TraceEventKind::Accepted, 1, kNoTile, {0, 0}});
    t.record({1, TraceEventKind::Delivered, 1, kNoTile, {0, 0}});
    t.record({1, TraceEventKind::MessageCreated, 3, kNoTile, {3, 7}});
    t.record({2, TraceEventKind::TtlExpired, 3, kNoTile, {3, 7}});
    return t;
}

// --- X-macro table ------------------------------------------------------

TEST(TraceKinds, TableAndStringsAgree) {
    EXPECT_EQ(kTraceEventKinds, 12u);
    for (std::size_t k = 0; k < kTraceEventKinds; ++k) {
        const auto kind = static_cast<TraceEventKind>(k);
        EXPECT_STREQ(to_string(kind), kTraceEventKindNames[k]);
        EXPECT_EQ(trace_kind_from_string(kTraceEventKindNames[k]), kind);
    }
    EXPECT_FALSE(trace_kind_from_string("not-a-kind").has_value());
}

// --- Golden output ------------------------------------------------------

TEST(TelemetryGolden, JsonlBytes) {
    std::ostringstream os;
    write_jsonl(fixed_recording(), os);
    EXPECT_EQ(os.str(),
              "{\"round\":0,\"kind\":\"created\",\"tile\":0,\"msg\":\"0:0\"}\n"
              "{\"round\":0,\"kind\":\"transmitted\",\"tile\":0,\"peer\":1,"
              "\"msg\":\"0:0\"}\n"
              "{\"round\":1,\"kind\":\"accepted\",\"tile\":1,\"msg\":\"0:0\"}\n"
              "{\"round\":1,\"kind\":\"delivered\",\"tile\":1,\"msg\":\"0:0\"}\n"
              "{\"round\":1,\"kind\":\"created\",\"tile\":3,\"msg\":\"3:7\"}\n"
              "{\"round\":2,\"kind\":\"ttl-expired\",\"tile\":3,\"msg\":\"3:7\"}\n");
}

TEST(TelemetryGolden, HeatmapAndLinkCsv) {
    std::ostringstream heat;
    write_heatmap_csv(fixed_recording(), heat, 2);
    EXPECT_EQ(heat.str(),
              "tile,x,y,created,transmitted,accepted,delivered,crc-drop,"
              "fec-drop,overflow-drop,duplicate,ttl-expired,skew-deferral,"
              "crash-drop,buffer-evicted\n"
              "0,0,0,1,1,0,0,0,0,0,0,0,0,0,0\n"
              "1,1,0,0,0,1,1,0,0,0,0,0,0,0,0\n"
              "2,0,1,0,0,0,0,0,0,0,0,0,0,0,0\n"
              "3,1,1,1,0,0,0,0,0,0,0,1,0,0,0\n");
    std::ostringstream links;
    write_link_csv(fixed_recording(), links);
    EXPECT_EQ(links.str(), "from,to,transmissions\n0,1,1\n");
}

TEST(TelemetryGolden, ChromeTraceShape) {
    std::ostringstream os;
    write_chrome_trace(fixed_recording(), os);
    const std::string out = os.str();
    // Valid trace_event envelope with per-tile tracks and async message
    // spans; the byte-exactness across identical runs is covered by
    // TelemetryDeterminism.SeededRunsExportIdenticalArtifacts.
    EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(out.find("\"process_name\""), std::string::npos);
    EXPECT_NE(out.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"b\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"e\""), std::string::npos);
    EXPECT_NE(out.find("\"cat\":\"msg\""), std::string::npos);
    // Message 0:0 terminates via Delivered, 3:7 via TtlExpired.
    EXPECT_NE(out.find("\"outcome\":\"delivered\""), std::string::npos);
    EXPECT_NE(out.find("\"outcome\":\"ttl-expired\""), std::string::npos);
}

TEST(TelemetryGolden, ManifestContents) {
    RunManifest manifest;
    manifest.program = "test_prog";
    manifest.experiment = "cell p=0.5";
    manifest.backend = "gossip";
    manifest.base_seed = 42;
    manifest.repeats = 3;
    manifest.jobs = 2;
    manifest.config.emplace_back("p", "0.5");
    manifest.config.emplace_back("ttl", "30");
    manifest.artifacts.push_back("out/run.jsonl");
    const std::string json = manifest_json(manifest);
    EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"git_sha\": \""), std::string::npos);
    EXPECT_NE(json.find("\"check_level\": "), std::string::npos);
    EXPECT_NE(json.find("\"program\": \"test_prog\""), std::string::npos);
    EXPECT_NE(json.find("\"backend\": \"gossip\""), std::string::npos);
    EXPECT_NE(json.find("\"base_seed\": 42"), std::string::npos);
    EXPECT_NE(json.find("\"p\": \"0.5\""), std::string::npos);
    EXPECT_NE(json.find("\"ttl\": \"30\""), std::string::npos);
    EXPECT_NE(json.find("\"out/run.jsonl\""), std::string::npos);
    EXPECT_STRNE(build_git_sha(), "");
    EXPECT_EQ(manifest_path_for("out/run.jsonl"), "out/run.manifest.json");
    EXPECT_EQ(manifest_path_for("dir.v2/run"), "dir.v2/run.manifest.json");
}

// --- Determinism / round-trip ------------------------------------------

std::string jsonl_of_seeded_run(std::uint64_t seed, RunReport* report = nullptr) {
    Telemetry telemetry;
    auto backend = make_interconnect(BackendKind::Gossip, FaultScenario::none(),
                                     seed);
    backend->set_trace_sink(&telemetry);
    const RunReport r = backend->run(corner_trace(), 3000);
    if (report) *report = r;
    std::ostringstream os;
    write_jsonl(telemetry, os);
    return os.str();
}

TEST(TelemetryDeterminism, SeededRunsExportIdenticalArtifacts) {
    Telemetry a, b;
    for (Telemetry* t : {&a, &b}) {
        auto backend =
            make_interconnect(BackendKind::Gossip, FaultScenario::none(), 7);
        backend->set_trace_sink(t);
        ASSERT_TRUE(backend->run(corner_trace(), 3000).completed);
    }
    const auto bytes_of = [](const Telemetry& t, auto writer) {
        std::ostringstream os;
        writer(t, os);
        return os.str();
    };
    const auto jsonl = [](const Telemetry& t, std::ostream& os) {
        write_jsonl(t, os);
    };
    const auto chrome = [](const Telemetry& t, std::ostream& os) {
        write_chrome_trace(t, os);
    };
    const auto heat = [](const Telemetry& t, std::ostream& os) {
        write_heatmap_csv(t, os, 5);
    };
    EXPECT_GT(a.total(), 0u);
    EXPECT_EQ(bytes_of(a, jsonl), bytes_of(b, jsonl));
    EXPECT_EQ(bytes_of(a, chrome), bytes_of(b, chrome));
    EXPECT_EQ(bytes_of(a, heat), bytes_of(b, heat));
}

TEST(TelemetryDeterminism, JsonlRoundTripsExactly) {
    Telemetry telemetry;
    auto backend =
        make_interconnect(BackendKind::Gossip, FaultScenario::none(), 11);
    backend->set_trace_sink(&telemetry);
    ASSERT_TRUE(backend->run(corner_trace(), 3000).completed);

    std::ostringstream os;
    write_jsonl(telemetry, os);
    std::istringstream is(os.str());
    const auto loaded = tracequery::load_jsonl(is);
    EXPECT_EQ(loaded.skipped, 0u);
    ASSERT_EQ(loaded.events.size(), telemetry.events().size());
    for (std::size_t i = 0; i < loaded.events.size(); ++i) {
        const TraceEvent& in = telemetry.events()[i];
        const TraceEvent& out = loaded.events[i];
        EXPECT_EQ(out.round, in.round);
        EXPECT_EQ(out.kind, in.kind);
        EXPECT_EQ(out.tile, in.tile);
        EXPECT_EQ(out.peer, in.peer);
        EXPECT_EQ(out.message.origin, in.message.origin);
        EXPECT_EQ(out.message.sequence, in.message.sequence);
    }
}

// The metrics-summary exporter names every scalar NetworkMetrics counter
// (snoc_lint's registry checker enforces the lock-step the other way, by
// scanning the source); golden bytes keep the artifact deterministic.
TEST(TelemetryGolden, MetricsJsonNamesEveryCounter) {
    NetworkMetrics m;
    m.rounds = 3;
    m.packets_sent = 10;
    m.bits_sent = 2560;
    m.messages_created = 4;
    m.deliveries = 4;
    std::ostringstream os;
    write_metrics_json(m, os);
    const std::string out = os.str();
    for (const char* counter :
         {"rounds", "packets_sent", "bits_sent", "messages_created",
          "deliveries", "duplicates_ignored", "crc_drops", "upsets_undetected",
          "overflow_drops", "ttl_expired", "crash_drops",
          "port_overflow_drops", "packets_accepted", "skew_deferrals",
          "fec_corrected", "fec_uncorrectable", "link_hotspot_factor",
          "average_packet_bits"}) {
        EXPECT_NE(out.find('"' + std::string(counter) + "\":"),
                  std::string::npos)
            << "counter missing from metrics JSON: " << counter;
    }
    EXPECT_EQ(out.substr(0, 2), "{\n");
    EXPECT_EQ(out.substr(out.size() - 3), "\n}\n");
    EXPECT_NE(out.find("\"packets_sent\": 10"), std::string::npos);
    EXPECT_NE(out.find("\"average_packet_bits\": 256.000000"),
              std::string::npos);

    // Byte-determinism: a real seeded run exports identical bytes twice.
    std::string dumps[2];
    for (std::string& dump : dumps) {
        auto backend =
            make_interconnect(BackendKind::Gossip, FaultScenario::none(), 7);
        const RunReport report = backend->run(corner_trace(), 3000);
        ASSERT_TRUE(report.completed);
        std::ostringstream run_os;
        write_metrics_json(report.metrics, run_os);
        dump = run_os.str();
    }
    EXPECT_EQ(dumps[0], dumps[1]);
}

// --- Query/metrics parity ----------------------------------------------

TEST(TraceQuery, SummaryCountersMatchNetworkMetrics) {
    RunReport report;
    const std::string dump = jsonl_of_seeded_run(3, &report);
    std::istringstream is(dump);
    const auto loaded = tracequery::load_jsonl(is);
    ASSERT_EQ(loaded.skipped, 0u);

    Telemetry counts;
    for (const TraceEvent& e : loaded.events) counts.record(e);
    const NetworkMetrics& m = report.metrics;
    EXPECT_EQ(counts.count(TraceEventKind::MessageCreated), m.messages_created);
    EXPECT_EQ(counts.count(TraceEventKind::Transmitted), m.packets_sent);
    EXPECT_EQ(counts.count(TraceEventKind::Delivered), m.deliveries);
    EXPECT_EQ(counts.count(TraceEventKind::Accepted), m.packets_accepted);
    EXPECT_EQ(counts.count(TraceEventKind::DuplicateIgnored),
              m.duplicates_ignored);
    EXPECT_EQ(counts.count(TraceEventKind::CrcDrop), m.crc_drops);
    EXPECT_EQ(counts.count(TraceEventKind::FecUncorrectable),
              m.fec_uncorrectable);
    EXPECT_EQ(counts.count(TraceEventKind::TtlExpired), m.ttl_expired);
    EXPECT_EQ(counts.count(TraceEventKind::CrashDrop), m.crash_drops);
    EXPECT_EQ(counts.count(TraceEventKind::SkewDeferral), m.skew_deferrals);
    EXPECT_EQ(counts.count(TraceEventKind::OverflowDrop),
              m.port_overflow_drops);
    EXPECT_EQ(counts.count(TraceEventKind::BufferEvicted),
              m.overflow_drops - m.port_overflow_drops);

    // The summary text carries the same headline numbers.
    const std::string text = tracequery::summary(loaded.events);
    EXPECT_NE(text.find("created " + std::to_string(m.messages_created)),
              std::string::npos);
    EXPECT_NE(text.find("transmitted " + std::to_string(m.packets_sent)),
              std::string::npos);
    EXPECT_NE(text.find("delivered " + std::to_string(m.deliveries)),
              std::string::npos);
}

TEST(TraceQuery, LifelineAndTopK) {
    const std::string dump = jsonl_of_seeded_run(5);
    std::istringstream is(dump);
    const auto loaded = tracequery::load_jsonl(is);
    const auto id = tracequery::parse_message_id("0:0");
    ASSERT_TRUE(id.has_value());
    const std::string life = tracequery::lifeline(loaded.events, *id);
    EXPECT_NE(life.find("created"), std::string::npos);
    EXPECT_NE(life.find("delivered"), std::string::npos);
    EXPECT_NE(tracequery::top_links(loaded.events, 3).find("transmissions"),
              std::string::npos);
    EXPECT_FALSE(tracequery::parse_message_id("garbage").has_value());
}

// --- ScenarioRunner integration ----------------------------------------

TEST(ScenarioTelemetry, ExportsPerTrialArtifactsAndManifest) {
    const std::string dir = ::testing::TempDir();
    ExperimentSpec spec;
    spec.name = "telemetry itest";
    spec.axes = {{"p", {1.0, 0.5}}};
    spec.repeats = 1;
    spec.base_seed = 9;
    spec.jobs = 1;
    spec.telemetry.trace_jsonl_out = dir + "snoc_itest.jsonl";
    spec.telemetry.manifest = true;
    spec.backend = [](const SweepPoint& pt, std::uint64_t seed) {
        GossipSpec gs;
        gs.config.forward_p = pt.value("p");
        return std::make_unique<GossipAdapter>(std::move(gs),
                                               FaultScenario::none(), seed);
    };
    spec.trace = [](const SweepPoint&) { return corner_trace(); };
    const auto cells = ScenarioRunner(std::move(spec)).run();
    ASSERT_EQ(cells.size(), 2u);

    for (std::size_t c = 0; c < 2; ++c) {
        // Two trials in the sweep, so names carry the _c<cell>_r<repeat>
        // suffix and each artifact has a manifest next to it.
        const std::string base = dir + "snoc_itest_c" + std::to_string(c) + "_r0";
        const auto loaded = tracequery::load_jsonl_file(base + ".jsonl");
        EXPECT_GT(loaded.events.size(), 0u) << base;

        std::ifstream manifest(base + ".manifest.json");
        ASSERT_TRUE(manifest.good()) << base;
        std::stringstream buffer;
        buffer << manifest.rdbuf();
        EXPECT_NE(buffer.str().find("\"backend\": \"gossip\""),
                  std::string::npos);
        EXPECT_NE(buffer.str().find("\"p\": "), std::string::npos);

        // trace_counts mirror the recording that was exported.
        const RunReport& r = cells[c].reports.front();
        ASSERT_EQ(r.trace_counts.size(), kTraceEventKinds);
        Telemetry counts;
        for (const TraceEvent& e : loaded.events) counts.record(e);
        for (std::size_t k = 0; k < kTraceEventKinds; ++k)
            EXPECT_EQ(r.trace_counts[k], counts.totals()[k]) << "kind " << k;

        std::remove((base + ".jsonl").c_str());
        std::remove((base + ".manifest.json").c_str());
    }

    // Flooding (p=1) moves at least as many packets as p=0.5.
    const auto tx = [](const CellResult& cell) {
        return cell.reports.front()
            .trace_counts[static_cast<std::size_t>(TraceEventKind::Transmitted)];
    };
    EXPECT_GE(tx(cells[0]), tx(cells[1]));
}

TEST(ScenarioTelemetry, NoSinkLeavesTraceCountsEmpty) {
    ExperimentSpec spec;
    spec.name = "telemetry off";
    spec.base_seed = 1;
    spec.jobs = 1;
    spec.backend = [](const SweepPoint&, std::uint64_t seed) {
        return std::make_unique<GossipAdapter>(GossipSpec{},
                                               FaultScenario::none(), seed);
    };
    spec.trace = [](const SweepPoint&) { return corner_trace(); };
    const auto cells = ScenarioRunner(std::move(spec)).run();
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_TRUE(cells[0].reports.front().trace_counts.empty());
}

// --- Profiling scopes ---------------------------------------------------

TEST(Prof, ScopesRecordOnlyWhenEnabled) {
    prof::reset();
    { SNOC_PROF("test/disabled"); }
    EXPECT_EQ(prof::snapshot().count("test/disabled"), 0u);

    prof::set_enabled(true);
    { SNOC_PROF("test/enabled"); }
    { SNOC_PROF("test/enabled"); }
    prof::set_enabled(false);

    const auto stats = prof::snapshot();
    ASSERT_EQ(stats.count("test/enabled"), 1u);
    EXPECT_EQ(stats.at("test/enabled").calls, 2u);
    EXPECT_GE(stats.at("test/enabled").seconds, 0.0);
    EXPECT_NE(prof::report().find("test/enabled"), std::string::npos);
    prof::reset();
}

} // namespace
} // namespace snoc
