file(REMOVE_RECURSE
  "libsnoc_energy.a"
)
