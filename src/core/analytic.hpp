// Sec. 3.1 — the mathematics of rumor spreading.
//
//  * The deterministic approximation of the number of informed nodes:
//        I(t+1) = n - (n - I(t)) * exp(-I(t)/n),   I(0) = 1        (Eq. 1a)
//  * Pittel's bound on the rounds to inform everyone:
//        S_n = log2(n) + ln(n) + O(1)   as n -> infinity           (Eq. 1b)
//  * A Monte-Carlo of the classic push-gossip on a fully connected
//    network: every informed node passes the rumor to one uniformly random
//    other node per round (Fig. 3-1 reaches 1000 nodes in < 20 rounds).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace snoc::analytic {

/// I(t) for t = 0..rounds (inclusive), from the logistic difference
/// equation above.  I(0) = 1.
std::vector<double> informed_curve(std::size_t n, std::size_t rounds);

/// Smallest t with I(t) >= fraction*n under the deterministic model.
std::size_t rounds_to_reach(std::size_t n, double fraction);

/// Pittel: log2(n) + ln(n) — the O(1) term is dropped.
double pittel_rounds(std::size_t n);

/// One Monte-Carlo run of push gossip on the fully connected graph:
/// returns the number of informed nodes after each round, ending when all
/// n are informed (or max_rounds elapse).
std::vector<std::size_t> simulate_push_gossip(std::size_t n, RngStream& rng,
                                              std::size_t max_rounds = 1000);

} // namespace snoc::analytic
