// Sweep heartbeat streaming: machine-readable progress records a running
// ScenarioRunner appends to a JSONL file, and the loader/renderer
// snoc_top uses to turn that file into a live terminal summary.
//
// The runner reports progress through the narrow ProgressSink interface
// (one update() call per trial/cell/sweep boundary, already serialized by
// the writer's mutex); HeartbeatWriter decides cadence — every Nth trial,
// plus every cell boundary and the final sweep-done record — and stamps
// each emitted record with a sequence number, elapsed wall time, a linear
// ETA, and live MetricsRegistry deltas (rounds simulated since the
// previous heartbeat).
//
// Heartbeats are *observability*, not results: the wall-clock readings
// here are the reason this file sits on the determinism allowlist, and
// nothing a heartbeat carries may ever feed back into a simulation.
// Result artifacts (tables, manifests, traces) stay byte-deterministic
// with or without a heartbeat stream attached.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/annotations.hpp"

namespace snoc {

/// One progress callback from the runner.  `cell_seconds` >= 0 only when
/// this update closes a cell; `sweep_done` marks the final update.
struct ProgressUpdate {
    std::string experiment;
    std::size_t cells_total{0};
    std::size_t cells_done{0};
    std::size_t trials_total{0};
    std::size_t trials_done{0};
    std::size_t retries{0};
    double cell_seconds{-1.0};
    bool sweep_done{false};
};

/// Anything that wants to watch a sweep make progress.  Calls may come
/// from any worker thread; implementations serialize internally.
class ProgressSink {
public:
    virtual ~ProgressSink() = default;
    virtual void update(const ProgressUpdate& update) = 0;
};

/// One emitted heartbeat, as written to (and parsed back from) the JSONL
/// stream.  Field order here matches the wire order.
struct HeartbeatRecord {
    std::uint64_t seq{0};
    double elapsed_seconds{0.0};
    std::string experiment;
    std::size_t cells_total{0};
    std::size_t cells_done{0};
    std::size_t trials_total{0};
    std::size_t trials_done{0};
    std::size_t retries{0};
    double cell_seconds{-1.0};    ///< wall time of the just-closed cell, if any.
    double eta_seconds{-1.0};     ///< linear extrapolation; -1 when unknowable.
    std::uint64_t rounds_total{0}; ///< engine + event-engine rounds, registry.
    std::uint64_t rounds_delta{0}; ///< since the previous heartbeat.
    std::uint64_t postmortems{0};
    bool done{false};
};

/// Serialise one record as a single JSONL line (trailing newline).
void write_heartbeat(const HeartbeatRecord& record, std::ostream& os);

/// Parse heartbeat lines from a stream; unparseable lines are skipped
/// (the writer may be mid-line when a tail reads the file).
std::vector<HeartbeatRecord> load_heartbeats(std::istream& is);
std::vector<HeartbeatRecord> load_heartbeats_file(const std::string& path);

/// Render the latest state of a heartbeat sequence as a short terminal
/// summary (progress bar, rates, ETA) — the body of `snoc_top`.
void render_top(const std::vector<HeartbeatRecord>& records, std::ostream& os);

/// ProgressSink writing heartbeats to a JSONL file at a configurable
/// cadence: every `every_n` trial completions, plus every cell boundary
/// and the sweep-done record (cadence 0 means boundaries only).  Opens
/// the file in truncate mode and flushes after each record so a tailing
/// snoc_top sees whole lines promptly.  Thread-safe.
class HeartbeatWriter final : public ProgressSink {
public:
    HeartbeatWriter(const std::string& path, std::size_t every_n);
    ~HeartbeatWriter() override;

    void update(const ProgressUpdate& update) override;

    std::uint64_t emitted() const;

private:
    void emit_locked(const ProgressUpdate& update)
        SNOC_REQUIRES(mutex_); // [mutation-point:requires-emit-locked]

    mutable Mutex mutex_; // [mutation-point:annotated-mutex]
    std::ofstream os_ SNOC_GUARDED_BY(mutex_);
    std::size_t every_n_ SNOC_GUARDED_BY(mutex_);
    std::uint64_t seq_ SNOC_GUARDED_BY(mutex_){0};
    std::uint64_t last_rounds_ SNOC_GUARDED_BY(mutex_){0};
    std::chrono::steady_clock::time_point start_ SNOC_GUARDED_BY(mutex_);
};

} // namespace snoc
