// Replays a backend-independent TrafficTrace over the stochastic NoC.
//
// Each phase's source tiles inject their messages as soon as the phase
// opens; the next phase opens when every message of the current phase has
// been delivered.  (The harness owns the global phase view — in the real
// applications the data dependencies create the phases naturally, see
// PiMasterIp / FftRootIp; this driver exists so the *same* traffic can be
// pushed through the gossip NoC, the shared bus and the XY mesh.)
#pragma once

#include <atomic>
#include <memory>

#include "core/engine.hpp"
#include "core/ip_core.hpp"
#include "noc/traffic.hpp"

namespace snoc::apps {

inline constexpr std::uint32_t kTraceTagBase = 0x54520000; // 'TR'<<16

class TraceDriver {
public:
    /// Attach replay IPs for `trace` onto `net` (must not have IPs on the
    /// involved tiles yet).
    TraceDriver(GossipNetwork& net, TrafficTrace trace);

    bool complete() const { return state_->phase >= state_->trace.phases.size(); }
    std::size_t current_phase() const { return state_->phase; }
    std::size_t delivered_messages() const { return state_->total_delivered; }

private:
    // The counters are shared by every replay IP and are atomic so the
    // event engine may deliver to different tiles on parallel shards.
    // The replay stays deterministic at any shard count because the
    // updates commute: each trace message is counted exactly once (per-IP
    // seen_ dedup), and the phase can only advance after every message of
    // the open phase has been counted — so no phase-k delivery can race
    // with the k -> k+1 transition it still gates.
    struct State {
        TrafficTrace trace;
        std::atomic<std::size_t> phase{0};
        std::atomic<std::size_t> delivered_in_phase{0};
        std::atomic<std::size_t> total_delivered{0};
    };

    class TraceIp;

    std::shared_ptr<State> state_;
};

} // namespace snoc::apps
