#include "noc/topology.hpp"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/expect.hpp"

namespace snoc {
namespace {

TEST(Mesh, NodeAndLinkCounts) {
    const auto t = Topology::mesh(4, 4);
    EXPECT_EQ(t.node_count(), 16u);
    // 2 * (w-1)*h + 2 * w*(h-1) directed links.
    EXPECT_EQ(t.link_count(), 2u * 3 * 4 + 2u * 4 * 3);
    EXPECT_TRUE(t.is_grid());
    EXPECT_EQ(t.width(), 4u);
    EXPECT_EQ(t.height(), 4u);
}

TEST(Mesh, CornerEdgeAndInteriorDegrees) {
    const auto t = Topology::mesh(4, 4);
    EXPECT_EQ(t.neighbours(0).size(), 2u);  // corner
    EXPECT_EQ(t.neighbours(1).size(), 3u);  // edge
    EXPECT_EQ(t.neighbours(5).size(), 4u);  // interior
}

TEST(Mesh, NeighboursAreAdjacent) {
    const auto t = Topology::mesh(5, 5);
    for (TileId id = 0; id < t.node_count(); ++id)
        for (TileId nbr : t.neighbours(id)) EXPECT_EQ(t.manhattan(id, nbr), 1u);
}

TEST(Mesh, CoordinateRoundtrip) {
    const auto t = Topology::mesh(5, 3);
    for (std::size_t y = 0; y < 3; ++y)
        for (std::size_t x = 0; x < 5; ++x) {
            const TileId id = t.at(x, y);
            EXPECT_EQ(t.x_of(id), x);
            EXPECT_EQ(t.y_of(id), y);
        }
}

TEST(Mesh, ManhattanDistance) {
    const auto t = Topology::mesh(4, 4);
    // Thesis Fig. 3-3: producer tile 6 (index 5), consumer tile 12 (index 11).
    EXPECT_EQ(t.manhattan(5, 11), 3u);
    EXPECT_EQ(t.manhattan(0, 15), 6u);
    EXPECT_EQ(t.manhattan(7, 7), 0u);
}

TEST(Mesh, OutLinksParallelNeighbours) {
    const auto t = Topology::mesh(4, 4);
    for (TileId id = 0; id < t.node_count(); ++id) {
        const auto& nbrs = t.neighbours(id);
        const auto& links = t.out_links(id);
        ASSERT_EQ(nbrs.size(), links.size());
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
            EXPECT_EQ(t.link(links[i]).from, id);
            EXPECT_EQ(t.link(links[i]).to, nbrs[i]);
        }
    }
}

TEST(FullyConnected, EveryPairLinked) {
    const auto t = Topology::fully_connected(8);
    EXPECT_EQ(t.node_count(), 8u);
    EXPECT_EQ(t.link_count(), 8u * 7);
    EXPECT_FALSE(t.is_grid());
    for (TileId id = 0; id < 8; ++id) {
        EXPECT_EQ(t.neighbours(id).size(), 7u);
        std::set<TileId> nbrs(t.neighbours(id).begin(), t.neighbours(id).end());
        EXPECT_EQ(nbrs.size(), 7u);
        EXPECT_FALSE(nbrs.contains(id));
    }
}

TEST(Torus, UniformDegreeFour) {
    const auto t = Topology::torus(4, 4);
    EXPECT_EQ(t.node_count(), 16u);
    for (TileId id = 0; id < t.node_count(); ++id)
        EXPECT_EQ(t.neighbours(id).size(), 4u);
    EXPECT_EQ(t.link_count(), 64u);
}

TEST(Torus, WrapAroundNeighbours) {
    const auto t = Topology::torus(4, 4);
    const auto& nbrs = t.neighbours(0);
    // (0,0) should see (0,3) and (3,0) via wraparound.
    EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), t.at(0, 3)), nbrs.end());
    EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), t.at(3, 0)), nbrs.end());
}

TEST(FromEdges, BuildsBothDirections) {
    const auto t = Topology::from_edges(3, {{0, 1}, {1, 2}}, "path");
    EXPECT_EQ(t.link_count(), 4u);
    EXPECT_EQ(t.neighbours(1).size(), 2u);
    EXPECT_EQ(t.name(), "path");
    EXPECT_FALSE(t.is_grid());
}

TEST(FromEdges, RejectsSelfLoop) {
    EXPECT_THROW(Topology::from_edges(2, {{0, 0}}), ContractViolation);
}

TEST(GridAccessors, ThrowOnNonGrid) {
    const auto t = Topology::fully_connected(4);
    EXPECT_THROW(t.width(), ContractViolation);
    EXPECT_THROW(t.x_of(0), ContractViolation);
    EXPECT_THROW(t.at(0, 0), ContractViolation);
}

TEST(Connectivity, IntactMeshIsConnected) {
    const auto t = Topology::mesh(4, 4);
    std::vector<bool> no_tiles(t.node_count(), false);
    std::vector<bool> no_links(t.link_count(), false);
    EXPECT_TRUE(t.connected_without(no_tiles, no_links));
}

TEST(Connectivity, CutColumnPartitions) {
    const auto t = Topology::mesh(4, 4);
    std::vector<bool> dead_tiles(t.node_count(), false);
    std::vector<bool> dead_links(t.link_count(), false);
    // Kill column x=1 entirely: x=0 is isolated from x>=2.
    for (std::size_t y = 0; y < 4; ++y) dead_tiles[t.at(1, y)] = true;
    EXPECT_FALSE(t.connected_without(dead_tiles, dead_links));
}

TEST(Connectivity, SingleDeadInteriorTileStaysConnected) {
    const auto t = Topology::mesh(4, 4);
    std::vector<bool> dead_tiles(t.node_count(), false);
    std::vector<bool> dead_links(t.link_count(), false);
    dead_tiles[5] = true;
    EXPECT_TRUE(t.connected_without(dead_tiles, dead_links));
}

TEST(Connectivity, DeadLinksCanPartition) {
    const auto t = Topology::mesh(2, 1); // two tiles, two directed links
    std::vector<bool> dead_tiles(2, false);
    std::vector<bool> dead_links(t.link_count(), true);
    EXPECT_FALSE(t.connected_without(dead_tiles, dead_links));
}

TEST(Connectivity, AllTilesDeadIsTriviallyConnected) {
    const auto t = Topology::mesh(3, 3);
    std::vector<bool> dead_tiles(t.node_count(), true);
    std::vector<bool> dead_links(t.link_count(), false);
    EXPECT_TRUE(t.connected_without(dead_tiles, dead_links));
}

class MeshSizeSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(MeshSizeSweep, LinkCountFormula) {
    const auto [w, h] = GetParam();
    const auto t = Topology::mesh(w, h);
    EXPECT_EQ(t.node_count(), w * h);
    EXPECT_EQ(t.link_count(), 2 * ((w - 1) * h + w * (h - 1)));
    // Total degree equals the number of directed links.
    std::size_t degree_sum = 0;
    for (TileId id = 0; id < t.node_count(); ++id)
        degree_sum += t.neighbours(id).size();
    EXPECT_EQ(degree_sum, t.link_count());
}

INSTANTIATE_TEST_SUITE_P(Sizes, MeshSizeSweep,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                                           std::pair<std::size_t, std::size_t>{2, 2},
                                           std::pair<std::size_t, std::size_t>{4, 4},
                                           std::pair<std::size_t, std::size_t>{5, 5},
                                           std::pair<std::size_t, std::size_t>{8, 3},
                                           std::pair<std::size_t, std::size_t>{16, 16}));

} // namespace
} // namespace snoc
