file(REMOVE_RECURSE
  "CMakeFiles/ablation_fec_vs_crc.dir/ablation_fec_vs_crc.cpp.o"
  "CMakeFiles/ablation_fec_vs_crc.dir/ablation_fec_vs_crc.cpp.o.d"
  "ablation_fec_vs_crc"
  "ablation_fec_vs_crc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fec_vs_crc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
