// The Fig. 3-4 tile algorithm expressed as a Harel statechart — the same
// modelling style as the thesis' Stateflow implementation (Fig. 4-1).
//
// Chart shape (one tile):
//
//   Tile (parallel)
//   ├── RoundLoop (exclusive):  Receive -> GarbageCollect -> Send -> Receive
//   └── PortGates (parallel):   North | East | South | West, each an
//       exclusive {Closed, Open} pair toggled by the Bernoulli(p) draw.
//
// Events drive the phases; the context owns the send buffer and a
// transmit callback.  tests/test_statechart.cpp checks that driving this
// chart produces exactly the same buffer evolution and transmissions as
// the native engine's phase functions.
#pragma once

#include <functional>

#include "common/rng.hpp"
#include "core/send_buffer.hpp"
#include "sim/statechart.hpp"

namespace snoc::sc {

// Events of the tile chart.
inline constexpr EventId kEvRoundStart = 1;  ///< begin a round (receive phase).
inline constexpr EventId kEvMessage = 2;     ///< one received message (arg = slot).
inline constexpr EventId kEvEndReceive = 3;  ///< receive phase over -> GC.
inline constexpr EventId kEvSendMessage = 4; ///< forward one buffered message.
inline constexpr EventId kEvEndRound = 5;    ///< round over -> back to Receive.

class GossipTileChart {
public:
    using TransmitFn = std::function<void(const Message&, Port port)>;

    GossipTileChart(double forward_p, std::size_t buffer_capacity,
                    std::uint64_t seed, TransmitFn transmit);

    /// Run one full gossip round: feed the received messages, age the
    /// buffer, then emit each held message on every open port gate.
    void run_round(const std::vector<Message>& received);

    const SendBuffer& buffer() const { return buffer_; }
    const Statechart& chart() const { return chart_; }
    std::size_t rounds_run() const { return rounds_; }
    std::size_t ttl_expired() const { return ttl_expired_; }

    /// Inject a locally created message (the IP core's output).
    void create(Message message);

private:
    void build();

    double forward_p_;
    SendBuffer buffer_;
    RngStream rng_;
    TransmitFn transmit_;
    Statechart chart_;

    // Chart handles.
    StateId receive_{kNoState}, collect_{kNoState}, send_{kNoState};
    std::array<StateId, kPortCount> gate_open_{};
    std::array<StateId, kPortCount> gate_closed_{};

    // Scratch used while processing events.
    const std::vector<Message>* inbox_{nullptr};
    std::size_t rounds_{0};
    std::size_t ttl_expired_{0};
};

} // namespace snoc::sc
