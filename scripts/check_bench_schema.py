#!/usr/bin/env python3
"""Validate the committed BENCH_*.json performance snapshots.

scripts/bench_snapshot.sh writes them; this checker (stdlib only, run
from ctest as `bench_schema`) keeps them honest: every snapshot must
carry schema_version 1, the provenance block (machine, git_sha,
workload) and the per-snapshot payload the acceptance gates read.  A
snapshot that drifts from the writer — a renamed key, a dropped table —
fails here instead of surfacing as a KeyError deep inside
bench_snapshot.sh months later.

Usage:
    check_bench_schema.py [BENCH_engine.json BENCH_router.json ...]
    check_bench_schema.py --diff OLD.json NEW.json

With no arguments, checks the repo-root snapshots relative to this
script.  --diff compares two engine snapshots' ns_per_round tables and
prints per-cell deltas — warn-only (always exits 0): CI uses it to
surface perf drift in logs without holding PRs hostage to machine noise.
"""

import json
import os
import sys

SCHEMA_VERSION = 1


def fail(path, message):
    print(f"check_bench_schema: {path}: {message}", file=sys.stderr)
    return False


def check_common(path, snap):
    ok = True
    if snap.get("schema_version") != SCHEMA_VERSION:
        ok = fail(path, f"schema_version must be {SCHEMA_VERSION}, "
                        f"got {snap.get('schema_version')!r}")
    machine = snap.get("machine")
    if not isinstance(machine, dict):
        ok = fail(path, "missing machine block")
    else:
        for key in ("uname", "cpu", "cores"):
            if key not in machine:
                ok = fail(path, f"machine.{key} missing")
    for key in ("git_sha", "workload"):
        if not isinstance(snap.get(key), str) or not snap[key]:
            ok = fail(path, f"{key} missing or empty")
    return ok


def check_numeric_table(path, snap, key, subkeys):
    ok = True
    table = snap.get(key)
    if not isinstance(table, dict):
        return fail(path, f"{key} missing")
    for sub in subkeys:
        cells = table.get(sub)
        if not isinstance(cells, dict) or not cells:
            ok = fail(path, f"{key}.{sub} missing or empty")
            continue
        for cell, value in cells.items():
            if not isinstance(value, (int, float)):
                ok = fail(path, f"{key}.{sub}[{cell}] is not a number")
    return ok


def check_engine(path, snap):
    ok = check_common(path, snap)
    ok &= check_numeric_table(path, snap, "ns_per_round",
                              ("lockstep", "event"))
    ok &= check_numeric_table(path, snap, "gossip_round_ns",
                              ("detached", "recorded"))
    overhead = snap.get("flight_recorder_overhead")
    if not isinstance(overhead, dict) or not overhead:
        ok = fail(path, "flight_recorder_overhead missing or empty")
    speedup = snap.get("sparse_speedup_event_over_lockstep")
    if not isinstance(speedup, dict) or not speedup:
        ok = fail(path, "sparse_speedup_event_over_lockstep missing or empty")
    scal = snap.get("scalability")
    if not isinstance(scal, dict):
        ok = fail(path, "scalability missing")
    else:
        for cell in ("lockstep_256x256_broadcast", "event_1000x1000_sparse"):
            row = scal.get(cell)
            if not isinstance(row, dict):
                ok = fail(path, f"scalability.{cell} missing")
                continue
            for key in ("mesh", "rounds", "coverage_pct", "wall_s"):
                if key not in row:
                    ok = fail(path, f"scalability.{cell}.{key} missing")
    return ok


def check_router(path, snap):
    ok = check_common(path, snap)
    rows = snap.get("rows")
    if not isinstance(rows, list) or not rows:
        return fail(path, "rows missing or empty")
    for i, row in enumerate(rows):
        for key in ("backend", "faults"):
            if key not in row:
                ok = fail(path, f"rows[{i}].{key} missing")
    return ok


CHECKERS = {
    "BENCH_engine.json": check_engine,
    "BENCH_router.json": check_router,
}


def check_file(path):
    try:
        with open(path) as f:
            snap = json.load(f)
    except OSError as e:
        return fail(path, f"unreadable: {e}")
    except json.JSONDecodeError as e:
        return fail(path, f"not valid JSON: {e}")
    checker = CHECKERS.get(os.path.basename(path), check_common)
    return checker(path, snap)


def diff_engine(old_path, new_path):
    """Warn-only ns_per_round comparison: prints per-cell drift."""
    with open(old_path) as f:
        old = json.load(f)
    with open(new_path) as f:
        new = json.load(f)
    old_table = old.get("ns_per_round", {})
    new_table = new.get("ns_per_round", {})
    for engine in sorted(set(old_table) | set(new_table)):
        old_cells = old_table.get(engine, {})
        new_cells = new_table.get(engine, {})
        for side in sorted(set(old_cells) & set(new_cells), key=int):
            before, after = old_cells[side], new_cells[side]
            if not before:
                continue
            delta = (after - before) / before * 100.0
            marker = "  <-- regression?" if delta > 10.0 else ""
            print(f"ns_per_round {engine}/{side}: {before:.0f} -> "
                  f"{after:.0f} ns ({delta:+.1f}%){marker}")
    print("check_bench_schema: diff is informational only (machine noise "
          "dominates cross-run deltas); not failing the build on it")
    return True


def main(argv):
    if len(argv) >= 1 and argv[0] == "--diff":
        if len(argv) != 3:
            print("usage: check_bench_schema.py --diff OLD.json NEW.json",
                  file=sys.stderr)
            return 2
        diff_engine(argv[1], argv[2])
        return 0

    paths = argv
    if not paths:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        paths = [os.path.join(root, name) for name in sorted(CHECKERS)]
    ok = True
    for path in paths:
        ok &= check_file(path)
    if ok:
        print(f"check_bench_schema: {len(paths)} snapshot(s) ok")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
