// Chapter 5 — On-chip diversity: the three candidate communication
// architectures of Fig. 5-2, under one interface so the same application
// can be swept across them (Fig. 5-3).
//
//  * FlatNoc            — one 8x8 mesh; every tile gossips with the whole
//                         chip.
//  * HierarchicalNoc    — four 4x4 sub-meshes joined by a central router
//                         tile; gossip is confined to a cluster unless a
//                         message needs to cross, which keeps the total
//                         transmission count low.
//  * BusConnectedNocs   — same clustering, but the joining element is a
//                         shared bus: a bridge that can carry only one
//                         packet per round (serialised, arbitrated medium).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "apps/beamforming.hpp"
#include "core/engine.hpp"
#include "core/interconnect.hpp"
#include "fault/fault_model.hpp"
#include "noc/topology.hpp"

namespace snoc::diversity {

enum class ArchitectureKind : std::uint8_t {
    FlatNoc,
    HierarchicalNoc,   ///< clusters + central router tile (Fig. 5-2 left).
    CentralRouterMesh, ///< clusters whose gateways form their own 2nd-level
                       ///< mesh — no single routing element (extension).
    BusConnectedNocs,  ///< clusters joined by a serialised shared bus.
};

constexpr const char* to_string(ArchitectureKind k) {
    switch (k) {
    case ArchitectureKind::FlatNoc: return "Flat NoC";
    case ArchitectureKind::HierarchicalNoc: return "Hierarchical NoC";
    case ArchitectureKind::CentralRouterMesh: return "Gateway-mesh NoC";
    case ArchitectureKind::BusConnectedNocs: return "Bus-connected NoCs";
    }
    return "?";
}

/// A concrete architecture: topology + where the beamforming tasks live +
/// the hub tile (if any) and its per-round forwarding capacity.
struct Architecture {
    ArchitectureKind kind{ArchitectureKind::FlatNoc};
    Topology topology{Topology::mesh(8, 8)};
    apps::BeamformingMapping mapping;
    TileId hub{kNoTile};            ///< central router / bus bridge tile.
    std::size_t hub_capacity{0};    ///< packets/round through the hub (0 = n/a).
};

/// Build one of the three Fig. 5-2 shapes (64 worker tiles each).
Architecture make_architecture(ArchitectureKind kind);

/// Install an architecture's traffic shaping on a freshly built network:
/// the hub's per-round forward capacity plus the cluster/gateway route
/// filters that confine gossip to the destination's cluster.
void install_architecture(const Architecture& arch, GossipNetwork& net);

/// The acoustic-beamforming TrafficTrace mapped onto an architecture.
TrafficTrace beamforming_trace_for(const Architecture& arch, std::size_t frames);

/// A gossip-backed Interconnect for one of the Fig. 5-2 architectures —
/// the Ch. 5 entry into the unified comparison harness (the adapter
/// recipe: topology + filters in, RunReport out).
std::unique_ptr<Interconnect> make_interconnect(ArchitectureKind kind,
                                                const GossipConfig& config,
                                                const FaultScenario& scenario,
                                                std::uint64_t seed,
                                                EngineSelect engine = {});

/// Run the beamforming workload on an architecture and report the Fig. 5-3
/// quantities.
struct DiversityResult {
    bool completed{false};
    std::size_t rounds{0};
    std::size_t transmissions{0};
    double seconds{0.0};
};

DiversityResult run_beamforming(ArchitectureKind kind, std::size_t frames,
                                const GossipConfig& config,
                                const FaultScenario& scenario, std::uint64_t seed,
                                Round max_rounds = 20000);

} // namespace snoc::diversity
