// Ablation (ours): three ways to tell every tile something.
//
//   * spanning-tree broadcast — optimal cost (n-1 transmissions) and
//     latency (eccentricity), but a dead tile silently loses its subtree;
//   * gossip at p = 0.5 — probabilistic redundancy, graceful under crashes;
//   * flooding (p = 1) — gossip's latency-optimal, energy-worst corner.
//
// Reported per crash count: tiles reached [%] and transmissions, averaged
// over seeds.  This sandwiches Fig. 4-4's trade-off between the
// deterministic optimum and the brute-force maximum.
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "bus/broadcast_tree.hpp"

namespace {

class Announcer final : public snoc::IpCore {
public:
    void on_start(snoc::TileContext& ctx) override {
        ctx.send(snoc::kBroadcast, 0xAD, {std::byte{1}});
    }
    void on_message(const snoc::Message&, snoc::TileContext&) override {}
};

} // namespace

int main(int argc, char** argv) {
    using namespace snoc;
    const auto opt = bench::options(argc, argv, 15);
    const auto topo = Topology::mesh(5, 5);
    constexpr TileId kRoot = 12;

    struct Trial {
        double tree_reach, tree_tx;
        double reach[2], tx[2]; // 0: gossip p=.5, 1: flooding
    };

    Table table({"crashed tiles", "tree reach [%]", "gossip reach [%]",
                 "flood reach [%]", "tree tx", "gossip tx", "flood tx"});
    for (std::size_t k : {0u, 1u, 2u, 4u, 6u}) {
        const auto trials = run_trials(
            opt.repeats,
            [&](std::uint64_t seed) {
                RngPool pool(seed);
                FaultInjector inj(FaultScenario::none(), pool);
                const auto crashes = inj.roll_exact_tile_crashes(topo, k, {kRoot});
                const double live = static_cast<double>(25 - crashes.dead_tile_count());

                Trial out{};
                const auto t = tree_broadcast(topo, kRoot, crashes);
                out.tree_reach = 100.0 * static_cast<double>(t.reached) / live;
                out.tree_tx = static_cast<double>(t.transmissions);

                for (int mode = 0; mode < 2; ++mode) {
                    GossipConfig c = bench::config_with_p(mode == 0 ? 0.5 : 1.0, 20);
                    GossipNetwork net(topo, c, FaultScenario::none(), seed,
                                      bench::engine_select(opt));
                    net.attach(kRoot, std::make_unique<Announcer>());
                    net.protect(kRoot);
                    net.force_exact_tile_crashes(k);
                    net.drain(100);
                    out.reach[mode] = 100.0 *
                                      static_cast<double>(net.tiles_knowing({kRoot, 0})) /
                                      live;
                    out.tx[mode] = static_cast<double>(net.metrics().packets_sent);
                }
                return out;
            },
            opt.jobs);
        Accumulator tree_reach, tree_tx;
        Accumulator reach[2], tx[2];
        for (const Trial& t : trials) {
            tree_reach.add(t.tree_reach);
            tree_tx.add(t.tree_tx);
            for (int mode = 0; mode < 2; ++mode) {
                reach[mode].add(t.reach[mode]);
                tx[mode].add(t.tx[mode]);
            }
        }
        table.add_row({std::to_string(k), format_number(tree_reach.mean(), 1),
                       format_number(reach[0].mean(), 1),
                       format_number(reach[1].mean(), 1),
                       format_number(tree_tx.mean(), 0),
                       format_number(tx[0].mean(), 0),
                       format_number(tx[1].mean(), 0)});
    }
    bench::emit(table, opt,
                "Ablation: spanning tree vs gossip vs flooding broadcast "
                "(5x5, reach among live tiles)");
    std::cout << "\nReading: the tree is 25x cheaper but sheds whole subtrees\n"
                 "per crash; gossip pays redundancy for graceful reach; \n"
                 "flooding pays double gossip for ~1 round less latency.\n";
    return 0;
}
