// Design-space tuning helpers (Sec. 3.2.2 / 4.1.3): p and TTL are the
// knobs that trade performance against energy, and picking them today
// means guessing.  This module turns the guess into a procedure:
//
//   * estimate_ttl   — closed-form first cut: the broadcast wave advances
//                      about p hops per round toward any tile, so a rumor
//                      needs ~diameter/p rounds plus logarithmic slack.
//   * plan_ttl       — empirical calibration: Monte-Carlo the real engine
//                      over the worst-case source/destination pair and
//                      binary-search the smallest TTL whose delivery
//                      probability meets the target.
#pragma once

#include <cstdint>

#include "noc/topology.hpp"

namespace snoc {

/// Closed-form TTL first cut for a topology of the given diameter.
std::uint16_t estimate_ttl(std::size_t diameter, double forward_p);

struct TtlPlan {
    std::uint16_t recommended_ttl{0};
    double achieved_delivery{0.0}; ///< empirical delivery at that TTL.
    TileId worst_source{0};
    TileId worst_destination{0};
};

/// Calibrate the TTL on `topology` at forwarding probability `forward_p`
/// so that a unicast between the farthest pair of tiles is delivered with
/// probability >= `target_delivery` (per rumor, fault-free).  `trials`
/// Monte-Carlo runs evaluate each candidate TTL.
TtlPlan plan_ttl(const Topology& topology, double forward_p, double target_delivery,
                 std::uint64_t seed, std::size_t trials = 60);

/// Farthest-apart pair of tiles (graph eccentricity via BFS).
std::pair<TileId, TileId> farthest_pair(const Topology& topology);

} // namespace snoc
