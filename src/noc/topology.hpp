// Network topologies (Fig. 3-2): the fully-connected graph of the
// theoretical analysis and the 2-D mesh the NoC actually uses, plus the
// composite shapes of Chapter 5 (mesh-of-meshes with a central router).
//
// A Topology is a concrete adjacency structure over directed links; the
// gossip engine only needs "who are my neighbours" plus stable link ids
// for fault injection and packet accounting.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace snoc {

/// One directed link from `from` to `to`.
struct LinkEnd {
    TileId from{0};
    TileId to{0};

    friend bool operator==(const LinkEnd&, const LinkEnd&) = default;
};

class Topology {
public:
    /// --- Named builders -------------------------------------------------
    /// w×h 2-D mesh, row-major numbering, 4-neighbour (Fig. 3-2b).
    static Topology mesh(std::size_t width, std::size_t height);
    /// Fully connected graph on n nodes (Fig. 3-2a).
    static Topology fully_connected(std::size_t n);
    /// w×h torus (mesh with wrap-around links) — extension topology.
    static Topology torus(std::size_t width, std::size_t height);
    /// Build from an explicit edge list (undirected edges; both directions
    /// are created).  Used by the Chapter 5 composite architectures.
    static Topology from_edges(std::size_t n, const std::vector<LinkEnd>& undirected_edges,
                               std::string name = "custom");

    /// --- Queries ---------------------------------------------------------
    std::size_t node_count() const { return neighbours_.size(); }
    std::size_t link_count() const { return links_.size(); }
    const std::string& name() const { return name_; }

    /// Outgoing neighbour tiles of `t` (order is stable across runs).
    const std::vector<TileId>& neighbours(TileId t) const;
    /// Directed link ids leaving `t`, parallel to neighbours(t).
    const std::vector<LinkId>& out_links(TileId t) const;
    /// Endpoints of a directed link.
    const LinkEnd& link(LinkId id) const;

    /// Mesh-only helpers (throw for non-grid topologies).
    bool is_grid() const { return width_ > 0; }
    std::size_t width() const;
    std::size_t height() const;
    std::size_t x_of(TileId t) const;
    std::size_t y_of(TileId t) const;
    TileId at(std::size_t x, std::size_t y) const;
    /// Manhattan distance between two tiles of a grid.
    std::size_t manhattan(TileId a, TileId b) const;

    /// True if every node can reach every other through links whose ids
    /// are not in `dead_links` and nodes not in `dead_tiles` — used to
    /// check whether crashes have partitioned the NoC ("entire regions of
    /// the NoC are isolated").
    bool connected_without(const std::vector<bool>& dead_tiles,
                           const std::vector<bool>& dead_links) const;

private:
    Topology() = default;
    void add_directed_link(TileId from, TileId to);

    std::string name_;
    std::size_t width_{0};
    std::size_t height_{0};
    std::vector<std::vector<TileId>> neighbours_;
    std::vector<std::vector<LinkId>> out_links_;
    std::vector<LinkEnd> links_;
};

} // namespace snoc
