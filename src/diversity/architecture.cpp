#include "diversity/architecture.hpp"

#include "apps/trace_app.hpp"
#include "common/expect.hpp"
#include "sim/backends.hpp"

namespace snoc::diversity {

namespace {

constexpr std::size_t kClusterCount = 4;
constexpr std::size_t kClusterSide = 4;
constexpr std::size_t kClusterTiles = kClusterSide * kClusterSide;
constexpr TileId kHubNode = kClusterCount * kClusterTiles; // 64

/// Local tile indexes (within a 4x4 cluster/quadrant) of the task roles.
constexpr std::array<std::size_t, 4> kSensorLocals = {1, 2, 4, 8};
constexpr std::size_t kAggregatorLocal = 5;
constexpr std::size_t kCombinerLocal = 10; // in cluster 0 only

/// Flat 8x8: quadrant q's local tile l -> global tile id.
TileId flat_tile(std::size_t quadrant, std::size_t local) {
    const std::size_t qx = (quadrant % 2) * kClusterSide;
    const std::size_t qy = (quadrant / 2) * kClusterSide;
    const std::size_t lx = local % kClusterSide;
    const std::size_t ly = local / kClusterSide;
    return static_cast<TileId>((qy + ly) * (2 * kClusterSide) + (qx + lx));
}

/// Clustered architectures: cluster c's local tile l -> node id.
TileId cluster_tile(std::size_t cluster, std::size_t local) {
    return static_cast<TileId>(cluster * kClusterTiles + local);
}

std::size_t cluster_of(TileId tile) { return tile / kClusterTiles; }

/// Gateway (the tile wired to the hub) of each cluster: the corner that
/// faces the chip centre.
constexpr std::array<std::size_t, 4> kGatewayLocals = {15, 12, 3, 0};

apps::BeamformingMapping make_mapping(bool flat) {
    apps::BeamformingMapping m;
    for (std::size_t c = 0; c < kClusterCount; ++c)
        for (std::size_t s : kSensorLocals)
            m.sensors.push_back(flat ? flat_tile(c, s) : cluster_tile(c, s));
    for (std::size_t c = 0; c < kClusterCount; ++c)
        m.aggregators.push_back(flat ? flat_tile(c, kAggregatorLocal)
                                     : cluster_tile(c, kAggregatorLocal));
    m.combiner = flat ? flat_tile(0, kCombinerLocal) : cluster_tile(0, kCombinerLocal);
    return m;
}

std::vector<LinkEnd> intra_cluster_edges() {
    std::vector<LinkEnd> edges;
    for (std::size_t c = 0; c < kClusterCount; ++c) {
        for (std::size_t y = 0; y < kClusterSide; ++y) {
            for (std::size_t x = 0; x < kClusterSide; ++x) {
                const TileId id = cluster_tile(c, y * kClusterSide + x);
                if (x + 1 < kClusterSide)
                    edges.push_back({id, static_cast<TileId>(id + 1)});
                if (y + 1 < kClusterSide)
                    edges.push_back({id, static_cast<TileId>(id + kClusterSide)});
            }
        }
    }
    return edges;
}

Topology clustered_topology(const std::string& name) {
    auto edges = intra_cluster_edges();
    // Hub spokes.
    for (std::size_t c = 0; c < kClusterCount; ++c)
        edges.push_back({cluster_tile(c, kGatewayLocals[c]), kHubNode});
    return Topology::from_edges(kHubNode + 1, edges, name);
}

Topology gateway_mesh_topology(const std::string& name) {
    auto edges = intra_cluster_edges();
    // Gateways form their own fully-connected 2nd-level network.
    for (std::size_t a = 0; a < kClusterCount; ++a)
        for (std::size_t b = a + 1; b < kClusterCount; ++b)
            edges.push_back({cluster_tile(a, kGatewayLocals[a]),
                             cluster_tile(b, kGatewayLocals[b])});
    return Topology::from_edges(kClusterCount * kClusterTiles, edges, name);
}

/// Confine gossip to clusters: the hub only forwards a rumor into the
/// cluster that hosts its destination; a gateway only hands a rumor to the
/// hub when the destination is off-cluster.
void install_cluster_filters(GossipNetwork& net) {
    net.set_route_filter(kHubNode, [](const Message& m, TileId next) {
        if (m.destination == kBroadcast) return true;
        return cluster_of(next) == cluster_of(m.destination);
    });
    for (std::size_t c = 0; c < kClusterCount; ++c) {
        const TileId gateway = cluster_tile(c, kGatewayLocals[c]);
        net.set_route_filter(gateway, [c](const Message& m, TileId next) {
            if (next != kHubNode) return true;
            if (m.destination == kBroadcast) return true;
            return cluster_of(m.destination) != c;
        });
    }
}

/// Gateway-mesh variant: a gateway forwards onto an inter-gateway link
/// only toward the destination's cluster.
void install_gateway_mesh_filters(GossipNetwork& net) {
    for (std::size_t c = 0; c < kClusterCount; ++c) {
        const TileId gateway = cluster_tile(c, kGatewayLocals[c]);
        net.set_route_filter(gateway, [c](const Message& m, TileId next) {
            const std::size_t next_cluster = cluster_of(next);
            if (next_cluster == c) return true; // intra-cluster port
            // Inter-gateway link: only toward the destination's cluster.
            if (m.destination == kBroadcast) return true;
            return cluster_of(m.destination) == next_cluster;
        });
    }
}

} // namespace

Architecture make_architecture(ArchitectureKind kind) {
    Architecture arch;
    arch.kind = kind;
    switch (kind) {
    case ArchitectureKind::FlatNoc:
        arch.topology = Topology::mesh(2 * kClusterSide, 2 * kClusterSide);
        arch.mapping = make_mapping(/*flat=*/true);
        break;
    case ArchitectureKind::HierarchicalNoc:
        arch.topology = clustered_topology("4x(4x4) + central router");
        arch.mapping = make_mapping(/*flat=*/false);
        arch.hub = kHubNode;
        arch.hub_capacity = 8; // a real router switches several packets/round
        break;
    case ArchitectureKind::CentralRouterMesh:
        arch.topology = gateway_mesh_topology("4x(4x4) + gateway mesh");
        arch.mapping = make_mapping(/*flat=*/false);
        break;
    case ArchitectureKind::BusConnectedNocs:
        arch.topology = clustered_topology("4x(4x4) + shared bus");
        arch.mapping = make_mapping(/*flat=*/false);
        arch.hub = kHubNode;
        arch.hub_capacity = 1; // the bus carries one packet per round
        break;
    }
    return arch;
}

void install_architecture(const Architecture& arch, GossipNetwork& net) {
    if (arch.hub != kNoTile) {
        net.set_forward_capacity(arch.hub, arch.hub_capacity);
        install_cluster_filters(net);
    } else if (arch.kind == ArchitectureKind::CentralRouterMesh) {
        install_gateway_mesh_filters(net);
    }
}

TrafficTrace beamforming_trace_for(const Architecture& arch, std::size_t frames) {
    return apps::beamforming_trace(arch.mapping, frames);
}

std::unique_ptr<Interconnect> make_interconnect(ArchitectureKind kind,
                                                const GossipConfig& config,
                                                const FaultScenario& scenario,
                                                std::uint64_t seed,
                                                EngineSelect engine) {
    const Architecture arch = make_architecture(kind);
    GossipSpec spec;
    spec.topology = arch.topology;
    spec.config = config;
    spec.engine = engine;
    spec.customize = [arch](GossipNetwork& net) { install_architecture(arch, net); };
    // Route through the spec-to-adapter table (qualified: unqualified
    // lookup would stop at this overload set).
    return snoc::make_interconnect(std::move(spec), scenario, seed);
}

DiversityResult run_beamforming(ArchitectureKind kind, std::size_t frames,
                                const GossipConfig& config,
                                const FaultScenario& scenario, std::uint64_t seed,
                                Round max_rounds) {
    const Architecture arch = make_architecture(kind);
    const auto backend = make_interconnect(kind, config, scenario, seed);
    const RunReport report =
        backend->run(beamforming_trace_for(arch, frames), max_rounds);

    DiversityResult result;
    result.completed = report.completed;
    result.rounds = report.rounds;
    result.transmissions = report.metrics.packets_sent;
    result.seconds = report.seconds;
    return result;
}

} // namespace snoc::diversity
