#define SNOC_CHECK(level, cond) ((void)(cond))
namespace snoc {
void foo(int x) {
    SNOC_CHECK(3, x >= 0);
}
}
