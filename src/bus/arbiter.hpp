// Round-robin bus arbitration.  "Because a bus is a shared communication
// channel, it requires arbitration in order to ensure the mutual exclusion
// between the components accessing the channel" (Ch. 1).  The rotating
// priority guarantees starvation freedom: a requester waits at most
// (n - 1) grants.
//
// The mechanism is the arbitration stage of the layered router core
// (router/arbiter.hpp); this wrapper keeps the bus-facing vocabulary
// (modules requesting a shared channel) over the same rotating scan.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "router/arbiter.hpp"

namespace snoc {

class RoundRobinArbiter {
public:
    explicit RoundRobinArbiter(std::size_t modules) : rotor_(modules) {}

    /// Grant the bus to the requesting module closest (cyclically) after
    /// the previous grant.  Returns nullopt when nobody requests.
    std::optional<std::size_t> grant(const std::vector<bool>& requests) {
        return rotor_.grant(requests);
    }

    std::size_t module_count() const { return rotor_.slot_count(); }

private:
    router::RotatingArbiter rotor_;
};

} // namespace snoc
