file(REMOVE_RECURSE
  "CMakeFiles/fig3_1_rumor_spreading.dir/fig3_1_rumor_spreading.cpp.o"
  "CMakeFiles/fig3_1_rumor_spreading.dir/fig3_1_rumor_spreading.cpp.o.d"
  "fig3_1_rumor_spreading"
  "fig3_1_rumor_spreading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_1_rumor_spreading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
