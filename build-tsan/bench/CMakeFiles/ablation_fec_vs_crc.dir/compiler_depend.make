# Empty compiler generated dependencies file for ablation_fec_vs_crc.
# This may be replaced when dependencies are built.
