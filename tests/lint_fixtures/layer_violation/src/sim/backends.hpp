#pragma once
// Stub of the top-layer scenario header the core file wrongly reaches for.
namespace snoc { struct GossipAdapter; }
