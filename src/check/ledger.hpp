// The conservation ledger: every message copy the simulator ever makes,
// bucketed by fate.  The paper's central claim — gossip delivers w.h.p.
// despite drops from CRC failures, TTL expiry, buffer overflow and
// crashed tiles — is only checkable if every copy's fate is accounted
// for; a simulator bug that leaks or double-counts copies corrupts every
// reproduced figure.  The ledger states the bookkeeping as two exact
// balance laws over the engine's drop taxonomy (see NetworkMetrics):
//
//   wire law    every copy put on a link is, at any round boundary,
//               exactly one of: still in flight, sunk into a crashed
//               tile, dropped at the port (forced overflow or in-buffer
//               capacity), killed by FEC/CRC, ignored as a duplicate,
//               or accepted into a send buffer:
//
//                 transmitted == in_flight + crash_drops
//                              + port_overflow_drops + fec_uncorrectable
//                              + crc_drops + duplicates + accepted
//
//   buffer law  every copy that entered a send buffer (injected at the
//               source or accepted off the wire) is exactly one of:
//               garbage-collected at TTL 0, evicted on overflow, or
//               still buffered:
//
//                 injected + accepted == ttl_expired + sendbuf_evictions
//                                      + buffered
//
// GossipNetwork::ledger() fills one from live engine state; the
// InvariantAuditor (src/check/invariant_auditor.hpp) verifies the laws
// per round and at end of run.  Header-only and dependency-free so
// snoc_core can build ledgers without linking the auditor library.
//
// Caveat: SendBuffer::clear() forgets copies without a fate and would
// unbalance the buffer law; nothing in the engine calls it mid-run (it
// exists for test fixtures).
#pragma once

#include <cstddef>
#include <string>

namespace snoc::check {

struct ConservationLedger {
    // --- sources -----------------------------------------------------------
    std::size_t injected{0};     ///< messages created by IP cores (inserted).
    std::size_t transmitted{0};  ///< link transmissions (packets_sent).

    // --- wire fates --------------------------------------------------------
    std::size_t in_flight{0};           ///< enqueued, not yet received.
    std::size_t crash_drops{0};         ///< received by a crashed tile: silence.
    std::size_t port_overflow_drops{0}; ///< forced p_overflow + in-buffer capacity.
    std::size_t fec_uncorrectable{0};   ///< multi-bit upsets SECDED cannot fix.
    std::size_t crc_drops{0};           ///< scrambled packets the CRC caught.
    std::size_t duplicates{0};          ///< re-received known messages.
    std::size_t accepted{0};            ///< merged into a send buffer off the wire.

    // --- buffer fates ------------------------------------------------------
    std::size_t ttl_expired{0};       ///< garbage-collected at TTL 0.
    std::size_t sendbuf_evictions{0}; ///< oldest-out overflow evictions.
    std::size_t buffered{0};          ///< still held in some send buffer.

    /// transmitted minus the sum of wire fates (0 when balanced; positive
    /// means copies leaked, negative means copies were double-counted).
    long long wire_imbalance() const {
        return static_cast<long long>(transmitted) -
               static_cast<long long>(in_flight + crash_drops + port_overflow_drops +
                                      fec_uncorrectable + crc_drops + duplicates +
                                      accepted);
    }

    /// (injected + accepted) minus the sum of buffer fates.
    long long buffer_imbalance() const {
        return static_cast<long long>(injected + accepted) -
               static_cast<long long>(ttl_expired + sendbuf_evictions + buffered);
    }

    bool balanced() const { return wire_imbalance() == 0 && buffer_imbalance() == 0; }

    std::string to_string() const {
        return "ledger{injected=" + std::to_string(injected) +
               " transmitted=" + std::to_string(transmitted) +
               " in_flight=" + std::to_string(in_flight) +
               " crash=" + std::to_string(crash_drops) +
               " port_overflow=" + std::to_string(port_overflow_drops) +
               " fec_unc=" + std::to_string(fec_uncorrectable) +
               " crc=" + std::to_string(crc_drops) +
               " dup=" + std::to_string(duplicates) +
               " accepted=" + std::to_string(accepted) +
               " ttl_expired=" + std::to_string(ttl_expired) +
               " evictions=" + std::to_string(sendbuf_evictions) +
               " buffered=" + std::to_string(buffered) +
               " wire_imbalance=" + std::to_string(wire_imbalance()) +
               " buffer_imbalance=" + std::to_string(buffer_imbalance()) + "}";
    }
};

} // namespace snoc::check
