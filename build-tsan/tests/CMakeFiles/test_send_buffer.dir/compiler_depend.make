# Empty compiler generated dependencies file for test_send_buffer.
# This may be replaced when dependencies are built.
