// Figure 4-8: latency of the MP3 application — contour plot of encoding
// latency [rounds] over the (p, p_upset) plane.
//
// Expected shape (thesis): minimum (~62 rounds there) at p = 1, p_upset=0;
// latency grows as p -> 0 and p_upset -> 1, and in the worst corner the
// encoding cannot finish (packets fail to reach their destination).
#include <iostream>

#include "apps/mp3_app.hpp"
#include "bench_util.hpp"

namespace {

snoc::apps::Mp3Config mp3_config() {
    snoc::apps::Mp3Config c;
    c.frame_samples = 64;
    c.frame_count = 12;
    c.frame_interval = 2;
    c.band_count = 8;
    c.frame_budget_bits = 400;
    c.reservoir_capacity = 800;
    return c;
}

} // namespace

int main(int argc, char** argv) {
    using namespace snoc;
    const auto opt = bench::options(argc, argv, 5);
    const std::vector<double> kPs{0.1, 0.25, 0.5, 0.75, 1.0};
    const std::vector<double> kUpsets{0.0, 0.2, 0.4, 0.6, 0.8};
    constexpr Round kMaxRounds = 4000;

    std::vector<std::string> headers{"p \\ p_upset"};
    for (double u : kUpsets) headers.push_back(format_number(u, 1));
    Table latency(headers);
    Table completion(headers);

    for (double p : kPs) {
        std::vector<std::string> lat_row{format_number(p, 2)};
        std::vector<std::string> comp_row{format_number(p, 2)};
        for (double upset : kUpsets) {
            const auto trials = run_trials(
                opt.repeats,
                [&](std::uint64_t seed) -> double {
                    FaultScenario s;
                    s.p_upset = upset;
                    GossipNetwork net(Topology::mesh(4, 4),
                                      bench::config_with_p(p, 60), s, seed,
                                      bench::engine_select(opt));
                    auto& output = apps::deploy_mp3(net, mp3_config());
                    const auto r = net.run_until(
                        [&output] { return output.complete(); }, kMaxRounds);
                    return r.completed ? static_cast<double>(r.rounds) : -1.0;
                },
                opt.jobs);
            Accumulator rounds;
            std::size_t completed = 0;
            for (double r : trials) {
                if (r < 0.0) continue;
                ++completed;
                rounds.add(r);
            }
            lat_row.push_back(completed > 0 ? format_number(rounds.mean(), 0)
                                            : std::string("DNF"));
            comp_row.push_back(
                format_number(100.0 * completed / opt.repeats, 0) + "%");
        }
        latency.add_row(lat_row);
        completion.add_row(comp_row);
    }
    bench::emit(latency, opt, "Fig. 4-8: MP3 latency [rounds] over (p, p_upset)");
    bench::emit(completion, opt, "Fig. 4-8 companion: completion rate");
    return 0;
}
