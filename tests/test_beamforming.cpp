#include "apps/beamforming.hpp"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "common/expect.hpp"

namespace snoc::apps {
namespace {

BeamformingMapping small_mapping() {
    BeamformingMapping m;
    m.sensors = {1, 2, 4, 8, 17, 18, 20, 24};
    m.aggregators = {5, 21};
    m.combiner = 10;
    return m;
}

TEST(BeamformingTrace, TwoPhasesPerFrame) {
    const auto trace = beamforming_trace(small_mapping(), 3);
    EXPECT_EQ(trace.phases.size(), 6u);
    EXPECT_EQ(trace.phases[0].messages.size(), 8u); // sensors -> aggregators
    EXPECT_EQ(trace.phases[1].messages.size(), 2u); // aggregators -> combiner
}

TEST(BeamformingTrace, SensorsFeedTheirClusterAggregator) {
    const auto m = small_mapping();
    const auto trace = beamforming_trace(m, 1);
    for (std::size_t s = 0; s < 8; ++s) {
        const auto& msg = trace.phases[0].messages[s];
        EXPECT_EQ(msg.src, m.sensors[s]);
        EXPECT_EQ(msg.dst, m.aggregators[s / 4]);
    }
    for (const auto& msg : trace.phases[1].messages) EXPECT_EQ(msg.dst, m.combiner);
}

TEST(BeamformingTrace, BitSizesPropagate) {
    const auto trace = beamforming_trace(small_mapping(), 1, 1000, 200);
    EXPECT_EQ(trace.phases[0].messages[0].bits, 1000u);
    EXPECT_EQ(trace.phases[1].messages[0].bits, 200u);
    EXPECT_EQ(trace.useful_bits(), 8u * 1000 + 2u * 200);
}

TEST(BeamformingTrace, RejectsUnevenClustering) {
    BeamformingMapping m = small_mapping();
    m.sensors.pop_back(); // 7 sensors, 2 aggregators
    EXPECT_THROW(beamforming_trace(m, 1), snoc::ContractViolation);
}

TEST(DelayAndSum, AlignedTonesReinforce) {
    // Identical blocks with zero delay: the beam equals each block.
    const std::size_t n = 64;
    std::vector<double> block(n);
    for (std::size_t i = 0; i < n; ++i)
        block[i] = std::sin(2.0 * std::numbers::pi * 4.0 * i / n);
    const auto beam = delay_and_sum({block, block, block}, {0, 0, 0});
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(beam[i], block[i], 1e-12);
}

TEST(DelayAndSum, DelaysCompensatePropagation) {
    // Each sensor hears the source shifted by its distance; delay-and-sum
    // with matching delays re-aligns them.
    const std::size_t n = 64;
    std::vector<double> source(n + 8);
    for (std::size_t i = 0; i < source.size(); ++i)
        source[i] = std::sin(0.37 * static_cast<double>(i));
    std::vector<std::vector<double>> blocks;
    const std::vector<std::size_t> delays{0, 3, 7};
    for (std::size_t d : delays) {
        std::vector<double> heard(n);
        // Sensor with delay d hears source[i - d]: build so that
        // heard[i + d] == source-aligned sample.
        for (std::size_t i = 0; i < n; ++i) heard[i] = source[(i + 8) - d];
        blocks.push_back(std::move(heard));
    }
    const auto beam = delay_and_sum(blocks, delays);
    // In the valid interior the beam should match the aligned source.
    for (std::size_t i = 0; i < n - 8; ++i)
        EXPECT_NEAR(beam[i], source[i + 8], 1e-9);
}

TEST(DelayAndSum, MisalignedNoiseAveragesDown) {
    // Uncorrelated +1/-1 "noise" across sensors attenuates ~1/sqrt(k).
    const std::size_t n = 128;
    std::vector<std::vector<double>> blocks;
    for (std::size_t s = 0; s < 16; ++s) {
        std::vector<double> b(n);
        for (std::size_t i = 0; i < n; ++i)
            b[i] = ((i * 2654435761u + s * 40503u) >> 13) % 2 ? 1.0 : -1.0;
        blocks.push_back(std::move(b));
    }
    const auto beam = delay_and_sum(blocks, std::vector<std::size_t>(16, 0));
    double rms = 0.0;
    for (double v : beam) rms += v * v;
    rms = std::sqrt(rms / n);
    EXPECT_LT(rms, 0.5); // well below the per-sensor RMS of 1.0
}

TEST(DelayAndSum, ValidatesInput) {
    EXPECT_THROW(delay_and_sum({}, {}), snoc::ContractViolation);
    EXPECT_THROW(delay_and_sum({{1.0, 2.0}}, {0, 1}), snoc::ContractViolation);
    EXPECT_THROW(delay_and_sum({{1.0, 2.0}, {1.0}}, {0, 0}), snoc::ContractViolation);
    EXPECT_THROW(delay_and_sum({{1.0, 2.0}}, {5}), snoc::ContractViolation);
}

} // namespace
} // namespace snoc::apps
