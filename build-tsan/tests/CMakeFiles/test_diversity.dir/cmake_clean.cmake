file(REMOVE_RECURSE
  "CMakeFiles/test_diversity.dir/test_diversity.cpp.o"
  "CMakeFiles/test_diversity.dir/test_diversity.cpp.o.d"
  "test_diversity"
  "test_diversity.pdb"
  "test_diversity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_diversity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
