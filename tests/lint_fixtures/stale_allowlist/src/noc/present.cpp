namespace snoc { int present() { return 1; } }
