// Live metrics registry: typed counters, gauges and histograms that every
// layer can cheaply bump while a run is in flight, snapshotted on demand
// as deterministic JSON or Prometheus text exposition.
//
// NetworkMetrics (core/metrics.hpp) is a *result*: per-trial counters
// owned by one backend instance, reset per run, reported in artifacts.
// The registry is *observability*: process-wide totals across every
// trial, cell and retry of a sweep, readable at any moment by the
// heartbeat stream and snoc_top without touching backend internals.
// The two deliberately do not share a taxonomy — registry entries are
// namespaced by producer (engine_*, router_*, trial-level) so a packet
// counted by the dense engine is never double-counted by the runner.
//
// The registry is an X-macro table, like every other registry in this
// codebase (trace kinds, backends, flow control): enumerator, kind, wire
// name and help string live in one list, and snoc_lint cross-checks that
// every entry has at least one emit site (`MetricId::<Name>` outside
// this header) and appears in both golden expositions.  Adding a metric
// without wiring it up fails the lint, not a code review.
//
// Concurrency: all cells are relaxed atomics.  Trials run concurrently
// on ThreadPool workers and the heartbeat thread reads while they write;
// relaxed is enough because the registry carries monotone totals for
// human eyes, not synchronization.  Snapshots are not atomic across
// metrics — a reader may see trial N's rounds before its delivery count
// — which is fine for a progress display and spelled out here so nobody
// builds an invariant on top.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace snoc {

/// The single source of truth for registry metrics: kind, enumerator,
/// wire name (Prometheus-legal, also the JSON key) and help text.
/// snoc_lint parses this list — keep entries one per line.
#define SNOC_METRIC_LIST(X)                                                    \
    X(counter, EngineRoundsTotal, "snoc_engine_rounds_total",                  \
      "Gossip rounds executed by the dense engine")                            \
    X(counter, EventEngineRoundsTotal, "snoc_event_engine_rounds_total",       \
      "Gossip rounds executed by the event-driven engine")                     \
    X(counter, RouterPacketsCreatedTotal, "snoc_router_packets_created_total", \
      "Packets injected by the router core")                                   \
    X(counter, RouterPacketsTransmittedTotal,                                  \
      "snoc_router_packets_transmitted_total",                                 \
      "Link traversals performed by the router core")                          \
    X(counter, RouterPacketsDeliveredTotal,                                    \
      "snoc_router_packets_delivered_total",                                   \
      "First-time deliveries by the router core")                              \
    X(counter, RouterCrashDropsTotal, "snoc_router_crash_drops_total",         \
      "Packets sunk into crashed tiles by the router core")                    \
    X(counter, RouterTtlExpiredTotal, "snoc_router_ttl_expired_total",         \
      "Packets garbage-collected at TTL zero by the router core")              \
    X(counter, TrialsTotal, "snoc_trials_total",                               \
      "Monte-Carlo trials completed (including failed attempts)")              \
    X(counter, TrialRetriesTotal, "snoc_trial_retries_total",                  \
      "Trial attempts beyond the first (reseeded retries)")                    \
    X(counter, CellsTotal, "snoc_cells_total",                                 \
      "Sweep cells completed")                                                 \
    X(counter, SweepsTotal, "snoc_sweeps_total",                               \
      "Scenario sweeps completed")                                             \
    X(counter, PostmortemsTotal, "snoc_postmortems_total",                     \
      "Post-mortem bundles written by armed flight recorders")                 \
    X(counter, HeartbeatsTotal, "snoc_heartbeats_total",                       \
      "Heartbeat records emitted by progress sinks")                           \
    X(counter, FlightEventsOverwrittenTotal,                                   \
      "snoc_flight_events_overwritten_total",                                  \
      "Trace events the flight recorder rings overwrote")                      \
    X(gauge, ActiveTrials, "snoc_active_trials",                               \
      "Trials currently executing on worker threads")                          \
    X(gauge, LastSweepCells, "snoc_last_sweep_cells",                          \
      "Cell count of the most recently started sweep")                         \
    X(histogram, TrialRounds, "snoc_trial_rounds",                             \
      "Rounds executed per completed trial")                                   \
    X(histogram, TrialDeliveries, "snoc_trial_deliveries",                     \
      "Messages delivered per completed trial")

enum class MetricKind : std::uint8_t { Counter, Gauge, Histogram };

enum class MetricId : std::uint8_t {
#define SNOC_METRIC_ENUM(kind, name, wire, help) name,
    SNOC_METRIC_LIST(SNOC_METRIC_ENUM)
#undef SNOC_METRIC_ENUM
};

struct MetricDesc {
    MetricKind kind;
    const char* wire; ///< Prometheus metric name; also the JSON key.
    const char* help;
};

inline constexpr MetricDesc kMetricDescs[] = {
#define SNOC_METRIC_DESC(kind, name, wire, help)                               \
    MetricDesc{MetricKind::kind_tag_##kind, wire, help},
#define kind_tag_counter Counter
#define kind_tag_gauge Gauge
#define kind_tag_histogram Histogram
    SNOC_METRIC_LIST(SNOC_METRIC_DESC)
#undef kind_tag_counter
#undef kind_tag_gauge
#undef kind_tag_histogram
#undef SNOC_METRIC_DESC
};

inline constexpr std::size_t kMetricCount = std::size(kMetricDescs);

// Mirror of the trace-kind static_assert: force a conscious audit of
// emit sites, goldens and snoc_lint whenever the table changes.
static_assert(kMetricCount == 18,
              "SNOC_METRIC_LIST changed: update this count, add an emit "
              "site, and refresh the exposition goldens");

constexpr const MetricDesc& metric_desc(MetricId id) {
    return kMetricDescs[static_cast<std::size_t>(id)];
}

/// Shared histogram bucket ladder (powers of two, then +Inf).  One ladder
/// for every histogram keeps the exposition schema flat and the goldens
/// stable; rounds and delivery counts both live comfortably in it.
inline constexpr std::uint64_t kHistogramBounds[] = {
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536,
};
inline constexpr std::size_t kHistogramBucketCount =
    std::size(kHistogramBounds) + 1; ///< trailing +Inf bucket.

class MetricsRegistry {
public:
    MetricsRegistry();

    /// The process-wide registry every producer publishes into.
    static MetricsRegistry& global();

    /// Counters and gauges: monotone bump / explicit set.
    void inc(MetricId id, std::uint64_t delta = 1);
    void dec(MetricId id, std::uint64_t delta = 1); ///< gauges only.
    void set(MetricId id, std::uint64_t value);     ///< gauges only.
    std::uint64_t value(MetricId id) const;

    /// Histograms: record one sample.
    void observe(MetricId id, std::uint64_t sample);
    std::uint64_t histogram_count(MetricId id) const;
    std::uint64_t histogram_sum(MetricId id) const;
    /// Cumulative count for bucket index (Prometheus `le` semantics).
    std::uint64_t histogram_bucket(MetricId id, std::size_t bucket) const;

    /// Zero everything (tests; never during a live run).
    void reset();

    /// Deterministic snapshots: metrics in declaration order, fixed
    /// formatting, byte-identical for identical registry contents.
    void write_json(std::ostream& os) const;
    void write_json(const std::string& path) const;
    void write_prometheus(std::ostream& os) const;
    void write_prometheus(const std::string& path) const;

private:
    struct Histogram {
        std::atomic<std::uint64_t> buckets[kHistogramBucketCount];
        std::atomic<std::uint64_t> sum{0};
        std::atomic<std::uint64_t> count{0};
    };

    std::atomic<std::uint64_t> scalars_[kMetricCount];
    Histogram histograms_[kMetricCount]; ///< sparse: only histogram ids used.
};

} // namespace snoc
