#include "wormhole/router.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "router/accounting.hpp"
#include "router/ports.hpp"

namespace snoc::wormhole {

void Config::validate() const {
    SNOC_EXPECT(vcs_per_port >= 1);
    SNOC_EXPECT(vc_buffer_flits >= 2);
    SNOC_EXPECT(flits_per_packet >= 2); // head + tail at minimum
}

Network::Network(std::size_t width, std::size_t height, Config config)
    : topo_(Topology::mesh(width, height)),
      config_(config),
      policy_(router::make_policy(policy_kind(config.routing))),
      injection_queues_(topo_.node_count()),
      inject_state_(topo_.node_count()) {
    config_.validate();
    routers_.resize(topo_.node_count());
    arbiters_.reserve(topo_.node_count());
    for (TileId t = 0; t < topo_.node_count(); ++t) {
        routers_[t].in_vcs.assign(port_count(t),
                                  std::vector<VirtualChannel>(config_.vcs_per_port));
        // One arbiter per output (links + eject) over (port, VC) slots.
        arbiters_.emplace_back(
            port_count(t),
            router::RotatingArbiter(port_count(t) * config_.vcs_per_port));
    }
}

void Network::trace_event(TraceEventKind kind, TileId tile, TileId peer,
                          std::uint32_t packet) {
    router::emit(trace_, static_cast<Round>(cycle_), kind, tile, peer,
                 MessageId{records_[packet].source, packet});
}

std::uint32_t Network::inject(TileId source, TileId destination) {
    SNOC_EXPECT(source < topo_.node_count());
    SNOC_EXPECT(destination < topo_.node_count());
    SNOC_EXPECT(source != destination);
    const std::uint32_t id = next_packet_++;
    records_.push_back(PacketRecord{id, source, destination, cycle_, std::nullopt});
    injection_queues_[source].push_back(id);
    trace_event(TraceEventKind::MessageCreated, source, kNoTile, id);
    return id;
}

void Network::crash_router(TileId tile) {
    SNOC_EXPECT(tile < routers_.size());
    routers_[tile].alive = false;
}

std::vector<std::size_t> Network::route_candidates(TileId t, TileId dst) const {
    // The wormhole router is fault-oblivious at the policy level (a dead
    // router refuses credits instead), so the policy sees no crash state.
    static const std::vector<bool> kNoDead;
    return policy_->candidates(topo_, t, kNoTile, dst, kNoDead);
}

TileId Network::port_neighbour(TileId t, std::size_t port) const {
    const auto& nbrs = topo_.neighbours(t);
    SNOC_EXPECT(port < nbrs.size());
    return nbrs[port];
}

using router::input_port_from;

std::size_t Network::downstream_space(TileId t, std::size_t out_port,
                                      std::size_t vc) const {
    const TileId next = port_neighbour(t, out_port);
    if (!routers_[next].alive) return 0; // a dead router accepts nothing
    const std::size_t in_port = input_port_from(topo_, next, t);
    const auto& buffer = routers_[next].in_vcs[in_port][vc].buffer;
    return config_.vc_buffer_flits - std::min(config_.vc_buffer_flits, buffer.size());
}

void Network::step() {
    // ---- Injection: one flit per tile per cycle into a local-port VC.
    for (TileId t = 0; t < topo_.node_count(); ++t) {
        if (!routers_[t].alive) continue;
        auto& st = inject_state_[t];
        auto& local_vcs = routers_[t].in_vcs[local_port(t)];
        if (st.packet) {
            // A worm is under construction: append its next flit when the
            // VC has space.
            auto& vc = local_vcs[st.vc];
            if (vc.buffer.size() < config_.vc_buffer_flits) {
                const bool is_tail = st.generated + 1 == config_.flits_per_packet;
                vc.buffer.push_back(
                    Flit{is_tail ? Flit::Kind::Tail : Flit::Kind::Body, *st.packet,
                         records_[*st.packet].destination});
                ++st.generated;
                if (is_tail) st.packet.reset();
            }
        } else if (!injection_queues_[t].empty()) {
            // Start a new worm on a free local VC (unreserved).
            for (std::size_t v = 0; v < local_vcs.size(); ++v) {
                auto& vc = local_vcs[v];
                if (vc.reserved_for) continue;
                const std::uint32_t id = injection_queues_[t].front();
                injection_queues_[t].pop_front();
                vc.buffer.push_back(
                    Flit{Flit::Kind::Head, id, records_[id].destination});
                vc.reserved_for = id;
                st.packet = id;
                st.generated = 1;
                st.vc = v;
                if (config_.flits_per_packet == 1) st.packet.reset();
                break;
            }
        }
    }

    // ---- Switch + VC allocation (decide phase).
    struct Move {
        TileId tile;
        std::size_t in_port, in_vc;
        bool eject{false};
        std::size_t out_port{0}, out_vc{0};
    };
    std::vector<Move> moves;
    // Reserve downstream space committed this cycle: key (tile, port, vc).
    auto space_key = [this](TileId t, std::size_t port, std::size_t vc) {
        return (static_cast<std::size_t>(t) * 8 + port) * config_.vcs_per_port + vc;
    };
    std::unordered_map<std::size_t, std::size_t> committed;
    for (TileId t = 0; t < topo_.node_count(); ++t) {
        auto& router = routers_[t];
        if (!router.alive) continue;
        const std::size_t ports = port_count(t);
        std::vector<bool> input_port_used(ports, false);
        const std::size_t outputs = topo_.neighbours(t).size() + 1; // + eject
        for (std::size_t out = 0; out < outputs; ++out) {
            const bool is_eject = out == outputs - 1;
            // The rotating arbiter scans the (input port, VC) slots; the
            // request predicate does the full route + VC + credit work,
            // and its side effects (downstream VC claims) deliberately
            // persist across a refusal — a worm keeps its reservation
            // while waiting for credits.
            arbiters_[t][out].grant([&](std::size_t slot) {
                const std::size_t in_port = slot / config_.vcs_per_port;
                const std::size_t in_vc = slot % config_.vcs_per_port;
                if (input_port_used[in_port]) return false;
                auto& vc = router.in_vcs[in_port][in_vc];
                if (vc.buffer.empty()) return false;
                const Flit& flit = vc.buffer.front();

                // Route + VC allocation for head flits: claim an
                // *unreserved* downstream VC exclusively for this worm,
                // trying each routing candidate in preference order (XY
                // has one; west-first may offer adaptive alternatives).
                if (flit.kind == Flit::Kind::Head && !vc.out_port) {
                    const auto candidates = route_candidates(t, flit.destination);
                    if (candidates.empty()) {
                        vc.out_port = outputs - 1; // eject
                        vc.out_vc = 0;
                    } else {
                        for (const std::size_t route : candidates) {
                            const TileId next = port_neighbour(t, route);
                            if (!routers_[next].alive) continue; // dead end
                            const std::size_t in_at_next =
                                input_port_from(topo_, next, t);
                            std::optional<std::size_t> chosen;
                            for (std::size_t v = 0; v < config_.vcs_per_port; ++v) {
                                if (!routers_[next]
                                         .in_vcs[in_at_next][v]
                                         .reserved_for) {
                                    chosen = v;
                                    break;
                                }
                            }
                            if (!chosen) continue; // all downstream VCs owned
                            routers_[next].in_vcs[in_at_next][*chosen].reserved_for =
                                flit.packet;
                            vc.out_port = route;
                            vc.out_vc = *chosen;
                            break;
                        }
                        if (!vc.out_port) return false; // nothing allocatable yet
                    }
                }
                if (!vc.out_port || *vc.out_port != out) return false;

                if (is_eject) {
                    moves.push_back({t, in_port, in_vc, true, 0, 0});
                } else {
                    const TileId next = port_neighbour(t, out);
                    const std::size_t in_at_next = input_port_from(topo_, next, t);
                    const std::size_t key = space_key(next, in_at_next, *vc.out_vc);
                    const std::size_t space = downstream_space(t, out, *vc.out_vc);
                    if (space <= committed[key]) return false; // no credit
                    ++committed[key];
                    moves.push_back({t, in_port, in_vc, false, out, *vc.out_vc});
                }
                input_port_used[in_port] = true;
                return true;
            });
        }
    }

    // ---- Apply phase.
    for (const auto& m : moves) {
        auto& vc = routers_[m.tile].in_vcs[m.in_port][m.in_vc];
        SNOC_ENSURE(!vc.buffer.empty());
        Flit flit = vc.buffer.front();
        vc.buffer.pop_front();
        const bool was_tail = flit.kind == Flit::Kind::Tail;
        if (m.eject) {
            if (was_tail) {
                auto& rec = records_[flit.packet];
                rec.delivered_cycle = cycle_;
                latencies_.add(static_cast<double>(cycle_ - rec.injected_cycle));
                ++delivered_;
                trace_event(TraceEventKind::Delivered, m.tile, kNoTile,
                            flit.packet);
            }
        } else {
            const TileId next = port_neighbour(m.tile, m.out_port);
            const std::size_t in_at_next = input_port_from(topo_, next, m.tile);
            routers_[next].in_vcs[in_at_next][m.out_vc].buffer.push_back(flit);
            ++flit_hops_;
            trace_event(TraceEventKind::Transmitted, m.tile, next, flit.packet);
        }
        if (was_tail) {
            // The worm has fully left this VC: release the route lock and
            // the VC's exclusive reservation.
            vc.out_port.reset();
            vc.out_vc.reset();
            vc.reserved_for.reset();
        }
    }

    ++cycle_;
}

void Network::run(std::size_t cycles) {
    for (std::size_t i = 0; i < cycles; ++i) step();
}

LoadPoint run_uniform_load(std::size_t side, const Config& config, double offered_load,
                           std::size_t warmup_cycles, std::size_t measure_cycles,
                           std::uint64_t seed) {
    SNOC_EXPECT(offered_load >= 0.0 && offered_load <= 1.0);
    Network net(side, side, config);
    RngStream rng(splitmix64(seed));
    const std::size_t tiles = side * side;
    const std::size_t total = warmup_cycles + measure_cycles;
    std::size_t injected_measured = 0;
    const double flit_load = offered_load / static_cast<double>(config.flits_per_packet);
    for (std::size_t c = 0; c < total; ++c) {
        for (TileId t = 0; t < tiles; ++t) {
            if (!rng.bernoulli(flit_load)) continue;
            auto dst = static_cast<TileId>(rng.below(tiles - 1));
            if (dst >= t) ++dst;
            net.inject(t, dst);
            if (c >= warmup_cycles) ++injected_measured;
        }
        net.step();
    }
    // Drain for a bounded horizon so late packets count.
    const std::size_t before_drain = net.delivered();
    (void)before_drain;
    net.run(4 * side * config.flits_per_packet + 200);

    LoadPoint point;
    point.offered_load = offered_load;
    if (!net.latencies().empty()) point.avg_latency = net.latencies().mean();
    point.throughput = static_cast<double>(net.delivered()) *
                       static_cast<double>(config.flits_per_packet) /
                       static_cast<double>(tiles) / static_cast<double>(total);
    point.delivered_fraction =
        net.injected() == 0
            ? 1.0
            : static_cast<double>(net.delivered()) / static_cast<double>(net.injected());
    return point;
}

} // namespace snoc::wormhole
