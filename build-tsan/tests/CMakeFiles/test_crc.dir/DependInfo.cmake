
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_crc.cpp" "tests/CMakeFiles/test_crc.dir/test_crc.cpp.o" "gcc" "tests/CMakeFiles/test_crc.dir/test_crc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/snoc_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/noc/CMakeFiles/snoc_noc.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fault/CMakeFiles/snoc_fault.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/snoc_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/snoc_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/energy/CMakeFiles/snoc_energy.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/bus/CMakeFiles/snoc_bus.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/apps/CMakeFiles/snoc_apps.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/diversity/CMakeFiles/snoc_diversity.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/wormhole/CMakeFiles/snoc_wormhole.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
