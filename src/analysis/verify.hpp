// Static deadlock/livelock verification of the router-policy registry
// (the snoc_verify CLI is a thin shell over this module; tests/test_verify
// exercises it directly).
//
// Every registered routing policy (SNOC_ROUTING_POLICY_LIST) is verified
// on every supported mesh size under every flow-control scheme
// (SNOC_FLOW_CONTROL_LIST), and every backend of the zoo
// (SNOC_BACKEND_KIND_LIST) receives a verdict — without running a single
// simulation round:
//
//   deadlock-free      the channel dependency graph is acyclic (cdg.hpp);
//                      the turn set cannot close a wait cycle.
//   deadlock-capable   the CDG has a cycle, reported as a concrete
//                      channel sequence.
//   livelock-bounded   deflection/adaptive policies trade the CDG
//                      obligation for a finite misroute budget: residence
//                      is bounded by max_hops (or TTL for gossip), so the
//                      scheme cannot circulate forever.
//   livelock-unbounded the escape was claimed without a finite budget.
//
// The verdict table is golden-checked (tests/golden/verify_registry.golden)
// so registering a BackendKind or PolicyKind without a verdict breaks the
// build, and the SARIF writer feeds the same CI gate as snoc_lint.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/interconnect.hpp"
#include "router/core.hpp"
#include "router/policy.hpp"

namespace snoc::analysis {

enum class Verdict : std::uint8_t {
    DeadlockFree,
    DeadlockCapable,
    LivelockBounded,
    LivelockUnbounded,
};

const char* to_string(Verdict v);

/// True for the verdicts a shipped configuration is allowed to carry.
constexpr bool verdict_ok(Verdict v) {
    return v == Verdict::DeadlockFree || v == Verdict::LivelockBounded;
}

/// One verified configuration: `subject` names it ("policy xy flow
/// cut-through mesh 5x5", "backend gossip"), `detail` carries the
/// evidence (CDG sizes, a concrete cycle, the livelock budget).
struct ConfigVerdict {
    std::string subject;
    Verdict verdict{Verdict::DeadlockFree};
    std::string detail;
};

/// How a policy discharges the deadlock obligation: turn-model policies
/// prove their CDG acyclic; misrouting policies (deflection's productive
/// set, fault-adaptive detours) are CDG-cyclic by design and must bound
/// livelock with a finite hop budget instead.
enum class PolicyObligation : std::uint8_t { AcyclicCdg, BoundedMisroute };

PolicyObligation obligation_for(router::PolicyKind kind);

/// The mesh sizes every registry verdict is computed on.
struct MeshShape {
    std::size_t width;
    std::size_t height;
};
const std::vector<MeshShape>& verified_meshes();

/// Verdict for one (policy, mesh, flow-control) cell.  CDG policies get
/// analyze_cdg; misroute policies get the budget check against
/// `misroute_budget` (0 = unbounded, the probe value).
ConfigVerdict verify_policy(router::PolicyKind kind, const MeshShape& mesh,
                            router::FlowControl flow,
                            std::size_t misroute_budget);

/// Verdict for one backend of the zoo (the per-BackendKind dispatch is a
/// default-free switch, so growing SNOC_BACKEND_KIND_LIST without a
/// verification plan is a compile-time -Wswitch complaint and a golden
/// mismatch).
ConfigVerdict verify_backend(BackendKind kind);

/// The full registry sweep: every policy x mesh x flow-control cell, then
/// every backend.  This is the exact content of
/// tests/golden/verify_registry.golden.
std::vector<ConfigVerdict> verify_registry();

/// The deliberately-broken probe verdicts (tests/verify_fixtures/):
/// "cyclic-turn" and "unbounded-deflection".  Throws ContractViolation on
/// an unknown probe name.
std::vector<ConfigVerdict> probe_verdicts(const std::string& name);

/// One line per verdict: "<subject>: <verdict> <detail>".
void write_report(const std::vector<ConfigVerdict>& verdicts, std::ostream& os);

/// SARIF 2.1.0 run for the verifier: one result per *violating* verdict
/// (deadlock-capable / livelock-unbounded), empty results when the
/// registry is clean — the shape scripts/merge_sarif.py folds into
/// snoc_lint's stream for the CI gate.
void write_sarif(const std::vector<ConfigVerdict>& verdicts, std::ostream& os);

} // namespace snoc::analysis
