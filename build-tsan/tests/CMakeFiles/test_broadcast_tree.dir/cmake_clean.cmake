file(REMOVE_RECURSE
  "CMakeFiles/test_broadcast_tree.dir/test_broadcast_tree.cpp.o"
  "CMakeFiles/test_broadcast_tree.dir/test_broadcast_tree.cpp.o.d"
  "test_broadcast_tree"
  "test_broadcast_tree.pdb"
  "test_broadcast_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_broadcast_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
