// Figure 4-6: stochastic NoC vs. a bus-based solution (Sec. 4.1.4).
//
// Same application traffic (Master-Slave pi), same 0.25um technology:
// tile link 381 MHz / 2.4e-10 J/bit, bus 43 MHz / 21.6e-10 J/bit.
// Three runs + average, as in the thesis.  Expected shape: the NoC's
// energy per useful bit lands near the bus's (within a small factor, the
// thesis reports +5%), while its latency is an order of magnitude better
// (the thesis reports 11x) — so the energy x delay product strongly
// favours the NoC (7e-12 vs 133e-12 J*s/bit in the thesis).
#include <iostream>

#include "bench_util.hpp"
#include "bus/bus.hpp"

int main(int argc, char** argv) {
    using namespace snoc;
    const auto opt = bench::options(argc, argv, 3);
    const auto tech = Technology::cmos_025um();
    const apps::PiDeployment deployment;
    auto trace = apps::pi_trace(deployment);
    const std::size_t useful = trace.useful_bits();
    // Fair framing: the bus carries the same packets (header + CRC), not
    // bare payloads.
    for (auto& phase : trace.phases)
        for (auto& m : phase.messages) m.bits += kWireOverheadBytes * 8;

    // TTL scaled to the spread bound of Sec. 3.1 (O(ln n) rounds, ln 25 ~
    // 3.2): the broadcast is stopped once the message has reached its
    // destination w.h.p., which is what keeps gossip's redundancy within
    // an order of magnitude of the bus (the knob the thesis turns when it
    // reports near-parity energy).
    constexpr std::uint16_t kTunedTtl = 8;

    Table table({"run", "latency [us]", "energy [J/bit]", "ExD [J*s/bit]"});

    // --- Stochastic NoC runs -------------------------------------------
    // The comparison runs the chip-is-healthy case (Sec. 4.1.4), so we
    // enable the Sec. 3.2.2 spread-stop optimisation and direct
    // addressing: a rumor stops being relayed once its destination has
    // it, which is what keeps gossip's energy in the bus's ballpark.
    // TTL-tuned gossip leaves a small per-run chance that a rumor dies
    // before reaching its destination; like the thesis we report
    // (averages over) completed runs — the runner's retry policy re-rolls
    // an incomplete run from a far-away seed, with a hard attempt cap
    // instead of the old unbounded `seed += 100` spin.
    ExperimentSpec spec;
    spec.name = "fig4_6 NoC";
    spec.repeats = opt.repeats;
    spec.base_seed = opt.seed;
    spec.jobs = opt.jobs;
    spec.max_attempts = 50;
    spec.retry_seed_stride = 100;
    spec.engine = bench::engine_select(opt);
    spec.trial = [&](const SweepPoint&, std::uint64_t seed) {
        auto config = bench::config_with_p(0.5, kTunedTtl);
        config.stop_spread_on_delivery = true;
        return bench::run_pi_once(config, FaultScenario::none(), 0, seed,
                                  /*duplicate_slaves=*/false, 3000,
                                  /*direct_addressing=*/true, nullptr, nullptr,
                                  spec.engine);
    };
    const auto cells = ScenarioRunner(spec).run();
    const auto& runs = cells.front().reports;

    Accumulator noc_lat, noc_energy_pb, noc_exd;
    std::size_t completed_runs = 0;
    for (std::size_t run = 0; run < runs.size(); ++run) {
        const RunReport& r = runs[run];
        if (!r.completed) continue; // cap exhausted; count below.
        ++completed_runs;
        // Eq. 2: T_R from the measured average packet size; a link carries
        // ~1 packet per round on average in this workload.
        const double s_bits = static_cast<double>(r.bits) /
                              std::max<std::size_t>(r.transmissions, 1);
        RoundTiming timing;
        timing.link_frequency_hz = tech.link_frequency_hz;
        timing.packet_bits = s_bits;
        const double latency_s =
            static_cast<double>(r.rounds) * timing.round_seconds();
        const double jpb = bench::joules_per_useful_bit(
            static_cast<double>(r.bits), useful);
        noc_lat.add(latency_s * 1e6);
        noc_energy_pb.add(jpb);
        noc_exd.add(jpb * latency_s);
        table.add_row({"NoC run " + std::to_string(run + 1),
                       format_number(latency_s * 1e6, 3), format_sci(jpb, 2),
                       format_sci(jpb * latency_s, 2)});
    }
    table.add_row({"NoC average", format_number(noc_lat.mean(), 3),
                   format_sci(noc_energy_pb.mean(), 2), format_sci(noc_exd.mean(), 2)});

    // --- Bus baseline ---------------------------------------------------
    BusAdapter bus(BusSpec{25, tech}, FaultScenario::none(), opt.seed);
    const auto bus_result = bus.run(trace, 0);
    const double bus_jpb = bus_result.joules / static_cast<double>(useful);
    table.add_row({"Bus", format_number(bus_result.seconds * 1e6, 3),
                   format_sci(bus_jpb, 2),
                   format_sci(bus_jpb * bus_result.seconds, 2)});

    bench::emit(table, opt, "Fig. 4-6: stochastic NoC vs bus-based solution");

    std::cout << "\nretry attempts per NoC run (cap " << spec.max_attempts << "):";
    for (const RunReport& r : runs) std::cout << ' ' << r.attempts;
    std::cout << " (" << completed_runs << '/' << runs.size() << " completed)\n";

    const double latency_gain = bus_result.seconds / (noc_lat.mean() * 1e-6);
    const double energy_ratio = noc_energy_pb.mean() / bus_jpb;
    const double exd_gain = (bus_jpb * bus_result.seconds) / noc_exd.mean();
    std::cout << "NoC latency advantage: " << format_number(latency_gain, 1)
              << "x (paper: ~11x)\n"
              << "NoC/bus energy-per-bit ratio: " << format_number(energy_ratio, 2)
              << " (paper: ~1.05)\n"
              << "energy x delay advantage: " << format_number(exd_gain, 1)
              << "x (paper: ~19x)\n";
    return latency_gain > 1.0 && completed_runs == runs.size() ? 0 : 1;
}
