// Spanning-tree broadcast — the deterministic lower bound for "reach
// every tile": exactly n-1 transmissions, latency = tree depth.  Its
// weakness is the thesis' whole point: a single dead tile prunes the
// entire subtree below it.  Used by the broadcast ablation to sandwich
// gossip between the optimal-but-fragile tree and wasteful flooding.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "core/metrics.hpp"
#include "fault/injector.hpp"
#include "noc/topology.hpp"
#include "sim/trace.hpp"

namespace snoc {

/// BFS spanning tree rooted at `root`: parent[t] (root's parent = root).
std::vector<TileId> spanning_tree(const Topology& topo, TileId root);

struct TreeBroadcastResult {
    std::size_t reached{0};        ///< tiles that received the broadcast.
    std::size_t transmissions{0};  ///< link messages spent.
    std::size_t depth{0};          ///< rounds (longest surviving path).
    /// Full shared-accounting histograms (rounds are tree depths; the one
    /// broadcast message is MessageId{root, 0}; the root counts as a
    /// delivery, so metrics.deliveries == reached).
    NetworkMetrics metrics;
};

/// Broadcast from `root` along the tree under a crash pattern: a message
/// crosses a tree edge only if both endpoints are alive, and subtrees
/// under a dead tile are lost.  Counters and events come from the shared
/// router-core accounting stage: attach `sink` to watch the broadcast as
/// MessageCreated / Transmitted / Delivered / CrashDrop events, and set
/// `bits` to the payload size to fill the bit-volume histograms.
TreeBroadcastResult tree_broadcast(const Topology& topo, TileId root,
                                   const CrashState& crashes,
                                   TraceSink* sink = nullptr,
                                   std::size_t bits = 0);

} // namespace snoc
