// Voltage/frequency islands (Ch. 5): per-tile clock scaling in the engine.
#include <memory>

#include <gtest/gtest.h>

#include "core/engine.hpp"

namespace snoc {
namespace {

class Chatter final : public IpCore {
public:
    explicit Chatter(std::uint16_t ttl = 1) : ttl_(ttl) {}
    void on_round(TileContext& ctx) override {
        ctx.send(kBroadcast, 0xC0, {std::byte{1}}, ttl_);
    }
    void on_message(const Message&, TileContext&) override {}

private:
    std::uint16_t ttl_;
};

class Echo final : public IpCore {
public:
    void on_message(const Message&, TileContext& ctx) override {
        rounds_.push_back(ctx.round());
    }
    const std::vector<Round>& rounds() const { return rounds_; }

private:
    std::vector<Round> rounds_;
};

GossipConfig flood() {
    GossipConfig c;
    c.forward_p = 1.0;
    c.default_ttl = 10;
    return c;
}

TEST(Islands, ScaleTwoTileActsEveryOtherRound) {
    // A chattering IP on a scale-2 tile emits in every second round only.
    GossipNetwork net(Topology::mesh(2, 2), flood(), FaultScenario::none(), 1);
    net.attach(0, std::make_unique<Chatter>());
    net.set_clock_scale(0, 2.0);
    for (int i = 0; i < 10; ++i) net.step();
    const auto& per_round = net.metrics().packets_per_round;
    // TTL 1 rumors die immediately, so transmissions happen exactly in the
    // tile's active rounds: 0, 2, 4, ...
    for (std::size_t r = 0; r < per_round.size(); ++r) {
        if (r % 2 == 0)
            EXPECT_GT(per_round[r], 0u) << "round " << r;
        else
            EXPECT_EQ(per_round[r], 0u) << "round " << r;
    }
}

TEST(Islands, FractionalScaleActsProportionally) {
    GossipNetwork net(Topology::mesh(2, 2), flood(), FaultScenario::none(), 2);
    net.attach(0, std::make_unique<Chatter>());
    net.set_clock_scale(0, 1.5);
    for (int i = 0; i < 30; ++i) net.step();
    std::size_t active = 0;
    for (auto n : net.metrics().packets_per_round)
        if (n > 0) ++active;
    // 30 rounds / 1.5 = 20 active rounds.
    EXPECT_NEAR(static_cast<double>(active), 20.0, 1.0);
}

TEST(Islands, ScaleBelowOneClampsToEveryRound) {
    GossipNetwork net(Topology::mesh(2, 2), flood(), FaultScenario::none(), 3);
    net.attach(0, std::make_unique<Chatter>());
    net.set_clock_scale(0, 0.25);
    for (int i = 0; i < 8; ++i) net.step();
    for (auto n : net.metrics().packets_per_round) EXPECT_GT(n, 0u);
}

TEST(Islands, SlowDestinationDefersDelivery) {
    // Message into a scale-4 island arrives only when that domain ticks.
    GossipNetwork fast(Topology::mesh(2, 2), flood(), FaultScenario::none(), 4);
    auto e1 = std::make_unique<Echo>();
    const Echo& echo_fast = *e1;
    fast.attach(0, std::make_unique<Chatter>(/*ttl=*/3));
    fast.attach(3, std::move(e1));
    for (int i = 0; i < 16; ++i) fast.step();

    GossipNetwork slow(Topology::mesh(2, 2), flood(), FaultScenario::none(), 4);
    auto e2 = std::make_unique<Echo>();
    const Echo& echo_slow = *e2;
    slow.attach(0, std::make_unique<Chatter>(/*ttl=*/3));
    slow.attach(3, std::move(e2));
    slow.set_clock_scale(3, 4.0);
    for (int i = 0; i < 16; ++i) slow.step();

    ASSERT_FALSE(echo_fast.rounds().empty());
    ASSERT_FALSE(echo_slow.rounds().empty());
    // The slow island receives fewer deliveries in the same wall time and
    // only in rounds congruent to its activity grid.
    EXPECT_LT(echo_slow.rounds().size(), echo_fast.rounds().size());
    for (Round r : echo_slow.rounds()) EXPECT_EQ(r % 4, 0u) << r;
}

TEST(Islands, SlowTileClockAdvancesByScaledDuration) {
    GossipNetwork net(Topology::mesh(2, 2), flood(), FaultScenario::none(), 5);
    net.set_clock_scale(0, 2.0);
    for (int i = 0; i < 8; ++i) net.step();
    // After 8 engine rounds: the scale-2 tile executed 4 rounds of 2*T_R
    // each, so its local time matches the fast tiles'.
    EXPECT_NEAR(net.elapsed_seconds(), 8.0 * net.config().timing.round_seconds(),
                1e-15);
}

TEST(Islands, PerTileBitAccounting) {
    GossipNetwork net(Topology::mesh(2, 2), flood(), FaultScenario::none(), 6);
    net.attach(0, std::make_unique<Chatter>());
    for (int i = 0; i < 5; ++i) net.step();
    const auto& by_tile = net.metrics().bits_sent_by_tile;
    ASSERT_EQ(by_tile.size(), 4u);
    std::size_t sum = 0;
    for (auto b : by_tile) sum += b;
    EXPECT_EQ(sum, net.metrics().bits_sent);
    EXPECT_GT(by_tile[0], 0u);
}

TEST(Islands, ConfigurationIsPreStartOnly) {
    GossipNetwork net(Topology::mesh(2, 2), flood(), FaultScenario::none(), 7);
    net.step();
    EXPECT_THROW(net.set_clock_scale(0, 2.0), ContractViolation);
}

TEST(Islands, RejectsNonPositiveScale) {
    GossipNetwork net(Topology::mesh(2, 2), flood(), FaultScenario::none(), 8);
    EXPECT_THROW(net.set_clock_scale(0, 0.0), ContractViolation);
    EXPECT_THROW(net.set_clock_scale(0, -1.0), ContractViolation);
}

} // namespace
} // namespace snoc
