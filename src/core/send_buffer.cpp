#include "core/send_buffer.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace snoc {

SendBuffer::SendBuffer(std::size_t capacity) : capacity_(capacity) {
    SNOC_EXPECT(capacity > 0);
}

bool SendBuffer::insert(Message message, MessageId* evicted) {
    if (known_.contains(message.id)) return false;
    if (messages_.size() == capacity_) {
        if (evicted) *evicted = messages_.front().id;
        messages_.erase(messages_.begin());
        ++overflow_drops_;
    }
    known_.insert(message.id);
    messages_.push_back(std::move(message));
    return true;
}

std::size_t SendBuffer::age_and_collect(std::vector<MessageId>* expired_ids) {
    for (auto& m : messages_) {
        // Per-message-per-round hot path: leveled so a SNOC_CHECK_LEVEL=0
        // build strips it (a TTL-0 entry here is a protocol bug — ageing
        // must never wrap around).
        SNOC_CHECK(1, m.ttl > 0);
        --m.ttl;
    }
    const auto first_dead = std::stable_partition(
        messages_.begin(), messages_.end(),
        [](const Message& m) { return m.ttl > 0; });
    const auto expired = static_cast<std::size_t>(messages_.end() - first_dead);
    if (expired_ids)
        for (auto it = first_dead; it != messages_.end(); ++it)
            expired_ids->push_back(it->id);
    messages_.erase(first_dead, messages_.end());
    return expired;
}

void SendBuffer::clear() {
    messages_.clear();
    known_.clear();
    overflow_drops_ = 0;
}

} // namespace snoc
