#include "core/analytic.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "common/stats.hpp"

namespace snoc {
namespace {

TEST(InformedCurve, StartsAtOneAndIsMonotone) {
    const auto curve = analytic::informed_curve(1000, 30);
    ASSERT_EQ(curve.size(), 31u);
    EXPECT_DOUBLE_EQ(curve[0], 1.0);
    for (std::size_t t = 1; t < curve.size(); ++t) {
        EXPECT_GT(curve[t], curve[t - 1]);
        EXPECT_LE(curve[t], 1000.0);
    }
}

TEST(InformedCurve, ConvergesToN) {
    const auto curve = analytic::informed_curve(1000, 40);
    EXPECT_NEAR(curve.back(), 1000.0, 1.0);
}

TEST(InformedCurve, EarlyGrowthIsExponential) {
    // While I << n the recurrence behaves like I(t+1) ~= 2 I(t).
    const auto curve = analytic::informed_curve(100000, 10);
    for (std::size_t t = 1; t <= 8; ++t) {
        const double ratio = curve[t] / curve[t - 1];
        EXPECT_GT(ratio, 1.8);
        EXPECT_LT(ratio, 2.0 + 1e-9);
    }
}

TEST(RoundsToReach, Fig31ThousandNodesUnderTwentyRounds) {
    // Fig. 3-1: "in less than 20 rounds, as many as 1000 nodes can be
    // reached".
    EXPECT_LT(analytic::rounds_to_reach(1000, 1.0), 20u);
    EXPECT_GE(analytic::rounds_to_reach(1000, 1.0), 10u);
}

TEST(RoundsToReach, HalfIsFasterThanAll) {
    EXPECT_LT(analytic::rounds_to_reach(1000, 0.5),
              analytic::rounds_to_reach(1000, 1.0));
}

TEST(RoundsToReach, RejectsBadFraction) {
    EXPECT_THROW(analytic::rounds_to_reach(10, 0.0), ContractViolation);
    EXPECT_THROW(analytic::rounds_to_reach(10, 1.5), ContractViolation);
}

TEST(Pittel, MatchesLogFormula) {
    EXPECT_NEAR(analytic::pittel_rounds(1000),
                std::log2(1000.0) + std::log(1000.0), 1e-12);
}

TEST(Pittel, TracksDeterministicModel) {
    // S_n = log2 n + ln n + O(1): the deterministic curve should finish
    // within a small constant of the formula.
    for (std::size_t n : {100u, 1000u, 10000u}) {
        const double predicted = analytic::pittel_rounds(n);
        const double simulated = static_cast<double>(analytic::rounds_to_reach(n, 1.0));
        EXPECT_NEAR(simulated, predicted, 4.0) << "n=" << n;
    }
}

TEST(PushGossip, InformsEveryoneQuickly) {
    RngStream rng(1);
    const auto curve = analytic::simulate_push_gossip(1000, rng);
    EXPECT_EQ(curve.front(), 1u);
    EXPECT_EQ(curve.back(), 1000u);
    EXPECT_LT(curve.size(), 25u); // < 25 rounds for n=1000
    for (std::size_t t = 1; t < curve.size(); ++t) EXPECT_GE(curve[t], curve[t - 1]);
}

TEST(PushGossip, MonteCarloMatchesDeterministicModel) {
    const std::size_t n = 1000;
    const auto model = analytic::informed_curve(n, 25);
    Accumulator err_at_10;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        RngStream rng(seed);
        auto curve = analytic::simulate_push_gossip(n, rng);
        curve.resize(26, n);
        err_at_10.add(static_cast<double>(curve[10]) - model[10]);
    }
    // Pittel: I(t) is close to its deterministic approximation w.h.p.
    EXPECT_LT(std::abs(err_at_10.mean()), 0.15 * model[10]);
}

TEST(PushGossip, TinyNetworkTerminates) {
    RngStream rng(3);
    const auto curve = analytic::simulate_push_gossip(2, rng);
    EXPECT_EQ(curve.back(), 2u);
    EXPECT_LE(curve.size(), 3u);
}

class GossipScaleSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GossipScaleSweep, SpreadIsLogarithmic) {
    // The defining scalability property: rounds grow ~ log n, so doubling
    // n adds only ~2 rounds under the deterministic model.
    const std::size_t n = GetParam();
    const auto r1 = analytic::rounds_to_reach(n, 1.0);
    const auto r2 = analytic::rounds_to_reach(2 * n, 1.0);
    EXPECT_GE(r2, r1);
    EXPECT_LE(r2 - r1, 3u);
}

INSTANTIATE_TEST_SUITE_P(Scales, GossipScaleSweep,
                         ::testing::Values(64, 256, 1024, 4096, 16384));

} // namespace
} // namespace snoc
