#include <atomic>
#include <cstdint>
// Two BAD relaxed sites (one untagged, one with a tag the ordering
// allowlist does not know) and one good one.
namespace snoc {
std::atomic<std::uint64_t> g_hits{0};
std::atomic<std::uint64_t> g_misses{0};
std::atomic<std::uint64_t> g_evictions{0};

void touch() {
    g_hits.fetch_add(1, std::memory_order_relaxed);
    g_misses.fetch_add(1, std::memory_order_relaxed); // relaxed[bogus-tag]
    g_evictions.fetch_add(1,
                          std::memory_order_relaxed); // relaxed[tally-counter]
}
} // namespace snoc
