#include "bus/broadcast_tree.hpp"

#include <gtest/gtest.h>

namespace snoc {
namespace {

CrashState none(const Topology& topo) {
    CrashState s;
    s.dead_tiles.assign(topo.node_count(), false);
    s.dead_links.assign(topo.link_count(), false);
    return s;
}

TEST(SpanningTree, CoversEveryTileExactlyOnce) {
    const auto topo = Topology::mesh(4, 4);
    const auto parent = spanning_tree(topo, 5);
    EXPECT_EQ(parent[5], 5u);
    for (TileId t = 0; t < 16; ++t) {
        ASSERT_NE(parent[t], kNoTile) << t;
        if (t != 5) {
            // Parent is a real mesh neighbour.
            EXPECT_EQ(topo.manhattan(t, parent[t]), 1u) << t;
        }
    }
}

TEST(SpanningTree, PathsLeadToRoot) {
    const auto topo = Topology::mesh(5, 5);
    const auto parent = spanning_tree(topo, 12);
    for (TileId t = 0; t < 25; ++t) {
        TileId cur = t;
        int hops = 0;
        while (cur != 12 && hops < 30) {
            cur = parent[cur];
            ++hops;
        }
        EXPECT_EQ(cur, 12u) << "tile " << t;
        // BFS tree: hop count equals Manhattan distance to the root.
        EXPECT_EQ(static_cast<std::size_t>(hops), topo.manhattan(t, 12)) << t;
    }
}

TEST(TreeBroadcast, FaultFreeIsOptimal) {
    const auto topo = Topology::mesh(4, 4);
    const auto r = tree_broadcast(topo, 5, none(topo));
    EXPECT_EQ(r.reached, 16u);
    EXPECT_EQ(r.transmissions, 15u); // exactly n - 1
    // Depth equals the root's eccentricity (tile 5 on a 4x4: 4).
    EXPECT_EQ(r.depth, 4u);
}

TEST(TreeBroadcast, DeadTilePrunesItsSubtree) {
    const auto topo = Topology::mesh(4, 4);
    auto crashes = none(topo);
    crashes.dead_tiles[1] = true; // child of root 5 in the BFS tree
    const auto r = tree_broadcast(topo, 5, crashes);
    EXPECT_LT(r.reached, 16u);
    // The dead tile and everything routed through it are lost.
    EXPECT_GE(16u - r.reached, 1u);
}

TEST(TreeBroadcast, DeadRootReachesNobody) {
    const auto topo = Topology::mesh(4, 4);
    auto crashes = none(topo);
    crashes.dead_tiles[5] = true;
    const auto r = tree_broadcast(topo, 5, crashes);
    EXPECT_EQ(r.reached, 0u);
    EXPECT_EQ(r.transmissions, 0u);
}

TEST(TreeBroadcast, SharedAccountingEmitsTraceAndHistograms) {
    const auto topo = Topology::mesh(4, 4);
    auto crashes = none(topo);
    crashes.dead_tiles[10] = true;
    RingBufferSink sink(1024);
    const auto r = tree_broadcast(topo, 0, crashes, &sink, 64);
    EXPECT_EQ(r.metrics.deliveries, r.reached);
    EXPECT_EQ(r.metrics.packets_sent, r.transmissions);
    EXPECT_EQ(r.metrics.messages_created, 1u);
    EXPECT_EQ(r.metrics.crash_drops, 1u);
    EXPECT_EQ(r.metrics.bits_sent, 64u * r.transmissions);
    std::size_t transmitted = 0, delivered = 0, drops = 0;
    for (const auto& e : sink.events()) {
        if (e.kind == TraceEventKind::Transmitted) ++transmitted;
        if (e.kind == TraceEventKind::Delivered) ++delivered;
        if (e.kind == TraceEventKind::CrashDrop) ++drops;
        EXPECT_EQ(e.message.origin, 0u);
    }
    EXPECT_EQ(transmitted, r.transmissions);
    EXPECT_EQ(delivered, r.reached);
    EXPECT_EQ(drops, 1u);
    // Per-link histogram sums back to the transmission count.
    std::size_t by_link = 0;
    for (const auto c : r.metrics.packets_by_link) by_link += c;
    EXPECT_EQ(by_link, r.transmissions);
}

TEST(TreeBroadcast, LossGrowsWithCrashCount) {
    const auto topo = Topology::mesh(5, 5);
    RngPool pool(3);
    FaultInjector inj(FaultScenario::none(), pool);
    std::size_t reached_1 = 0, reached_6 = 0;
    for (int trial = 0; trial < 20; ++trial) {
        reached_1 += tree_broadcast(topo, 12,
                                    inj.roll_exact_tile_crashes(topo, 1, {12}))
                         .reached;
        reached_6 += tree_broadcast(topo, 12,
                                    inj.roll_exact_tile_crashes(topo, 6, {12}))
                         .reached;
    }
    EXPECT_GT(reached_1, reached_6);
}

} // namespace
} // namespace snoc
