// Structured event tracing — the simulator's flight recorder.
//
// The engine emits one TraceEvent per interesting happening (creation,
// transmission, delivery, each drop cause, TTL expiry, skew deferral);
// sinks decide what to do with them: count, keep the last N for post-
// mortems, or stream human-readable lines.  Tracing is off unless a sink
// is attached, and sinks are engine-agnostic (pure data in, no calls
// back), so they cannot perturb a simulation.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace snoc {

enum class TraceEventKind : std::uint8_t {
    MessageCreated,
    Transmitted,
    Delivered,
    CrcDrop,
    FecUncorrectable,
    OverflowDrop,
    DuplicateIgnored,
    TtlExpired,
    SkewDeferral,
};

inline constexpr std::size_t kTraceEventKinds = 9;

constexpr const char* to_string(TraceEventKind k) {
    switch (k) {
    case TraceEventKind::MessageCreated: return "created";
    case TraceEventKind::Transmitted: return "transmitted";
    case TraceEventKind::Delivered: return "delivered";
    case TraceEventKind::CrcDrop: return "crc-drop";
    case TraceEventKind::FecUncorrectable: return "fec-drop";
    case TraceEventKind::OverflowDrop: return "overflow-drop";
    case TraceEventKind::DuplicateIgnored: return "duplicate";
    case TraceEventKind::TtlExpired: return "ttl-expired";
    case TraceEventKind::SkewDeferral: return "skew-deferral";
    }
    return "?";
}

struct TraceEvent {
    Round round{0};
    TraceEventKind kind{TraceEventKind::MessageCreated};
    TileId tile{0};          ///< where it happened.
    TileId peer{kNoTile};    ///< other endpoint (transmissions), if any.
    /// Rumor identity when known; origin == kNoTile means "no message"
    /// (e.g. a CRC drop, where the id was unreadable by definition).
    MessageId message{kNoTile, 0};
};

class TraceSink {
public:
    virtual ~TraceSink() = default;
    virtual void record(const TraceEvent& event) = 0;
};

/// Per-kind counters.
class CountingSink final : public TraceSink {
public:
    void record(const TraceEvent& event) override;
    std::size_t count(TraceEventKind kind) const;
    std::size_t total() const;

private:
    std::size_t counts_[kTraceEventKinds] = {};
};

/// Keeps the newest `capacity` events (post-mortem flight recorder).
class RingBufferSink final : public TraceSink {
public:
    explicit RingBufferSink(std::size_t capacity);
    void record(const TraceEvent& event) override;
    const std::deque<TraceEvent>& events() const { return events_; }
    std::size_t dropped() const { return dropped_; }

private:
    std::size_t capacity_;
    std::deque<TraceEvent> events_;
    std::size_t dropped_{0};
};

/// Streams one formatted line per event.
class StreamSink final : public TraceSink {
public:
    explicit StreamSink(std::ostream& os) : os_(os) {}
    void record(const TraceEvent& event) override;

private:
    std::ostream& os_;
};

/// "r12 transmitted tile 5 -> 6 msg (5,0)" style formatting.
std::string format_event(const TraceEvent& event);

/// Fan-out to several sinks.
class TeeSink final : public TraceSink {
public:
    void add(TraceSink* sink);
    void record(const TraceEvent& event) override;

private:
    std::vector<TraceSink*> sinks_;
};

} // namespace snoc
