// Seeded stress tests for the contended corners of the packet-switched
// zoo (ctest label: router).
//
// Two hazards the unit tests cannot reach at light load:
//
//  * Livelock — a bufferless deflection network under full injection
//    misroutes constantly; the hop budget must bound every packet's
//    wandering, and the drop taxonomy must account for every casualty.
//
//  * Starvation — a rotating arbiter at a saturated switch must grant
//    every persistent requester within (slots - 1) other grants, or a
//    corner flow can be locked out forever by the scan order.
//
// Both run under the InvariantAuditor: a stress test that only checks
// its own assertion would miss the conservation laws bending.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "bus/deflection.hpp"
#include "check/invariant_auditor.hpp"
#include "core/engine.hpp"
#include "router/arbiter.hpp"
#include "router/core.hpp"
#include "sim/backends.hpp"

namespace snoc {
namespace {

// --- The arbiter itself, saturated --------------------------------------

TEST(ArbiterStarvation, SaturatedScanIsRoundRobin) {
    router::RotatingArbiter arb(6);
    const std::vector<bool> all(6, true);
    // Any window of 6 consecutive grants under full request pressure must
    // hit each slot exactly once.
    for (int round = 0; round < 5; ++round) {
        std::vector<std::size_t> before(6);
        for (std::size_t s = 0; s < 6; ++s) before[s] = arb.grants(s);
        for (int i = 0; i < 6; ++i) ASSERT_TRUE(arb.grant(all).has_value());
        for (std::size_t s = 0; s < 6; ++s)
            EXPECT_EQ(arb.grants(s), before[s] + 1) << "slot " << s;
    }
}

TEST(ArbiterStarvation, PersistentRequesterWaitsAtMostSlotsGrants) {
    // Slot 2 requests forever; the other slots request on an adversarial
    // pattern (every subset the 3-bit counter enumerates).  Between any
    // two grants to slot 2 there can be at most slots-1 other grants.
    router::RotatingArbiter arb(4);
    std::size_t since_last = 0;
    for (std::uint32_t t = 0; t < 200; ++t) {
        std::vector<bool> req(4, false);
        req[2] = true;
        req[0] = (t & 1u) != 0;
        req[1] = (t & 2u) != 0;
        req[3] = (t & 4u) != 0;
        const auto winner = arb.grant(req);
        ASSERT_TRUE(winner.has_value());
        if (*winner == 2) {
            since_last = 0;
        } else {
            ++since_last;
            EXPECT_LT(since_last, 4u) << "slot 2 starved at t=" << t;
        }
    }
    EXPECT_GE(arb.grants(2), 200u / 4u);
}

// --- Deflection under full injection ------------------------------------

// Deterministic all-to-all pattern: tile t's k-th packet heads for a
// tile derived from (t, k) — full injection without an RNG in the test.
TileId scatter_destination(TileId t, std::size_t wave, std::size_t tiles) {
    return static_cast<TileId>((t * 7 + wave * 11 + 5) % tiles);
}

TEST(DeflectionStress, HopBudgetBoundsEveryPacketUnderFullInjection) {
    constexpr std::size_t kSide = 5;
    constexpr std::size_t kTiles = kSide * kSide;
    constexpr std::size_t kWaves = 30;
    deflection::Config config;
    config.max_hops = 96; // tight enough that livelock guard actually fires.
    deflection::Network net(kSide, kSide, config, /*seed=*/17);

    std::size_t injected = 0;
    for (std::size_t wave = 0; wave < kWaves; ++wave) {
        // Full injection: every tile offers a packet every cycle.
        for (TileId t = 0; t < kTiles; ++t) {
            const TileId dst = scatter_destination(t, wave, kTiles);
            if (dst == t) continue;
            net.inject(t, dst);
            ++injected;
        }
        net.step();
    }
    std::size_t guard = 0;
    while (net.in_flight() > 0 && guard++ < 100000) net.step();
    ASSERT_EQ(net.in_flight(), 0u) << "network failed to drain";

    // The livelock guard: no packet ever exceeds the hop budget, and
    // every record has exactly one fate.
    std::size_t max_hops_seen = 0;
    for (const auto& rec : net.records()) {
        EXPECT_LE(rec.hops, config.max_hops) << "packet " << rec.id;
        EXPECT_NE(rec.delivered_cycle.has_value(), rec.dropped)
            << "packet " << rec.id;
        max_hops_seen = std::max(max_hops_seen, rec.hops);
    }
    EXPECT_EQ(net.delivered() + net.dropped(), injected);
    // At this load deflections are guaranteed: somebody wandered well
    // past the 8-hop mesh diameter (else the test isn't stressing).
    EXPECT_GT(max_hops_seen, 2 * (kSide - 1));
    EXPECT_GT(net.delivered(), injected / 2) << "mostly livelocked";
}

TEST(DeflectionStress, AdapterStaysAuditCleanUnderHeavyLoad) {
    // The same flood through the adapter stack, with the auditor watching
    // the report-level conservation laws.
    TrafficTrace trace;
    for (std::size_t wave = 0; wave < 8; ++wave) {
        TrafficPhase phase;
        for (TileId t = 0; t < 25; ++t) {
            const TileId dst = scatter_destination(t, wave, 25);
            if (dst != t) phase.messages.push_back({t, dst, 256});
        }
        trace.phases.push_back(phase);
    }
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
        check::InvariantAuditor auditor;
        DeflectionAdapter adapter(DeflectionSpec{}, FaultScenario::none(), seed);
        adapter.set_auditor(&auditor);
        const RunReport report = adapter.run(trace, 100000);
        EXPECT_TRUE(report.completed) << seed;
        EXPECT_EQ(report.deliveries, trace.message_count()) << seed;
        EXPECT_TRUE(auditor.clean()) << seed << ": " << auditor.summary();
    }
}

// --- The layered router core under full injection ------------------------

TEST(RouterStress, FullInjectionDrainsWithNoStarvation) {
    for (const router::FlowControl flow :
         {router::FlowControl::StoreAndForward, router::FlowControl::CutThrough}) {
        router::RouterConfig config;
        config.flow = flow;
        config.max_hops = 64;
        router::RouterCore core(Topology::mesh(5, 5), config);

        std::size_t injected = 0;
        for (std::size_t wave = 0; wave < 6; ++wave) {
            for (TileId t = 0; t < 25; ++t) {
                const TileId dst = scatter_destination(t, wave, 25);
                if (dst == t) continue;
                core.inject(t, dst, 256);
                ++injected;
            }
        }
        std::size_t guard = 0;
        while (!core.idle() && guard++ < 100000) core.step();
        ASSERT_TRUE(core.idle()) << to_string(flow) << ": failed to drain";

        // Buffered dimension-order routing never misroutes, so the hop
        // budget is irrelevant and contention may only delay: starvation
        // freedom means *every* packet is delivered, from every tile.
        EXPECT_EQ(core.delivered(), injected) << to_string(flow);
        EXPECT_EQ(core.dropped(), 0u) << to_string(flow);
        for (const auto& rec : core.records())
            EXPECT_TRUE(rec.delivered_cycle.has_value())
                << to_string(flow) << " packet " << rec.id << " from "
                << rec.source << " starved";

        check::InvariantAuditor auditor;
        auditor.check_router(core);
        EXPECT_TRUE(auditor.clean()) << to_string(flow) << ": "
                                     << auditor.summary();

        // Fairness observable: at the centre tile every input port that
        // carried traffic won its share of grants somewhere.
        const TileId centre = 12;
        std::size_t centre_grants = 0;
        for (std::size_t out = 0; out < 5; ++out)
            for (std::size_t slot = 0; slot < 5; ++slot)
                centre_grants += core.arbiter(centre, out).grants(slot);
        EXPECT_GT(centre_grants, 0u) << to_string(flow);
    }
}

} // namespace
} // namespace snoc
