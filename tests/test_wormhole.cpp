#include "wormhole/router.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "common/rng.hpp"

namespace snoc::wormhole {
namespace {

Config small_config() {
    Config c;
    c.vcs_per_port = 2;
    c.vc_buffer_flits = 4;
    c.flits_per_packet = 5;
    return c;
}

TEST(WormholeConfig, Validation) {
    Config c = small_config();
    c.vcs_per_port = 0;
    EXPECT_THROW(c.validate(), ContractViolation);
    c = small_config();
    c.vc_buffer_flits = 1;
    EXPECT_THROW(c.validate(), ContractViolation);
    c = small_config();
    c.flits_per_packet = 1;
    EXPECT_THROW(c.validate(), ContractViolation);
}

TEST(Wormhole, SinglePacketIsDelivered) {
    Network net(4, 4, small_config());
    net.inject(0, 15);
    net.run(200);
    EXPECT_EQ(net.delivered(), 1u);
    EXPECT_EQ(net.outstanding(), 0u);
    ASSERT_TRUE(net.records()[0].delivered_cycle.has_value());
}

TEST(Wormhole, LowLoadLatencyIsHopsPlusSerialization) {
    // One lonely packet: latency ~ hops (switching) + flits (serialisation)
    // + injection/ejection overhead.
    Network net(4, 4, small_config());
    net.inject(0, 15); // 6 hops
    net.run(200);
    const double latency = net.latencies().mean();
    EXPECT_GE(latency, 6.0 + 5.0 - 1.0);
    EXPECT_LE(latency, 6.0 + 5.0 + 10.0);
}

TEST(Wormhole, AdjacentTilesAreFast) {
    Network net(4, 4, small_config());
    net.inject(5, 6);
    net.run(100);
    ASSERT_EQ(net.delivered(), 1u);
    EXPECT_LE(net.latencies().mean(), 12.0);
}

TEST(Wormhole, ManyPacketsAllDelivered) {
    Network net(4, 4, small_config());
    for (TileId src = 0; src < 16; ++src)
        for (TileId dst = 0; dst < 16; ++dst)
            if (src != dst) net.inject(src, dst);
    net.run(5000);
    EXPECT_EQ(net.delivered(), 16u * 15u);
    EXPECT_EQ(net.outstanding(), 0u);
}

TEST(Wormhole, SelfInjectionRejected) {
    Network net(4, 4, small_config());
    EXPECT_THROW(net.inject(3, 3), ContractViolation);
}

TEST(Wormhole, ContentionIncreasesLatency) {
    // Everyone hammers tile 0: serialisation at the hotspot.
    Network quiet(4, 4, small_config());
    quiet.inject(15, 0);
    quiet.run(300);

    Network busy(4, 4, small_config());
    for (TileId src = 1; src < 16; ++src) busy.inject(src, 0);
    busy.run(2000);
    ASSERT_EQ(busy.delivered(), 15u);
    EXPECT_GT(busy.latencies().max(), quiet.latencies().mean() * 2);
}

TEST(Wormhole, DeadRouterBlocksWormsForever) {
    // The Ch. 1 claim, at flit granularity: a packet whose XY path crosses
    // a dead router never arrives; everything else still flows.
    Network net(4, 4, small_config());
    net.crash_router(5);
    net.inject(4, 6);  // XY path 4 -> 5 -> 6 crosses the corpse
    net.inject(0, 12); // column 0: unaffected
    net.run(1000);
    EXPECT_EQ(net.delivered(), 1u);
    EXPECT_EQ(net.outstanding(), 1u);
    EXPECT_TRUE(net.records()[1].delivered_cycle.has_value());
    EXPECT_FALSE(net.records()[0].delivered_cycle.has_value());
}

TEST(Wormhole, BlockedWormBacksUpTheLink) {
    // Head-of-line blocking: a worm stuck behind a dead router clogs its
    // VC; with both VCs of the path saturated, later packets on the same
    // route stall too (they deliver 0 of 4).
    Network net(4, 4, small_config());
    net.crash_router(6);
    for (int i = 0; i < 4; ++i) net.inject(4, 7); // all cross dead tile 6
    net.run(2000);
    EXPECT_EQ(net.delivered(), 0u);
    EXPECT_EQ(net.outstanding(), 4u);
}

TEST(Wormhole, XyAvoidsDeadlockUnderRandomTraffic) {
    // Dimension-ordered routing is deadlock-free: under sustained random
    // load everything injected eventually drains.
    Config c = small_config();
    Network net(4, 4, c);
    RngStream rng(3);
    for (std::size_t cycle = 0; cycle < 600; ++cycle) {
        for (TileId t = 0; t < 16; ++t) {
            if (rng.bernoulli(0.05)) {
                auto dst = static_cast<TileId>(rng.below(15));
                if (dst >= t) ++dst;
                net.inject(t, dst);
            }
        }
        net.step();
    }
    net.run(3000);
    EXPECT_EQ(net.outstanding(), 0u);
    EXPECT_GT(net.delivered(), 100u);
}

TEST(Wormhole, SaturationCurveShape) {
    // Latency grows with offered load; throughput saturates below 1.
    const auto low = run_uniform_load(4, small_config(), 0.02, 200, 600, 1);
    const auto high = run_uniform_load(4, small_config(), 0.5, 200, 600, 1);
    EXPECT_GT(low.delivered_fraction, 0.95);
    EXPECT_GT(high.avg_latency, low.avg_latency);
    EXPECT_GE(high.throughput, low.throughput * 0.9);
    EXPECT_LT(high.throughput, 1.0);
}

TEST(WormholeWestFirst, DeliversWhereXyIsBlocked) {
    // src (0,1) -> dst (3,2) with tile (1,1) dead: XY's fixed path 4 -> 5
    // dies; west-first adaptively picks the southward minimal hop.
    Config xy = small_config();
    Network blocked(4, 4, xy);
    blocked.crash_router(5);
    blocked.inject(4, 11);
    blocked.run(600);
    EXPECT_EQ(blocked.delivered(), 0u);

    Config wf = small_config();
    wf.routing = Routing::WestFirst;
    Network adaptive(4, 4, wf);
    adaptive.crash_router(5);
    adaptive.inject(4, 11);
    adaptive.run(600);
    EXPECT_EQ(adaptive.delivered(), 1u);
}

TEST(WormholeWestFirst, WestwardTrafficIsStillDeterministic) {
    // Destination strictly west: only the west port is legal, so a dead
    // tile on that row still blocks (the turn-model's price).
    Config wf = small_config();
    wf.routing = Routing::WestFirst;
    Network net(4, 4, wf);
    net.crash_router(5);
    net.inject(7, 4); // (3,1) -> (0,1): pure westward, through dead (1,1)
    net.run(600);
    EXPECT_EQ(net.delivered(), 0u);
}

TEST(WormholeWestFirst, FaultFreeBehaviourMatchesXyLatency) {
    for (auto routing : {Routing::Xy, Routing::WestFirst}) {
        Config c = small_config();
        c.routing = routing;
        Network net(4, 4, c);
        net.inject(0, 15);
        net.run(200);
        ASSERT_EQ(net.delivered(), 1u) << to_string(routing);
        EXPECT_LE(net.latencies().mean(), 6.0 + 5.0 + 10.0) << to_string(routing);
    }
}

TEST(WormholeWestFirst, RandomTrafficDrainsDeadlockFree) {
    // Glass-Ni west-first is deadlock-free; sustained random load drains.
    Config c = small_config();
    c.routing = Routing::WestFirst;
    Network net(4, 4, c);
    RngStream rng(9);
    for (std::size_t cycle = 0; cycle < 600; ++cycle) {
        for (TileId t = 0; t < 16; ++t) {
            if (rng.bernoulli(0.05)) {
                auto dst = static_cast<TileId>(rng.below(15));
                if (dst >= t) ++dst;
                net.inject(t, dst);
            }
        }
        net.step();
    }
    net.run(3000);
    EXPECT_EQ(net.outstanding(), 0u);
}

TEST(Wormhole, SingleFlitTransferPerLinkPerCycle) {
    // Throughput on one link is bounded: two tiles exchanging a long
    // stream deliver at most one flit per cycle.
    Config c = small_config();
    Network net(2, 1, c);
    for (int i = 0; i < 20; ++i) net.inject(0, 1);
    net.run(400);
    EXPECT_EQ(net.delivered(), 20u);
    // 20 packets * 5 flits = 100 flits over >= 100 cycles of link time.
    const auto& last = net.records().back();
    EXPECT_GE(*last.delivered_cycle, 100u);
}

} // namespace
} // namespace snoc::wormhole
