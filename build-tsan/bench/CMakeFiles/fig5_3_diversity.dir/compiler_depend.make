# Empty compiler generated dependencies file for fig5_3_diversity.
# This may be replaced when dependencies are built.
