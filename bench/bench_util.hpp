// Shared harness pieces for the figure-regeneration benches.
//
// Every bench prints (a) the figure/table it regenerates, (b) an aligned
// ASCII table with the same rows/series the thesis plots, and (c) the same
// table as CSV (--csv) or JSON (--json) on request, for replotting.
// Flag parsing lives in common/cli.hpp (BenchOptions); sweep/repeat/retry
// execution lives in sim/scenario.hpp (ScenarioRunner); this header only
// keeps the two case-study app deployments and the Eq. 3 shortcut.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "apps/fft2d_app.hpp"
#include "apps/master_slave_pi.hpp"
#include "check/invariant_auditor.hpp"
#include "common/cli.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"
#include "energy/energy.hpp"
#include "sim/backends.hpp"
#include "sim/scenario.hpp"
#include "telemetry/prof.hpp"

namespace snoc::bench {

namespace detail {
/// --prof-out destination for the atexit hook (std::atexit takes a plain
/// function pointer, so the path rides in a function-local static).
inline std::string& prof_out_path() {
    static std::string path;
    return path;
}
} // namespace detail

/// Parse the uniform bench flag set (--csv/--json/--repeats/--jobs/--seed
/// plus the telemetry exports and --prof/--prof-out).  --prof arms the
/// SNOC_PROF wall-clock scopes and prints the merged per-phase profile to
/// stderr at exit; --prof-out additionally dumps the deterministic
/// "snoc-prof-v1" JSON snapshot to the given path (run manifests record
/// the path under prof_out) — the hooks live here rather than in cli.cpp
/// because snoc_common sits below the telemetry layer.
inline BenchOptions options(int argc, char** argv, std::size_t default_repeats = 1) {
    BenchOptions parsed = parse_bench_options(argc, argv, default_repeats);
    if (parsed.prof) {
        prof::set_enabled(true);
        std::atexit([] { std::cerr << prof::report(); });
        if (!parsed.prof_out.empty()) {
            detail::prof_out_path() = parsed.prof_out;
            std::atexit(
                [] { prof::write_json_report(detail::prof_out_path()); });
        }
    }
    return parsed;
}

/// The EngineSelect a bench should hand to GossipNetwork / GossipSpec /
/// ExperimentSpec: the --engine kind, with `shards` intra-trial tile
/// strips.  Benches that fan out repeats across --jobs keep the default
/// single shard (trial parallelism already fills the pool); single-trial
/// scaling runs pass their own shard count.
inline EngineSelect engine_select(const BenchOptions& options,
                                  std::size_t shards = 1) {
    return EngineSelect{options.engine, shards};
}

/// Insert a tag before each export path's extension ("run.jsonl" ->
/// "run_fft.jsonl") — benches that run several sweeps off one flag set use
/// this to keep the sweeps' artifacts apart.
inline TelemetryOptions tag_telemetry(const TelemetryOptions& options,
                                      const std::string& tag) {
    const auto add = [&tag](std::string path) {
        if (path.empty()) return path;
        const auto dot = path.find_last_of('.');
        if (dot == std::string::npos) return path + tag;
        return path.substr(0, dot) + tag + path.substr(dot);
    };
    TelemetryOptions out = options;
    out.trace_jsonl_out = add(out.trace_jsonl_out);
    out.chrome_out = add(out.chrome_out);
    out.heatmap_out = add(out.heatmap_out);
    return out;
}

inline void emit(const Table& table, const BenchOptions& options,
                 const std::string& caption) {
    std::cout << "\n== " << caption << " ==\n";
    if (options.json)
        table.print_json(std::cout);
    else if (options.csv)
        table.print_csv(std::cout);
    else
        table.print(std::cout);
}

inline GossipConfig config_with_p(double p, std::uint16_t ttl = 30) {
    GossipConfig c;
    c.forward_p = p;
    c.default_ttl = ttl;
    return c;
}

/// Master-Slave pi on a 5x5 mesh (Fig. 4-2 deployment), through the
/// unified GossipAdapter.  Latency is the completion round; packets/bits
/// include the post-completion TTL drain (the energy keeps burning until
/// every rumor dies).  Pass an InvariantAuditor (src/check/) to have the
/// run conservation-audited per round — tests/test_check.cpp does.
inline RunReport run_pi_once(const GossipConfig& config, const FaultScenario& scenario,
                             std::size_t exact_tile_crashes, std::uint64_t seed,
                             bool duplicate_slaves = true, Round max_rounds = 3000,
                             bool direct_addressing = false,
                             check::InvariantAuditor* auditor = nullptr,
                             TraceSink* sink = nullptr,
                             EngineSelect engine = {}) {
    GossipSpec spec;
    spec.topology = Topology::mesh(5, 5);
    spec.config = config;
    spec.exact_tile_crashes = exact_tile_crashes;
    spec.drain = true;
    spec.engine = engine;
    GossipAdapter net(std::move(spec), scenario, seed);
    net.set_auditor(auditor);
    net.set_trace_sink(sink);
    apps::PiDeployment d;
    d.duplicate_slaves = duplicate_slaves;
    d.direct_addressing = direct_addressing;
    auto& master = apps::deploy_pi(net.network(), d);
    net.network().protect(d.master_tile);
    if (duplicate_slaves) {
        // With replication, protecting one copy of each task keeps the
        // workload well-defined while the other copy may crash.
        for (TileId t : {6u, 7u, 8u, 11u, 13u, 16u, 17u, 18u}) net.network().protect(t);
    }
    return net.run_until([&master] { return master.done(); }, max_rounds);
}

/// Parallel 2-D FFT on a 4x4 mesh (Fig. 4-3 deployment).
inline RunReport run_fft_once(const GossipConfig& config, const FaultScenario& scenario,
                              std::size_t exact_tile_crashes, std::uint64_t seed,
                              Round max_rounds = 3000,
                              check::InvariantAuditor* auditor = nullptr,
                              TraceSink* sink = nullptr,
                              EngineSelect engine = {}) {
    GossipSpec spec;
    spec.topology = Topology::mesh(4, 4);
    spec.config = config;
    spec.exact_tile_crashes = exact_tile_crashes;
    spec.drain = true;
    spec.engine = engine;
    GossipAdapter net(std::move(spec), scenario, seed);
    net.set_auditor(auditor);
    net.set_trace_sink(sink);
    apps::FftDeployment d;
    d.duplicate_workers = true;
    auto& root = apps::deploy_fft2d(net.network(), d, seed + 1);
    net.network().protect(d.root_tile);
    for (TileId t : d.worker_tiles) net.network().protect(t);
    return net.run_until([&root] { return root.done(); }, max_rounds);
}

/// Average a RunReport-producing callable over seeds 0..repeats-1, fanning
/// the independent trials across `jobs` worker threads (0 = default; see
/// common/parallel.hpp).  `run_one(seed)` must derive all randomness from
/// its seed argument — the results are bit-identical for any job count.
/// (Sweeps should prefer ScenarioRunner; this remains for one-off cells.)
template <typename F>
CellStats average_runs(F&& run_one, std::size_t repeats, std::size_t jobs = 0) {
    return aggregate(run_trials(repeats, run_one, jobs));
}

/// Eq. 3 energy per useful bit for an averaged run.
inline double joules_per_useful_bit(double avg_bits, std::size_t useful_bits) {
    const auto tech = Technology::cmos_025um();
    if (useful_bits == 0) return 0.0;
    return avg_bits * tech.link_ebit_joules / static_cast<double>(useful_bits);
}

} // namespace snoc::bench
