// Deliberately-broken probe configurations for snoc_verify's mutation
// self-test: the verifier must catch each of these before its green
// verdicts on the real registry mean anything (the same philosophy as
// snoc_lint's fixture trees and CI mutation self-checks).
//
//   * CyclicTurnPolicy — west-first with the forbidden turn re-enabled:
//     whenever westward progress remains the policy *also* offers the
//     minimal non-west directions, so a packet may defer its west hop and
//     turn into west later.  That restores the full minimal turn set,
//     whose channel dependency graph is cyclic on any mesh >= 2x2 — the
//     classic deadlock Glass-Ni turn elimination exists to prevent.
//     Catchable twice: statically (analyze_cdg reports a concrete channel
//     cycle) and dynamically (a RouterCore running it wedges and trips
//     the DeadlockSentinel).
//
//   * unbounded_deflection_budget() — a misroute budget of "no limit":
//     deflection/adaptive policies escape the CDG obligation only by
//     bounding livelock with a finite hop budget; verdict analysis must
//     refuse the escape when the budget is absent.
#pragma once

#include <cstddef>
#include <memory>

#include "router/core.hpp"
#include "router/policy.hpp"

namespace snoc::analysis {

/// West-first with the west-first rule broken: all minimal live
/// directions are offered even while westward progress remains.
class CyclicTurnPolicy final : public router::RoutingPolicy {
public:
    /// Masquerades as the policy it mutates — the probe exists to prove a
    /// broken WestFirst registration would be caught.
    router::PolicyKind kind() const override {
        return router::PolicyKind::WestFirst;
    }
    std::vector<std::size_t> candidates(
        const Topology& topo, TileId at, TileId from, TileId dst,
        const std::vector<bool>& dead) const override;
};

/// The "no hop budget" sentinel value for livelock-bound analysis (a real
/// RouterConfig cannot carry it: validate() requires max_hops >= 1).
constexpr std::size_t unbounded_deflection_budget() { return 0; }

/// Outcome of the dynamic half of the self-test (see probe_dynamic_deadlock).
struct DynamicProbeResult {
    bool wedged{false};           ///< the cyclic-policy core stopped making progress.
    bool sentinel_fired{false};   ///< DeadlockSentinel reported the wedge.
    std::size_t stalled_cycles{0};///< watchdog count when the run ended.
    bool control_drained{false};  ///< the same traffic under XY ran to idle.
    bool control_sentinel{false}; ///< XY control tripped the sentinel (must not).
};

/// Drive the cross-check: a RouterCore wired with CyclicTurnPolicy under
/// ring traffic on a small mesh must wedge and trip the DeadlockSentinel,
/// while the identical traffic under dimension-order routing must drain
/// with the sentinel silent.  Pure function of nothing — fully
/// deterministic, a few thousand cycles of work.
DynamicProbeResult probe_dynamic_deadlock();

} // namespace snoc::analysis
