#include "common/cli.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/expect.hpp"
#include "common/parallel.hpp"

namespace snoc {

CliArgs::CliArgs(int argc, char** argv) {
    SNOC_EXPECT(argc >= 1);
    program_ = argv[0];
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        const std::string body = arg.substr(2);
        const auto eq = body.find('=');
        if (eq != std::string::npos) {
            options_[body.substr(0, eq)] = body.substr(eq + 1);
            continue;
        }
        // `--key value` when the next token is not itself an option.
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
            options_[body] = std::string(argv[i + 1]);
            ++i;
        } else {
            options_[body] = std::nullopt;
        }
    }
}

bool CliArgs::has(const std::string& name) const { return options_.contains(name); }

std::optional<std::string> CliArgs::value(const std::string& name) const {
    const auto it = options_.find(name);
    if (it == options_.end()) return std::nullopt;
    return it->second;
}

std::uint64_t CliArgs::get_u64(const std::string& name, std::uint64_t fallback) const {
    const auto v = value(name);
    if (!v) return fallback;
    char* end = nullptr;
    const auto parsed = std::strtoull(v->c_str(), &end, 10);
    SNOC_EXPECT(end != nullptr && *end == '\0' && !v->empty());
    return parsed;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
    const auto v = value(name);
    if (!v) return fallback;
    char* end = nullptr;
    const double parsed = std::strtod(v->c_str(), &end);
    SNOC_EXPECT(end != nullptr && *end == '\0' && !v->empty());
    return parsed;
}

std::string CliArgs::get_string(const std::string& name, std::string fallback) const {
    const auto v = value(name);
    return v ? *v : std::move(fallback);
}

std::size_t resolve_jobs(const CliArgs& args) {
    const auto jobs = static_cast<std::size_t>(
        args.get_u64("jobs", static_cast<std::uint64_t>(default_jobs())));
    return jobs > 0 ? jobs : 1;
}

const char* to_string(EngineKind kind) {
    return kind == EngineKind::Event ? "event" : "lockstep";
}

std::optional<EngineKind> engine_kind_from_string(std::string_view name) {
    if (name == "lockstep") return EngineKind::Lockstep;
    if (name == "event") return EngineKind::Event;
    return std::nullopt;
}

EngineKind resolve_engine(const CliArgs& args) {
    std::string name = args.get_string("engine", "");
    if (name.empty()) {
        if (const char* env = std::getenv("SNOC_ENGINE")) name = env;
    }
    if (name.empty()) return EngineKind::Lockstep;
    const auto kind = engine_kind_from_string(name);
    SNOC_EXPECT(kind.has_value()); // --engine must be lockstep or event
    return *kind;
}

BenchOptions parse_bench_options(const CliArgs& args, std::size_t default_repeats) {
    BenchOptions options;
    options.csv = args.has("csv");
    options.json = args.has("json");
    const auto repeats = args.get_u64(
        "repeats", static_cast<std::uint64_t>(default_repeats));
    options.repeats =
        repeats > 0 ? static_cast<std::size_t>(repeats) : default_repeats;
    options.jobs = resolve_jobs(args);
    options.seed = args.get_u64("seed", 0);
    options.engine = resolve_engine(args);
    options.telemetry.trace_jsonl_out = args.get_string("trace-out", "");
    options.telemetry.chrome_out = args.get_string("chrome-out", "");
    options.telemetry.heatmap_out = args.get_string("heatmap-out", "");
    options.telemetry.manifest = args.has("manifest");
    options.telemetry.grid_width =
        static_cast<std::size_t>(args.get_u64("grid-width", 0));
    options.telemetry.postmortem_out = args.get_string("postmortem-out", "");
    options.telemetry.flight_capacity =
        static_cast<std::size_t>(args.get_u64("flight-capacity", 4096));
    if (options.telemetry.flight_capacity == 0)
        options.telemetry.flight_capacity = 1;
    options.telemetry.heartbeat_out = args.get_string("heartbeat-out", "");
    options.telemetry.heartbeat_every =
        static_cast<std::size_t>(args.get_u64("heartbeat-every", 1));
    options.telemetry.metrics_out = args.get_string("metrics-out", "");
    options.prof = args.has("prof");
    options.prof_out = args.get_string("prof-out", "");
    if (!options.prof_out.empty()) options.prof = true;
    options.telemetry.prof_out_ref = options.prof_out;
    return options;
}

BenchOptions parse_bench_options(int argc, char** argv, std::size_t default_repeats) {
    return parse_bench_options(CliArgs(argc, argv), default_repeats);
}

std::vector<std::string> CliArgs::unknown_options(
    const std::vector<std::string>& known) const {
    std::vector<std::string> unknown;
    for (const auto& [name, _] : options_)
        if (std::find(known.begin(), known.end(), name) == known.end())
            unknown.push_back(name);
    return unknown;
}

} // namespace snoc
