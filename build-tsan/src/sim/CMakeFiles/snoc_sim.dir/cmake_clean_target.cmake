file(REMOVE_RECURSE
  "libsnoc_sim.a"
)
