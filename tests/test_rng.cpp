#include "common/rng.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace snoc {
namespace {

TEST(SplitMix, IsDeterministic) {
    EXPECT_EQ(splitmix64(0), splitmix64(0));
    EXPECT_NE(splitmix64(0), splitmix64(1));
}

TEST(KeyOf, DistinguishesNames) {
    EXPECT_NE(key_of("forward"), key_of("fault/upset"));
    EXPECT_EQ(key_of("app"), key_of("app"));
    EXPECT_NE(key_of(""), key_of("a"));
}

TEST(RngPool, SameSeedSamePurposeSameStream) {
    RngPool a(123), b(123);
    auto sa = a.stream("x", 7);
    auto sb = b.stream("x", 7);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(sa.bits(), sb.bits());
}

TEST(RngPool, DifferentPurposeDiverges) {
    RngPool pool(123);
    auto s1 = pool.stream("x");
    auto s2 = pool.stream("y");
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        if (s1.bits() == s2.bits()) ++equal;
    EXPECT_LE(equal, 1);
}

TEST(RngPool, DifferentIndexDiverges) {
    RngPool pool(99);
    auto s1 = pool.stream("tile", 0);
    auto s2 = pool.stream("tile", 1);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        if (s1.bits() == s2.bits()) ++equal;
    EXPECT_LE(equal, 1);
}

TEST(RngStream, BernoulliEdgeCases) {
    RngStream s(1);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(s.bernoulli(0.0));
        EXPECT_TRUE(s.bernoulli(1.0));
        EXPECT_FALSE(s.bernoulli(-0.5));
        EXPECT_TRUE(s.bernoulli(1.5));
    }
}

TEST(RngStream, BernoulliFrequency) {
    RngStream s(42);
    const int n = 20000;
    int hits = 0;
    for (int i = 0; i < n; ++i)
        if (s.bernoulli(0.3)) ++hits;
    // ~4 sigma band around 0.3.
    const double p = static_cast<double>(hits) / n;
    EXPECT_NEAR(p, 0.3, 4.0 * std::sqrt(0.3 * 0.7 / n));
}

TEST(RngStream, BelowStaysInRange) {
    RngStream s(7);
    for (int i = 0; i < 1000; ++i) {
        const auto v = s.below(13);
        EXPECT_LT(v, 13u);
    }
}

TEST(RngStream, BelowCoversAllValues) {
    RngStream s(7);
    std::vector<bool> seen(5, false);
    for (int i = 0; i < 500; ++i) seen[s.below(5)] = true;
    for (bool b : seen) EXPECT_TRUE(b);
}

TEST(RngStream, UniformInUnitInterval) {
    RngStream s(3);
    Accumulator acc;
    for (int i = 0; i < 20000; ++i) {
        const double u = s.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        acc.add(u);
    }
    EXPECT_NEAR(acc.mean(), 0.5, 0.02);
    EXPECT_NEAR(acc.variance(), 1.0 / 12.0, 0.01);
}

TEST(RngStream, NormalMoments) {
    RngStream s(11);
    Accumulator acc;
    for (int i = 0; i < 20000; ++i) acc.add(s.normal(5.0, 2.0));
    EXPECT_NEAR(acc.mean(), 5.0, 0.1);
    EXPECT_NEAR(acc.stddev(), 2.0, 0.1);
}

TEST(RngStream, NormalZeroStddevIsDegenerate) {
    RngStream s(11);
    EXPECT_DOUBLE_EQ(s.normal(3.0, 0.0), 3.0);
    EXPECT_DOUBLE_EQ(s.normal(3.0, -1.0), 3.0);
}

} // namespace
} // namespace snoc
