// The boundary between computation and communication.
//
// The thesis' central design goal (after ITRS 2001) is separating the two:
// an IpCore implements *computation only* and talks to the world through a
// TileContext; everything below (gossip, CRC, buffers, faults) is network
// logic and is transparent to the IP.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "noc/packet.hpp"

namespace snoc {

/// What an IP core may do during its tile's turn in a round.
class TileContext {
public:
    virtual ~TileContext() = default;

    virtual TileId tile() const = 0;
    virtual Round round() const = 0;

    /// Inject a new message into the tile's send buffer.  The network
    /// assigns the (origin, sequence) identity and the configured TTL
    /// unless `ttl_override` is non-zero.
    virtual void send(TileId destination, std::uint32_t tag,
                      std::vector<std::byte> payload,
                      std::uint16_t ttl_override = 0) = 0;

    /// Inject a message with an explicit, caller-chosen identity.
    /// Replicated IPs use this with a shared task-level id so their copies
    /// are *the same rumor*: "the redundant IPs generate the same
    /// messages, so the number of unique messages in the network will not
    /// increase" (Sec. 4.1.3).  Callers must guarantee identical payloads
    /// for identical ids.
    virtual void send_with_id(MessageId id, TileId destination, std::uint32_t tag,
                              std::vector<std::byte> payload,
                              std::uint16_t ttl_override = 0) = 0;

    /// Origin namespace for replica-shared ids, disjoint from tile ids.
    static constexpr TileId replica_origin(std::uint32_t task_id) {
        return 0x80000000u | task_id;
    }

    /// Per-tile application RNG stream (deterministic per run).
    virtual RngStream& rng() = 0;

    /// The network's configured default TTL (what a ttl_override of 0
    /// resolves to) — protocols built on top use it as their base lifetime.
    virtual std::uint16_t default_ttl() const = 0;
};

/// An IP core mapped onto a tile.  Tiles without an IP core still gossip:
/// the network logic lives in the tile, not in the IP (Fig. 3-5).
class IpCore {
public:
    virtual ~IpCore() = default;

    /// Called once before round 0.
    virtual void on_start(TileContext& /*ctx*/) {}

    /// Called when a CRC-clean message addressed to this tile (or to
    /// kBroadcast) is first received.  Duplicates are filtered by the
    /// network layer.
    virtual void on_message(const Message& message, TileContext& ctx) = 0;

    /// Called once per round after message delivery.
    virtual void on_round(TileContext& /*ctx*/) {}
};

} // namespace snoc
