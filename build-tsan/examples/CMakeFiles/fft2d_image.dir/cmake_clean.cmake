file(REMOVE_RECURSE
  "CMakeFiles/fft2d_image.dir/fft2d_image.cpp.o"
  "CMakeFiles/fft2d_image.dir/fft2d_image.cpp.o.d"
  "fft2d_image"
  "fft2d_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft2d_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
