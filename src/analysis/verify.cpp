#include "analysis/verify.hpp"

#include <ostream>
#include <sstream>

#include "analysis/cdg.hpp"
#include "analysis/probes.hpp"
#include "bus/deflection.hpp"
#include "common/expect.hpp"
#include "core/gossip_config.hpp"

namespace snoc::analysis {

const char* to_string(Verdict v) {
    switch (v) {
    case Verdict::DeadlockFree: return "deadlock-free";
    case Verdict::DeadlockCapable: return "deadlock-capable";
    case Verdict::LivelockBounded: return "livelock-bounded";
    case Verdict::LivelockUnbounded: return "livelock-unbounded";
    }
    return "?";
}

PolicyObligation obligation_for(router::PolicyKind kind) {
    switch (kind) {
    case router::PolicyKind::DimensionOrder:
    case router::PolicyKind::WestFirst:
        return PolicyObligation::AcyclicCdg;
    case router::PolicyKind::Productive:
    case router::PolicyKind::FaultAdaptive:
        return PolicyObligation::BoundedMisroute;
    }
    SNOC_ENSURE(false && "unregistered routing policy");
    return PolicyObligation::AcyclicCdg;
}

const std::vector<MeshShape>& verified_meshes() {
    static const std::vector<MeshShape> meshes{{3, 3}, {5, 5}, {8, 8}};
    return meshes;
}

namespace {

std::string mesh_name(const MeshShape& mesh) {
    std::ostringstream os;
    os << mesh.width << 'x' << mesh.height;
    return os.str();
}

ConfigVerdict cdg_verdict(std::string subject, const Topology& topo,
                          const router::RoutingPolicy& policy) {
    const CdgResult cdg = analyze_cdg(topo, policy);
    ConfigVerdict verdict{std::move(subject), Verdict::DeadlockFree, ""};
    std::ostringstream detail;
    if (cdg.acyclic()) {
        detail << "cdg acyclic: channels=" << cdg.channels
               << " reachable=" << cdg.reachable
               << " deps=" << cdg.dependencies;
    } else {
        verdict.verdict = Verdict::DeadlockCapable;
        detail << "cdg cycle (" << cdg.cycle.size()
               << " channels): " << cycle_to_string(topo, cdg.cycle);
    }
    verdict.detail = detail.str();
    return verdict;
}

ConfigVerdict budget_verdict(std::string subject, std::size_t budget,
                             std::size_t diameter, const char* budget_name) {
    ConfigVerdict verdict{std::move(subject), Verdict::LivelockBounded, ""};
    std::ostringstream detail;
    if (budget == 0) {
        verdict.verdict = Verdict::LivelockUnbounded;
        detail << "no finite " << budget_name
               << ": misrouting may circulate forever";
    } else {
        detail << budget_name << '=' << budget
               << " bounds residence (mesh diameter=" << diameter << ')';
    }
    verdict.detail = detail.str();
    return verdict;
}

} // namespace

ConfigVerdict verify_policy(router::PolicyKind kind, const MeshShape& mesh,
                            router::FlowControl flow,
                            std::size_t misroute_budget) {
    std::ostringstream subject;
    subject << "policy " << router::to_string(kind) << " flow "
            << router::to_string(flow) << " mesh " << mesh_name(mesh);
    const Topology topo = Topology::mesh(mesh.width, mesh.height);
    switch (obligation_for(kind)) {
    case PolicyObligation::AcyclicCdg:
        return cdg_verdict(subject.str(), topo, *router::make_policy(kind));
    case PolicyObligation::BoundedMisroute:
        return budget_verdict(subject.str(), misroute_budget,
                              (mesh.width - 1) + (mesh.height - 1),
                              "hop budget");
    }
    SNOC_ENSURE(false && "unhandled policy obligation");
    return {};
}

ConfigVerdict verify_backend(BackendKind kind) {
    const std::string subject = std::string("backend ") + to_string(kind);
    const MeshShape anchor{5, 5}; // the zoo's default shape.
    const std::size_t diameter = (anchor.width - 1) + (anchor.height - 1);
    // Default-free switch: a new SNOC_BACKEND_KIND_LIST row without a
    // verification plan is a -Wswitch warning here and a golden mismatch.
    switch (kind) {
    case BackendKind::Gossip:
        return budget_verdict(subject, GossipConfig{}.default_ttl, diameter,
                              "ttl budget (rounds)");
    case BackendKind::Bus:
        return ConfigVerdict{subject, Verdict::DeadlockFree,
                             "single shared channel: no channel-wait cycle is "
                             "expressible; rotating arbiter is starvation-free"};
    case BackendKind::Xy:
        return cdg_verdict(subject, Topology::mesh(anchor.width, anchor.height),
                           *router::make_policy(router::PolicyKind::DimensionOrder));
    case BackendKind::Wormhole: {
        // Both registered wormhole routing functions must prove out.
        const Topology topo = Topology::mesh(anchor.width, anchor.height);
        ConfigVerdict xy = cdg_verdict(
            subject, topo, *router::make_policy(router::PolicyKind::DimensionOrder));
        const ConfigVerdict wf = cdg_verdict(
            subject, topo, *router::make_policy(router::PolicyKind::WestFirst));
        if (!verdict_ok(wf.verdict)) return wf;
        if (!verdict_ok(xy.verdict)) return xy;
        xy.detail = "xy and west-first turn sets both acyclic (" + xy.detail +
                    " / " + wf.detail + ")";
        return xy;
    }
    case BackendKind::Deflection:
        return budget_verdict(subject, deflection::Config{}.max_hops, diameter,
                              "hop budget");
    case BackendKind::StoreForward:
        return cdg_verdict(subject, Topology::mesh(anchor.width, anchor.height),
                           *router::make_policy(router::PolicyKind::DimensionOrder));
    case BackendKind::CutThrough:
        return cdg_verdict(subject, Topology::mesh(anchor.width, anchor.height),
                           *router::make_policy(router::PolicyKind::DimensionOrder));
    case BackendKind::Adaptive:
        return budget_verdict(subject, router::RouterConfig{}.max_hops, diameter,
                              "hop budget");
    }
    SNOC_ENSURE(false && "BackendKind without a verification plan");
    return {};
}

std::vector<ConfigVerdict> verify_registry() {
    std::vector<ConfigVerdict> verdicts;
    for (std::size_t p = 0; p < router::kPolicyKinds; ++p) {
        const auto kind = static_cast<router::PolicyKind>(p);
        for (const MeshShape& mesh : verified_meshes()) {
            const std::size_t flows = std::size(router::kFlowControlNames);
            for (std::size_t f = 0; f < flows; ++f)
                verdicts.push_back(verify_policy(
                    kind, mesh, static_cast<router::FlowControl>(f),
                    router::RouterConfig{}.max_hops));
        }
    }
    for (const BackendKind kind : kBackendKinds)
        verdicts.push_back(verify_backend(kind));
    return verdicts;
}

std::vector<ConfigVerdict> probe_verdicts(const std::string& name) {
    std::vector<ConfigVerdict> verdicts;
    if (name == "cyclic-turn") {
        // The re-enabled forbidden turn on the smallest ring it can close.
        const Topology topo = Topology::mesh(2, 2);
        verdicts.push_back(
            cdg_verdict("probe cyclic-turn mesh 2x2", topo, CyclicTurnPolicy{}));
        verdicts.push_back(cdg_verdict(
            "probe cyclic-turn mesh 3x3", Topology::mesh(3, 3), CyclicTurnPolicy{}));
    } else if (name == "unbounded-deflection") {
        for (const MeshShape& mesh : verified_meshes())
            verdicts.push_back(verify_policy(
                router::PolicyKind::Productive, mesh,
                router::FlowControl::CutThrough, unbounded_deflection_budget()));
    } else {
        SNOC_EXPECT(false && "unknown probe (cyclic-turn, unbounded-deflection)");
    }
    return verdicts;
}

void write_report(const std::vector<ConfigVerdict>& verdicts, std::ostream& os) {
    os << "# snoc_verify verdicts\n"
       << "# policies=" << router::kPolicyKinds
       << " flow-controls=" << std::size(router::kFlowControlNames)
       << " backends=" << std::size(kBackendKinds) << " meshes=";
    for (std::size_t i = 0; i < verified_meshes().size(); ++i)
        os << (i ? "," : "") << mesh_name(verified_meshes()[i]);
    os << '\n';
    for (const ConfigVerdict& v : verdicts)
        os << v.subject << ": " << to_string(v.verdict) << " [" << v.detail
           << "]\n";
}

namespace {

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\') out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

void write_sarif(const std::vector<ConfigVerdict>& verdicts, std::ostream& os) {
    os << "{\n"
       << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
          "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
       << "  \"version\": \"2.1.0\",\n"
       << "  \"runs\": [{\n"
       << "    \"tool\": {\"driver\": {\n"
       << "      \"name\": \"snoc_verify\",\n"
       << "      \"informationUri\": \"https://example.invalid/snoc_verify\",\n"
       << "      \"rules\": [\n"
       << "        {\"id\": \"verify-deadlock\", \"shortDescription\": {\"text\": "
          "\"channel dependency graph has a cycle\"}, \"defaultConfiguration\": "
          "{\"level\": \"error\"}},\n"
       << "        {\"id\": \"verify-livelock\", \"shortDescription\": {\"text\": "
          "\"misrouting policy lacks a finite hop budget\"}, "
          "\"defaultConfiguration\": {\"level\": \"error\"}}\n"
       << "      ]\n"
       << "    }},\n"
       << "    \"originalUriBaseIds\": {\"SRCROOT\": {\"uri\": \"file:///\"}},\n"
       << "    \"results\": [";
    bool first = true;
    for (const ConfigVerdict& v : verdicts) {
        if (verdict_ok(v.verdict)) continue;
        const char* rule = v.verdict == Verdict::DeadlockCapable
                               ? "verify-deadlock"
                               : "verify-livelock";
        os << (first ? "\n" : ",\n")
           << "      {\"ruleId\": \"" << rule << "\", \"level\": \"error\", "
           << "\"message\": {\"text\": \""
           << json_escape(v.subject + ": " + to_string(v.verdict) + " — " +
                          v.detail)
           << "\"}, \"locations\": [{\"physicalLocation\": "
              "{\"artifactLocation\": {\"uri\": \"src/router/policy.hpp\", "
              "\"uriBaseId\": \"SRCROOT\"}, \"region\": {\"startLine\": 1}}}]}";
        first = false;
    }
    os << (first ? "]\n" : "\n    ]\n") << "  }]\n}\n";
}

} // namespace snoc::analysis
