// The unified interconnect abstraction.
//
// The thesis' whole argument is comparative — stochastic gossip vs. the
// shared bus (Sec. 4.1.4), vs. deterministic XY / wormhole / deflection
// routing (our extension baselines), vs. the Ch. 5 diversity hybrids —
// yet every backend historically exposed its own constructor shape and
// result struct, so every bench re-implemented trial loops and table
// emission by hand.  `Interconnect` normalizes the three things a
// comparison needs:
//
//   * construction — a backend is built from a topology/shape, its own
//     config struct, a FaultScenario and a seed (see sim/backends.hpp
//     for the concrete adapters and the factory);
//   * execution    — `run(trace, limit)` realises a backend-independent
//     TrafficTrace to completion or a round/cycle budget;
//   * results      — one RunReport for all backends: completion flag,
//     latency (rounds *and* seconds), traffic, delivery/drop taxonomy
//     and Technology-weighted wire energy.
//
// Adding a backend is writing one adapter (~50 lines), not forking a
// bench file; `ScenarioRunner` (sim/scenario.hpp) then sweeps/averages
// any Interconnect declaratively.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/metrics.hpp"
#include "noc/traffic.hpp"

namespace snoc {

class TraceSink;

namespace check {
class InvariantAuditor;
}

/// The backend registry: one row per backend the factory in
/// sim/backends.hpp can build — X(EnumName, "table-name").  Adding a
/// backend means adding a row here and an adapter row to
/// SNOC_BACKEND_ADAPTER_LIST (sim/backends.hpp); the enum, the name
/// table, the kBackendKinds sweep list, the factory and the lint
/// registry check all follow from these rows (no parallel switch
/// statements to keep in sync).  Diversity architectures (Ch. 5) are
/// gossip-backed and register through their own factory in
/// diversity/architecture.hpp.
#define SNOC_BACKEND_KIND_LIST(X)                                              \
    X(Gossip, "gossip")           /* the paper's stochastic engine */          \
    X(Bus, "bus")                 /* shared-bus baseline of Sec. 4.1.4 */      \
    X(Xy, "xy")                   /* dimension-ordered routing strawman */     \
    X(Wormhole, "wormhole")       /* flit-level wormhole-routed mesh */        \
    X(Deflection, "deflection")   /* bufferless hot-potato routing */          \
    X(StoreForward, "store-forward") /* router core, store-and-forward */      \
    X(CutThrough, "cut-through")  /* router core, virtual cut-through */       \
    X(Adaptive, "adaptive")       /* router core, fault-adaptive detours */

enum class BackendKind : std::uint8_t {
#define SNOC_BACKEND_KIND_ENUM(name, str) name,
    SNOC_BACKEND_KIND_LIST(SNOC_BACKEND_KIND_ENUM)
#undef SNOC_BACKEND_KIND_ENUM
};

inline constexpr const char* kBackendKindNames[] = {
#define SNOC_BACKEND_KIND_NAME(name, str) str,
    SNOC_BACKEND_KIND_LIST(SNOC_BACKEND_KIND_NAME)
#undef SNOC_BACKEND_KIND_NAME
};

/// Every BackendKind, in declaration order — the sweep list tests and
/// benches iterate instead of hand-maintaining their own.
inline constexpr BackendKind kBackendKinds[] = {
#define SNOC_BACKEND_KIND_VALUE(name, str) BackendKind::name,
    SNOC_BACKEND_KIND_LIST(SNOC_BACKEND_KIND_VALUE)
#undef SNOC_BACKEND_KIND_VALUE
};

static_assert(std::size(kBackendKinds) == 8,
              "update the tests' sweep expectations when growing the zoo");

constexpr const char* to_string(BackendKind k) {
    const auto i = static_cast<std::size_t>(k);
    return i < std::size(kBackendKindNames) ? kBackendKindNames[i] : "?";
}

/// One run's measurements, backend-independent.  Fields a backend cannot
/// measure stay at their zero value (e.g. the bus has no rounds; XY has
/// no wall-clock model beyond hops).  `metrics` carries the full gossip
/// taxonomy when the backend is gossip-based, zeroed otherwise.
struct RunReport {
    bool completed{false};        ///< workload finished inside the budget.
    Round rounds{0};              ///< gossip rounds / router cycles executed.
    double seconds{0.0};          ///< wall-clock (GALS / cycle-time model).
    std::size_t transmissions{0}; ///< link or bus transfers.
    std::size_t bits{0};          ///< wire bits moved.
    std::size_t messages{0};      ///< logical messages offered to the network.
    std::size_t deliveries{0};    ///< messages that reached their destination.
    std::size_t dropped{0};       ///< messages lost (crash / TTL / hop budget).
    double joules{0.0};           ///< wire energy (Eq. 3, Technology-weighted).
    std::uint64_t seed{0};        ///< seed this run was constructed from.
    std::size_t attempts{1};      ///< tries the retry policy spent (>= 1).
    std::size_t audit_violations{0}; ///< invariant violations the attached
                                     ///< auditor recorded during this run
                                     ///< (0 when no auditor was attached).
    NetworkMetrics metrics{};     ///< full gossip counters, when applicable.
    /// Per-TraceEventKind event totals when the trial ran with telemetry
    /// attached (ScenarioRunner stamps it; empty otherwise).  Indexed by
    /// static_cast<size_t>(TraceEventKind).
    std::vector<std::size_t> trace_counts;
};

/// A communication backend under test.  Construction is adapter-specific
/// (each takes its own config plus FaultScenario + seed); execution and
/// results are uniform.
class Interconnect {
public:
    virtual ~Interconnect() = default;

    virtual BackendKind kind() const = 0;

    /// Human-readable backend name for table rows.
    virtual std::string name() const { return to_string(kind()); }

    /// Realise `trace` phase by phase until it completes or `limit`
    /// rounds/cycles elapse.  One-shot: construct a fresh adapter per run
    /// (a trial owns its backend, exactly as the determinism contract of
    /// common/parallel.hpp requires).
    virtual RunReport run(const TrafficTrace& trace, Round limit) = 0;

    /// Attach a runtime invariant auditor (src/check/).  The auditor is a
    /// pure observer — adapters call into it at round boundaries and on
    /// report emission, and stamp RunReport::audit_violations; attaching
    /// one never changes simulation behaviour.  Not owned; must outlive
    /// the runs it audits.  nullptr detaches.
    void set_auditor(check::InvariantAuditor* auditor) { auditor_ = auditor; }
    check::InvariantAuditor* auditor() const { return auditor_; }

    /// Attach a trace sink (sim/trace.hpp).  Every backend emits the same
    /// TraceEvent vocabulary through it — created / transmitted /
    /// delivered and the drop taxonomy — so one Telemetry recorder can
    /// watch any backend.  Like the auditor it is a pure observer: not
    /// owned, must outlive the runs it records, nullptr detaches, and
    /// with no sink attached tracing costs nothing.
    void set_trace_sink(TraceSink* sink) { trace_sink_ = sink; }
    TraceSink* trace_sink() const { return trace_sink_; }

    /// Live counters while run() executes, for post-mortem snapshots:
    /// when a violation aborts a run mid-flight, the dumper reads these
    /// to record what the network had counted at the moment of death.
    /// Optional — adapters whose backend lives inside run() may return
    /// nullptr (the bundle then simply omits the metrics object).  Only
    /// meaningful during run(); never dereference after it returns.
    virtual const NetworkMetrics* live_metrics() const { return nullptr; }

private:
    check::InvariantAuditor* auditor_{nullptr};
    TraceSink* trace_sink_{nullptr};
};

} // namespace snoc
