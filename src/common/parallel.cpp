#include "common/parallel.hpp"

#include <algorithm>
#include <cstdlib>

namespace snoc {

std::size_t default_jobs() {
    if (const char* env = std::getenv("SNOC_JOBS")) {
        char* end = nullptr;
        const unsigned long long v = std::strtoull(env, &end, 10);
        if (end != nullptr && *end == '\0' && v > 0)
            return static_cast<std::size_t>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<std::size_t>(hw) : 1;
}

ThreadPool::ThreadPool(std::size_t threads) {
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
    {
        LockGuard lock(mutex_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
    {
        LockGuard lock(mutex_);
        queue_.push_back(std::move(job));
    }
    work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
    UniqueLock lock(mutex_);
    while (!queue_.empty() || active_ != 0) idle_cv_.wait(lock);
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> job;
        {
            UniqueLock lock(mutex_);
            while (!stop_ && queue_.empty()) work_cv_.wait(lock);
            if (stop_ && queue_.empty()) return;
            job = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        job();
        {
            LockGuard lock(mutex_);
            --active_;
            if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
        }
    }
}

ThreadPool& ThreadPool::shared() {
    // At least 3 helper threads so run_trials(jobs=4) exercises real
    // concurrency even when default_jobs() is small (tests force jobs=4
    // on single-core CI to shake out data races under TSan).
    static ThreadPool pool(std::max<std::size_t>(default_jobs(), 3));
    return pool;
}

} // namespace snoc
