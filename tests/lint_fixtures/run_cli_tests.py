#!/usr/bin/env python3
"""Regression tests for the snoc_lint CLI surface (ctest label `lint`):

* the scripts/lint_determinism.py compat shim forwards snoc_lint's exit
  status verbatim (0 clean, 1 findings) instead of always succeeding;
* --baseline-prune drops exactly the stale suppressions and keeps the
  live ones;
* SARIF severity follows the per-rule map (error for structural rules,
  warning for hygiene, note for baseline staleness) instead of
  hardcoding everything to error.

    python3 tests/lint_fixtures/run_cli_tests.py
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
FIXTURES = Path(__file__).resolve().parent
TOOL = REPO_ROOT / "tools" / "snoc_lint"
SHIM = REPO_ROOT / "scripts" / "lint_determinism.py"

FAILURES: list[str] = []


def check(label: str, ok: bool, detail: str = "") -> None:
    print(f"{'ok  ' if ok else 'FAIL'} {label}")
    if not ok:
        FAILURES.append(f"{label}: {detail}")


def run(args: list[str]) -> subprocess.CompletedProcess:
    return subprocess.run(args, capture_output=True, text=True, check=False)


def shim_exit_codes() -> None:
    dirty = run([sys.executable, str(SHIM),
                 "--root", str(FIXTURES / "raw_distribution"), "--no-baseline"])
    check("shim exits 1 on a determinism-family finding",
          dirty.returncode == 1,
          f"exit {dirty.returncode}: {dirty.stderr.strip()}")
    clean = run([sys.executable, str(SHIM),
                 "--root", str(FIXTURES / "clean"), "--no-baseline"])
    check("shim exits 0 on a clean tree",
          clean.returncode == 0,
          f"exit {clean.returncode}: {clean.stderr.strip()}")
    bad = run([sys.executable, str(SHIM), "--only", "nonsense"])
    check("shim forwards config errors as exit 2",
          bad.returncode == 2,
          f"exit {bad.returncode}: {bad.stderr.strip()}")


def baseline_prune() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp) / "tree"
        shutil.copytree(FIXTURES / "raw_distribution", root)
        (root / "scripts").mkdir(exist_ok=True)
        baseline = root / "scripts" / "lint_baseline.json"

        # Absorb the fixture's real finding, then plant a stale entry.
        absorb = run([sys.executable, str(TOOL), "--root", str(root),
                      "--update-baseline"])
        check("prune setup: --update-baseline succeeds",
              absorb.returncode == 0 and baseline.exists(),
              absorb.stderr.strip())
        data = json.loads(baseline.read_text())
        live = list(data["suppressions"])
        data["suppressions"].append(
            {"rule": "det-rand", "file": "src/gone.cpp", "key": "ghost"})
        baseline.write_text(json.dumps(data, indent=2) + "\n")

        prune = run([sys.executable, str(TOOL), "--root", str(root),
                     "--baseline-prune"])
        after = json.loads(baseline.read_text())["suppressions"]
        check("--baseline-prune exits 0 and drops only the stale entry",
              prune.returncode == 0 and after == live,
              f"exit {prune.returncode}, kept {after}")

        refuse = run([sys.executable, str(TOOL), "--root", str(root),
                      "--baseline-prune", "--changed-files", "src/gone.cpp"])
        check("--baseline-prune refuses a changed-files slice",
              refuse.returncode == 2, f"exit {refuse.returncode}")


def sarif_levels() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        sarif_path = Path(tmp) / "out.sarif"
        run([sys.executable, str(TOOL),
             "--root", str(FIXTURES / "missing_pragma_once"),
             "--no-baseline", "--sarif-out", str(sarif_path)])
        sarif = json.loads(sarif_path.read_text())
        levels = {r["ruleId"]: r["level"]
                  for r in sarif["runs"][0]["results"]}
        check("pragma-once maps to SARIF level warning",
              levels.get("pragma-once") == "warning", str(levels))

        run([sys.executable, str(TOOL),
             "--root", str(FIXTURES / "raw_distribution"),
             "--no-baseline", "--sarif-out", str(sarif_path)])
        sarif = json.loads(sarif_path.read_text())
        levels = {r["ruleId"]: r["level"]
                  for r in sarif["runs"][0]["results"]}
        check("rng-raw-dist maps to SARIF level error",
              levels.get("rng-raw-dist") == "error", str(levels))
        rules = {r["id"]: r["defaultConfiguration"]["level"]
                 for r in sarif["runs"][0]["tool"]["driver"]["rules"]}
        check("rule metadata carries defaultConfiguration levels",
              rules.get("rng-raw-dist") == "error", str(rules))

        # A stale baseline entry surfaces as a note-level finding.
        root = Path(tmp) / "stale"
        shutil.copytree(FIXTURES / "clean", root)
        (root / "scripts").mkdir(exist_ok=True)
        (root / "scripts" / "lint_baseline.json").write_text(json.dumps({
            "suppressions": [{"rule": "det-rand", "file": "src/gone.cpp",
                              "key": "ghost"}]}) + "\n")
        run([sys.executable, str(TOOL), "--root", str(root),
             "--sarif-out", str(sarif_path)])
        sarif = json.loads(sarif_path.read_text())
        levels = {r["ruleId"]: r["level"]
                  for r in sarif["runs"][0]["results"]}
        check("baseline-stale maps to SARIF level note",
              levels.get("baseline-stale") == "note", str(levels))


def main() -> int:
    shim_exit_codes()
    baseline_prune()
    sarif_levels()
    if FAILURES:
        print("\n".join(FAILURES), file=sys.stderr)
        return 1
    print("snoc_lint CLI regression tests ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
