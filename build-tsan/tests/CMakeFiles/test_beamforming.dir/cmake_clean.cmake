file(REMOVE_RECURSE
  "CMakeFiles/test_beamforming.dir/test_beamforming.cpp.o"
  "CMakeFiles/test_beamforming.dir/test_beamforming.cpp.o.d"
  "test_beamforming"
  "test_beamforming.pdb"
  "test_beamforming[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_beamforming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
