#include "core/send_buffer.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"

namespace snoc {
namespace {

Message msg(TileId origin, std::uint32_t seq, std::uint16_t ttl = 5) {
    Message m;
    m.id = MessageId{origin, seq};
    m.source = origin;
    m.destination = 0;
    m.ttl = ttl;
    return m;
}

TEST(SendBuffer, InsertAndSize) {
    SendBuffer b(8);
    EXPECT_TRUE(b.empty());
    EXPECT_TRUE(b.insert(msg(1, 0)));
    EXPECT_TRUE(b.insert(msg(1, 1)));
    EXPECT_EQ(b.size(), 2u);
    EXPECT_TRUE(b.knows(MessageId{1, 0}));
    EXPECT_FALSE(b.knows(MessageId{2, 0}));
}

TEST(SendBuffer, DuplicateIdNotInserted) {
    // Sec. 3.2.3: "if a message is already present, a duplicate message
    // will not be inserted".
    SendBuffer b(8);
    EXPECT_TRUE(b.insert(msg(1, 0)));
    EXPECT_FALSE(b.insert(msg(1, 0)));
    EXPECT_EQ(b.size(), 1u);
}

TEST(SendBuffer, NoResurrectionAfterExpiry) {
    SendBuffer b(8);
    EXPECT_TRUE(b.insert(msg(1, 0, /*ttl=*/1)));
    EXPECT_EQ(b.age_and_collect(), 1u);
    EXPECT_TRUE(b.empty());
    // A late copy of the same rumor must not restart the broadcast.
    EXPECT_FALSE(b.insert(msg(1, 0, /*ttl=*/4)));
    EXPECT_TRUE(b.knows(MessageId{1, 0}));
}

TEST(SendBuffer, AgingDecrementsAllAndCollectsExpired) {
    SendBuffer b(8);
    b.insert(msg(1, 0, 1));
    b.insert(msg(1, 1, 2));
    b.insert(msg(1, 2, 3));
    EXPECT_EQ(b.age_and_collect(), 1u);
    EXPECT_EQ(b.size(), 2u);
    EXPECT_EQ(b.age_and_collect(), 1u);
    EXPECT_EQ(b.size(), 1u);
    EXPECT_EQ(b.messages().front().ttl, 1u);
    EXPECT_EQ(b.age_and_collect(), 1u);
    EXPECT_TRUE(b.empty());
    EXPECT_EQ(b.age_and_collect(), 0u);
}

TEST(SendBuffer, AgingPreservesOrder) {
    SendBuffer b(8);
    b.insert(msg(1, 0, 5));
    b.insert(msg(1, 1, 1));
    b.insert(msg(1, 2, 5));
    b.age_and_collect();
    ASSERT_EQ(b.size(), 2u);
    EXPECT_EQ(b.messages()[0].id.sequence, 0u);
    EXPECT_EQ(b.messages()[1].id.sequence, 2u);
}

TEST(SendBuffer, CapacityEvictsOldest) {
    SendBuffer b(2);
    b.insert(msg(1, 0));
    b.insert(msg(1, 1));
    EXPECT_TRUE(b.insert(msg(1, 2)));
    EXPECT_EQ(b.size(), 2u);
    EXPECT_EQ(b.overflow_drops(), 1u);
    EXPECT_EQ(b.messages()[0].id.sequence, 1u);
    EXPECT_EQ(b.messages()[1].id.sequence, 2u);
}

TEST(SendBuffer, ZeroCapacityRejected) {
    EXPECT_THROW(SendBuffer(0), ContractViolation);
}

TEST(SendBuffer, AgingThrowsOnZeroTtlEntry) {
    // Inserting a TTL-0 message then ageing is a protocol bug; the
    // invariant check must fire rather than wrap around.
    SendBuffer b(4);
    b.insert(msg(1, 0, 0));
    EXPECT_THROW(b.age_and_collect(), ContractViolation);
}

TEST(SendBuffer, ClearForgetsEverything) {
    SendBuffer b(4);
    b.insert(msg(1, 0));
    b.clear();
    EXPECT_TRUE(b.empty());
    EXPECT_FALSE(b.knows(MessageId{1, 0}));
    EXPECT_TRUE(b.insert(msg(1, 0)));
}

TEST(SendBuffer, DistinctOriginsSameSequenceCoexist) {
    SendBuffer b(8);
    EXPECT_TRUE(b.insert(msg(1, 7)));
    EXPECT_TRUE(b.insert(msg(2, 7)));
    EXPECT_EQ(b.size(), 2u);
}

} // namespace
} // namespace snoc
