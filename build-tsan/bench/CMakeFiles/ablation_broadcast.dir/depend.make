# Empty dependencies file for ablation_broadcast.
# This may be replaced when dependencies are built.
