file(REMOVE_RECURSE
  "CMakeFiles/snoc_wormhole.dir/router.cpp.o"
  "CMakeFiles/snoc_wormhole.dir/router.cpp.o.d"
  "libsnoc_wormhole.a"
  "libsnoc_wormhole.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snoc_wormhole.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
