#include "router/policy.hpp"

#include "common/expect.hpp"
#include "router/ports.hpp"

namespace snoc::router {

namespace {

bool tile_dead(const std::vector<bool>& dead, TileId t) {
    return !dead.empty() && dead[t];
}

} // namespace

std::vector<TileId> dimension_order_path(const Topology& mesh, TileId src,
                                         TileId dst) {
    SNOC_EXPECT(mesh.is_grid());
    SNOC_EXPECT(src < mesh.node_count() && dst < mesh.node_count());
    std::vector<TileId> path{src};
    std::size_t x = mesh.x_of(src);
    std::size_t y = mesh.y_of(src);
    const std::size_t tx = mesh.x_of(dst);
    const std::size_t ty = mesh.y_of(dst);
    while (x != tx) {
        x += (x < tx) ? 1 : static_cast<std::size_t>(-1);
        path.push_back(mesh.at(x, y));
    }
    while (y != ty) {
        y += (y < ty) ? 1 : static_cast<std::size_t>(-1);
        path.push_back(mesh.at(x, y));
    }
    return path;
}

std::vector<std::size_t> DimensionOrderPolicy::candidates(
    const Topology& topo, TileId at, TileId from, TileId dst,
    const std::vector<bool>& dead) const {
    (void)from;
    (void)dead;
    std::vector<std::size_t> out;
    if (at == dst) return out;
    const std::size_t x = topo.x_of(at), y = topo.y_of(at);
    const std::size_t dx = topo.x_of(dst), dy = topo.y_of(dst);
    TileId next;
    if (x != dx)
        next = topo.at(x < dx ? x + 1 : x - 1, y);
    else
        next = topo.at(x, y < dy ? y + 1 : y - 1);
    const auto port = port_to(topo, at, next);
    SNOC_ENSURE(port.has_value() && "XY next hop is not a neighbour");
    out.push_back(*port);
    return out;
}

std::vector<std::size_t> WestFirstPolicy::candidates(
    const Topology& topo, TileId at, TileId from, TileId dst,
    const std::vector<bool>& dead) const {
    (void)from;
    (void)dead;
    std::vector<std::size_t> out;
    if (at == dst) return out;
    // West-first: if any westward progress remains, it must happen now
    // (turning into west later is prohibited); otherwise every minimal
    // non-west direction is a legal adaptive choice.
    const std::size_t x = topo.x_of(at), y = topo.y_of(at);
    const std::size_t dx = topo.x_of(dst), dy = topo.y_of(dst);
    if (dx < x) {
        if (const auto p = port_to(topo, at, topo.at(x - 1, y))) out.push_back(*p);
        return out; // west exclusively: the deadlock-freedom turn rule. [mutation-point:west-first-turn]
    }
    if (dx > x)
        if (const auto p = port_to(topo, at, topo.at(x + 1, y))) out.push_back(*p);
    if (dy > y)
        if (const auto p = port_to(topo, at, topo.at(x, y + 1))) out.push_back(*p);
    if (dy < y)
        if (const auto p = port_to(topo, at, topo.at(x, y - 1))) out.push_back(*p);
    return out;
}

std::vector<std::size_t> ProductivePolicy::candidates(
    const Topology& topo, TileId at, TileId from, TileId dst,
    const std::vector<bool>& dead) const {
    (void)from;
    std::vector<std::size_t> out;
    if (at == dst) return out;
    const auto& nbrs = topo.neighbours(at);
    for (std::size_t p = 0; p < nbrs.size(); ++p) {
        if (tile_dead(dead, nbrs[p])) continue;
        if (topo.manhattan(nbrs[p], dst) < topo.manhattan(at, dst))
            out.push_back(p);
    }
    return out;
}

std::vector<std::size_t> FaultAdaptivePolicy::candidates(
    const Topology& topo, TileId at, TileId from, TileId dst,
    const std::vector<bool>& dead) const {
    std::vector<std::size_t> out;
    if (at == dst) return out;
    const auto& nbrs = topo.neighbours(at);
    const std::size_t x = topo.x_of(at), y = topo.y_of(at);
    const std::size_t dx = topo.x_of(dst), dy = topo.y_of(dst);
    // Minimal live ports, X before Y (the XY tie-break keeps fault-free
    // paths identical to dimension order).
    if (x != dx) {
        const TileId next = topo.at(x < dx ? x + 1 : x - 1, y);
        if (!tile_dead(dead, next))
            if (const auto p = port_to(topo, at, next)) out.push_back(*p);
    }
    if (y != dy) {
        const TileId next = topo.at(x, y < dy ? y + 1 : y - 1);
        if (!tile_dead(dead, next))
            if (const auto p = port_to(topo, at, next)) out.push_back(*p);
    }
    // Detours: every remaining live port in neighbour order, the arrival
    // port last — a u-turn is legal but only as the move of last resort.
    std::size_t uturn = nbrs.size();
    for (std::size_t p = 0; p < nbrs.size(); ++p) {
        if (tile_dead(dead, nbrs[p])) continue;
        bool minimal = false;
        for (const std::size_t m : out)
            if (m == p) minimal = true;
        if (minimal) continue;
        if (nbrs[p] == from) {
            uturn = p;
            continue;
        }
        out.push_back(p);
    }
    if (uturn < nbrs.size()) out.push_back(uturn);
    return out;
}

std::unique_ptr<RoutingPolicy> make_policy(PolicyKind kind) {
    switch (kind) {
    case PolicyKind::DimensionOrder: return std::make_unique<DimensionOrderPolicy>();
    case PolicyKind::WestFirst: return std::make_unique<WestFirstPolicy>();
    case PolicyKind::Productive: return std::make_unique<ProductivePolicy>();
    case PolicyKind::FaultAdaptive: return std::make_unique<FaultAdaptivePolicy>();
    }
    SNOC_ENSURE(false && "unknown routing policy");
    return nullptr;
}

} // namespace snoc::router
