# Empty compiler generated dependencies file for snoc_apps.
# This may be replaced when dependencies are built.
