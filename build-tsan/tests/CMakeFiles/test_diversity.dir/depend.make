# Empty dependencies file for test_diversity.
# This may be replaced when dependencies are built.
