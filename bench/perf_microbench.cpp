// google-benchmark microbenchmarks of the hot paths: CRC, packet codec,
// a full gossip round (encode-once vs reference per-transmission encode),
// the parallel trial fan-out, FFT and MDCT kernels.  Not a paper figure —
// this guards the simulator's own performance.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>

#include "apps/fft.hpp"
#include "apps/mdct.hpp"
#include "common/parallel.hpp"
#include "core/engine.hpp"
#include "noc/crc.hpp"
#include "noc/packet.hpp"
#include "telemetry/flight_recorder.hpp"

namespace {

using namespace snoc;

void BM_Crc32(benchmark::State& state) {
    std::vector<std::byte> data(static_cast<std::size_t>(state.range(0)),
                                std::byte{0x5A});
    for (auto _ : state)
        benchmark::DoNotOptimize(crc::crc32(std::span<const std::byte>(data)));
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(64)->Arg(1024)->Arg(65536);

void BM_PacketEncodeDecode(benchmark::State& state) {
    Message m;
    m.id = MessageId{3, 9};
    m.payload.assign(static_cast<std::size_t>(state.range(0)), std::byte{0x42});
    for (auto _ : state) {
        auto p = Packet::encode(m);
        benchmark::DoNotOptimize(p.decode());
    }
}
BENCHMARK(BM_PacketEncodeDecode)->Arg(32)->Arg(512)->Arg(4096);

class BroadcastSource final : public IpCore {
public:
    void on_start(TileContext& ctx) override {
        ctx.send(kBroadcast, 1, std::vector<std::byte>(32, std::byte{1}));
    }
    void on_message(const Message&, TileContext&) override {}
};

void gossip_round_impl(benchmark::State& state, bool reference_encode,
                       bool flight_recorder = false) {
    const auto side = static_cast<std::size_t>(state.range(0));
    GossipConfig c;
    c.forward_p = 0.5;
    c.default_ttl = 1000; // keep the rumor alive through the benchmark
    c.reference_encode_path = reference_encode;
    FlightRecorder recorder(4096);
    for (auto _ : state) {
        state.PauseTiming();
        GossipNetwork net(Topology::mesh(side, side), c, FaultScenario::none(), 1);
        if (flight_recorder) net.set_trace_sink(&recorder);
        net.attach(0, std::make_unique<BroadcastSource>());
        for (int i = 0; i < 5; ++i) net.step(); // warm the spread up
        state.ResumeTiming();
        for (int i = 0; i < 10; ++i) net.step();
    }
    state.SetItemsProcessed(state.iterations() * 10);
}

// Production path: each held message is serialised once per round and the
// wire image is shared across its port transmissions.
void BM_GossipRound(benchmark::State& state) { gossip_round_impl(state, false); }
BENCHMARK(BM_GossipRound)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMicrosecond);

// Reference path: re-encode per transmission (the pre-optimisation
// behaviour).  The delta against BM_GossipRound is what encode-once saves.
void BM_GossipRoundReference(benchmark::State& state) {
    gossip_round_impl(state, true);
}
BENCHMARK(BM_GossipRoundReference)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMicrosecond);

// Same round loop with an always-on FlightRecorder attached: the ratio
// against BM_GossipRound is the flight-recorder overhead
// scripts/bench_snapshot.sh records (budget: <= 5%; a ring write is one
// array store plus an index bump).
void BM_GossipRoundRecorded(benchmark::State& state) {
    gossip_round_impl(state, false, /*flight_recorder=*/true);
}
BENCHMARK(BM_GossipRoundRecorded)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMicrosecond);

// Sparse-activity workload: a corner broadcast with a short TTL is a
// travelling wavefront — a thin band of active tiles crossing an
// otherwise idle mesh, the shape of the late gossip tail and the low-p
// fault sweeps.  The lockstep engine pays O(tiles) every round; the
// event engine pays O(active band).  Run both over the same seeds:
// the ratio is the sparse speedup scripts/bench_snapshot.sh records.
void sparse_broadcast_impl(benchmark::State& state, EngineKind kind) {
    const auto side = static_cast<std::size_t>(state.range(0));
    GossipConfig c;
    c.forward_p = 0.5;
    c.default_ttl = 20; // the rumor dies ~20 rounds in; the mesh does not
    std::int64_t rounds = 0;
    for (auto _ : state) {
        // Construction, bootstrap and teardown are one-time O(tiles)
        // costs, not round throughput — keep them off the timer.
        state.PauseTiming();
        auto net = std::make_unique<GossipNetwork>(Topology::mesh(side, side), c,
                                                   FaultScenario::none(), 1,
                                                   EngineSelect{kind, 1});
        net->attach(0, std::make_unique<BroadcastSource>());
        net->step();
        state.ResumeTiming();
        net->drain(500); // runs to quiescence: full broadcast lifetime
        rounds += static_cast<std::int64_t>(net->round()) - 1;
        state.PauseTiming();
        net.reset();
        state.ResumeTiming();
    }
    state.SetItemsProcessed(rounds); // items/s = simulated rounds/s
}

void BM_SparseBroadcastLockstep(benchmark::State& state) {
    sparse_broadcast_impl(state, EngineKind::Lockstep);
}
BENCHMARK(BM_SparseBroadcastLockstep)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_SparseBroadcastEvent(benchmark::State& state) {
    sparse_broadcast_impl(state, EngineKind::Event);
}
BENCHMARK(BM_SparseBroadcastEvent)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

/// One self-contained Monte-Carlo trial: a 5x5 broadcast driven to
/// quiescence, all randomness derived from the trial index.
std::size_t broadcast_trial(std::uint64_t seed) {
    GossipConfig c;
    c.forward_p = 0.5;
    c.default_ttl = 20;
    GossipNetwork net(Topology::mesh(5, 5), c, FaultScenario::none(), seed);
    net.attach(0, std::make_unique<BroadcastSource>());
    net.drain(200);
    return net.metrics().packets_sent;
}

// run_trials scaling: Arg is the jobs count.  Compare against /1 to see
// the fan-out speedup on this machine.
void BM_TrialFanout(benchmark::State& state) {
    const auto jobs = static_cast<std::size_t>(state.range(0));
    constexpr std::size_t kTrials = 32;
    for (auto _ : state) {
        auto results = run_trials(kTrials, broadcast_trial, jobs);
        benchmark::DoNotOptimize(results.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kTrials));
}
BENCHMARK(BM_TrialFanout)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_Fft(benchmark::State& state) {
    std::vector<apps::Complex> v(static_cast<std::size_t>(state.range(0)));
    for (std::size_t i = 0; i < v.size(); ++i)
        v[i] = apps::Complex(static_cast<double>(i % 7), 0.0);
    for (auto _ : state) {
        auto copy = v;
        apps::fft(copy);
        benchmark::DoNotOptimize(copy.data());
    }
}
BENCHMARK(BM_Fft)->Arg(256)->Arg(1024)->Arg(4096);

void BM_Mdct(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    apps::Mdct mdct(n);
    std::vector<double> window(2 * n, 0.25);
    for (auto _ : state) benchmark::DoNotOptimize(mdct.forward(window));
}
BENCHMARK(BM_Mdct)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMicrosecond);

/// After the registered benchmarks, print a plain serial-vs-parallel
/// wall-clock summary of the trial fan-out (and assert bit-identical
/// results) — the acceptance check for the parallel runner in one place.
void print_fanout_summary() {
    using clock = std::chrono::steady_clock;
    constexpr std::size_t kTrials = 64;
    const std::size_t hw = default_jobs();

    const auto t0 = clock::now();
    const auto serial = run_trials(kTrials, broadcast_trial, 1);
    const auto t1 = clock::now();
    const auto parallel = run_trials(kTrials, broadcast_trial, hw);
    const auto t2 = clock::now();

    const auto ms = [](clock::time_point a, clock::time_point b) {
        return std::chrono::duration<double, std::milli>(b - a).count();
    };
    const double serial_ms = ms(t0, t1);
    const double parallel_ms = ms(t1, t2);
    std::printf("\n-- run_trials fan-out summary (%zu broadcast trials) --\n",
                kTrials);
    std::printf("serial   (jobs=1):  %8.2f ms\n", serial_ms);
    std::printf("parallel (jobs=%zu): %8.2f ms  (%.2fx)\n", hw, parallel_ms,
                parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0);
    std::printf("results bit-identical: %s\n",
                serial == parallel ? "yes" : "NO - DETERMINISM BROKEN");
}

} // namespace

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    print_fanout_summary();
    return 0;
}
