// Acoustic delay-and-sum beamforming traffic (the Ch. 5 preliminary
// experiment, after Zhang et al. [42]).
//
// Logical task graph per frame: 16 sensor tasks (4 per quadrant) push
// sample blocks to their quadrant's aggregator (delay-and-sum partial);
// the 4 aggregators push partial beams to one global combiner.  The
// traffic is deliberately *mostly local* — the property that makes the
// hierarchical architecture shine in Fig. 5-3.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "noc/traffic.hpp"

namespace snoc::apps {

struct BeamformingMapping {
    std::vector<TileId> sensors;     ///< 16 tiles, 4 per quadrant/cluster.
    std::vector<TileId> aggregators; ///< 4 tiles, one per quadrant/cluster.
    TileId combiner{0};
};

/// The per-frame two-phase trace, repeated `frames` times.
TrafficTrace beamforming_trace(const BeamformingMapping& mapping, std::size_t frames,
                               std::size_t sample_block_bits = 2048,
                               std::size_t partial_beam_bits = 512);

/// Reference delay-and-sum combine (used by tests to keep the math honest):
/// aligns each sensor block by its integer delay and averages.
std::vector<double> delay_and_sum(const std::vector<std::vector<double>>& blocks,
                                  const std::vector<std::size_t>& delays);

} // namespace snoc::apps
