// Sharded single-trial determinism: the event engine's contract is that
// one trial parallelised across intra-trial tile strips is byte-identical
// to the same trial on one strip, for any strip count — RunReport, full
// metrics, trace-event stream (JSONL bytes) and audit outcome all
// included.  test_engine_equivalence proves event == lockstep at the
// network level; this suite proves shard-count invariance end to end
// through the adapter / telemetry / auditor stack, and that every
// registered Interconnect backend runs under engine selection.
//
// engine-equivalence-backends: gossip bus xy wormhole deflection storeforward cutthrough adaptive
// (snoc_lint cross-checks that marker against the BackendKind enum:
// adding a backend without extending AllBackendsRunUnderEngineSelection
// below — and this list — is a lint error.)
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "check/invariant_auditor.hpp"
#include "common/cli.hpp"
#include "core/engine.hpp"
#include "core/event_engine.hpp"
#include "sim/backends.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"

namespace snoc {
namespace {

TrafficTrace corner_trace() {
    TrafficTrace trace;
    TrafficPhase phase;
    phase.messages.push_back({0, 24, 256});
    phase.messages.push_back({4, 20, 256});
    phase.messages.push_back({20, 4, 256});
    phase.messages.push_back({24, 0, 256});
    trace.phases.push_back(phase);
    return trace;
}

/// The full-fault scenario: every injector stream active, so any
/// shard-dependent draw reordering shows up in the counters.
FaultScenario stress_scenario() {
    FaultScenario s;
    s.p_tiles = 0.08;
    s.p_links = 0.05;
    s.p_upset = 0.1;
    s.p_overflow = 0.05;
    s.sigma_synchr = 0.2;
    return s;
}

/// Every observable of one adapter-driven trial, flattened to bytes so
/// "byte-identical" is literal.
struct TrialImage {
    std::string report;     ///< RunReport scalars + full NetworkMetrics JSON.
    std::string jsonl;      ///< write_jsonl over the attached Telemetry.
    std::size_t violations; ///< auditor verdict.
};

std::string serialize_report(const RunReport& r) {
    std::ostringstream os;
    os << r.completed << ' ' << r.rounds << ' '
       << std::hexfloat << r.seconds << std::defaultfloat << ' '
       << r.transmissions << ' ' << r.bits << ' ' << r.messages << ' '
       << r.deliveries << ' ' << r.dropped << ' '
       << std::hexfloat << r.joules << std::defaultfloat << ' '
       << r.seed << ' ' << r.attempts << '\n';
    write_metrics_json(r.metrics, os);
    return os.str();
}

TrialImage run_trial(EngineKind kind, std::size_t shards, std::uint64_t seed,
                     const FaultScenario& scenario) {
    GossipSpec spec;
    spec.topology = Topology::mesh(5, 5);
    spec.config.forward_p = 0.5;
    spec.config.default_ttl = 40;
    spec.protect = {0, 4, 20, 24};
    spec.drain = true;
    spec.engine = EngineSelect{kind, shards};
    GossipAdapter adapter(std::move(spec), scenario, seed);

    Telemetry telemetry;
    check::InvariantAuditor auditor;
    auditor.begin_run("test_event_engine");
    adapter.set_trace_sink(&telemetry);
    adapter.set_auditor(&auditor);

    const auto trace = corner_trace();
    const RunReport report = adapter.run(trace, 1000);
    auditor.check_report(report, BackendKind::Gossip, &trace, 1000);

    TrialImage image;
    image.report = serialize_report(report);
    std::ostringstream jsonl;
    write_jsonl(telemetry, jsonl);
    image.jsonl = jsonl.str();
    image.violations = auditor.violation_count();
    return image;
}

/// --jobs invariance, both engines: shards in {1, 2, 8} produce the same
/// bytes.  (Lockstep ignores the shard count; the contract is that asking
/// for shards never changes results regardless of engine.)
TEST(ShardedDeterminism, ReportAndTraceBytesInvariantAcrossShards) {
    for (const EngineKind kind : {EngineKind::Lockstep, EngineKind::Event}) {
        for (const std::uint64_t seed : {1ull, 42ull}) {
            const TrialImage base = run_trial(kind, 1, seed, stress_scenario());
            EXPECT_FALSE(base.jsonl.empty());
            for (const std::size_t shards : {2u, 8u}) {
                const TrialImage img = run_trial(kind, shards, seed, stress_scenario());
                EXPECT_EQ(img.report, base.report)
                    << "engine=" << to_string(kind) << " shards=" << shards
                    << " seed=" << seed;
                EXPECT_EQ(img.jsonl, base.jsonl)
                    << "engine=" << to_string(kind) << " shards=" << shards
                    << " seed=" << seed;
            }
        }
    }
}

/// The auditor (conservation ledger, occupancy, TTL monotonicity, the
/// event engine's active-set invariant) stays clean under sharding, on
/// the all-streams fault scenario.
TEST(ShardedDeterminism, AuditorCleanAtEveryShardCount) {
    for (const EngineKind kind : {EngineKind::Lockstep, EngineKind::Event})
        for (const std::size_t shards : {1u, 2u, 8u}) {
            const TrialImage img = run_trial(kind, shards, 7, stress_scenario());
            EXPECT_EQ(img.violations, 0u)
                << "engine=" << to_string(kind) << " shards=" << shards;
        }
}

class CornerBroadcast final : public IpCore {
public:
    void on_start(TileContext& ctx) override {
        ctx.send(kBroadcast, 0xB0, {std::byte{1}});
    }
    void on_message(const Message&, TileContext&) override {}
};

/// Round-by-round parity: the spread curve (tiles knowing the rumor after
/// each round) and the running packet counter agree between lockstep and
/// the sharded event engine at every step, not just at the end.
TEST(ShardedDeterminism, SpreadCurveMatchesLockstepStepByStep) {
    GossipConfig config;
    config.forward_p = 0.5;
    config.default_ttl = 30;
    const auto scenario = stress_scenario();

    GossipNetwork lockstep(Topology::mesh(6, 6), config, scenario, 11,
                           EngineSelect{EngineKind::Lockstep, 1});
    GossipNetwork event(Topology::mesh(6, 6), config, scenario, 11,
                        EngineSelect{EngineKind::Event, 3});
    lockstep.attach(0, std::make_unique<CornerBroadcast>());
    event.attach(0, std::make_unique<CornerBroadcast>());

    const MessageId rumor{0, 0};
    for (int round = 0; round < 80; ++round) {
        lockstep.step();
        event.step();
        ASSERT_EQ(event.tiles_knowing(rumor), lockstep.tiles_knowing(rumor))
            << "round " << round;
        ASSERT_EQ(event.metrics().packets_sent, lockstep.metrics().packets_sent)
            << "round " << round;
        ASSERT_EQ(event.quiescent(), lockstep.quiescent()) << "round " << round;
    }
    EXPECT_DOUBLE_EQ(event.elapsed_seconds(), lockstep.elapsed_seconds());
}

/// Every BackendKind runs under the uniform engine-selection plumbing.
/// The gossip backend must produce identical reports for both engines;
/// the others have no gossip core — the check is that they construct and
/// complete deterministically through the same make_interconnect path the
/// runner uses.  Keep the loop and the file-header marker list in sync
/// when adding a BackendKind — snoc_lint enforces the marker.
TEST(ShardedDeterminism, AllBackendsRunUnderEngineSelection) {
    const auto trace = corner_trace();
    for (const BackendKind kind : kBackendKinds) {
        const auto a = make_interconnect(kind, FaultScenario::none(), 5);
        const auto b = make_interconnect(kind, FaultScenario::none(), 5);
        ASSERT_NE(a, nullptr) << to_string(kind);
        ASSERT_EQ(a->kind(), kind);
        const RunReport ra = a->run(trace, 2000);
        const RunReport rb = b->run(trace, 2000);
        EXPECT_EQ(serialize_report(ra), serialize_report(rb)) << to_string(kind);
        EXPECT_TRUE(ra.completed) << to_string(kind);
    }
    // Gossip, specifically: event == lockstep through the factory default
    // spec shape as well (the deep sweep lives in test_engine_equivalence).
    for (const std::uint64_t seed : {3ull, 9ull}) {
        const TrialImage lockstep =
            run_trial(EngineKind::Lockstep, 1, seed, FaultScenario::none());
        const TrialImage event =
            run_trial(EngineKind::Event, 4, seed, FaultScenario::none());
        EXPECT_EQ(event.report, lockstep.report) << "seed=" << seed;
        EXPECT_EQ(event.violations, 0u);
    }
}

} // namespace
} // namespace snoc
