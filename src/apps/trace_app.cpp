#include "apps/trace_app.hpp"

#include <set>

#include "common/expect.hpp"

namespace snoc::apps {

class TraceDriver::TraceIp final : public IpCore {
public:
    TraceIp(std::shared_ptr<State> state, TileId tile) : state_(std::move(state)), tile_(tile) {}

    void on_round(TileContext& ctx) override {
        auto& s = *state_;
        // Phase only moves during receive; within the compute phase this
        // is a stable snapshot even when shards run tiles in parallel.
        const std::size_t open = s.phase.load(std::memory_order_acquire);
        if (open >= s.trace.phases.size()) return;
        if (sent_phase_ == open) return; // already injected for this phase
        const auto& phase = s.trace.phases[open];
        for (std::size_t i = 0; i < phase.messages.size(); ++i) {
            const auto& m = phase.messages[i];
            if (m.src != tile_) continue;
            // Payload sized to the logical message (rounded up to bytes).
            std::vector<std::byte> payload((m.bits + 7) / 8, std::byte{0xA5});
            const auto tag =
                static_cast<std::uint32_t>(kTraceTagBase | (open << 8) | i);
            ctx.send(m.dst, tag, std::move(payload));
        }
        sent_phase_ = open;
    }

    void on_message(const Message& message, TileContext&) override {
        if ((message.tag & 0xFFFF0000u) != kTraceTagBase) return;
        auto& s = *state_;
        const std::size_t phase = (message.tag >> 8) & 0xFFu;
        const std::size_t index = message.tag & 0xFFu;
        // Stale rumor from an earlier phase?  A *first* copy of a phase-k
        // message can never observe phase > k: the k -> k+1 transition
        // requires every phase-k message (this one included) counted.
        if (phase != s.phase.load(std::memory_order_acquire)) return;
        SNOC_EXPECT(phase < s.trace.phases.size());
        SNOC_EXPECT(index < s.trace.phases[phase].messages.size());
        if (s.trace.phases[phase].messages[index].dst != message.destination) return;
        const auto key = phase << 8 | index;
        if (!seen_.insert(key).second) return;
        const std::size_t counted =
            s.delivered_in_phase.fetch_add(1, std::memory_order_acq_rel) + 1;
        s.total_delivered.fetch_add(
            1, std::memory_order_relaxed); // relaxed[commutative-counter]
        if (counted == s.trace.phases[phase].messages.size()) {
            // Exactly one delivery completes the phase; no phase-(k+1)
            // traffic can exist yet, so the reset below races with nothing.
            s.delivered_in_phase.store(
                0, std::memory_order_relaxed); // relaxed[pre-release-publish]
            s.phase.fetch_add(1, std::memory_order_release);
        }
    }

private:
    std::shared_ptr<State> state_;
    TileId tile_;
    std::size_t sent_phase_{static_cast<std::size_t>(-1)};
    std::set<std::size_t> seen_;
};

TraceDriver::TraceDriver(GossipNetwork& net, TrafficTrace trace)
    : state_(std::make_shared<State>()) {
    state_->trace = std::move(trace);
    std::set<TileId> tiles;
    for (const auto& phase : state_->trace.phases) {
        for (const auto& m : phase.messages) {
            SNOC_EXPECT(m.src < net.topology().node_count());
            SNOC_EXPECT(m.dst < net.topology().node_count());
            SNOC_EXPECT(phase.messages.size() <= 256); // tag packing limit
            tiles.insert(m.src);
            tiles.insert(m.dst);
        }
    }
    SNOC_EXPECT(state_->trace.phases.size() <= 256);
    for (TileId t : tiles) net.attach(t, std::make_unique<TraceIp>(state_, t));
}

} // namespace snoc::apps
