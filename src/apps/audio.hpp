// Deterministic synthetic PCM source.
//
// The thesis feeds the parallel LAME encoder real audio; we substitute a
// reproducible multi-tone + noise signal (documented in DESIGN.md): the
// experiments measure *communication* behaviour (rounds, packets, output
// bit-rate), which depends on the task graph and message sizes, not on
// what the samples contain — but the samples are still real enough that
// the MDCT/psychoacoustic/quantisation stages do real work.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace snoc::apps {

struct AudioParams {
    double sample_rate_hz{44100.0};
    /// Tone frequencies (Hz) and amplitudes of the synthetic source.
    std::vector<double> tone_hz{440.0, 1320.0, 3520.0};
    std::vector<double> tone_amp{0.5, 0.25, 0.1};
    double noise_amp{0.02};
};

class ToneGenerator {
public:
    ToneGenerator(AudioParams params, std::uint64_t seed);

    /// Next `n` samples in [-1, 1]; consecutive calls are continuous.
    std::vector<double> frame(std::size_t n);

    const AudioParams& params() const { return params_; }

private:
    AudioParams params_;
    RngStream rng_;
    std::uint64_t position_{0};
};

} // namespace snoc::apps
