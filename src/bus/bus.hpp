// The bus-based baseline of Sec. 4.1.4.
//
// All modules share one medium clocked at bus_frequency_hz (43 MHz for the
// 0.25 um grid-sized bus); a word crosses per cycle, so a message of S
// bits occupies the bus for S / (f * word_bits) * word_bits / f = S / f
// seconds of wire time (one bit per Hz of effective bandwidth, matching
// the thesis' use of Eq. 2 with the bus f).  Transfers inside a phase are
// serialised by the round-robin arbiter; the bus is a single point of
// failure — if it is dead, nothing is ever delivered.
#pragma once

#include <cstddef>
#include <vector>

#include "bus/arbiter.hpp"
#include "energy/energy.hpp"
#include "noc/traffic.hpp"
#include "sim/trace.hpp"

namespace snoc {

struct BusRunResult {
    bool completed{false};       ///< false iff the bus itself crashed.
    double seconds{0.0};         ///< serialised transfer time.
    double joules{0.0};
    std::size_t transfers{0};
    std::size_t bits{0};
    std::size_t max_wait_grants{0}; ///< worst queuing (in grants) any module saw.
};

class SharedBus {
public:
    SharedBus(std::size_t modules, Technology tech);

    /// A crashed bus delivers nothing (the single-point-of-failure of the
    /// comparison in Sec. 4.1.4).
    void crash() { alive_ = false; }
    bool alive() const { return alive_; }

    /// Execute a traffic trace; per-phase barrier, arbitrated serial order.
    BusRunResult run(const TrafficTrace& trace);

    /// Attach a flight recorder (not owned; nullptr detaches).  Events use
    /// the phase index as the round and synthesize per-source message ids;
    /// a crashed bus reports every message as created then crash-dropped.
    void set_trace_sink(TraceSink* sink) { trace_ = sink; }

private:
    std::size_t modules_;
    Technology tech_;
    bool alive_{true};
    TraceSink* trace_{nullptr};
};

} // namespace snoc
