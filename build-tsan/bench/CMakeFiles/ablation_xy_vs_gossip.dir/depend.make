# Empty dependencies file for ablation_xy_vs_gossip.
# This may be replaced when dependencies are built.
