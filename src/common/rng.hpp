// Deterministic, splittable random number streams.
//
// Every stochastic decision in the simulator (per-link Bernoulli forwarding,
// fault injection, clock jitter, workload generation) draws from a stream
// derived from a root seed plus a purpose key, so that
//   * two runs with the same seed are bit-identical, and
//   * changing one consumer's draw count does not perturb the others.
//
// The thesis realises the Bernoulli(p) gate with an amplified-thermal-noise
// circuit (Sec. 3.2.3); this is its deterministic functional equivalent.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace snoc {

/// splitmix64: tiny, high-quality 64-bit mixer used for seed derivation.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// Combine a seed with a sequence of 64-bit keys into a derived seed.
constexpr std::uint64_t derive_seed(std::uint64_t root, std::uint64_t key) {
    return splitmix64(root ^ splitmix64(key));
}

/// Hash a short string key (stream purpose name) to 64 bits (FNV-1a).
constexpr std::uint64_t key_of(std::string_view name) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : name) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/// A single random stream.  Thin wrapper over mt19937_64 with the
/// distributions the simulator needs.
class RngStream {
public:
    explicit RngStream(std::uint64_t seed) : engine_(seed) {}

    /// Bernoulli trial: true with probability p (p clamped to [0,1]).
    bool bernoulli(double p) {
        if (p <= 0.0) return false;
        if (p >= 1.0) return true;
        return std::bernoulli_distribution(p)(engine_);
    }

    /// Uniform integer in [0, bound) — bound must be > 0.
    std::uint64_t below(std::uint64_t bound) {
        return std::uniform_int_distribution<std::uint64_t>(0, bound - 1)(engine_);
    }

    /// Uniform double in [0, 1).
    double uniform() {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
    }

    /// Normal draw.
    double normal(double mean, double stddev) {
        if (stddev <= 0.0) return mean;
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    /// Raw 64 random bits.
    std::uint64_t bits() { return engine_(); }

    std::mt19937_64& engine() { return engine_; }

private:
    std::mt19937_64 engine_;
};

/// Factory for named sub-streams of a root seed.
class RngPool {
public:
    explicit RngPool(std::uint64_t root_seed) : root_(root_seed) {}

    std::uint64_t root_seed() const { return root_; }

    /// Stream for a (purpose, index) pair, e.g. ("forward", tile id).
    RngStream stream(std::string_view purpose, std::uint64_t index = 0) const {
        return RngStream(derive_seed(derive_seed(root_, key_of(purpose)), index));
    }

private:
    std::uint64_t root_;
};

} // namespace snoc
