#include "core/engine.hpp"

#include <algorithm>
#include <optional>

#include "common/expect.hpp"
#include "core/event_engine.hpp"
#include "noc/fec.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/prof.hpp"

namespace snoc {

// ---------------------------------------------------------------------------
// TileContext implementation handed to IP cores.  All side effects of the
// IP's calls (counters, traces, active-set bookkeeping) flow through the
// StepSink so the same code serves the lockstep engine (direct sink) and
// the event engine's parallel shards (per-shard sinks).
class GossipNetwork::Context final : public TileContext {
public:
    Context(GossipNetwork& net, TileId tile, StepSink& sink)
        : net_(net), tile_(tile), sink_(sink) {}

    TileId tile() const override { return tile_; }
    Round round() const override { return net_.round_; }

    void send(TileId destination, std::uint32_t tag, std::vector<std::byte> payload,
              std::uint16_t ttl_override) override {
        auto& t = net_.tiles_[tile_];
        send_impl(MessageId{tile_, t.next_sequence++}, destination, tag,
                  std::move(payload), ttl_override);
    }

    void send_with_id(MessageId id, TileId destination, std::uint32_t tag,
                      std::vector<std::byte> payload,
                      std::uint16_t ttl_override) override {
        send_impl(id, destination, tag, std::move(payload), ttl_override);
    }

    RngStream& rng() override { return net_.app_rng_[tile_]; }

    std::uint16_t default_ttl() const override { return net_.config_.default_ttl; }

private:
    void send_impl(MessageId id, TileId destination, std::uint32_t tag,
                   std::vector<std::byte> payload, std::uint16_t ttl_override) {
        auto& t = net_.tiles_[tile_];
        Message m;
        m.id = id;
        m.source = tile_;
        m.destination = destination;
        m.tag = tag;
        m.ttl = ttl_override != 0 ? ttl_override : net_.config_.default_ttl;
        m.payload = std::move(payload);
        MessageId evicted{kNoTile, 0};
        MessageId* evicted_out =
            (sink_.tracing || sink_.inserted) ? &evicted : nullptr;
        if (t.send_buffer.insert(std::move(m), evicted_out)) {
            ++sink_.metrics->messages_created;
            net_.sink_trace(sink_, TraceEventKind::MessageCreated, tile_, kNoTile, id);
            if (sink_.inserted) sink_.inserted->push_back(id);
            if (sink_.activated && t.send_buffer.size() == 1)
                sink_.activated->push_back(tile_);
            if (evicted.origin != kNoTile) {
                ++sink_.evictions;
                net_.sink_trace(sink_, TraceEventKind::BufferEvicted, tile_, kNoTile,
                                evicted);
            }
        }
    }

    GossipNetwork& net_;
    TileId tile_;
    StepSink& sink_;
};

// ---------------------------------------------------------------------------

GossipNetwork::GossipNetwork(Topology topology, GossipConfig config,
                             FaultScenario scenario, std::uint64_t seed,
                             EngineSelect engine)
    : topology_(std::move(topology)),
      config_(config),
      pool_(seed),
      injector_(scenario, pool_),
      clocks_(topology_.node_count(), config.timing.round_seconds()) {
    config_.validate();
    const std::size_t n = topology_.node_count();
    tiles_.reserve(n);
    forward_rng_.reserve(n);
    app_rng_.reserve(n);
    for (TileId t = 0; t < n; ++t) {
        tiles_.emplace_back(config_.send_buffer_capacity);
        forward_rng_.push_back(pool_.stream("gossip/forward", t));
        app_rng_.push_back(pool_.stream("app", t));
    }
    forward_capacity_.assign(n, static_cast<std::size_t>(-1));
    route_filter_.resize(n);
    clock_scale_.assign(n, 1.0);
    next_action_round_.assign(n, 0.0);
    metrics_.bits_sent_by_tile.assign(n, 0);
    metrics_.packets_by_link.assign(topology_.link_count(), 0);
    crash_state_.dead_tiles.assign(n, false);
    crash_state_.dead_links.assign(topology_.link_count(), false);
    if (engine.kind == EngineKind::Event)
        event_ = std::make_unique<EventEngine>(*this, engine.shards);
}

// Out of line for the unique_ptr<EventEngine> member's deleter.
GossipNetwork::~GossipNetwork() = default;

EngineKind GossipNetwork::engine_kind() const {
    return event_ ? EngineKind::Event : EngineKind::Lockstep;
}

bool GossipNetwork::event_active_set_consistent() const {
    return event_ ? event_->active_set_consistent() : true;
}

double GossipNetwork::elapsed_seconds() const {
    return event_ ? event_->elapsed_seconds() : clocks_.elapsed();
}

GossipNetwork::StepSink GossipNetwork::direct_sink() {
    StepSink sink;
    sink.metrics = &metrics_;
    sink.direct_trace = trace_;
    sink.tracing = trace_ != nullptr;
    return sink;
}

void GossipNetwork::sink_trace(StepSink& sink, TraceEventKind kind, TileId tile,
                               TileId peer, MessageId message) {
    if (!sink.tracing) return;
    TraceEvent event;
    event.round = round_;
    event.kind = kind;
    event.tile = tile;
    event.peer = peer;
    event.message = message;
    if (sink.trace_buffer)
        sink.trace_buffer->push_back(event);
    else
        sink.direct_trace->record(event);
}

void GossipNetwork::set_forward_capacity(TileId tile, std::size_t packets_per_round) {
    SNOC_EXPECT(tile < tiles_.size());
    SNOC_EXPECT(packets_per_round > 0);
    forward_capacity_[tile] = packets_per_round;
}

void GossipNetwork::set_route_filter(TileId tile, RouteFilter filter) {
    SNOC_EXPECT(tile < tiles_.size());
    route_filter_[tile] = std::move(filter);
}

void GossipNetwork::set_clock_scale(TileId tile, double scale) {
    SNOC_EXPECT(!started_);
    SNOC_EXPECT(tile < tiles_.size());
    SNOC_EXPECT(scale > 0.0);
    clock_scale_[tile] = std::max(scale, 1.0);
}


void GossipNetwork::trace(TraceEventKind kind, TileId tile, TileId peer,
                          MessageId message) {
    if (!trace_) return;
    TraceEvent event;
    event.round = round_;
    event.kind = kind;
    event.tile = tile;
    event.peer = peer;
    event.message = message;
    trace_->record(event);
}

bool GossipNetwork::tile_active_this_round(TileId t) const {
    // A scale-s tile acts once every s engine rounds (s need not be an
    // integer: scale 1.5 acts in 2 of every 3 rounds).  Clock jitter
    // (sigma_synchr) is orthogonal and never gates activity.
    if (clock_scale_[t] <= 1.0) return true;
    return static_cast<double>(round_) + 1e-9 >= next_action_round_[t];
}

void GossipNetwork::attach(TileId tile, std::unique_ptr<IpCore> core) {
    SNOC_EXPECT(!started_);
    SNOC_EXPECT(tile < tiles_.size());
    SNOC_EXPECT(core != nullptr);
    tiles_[tile].core = std::move(core);
}

void GossipNetwork::protect(TileId tile) {
    SNOC_EXPECT(!started_);
    SNOC_EXPECT(tile < tiles_.size());
    protected_tiles_.push_back(tile);
}

void GossipNetwork::force_exact_tile_crashes(std::size_t k) {
    SNOC_EXPECT(!started_);
    forced_exact_crashes_ = k;
}

void GossipNetwork::ensure_started() {
    if (started_) return;
    started_ = true;
    crash_state_ = forced_exact_crashes_
                       ? injector_.roll_exact_tile_crashes(topology_, *forced_exact_crashes_,
                                                           protected_tiles_)
                       : injector_.roll_crashes(topology_, protected_tiles_);
    StepSink sink = direct_sink();
    for (TileId t = 0; t < tiles_.size(); ++t) {
        if (crash_state_.dead_tiles[t] || !tiles_[t].core) continue;
        Context ctx(*this, t, sink);
        tiles_[t].core->on_start(ctx);
    }
    // The event engine snapshots post-on_start state (active tiles, core
    // placement, knower counts, clock regime) exactly once, here.
    if (event_) event_->bootstrap();
}

GossipNetwork::RunResult GossipNetwork::run_until(const std::function<bool()>& done,
                                                  Round max_rounds) {
    ensure_started();
    RunResult result;
    if (done()) { // already satisfied (e.g. empty workload)
        result.completed = true;
        result.rounds = round_;
        result.elapsed_seconds = elapsed_seconds();
        return result;
    }
    while (round_ < max_rounds) {
        step();
        if (done()) {
            result.completed = true;
            break;
        }
    }
    result.rounds = round_;
    result.elapsed_seconds = elapsed_seconds();
    return result;
}

void GossipNetwork::step() {
    ensure_started();
    if (event_) {
        SNOC_PROF("engine/event_step");
        event_->step();
        return;
    }
    packets_this_round_ = 0;
    // Fig. 3-4 phase order: receive (CRC filter + dedup) -> TTL decrement
    // and garbage collection -> forward.  The IP's turn (compute) sits
    // after ageing so freshly created messages are not aged in their own
    // creation round.  A copy therefore carries a strictly smaller TTL at
    // every hop and every rumor dies out deterministically.
    {
        SNOC_PROF("engine/receive");
        receive_phase();
    }
    {
        SNOC_PROF("engine/age");
        age_phase();
    }
    {
        SNOC_PROF("engine/compute");
        compute_phase();
    }
    {
        SNOC_PROF("engine/forward");
        forward_phase();
    }
    advance_clocks();
    metrics_.packets_per_round.push_back(packets_this_round_);
    ++round_;
    metrics_.rounds = round_;
    MetricsRegistry::global().inc(MetricId::EngineRoundsTotal);
    // A level-2 build re-verifies the conservation laws after every round,
    // even without an attached InvariantAuditor (compiled out otherwise).
    SNOC_CHECK(2, ledger().balanced());
}

void GossipNetwork::receive_phase() {
    auto& bucket = in_flight_[round_ % kInFlightRing];
    if (bucket.empty()) return;
    // Detach the bucket before processing: slow-clock deferrals re-enter
    // the ring at the next round's slot, which may alias this one's
    // storage once the ring wraps.  The swap recycles both vectors'
    // capacity across rounds.
    arrivals_scratch_.clear();
    std::swap(arrivals_scratch_, bucket);
    StepSink deliver_sink = direct_sink();
    for (auto& [dest, arrival] : arrivals_scratch_) {
        if (crash_state_.dead_tiles[dest]) { // delivered into silence
            ++metrics_.crash_drops;
            trace(TraceEventKind::CrashDrop, dest);
            continue;
        }
        if (!tile_active_this_round(dest)) {
            // The destination's slower clock domain has not reached this
            // round yet; the packet waits in the port buffer.
            in_flight_[(round_ + 1) % kInFlightRing].emplace_back(dest, std::move(arrival));
            continue;
        }
        auto& tile = tiles_[dest];
        // Forced overflow (p_overflow of Ch. 2) strikes before the CRC check:
        // the packet never makes it out of the port buffer.
        if (injector_.overflow_drop()) {
            ++metrics_.overflow_drops;
            ++metrics_.port_overflow_drops;
            trace(TraceEventKind::OverflowDrop, dest);
            continue;
        }
        // Finite input buffering: a tile can accept at most
        // in_buffer_capacity packets per round across its ports.
        if (tile.inbox_backlog >= config_.in_buffer_capacity) {
            ++metrics_.overflow_drops;
            ++metrics_.port_overflow_drops;
            trace(TraceEventKind::OverflowDrop, dest);
            continue;
        }
        ++tile.inbox_backlog;

        std::optional<Message> decoded;
        bool corrected_this_packet = false;
        if (config_.link_protection == LinkProtection::SecdedCorrect) {
            // Strip the SECDED layer first; single-bit upsets per word are
            // repaired here, before the CRC ever sees them.
            auto recovered = fec::recover(*arrival.wire);
            if (!recovered.ok) {
                ++metrics_.fec_uncorrectable;
                trace(TraceEventKind::FecUncorrectable, dest);
                continue;
            }
            metrics_.fec_corrected += recovered.corrected_words;
            corrected_this_packet = recovered.corrected_words > 0;
            decoded = Packet::decode_wire(recovered.payload);
        } else {
            decoded = Packet::decode_wire(*arrival.wire);
        }
        if (!decoded) {
            ++metrics_.crc_drops; // scrambled packet, CRC caught it
            trace(TraceEventKind::CrcDrop, dest);
            continue;
        }
        if (arrival.corrupted && !corrected_this_packet)
            ++metrics_.upsets_undetected;
        deliver_and_insert(dest, std::move(*decoded), deliver_sink);
    }
    for (auto& tile : tiles_) tile.inbox_backlog = 0;
}

void GossipNetwork::deliver_and_insert(TileId tile_id, Message message,
                                       StepSink& sink) {
    SNOC_PROF("engine/deliver");
    auto& tile = tiles_[tile_id];
    if (tile.send_buffer.knows(message.id)) {
        ++sink.metrics->duplicates_ignored;
        sink_trace(sink, TraceEventKind::DuplicateIgnored, tile_id, kNoTile,
                   message.id);
        return;
    }
    const bool for_me =
        message.destination == tile_id || message.destination == kBroadcast;
    if (for_me && tile.core) {
        Context ctx(*this, tile_id, sink);
        tile.core->on_message(message, ctx);
        ++sink.metrics->deliveries;
        sink_trace(sink, TraceEventKind::Delivered, tile_id, kNoTile, message.id);
    }
    if (config_.stop_spread_on_delivery && message.destination == tile_id) {
        if (sink.unicasts)
            sink.unicasts->push_back(message.id);
        else
            delivered_unicasts_.insert(message.id);
    }
    // The tile keeps relaying even when it is the destination: the rumor
    // lives until its TTL expires, which is what gives later tiles their
    // copies (Fig. 3-3: tiles 13-16 hear the message after the consumer).
    // A received copy always carries TTL >= 1 (ageing strips zeros before
    // forwarding), so the ledger counts every non-duplicate receive as
    // accepted; if that ever stopped holding, the copy would vanish
    // without a fate and the wire law would flag the leak.
    if (message.ttl > 0) {
        const MessageId id = message.id;
        MessageId evicted{kNoTile, 0};
        MessageId* evicted_out =
            (sink.tracing || sink.inserted) ? &evicted : nullptr;
        if (tile.send_buffer.insert(std::move(message), evicted_out)) {
            ++sink.metrics->packets_accepted;
            sink_trace(sink, TraceEventKind::Accepted, tile_id, kNoTile, id);
            if (sink.inserted) sink.inserted->push_back(id);
            if (sink.activated && tile.send_buffer.size() == 1)
                sink.activated->push_back(tile_id);
            if (evicted.origin != kNoTile) {
                ++sink.evictions;
                sink_trace(sink, TraceEventKind::BufferEvicted, tile_id, kNoTile,
                           evicted);
            }
        }
    }
}

void GossipNetwork::core_round(TileId t, StepSink& sink) {
    Context ctx(*this, t, sink);
    tiles_[t].core->on_round(ctx);
}

void GossipNetwork::compute_phase() {
    StepSink sink = direct_sink();
    for (TileId t = 0; t < tiles_.size(); ++t) {
        if (crash_state_.dead_tiles[t] || !tiles_[t].core) continue;
        if (!tile_active_this_round(t)) continue;
        core_round(t, sink);
    }
}

void GossipNetwork::forward_phase() {
    for (TileId t = 0; t < tiles_.size(); ++t) {
        if (crash_state_.dead_tiles[t]) continue;
        if (!tile_active_this_round(t)) continue;
        auto& tile = tiles_[t];
        if (tile.send_buffer.empty()) continue;
        const auto& nbrs = topology_.neighbours(t);
        const auto& links = topology_.out_links(t);
        std::size_t budget = forward_capacity_[t];
        const auto& msgs = tile.send_buffer.messages();
        // A capacity-limited tile (bus bridge) serves its buffer with a
        // rotating start so a long-lived rumor cannot starve newer ones of
        // the serialised medium.
        const std::size_t offset =
            (budget >= msgs.size()) ? 0 : static_cast<std::size_t>(round_) % msgs.size();
        for (std::size_t mi = 0; mi < msgs.size(); ++mi) {
            const Message& m = msgs[(mi + offset) % msgs.size()];
            if (budget == 0) break; // serialised medium saturated this round
            if (config_.stop_spread_on_delivery && delivered_unicasts_.contains(m.id))
                continue; // spread terminated early (Sec. 3.2.2)
            // Encode-once: the up-to-4 port transmissions of this message
            // share a single wire image, built lazily when the first port
            // gate opens (a message that forwards nowhere this round costs
            // no serialisation at all).  Upset transmissions copy before
            // corrupting; see enqueue_transmission.
            std::shared_ptr<const std::vector<std::byte>> wire;
            for (std::size_t i = 0; i < nbrs.size() && budget > 0; ++i) {
                // Fig. 3-4: the message is presented on every output port
                // and a random decision (probability p) gates each port.
                if (!forward_rng_[t].bernoulli(config_.forward_p)) continue;
                if (crash_state_.dead_links[links[i]]) continue;
                if (route_filter_[t] && !route_filter_[t](m, nbrs[i])) continue;
                if (!wire || config_.reference_encode_path) wire = encode_message(m);
                enqueue_transmission(t, nbrs[i], links[i], m.id, wire);
                --budget;
            }
        }
    }
}

std::shared_ptr<const std::vector<std::byte>> GossipNetwork::encode_message(
    const Message& m) const {
    SNOC_PROF("engine/encode");
    Packet p = Packet::encode(m);
    if (config_.link_protection == LinkProtection::SecdedCorrect) {
        auto protected_wire = fec::protect(p.wire());
        return std::make_shared<const std::vector<std::byte>>(
            std::move(protected_wire.bytes));
    }
    return std::make_shared<const std::vector<std::byte>>(std::move(p.mutable_wire()));
}

void GossipNetwork::enqueue_transmission(TileId from, TileId to, LinkId link,
                                         MessageId id,
                                         std::shared_ptr<const std::vector<std::byte>> wire) {
    Arrival arrival{std::move(wire), false};
    if (injector_.upset_roll()) {
        // Copy-on-corrupt: only the (rare) upset transmission pays for a
        // private copy of the bytes; clean ones alias the shared image.
        auto corrupted = std::make_shared<std::vector<std::byte>>(*arrival.wire);
        injector_.apply_upset(*corrupted);
        arrival.wire = std::move(corrupted);
        arrival.corrupted = true;
    }
    const std::size_t bits = arrival.wire->size() * 8;
    ++metrics_.packets_sent;
    ++packets_this_round_;
    metrics_.bits_sent += bits;
    metrics_.bits_sent_by_tile[from] += bits;
    ++metrics_.packets_by_link[link];
    trace(TraceEventKind::Transmitted, from, to, id);

    // A transmission into a crashed tile still burns bandwidth/energy but
    // is never received; model it by enqueuing (receive_phase drops it).
    Round arrival_round = round_ + 1;
    // Synchronisation errors: if the sender's clock domain runs ahead of
    // the receiver's by more than half a round, the packet misses the
    // receiver's next receive window and slips one round further.
    if (clocks_.skew(from, to) > clocks_.t_r() / 2.0) {
        ++arrival_round;
        ++metrics_.skew_deferrals;
        trace(TraceEventKind::SkewDeferral, from, to, id);
    }
    in_flight_[arrival_round % kInFlightRing].emplace_back(to, std::move(arrival));
}

void GossipNetwork::age_phase() {
    std::size_t sendbuf_overflows = 0;
    std::vector<MessageId> expired;
    for (TileId t = 0; t < tiles_.size(); ++t) {
        if (!crash_state_.dead_tiles[t] && tile_active_this_round(t)) {
            expired.clear();
            metrics_.ttl_expired += tiles_[t].send_buffer.age_and_collect(
                trace_ ? &expired : nullptr);
            for (const MessageId& id : expired)
                trace(TraceEventKind::TtlExpired, t, kNoTile, id);
        }
        sendbuf_overflows += tiles_[t].send_buffer.overflow_drops();
    }
    // SendBuffer counters are cumulative; fold in only this round's delta.
    metrics_.overflow_drops += sendbuf_overflows - sendbuf_overflow_snapshot_;
    sendbuf_overflow_snapshot_ = sendbuf_overflows;
}

void GossipNetwork::advance_clocks() {
    for (TileId t = 0; t < tiles_.size(); ++t) {
        if (!tile_active_this_round(t)) continue;
        const double scale = clock_scale_[t];
        clocks_.advance(t, injector_.round_duration(clocks_.t_r() * scale, t));
        if (scale > 1.0) next_action_round_[t] += scale;
    }
}

bool GossipNetwork::quiescent() const {
    for (const auto& bucket : in_flight_)
        if (!bucket.empty()) return false;
    // The event engine answers from its active set in O(shards); falls
    // back to the full scan before bootstrap (both see empty buffers).
    if (event_ && event_->bootstrapped()) return event_->no_active_tiles();
    for (const auto& tile : tiles_)
        if (!tile.send_buffer.empty()) return false;
    return true;
}

void GossipNetwork::drain(Round max_extra_rounds) {
    ensure_started(); // on_start may inject the very rumors we must drain
    for (Round i = 0; i < max_extra_rounds && !quiescent(); ++i) step();
}

const CrashState& GossipNetwork::crashes() {
    ensure_started();
    return crash_state_;
}

bool GossipNetwork::tile_alive(TileId t) {
    ensure_started();
    SNOC_EXPECT(t < tiles_.size());
    return !crash_state_.dead_tiles[t];
}

std::size_t GossipNetwork::live_link_count() {
    ensure_started();
    std::size_t live = 0;
    for (LinkId l = 0; l < topology_.link_count(); ++l) {
        const auto& ends = topology_.link(l);
        if (!crash_state_.dead_links[l] && !crash_state_.dead_tiles[ends.from] &&
            !crash_state_.dead_tiles[ends.to])
            ++live;
    }
    return live;
}

std::size_t GossipNetwork::tiles_knowing(const MessageId& id) {
    ensure_started();
    // The event engine keeps an exact per-rumor knower count (every
    // successful send-buffer insert is one new live knower; knows() is
    // monotone and crashes only roll at start), making the Fig. 3-1
    // spread predicate O(1) instead of O(N) per round on mega-meshes.
    if (event_) return event_->tiles_knowing(id);
    std::size_t count = 0;
    for (TileId t = 0; t < tiles_.size(); ++t)
        if (!crash_state_.dead_tiles[t] && tiles_[t].send_buffer.knows(id)) ++count;
    return count;
}

const SendBuffer& GossipNetwork::send_buffer(TileId t) const {
    SNOC_EXPECT(t < tiles_.size());
    return tiles_[t].send_buffer;
}

std::size_t GossipNetwork::in_flight_packets() const {
    std::size_t n = 0;
    for (const auto& bucket : in_flight_) n += bucket.size();
    return n;
}

check::ConservationLedger GossipNetwork::ledger() const {
    check::ConservationLedger ledger;
    ledger.injected = metrics_.messages_created;
    ledger.transmitted = metrics_.packets_sent; // [mutation-point:ledger-transmitted]
    ledger.in_flight = in_flight_packets();
    ledger.crash_drops = metrics_.crash_drops;
    ledger.port_overflow_drops = metrics_.port_overflow_drops;
    ledger.fec_uncorrectable = metrics_.fec_uncorrectable;
    ledger.crc_drops = metrics_.crc_drops;
    ledger.duplicates = metrics_.duplicates_ignored;
    ledger.accepted = metrics_.packets_accepted;
    ledger.ttl_expired = metrics_.ttl_expired;
    // Read eviction counts straight off the buffers rather than from
    // metrics_.overflow_drops: the metric folds eviction deltas in at the
    // next age phase, so it can trail the buffers by part of a round.
    for (const auto& tile : tiles_) {
        ledger.sendbuf_evictions += tile.send_buffer.overflow_drops();
        ledger.buffered += tile.send_buffer.size();
    }
    return ledger;
}

} // namespace snoc
