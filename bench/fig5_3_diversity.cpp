// Figure 5-3: on-chip diversity — comparing the three Fig. 5-2
// communication architectures on the acoustic beamforming workload.
//
// Expected shape (thesis, preliminary experiment with [42]): the
// hierarchical NoC has the lowest number of message transmissions (lowest
// power); the flat NoC has slightly better latency than the others; the
// bus-connected NoCs are the least efficient, but ease migration from
// today's bus-based designs.
#include <iostream>

#include "bench_util.hpp"
#include "diversity/architecture.hpp"

int main(int argc, char** argv) {
    using namespace snoc;
    const bool csv = bench::want_csv(argc, argv);
    constexpr std::size_t kFrames = 4;
    const std::size_t kRepeats = bench::want_repeats(argc, argv, 5);
    const std::size_t kJobs = bench::want_jobs(argc, argv);

    Table table({"architecture", "latency [rounds]", "message transmissions",
                 "completion"});
    double flat_tx = 0.0, hier_tx = 0.0, flat_lat = 0.0, bus_lat = 0.0;
    for (auto kind : {diversity::ArchitectureKind::FlatNoc,
                      diversity::ArchitectureKind::HierarchicalNoc,
                      diversity::ArchitectureKind::CentralRouterMesh,
                      diversity::ArchitectureKind::BusConnectedNocs}) {
        const auto trials = run_trials(
            kRepeats,
            [&](std::uint64_t seed) {
                return diversity::run_beamforming(
                    kind, kFrames, bench::config_with_p(0.75, 40),
                    FaultScenario::none(), seed);
            },
            kJobs);
        Accumulator rounds, transmissions;
        std::size_t completed = 0;
        for (const auto& r : trials) {
            if (!r.completed) continue;
            ++completed;
            rounds.add(static_cast<double>(r.rounds));
            transmissions.add(static_cast<double>(r.transmissions));
        }
        table.add_row({to_string(kind), format_number(rounds.mean(), 1),
                       format_number(transmissions.mean(), 0),
                       format_number(100.0 * completed / kRepeats, 0) + "%"});
        switch (kind) {
        case diversity::ArchitectureKind::FlatNoc:
            flat_tx = transmissions.mean();
            flat_lat = rounds.mean();
            break;
        case diversity::ArchitectureKind::HierarchicalNoc:
            hier_tx = transmissions.mean();
            break;
        case diversity::ArchitectureKind::BusConnectedNocs:
            bus_lat = rounds.mean();
            break;
        case diversity::ArchitectureKind::CentralRouterMesh:
            break; // extension row, not part of the Fig. 5-3 ratios
        }
    }
    bench::emit(table, csv, "Fig. 5-3: on-chip diversity architecture comparison");
    std::cout << "\nflat/hierarchical transmission ratio: "
              << format_number(flat_tx / hier_tx, 2)
              << " (paper: flat highest, hierarchical lowest)\n"
              << "bus/flat latency ratio: " << format_number(bus_lat / flat_lat, 2)
              << " (paper: flat slightly best)\n";
    return (hier_tx < flat_tx && flat_lat <= bus_lat) ? 0 : 1;
}
