// Iterative encoding + bit reservoir (the last two DSP stages of Fig. 4-7a).
//
// The rate-control loop mirrors MP3's inner loop: a global gain scales the
// MDCT lines before integer quantisation; the loop searches the smallest
// gain (finest quantisation) whose coded size fits the frame budget plus
// whatever the bit reservoir can lend.  Per-band scale factors derived
// from the psychoacoustic thresholds shape the noise floor.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "apps/psycho.hpp"

namespace snoc::apps {

struct QuantizedFrame {
    std::uint32_t frame_index{0};
    double global_gain{1.0};
    std::vector<double> band_scale;   ///< per-band divisor applied pre-rounding.
    std::vector<std::int32_t> values; ///< quantised MDCT lines.
    std::size_t coded_bits{0};        ///< entropy-coded size estimate.
};

/// Size of one quantised line under the coded-size model: a unary-length
/// prefix plus magnitude bits (an idealised Golomb/Huffman hybrid); zero
/// runs are nearly free, large values expensive — the shape that drives
/// real rate-control loops.
std::size_t coded_bits_of(std::int32_t value);
std::size_t coded_bits_of(const std::vector<std::int32_t>& values);

/// Dequantise (the decoder's view) — used by tests to bound the noise.
std::vector<double> dequantize(const QuantizedFrame& frame);

class IterativeQuantizer {
public:
    /// `bands` maps each MDCT line to a band (see band_of_lines).
    IterativeQuantizer(std::vector<std::size_t> bands, std::size_t band_count);

    /// Quantise `lines` so coded size <= budget_bits, shaping noise by the
    /// psychoacoustic thresholds.  The gain search doubles the step until
    /// the frame fits (always terminates: all-zero codes cost the minimum).
    QuantizedFrame quantize(const std::vector<double>& lines,
                            const PsychoAnalysis& psycho, std::size_t budget_bits,
                            std::uint32_t frame_index) const;

private:
    std::vector<std::size_t> bands_;
    std::size_t band_count_;
};

/// The bit reservoir: unused bits of cheap frames fund expensive frames.
class BitReservoir {
public:
    explicit BitReservoir(std::size_t capacity_bits);

    std::size_t capacity() const { return capacity_; }
    std::size_t level() const { return level_; }

    /// Bits this frame may spend: base budget + everything banked.
    std::size_t available(std::size_t frame_budget) const { return frame_budget + level_; }

    /// Record a frame that used `used` bits of a `frame_budget` allowance;
    /// surplus is banked (up to capacity), deficit drains the bank.
    void settle(std::size_t frame_budget, std::size_t used);

private:
    std::size_t capacity_;
    std::size_t level_{0};
};

} // namespace snoc::apps
