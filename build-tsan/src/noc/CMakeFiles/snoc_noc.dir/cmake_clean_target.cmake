file(REMOVE_RECURSE
  "libsnoc_noc.a"
)
