// The parallel Monte-Carlo trial runner (common/parallel.hpp) and its
// determinism contract: run_trials must return bit-identical results for
// any worker count, because every figure and ablation now routes its seed
// loop through it.  Run these under ThreadSanitizer via
// `cmake -DSNOC_SANITIZE=thread` + `ctest -L parallel`.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "bench_util.hpp"
#include "common/parallel.hpp"

namespace snoc {
namespace {

TEST(DefaultJobs, IsPositive) { EXPECT_GE(default_jobs(), 1u); }

TEST(ThreadPool, RunsSubmittedJobs) {
    ThreadPool pool(3);
    EXPECT_EQ(pool.size(), 3u);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&counter] { counter.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
    ThreadPool pool(2);
    pool.wait_idle(); // must not deadlock with nothing queued
}

TEST(RunTrials, ResultsAreIndexedByTrial) {
    const auto results =
        run_trials(64, [](std::uint64_t i) { return i * i; }, 4);
    ASSERT_EQ(results.size(), 64u);
    for (std::uint64_t i = 0; i < 64; ++i) EXPECT_EQ(results[i], i * i);
}

TEST(RunTrials, ZeroTrialsYieldsEmpty) {
    const auto results = run_trials(0, [](std::uint64_t) { return 1; }, 4);
    EXPECT_TRUE(results.empty());
}

TEST(RunTrials, SerialPathMatchesParallelPath) {
    auto fn = [](std::uint64_t i) {
        RngStream rng(splitmix64(i));
        double acc = 0.0;
        for (int k = 0; k < 1000; ++k) acc += rng.uniform();
        return acc;
    };
    const auto serial = run_trials(32, fn, 1);
    const auto parallel = run_trials(32, fn, 4);
    EXPECT_EQ(serial, parallel); // bit-identical, not approximately equal
}

TEST(RunTrials, MoreJobsThanTrialsIsFine) {
    const auto results =
        run_trials(3, [](std::uint64_t i) { return i + 1; }, 16);
    EXPECT_EQ(results, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(RunTrials, FirstExceptionPropagates) {
    auto boom = [](std::uint64_t i) -> int {
        if (i == 5) throw std::runtime_error("trial 5 failed");
        return static_cast<int>(i);
    };
    EXPECT_THROW((void)run_trials(16, boom, 4), std::runtime_error);
    EXPECT_THROW((void)run_trials(16, boom, 1), std::runtime_error);
}

// The headline determinism property: a full application trial (the pi
// Master-Slave workload, gossip network and all) produces identical
// per-seed measurements whether the fan-out uses one worker or four.
TEST(RunTrials, AppTrialsAreBitIdenticalAcrossJobCounts) {
    auto trial = [](std::uint64_t seed) {
        return bench::run_pi_once(bench::config_with_p(0.5, 30),
                                  FaultScenario::none(), 1, seed);
    };
    const auto serial = run_trials(6, trial, 1);
    const auto parallel = run_trials(6, trial, 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].completed, parallel[i].completed) << i;
        EXPECT_EQ(serial[i].rounds, parallel[i].rounds) << i;
        EXPECT_EQ(serial[i].transmissions, parallel[i].transmissions) << i;
        EXPECT_EQ(serial[i].bits, parallel[i].bits) << i;
        EXPECT_DOUBLE_EQ(serial[i].seconds, parallel[i].seconds) << i;
    }
}

TEST(AverageRuns, ZeroRepeatsIsSafe) {
    // Used to divide by zero (NaN completion rate); now a well-defined
    // empty average.
    const auto avg = bench::average_runs(
        [](std::uint64_t) { return RunReport{}; }, 0);
    EXPECT_EQ(avg.completion_rate, 0.0);
    EXPECT_EQ(avg.rounds, 0.0);
    EXPECT_EQ(avg.transmissions, 0.0);
}

TEST(AverageRuns, CountsOnlyCompletedRuns) {
    const auto avg = bench::average_runs(
        [](std::uint64_t seed) {
            RunReport r;
            r.completed = seed % 2 == 0;
            r.rounds = 10;
            r.transmissions = 100;
            return r;
        },
        8, 2);
    EXPECT_DOUBLE_EQ(avg.completion_rate, 0.5);
    EXPECT_DOUBLE_EQ(avg.rounds, 10.0);
    EXPECT_DOUBLE_EQ(avg.transmissions, 100.0);
}

TEST(AverageRuns, SameMeansForAnyJobCount) {
    auto trial = [](std::uint64_t seed) {
        return bench::run_pi_once(bench::config_with_p(0.75, 30),
                                  FaultScenario::none(), 0, seed);
    };
    const auto serial = bench::average_runs(trial, 4, 1);
    const auto parallel = bench::average_runs(trial, 4, 4);
    EXPECT_DOUBLE_EQ(serial.rounds, parallel.rounds);
    EXPECT_DOUBLE_EQ(serial.transmissions, parallel.transmissions);
    EXPECT_DOUBLE_EQ(serial.bits, parallel.bits);
    EXPECT_DOUBLE_EQ(serial.completion_rate, parallel.completion_rate);
}

} // namespace
} // namespace snoc
