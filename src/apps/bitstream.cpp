#include "apps/bitstream.hpp"

#include "common/expect.hpp"

namespace snoc::apps {

void BitWriter::put_bit(bool bit) {
    const std::size_t byte = bits_ / 8;
    if (byte == bytes_.size()) bytes_.push_back(std::byte{0});
    if (bit) bytes_[byte] |= static_cast<std::byte>(1u << (7 - bits_ % 8));
    ++bits_;
}

void BitWriter::put_bits(std::uint32_t value, std::size_t count) {
    SNOC_EXPECT(count <= 32);
    for (std::size_t i = count; i-- > 0;) put_bit((value >> i) & 1u);
}

void BitWriter::put_line(std::int32_t value) {
    if (value == 0) {
        put_bit(false);
        return;
    }
    const std::uint32_t mag = static_cast<std::uint32_t>(value < 0 ? -value : value);
    std::size_t len = 0;
    for (std::uint32_t v = mag; v != 0; v >>= 1) ++len;
    // '1' marks non-zero; then (len-1) more '1's and a terminating '0'
    // encode len in unary; then the len-1 low bits of mag (the leading 1
    // is implied); then the sign.  Total: 2*len + 1 bits.
    put_bit(true);
    for (std::size_t i = 1; i < len; ++i) put_bit(true);
    put_bit(false);
    put_bits(mag & ((1u << (len - 1)) - 1u), len - 1);
    put_bit(value < 0);
}

std::vector<std::byte> BitWriter::take() { return std::move(bytes_); }

BitReader::BitReader(std::vector<std::byte> bytes, std::size_t bit_count)
    : bytes_(std::move(bytes)), bit_count_(bit_count) {
    SNOC_EXPECT(bit_count_ <= bytes_.size() * 8);
}

bool BitReader::get_bit() {
    SNOC_EXPECT(pos_ < bit_count_);
    const bool bit =
        (bytes_[pos_ / 8] & static_cast<std::byte>(1u << (7 - pos_ % 8))) != std::byte{0};
    ++pos_;
    return bit;
}

std::uint32_t BitReader::get_bits(std::size_t count) {
    SNOC_EXPECT(count <= 32);
    std::uint32_t v = 0;
    for (std::size_t i = 0; i < count; ++i) v = (v << 1) | (get_bit() ? 1u : 0u);
    return v;
}

std::int32_t BitReader::get_line() {
    // First bit: 0 -> zero line; 1.. -> unary length run.
    if (!get_bit()) return 0;
    std::size_t len = 1;
    while (get_bit()) ++len;
    const std::uint32_t low = (len > 1) ? get_bits(len - 1) : 0;
    const std::uint32_t mag = (1u << (len - 1)) | low;
    const bool negative = get_bit();
    return negative ? -static_cast<std::int32_t>(mag) : static_cast<std::int32_t>(mag);
}

std::pair<std::vector<std::byte>, std::size_t> pack_lines(
    const std::vector<std::int32_t>& lines) {
    BitWriter w;
    for (std::int32_t v : lines) w.put_line(v);
    const std::size_t bits = w.bit_count();
    return {w.take(), bits};
}

std::vector<std::int32_t> unpack_lines(const std::vector<std::byte>& bytes,
                                       std::size_t bit_count, std::size_t line_count) {
    BitReader r(bytes, bit_count);
    std::vector<std::int32_t> out;
    out.reserve(line_count);
    for (std::size_t i = 0; i < line_count; ++i) out.push_back(r.get_line());
    return out;
}

} // namespace snoc::apps
