// Ablation (ours): the TTL knob.  Sec. 3.2.2 notes the spread "could be
// terminated even earlier in order to reduce the number of messages" —
// TTL directly bounds bandwidth and energy (Sec. 3.3).  This bench sweeps
// TTL for a broadcast on a 5x5 mesh and reports delivery probability,
// total packets (energy proxy) and latency.
#include <iostream>
#include <memory>

#include "bench_util.hpp"

namespace {

class CornerSource final : public snoc::IpCore {
public:
    void on_start(snoc::TileContext& ctx) override {
        ctx.send(24, 0xAB, {std::byte{1}});
    }
    void on_message(const snoc::Message&, snoc::TileContext&) override {}
};

class CornerSink final : public snoc::IpCore {
public:
    void on_message(const snoc::Message&, snoc::TileContext& ctx) override {
        if (!round_) round_ = ctx.round();
    }
    std::optional<snoc::Round> round() const { return round_; }

private:
    std::optional<snoc::Round> round_;
};

} // namespace

namespace {

struct TtlTrial {
    bool delivered{false};
    snoc::Round latency{0};
    std::size_t packets{0};
};

} // namespace

int main(int argc, char** argv) {
    using namespace snoc;
    const auto opt = bench::options(argc, argv, 40);

    Table table({"TTL", "delivery [%]", "avg packets", "avg latency [rounds]"});
    for (std::uint16_t ttl : {2, 4, 6, 8, 12, 16, 24, 32}) {
        // Independent Monte-Carlo trials: each builds its own network from
        // its seed, so the fan-out is bit-identical to the serial loop.
        const auto trials = run_trials(
            opt.repeats,
            [&](std::uint64_t seed) {
                GossipConfig c = bench::config_with_p(0.5);
                c.default_ttl = ttl;
                GossipNetwork net(Topology::mesh(5, 5), c, FaultScenario::none(),
                                  seed, bench::engine_select(opt));
                auto sink = std::make_unique<CornerSink>();
                const CornerSink& s = *sink;
                net.attach(0, std::make_unique<CornerSource>());
                net.attach(24, std::move(sink));
                net.run_until([&s] { return s.round().has_value(); }, 200);
                net.drain();
                TtlTrial out;
                out.packets = net.metrics().packets_sent;
                if (s.round()) {
                    out.delivered = true;
                    out.latency = *s.round();
                }
                return out;
            },
            opt.jobs);
        std::size_t delivered = 0;
        Accumulator packets, latency;
        for (const TtlTrial& t : trials) {
            packets.add(static_cast<double>(t.packets));
            if (t.delivered) {
                ++delivered;
                latency.add(static_cast<double>(t.latency));
            }
        }
        table.add_row({std::to_string(ttl),
                       format_number(100.0 * delivered / opt.repeats, 1),
                       format_number(packets.mean(), 0),
                       delivered ? format_number(latency.mean(), 1) : "-"});
    }
    bench::emit(table, opt,
                "Ablation: TTL vs delivery probability / bandwidth / latency "
                "(corner-to-corner on 5x5, p=0.5)");
    return 0;
}
