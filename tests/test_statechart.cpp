#include "sim/statechart.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "core/gossip_statechart.hpp"

namespace snoc::sc {
namespace {

// ---------------------------------------------------------------------------
// Core statechart semantics.

struct TrafficLight {
    Statechart chart;
    StateId root, red, green, yellow;
    std::vector<std::string> log;

    TrafficLight() {
        root = chart.add_state("Light", Composition::Exclusive);
        red = chart.add_state("Red", Composition::Leaf, root);
        green = chart.add_state("Green", Composition::Leaf, root);
        yellow = chart.add_state("Yellow", Composition::Leaf, root);
        chart.set_initial(root, red);
        chart.on_entry(red, [this] { log.push_back("+red"); });
        chart.on_exit(red, [this] { log.push_back("-red"); });
        chart.on_entry(green, [this] { log.push_back("+green"); });
        chart.add_transition({red, green, 1, nullptr, nullptr});
        chart.add_transition({green, yellow, 1, nullptr, nullptr});
        chart.add_transition({yellow, red, 1, nullptr, nullptr});
        chart.start();
    }
};

TEST(Statechart, InitialConfiguration) {
    TrafficLight t;
    EXPECT_TRUE(t.chart.in(t.root));
    EXPECT_TRUE(t.chart.in(t.red));
    EXPECT_FALSE(t.chart.in(t.green));
    EXPECT_EQ(t.log, (std::vector<std::string>{"+red"}));
}

TEST(Statechart, ExclusiveCycling) {
    TrafficLight t;
    t.chart.dispatch({1, 0});
    EXPECT_TRUE(t.chart.in(t.green));
    EXPECT_FALSE(t.chart.in(t.red));
    t.chart.dispatch({1, 0});
    EXPECT_TRUE(t.chart.in(t.yellow));
    t.chart.dispatch({1, 0});
    EXPECT_TRUE(t.chart.in(t.red));
}

TEST(Statechart, EntryExitHooksFireInOrder) {
    TrafficLight t;
    t.chart.dispatch({1, 0});
    EXPECT_EQ(t.log, (std::vector<std::string>{"+red", "-red", "+green"}));
}

TEST(Statechart, GuardBlocksTransition) {
    Statechart c;
    const auto root = c.add_state("r", Composition::Exclusive);
    const auto a = c.add_state("a", Composition::Leaf, root);
    const auto b = c.add_state("b", Composition::Leaf, root);
    c.set_initial(root, a);
    bool open = false;
    c.add_transition({a, b, 1, [&open](const Event&) { return open; }, nullptr});
    c.start();
    c.dispatch({1, 0});
    EXPECT_TRUE(c.in(a));
    open = true;
    c.dispatch({1, 0});
    EXPECT_TRUE(c.in(b));
}

TEST(Statechart, GuardEvaluatedAtMostOncePerEvent) {
    Statechart c;
    const auto root = c.add_state("r", Composition::Exclusive);
    const auto a = c.add_state("a", Composition::Leaf, root);
    const auto b = c.add_state("b", Composition::Leaf, root);
    c.set_initial(root, a);
    int evaluations = 0;
    c.add_transition({a, b, 1,
                      [&evaluations](const Event&) {
                          ++evaluations;
                          return false;
                      },
                      nullptr});
    // A second transition that fires, forcing a re-scan.
    c.add_transition({a, a, 1, nullptr, nullptr});
    c.start();
    c.dispatch({1, 0});
    EXPECT_EQ(evaluations, 1);
}

TEST(Statechart, ParallelRegionsAreIndependent) {
    Statechart c;
    const auto root = c.add_state("root", Composition::Parallel);
    const auto r1 = c.add_state("r1", Composition::Exclusive, root);
    const auto r2 = c.add_state("r2", Composition::Exclusive, root);
    const auto a1 = c.add_state("a1", Composition::Leaf, r1);
    const auto b1 = c.add_state("b1", Composition::Leaf, r1);
    const auto a2 = c.add_state("a2", Composition::Leaf, r2);
    const auto b2 = c.add_state("b2", Composition::Leaf, r2);
    c.set_initial(r1, a1);
    c.set_initial(r2, a2);
    c.add_transition({a1, b1, 1, nullptr, nullptr});
    c.add_transition({a2, b2, 2, nullptr, nullptr});
    c.start();
    EXPECT_TRUE(c.in(a1));
    EXPECT_TRUE(c.in(a2));
    c.dispatch({1, 0});
    EXPECT_TRUE(c.in(b1));
    EXPECT_TRUE(c.in(a2)); // other region untouched
    c.dispatch({2, 0});
    EXPECT_TRUE(c.in(b2));
}

TEST(Statechart, OneEventCanFireBothRegions) {
    Statechart c;
    const auto root = c.add_state("root", Composition::Parallel);
    const auto r1 = c.add_state("r1", Composition::Exclusive, root);
    const auto r2 = c.add_state("r2", Composition::Exclusive, root);
    const auto a1 = c.add_state("a1", Composition::Leaf, r1);
    const auto b1 = c.add_state("b1", Composition::Leaf, r1);
    const auto a2 = c.add_state("a2", Composition::Leaf, r2);
    const auto b2 = c.add_state("b2", Composition::Leaf, r2);
    c.set_initial(r1, a1);
    c.set_initial(r2, a2);
    c.add_transition({a1, b1, 7, nullptr, nullptr});
    c.add_transition({a2, b2, 7, nullptr, nullptr});
    c.start();
    c.dispatch({7, 0});
    EXPECT_TRUE(c.in(b1));
    EXPECT_TRUE(c.in(b2));
}

TEST(Statechart, SelfLoopDoesNotLivelock) {
    Statechart c;
    const auto root = c.add_state("root", Composition::Exclusive);
    const auto a = c.add_state("a", Composition::Leaf, root);
    c.set_initial(root, a);
    int fired = 0;
    c.add_transition({a, a, 1, nullptr, [&fired](const Event&) { ++fired; }});
    c.start();
    c.dispatch({1, 0});
    EXPECT_EQ(fired, 1);
}

TEST(Statechart, ActiveLeavesListsConfiguration) {
    TrafficLight t;
    const auto leaves = t.chart.active_leaves();
    ASSERT_EQ(leaves.size(), 1u);
    EXPECT_EQ(leaves[0], t.red);
    EXPECT_EQ(t.chart.name(leaves[0]), "Red");
}

TEST(Statechart, StructuralValidation) {
    Statechart c;
    const auto root = c.add_state("root", Composition::Exclusive);
    EXPECT_THROW(c.add_state("root2", Composition::Leaf), ContractViolation);
    const auto leaf = c.add_state("leaf", Composition::Leaf, root);
    EXPECT_THROW(c.add_state("x", Composition::Leaf, leaf), ContractViolation);
    EXPECT_THROW(c.start(), ContractViolation); // no initial configured
    c.set_initial(root, leaf);
    c.start();
    EXPECT_THROW(c.start(), ContractViolation); // double start
}

// ---------------------------------------------------------------------------
// The Fig. 3-4 tile chart vs a hand-rolled reference.

Message make_msg(TileId origin, std::uint32_t seq, std::uint16_t ttl) {
    Message m;
    m.id = MessageId{origin, seq};
    m.source = origin;
    m.destination = 0;
    m.ttl = ttl;
    return m;
}

TEST(GossipTileChart, FloodingTransmitsOnAllPortsEveryRound) {
    std::vector<std::pair<MessageId, Port>> sent;
    GossipTileChart tile(1.0, 16, /*seed=*/1,
                         [&sent](const Message& m, Port p) {
                             sent.emplace_back(m.id, p);
                         });
    tile.create(make_msg(7, 0, 3));
    tile.run_round({});
    // TTL 3 -> 2 in GC, then 4 ports.
    EXPECT_EQ(sent.size(), 4u);
    tile.run_round({});
    EXPECT_EQ(sent.size(), 8u);
    tile.run_round({}); // TTL hits 0 in GC: nothing sent
    EXPECT_EQ(sent.size(), 8u);
    EXPECT_TRUE(tile.buffer().empty());
    EXPECT_EQ(tile.ttl_expired(), 1u);
    EXPECT_EQ(tile.rounds_run(), 3u);
}

TEST(GossipTileChart, ZeroPNeverTransmits) {
    std::size_t transmissions = 0;
    GossipTileChart tile(0.0, 16, 2,
                         [&transmissions](const Message&, Port) { ++transmissions; });
    tile.create(make_msg(7, 0, 5));
    for (int i = 0; i < 4; ++i) tile.run_round({});
    EXPECT_EQ(transmissions, 0u);
}

TEST(GossipTileChart, ReceivedMessagesMergeWithDedup) {
    std::size_t transmissions = 0;
    GossipTileChart tile(1.0, 16, 3,
                         [&transmissions](const Message&, Port) { ++transmissions; });
    tile.run_round({make_msg(1, 0, 4), make_msg(1, 0, 4), make_msg(2, 0, 4)});
    EXPECT_EQ(tile.buffer().size(), 2u); // duplicate suppressed
    EXPECT_EQ(transmissions, 8u);        // 2 messages x 4 ports
}

TEST(GossipTileChart, TransmissionRateMatchesP) {
    std::size_t transmissions = 0;
    GossipTileChart tile(0.5, 16, 4,
                         [&transmissions](const Message&, Port) { ++transmissions; });
    tile.create(make_msg(9, 0, 401));
    const std::size_t rounds = 400;
    for (std::size_t i = 0; i < rounds; ++i) tile.run_round({});
    // E[transmissions] = rounds * 4 * p = 800; 4-sigma band.
    const double expected = rounds * 4 * 0.5;
    const double sigma = std::sqrt(rounds * 4 * 0.25);
    EXPECT_NEAR(static_cast<double>(transmissions), expected, 4.0 * sigma);
}

TEST(GossipTileChart, MatchesReferenceSendBufferEvolution) {
    // Drive chart and a plain SendBuffer with the same script; the buffer
    // contents must match after every round (transmissions differ only in
    // the Bernoulli draws, which the reference doesn't model).
    GossipTileChart tile(1.0, 8, 5, [](const Message&, Port) {});
    SendBuffer reference(8);
    RngStream script(99);
    for (int round = 0; round < 30; ++round) {
        std::vector<Message> incoming;
        const auto n = script.below(3);
        for (std::uint64_t i = 0; i < n; ++i)
            incoming.push_back(make_msg(static_cast<TileId>(script.below(4)),
                                        static_cast<std::uint32_t>(script.below(6)),
                                        static_cast<std::uint16_t>(1 + script.below(5))));
        // Reference: Fig. 3-4 order (merge, age, collect).
        for (const auto& m : incoming) reference.insert(m);
        reference.age_and_collect();
        tile.run_round(incoming);

        ASSERT_EQ(tile.buffer().size(), reference.size()) << "round " << round;
        for (std::size_t i = 0; i < reference.size(); ++i) {
            EXPECT_EQ(tile.buffer().messages()[i].id, reference.messages()[i].id);
            EXPECT_EQ(tile.buffer().messages()[i].ttl, reference.messages()[i].ttl);
        }
    }
}

} // namespace
} // namespace snoc::sc
