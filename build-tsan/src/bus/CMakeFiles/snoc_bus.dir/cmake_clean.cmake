file(REMOVE_RECURSE
  "CMakeFiles/snoc_bus.dir/broadcast_tree.cpp.o"
  "CMakeFiles/snoc_bus.dir/broadcast_tree.cpp.o.d"
  "CMakeFiles/snoc_bus.dir/bus.cpp.o"
  "CMakeFiles/snoc_bus.dir/bus.cpp.o.d"
  "CMakeFiles/snoc_bus.dir/deflection.cpp.o"
  "CMakeFiles/snoc_bus.dir/deflection.cpp.o.d"
  "CMakeFiles/snoc_bus.dir/xy_router.cpp.o"
  "CMakeFiles/snoc_bus.dir/xy_router.cpp.o.d"
  "libsnoc_bus.a"
  "libsnoc_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snoc_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
