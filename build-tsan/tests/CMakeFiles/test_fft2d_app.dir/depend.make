# Empty dependencies file for test_fft2d_app.
# This may be replaced when dependencies are built.
