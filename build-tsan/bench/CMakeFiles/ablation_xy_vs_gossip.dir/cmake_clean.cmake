file(REMOVE_RECURSE
  "CMakeFiles/ablation_xy_vs_gossip.dir/ablation_xy_vs_gossip.cpp.o"
  "CMakeFiles/ablation_xy_vs_gossip.dir/ablation_xy_vs_gossip.cpp.o.d"
  "ablation_xy_vs_gossip"
  "ablation_xy_vs_gossip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_xy_vs_gossip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
