#include "noc/packet.hpp"

#include <cstring>
#include <span>

#include "common/expect.hpp"
#include "noc/crc.hpp"

namespace snoc {

namespace {

// Little-endian scalar append/read helpers over the wire buffer.
template <typename T>
void put(std::vector<std::byte>& out, T v) {
    static_assert(std::is_integral_v<T>);
    for (std::size_t i = 0; i < sizeof(T); ++i)
        out.push_back(static_cast<std::byte>((static_cast<std::uint64_t>(v) >> (8 * i)) & 0xFF));
}

template <typename T>
bool get(std::span<const std::byte> in, std::size_t& pos, T& v) {
    if (pos + sizeof(T) > in.size()) return false;
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i)
        acc |= static_cast<std::uint64_t>(in[pos + i]) << (8 * i);
    v = static_cast<T>(acc);
    pos += sizeof(T);
    return true;
}

constexpr std::size_t kHeaderBytes = 4 /*origin*/ + 4 /*seq*/ + 4 /*src*/ +
                                     4 /*dst*/ + 4 /*tag*/ + 2 /*ttl*/ +
                                     4 /*payload len*/;
constexpr std::size_t kCrcBytes = 4;

} // namespace

Packet Packet::encode(const Message& m) {
    std::vector<std::byte> wire;
    wire.reserve(kHeaderBytes + m.payload.size() + kCrcBytes);
    put<std::uint32_t>(wire, m.id.origin);
    put<std::uint32_t>(wire, m.id.sequence);
    put<std::uint32_t>(wire, m.source);
    put<std::uint32_t>(wire, m.destination);
    put<std::uint32_t>(wire, m.tag);
    put<std::uint16_t>(wire, m.ttl);
    put<std::uint32_t>(wire, static_cast<std::uint32_t>(m.payload.size()));
    wire.insert(wire.end(), m.payload.begin(), m.payload.end());
    const std::uint32_t crc = crc::crc32(std::span<const std::byte>(wire));
    put<std::uint32_t>(wire, crc);
    return Packet(std::move(wire));
}

Packet Packet::from_wire(std::vector<std::byte> wire) { return Packet(std::move(wire)); }

bool Packet::crc_ok() const { return crc_ok_wire(wire_); }

std::optional<Message> Packet::decode() const { return decode_wire(wire_); }

bool Packet::crc_ok_wire(std::span<const std::byte> wire) {
    if (wire.size() < kHeaderBytes + kCrcBytes) return false;
    const std::size_t body = wire.size() - kCrcBytes;
    std::size_t pos = body;
    std::uint32_t stored = 0;
    if (!get(wire, pos, stored)) return false;
    const std::uint32_t computed = crc::crc32(wire.subspan(0, body));
    return stored == computed;
}

std::optional<Message> Packet::decode_wire(std::span<const std::byte> wire) {
    if (!crc_ok_wire(wire)) return std::nullopt;
    std::size_t pos = 0;
    Message m;
    std::uint32_t payload_len = 0;
    if (!get(wire, pos, m.id.origin) || !get(wire, pos, m.id.sequence) ||
        !get(wire, pos, m.source) || !get(wire, pos, m.destination) ||
        !get(wire, pos, m.tag) || !get(wire, pos, m.ttl) || !get(wire, pos, payload_len))
        return std::nullopt;
    if (pos + payload_len + kCrcBytes != wire.size()) return std::nullopt;
    const auto* base = wire.data() + pos;
    m.payload.assign(base, base + payload_len);
    return m;
}

} // namespace snoc
