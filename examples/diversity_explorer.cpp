// Chapter 5, interactive-ish: run the acoustic-beamforming workload on the
// three on-chip-diversity communication architectures of Fig. 5-2 and
// compare latency and message transmissions, with and without faults.
//
// Usage: diversity_explorer [frames] [seed]
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "diversity/architecture.hpp"
#include "sim/scenario.hpp"

using namespace snoc;

int main(int argc, char** argv) {
    const std::size_t frames =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4;
    const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

    GossipConfig config;
    config.forward_p = 0.75;
    config.default_ttl = 40;

    const std::vector<diversity::ArchitectureKind> kKinds{
        diversity::ArchitectureKind::FlatNoc,
        diversity::ArchitectureKind::HierarchicalNoc,
        diversity::ArchitectureKind::BusConnectedNocs};

    std::cout << "On-chip diversity explorer: beamforming, " << frames
              << " frames, 16 sensors + 4 aggregators + 1 combiner\n\n";

    for (const bool faulty : {false, true}) {
        FaultScenario scenario;
        if (faulty) scenario.p_upset = 0.3;

        ExperimentSpec spec;
        spec.name = faulty ? "diversity (upsets)" : "diversity (healthy)";
        spec.axes = {{"arch", {0, 1, 2}}};
        spec.repeats = 1;
        spec.base_seed = seed;
        spec.max_rounds = 20000;
        spec.backend = [&](const SweepPoint& pt, std::uint64_t s) {
            return diversity::make_interconnect(kKinds[pt.index_of("arch")],
                                                config, scenario, s);
        };
        spec.trace = [&](const SweepPoint& pt) {
            const auto arch =
                diversity::make_architecture(kKinds[pt.index_of("arch")]);
            return diversity::beamforming_trace_for(arch, frames);
        };
        const auto cells = ScenarioRunner(spec).run();

        Table table({"architecture", "completed", "rounds", "transmissions"});
        for (const CellResult& cell : cells) {
            const RunReport& r = cell.reports.front();
            table.add_row({to_string(kKinds[cell.point.index_of("arch")]),
                           r.completed ? "yes" : "no", std::to_string(r.rounds),
                           std::to_string(r.transmissions)});
        }
        std::cout << (faulty ? "with 30% data upsets:" : "healthy chip:") << "\n";
        table.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "Reading (matches Fig. 5-3): the flat NoC is fastest, the\n"
                 "hierarchical NoC cheapest in transmissions (gossip confined\n"
                 "to clusters), and the bus bridge serialises cross-cluster\n"
                 "traffic - inefficient, but an easy migration path.\n";
    return 0;
}
