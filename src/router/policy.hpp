// Routing-policy stage of the layered router core: given a packet's
// position and destination, name the candidate output ports in
// preference order.  Policies are pure functions of (topology, position,
// destination, crash pattern) — no RNG, no per-packet state — so every
// backend composing one stays deterministic by construction.
//
// The registry below is the single source of truth: enumerator, wire
// name and factory all follow the X-macro, so a new policy cannot
// desynchronize to_string or make_policy.
#pragma once

#include <cstdint>
#include <iterator>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "noc/topology.hpp"

namespace snoc::router {

#define SNOC_ROUTING_POLICY_LIST(X)                                            \
    X(DimensionOrder, "xy")         /* walk X then Y; fault-blind */           \
    X(WestFirst, "west-first")      /* Glass-Ni turn model; fault-blind */     \
    X(Productive, "productive")     /* live Manhattan-decreasing ports */      \
    X(FaultAdaptive, "adaptive")    /* minimal-first, live detours allowed */

enum class PolicyKind : std::uint8_t {
#define SNOC_ROUTING_POLICY_ENUM(name, str) name,
    SNOC_ROUTING_POLICY_LIST(SNOC_ROUTING_POLICY_ENUM)
#undef SNOC_ROUTING_POLICY_ENUM
};

inline constexpr const char* kPolicyKindNames[] = {
#define SNOC_ROUTING_POLICY_NAME(name, str) str,
    SNOC_ROUTING_POLICY_LIST(SNOC_ROUTING_POLICY_NAME)
#undef SNOC_ROUTING_POLICY_NAME
};

inline constexpr std::size_t kPolicyKinds = std::size(kPolicyKindNames);

constexpr const char* to_string(PolicyKind k) {
    const auto i = static_cast<std::size_t>(k);
    return i < kPolicyKinds ? kPolicyKindNames[i] : "?";
}

/// A routing decision: candidate output ports (indexes into
/// `topo.neighbours(at)`) in preference order.  Empty means "no move":
/// either `at == dst` (eject locally) or the policy has no legal port.
///
/// `dead` is the tile crash pattern (indexed by TileId; empty means all
/// alive) — fault-aware policies exclude ports into dead neighbours,
/// fault-blind ones ignore it and route as if the mesh were healthy.
/// `from` is the upstream neighbour the packet arrived from (kNoTile at
/// its source); only detour policies consult it, to avoid u-turns.
class RoutingPolicy {
public:
    virtual ~RoutingPolicy() = default;

    virtual PolicyKind kind() const = 0;

    virtual std::vector<std::size_t> candidates(
        const Topology& topo, TileId at, TileId from, TileId dst,
        const std::vector<bool>& dead) const = 0;

    /// True when candidates() already filtered dead neighbours out; the
    /// flow-control stage turns a blocked fault-blind route into a
    /// CrashDrop and a blocked fault-aware one into a stall or detour.
    virtual bool fault_aware() const { return false; }
};

/// Deterministic dimension-order (XY) routing: exactly one candidate,
/// the next hop of the walk-X-then-Y path.  Fault-blind — "transmission
/// of messages along a fixed path from source to destination would fail
/// if even a single tile or a link on the path is faulty" (Ch. 1).
class DimensionOrderPolicy final : public RoutingPolicy {
public:
    PolicyKind kind() const override { return PolicyKind::DimensionOrder; }
    std::vector<std::size_t> candidates(
        const Topology& topo, TileId at, TileId from, TileId dst,
        const std::vector<bool>& dead) const override;
};

/// Glass-Ni west-first turn model: all westward hops happen first (turns
/// *into* west are prohibited — deadlock-free), and the remaining minimal
/// directions are adaptive alternatives, in east/north/south order.
class WestFirstPolicy final : public RoutingPolicy {
public:
    PolicyKind kind() const override { return PolicyKind::WestFirst; }
    std::vector<std::size_t> candidates(
        const Topology& topo, TileId at, TileId from, TileId dst,
        const std::vector<bool>& dead) const override;
};

/// Deflection's productive set: every live port that decreases Manhattan
/// distance, in neighbour order.  The flow-control stage deflects onto a
/// free non-productive port when the whole set is taken.
class ProductivePolicy final : public RoutingPolicy {
public:
    PolicyKind kind() const override { return PolicyKind::Productive; }
    std::vector<std::size_t> candidates(
        const Topology& topo, TileId at, TileId from, TileId dst,
        const std::vector<bool>& dead) const override;
    bool fault_aware() const override { return true; }
};

/// Fault-adaptive detour routing (the new backend-zoo policy): minimal
/// live ports first (X before Y, the XY tie-break), then live detour
/// ports in neighbour order with the arrival port last — a packet walks
/// around a dead region instead of dying on it, at the price of a hop
/// budget to cut livelock.
class FaultAdaptivePolicy final : public RoutingPolicy {
public:
    PolicyKind kind() const override { return PolicyKind::FaultAdaptive; }
    std::vector<std::size_t> candidates(
        const Topology& topo, TileId at, TileId from, TileId dst,
        const std::vector<bool>& dead) const override;
    bool fault_aware() const override { return true; }
};

/// The full dimension-order path src..dst inclusive: walk X, then Y.
std::vector<TileId> dimension_order_path(const Topology& mesh, TileId src,
                                         TileId dst);

std::unique_ptr<RoutingPolicy> make_policy(PolicyKind kind);

} // namespace snoc::router
