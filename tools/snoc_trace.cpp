// snoc_trace — query a JSONL trace dump produced with --trace-out.
//
//   snoc_trace summary   run.jsonl            headline counters + kind histogram
//   snoc_trace rounds    run.jsonl            per-round kind table
//   snoc_trace lifeline  run.jsonl 5:12       every event touching message 5:12
//   snoc_trace top-tiles run.jsonl [K]        K lossiest tiles (default 10)
//   snoc_trace top-links run.jsonl [K]        K busiest directed links (default 10)
//
// The heavy lifting lives in src/telemetry/query.{hpp,cpp} so tests can
// exercise the exact code this binary runs.
#include <cstdlib>
#include <iostream>
#include <string>

#include "telemetry/query.hpp"

namespace {

int usage() {
    std::cerr
        << "usage: snoc_trace <command> <trace.jsonl> [args]\n"
           "  summary   <trace.jsonl>          counters + kind histogram\n"
           "  rounds    <trace.jsonl>          per-round kind table\n"
           "  lifeline  <trace.jsonl> <o:seq>  one message's event history\n"
           "  top-tiles <trace.jsonl> [K]      lossiest tiles (default 10)\n"
           "  top-links <trace.jsonl> [K]      busiest links (default 10)\n";
    return 2;
}

} // namespace

int main(int argc, char** argv) {
    if (argc < 3) return usage();
    const std::string command = argv[1];
    const std::string path = argv[2];

    const auto loaded = snoc::tracequery::load_jsonl_file(path);
    if (loaded.events.empty() && loaded.skipped == 0) {
        std::cerr << "snoc_trace: no events loaded from " << path << '\n';
        return 1;
    }
    if (loaded.skipped > 0)
        std::cerr << "snoc_trace: warning: skipped " << loaded.skipped
                  << " malformed line(s)\n";

    if (command == "summary") {
        std::cout << snoc::tracequery::summary(loaded.events);
        return 0;
    }
    if (command == "rounds") {
        std::cout << snoc::tracequery::per_round(loaded.events);
        return 0;
    }
    if (command == "lifeline") {
        if (argc < 4) return usage();
        const auto id = snoc::tracequery::parse_message_id(argv[3]);
        if (!id) {
            std::cerr << "snoc_trace: bad message id '" << argv[3]
                      << "' (want origin:sequence, e.g. 5:12)\n";
            return 2;
        }
        std::cout << snoc::tracequery::lifeline(loaded.events, *id);
        return 0;
    }
    if (command == "top-tiles" || command == "top-links") {
        std::size_t k = 10;
        if (argc >= 4) k = static_cast<std::size_t>(std::atoll(argv[3]));
        std::cout << (command == "top-tiles"
                          ? snoc::tracequery::top_tiles(loaded.events, k)
                          : snoc::tracequery::top_links(loaded.events, k));
        return 0;
    }
    return usage();
}
