#include "fault/injector.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "common/stats.hpp"

namespace snoc {
namespace {

Packet sample_packet(std::size_t payload_bytes = 64) {
    Message m;
    m.id = MessageId{1, 2};
    m.source = 1;
    m.destination = 3;
    m.ttl = 10;
    m.payload.assign(payload_bytes, std::byte{0x5A});
    return Packet::encode(m);
}

TEST(FaultScenario, ValidateAcceptsDefaults) {
    EXPECT_NO_THROW(FaultScenario::none().validate());
}

TEST(FaultScenario, ValidateRejectsOutOfRange) {
    FaultScenario s;
    s.p_upset = 1.5;
    EXPECT_THROW(s.validate(), ContractViolation);
    s = {};
    s.p_tiles = -0.1;
    EXPECT_THROW(s.validate(), ContractViolation);
    s = {};
    s.sigma_synchr = -1.0;
    EXPECT_THROW(s.validate(), ContractViolation);
}

TEST(FaultScenario, DescribeMentionsEveryKnob) {
    FaultScenario s;
    s.p_tiles = 0.1;
    s.p_upset = 0.3;
    s.upset_model = UpsetModel::RandomErrorVector;
    const auto text = s.describe();
    EXPECT_NE(text.find("tiles=0.1"), std::string::npos);
    EXPECT_NE(text.find("upset=0.3"), std::string::npos);
    EXPECT_NE(text.find("random-error-vector"), std::string::npos);
}

TEST(FaultInjector, NoFaultsMeansNoEffects) {
    RngPool pool(1);
    FaultInjector inj(FaultScenario::none(), pool);
    auto p = sample_packet();
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(inj.maybe_upset(p));
        EXPECT_FALSE(inj.overflow_drop());
    }
    EXPECT_TRUE(p.crc_ok());
    EXPECT_EQ(inj.upsets_injected(), 0u);
}

TEST(FaultInjector, CrashRateMatchesProbability) {
    const auto topo = Topology::mesh(16, 16); // 256 tiles
    FaultScenario s;
    s.p_tiles = 0.3;
    Accumulator rate;
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
        RngPool pool(seed);
        FaultInjector inj(s, pool);
        const auto crashes = inj.roll_crashes(topo);
        rate.add(static_cast<double>(crashes.dead_tile_count()) / 256.0);
    }
    EXPECT_NEAR(rate.mean(), 0.3, 0.03);
}

TEST(FaultInjector, ProtectedTilesNeverCrash) {
    const auto topo = Topology::mesh(4, 4);
    FaultScenario s;
    s.p_tiles = 0.9;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        RngPool pool(seed);
        FaultInjector inj(s, pool);
        const auto crashes = inj.roll_crashes(topo, {5, 11});
        EXPECT_FALSE(crashes.dead_tiles[5]);
        EXPECT_FALSE(crashes.dead_tiles[11]);
    }
}

TEST(FaultInjector, ExactCrashCountIsExact) {
    const auto topo = Topology::mesh(5, 5);
    RngPool pool(9);
    FaultInjector inj(FaultScenario::none(), pool);
    for (std::size_t k : {0u, 1u, 5u, 12u}) {
        RngPool p2(k + 100);
        FaultInjector fresh(FaultScenario::none(), p2);
        const auto crashes = fresh.roll_exact_tile_crashes(topo, k, {12});
        EXPECT_EQ(crashes.dead_tile_count(), k);
        EXPECT_FALSE(crashes.dead_tiles[12]);
    }
}

TEST(FaultInjector, ExactCrashRespectsCandidateLimit) {
    const auto topo = Topology::mesh(2, 2);
    RngPool pool(3);
    FaultInjector inj(FaultScenario::none(), pool);
    EXPECT_THROW(inj.roll_exact_tile_crashes(topo, 4, {0}), ContractViolation);
}

TEST(FaultInjector, LinkCrashesIndependentOfTiles) {
    const auto topo = Topology::mesh(8, 8);
    FaultScenario s;
    s.p_links = 0.25;
    Accumulator rate;
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
        RngPool pool(seed);
        FaultInjector inj(s, pool);
        const auto crashes = inj.roll_crashes(topo);
        EXPECT_EQ(crashes.dead_tile_count(), 0u);
        rate.add(static_cast<double>(crashes.dead_link_count()) /
                 static_cast<double>(topo.link_count()));
    }
    EXPECT_NEAR(rate.mean(), 0.25, 0.03);
}

TEST(FaultInjector, UpsetRateMatchesPUpset) {
    FaultScenario s;
    s.p_upset = 0.4;
    RngPool pool(5);
    FaultInjector inj(s, pool);
    int corrupted = 0;
    const int n = 5000;
    for (int i = 0; i < n; ++i) {
        auto p = sample_packet();
        if (inj.maybe_upset(p)) ++corrupted;
    }
    EXPECT_NEAR(static_cast<double>(corrupted) / n, 0.4, 0.03);
    EXPECT_EQ(inj.upsets_injected(), static_cast<std::size_t>(corrupted));
}

TEST(FaultInjector, BitErrorModelAlwaysChangesWire) {
    FaultScenario s;
    s.p_upset = 1.0;
    s.upset_model = UpsetModel::RandomBitError;
    RngPool pool(6);
    FaultInjector inj(s, pool);
    for (int i = 0; i < 200; ++i) {
        auto p = sample_packet();
        const auto original = p.wire();
        EXPECT_TRUE(inj.maybe_upset(p));
        EXPECT_NE(p.wire(), original);
    }
}

TEST(FaultInjector, BitErrorModelFlipsFewBits) {
    FaultScenario s;
    s.p_upset = 1.0;
    s.upset_model = UpsetModel::RandomBitError;
    RngPool pool(7);
    FaultInjector inj(s, pool);
    Accumulator flips;
    for (int i = 0; i < 500; ++i) {
        auto p = sample_packet();
        const auto original = p.wire();
        inj.maybe_upset(p);
        int diff = 0;
        for (std::size_t b = 0; b < original.size(); ++b) {
            auto x = static_cast<unsigned>(original[b] ^ p.wire()[b]);
            while (x) {
                diff += static_cast<int>(x & 1u);
                x >>= 1;
            }
        }
        EXPECT_GE(diff, 1);
        flips.add(diff);
    }
    // Conditioned on an upset, expected flips ~ 2 (documented burst shape).
    EXPECT_NEAR(flips.mean(), 2.0, 0.5);
}

TEST(FaultInjector, ErrorVectorModelScramblesManyBits) {
    FaultScenario s;
    s.p_upset = 1.0;
    s.upset_model = UpsetModel::RandomErrorVector;
    RngPool pool(8);
    FaultInjector inj(s, pool);
    Accumulator flips;
    for (int i = 0; i < 200; ++i) {
        auto p = sample_packet();
        const auto original = p.wire();
        inj.maybe_upset(p);
        int diff = 0;
        for (std::size_t b = 0; b < original.size(); ++b) {
            auto x = static_cast<unsigned>(original[b] ^ p.wire()[b]);
            while (x) {
                diff += static_cast<int>(x & 1u);
                x >>= 1;
            }
        }
        EXPECT_GE(diff, 1);
        flips.add(diff);
    }
    // Uniform error vector flips ~half the bits on average.
    const double nbits = static_cast<double>(sample_packet().bit_size());
    EXPECT_NEAR(flips.mean(), nbits / 2.0, nbits * 0.05);
}

TEST(FaultInjector, UpsetsAreCaughtByCrc) {
    FaultScenario s;
    s.p_upset = 1.0;
    for (auto model : {UpsetModel::RandomBitError, UpsetModel::RandomErrorVector}) {
        s.upset_model = model;
        RngPool pool(9);
        FaultInjector inj(s, pool);
        int undetected = 0;
        for (int i = 0; i < 500; ++i) {
            auto p = sample_packet();
            inj.maybe_upset(p);
            if (p.crc_ok()) ++undetected;
        }
        // CRC-32 misses with probability ~2^-32; 500 trials should all catch.
        EXPECT_EQ(undetected, 0) << to_string(model);
    }
}

TEST(FaultInjector, OverflowRateMatchesProbability) {
    FaultScenario s;
    s.p_overflow = 0.2;
    RngPool pool(10);
    FaultInjector inj(s, pool);
    int drops = 0;
    const int n = 5000;
    for (int i = 0; i < n; ++i)
        if (inj.overflow_drop()) ++drops;
    EXPECT_NEAR(static_cast<double>(drops) / n, 0.2, 0.02);
    EXPECT_EQ(inj.overflows_forced(), static_cast<std::size_t>(drops));
}

TEST(FaultInjector, RoundDurationJitterMatchesSigma) {
    FaultScenario s;
    s.sigma_synchr = 0.1;
    RngPool pool(11);
    FaultInjector inj(s, pool);
    Accumulator acc;
    for (int i = 0; i < 5000; ++i) acc.add(inj.round_duration(1e-6, 0));
    EXPECT_NEAR(acc.mean(), 1e-6, 1e-8);
    EXPECT_NEAR(acc.stddev(), 0.1e-6, 0.01e-6);
}

TEST(FaultInjector, RoundDurationNeverNonPositive) {
    FaultScenario s;
    s.sigma_synchr = 3.0; // extreme jitter
    RngPool pool(12);
    FaultInjector inj(s, pool);
    for (int i = 0; i < 2000; ++i) EXPECT_GT(inj.round_duration(1e-6, 0), 0.0);
}

TEST(FaultInjector, DeterministicAcrossRuns) {
    FaultScenario s;
    s.p_upset = 0.5;
    s.p_overflow = 0.3;
    RngPool pool_a(77), pool_b(77);
    FaultInjector a(s, pool_a), b(s, pool_b);
    for (int i = 0; i < 100; ++i) {
        auto pa = sample_packet();
        auto pb = sample_packet();
        EXPECT_EQ(a.maybe_upset(pa), b.maybe_upset(pb));
        EXPECT_EQ(pa.wire(), pb.wire());
        EXPECT_EQ(a.overflow_drop(), b.overflow_drop());
    }
}

} // namespace
} // namespace snoc
