# Empty dependencies file for fig4_11_mp3_bitrate.
# This may be replaced when dependencies are built.
