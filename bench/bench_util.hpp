// Shared harness pieces for the figure-regeneration benches.
//
// Every bench prints (a) the figure/table it regenerates, (b) an aligned
// ASCII table with the same rows/series the thesis plots, and (c) the same
// table as CSV on request (--csv), for replotting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "apps/fft2d_app.hpp"
#include "apps/master_slave_pi.hpp"
#include "common/cli.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"
#include "energy/energy.hpp"

namespace snoc::bench {

inline bool want_csv(int argc, char** argv) {
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--csv") return true;
    return false;
}

/// Worker-thread count for the Monte-Carlo trial fan-out:
/// --jobs=N beats SNOC_JOBS beats hardware concurrency.
inline std::size_t want_jobs(int argc, char** argv) {
    return resolve_jobs(CliArgs(argc, argv));
}

/// Trial-repeat count: --repeats=N, else the bench's default.
inline std::size_t want_repeats(int argc, char** argv, std::size_t fallback) {
    const auto r = CliArgs(argc, argv).get_u64("repeats", fallback);
    return r > 0 ? static_cast<std::size_t>(r) : fallback;
}

inline void emit(const Table& table, bool csv, const std::string& caption) {
    std::cout << "\n== " << caption << " ==\n";
    if (csv)
        table.print_csv(std::cout);
    else
        table.print(std::cout);
}

inline GossipConfig config_with_p(double p, std::uint16_t ttl = 30) {
    GossipConfig c;
    c.forward_p = p;
    c.default_ttl = ttl;
    return c;
}

/// One application run's measurements.
struct AppRun {
    bool completed{false};
    Round latency_rounds{0};     ///< rounds until the app finished.
    std::size_t packets{0};      ///< total transmissions incl. TTL drain.
    std::size_t bits{0};
    double seconds{0.0};         ///< wall-clock at completion (GALS model).
};

/// Master-Slave pi on a 5x5 mesh (Fig. 4-2 deployment).  Latency is the
/// completion round; packets/bits include the post-completion TTL drain
/// (the energy keeps burning until every rumor dies).
inline AppRun run_pi_once(const GossipConfig& config, const FaultScenario& scenario,
                          std::size_t exact_tile_crashes, std::uint64_t seed,
                          bool duplicate_slaves = true, Round max_rounds = 3000,
                          bool direct_addressing = false) {
    GossipNetwork net(Topology::mesh(5, 5), config, scenario, seed);
    apps::PiDeployment d;
    d.duplicate_slaves = duplicate_slaves;
    d.direct_addressing = direct_addressing;
    auto& master = apps::deploy_pi(net, d);
    net.protect(d.master_tile);
    if (duplicate_slaves) {
        // With replication, protecting one copy of each task keeps the
        // workload well-defined while the other copy may crash.
        for (TileId t : {6u, 7u, 8u, 11u, 13u, 16u, 17u, 18u}) net.protect(t);
    }
    net.force_exact_tile_crashes(exact_tile_crashes);
    const auto r = net.run_until([&master] { return master.done(); }, max_rounds);
    AppRun out;
    out.completed = r.completed;
    out.latency_rounds = r.rounds;
    out.seconds = r.elapsed_seconds;
    net.drain();
    out.packets = net.metrics().packets_sent;
    out.bits = net.metrics().bits_sent;
    return out;
}

/// Parallel 2-D FFT on a 4x4 mesh (Fig. 4-3 deployment).
inline AppRun run_fft_once(const GossipConfig& config, const FaultScenario& scenario,
                           std::size_t exact_tile_crashes, std::uint64_t seed,
                           Round max_rounds = 3000) {
    GossipNetwork net(Topology::mesh(4, 4), config, scenario, seed);
    apps::FftDeployment d;
    d.duplicate_workers = true;
    auto& root = apps::deploy_fft2d(net, d, seed + 1);
    net.protect(d.root_tile);
    for (TileId t : d.worker_tiles) net.protect(t);
    net.force_exact_tile_crashes(exact_tile_crashes);
    const auto r = net.run_until([&root] { return root.done(); }, max_rounds);
    AppRun out;
    out.completed = r.completed;
    out.latency_rounds = r.rounds;
    out.seconds = r.elapsed_seconds;
    net.drain();
    out.packets = net.metrics().packets_sent;
    out.bits = net.metrics().bits_sent;
    return out;
}

/// Means over the completed runs of a Monte-Carlo batch.  (Was a
/// pointlessly templated `Averaged<F>` — the fields never depended on F.)
struct Averaged {
    double latency_rounds{0.0};
    double packets{0.0};
    double bits{0.0};
    double seconds{0.0};
    double completion_rate{0.0};
};

/// Aggregate per-seed results; runs that did not complete only count
/// against the completion rate.  Safe on an empty batch.
inline Averaged average_of(const std::vector<AppRun>& runs) {
    Averaged avg;
    if (runs.empty()) return avg; // repeats == 0 used to divide by zero here
    Accumulator lat, pkt, bit, sec;
    std::size_t completed = 0;
    for (const AppRun& r : runs) {
        if (!r.completed) continue;
        ++completed;
        lat.add(static_cast<double>(r.latency_rounds));
        pkt.add(static_cast<double>(r.packets));
        bit.add(static_cast<double>(r.bits));
        sec.add(r.seconds);
    }
    avg.completion_rate = static_cast<double>(completed) / static_cast<double>(runs.size());
    if (completed > 0) {
        avg.latency_rounds = lat.mean();
        avg.packets = pkt.mean();
        avg.bits = bit.mean();
        avg.seconds = sec.mean();
    }
    return avg;
}

/// Average an AppRun-producing callable over seeds 0..repeats-1, fanning
/// the independent trials across `jobs` worker threads (0 = default; see
/// common/parallel.hpp).  `run_one(seed)` must derive all randomness from
/// its seed argument — the results are bit-identical for any job count.
template <typename F>
Averaged average_runs(F&& run_one, std::size_t repeats, std::size_t jobs = 0) {
    return average_of(run_trials(repeats, run_one, jobs));
}

/// Eq. 3 energy per useful bit for an averaged run.
inline double joules_per_useful_bit(double avg_bits, std::size_t useful_bits) {
    const auto tech = Technology::cmos_025um();
    if (useful_bits == 0) return 0.0;
    return avg_bits * tech.link_ebit_joules / static_cast<double>(useful_bits);
}

} // namespace snoc::bench
