// Strong-ish aliases shared across the whole simulator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace snoc {

/// Index of a tile (node) in a topology.  Tiles are numbered row-major
/// starting from 0; the thesis' figures number them from 1, so tile k in a
/// figure is TileId{k - 1} here.
using TileId = std::uint32_t;

/// Index of a directed link in a topology.
using LinkId = std::uint32_t;

/// Gossip round counter (one round = every live tile drains its send buffer).
using Round = std::uint32_t;

/// Unique message identity: (origin tile, per-origin sequence number).
struct MessageId {
    TileId origin{0};
    std::uint32_t sequence{0};

    friend bool operator==(const MessageId&, const MessageId&) = default;
    friend auto operator<=>(const MessageId&, const MessageId&) = default;
};

/// Sentinel meaning "no tile".
inline constexpr TileId kNoTile = static_cast<TileId>(-1);

/// The four mesh ports of a tile, in the order used by Fig. 3-4.
enum class Port : std::uint8_t { North = 0, East = 1, South = 2, West = 3 };

inline constexpr std::size_t kPortCount = 4;

/// Human-readable name of a port (for traces and test failure messages).
constexpr const char* to_string(Port p) {
    switch (p) {
    case Port::North: return "North";
    case Port::East: return "East";
    case Port::South: return "South";
    case Port::West: return "West";
    }
    return "?";
}

} // namespace snoc

template <>
struct std::hash<snoc::MessageId> {
    std::size_t operator()(const snoc::MessageId& id) const noexcept {
        // 64-bit mix of the two 32-bit fields (splitmix64 finaliser).
        std::uint64_t x = (static_cast<std::uint64_t>(id.origin) << 32) | id.sequence;
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ULL;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebULL;
        x ^= x >> 31;
        return static_cast<std::size_t>(x);
    }
};
