// Figure 3-1: message spreading in a 1000-node fully connected network.
//
// Plots nodes-reached vs. gossip round for (a) the deterministic logistic
// model I(t+1) = n - (n - I(t)) e^(-I(t)/n) and (b) the push-gossip
// Monte-Carlo, averaged over repetitions.  The thesis observes that all
// 1000 nodes are reached in fewer than 20 rounds; Pittel's bound
// log2(n) + ln(n) ~= 16.9 rounds.
#include <iostream>

#include "bench_util.hpp"
#include "core/analytic.hpp"

int main(int argc, char** argv) {
    using namespace snoc;
    const auto opt = bench::options(argc, argv, 50);
    constexpr std::size_t kNodes = 1000;
    constexpr std::size_t kRounds = 22;

    const auto model = analytic::informed_curve(kNodes, kRounds);

    const auto curves = run_trials(
        opt.repeats,
        [&](std::uint64_t seed) {
            RngStream rng(splitmix64(seed));
            auto curve = analytic::simulate_push_gossip(kNodes, rng, kRounds);
            curve.resize(kRounds + 1, kNodes);
            return curve;
        },
        opt.jobs);
    std::vector<Accumulator> mc(kRounds + 1);
    for (const auto& curve : curves)
        for (std::size_t t = 0; t <= kRounds; ++t)
            mc[t].add(static_cast<double>(curve[t]));

    Table table({"round", "model I(t)", "monte-carlo mean", "mc min", "mc max"});
    for (std::size_t t = 0; t <= kRounds; ++t) {
        table.add_row({std::to_string(t), format_number(model[t], 1),
                       format_number(mc[t].mean(), 1), format_number(mc[t].min(), 0),
                       format_number(mc[t].max(), 0)});
    }
    bench::emit(table, opt,
                "Fig. 3-1: rumor spreading, 1000-node fully connected network");

    const auto all_reached = analytic::rounds_to_reach(kNodes, 1.0);
    std::cout << "\nmodel rounds to reach all 1000 nodes: " << all_reached
              << " (paper: < 20)\n";
    std::cout << "Pittel S_n = log2(n) + ln(n) = "
              << format_number(analytic::pittel_rounds(kNodes), 2) << " rounds\n";

    // The figure itself is analytic (no engine, nothing to trace), so the
    // telemetry flags run a seeded engine-backed companion: the same
    // one-source rumor spreading, realised as a tile-0 scatter on a 5x5
    // gossip mesh.  This is the small traced run CI exercises.
    if (opt.telemetry.enabled()) {
        ExperimentSpec spec;
        spec.name = "fig3_1 traced companion";
        spec.base_seed = opt.seed;
        spec.jobs = 1;
        spec.telemetry = opt.telemetry;
        spec.engine = bench::engine_select(opt);
        spec.backend = [engine = spec.engine](const SweepPoint&,
                                              std::uint64_t seed) {
            GossipSpec gs;
            gs.config = bench::config_with_p(0.5, 12);
            gs.drain = true;
            gs.engine = engine;
            return std::make_unique<GossipAdapter>(std::move(gs),
                                                   FaultScenario::none(), seed);
        };
        spec.trace = [](const SweepPoint&) {
            TrafficTrace trace;
            TrafficPhase phase;
            for (TileId t = 1; t < 25; ++t)
                phase.messages.push_back({0, t, 256});
            trace.phases.push_back(std::move(phase));
            return trace;
        };
        const auto traced = ScenarioRunner(std::move(spec)).run();
        bench::emit(ScenarioRunner::telemetry_table(traced), opt,
                    "Fig. 3-1 traced companion (tile-0 scatter, 5x5 gossip)");
    }
    return all_reached < 20 ? 0 : 1;
}
