# Empty dependencies file for test_engine_topologies.
# This may be replaced when dependencies are built.
