file(REMOVE_RECURSE
  "libsnoc_fault.a"
)
