# Empty compiler generated dependencies file for ablation_reliable_transport.
# This may be replaced when dependencies are built.
