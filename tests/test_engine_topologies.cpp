// The gossip engine on non-mesh topologies: the fully-connected graph of
// the Sec. 3.1 theory (engine behaviour vs the logistic model), the torus,
// and robustness fuzzing of the wire decoder.
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "core/analytic.hpp"
#include "core/engine.hpp"

namespace snoc {
namespace {

class Announcer final : public IpCore {
public:
    explicit Announcer(std::uint16_t ttl = 0) : ttl_(ttl) {}
    void on_start(TileContext& ctx) override {
        ctx.send(kBroadcast, 0xFC, {std::byte{1}}, ttl_);
    }
    void on_message(const Message&, TileContext&) override {}

private:
    std::uint16_t ttl_;
};

TEST(FullyConnectedGossip, EngineTracksTheLogisticModel) {
    // On the fully connected graph with per-port probability
    // p = 1/(n-1), every informed tile pushes ~1 copy per round — exactly
    // the Sec. 3.1 push-gossip process, so I(t) from the engine should
    // track the deterministic recurrence (Fig. 3-1) closely.
    constexpr std::size_t n = 64;
    const auto model = analytic::informed_curve(n, 16);

    std::vector<Accumulator> informed(17);
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        GossipConfig c;
        c.forward_p = 1.0 / static_cast<double>(n - 1);
        c.default_ttl = 64;
        GossipNetwork net(Topology::fully_connected(n), c, FaultScenario::none(),
                          seed);
        net.attach(0, std::make_unique<Announcer>());
        for (std::size_t t = 0; t <= 16; ++t) {
            informed[t].add(static_cast<double>(net.tiles_knowing({0, 0})));
            net.step();
        }
    }
    // Compare at mid-spread (round 8) and near saturation (round 14).
    EXPECT_NEAR(informed[8].mean(), model[8], 0.35 * model[8]);
    EXPECT_GT(informed[14].mean(), 0.8 * model[14]);
    // And everyone is informed well within O(log2 n + ln n) + slack.
    EXPECT_GT(informed[16].mean(), 0.9 * static_cast<double>(n));
}

TEST(FullyConnectedGossip, FloodingInformsEveryoneInOneRound) {
    GossipConfig c;
    c.forward_p = 1.0;
    c.default_ttl = 4;
    GossipNetwork net(Topology::fully_connected(20), c, FaultScenario::none(), 1);
    net.attach(3, std::make_unique<Announcer>());
    net.step();
    net.step();
    EXPECT_EQ(net.tiles_knowing({3, 0}), 20u);
}

TEST(TorusGossip, WrapAroundShortensBroadcast) {
    // A torus has half the mesh's diameter: the corner broadcast finishes
    // faster for the same p.
    auto rounds_to_cover = [](Topology topo, std::uint64_t seed) {
        GossipConfig c;
        c.forward_p = 0.5;
        c.default_ttl = 64;
        const std::size_t n = topo.node_count();
        GossipNetwork net(std::move(topo), c, FaultScenario::none(), seed);
        net.attach(0, std::make_unique<Announcer>());
        const auto r = net.run_until(
            [&net, n]() mutable { return net.tiles_knowing({0, 0}) == n; }, 500);
        return r.rounds;
    };
    Accumulator mesh_rounds, torus_rounds;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        mesh_rounds.add(static_cast<double>(rounds_to_cover(Topology::mesh(8, 8), seed)));
        torus_rounds.add(
            static_cast<double>(rounds_to_cover(Topology::torus(8, 8), seed)));
    }
    EXPECT_LT(torus_rounds.mean(), mesh_rounds.mean());
}

TEST(CustomTopologyGossip, LineGraphIsSlowestShape) {
    // A 1x8 path: the broadcast must walk the whole line.
    std::vector<LinkEnd> edges;
    for (TileId t = 0; t + 1 < 8; ++t) edges.push_back({t, static_cast<TileId>(t + 1)});
    const auto line = Topology::from_edges(8, edges, "path-8");
    GossipConfig c;
    c.forward_p = 1.0;
    c.default_ttl = 16;
    GossipNetwork net(line, c, FaultScenario::none(), 2);
    net.attach(0, std::make_unique<Announcer>());
    const auto r = net.run_until(
        [&net]() mutable { return net.tiles_knowing({0, 0}) == 8; }, 100);
    ASSERT_TRUE(r.completed);
    // One hop per round under flooding: the 7-hop far end hears the rumor
    // during the receive phase of the 8th engine step.
    EXPECT_EQ(r.rounds, 8u);
}

TEST(PacketFuzz, DecoderNeverMisbehavesOnGarbage) {
    // Arbitrary byte soup must decode to nullopt or a self-consistent
    // message — never crash, never read out of bounds (ASAN-friendly).
    RngStream rng(77);
    std::size_t decoded_ok = 0;
    for (int trial = 0; trial < 3000; ++trial) {
        std::vector<std::byte> wire(rng.below(96));
        for (auto& b : wire) b = static_cast<std::byte>(rng.bits() & 0xFF);
        const auto packet = Packet::from_wire(std::move(wire));
        const auto decoded = packet.decode();
        if (decoded) ++decoded_ok;
    }
    // Random garbage passing a CRC-32 is a ~2^-32 event.
    EXPECT_EQ(decoded_ok, 0u);
}

TEST(PacketFuzz, CorruptedRealPacketsRoundTripOrDie) {
    RngStream rng(78);
    for (int trial = 0; trial < 500; ++trial) {
        Message m;
        m.id = MessageId{static_cast<TileId>(rng.below(100)),
                         static_cast<std::uint32_t>(rng.below(100))};
        m.source = m.id.origin;
        m.destination = static_cast<TileId>(rng.below(100));
        m.ttl = static_cast<std::uint16_t>(1 + rng.below(30));
        m.payload.resize(rng.below(64));
        for (auto& b : m.payload) b = static_cast<std::byte>(rng.bits() & 0xFF);

        auto wire = Packet::encode(m).wire();
        const auto flips = rng.below(4); // 0..3 bit flips
        for (std::uint64_t f = 0; f < flips; ++f) {
            const auto bit = rng.below(wire.size() * 8);
            wire[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
        }
        const auto decoded = Packet::from_wire(std::move(wire)).decode();
        // Either dropped, or (zero net flips) identical to the original.
        if (decoded) {
            EXPECT_EQ(*decoded, m);
        }
    }
}

} // namespace
} // namespace snoc
