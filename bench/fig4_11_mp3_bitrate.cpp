// Figure 4-11: impact of on-chip failures on the MP3 output bit-rate.
//
// The encoder runs in streaming mode (the bitstream-assembly stage skips a
// frame that stays missing) and we monitor the continuous bit-rate at the
// Output stage.  Expected shapes (thesis): the bit-rate is sustainable up
// to ~60% dropped packets, and even severe synchronisation error levels
// barely move the bit-rate or its jitter (error bars).
#include <iostream>

#include "apps/mp3_app.hpp"
#include "bench_util.hpp"

namespace {

snoc::apps::Mp3Config streaming_config() {
    snoc::apps::Mp3Config c;
    c.frame_samples = 64;
    c.frame_count = 16;
    c.frame_interval = 3;
    c.band_count = 8;
    c.frame_budget_bits = 400;
    c.reservoir_capacity = 800;
    c.skip_after_rounds = 20; // streaming: give up on stale frames
    return c;
}

struct BitratePoint {
    double rate{0.0};
    double jitter{0.0};
    double frames{0.0};
};

BitratePoint run_point(const snoc::FaultScenario& scenario, std::size_t repeats,
                       std::size_t jobs, snoc::EngineSelect engine) {
    using namespace snoc;
    const auto cfg = streaming_config();
    struct Trial {
        double rate, jitter, frames;
    };
    const auto trials = run_trials(
        repeats,
        [&](std::uint64_t seed) {
            GossipNetwork net(Topology::mesh(4, 4), bench::config_with_p(0.75, 50),
                              scenario, seed, engine);
            auto& output = apps::deploy_mp3(net, cfg);
            const auto r =
                net.run_until([&output] { return output.complete(); }, 2000);
            const double tr = net.config().timing.round_seconds();
            const auto report = apps::bitrate_report(output, cfg, r.rounds, tr);
            return Trial{report.mean_bits_per_second, report.jitter_bits_per_second,
                         report.completion_fraction * 100.0};
        },
        jobs);
    Accumulator rate, jitter, frames;
    for (const Trial& t : trials) {
        rate.add(t.rate);
        jitter.add(t.jitter);
        frames.add(t.frames);
    }
    return {rate.mean(), jitter.mean(), frames.mean()};
}

} // namespace

int main(int argc, char** argv) {
    using namespace snoc;
    const auto opt = bench::options(argc, argv, 6);

    Table overflow({"dropped packets [%]", "bit rate [bits/s]", "jitter [bits/s]",
                    "frames delivered [%]"});
    double base_rate = 0.0, rate_at_60 = 0.0;
    for (double drop : {0.0, 0.2, 0.4, 0.6, 0.8}) {
        FaultScenario s;
        s.p_overflow = drop;
        const auto p = run_point(s, opt.repeats, opt.jobs, bench::engine_select(opt));
        if (drop == 0.0) base_rate = p.rate;
        if (drop == 0.6) rate_at_60 = p.rate;
        overflow.add_row({format_number(drop * 100, 0), format_sci(p.rate, 3),
                          format_sci(p.jitter, 2), format_number(p.frames, 0)});
    }
    bench::emit(overflow, opt, "Fig. 4-11 (left): MP3 bit rate vs dropped packets");

    Table synchr({"sigma_synchr [% of T_R]", "bit rate [bits/s]", "jitter [bits/s]",
                  "frames delivered [%]"});
    for (double sigma : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
        FaultScenario s;
        s.sigma_synchr = sigma;
        const auto p = run_point(s, opt.repeats, opt.jobs, bench::engine_select(opt));
        synchr.add_row({format_number(sigma * 100, 0), format_sci(p.rate, 3),
                        format_sci(p.jitter, 2), format_number(p.frames, 0)});
    }
    bench::emit(synchr, opt,
                "Fig. 4-11 (right): MP3 bit rate vs synchronisation errors");

    std::cout << "\nbit-rate at 60% drops / clean bit-rate = "
              << format_number(rate_at_60 / base_rate, 2)
              << " (paper: sustainable up to 60% drops)\n";
    return 0;
}
