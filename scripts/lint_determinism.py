#!/usr/bin/env python3
"""Compatibility shim: the determinism linter now lives inside snoc_lint
(tools/snoc_lint/determinism.py) as one checker of the project-wide
static-analysis suite — shared file walker, shared allowlist format, one
report, SARIF output.  This entry point keeps `python3
scripts/lint_determinism.py` (CI muscle memory, old docs) working by
running exactly the determinism-family checkers.

The exit status is forwarded verbatim from snoc_lint (0 clean, 1
findings, 2 broken configuration); a shim that cannot load the CLI, or a
CLI whose main() stops returning an int, exits 2 instead of silently
succeeding — tests/lint_fixtures/run_cli_tests.py pins this contract.

Prefer:  python3 tools/snoc_lint            # the full suite
         python3 tools/snoc_lint --only determinism,rng,allowlist
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

TOOL_DIR = Path(__file__).resolve().parent.parent / "tools" / "snoc_lint"


def _load_cli():
    """Load the CLI from the tool's __main__.py under a private name (a
    plain `import __main__` would resolve to this very script)."""
    sys.path.insert(0, str(TOOL_DIR))
    spec = importlib.util.spec_from_file_location("snoc_lint_cli",
                                                  TOOL_DIR / "__main__.py")
    if spec is None or spec.loader is None:
        print(f"lint_determinism: cannot load {TOOL_DIR}/__main__.py",
              file=sys.stderr)
        raise SystemExit(2)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    if not callable(getattr(module, "main", None)):
        print("lint_determinism: snoc_lint CLI exposes no main()",
              file=sys.stderr)
        raise SystemExit(2)
    return module


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    rc = _load_cli().main(["--only", "determinism,rng,allowlist", *args])
    # sys.exit(None) would report success; never let a vanished return
    # value turn findings into a green run.
    return rc if isinstance(rc, int) else 2


if __name__ == "__main__":
    sys.exit(main())
