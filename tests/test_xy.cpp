#include "bus/xy_router.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace snoc {
namespace {

TEST(XyRoute, WalksXThenY) {
    const auto mesh = Topology::mesh(4, 4);
    // tile 5 = (1,1), tile 11 = (3,2): expect 5 -> 6 -> 7 -> 11.
    const auto path = xy_route(mesh, 5, 11);
    const std::vector<TileId> expected{5, 6, 7, 11};
    EXPECT_EQ(path, expected);
}

TEST(XyRoute, HandlesNegativeDirections) {
    const auto mesh = Topology::mesh(4, 4);
    const auto path = xy_route(mesh, 15, 0);
    const std::vector<TileId> expected{15, 14, 13, 12, 8, 4, 0};
    EXPECT_EQ(path, expected);
}

TEST(XyRoute, SelfRouteIsSingleton) {
    const auto mesh = Topology::mesh(4, 4);
    const auto path = xy_route(mesh, 7, 7);
    EXPECT_EQ(path.size(), 1u);
    EXPECT_EQ(path.front(), 7u);
}

TEST(XyRoute, LengthIsManhattanPlusOne) {
    const auto mesh = Topology::mesh(5, 5);
    RngStream rng(4);
    for (int i = 0; i < 50; ++i) {
        const auto a = static_cast<TileId>(rng.below(25));
        const auto b = static_cast<TileId>(rng.below(25));
        EXPECT_EQ(xy_route(mesh, a, b).size(), mesh.manhattan(a, b) + 1);
    }
}

CrashState no_crashes(const Topology& topo) {
    CrashState s;
    s.dead_tiles.assign(topo.node_count(), false);
    s.dead_links.assign(topo.link_count(), false);
    return s;
}

TEST(XyTrace, IntactMeshDeliversEverything) {
    const auto mesh = Topology::mesh(4, 4);
    TrafficTrace trace;
    TrafficPhase p;
    p.messages.push_back({0, 15, 100});
    p.messages.push_back({5, 11, 100});
    trace.phases.push_back(p);
    const auto result = run_xy_trace(mesh, trace, no_crashes(mesh));
    EXPECT_EQ(result.delivered, 2u);
    EXPECT_EQ(result.lost, 0u);
    EXPECT_EQ(result.rounds, 6u); // the longer path dominates the phase
    EXPECT_EQ(result.bits, 100u * 6 + 100u * 3);
}

TEST(XyTrace, DeadTileOnPathLosesMessage) {
    // Ch. 1: static routing "would fail if even a single tile or a link on
    // the path is faulty".
    const auto mesh = Topology::mesh(4, 4);
    auto crashes = no_crashes(mesh);
    crashes.dead_tiles[6] = true; // on the 5 -> 11 XY path
    TrafficTrace trace;
    TrafficPhase p;
    p.messages.push_back({5, 11, 100});
    trace.phases.push_back(p);
    const auto result = run_xy_trace(mesh, trace, crashes);
    EXPECT_EQ(result.delivered, 0u);
    EXPECT_EQ(result.lost, 1u);
}

TEST(XyTrace, DeadLinkOnPathLosesMessage) {
    const auto mesh = Topology::mesh(4, 4);
    auto crashes = no_crashes(mesh);
    // Kill the directed link 5 -> 6.
    const auto& nbrs = mesh.neighbours(5);
    const auto& links = mesh.out_links(5);
    for (std::size_t i = 0; i < nbrs.size(); ++i)
        if (nbrs[i] == 6) crashes.dead_links[links[i]] = true;
    TrafficTrace trace;
    TrafficPhase p;
    p.messages.push_back({5, 11, 100});
    trace.phases.push_back(p);
    const auto result = run_xy_trace(mesh, trace, crashes);
    EXPECT_EQ(result.lost, 1u);
}

TEST(XyTrace, DeadTileOffPathIsHarmless) {
    const auto mesh = Topology::mesh(4, 4);
    auto crashes = no_crashes(mesh);
    crashes.dead_tiles[12] = true; // far from the 5 -> 11 path
    TrafficTrace trace;
    TrafficPhase p;
    p.messages.push_back({5, 11, 100});
    trace.phases.push_back(p);
    EXPECT_EQ(run_xy_trace(mesh, trace, crashes).delivered, 1u);
}

TEST(XyTrace, PhaseCostsAccumulate) {
    const auto mesh = Topology::mesh(4, 4);
    TrafficTrace trace;
    TrafficPhase a, b;
    a.messages.push_back({0, 3, 10});  // 3 hops
    b.messages.push_back({3, 0, 10});  // 3 hops
    trace.phases.push_back(a);
    trace.phases.push_back(b);
    EXPECT_EQ(run_xy_trace(mesh, trace, no_crashes(mesh)).rounds, 6u);
}

} // namespace
} // namespace snoc
