// Cyclic redundancy checks, implemented from scratch (table-driven, tables
// generated at compile time).  The thesis protects every packet with a CRC
// (Sec. 3.2.2): "CRC encoders and decoders are easy to implement in
// hardware, as they only require one shift register".
//
// We provide the two codes a NoC would realistically choose from:
//   * CRC-16-CCITT (poly 0x1021, init 0xFFFF)  — cheap, short packets;
//   * CRC-32 (IEEE 802.3, reflected poly 0xEDB88320, init ~0, final xor ~0).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace snoc::crc {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
        table[i] = c;
    }
    return table;
}

constexpr std::array<std::uint16_t, 256> make_crc16_table() {
    std::array<std::uint16_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint16_t c = static_cast<std::uint16_t>(i << 8);
        for (int k = 0; k < 8; ++k)
            c = static_cast<std::uint16_t>((c & 0x8000u) ? ((c << 1) ^ 0x1021u)
                                                         : (c << 1));
        table[i] = c;
    }
    return table;
}

inline constexpr auto kCrc32Table = make_crc32_table();
inline constexpr auto kCrc16Table = make_crc16_table();

} // namespace detail

/// CRC-32 (IEEE 802.3) of a byte span.
constexpr std::uint32_t crc32(std::span<const std::byte> data) {
    std::uint32_t c = 0xFFFFFFFFu;
    for (std::byte b : data)
        c = detail::kCrc32Table[(c ^ static_cast<std::uint32_t>(b)) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

/// CRC-16-CCITT (init 0xFFFF) of a byte span.
constexpr std::uint16_t crc16_ccitt(std::span<const std::byte> data) {
    std::uint16_t c = 0xFFFFu;
    for (std::byte b : data)
        c = static_cast<std::uint16_t>(
            (c << 8) ^
            detail::kCrc16Table[((c >> 8) ^ static_cast<std::uint16_t>(b)) & 0xFFu]);
    return c;
}

} // namespace snoc::crc
