#include "energy/energy.hpp"

#include "common/expect.hpp"

namespace snoc {

EnergyReport noc_energy(const NetworkMetrics& metrics, const Technology& tech,
                        double elapsed_seconds, std::size_t useful_bits) {
    SNOC_EXPECT(elapsed_seconds >= 0.0);
    EnergyReport report;
    report.joules = static_cast<double>(metrics.bits_sent) * tech.link_ebit_joules;
    report.seconds = elapsed_seconds;
    if (useful_bits > 0) {
        report.joules_per_useful_bit = report.joules / static_cast<double>(useful_bits);
        report.energy_delay_product = report.joules_per_useful_bit * report.seconds;
    }
    return report;
}

EnergyReport bus_energy(std::size_t total_bits, const Technology& tech,
                        std::size_t useful_bits) {
    EnergyReport report;
    report.joules = static_cast<double>(total_bits) * tech.bus_ebit_joules;
    report.seconds = static_cast<double>(total_bits) / tech.bus_frequency_hz;
    if (useful_bits > 0) {
        report.joules_per_useful_bit = report.joules / static_cast<double>(useful_bits);
        report.energy_delay_product = report.joules_per_useful_bit * report.seconds;
    }
    return report;
}

} // namespace snoc
