// Periodic data acquisition from non-critical sensors — the third
// application class the thesis names for stochastic communication
// (Sec. 4 opening): sensors publish fresh readings every few rounds, the
// collector keeps last-known values, and occasional losses are harmless
// because the next period refreshes them.
//
// The sensed quantity is a deterministic synthetic temperature field over
// the die (a spatial gradient plus a slow drift plus sensor noise), so
// the collector's reconstruction can be checked against ground truth.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/engine.hpp"
#include "core/ip_core.hpp"

namespace snoc::apps {

inline constexpr std::uint32_t kSensorReadingTag = 0x53454E53; // 'SENS'

/// Ground-truth die temperature at (x, y) in round `round` (deg C).
double field_temperature(std::size_t x, std::size_t y, Round round);

struct SensorConfig {
    Round period{4};        ///< rounds between samples.
    double noise_c{0.05};   ///< sensor noise std-dev (deg C).
    std::uint16_t ttl{0};   ///< per-reading TTL override (0 = default).
};

class SensorIp final : public IpCore {
public:
    SensorIp(TileId collector, SensorConfig config);

    void on_round(TileContext& ctx) override;
    void on_message(const Message&, TileContext&) override {}

    std::size_t samples_published() const { return samples_; }

private:
    TileId collector_;
    SensorConfig config_;
    std::size_t samples_{0};
};

/// One sensor's last-known state at the collector.
struct SensorState {
    double value{0.0};
    Round sampled_round{0};   ///< when the sensor measured it.
    Round received_round{0};  ///< when the collector got it.
    std::size_t updates{0};
};

class CollectorIp final : public IpCore {
public:
    explicit CollectorIp(std::size_t tile_count);

    void on_message(const Message& message, TileContext& ctx) override;

    const std::optional<SensorState>& state_of(TileId sensor) const;
    std::size_t sensors_heard() const;
    std::size_t total_updates() const { return total_updates_; }

    /// Fraction of `sensors` whose last reading was sampled within
    /// `staleness_bound` rounds of `now`.
    double coverage(const std::vector<TileId>& sensors, Round now,
                    Round staleness_bound) const;
    /// Mean age (rounds since sampling) of the freshest data, over sensors
    /// that have reported at least once.
    double mean_staleness(const std::vector<TileId>& sensors, Round now) const;

private:
    std::vector<std::optional<SensorState>> states_;
    std::size_t total_updates_{0};
};

struct SensorDeployment {
    TileId collector_tile{12};
    SensorConfig sensor{};
};

struct SensorNetwork {
    CollectorIp* collector{nullptr};
    std::vector<TileId> sensor_tiles;
};

/// Put a sensor on every tile except the collector's.
SensorNetwork deploy_sensors(GossipNetwork& net,
                             const SensorDeployment& deployment = {});

} // namespace snoc::apps
