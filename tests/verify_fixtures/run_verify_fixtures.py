#!/usr/bin/env python3
"""Exact-verdict fixtures for snoc_verify's deliberately-broken probes.

Each <name>.expect file holds the exact stdout of
``snoc_verify --probe <name>`` (dashes in the probe name map to
underscores in the file name).  The probes are mutations the verifier
exists to catch, so the run must also exit 1 — a probe that comes back
clean means the analysis has gone blind, and a changed verdict line
means the witness or the budget reasoning drifted.

Usage: run_verify_fixtures.py <path-to-snoc_verify-binary>
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

FIXTURE_DIR = pathlib.Path(__file__).resolve().parent


def run_fixture(binary: str, expect_path: pathlib.Path) -> list[str]:
    probe = expect_path.stem.replace("_", "-")
    expected = expect_path.read_text()
    proc = subprocess.run(
        [binary, "--probe", probe],
        capture_output=True,
        text=True,
        check=False,
    )
    errors = []
    if proc.returncode != 1:
        errors.append(
            f"{probe}: expected exit 1 (probe verdicts must violate), "
            f"got {proc.returncode}"
        )
    if proc.stdout != expected:
        errors.append(
            f"{probe}: verdict output diverged from {expect_path.name}\n"
            f"--- expected ---\n{expected}"
            f"--- actual ---\n{proc.stdout}"
        )
    return errors


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    binary = argv[1]
    expects = sorted(FIXTURE_DIR.glob("*.expect"))
    if not expects:
        print("no .expect fixtures found", file=sys.stderr)
        return 2
    failures = []
    for expect_path in expects:
        errors = run_fixture(binary, expect_path)
        if errors:
            failures.extend(errors)
            print(f"FAIL {expect_path.stem}")
        else:
            print(f"ok   {expect_path.stem}")
    if failures:
        print("\n".join(failures), file=sys.stderr)
        return 1
    print(f"{len(expects)} verify fixtures ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
