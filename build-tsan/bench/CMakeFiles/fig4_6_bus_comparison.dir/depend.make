# Empty dependencies file for fig4_6_bus_comparison.
# This may be replaced when dependencies are built.
