#include "apps/sensors.hpp"

#include <cmath>
#include <memory>
#include <numbers>

#include "apps/payload.hpp"
#include "common/expect.hpp"

namespace snoc::apps {

double field_temperature(std::size_t x, std::size_t y, Round round) {
    // Hot corner at (0,0), cool opposite corner, plus a slow sinusoidal
    // drift of the whole die — deterministic, so tests know ground truth.
    const double gradient = 55.0 - 2.0 * static_cast<double>(x + y);
    const double drift =
        3.0 * std::sin(2.0 * std::numbers::pi * static_cast<double>(round) / 64.0);
    return gradient + drift;
}

SensorIp::SensorIp(TileId collector, SensorConfig config)
    : collector_(collector), config_(config) {
    SNOC_EXPECT(config.period >= 1);
}

void SensorIp::on_round(TileContext& ctx) {
    if (ctx.round() % config_.period != 0) return;
    PayloadWriter w;
    w.put<std::uint32_t>(ctx.tile());
    w.put<std::uint32_t>(ctx.round());
    // The sensed value: ground truth + Gaussian sensor noise.
    // (Coordinates are recovered by the collector from the tile id; the
    // field model uses a fixed 5-wide decoding consistent with the 5x5
    // deployment; other grids pass their own coordinates implicitly.)
    const std::size_t x = ctx.tile() % 5;
    const std::size_t y = ctx.tile() / 5;
    const double value = field_temperature(x, y, ctx.round()) +
                         ctx.rng().normal(0.0, config_.noise_c);
    w.put<double>(value);
    ctx.send(collector_, kSensorReadingTag, w.take(), config_.ttl);
    ++samples_;
}

CollectorIp::CollectorIp(std::size_t tile_count) : states_(tile_count) {}

void CollectorIp::on_message(const Message& message, TileContext& ctx) {
    if (message.tag != kSensorReadingTag) return;
    PayloadReader r(message.payload);
    const auto sensor = r.get<std::uint32_t>();
    const auto sampled = r.get<std::uint32_t>();
    const auto value = r.get<double>();
    if (sensor >= states_.size()) return;
    auto& slot = states_[sensor];
    // Keep only the freshest sample (readings can arrive out of order).
    if (slot && slot->sampled_round >= sampled) return;
    SensorState next;
    next.value = value;
    next.sampled_round = sampled;
    next.received_round = ctx.round();
    next.updates = slot ? slot->updates + 1 : 1;
    slot = next;
    ++total_updates_;
}

const std::optional<SensorState>& CollectorIp::state_of(TileId sensor) const {
    SNOC_EXPECT(sensor < states_.size());
    return states_[sensor];
}

std::size_t CollectorIp::sensors_heard() const {
    std::size_t n = 0;
    for (const auto& s : states_)
        if (s) ++n;
    return n;
}

double CollectorIp::coverage(const std::vector<TileId>& sensors, Round now,
                             Round staleness_bound) const {
    SNOC_EXPECT(!sensors.empty());
    std::size_t fresh = 0;
    for (TileId s : sensors) {
        const auto& state = states_[s];
        if (state && now - state->sampled_round <= staleness_bound) ++fresh;
    }
    return static_cast<double>(fresh) / static_cast<double>(sensors.size());
}

double CollectorIp::mean_staleness(const std::vector<TileId>& sensors,
                                   Round now) const {
    double total = 0.0;
    std::size_t counted = 0;
    for (TileId s : sensors) {
        const auto& state = states_[s];
        if (!state) continue;
        total += static_cast<double>(now - state->sampled_round);
        ++counted;
    }
    return counted ? total / static_cast<double>(counted) : 0.0;
}

SensorNetwork deploy_sensors(GossipNetwork& net, const SensorDeployment& d) {
    SensorNetwork out;
    const std::size_t tiles = net.topology().node_count();
    auto collector = std::make_unique<CollectorIp>(tiles);
    out.collector = collector.get();
    net.attach(d.collector_tile, std::move(collector));
    for (TileId t = 0; t < tiles; ++t) {
        if (t == d.collector_tile) continue;
        net.attach(t, std::make_unique<SensorIp>(d.collector_tile, d.sensor));
        out.sensor_tiles.push_back(t);
    }
    return out;
}

} // namespace snoc::apps
