#include "common/table.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "common/expect.hpp"

namespace snoc {
namespace {

TEST(Table, RequiresHeaders) {
    EXPECT_THROW(Table({}), ContractViolation);
}

TEST(Table, RowWidthMustMatch) {
    Table t({"a", "b"});
    EXPECT_THROW(t.add_row({"1"}), ContractViolation);
    EXPECT_NO_THROW(t.add_row({"1", "2"}));
    EXPECT_EQ(t.row_count(), 1u);
    EXPECT_EQ(t.row(0)[1], "2");
    EXPECT_THROW(t.row(1), ContractViolation);
}

TEST(Table, AsciiRenderingAligns) {
    Table t({"p", "latency"});
    t.add_row({"0.5", "7"});
    t.add_row({"1", "4"});
    std::ostringstream os;
    t.print(os);
    const auto text = os.str();
    EXPECT_NE(text.find("| p   | latency |"), std::string::npos);
    EXPECT_NE(text.find("| 0.5 | 7       |"), std::string::npos);
    EXPECT_NE(text.find("+-----+---------+"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
    Table t({"name", "value"});
    t.add_row({"plain", "1"});
    t.add_row({"with,comma", "quote\"inside"});
    std::ostringstream os;
    t.print_csv(os);
    const auto text = os.str();
    EXPECT_NE(text.find("name,value\n"), std::string::npos);
    EXPECT_NE(text.find("plain,1\n"), std::string::npos);
    EXPECT_NE(text.find("\"with,comma\",\"quote\"\"inside\"\n"), std::string::npos);
}

TEST(Table, JsonIsArrayOfObjectsKeyedByHeader) {
    Table t({"p", "latency"});
    t.add_row({"0.5", "7"});
    t.add_row({"1", "4"});
    std::ostringstream os;
    t.print_json(os);
    EXPECT_EQ(os.str(),
              "[\n"
              " {\"p\": \"0.5\", \"latency\": \"7\"},\n"
              " {\"p\": \"1\", \"latency\": \"4\"}\n"
              "]\n");
}

TEST(Table, JsonEscapesSpecials) {
    Table t({"name \"quoted\""});
    t.add_row({"back\\slash"});
    t.add_row({"line\nbreak\ttab"});
    std::ostringstream os;
    t.print_json(os);
    const auto text = os.str();
    EXPECT_NE(text.find("\"name \\\"quoted\\\"\""), std::string::npos);
    EXPECT_NE(text.find("\"back\\\\slash\""), std::string::npos);
    EXPECT_NE(text.find("\"line\\nbreak\\ttab\""), std::string::npos);
}

TEST(Table, JsonOfEmptyTableIsEmptyArray) {
    Table t({"only", "headers"});
    std::ostringstream os;
    t.print_json(os);
    EXPECT_EQ(os.str(), "[\n]\n");
}

TEST(FormatNumber, TrimsTrailingZeros) {
    EXPECT_EQ(format_number(1.5), "1.5");
    EXPECT_EQ(format_number(2.0), "2");
    EXPECT_EQ(format_number(0.1234567, 3), "0.123");
    EXPECT_EQ(format_number(-3.1400001, 2), "-3.14");
    EXPECT_EQ(format_number(0.0), "0");
}

TEST(FormatSci, ScientificShape) {
    const auto s = format_sci(2.4e-10, 1);
    EXPECT_EQ(s, "2.4e-10");
}

} // namespace
} // namespace snoc
