file(REMOVE_RECURSE
  "CMakeFiles/test_producer_consumer.dir/test_producer_consumer.cpp.o"
  "CMakeFiles/test_producer_consumer.dir/test_producer_consumer.cpp.o.d"
  "test_producer_consumer"
  "test_producer_consumer.pdb"
  "test_producer_consumer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_producer_consumer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
