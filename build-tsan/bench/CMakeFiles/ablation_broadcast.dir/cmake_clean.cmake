file(REMOVE_RECURSE
  "CMakeFiles/ablation_broadcast.dir/ablation_broadcast.cpp.o"
  "CMakeFiles/ablation_broadcast.dir/ablation_broadcast.cpp.o.d"
  "ablation_broadcast"
  "ablation_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
