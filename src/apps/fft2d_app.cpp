#include "apps/fft2d_app.hpp"

#include <cmath>
#include <memory>
#include <numbers>

#include "apps/payload.hpp"
#include "common/expect.hpp"
#include "common/rng.hpp"

namespace snoc::apps {

std::vector<std::byte> encode_image_payload(std::uint32_t task, const ComplexImage& img) {
    PayloadWriter w;
    w.put<std::uint32_t>(task);
    w.put<std::uint32_t>(static_cast<std::uint32_t>(img.width));
    w.put<std::uint32_t>(static_cast<std::uint32_t>(img.height));
    for (const Complex& c : img.data) {
        w.put_f32(c.real());
        w.put_f32(c.imag());
    }
    return w.take();
}

std::pair<std::uint32_t, ComplexImage> decode_image_payload(
    std::span<const std::byte> payload) {
    PayloadReader r(payload);
    const auto task = r.get<std::uint32_t>();
    const auto w = r.get<std::uint32_t>();
    const auto h = r.get<std::uint32_t>();
    ComplexImage img = ComplexImage::zeros(w, h);
    for (auto& c : img.data) {
        const double re = r.get_f32();
        const double im = r.get_f32();
        c = Complex(re, im);
    }
    SNOC_ENSURE(r.exhausted());
    return {task, std::move(img)};
}

// --------------------------------------------------------------------------
FftRootIp::FftRootIp(ComplexImage input) : input_(std::move(input)) {
    SNOC_EXPECT(input_.width == input_.height);
    SNOC_EXPECT(input_.width >= 2 && input_.width % 2 == 0);
}

void FftRootIp::on_start(TileContext& ctx) {
    const auto quads = decimate2d(input_);
    for (std::uint32_t task = 0; task < 4; ++task)
        ctx.send(kBroadcast, kFftWorkTag, encode_image_payload(task, quads[task]));
}

void FftRootIp::on_message(const Message& message, TileContext& ctx) {
    if (message.tag != kFftResultTag || done_) return;
    auto [task, img] = decode_image_payload(message.payload);
    if (task >= 4 || have_[task]) return;
    have_[task] = true;
    results_[task] = std::move(img);
    if (++received_ == 4) {
        spectrum_ = combine2d(results_);
        done_ = true;
        completion_round_ = ctx.round();
    }
}

const ComplexImage& FftRootIp::spectrum() const {
    SNOC_EXPECT(done_);
    return spectrum_;
}

// --------------------------------------------------------------------------
FftWorkerIp::FftWorkerIp(std::uint32_t task, TileId root_tile)
    : task_(task), root_(root_tile) {}

void FftWorkerIp::on_message(const Message& message, TileContext& ctx) {
    if (message.tag != kFftWorkTag || answered_) return;
    auto [task, img] = decode_image_payload(message.payload);
    if (task != task_) return;
    const ComplexImage transformed = fft2d(img);
    ctx.send_with_id(MessageId{TileContext::replica_origin(0x100u | task_), 0}, root_,
                     kFftResultTag, encode_image_payload(task_, transformed));
    answered_ = true;
}

// --------------------------------------------------------------------------
ComplexImage make_test_image(std::size_t n, std::uint64_t seed) {
    ComplexImage img = ComplexImage::zeros(n, n);
    RngStream rng(splitmix64(seed));
    // Two spatial tones plus sparse impulses: a spectrum with recognisable
    // peaks, so a scrambled-but-undetected result would be visible.
    for (std::size_t y = 0; y < n; ++y) {
        for (std::size_t x = 0; x < n; ++x) {
            const double fx = 2.0 * std::numbers::pi * static_cast<double>(x) /
                              static_cast<double>(n);
            const double fy = 2.0 * std::numbers::pi * static_cast<double>(y) /
                              static_cast<double>(n);
            double v = std::sin(3.0 * fx) + 0.5 * std::cos(5.0 * fy);
            if (rng.bernoulli(0.02)) v += 4.0;
            img.at(x, y) = Complex(v, 0.0);
        }
    }
    return img;
}

FftRootIp& deploy_fft2d(GossipNetwork& net, const FftDeployment& d,
                        std::uint64_t image_seed) {
    SNOC_EXPECT(net.topology().node_count() >= 16);
    auto root = std::make_unique<FftRootIp>(make_test_image(d.image_size, image_seed));
    FftRootIp& ref = *root;
    net.attach(d.root_tile, std::move(root));
    for (std::uint32_t task = 0; task < 4; ++task) {
        net.attach(d.worker_tiles[task],
                   std::make_unique<FftWorkerIp>(task, d.root_tile));
        if (d.duplicate_workers)
            net.attach(d.replica_tiles[task],
                       std::make_unique<FftWorkerIp>(task, d.root_tile));
    }
    return ref;
}

TrafficTrace fft2d_trace(const FftDeployment& d) {
    const std::size_t half = d.image_size / 2;
    // float32 re+im per pixel, plus the 12-byte payload header.
    const std::size_t quad_bits = (12 + half * half * 8) * 8;
    TrafficTrace trace;
    TrafficPhase scatter, gather;
    for (std::uint32_t task = 0; task < 4; ++task) {
        scatter.messages.push_back({d.root_tile, d.worker_tiles[task], quad_bits});
        gather.messages.push_back({d.worker_tiles[task], d.root_tile, quad_bits});
    }
    trace.phases.push_back(std::move(scatter));
    trace.phases.push_back(std::move(gather));
    return trace;
}

} // namespace snoc::apps
