file(REMOVE_RECURSE
  "CMakeFiles/test_fft2d_app.dir/test_fft2d_app.cpp.o"
  "CMakeFiles/test_fft2d_app.dir/test_fft2d_app.cpp.o.d"
  "test_fft2d_app"
  "test_fft2d_app.pdb"
  "test_fft2d_app[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fft2d_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
