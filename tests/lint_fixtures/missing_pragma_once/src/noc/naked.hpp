// BAD: no #pragma once.
namespace snoc { struct Naked {}; }
