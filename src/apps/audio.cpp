#include "apps/audio.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/expect.hpp"

namespace snoc::apps {

ToneGenerator::ToneGenerator(AudioParams params, std::uint64_t seed)
    : params_(std::move(params)), rng_(splitmix64(seed)) {
    SNOC_EXPECT(params_.sample_rate_hz > 0.0);
    SNOC_EXPECT(params_.tone_hz.size() == params_.tone_amp.size());
}

std::vector<double> ToneGenerator::frame(std::size_t n) {
    std::vector<double> out(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double t = static_cast<double>(position_ + i) / params_.sample_rate_hz;
        double v = 0.0;
        for (std::size_t k = 0; k < params_.tone_hz.size(); ++k)
            v += params_.tone_amp[k] *
                 std::sin(2.0 * std::numbers::pi * params_.tone_hz[k] * t);
        v += params_.noise_amp * (2.0 * rng_.uniform() - 1.0);
        out[i] = std::clamp(v, -1.0, 1.0);
    }
    position_ += n;
    return out;
}

} // namespace snoc::apps
