# Empty dependencies file for snoc_core.
# This may be replaced when dependencies are built.
