// Deterministic parallel Monte-Carlo trial fan-out.
//
// Every paper figure (Fig. 3-1, 4-4..4-11, 5-3) and every ablation is an
// average over seeds, and the trials are embarrassingly parallel: each
// one owns an independent GossipNetwork constructed from its trial
// index.  run_trials() executes fn(0), fn(1), ..., fn(n-1) on a shared
// thread pool and returns the results ordered by trial index, so the
// output is bit-identical regardless of worker count — jobs=1 and
// jobs=N interleave differently in time but never share RNG state, and
// every result lands in its own pre-allocated slot.
//
// Determinism contract (see DESIGN.md "Performance architecture"):
//   * fn must derive ALL randomness from its trial-index argument —
//     construct RngPool/RngStream/GossipNetwork *inside* fn, never
//     share a stream or a network across trials;
//   * fn must not mutate shared state (accumulate into the returned
//     value; aggregate after run_trials returns);
//   * under these rules, results[i] == fn(i) for every jobs value.
//
// Concurrency contract (see DESIGN.md §16): all shared state here is
// either a lock-free atomic with a justified ordering (`relaxed[...]`
// tags, scripts/ordering_allowlist.txt) or guarded by an annotated
// snoc::Mutex the Clang thread-safety analysis checks.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/annotations.hpp"

namespace snoc {

/// Worker count used when the caller does not specify one:
/// the SNOC_JOBS environment variable if set (and a positive integer),
/// otherwise std::thread::hardware_concurrency(), otherwise 1.
std::size_t default_jobs();

/// A reusable fixed-size pool of worker threads.  Jobs are opaque
/// void() callables processed FIFO; completion is the caller's business
/// (run_trials uses a per-batch countdown, wait_idle() drains all).
class ThreadPool {
public:
    explicit ThreadPool(std::size_t threads);
    ~ThreadPool();
    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Enqueue a job.  Never blocks; the queue is unbounded.
    void submit(std::function<void()> job) SNOC_EXCLUDES(mutex_);

    /// Block until the queue is empty and every worker is idle.
    void wait_idle() SNOC_EXCLUDES(mutex_);

    std::size_t size() const { return workers_.size(); }

    /// Process-wide pool sized by default_jobs(), created on first use.
    /// run_trials() draws its workers from here so repeated fan-outs
    /// reuse threads instead of spawning fresh ones per sweep point.
    static ThreadPool& shared();

private:
    void worker_loop() SNOC_EXCLUDES(mutex_);

    mutable Mutex mutex_;
    CondVar work_cv_;
    CondVar idle_cv_;
    std::deque<std::function<void()>> queue_ SNOC_GUARDED_BY(mutex_);
    /// Spawned in the constructor, joined in the destructor — both
    /// single-threaded phases, so no lock guards the vector itself
    /// (allowlisted: scripts/concurrency_allowlist.txt).
    std::vector<std::thread> workers_;
    std::size_t active_ SNOC_GUARDED_BY(mutex_){0};
    bool stop_ SNOC_GUARDED_BY(mutex_){false};
};

/// Run fn(0..n_trials-1) with up to `jobs` workers (0 = default_jobs())
/// and return the results in trial order.  The calling thread always
/// participates as one of the workers, so jobs=1 degenerates to the
/// plain serial loop with zero synchronisation overhead.  The result
/// type must be default-constructible (slots are pre-allocated).
/// The first exception thrown by any trial is rethrown here after all
/// in-flight trials finish; remaining trials are abandoned.
template <typename Fn>
auto run_trials(std::size_t n_trials, Fn&& fn, std::size_t jobs = 0)
    -> std::vector<std::decay_t<std::invoke_result_t<Fn&, std::uint64_t>>> {
    using R = std::decay_t<std::invoke_result_t<Fn&, std::uint64_t>>;
    if (jobs == 0) jobs = default_jobs();
    std::vector<R> results(n_trials);
    if (n_trials == 0) return results;
    if (jobs <= 1 || n_trials == 1) {
        for (std::uint64_t i = 0; i < n_trials; ++i)
            results[i] = fn(static_cast<std::uint64_t>(i));
        return results;
    }

    // Work-stealing over a shared atomic trial counter: each worker pulls
    // the next unclaimed index and writes fn(i) into its own slot.  Trial
    // order in `results` is by index, independent of scheduling.
    std::atomic<std::uint64_t> next{0};
    std::atomic<bool> failed{false};
    // First-failure slot.  A named struct (not bare locals) so the
    // guarded_by relation is visible to the thread-safety analysis.
    struct ErrorSlot {
        Mutex mutex;
        std::exception_ptr first SNOC_GUARDED_BY(mutex);
    } error;
    auto work = [&] {
        for (;;) {
            const std::uint64_t i =
                next.fetch_add(1, std::memory_order_relaxed); // relaxed[claim-counter]
            if (i >= n_trials ||
                failed.load(std::memory_order_relaxed)) // relaxed[abort-flag]
                break;
            try {
                results[i] = fn(i);
            } catch (...) {
                LockGuard lock(error.mutex);
                if (!error.first) error.first = std::current_exception();
                failed.store(true, std::memory_order_relaxed); // relaxed[abort-flag]
            }
        }
    };

    // The caller is worker #1; helpers come from the shared pool.  Each
    // helper signals the countdown when it runs out of trials.  The
    // acq_rel countdown + the caller's acquire re-check publish every
    // helper's `results[i]` writes to the caller.
    const std::size_t helpers = std::min(jobs, n_trials) - 1;
    std::atomic<std::size_t> remaining{helpers};
    struct DoneLatch {
        Mutex mutex;
        CondVar cv;
    } done;
    ThreadPool& pool = ThreadPool::shared();
    for (std::size_t h = 0; h < helpers; ++h) {
        pool.submit([&] {
            work();
            if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                LockGuard lock(done.mutex);
                done.cv.notify_all();
            }
        });
    }
    work();
    {
        UniqueLock lock(done.mutex);
        while (remaining.load(std::memory_order_acquire) != 0)
            done.cv.wait(lock);
    }
    std::exception_ptr first;
    {
        LockGuard lock(error.mutex);
        first = error.first;
    }
    if (first) std::rethrow_exception(first);
    return results;
}

} // namespace snoc
