#include "fault/injector.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace snoc {

std::size_t CrashState::dead_tile_count() const {
    return static_cast<std::size_t>(
        std::count(dead_tiles.begin(), dead_tiles.end(), true));
}

std::size_t CrashState::dead_link_count() const {
    return static_cast<std::size_t>(
        std::count(dead_links.begin(), dead_links.end(), true));
}

FaultInjector::FaultInjector(FaultScenario scenario, const RngPool& pool)
    : scenario_(scenario),
      crash_rng_(pool.stream("fault/crash")),
      upset_rng_(pool.stream("fault/upset")),
      overflow_rng_(pool.stream("fault/overflow")),
      synchr_rng_(pool.stream("fault/synchr")) {
    scenario_.validate();
}

CrashState FaultInjector::roll_crashes(const Topology& topo,
                                       const std::vector<TileId>& protected_tiles) {
    CrashState state;
    state.dead_tiles.assign(topo.node_count(), false);
    state.dead_links.assign(topo.link_count(), false);
    for (TileId t = 0; t < topo.node_count(); ++t) {
        const bool is_protected =
            std::find(protected_tiles.begin(), protected_tiles.end(), t) !=
            protected_tiles.end();
        if (!is_protected && crash_rng_.bernoulli(scenario_.p_tiles))
            state.dead_tiles[t] = true;
    }
    for (LinkId l = 0; l < topo.link_count(); ++l)
        if (crash_rng_.bernoulli(scenario_.p_links)) state.dead_links[l] = true;
    return state;
}

CrashState FaultInjector::roll_exact_tile_crashes(
    const Topology& topo, std::size_t k, const std::vector<TileId>& protected_tiles) {
    CrashState state;
    state.dead_tiles.assign(topo.node_count(), false);
    state.dead_links.assign(topo.link_count(), false);

    std::vector<TileId> candidates;
    for (TileId t = 0; t < topo.node_count(); ++t) {
        const bool is_protected =
            std::find(protected_tiles.begin(), protected_tiles.end(), t) !=
            protected_tiles.end();
        if (!is_protected) candidates.push_back(t);
    }
    SNOC_EXPECT(k <= candidates.size());
    // Partial Fisher-Yates: pick k distinct victims.
    for (std::size_t i = 0; i < k; ++i) {
        const auto j = i + static_cast<std::size_t>(crash_rng_.below(candidates.size() - i));
        std::swap(candidates[i], candidates[j]);
        state.dead_tiles[candidates[i]] = true;
    }
    // Links still crash independently (usually p_links == 0 in this mode).
    for (LinkId l = 0; l < topo.link_count(); ++l)
        if (crash_rng_.bernoulli(scenario_.p_links)) state.dead_links[l] = true;
    return state;
}

bool FaultInjector::maybe_upset(Packet& packet) {
    if (!upset_roll()) return false;
    apply_upset(packet.mutable_wire());
    return true;
}

bool FaultInjector::upset_roll() {
    return upset_rng_.bernoulli(scenario_.p_upset);
}

void FaultInjector::apply_upset(std::vector<std::byte>& wire) {
    corrupt(wire);
    ++upsets_;
}

void FaultInjector::corrupt(std::vector<std::byte>& wire) {
    SNOC_EXPECT(!wire.empty());
    const std::size_t nbits = wire.size() * 8;

    auto flip = [&wire](std::size_t bit) {
        wire[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
    };

    switch (scenario_.upset_model) {
    case UpsetModel::RandomBitError: {
        // e_1..e_n independent with small p_b; conditioned on the packet
        // being upset at least one bit flips.  Expected flips ~ 2 models a
        // burst-free DSM noise event (crosstalk glitch on a couple of
        // wires) while keeping P[packet scrambled] == p_upset exactly.
        std::size_t flips = 0;
        for (std::size_t b = 0; b < nbits; ++b) {
            if (upset_rng_.bernoulli(2.0 / static_cast<double>(nbits))) {
                flip(b);
                ++flips;
            }
        }
        if (flips == 0) flip(static_cast<std::size_t>(upset_rng_.below(nbits)));
        break;
    }
    case UpsetModel::RandomErrorVector: {
        // All 2^n - 1 non-null vectors equally likely: draw uniform random
        // bytes, redraw if the all-zero vector comes up.
        bool nonzero = false;
        while (!nonzero) {
            for (auto& b : wire) {
                const auto r = static_cast<std::uint8_t>(upset_rng_.bits() & 0xFF);
                b ^= static_cast<std::byte>(r);
                nonzero = nonzero || r != 0;
            }
        }
        break;
    }
    }
}

bool FaultInjector::overflow_drop() {
    if (!overflow_rng_.bernoulli(scenario_.p_overflow)) return false;
    ++overflows_;
    return true;
}

double FaultInjector::round_duration(double t_r, TileId tile) {
    SNOC_EXPECT(t_r > 0.0);
    (void)tile; // one shared stream keeps draw order deterministic per run
    const double d = synchr_rng_.normal(t_r, scenario_.sigma_synchr * t_r);
    return std::max(d, 0.01 * t_r);
}

} // namespace snoc
