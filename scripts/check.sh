#!/usr/bin/env bash
# Tier-1 check: lint + configure + build + full ctest, honoring SNOC_SANITIZE.
#
#   scripts/check.sh                        # plain build in build/
#   SNOC_SANITIZE=thread scripts/check.sh   # TSan build in build-thread/
#   SNOC_SANITIZE=matrix scripts/check.sh   # address, undefined, thread in turn
#   SNOC_CHECK_LEVEL=2 scripts/check.sh     # per-round ledger audits everywhere
#
# Ends with an explicit pass over the interconnect/scenario/check labels —
# the backend-parity, runner-determinism and invariant-auditor suites this
# repo's refactors rest on — so a sanitizer run can target just them with
# CHECK_LABELS.
set -euo pipefail

cd "$(dirname "$0")/.."

# Static analysis first: snoc_lint (layering DAG, registry cross-checks,
# determinism, RNG discipline, concurrency/thread-safety discipline — see
# tools/snoc_lint/, DESIGN.md §11 and §16) is
# fast and failing it should not cost a build; clang-tidy rides along when
# installed (see scripts/lint.sh — it skips gracefully when the compile
# database does not exist yet, i.e. before the first configure).
if [[ -f "${CHECK_BUILD_DIR:-build}/compile_commands.json" ]]; then
    scripts/lint.sh "${CHECK_BUILD_DIR:-build}"
else
    python3 tools/snoc_lint
fi

run_one() {
    local sanitize="$1"
    local build_dir configure_args=()
    if [[ -n "${sanitize}" ]]; then
        build_dir="build-${sanitize}"
        configure_args+=(-DSNOC_SANITIZE="${sanitize}")
    else
        build_dir="build"
    fi
    if [[ -n "${SNOC_CHECK_LEVEL:-}" ]]; then
        configure_args+=(-DSNOC_CHECK_LEVEL="${SNOC_CHECK_LEVEL}")
    fi

    local jobs
    jobs="$(nproc 2>/dev/null || echo 4)"

    cmake -B "${build_dir}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        "${configure_args[@]+"${configure_args[@]}"}"
    cmake --build "${build_dir}" -j "${jobs}"

    ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"

    # The unified-interconnect + invariant-auditor suites, runnable on
    # their own via CHECK_LABELS='interconnect|scenario|check' (default).
    local labels="${CHECK_LABELS:-interconnect|scenario|check}"
    ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}" -L "${labels}"
}

SANITIZE="${SNOC_SANITIZE:-}"
if [[ "${SANITIZE}" == "matrix" ]]; then
    for s in address undefined thread; do
        echo "== sanitizer: ${s} =="
        run_one "${s}"
    done
else
    run_one "${SANITIZE}"
fi
