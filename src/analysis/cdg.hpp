// Channel-dependency-graph (CDG) analysis: the static deadlock proof
// obligation for deterministic routing policies (Dally & Seitz; made a
// first-class design rule by Stroobant et al., PAPERS.md).
//
// A *channel* is a directed link of the topology.  A dependency c -> c'
// exists when some packet that can legitimately occupy c (it is holding
// the link's downstream input buffer) may next request c'.  The routing
// relation is the RoutingPolicy stage of the layered router core
// (router/policy.hpp) — a pure function of (position, arrival port,
// destination, crash pattern) — so the full dependency set is computable
// by exhaustive query, no simulation involved:
//
//   for every destination d:
//     seed the channels named at every source (injection, from = kNoTile),
//     then close transitively: channel (u -> v) occupied en route to d
//     contributes an edge to every channel (v -> w) the policy names at v.
//
// The per-destination *reachability* closure matters: querying every
// (channel, destination) pair unconditionally manufactures dependencies
// no packet can exercise (e.g. a northbound channel queried for a
// westward destination under west-first) and would flag XY itself as
// cyclic.  Only pairs reachable under the routing relation count — this
// is the classical formulation of the channel-dependency theorem.
//
// The policy's permitted-turn set is deadlock-free iff the CDG is
// acyclic (Tarjan SCC, the same algorithm snoc_lint's layer checker runs
// over the include graph, ported from tools/snoc_lint/model.py).  A
// cycle is reported as a concrete closed channel sequence so the verdict
// is actionable, not just boolean.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "noc/topology.hpp"
#include "router/policy.hpp"

namespace snoc::analysis {

/// One CDG analysis result.  `cycle` is empty when the graph is acyclic;
/// otherwise it is a closed walk of channel (link) ids — consecutive
/// entries share a tile, and the last entry feeds the first.
struct CdgResult {
    std::size_t channels{0};     ///< live directed links of the topology.
    std::size_t reachable{0};    ///< channels reachable for >= 1 destination.
    std::size_t dependencies{0}; ///< distinct dependency edges found.
    std::vector<LinkId> cycle;   ///< shortest cycle witness, empty if acyclic.

    bool acyclic() const { return cycle.empty(); }
};

/// Build the channel dependency graph of `policy` on `topo` by exhaustive
/// policy query and detect cycles.  `dead` is the static crash pattern
/// (empty = healthy); dead tiles neither source, sink nor relay packets.
CdgResult analyze_cdg(const Topology& topo, const router::RoutingPolicy& policy,
                      const std::vector<bool>& dead = {});

/// Human-readable rendering of a cycle witness: the tile-coordinate hop
/// sequence "(x,y)->(x,y)->..." with the closing hop repeated.
std::string cycle_to_string(const Topology& topo,
                            const std::vector<LinkId>& cycle);

/// Iterative Tarjan over an adjacency-list graph; returns every strongly
/// connected component with more than one node (the cycles), components
/// sorted by their smallest node id, members ascending.  The C++ port of
/// tools/snoc_lint/model.py::strongly_connected_components, exposed so
/// tests can cross-check the two implementations.
std::vector<std::vector<std::size_t>>
strongly_connected_components(const std::vector<std::vector<std::size_t>>& adj);

} // namespace snoc::analysis
