file(REMOVE_RECURSE
  "CMakeFiles/snoc_apps.dir/audio.cpp.o"
  "CMakeFiles/snoc_apps.dir/audio.cpp.o.d"
  "CMakeFiles/snoc_apps.dir/beamforming.cpp.o"
  "CMakeFiles/snoc_apps.dir/beamforming.cpp.o.d"
  "CMakeFiles/snoc_apps.dir/bitstream.cpp.o"
  "CMakeFiles/snoc_apps.dir/bitstream.cpp.o.d"
  "CMakeFiles/snoc_apps.dir/fft.cpp.o"
  "CMakeFiles/snoc_apps.dir/fft.cpp.o.d"
  "CMakeFiles/snoc_apps.dir/fft2d_app.cpp.o"
  "CMakeFiles/snoc_apps.dir/fft2d_app.cpp.o.d"
  "CMakeFiles/snoc_apps.dir/master_slave_pi.cpp.o"
  "CMakeFiles/snoc_apps.dir/master_slave_pi.cpp.o.d"
  "CMakeFiles/snoc_apps.dir/mdct.cpp.o"
  "CMakeFiles/snoc_apps.dir/mdct.cpp.o.d"
  "CMakeFiles/snoc_apps.dir/mp3_app.cpp.o"
  "CMakeFiles/snoc_apps.dir/mp3_app.cpp.o.d"
  "CMakeFiles/snoc_apps.dir/mp3_decoder.cpp.o"
  "CMakeFiles/snoc_apps.dir/mp3_decoder.cpp.o.d"
  "CMakeFiles/snoc_apps.dir/producer_consumer.cpp.o"
  "CMakeFiles/snoc_apps.dir/producer_consumer.cpp.o.d"
  "CMakeFiles/snoc_apps.dir/psycho.cpp.o"
  "CMakeFiles/snoc_apps.dir/psycho.cpp.o.d"
  "CMakeFiles/snoc_apps.dir/quantizer.cpp.o"
  "CMakeFiles/snoc_apps.dir/quantizer.cpp.o.d"
  "CMakeFiles/snoc_apps.dir/sat.cpp.o"
  "CMakeFiles/snoc_apps.dir/sat.cpp.o.d"
  "CMakeFiles/snoc_apps.dir/sensors.cpp.o"
  "CMakeFiles/snoc_apps.dir/sensors.cpp.o.d"
  "CMakeFiles/snoc_apps.dir/trace_app.cpp.o"
  "CMakeFiles/snoc_apps.dir/trace_app.cpp.o.d"
  "libsnoc_apps.a"
  "libsnoc_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snoc_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
