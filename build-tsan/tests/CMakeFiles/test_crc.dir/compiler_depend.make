# Empty compiler generated dependencies file for test_crc.
# This may be replaced when dependencies are built.
