#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"

namespace snoc {

void Accumulator::add(double x) {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double Accumulator::mean() const {
    SNOC_EXPECT(n_ > 0);
    return mean_;
}

double Accumulator::variance() const {
    if (n_ < 2) return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const {
    SNOC_EXPECT(n_ > 0);
    return min_;
}

double Accumulator::max() const {
    SNOC_EXPECT(n_ > 0);
    return max_;
}

void Accumulator::merge(const Accumulator& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double nt = na + nb;
    mean_ += delta * nb / nt;
    m2_ += other.m2_ + delta * delta * na * nb / nt;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void SampleSet::add(double x) {
    samples_.push_back(x);
    sorted_valid_ = false;
}

double SampleSet::mean() const {
    SNOC_EXPECT(!samples_.empty());
    double s = 0.0;
    for (double x : samples_) s += x;
    return s / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
    if (samples_.size() < 2) return 0.0;
    const double m = mean();
    double m2 = 0.0;
    for (double x : samples_) m2 += (x - m) * (x - m);
    return std::sqrt(m2 / static_cast<double>(samples_.size() - 1));
}

double SampleSet::min() const {
    SNOC_EXPECT(!samples_.empty());
    return *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const {
    SNOC_EXPECT(!samples_.empty());
    return *std::max_element(samples_.begin(), samples_.end());
}

void SampleSet::ensure_sorted() const {
    if (!sorted_valid_) {
        sorted_ = samples_;
        std::sort(sorted_.begin(), sorted_.end());
        sorted_valid_ = true;
    }
}

double SampleSet::percentile(double q) const {
    SNOC_EXPECT(!samples_.empty());
    SNOC_EXPECT(q >= 0.0 && q <= 1.0);
    ensure_sorted();
    if (sorted_.size() == 1) return sorted_.front();
    const double pos = q * static_cast<double>(sorted_.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= sorted_.size()) return sorted_.back();
    return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

double SampleSet::ci95_halfwidth() const {
    if (samples_.size() < 2) return 0.0;
    return 1.96 * stddev() / std::sqrt(static_cast<double>(samples_.size()));
}

void Regression::add(double x, double y) {
    ++n_;
    sx_ += x;
    sy_ += y;
    sxx_ += x * x;
    syy_ += y * y;
    sxy_ += x * y;
}

LinearFit Regression::fit() const {
    SNOC_EXPECT(n_ >= 2);
    const double n = static_cast<double>(n_);
    const double var_x = sxx_ - sx_ * sx_ / n;
    SNOC_EXPECT(var_x > 0.0);
    LinearFit out;
    out.slope = (sxy_ - sx_ * sy_ / n) / var_x;
    out.intercept = (sy_ - out.slope * sx_) / n;
    const double var_y = syy_ - sy_ * sy_ / n;
    if (var_y > 0.0) {
        const double cov = sxy_ - sx_ * sy_ / n;
        out.r_squared = (cov * cov) / (var_x * var_y);
    } else {
        out.r_squared = 1.0; // constant y is fit perfectly
    }
    return out;
}

double Regression::correlation() const {
    if (n_ < 2) return 0.0;
    const double n = static_cast<double>(n_);
    const double var_x = sxx_ - sx_ * sx_ / n;
    const double var_y = syy_ - sy_ * sy_ / n;
    if (var_x <= 0.0 || var_y <= 0.0) return 0.0;
    return (sxy_ - sx_ * sy_ / n) / std::sqrt(var_x * var_y);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
    SNOC_EXPECT(hi > lo);
    SNOC_EXPECT(buckets > 0);
}

void Histogram::add(double x) {
    const double span = hi_ - lo_;
    auto idx = static_cast<long>((x - lo_) / span * static_cast<double>(counts_.size()));
    idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
}

std::size_t Histogram::count(std::size_t bucket) const {
    SNOC_EXPECT(bucket < counts_.size());
    return counts_[bucket];
}

double Histogram::bucket_center(std::size_t i) const {
    SNOC_EXPECT(i < counts_.size());
    const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + (static_cast<double>(i) + 0.5) * w;
}

} // namespace snoc
