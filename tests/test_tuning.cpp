#include "core/tuning.hpp"

#include <memory>

#include <gtest/gtest.h>

#include "core/engine.hpp"

namespace snoc {
namespace {

TEST(EstimateTtl, FloodingNeedsAboutDiameterRounds) {
    // p = 1: diameter plus slack.
    const auto ttl = estimate_ttl(6, 1.0);
    EXPECT_GE(ttl, 6u);
    EXPECT_LE(ttl, 14u);
}

TEST(EstimateTtl, LowerPNeedsMoreRounds) {
    EXPECT_GT(estimate_ttl(6, 0.25), estimate_ttl(6, 0.5));
    EXPECT_GT(estimate_ttl(6, 0.5), estimate_ttl(6, 1.0));
}

TEST(EstimateTtl, GrowsWithDiameter) {
    EXPECT_GT(estimate_ttl(14, 0.5), estimate_ttl(6, 0.5));
}

TEST(EstimateTtl, RejectsBadP) {
    EXPECT_THROW(estimate_ttl(6, 0.0), ContractViolation);
    EXPECT_THROW(estimate_ttl(6, 1.5), ContractViolation);
}

TEST(FarthestPair, MeshCorners) {
    const auto mesh = Topology::mesh(4, 4);
    const auto [a, b] = farthest_pair(mesh);
    EXPECT_EQ(mesh.manhattan(a, b), 6u);
}

TEST(FarthestPair, FullyConnectedAnyPair) {
    const auto full = Topology::fully_connected(6);
    const auto [a, b] = farthest_pair(full);
    EXPECT_NE(a, b);
}

TEST(PlanTtl, RecommendationMeetsTarget) {
    const auto mesh = Topology::mesh(4, 4);
    const auto plan = plan_ttl(mesh, 0.5, 0.9, /*seed=*/1, /*trials=*/40);
    EXPECT_GE(plan.achieved_delivery, 0.9);
    EXPECT_GE(plan.recommended_ttl, 6u); // can't beat the diameter
    EXPECT_EQ(mesh.manhattan(plan.worst_source, plan.worst_destination), 6u);

    // Independent validation with fresh seeds.
    class Probe final : public IpCore {
    public:
        explicit Probe(TileId dst) : dst_(dst) {}
        void on_start(TileContext& ctx) override {
            ctx.send(dst_, 1, {std::byte{1}});
        }
        void on_message(const Message&, TileContext&) override {}

    private:
        TileId dst_;
    };
    class Sink final : public IpCore {
    public:
        void on_message(const Message&, TileContext&) override { hit_ = true; }
        bool hit() const { return hit_; }

    private:
        bool hit_{false};
    };
    std::size_t delivered = 0;
    const std::size_t trials = 40;
    for (std::uint64_t seed = 1000; seed < 1000 + trials; ++seed) {
        GossipConfig c;
        c.forward_p = 0.5;
        c.default_ttl = plan.recommended_ttl;
        GossipNetwork net(mesh, c, FaultScenario::none(), seed);
        auto sink = std::make_unique<Sink>();
        const Sink& s = *sink;
        net.attach(plan.worst_source, std::make_unique<Probe>(plan.worst_destination));
        net.attach(plan.worst_destination, std::move(sink));
        net.run_until([&s] { return s.hit(); }, plan.recommended_ttl + 2u);
        if (s.hit()) ++delivered;
    }
    // Allow sampling noise around the 0.9 target.
    EXPECT_GE(static_cast<double>(delivered) / trials, 0.8);
}

TEST(PlanTtl, HigherPNeedsSmallerTtl) {
    const auto mesh = Topology::mesh(4, 4);
    const auto lazy = plan_ttl(mesh, 0.35, 0.9, 2, 30);
    const auto eager = plan_ttl(mesh, 1.0, 0.9, 2, 30);
    EXPECT_LT(eager.recommended_ttl, lazy.recommended_ttl);
}

TEST(PlanTtl, FloodingIsExactlyDiameterish) {
    const auto mesh = Topology::mesh(4, 4);
    const auto plan = plan_ttl(mesh, 1.0, 0.99, 3, 20);
    // Flooding delivers deterministically once TTL >= diameter.
    EXPECT_LE(plan.recommended_ttl, 7u);
    EXPECT_DOUBLE_EQ(plan.achieved_delivery, 1.0);
}

TEST(PlanTtl, ValidatesArguments) {
    const auto mesh = Topology::mesh(2, 2);
    EXPECT_THROW(plan_ttl(mesh, 0.0, 0.9, 1), ContractViolation);
    EXPECT_THROW(plan_ttl(mesh, 0.5, 0.0, 1), ContractViolation);
    EXPECT_THROW(plan_ttl(mesh, 0.5, 0.9, 1, 0), ContractViolation);
}

} // namespace
} // namespace snoc
