#pragma once
// Mini vocabulary header in the real file's shape.  "Orphan" is listed
// but never emitted anywhere and never referenced by a test.
#define SNOC_TRACE_EVENT_KIND_LIST(X) \
    X(Used, "used")                   \
    X(Orphan, "orphan-kind")
enum class TraceEventKind {
#define SNOC_KIND(name, str) name,
    SNOC_TRACE_EVENT_KIND_LIST(SNOC_KIND)
#undef SNOC_KIND
};
