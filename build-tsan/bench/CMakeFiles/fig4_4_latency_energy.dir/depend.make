# Empty dependencies file for fig4_4_latency_energy.
# This may be replaced when dependencies are built.
