file(REMOVE_RECURSE
  "CMakeFiles/fig4_10_mp3_failures.dir/fig4_10_mp3_failures.cpp.o"
  "CMakeFiles/fig4_10_mp3_failures.dir/fig4_10_mp3_failures.cpp.o.d"
  "fig4_10_mp3_failures"
  "fig4_10_mp3_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_10_mp3_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
