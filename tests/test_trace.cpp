#include "sim/trace.hpp"

#include <memory>
#include <sstream>

#include <gtest/gtest.h>

#include "core/engine.hpp"

namespace snoc {
namespace {

class OneShot final : public IpCore {
public:
    explicit OneShot(TileId dst) : dst_(dst) {}
    void on_start(TileContext& ctx) override {
        ctx.send(dst_, 0xE1, {std::byte{1}});
    }
    void on_message(const Message&, TileContext&) override {}

private:
    TileId dst_;
};

class NullSink final : public IpCore {
public:
    void on_message(const Message&, TileContext&) override {}
};

TEST(TraceSinks, CountingSinkTallies) {
    CountingSink sink;
    sink.record({0, TraceEventKind::Transmitted, 1, 2, MessageId{1, 0}});
    sink.record({0, TraceEventKind::Transmitted, 1, 3, MessageId{1, 0}});
    sink.record({1, TraceEventKind::Delivered, 2, kNoTile, MessageId{1, 0}});
    EXPECT_EQ(sink.count(TraceEventKind::Transmitted), 2u);
    EXPECT_EQ(sink.count(TraceEventKind::Delivered), 1u);
    EXPECT_EQ(sink.count(TraceEventKind::CrcDrop), 0u);
    EXPECT_EQ(sink.total(), 3u);
}

TEST(TraceSinks, RingBufferKeepsNewest) {
    RingBufferSink sink(3);
    for (Round r = 0; r < 5; ++r)
        sink.record({r, TraceEventKind::Transmitted, 0, 1, MessageId{0, 0}});
    EXPECT_EQ(sink.events().size(), 3u);
    EXPECT_EQ(sink.dropped(), 2u);
    EXPECT_EQ(sink.events().front().round, 2u);
    EXPECT_EQ(sink.events().back().round, 4u);
}

TEST(TraceSinks, RingBufferRejectsZeroCapacity) {
    EXPECT_THROW(RingBufferSink(0), ContractViolation);
}

TEST(TraceSinks, FormatIsHumanReadable) {
    EXPECT_EQ(format_event({12, TraceEventKind::Transmitted, 5, 6, MessageId{5, 0}}),
              "r12 transmitted tile 5 -> 6 msg (5,0)");
    EXPECT_EQ(format_event({3, TraceEventKind::CrcDrop, 9, kNoTile,
                            MessageId{kNoTile, 0}}),
              "r3 crc-drop tile 9");
}

TEST(TraceSinks, StreamSinkWritesLines) {
    std::ostringstream os;
    StreamSink sink(os);
    sink.record({1, TraceEventKind::Delivered, 7, kNoTile, MessageId{2, 5}});
    EXPECT_EQ(os.str(), "r1 delivered tile 7 msg (2,5)\n");
}

TEST(TraceSinks, TeeFansOut) {
    CountingSink a, b;
    TeeSink tee;
    tee.add(&a);
    tee.add(&b);
    tee.record({0, TraceEventKind::Delivered, 0, kNoTile, MessageId{0, 0}});
    EXPECT_EQ(a.total(), 1u);
    EXPECT_EQ(b.total(), 1u);
    EXPECT_THROW(tee.add(nullptr), ContractViolation);
}

GossipConfig flood() {
    GossipConfig c;
    c.forward_p = 1.0;
    c.default_ttl = 10;
    return c;
}

TEST(EngineTracing, CountsMatchMetrics) {
    FaultScenario s;
    s.p_upset = 0.3;
    GossipNetwork net(Topology::mesh(4, 4), flood(), s, 1);
    CountingSink sink;
    net.set_trace_sink(&sink);
    net.attach(5, std::make_unique<OneShot>(11));
    for (int i = 0; i < 20; ++i) net.step();
    const auto& m = net.metrics();
    EXPECT_EQ(sink.count(TraceEventKind::Transmitted), m.packets_sent);
    EXPECT_EQ(sink.count(TraceEventKind::Delivered), m.deliveries);
    EXPECT_EQ(sink.count(TraceEventKind::CrcDrop), m.crc_drops);
    EXPECT_EQ(sink.count(TraceEventKind::DuplicateIgnored), m.duplicates_ignored);
    EXPECT_EQ(sink.count(TraceEventKind::TtlExpired), m.ttl_expired);
    EXPECT_EQ(sink.count(TraceEventKind::MessageCreated), m.messages_created);
}

TEST(EngineTracing, NoSinkMeansNoOverheadPath) {
    GossipNetwork net(Topology::mesh(4, 4), flood(), FaultScenario::none(), 2);
    net.attach(5, std::make_unique<OneShot>(11));
    for (int i = 0; i < 12; ++i) net.step(); // must simply not crash
    EXPECT_GT(net.metrics().packets_sent, 0u);
}

TEST(EngineTracing, TracingDoesNotPerturbTheRun) {
    auto run_packets = [](bool traced) {
        GossipNetwork net(Topology::mesh(4, 4), flood(), FaultScenario::none(), 3);
        CountingSink sink;
        if (traced) net.set_trace_sink(&sink);
        net.attach(5, std::make_unique<OneShot>(11));
        for (int i = 0; i < 15; ++i) net.step();
        return net.metrics().packets_sent;
    };
    EXPECT_EQ(run_packets(true), run_packets(false));
}

TEST(EngineTracing, DeliveryEventCarriesMessageId) {
    GossipNetwork net(Topology::mesh(4, 4), flood(), FaultScenario::none(), 4);
    RingBufferSink sink(4096);
    net.set_trace_sink(&sink);
    net.attach(5, std::make_unique<OneShot>(11));
    net.attach(11, std::make_unique<NullSink>());
    for (int i = 0; i < 10; ++i) net.step();
    bool saw_delivery = false;
    for (const auto& e : sink.events()) {
        if (e.kind != TraceEventKind::Delivered) continue;
        saw_delivery = true;
        EXPECT_EQ(e.tile, 11u);
        EXPECT_EQ(e.message, (MessageId{5, 0}));
    }
    EXPECT_TRUE(saw_delivery);
}

} // namespace
} // namespace snoc
