#include "sim/scenario.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <memory>
#include <optional>
#include <string>

#include "check/invariant_auditor.hpp"
#include "common/annotations.hpp"
#include "common/expect.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "telemetry/export.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/heartbeat.hpp"
#include "telemetry/manifest.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/telemetry.hpp"

namespace {

/// "out/run.jsonl" + (cell 2, repeat 0) -> "out/run_c2_r0.jsonl"; the
/// configured path is used verbatim when the sweep has a single trial.
std::string trial_path(const std::string& path, std::size_t cell,
                       std::size_t repeat, bool single_trial) {
    if (single_trial) return path;
    const std::string suffix =
        "_c" + std::to_string(cell) + "_r" + std::to_string(repeat);
    const auto slash = path.find_last_of('/');
    const auto dot = path.find_last_of('.');
    if (dot == std::string::npos || (slash != std::string::npos && dot < slash))
        return path + suffix;
    return path.substr(0, dot) + suffix + path.substr(dot);
}

} // namespace

namespace snoc {

double SweepPoint::value(std::string_view axis) const {
    for (const auto& c : coords)
        if (c.name == axis) return c.value;
    SNOC_EXPECT(false && "unknown sweep axis");
    return 0.0;
}

std::size_t SweepPoint::index_of(std::string_view axis) const {
    for (const auto& c : coords)
        if (c.name == axis) return c.index;
    SNOC_EXPECT(false && "unknown sweep axis");
    return 0;
}

std::string SweepPoint::label() const {
    std::string out;
    for (const auto& c : coords) {
        if (!out.empty()) out += ' ';
        out += c.name + '=' + format_number(c.value, 4);
    }
    return out;
}

CellStats aggregate(const std::vector<RunReport>& reports) {
    CellStats stats;
    if (reports.empty()) return stats;
    Accumulator rounds, seconds, transmissions, bits, deliveries, joules;
    std::size_t completed = 0;
    for (const RunReport& r : reports) {
        stats.attempts += r.attempts;
        stats.audit_violations += r.audit_violations;
        if (!r.completed) continue;
        ++completed;
        rounds.add(static_cast<double>(r.rounds));
        seconds.add(r.seconds);
        transmissions.add(static_cast<double>(r.transmissions));
        bits.add(static_cast<double>(r.bits));
        deliveries.add(static_cast<double>(r.deliveries));
        joules.add(r.joules);
    }
    stats.completion_rate =
        static_cast<double>(completed) / static_cast<double>(reports.size());
    if (completed > 0) {
        stats.rounds = rounds.mean();
        stats.seconds = seconds.mean();
        stats.transmissions = transmissions.mean();
        stats.bits = bits.mean();
        stats.deliveries = deliveries.mean();
        stats.joules = joules.mean();
    }
    return stats;
}

ScenarioRunner::ScenarioRunner(ExperimentSpec spec) : spec_(std::move(spec)) {
    SNOC_EXPECT(spec_.max_attempts >= 1);
    const bool has_trial = static_cast<bool>(spec_.trial);
    const bool has_traced = static_cast<bool>(spec_.traced_trial);
    const bool has_backend =
        static_cast<bool>(spec_.backend) && static_cast<bool>(spec_.trace);
    SNOC_EXPECT((has_trial + has_traced + has_backend) == 1 &&
                "set exactly one of trial, traced_trial or backend+trace");
    // A plain `trial` body has no way to receive the recorder (or the
    // flight recorder a post-mortem bundle drains), so asking for either
    // there is a spec bug, not a silent no-op.
    SNOC_EXPECT((!spec_.telemetry.observes_trials() || !has_trial) &&
                "telemetry exports and post-mortem bundles need the "
                "traced_trial or backend flavour");
    for (const auto& axis : spec_.axes) SNOC_EXPECT(!axis.values.empty());
}

std::vector<SweepPoint> ScenarioRunner::cells() const {
    std::size_t n = 1;
    for (const auto& axis : spec_.axes) n *= axis.values.size();
    std::vector<SweepPoint> points;
    points.reserve(n);
    for (std::size_t cell = 0; cell < n; ++cell) {
        SweepPoint p;
        p.coords.resize(spec_.axes.size());
        // Row-major: the first axis varies slowest.
        std::size_t rem = cell;
        for (std::size_t a = spec_.axes.size(); a-- > 0;) {
            const auto& axis = spec_.axes[a];
            const std::size_t i = rem % axis.values.size();
            rem /= axis.values.size();
            p.coords[a] = {axis.name, i, axis.values[i]};
        }
        points.push_back(std::move(p));
    }
    return points;
}

RunReport ScenarioRunner::run_trial(const SweepPoint& point, std::size_t cell,
                                    std::size_t repeat,
                                    bool single_trial) const {
    const std::uint64_t seed0 =
        spec_.base_seed + static_cast<std::uint64_t>(repeat);
    const bool record = spec_.telemetry.enabled();
    const bool postmortem = !spec_.telemetry.postmortem_out.empty();
    auto& registry = MetricsRegistry::global();
    registry.inc(MetricId::ActiveTrials);
    // The gauge must come back down on the exception path too (a
    // violation aborting a trial propagates out of this frame).
    struct ActiveGuard {
        MetricsRegistry& reg;
        ~ActiveGuard() { reg.dec(MetricId::ActiveTrials); }
    } active_guard{registry};

    RunReport report;
    Telemetry telemetry;
    // Always-on flight recorder: O(1) ring writes, so arming it is cheap
    // enough for production sweeps (BM_GossipRoundRecorded guards the
    // overhead).  Sized 1 when post-mortems are off — never recorded into.
    FlightRecorder recorder(postmortem ? spec_.telemetry.flight_capacity : 1);
    std::string backend_name = "custom";
    for (std::size_t attempt = 0; attempt < spec_.max_attempts; ++attempt) {
        const std::uint64_t seed =
            seed0 + static_cast<std::uint64_t>(attempt) * spec_.retry_seed_stride;
        // A retried attempt starts from a clean recording: artifacts
        // describe the attempt that produced the reported run, not the
        // concatenation of every failed try.
        telemetry.clear();
        recorder.clear();
        if (spec_.trial) {
            report = spec_.trial(point, seed);
        } else {
            // Construct the backend first (its name belongs in the
            // bundle header), then arm the post-mortem hook for exactly
            // the scope where detectors can fire: the run itself.
            std::unique_ptr<Interconnect> backend;
            if (spec_.backend) {
                backend = spec_.backend(point, seed);
                SNOC_ENSURE(backend != nullptr);
                backend_name = backend->name();
            }
            std::optional<PostmortemDumper> dumper;
            if (postmortem) {
                PostmortemInfo info;
                info.experiment = point.label().empty() ? spec_.name
                                                        : point.label();
                info.backend = backend_name;
                info.seed = seed;
                dumper.emplace(trial_path(spec_.telemetry.postmortem_out,
                                          cell, repeat, single_trial),
                               &recorder, std::move(info));
                if (backend) dumper->set_live_metrics(backend->live_metrics());
            }
            TeeSink tee;
            if (record) tee.add(&telemetry);
            if (postmortem) tee.add(&recorder);
            TraceSink* sink =
                (record || postmortem) ? static_cast<TraceSink*>(&tee) : nullptr;
            if (spec_.traced_trial) {
                report = spec_.traced_trial(point, seed, sink);
            } else {
                // Per-trial auditor: trials run in parallel, so the auditor
                // must be private to this trial; its violation count lands in
                // report.audit_violations (stamped by the adapter).
                check::InvariantAuditor auditor;
                if (spec_.audit) backend->set_auditor(&auditor);
                if (sink) backend->set_trace_sink(sink);
                report = backend->run(spec_.trace(point), spec_.max_rounds);
                // The backend dies with this scope; a detector firing
                // later in the attempt must not chase its counters.
                if (dumper) dumper->set_live_metrics(nullptr);
            }
        }
        report.seed = seed;
        report.attempts = attempt + 1;
        if (report.completed) break;
    }

    registry.inc(MetricId::TrialsTotal);
    if (report.attempts > 1)
        registry.inc(MetricId::TrialRetriesTotal, report.attempts - 1);
    registry.observe(MetricId::TrialRounds, report.rounds);
    registry.observe(MetricId::TrialDeliveries, report.deliveries);
    if (postmortem)
        registry.inc(MetricId::FlightEventsOverwrittenTotal, recorder.dropped());
    if (!record) return report;

    const auto& totals = telemetry.totals();
    report.trace_counts.assign(totals.begin(), totals.end());

    const auto& t = spec_.telemetry;
    std::vector<std::string> artifacts;
    if (!t.trace_jsonl_out.empty()) {
        const auto path = trial_path(t.trace_jsonl_out, cell, repeat, single_trial);
        write_jsonl(telemetry, path);
        artifacts.push_back(path);
    }
    if (!t.chrome_out.empty()) {
        const auto path = trial_path(t.chrome_out, cell, repeat, single_trial);
        write_chrome_trace(telemetry, path);
        artifacts.push_back(path);
    }
    if (!t.heatmap_out.empty()) {
        const auto path = trial_path(t.heatmap_out, cell, repeat, single_trial);
        write_heatmap_csv(telemetry, path, t.grid_width);
        artifacts.push_back(path);
        const auto links = path + ".links.csv";
        write_link_csv(telemetry, links);
        artifacts.push_back(links);
    }
    if (t.manifest && !artifacts.empty()) {
        RunManifest manifest;
        manifest.program = spec_.name;
        manifest.experiment = point.label().empty() ? spec_.name : point.label();
        manifest.backend = backend_name;
        manifest.base_seed = report.seed;
        manifest.repeats = spec_.repeats;
        manifest.jobs = spec_.jobs;
        for (const auto& c : point.coords)
            manifest.config.emplace_back(c.name, format_number(c.value, 6));
        manifest.config.emplace_back("cell", std::to_string(cell));
        manifest.config.emplace_back("repeat", std::to_string(repeat));
        manifest.config.emplace_back("max_rounds",
                                     std::to_string(spec_.max_rounds));
        manifest.config.emplace_back("max_attempts",
                                     std::to_string(spec_.max_attempts));
        manifest.config.emplace_back("engine", to_string(spec_.engine.kind));
        if (spec_.engine.kind == EngineKind::Event)
            manifest.config.emplace_back("shards",
                                         std::to_string(spec_.engine.shards));
        if (!t.prof_out_ref.empty())
            manifest.config.emplace_back("prof_out", t.prof_out_ref);
        manifest.artifacts = artifacts;
        write_manifest(manifest, manifest_path_for(artifacts.front()));
    }
    return report;
}

std::vector<CellResult> ScenarioRunner::run() {
    const auto points = cells();
    const std::size_t n_trials = points.size() * spec_.repeats;
    auto& registry = MetricsRegistry::global();
    registry.set(MetricId::LastSweepCells, points.size());

    std::optional<HeartbeatWriter> heartbeat;
    if (!spec_.telemetry.heartbeat_out.empty())
        heartbeat.emplace(spec_.telemetry.heartbeat_out,
                          spec_.telemetry.heartbeat_every);

    // Shared progress ledger the workers bump after each trial.  The
    // wall-clock readings here feed heartbeats only (observability, not
    // results — see the determinism allowlist); trial execution is
    // entirely independent of them.
    struct Progress {
        Mutex mutex;
        std::size_t trials_done SNOC_GUARDED_BY(mutex){0};
        std::size_t cells_done SNOC_GUARDED_BY(mutex){0};
        std::size_t retries SNOC_GUARDED_BY(mutex){0};
        std::vector<std::size_t> cell_remaining SNOC_GUARDED_BY(mutex);
        std::vector<std::chrono::steady_clock::time_point> cell_start
            SNOC_GUARDED_BY(mutex);
        std::vector<bool> cell_started SNOC_GUARDED_BY(mutex);
    } progress;
    const bool watching = heartbeat.has_value() || progress_ != nullptr;
    if (watching) {
        LockGuard lock(progress.mutex);
        progress.cell_remaining.assign(points.size(), spec_.repeats);
        progress.cell_start.resize(points.size());
        progress.cell_started.assign(points.size(), false);
    }
    const auto notify = [&](const ProgressUpdate& update) {
        if (heartbeat) heartbeat->update(update);
        if (progress_) progress_->update(update);
    };

    // Flatten (cell, repeat) onto the trial index so the whole sweep
    // shares one fan-out; results land in deterministic slots.
    const bool single_trial = n_trials == 1;
    const auto reports = run_trials(
        n_trials,
        [&](std::uint64_t i) {
            const std::size_t cell = static_cast<std::size_t>(i) / spec_.repeats;
            const std::size_t repeat = static_cast<std::size_t>(i) % spec_.repeats;
            if (watching) {
                LockGuard lock(progress.mutex);
                if (!progress.cell_started[cell]) {
                    progress.cell_started[cell] = true;
                    progress.cell_start[cell] = std::chrono::steady_clock::now();
                }
            }
            RunReport report = run_trial(points[cell], cell, repeat, single_trial);
            if (watching) {
                LockGuard lock(progress.mutex);
                ++progress.trials_done;
                progress.retries += report.attempts - 1;
                ProgressUpdate update;
                update.experiment = spec_.name;
                update.cells_total = points.size();
                update.trials_total = n_trials;
                update.trials_done = progress.trials_done;
                update.retries = progress.retries;
                if (--progress.cell_remaining[cell] == 0) {
                    ++progress.cells_done;
                    update.cell_seconds =
                        std::chrono::duration<double>(
                            std::chrono::steady_clock::now() -
                            progress.cell_start[cell])
                            .count();
                }
                update.cells_done = progress.cells_done;
                notify(update);
            }
            return report;
        },
        spec_.jobs);

    std::vector<CellResult> results;
    results.reserve(points.size());
    for (std::size_t c = 0; c < points.size(); ++c) {
        CellResult cell;
        cell.point = points[c];
        cell.reports.assign(reports.begin() + static_cast<std::ptrdiff_t>(c * spec_.repeats),
                            reports.begin() +
                                static_cast<std::ptrdiff_t>((c + 1) * spec_.repeats));
        cell.stats = aggregate(cell.reports);
        results.push_back(std::move(cell));
    }

    registry.inc(MetricId::CellsTotal, points.size());
    registry.inc(MetricId::SweepsTotal);
    if (watching) {
        ProgressUpdate update;
        update.experiment = spec_.name;
        update.cells_total = points.size();
        update.cells_done = points.size();
        update.trials_total = n_trials;
        update.trials_done = n_trials;
        LockGuard lock(progress.mutex);
        update.retries = progress.retries;
        update.sweep_done = true;
        notify(update);
    }
    if (!spec_.telemetry.metrics_out.empty()) {
        registry.write_json(spec_.telemetry.metrics_out);
        registry.write_prometheus(spec_.telemetry.metrics_out + ".prom");
    }
    return results;
}

Table ScenarioRunner::summary_table(const std::vector<CellResult>& cells) {
    std::vector<std::string> headers;
    if (!cells.empty())
        for (const auto& c : cells.front().point.coords) headers.push_back(c.name);
    for (const char* h : {"completion [%]", "rounds", "latency [s]",
                          "transmissions", "bits", "energy [J]", "attempts"})
        headers.emplace_back(h);
    Table table(headers);
    for (const auto& cell : cells) {
        std::vector<std::string> row;
        for (const auto& c : cell.point.coords)
            row.push_back(format_number(c.value, 4));
        const CellStats& s = cell.stats;
        row.push_back(format_number(100.0 * s.completion_rate, 1));
        row.push_back(format_number(s.rounds, 1));
        row.push_back(format_sci(s.seconds, 2));
        row.push_back(format_number(s.transmissions, 0));
        row.push_back(format_number(s.bits, 0));
        row.push_back(format_sci(s.joules, 2));
        row.push_back(std::to_string(s.attempts));
        table.add_row(row);
    }
    return table;
}

Table ScenarioRunner::telemetry_table(const std::vector<CellResult>& cells) {
    std::vector<std::string> headers;
    if (!cells.empty())
        for (const auto& c : cells.front().point.coords) headers.push_back(c.name);
    for (std::size_t k = 0; k < kTraceEventKinds; ++k)
        headers.emplace_back(kTraceEventKindNames[k]);
    Table table(headers);
    for (const auto& cell : cells) {
        std::vector<std::string> row;
        for (const auto& c : cell.point.coords)
            row.push_back(format_number(c.value, 4));
        std::array<std::size_t, kTraceEventKinds> sums{};
        for (const RunReport& r : cell.reports)
            for (std::size_t k = 0; k < r.trace_counts.size() && k < sums.size(); ++k)
                sums[k] += r.trace_counts[k];
        for (const std::size_t s : sums) row.push_back(std::to_string(s));
        table.add_row(row);
    }
    return table;
}

} // namespace snoc
