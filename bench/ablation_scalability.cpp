// Ablation (ours): scalability in mesh size.  The thesis simulates 16-25
// tiles and argues "gossip algorithms are known to scale extremely well
// even beyond these dimensions" — this bench measures it: rounds for a
// full broadcast vs. mesh side (expected ~ diameter + O(log n) at fixed
// p), packets per tile (expected ~ flat: each tile relays a bounded
// number of copies per rumor), against Pittel's fully-connected bound.
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "core/analytic.hpp"
#include "core/tuning.hpp"

namespace {

class CornerSource final : public snoc::IpCore {
public:
    void on_start(snoc::TileContext& ctx) override {
        ctx.send(snoc::kBroadcast, 0xB1, {std::byte{7}});
    }
    void on_message(const snoc::Message&, snoc::TileContext&) override {}
};

} // namespace

int main(int argc, char** argv) {
    using namespace snoc;
    const auto opt = bench::options(argc, argv, 10);
    constexpr double kP = 0.5;

    struct Trial {
        bool completed{false};
        double rounds{0.0}, packets{0.0};
    };

    Table table({"mesh", "tiles", "rounds to reach all", "diameter/p + slack",
                 "Pittel (full graph)", "packets/tile"});
    for (std::size_t side : {4u, 6u, 8u, 10u, 12u, 16u}) {
        const auto topo = Topology::mesh(side, side);
        const std::size_t n = topo.node_count();
        const std::size_t diameter = 2 * (side - 1);
        const auto trials = run_trials(
            opt.repeats,
            [&](std::uint64_t seed) {
                GossipConfig c = bench::config_with_p(kP, 512);
                GossipNetwork net(topo, c, FaultScenario::none(), seed);
                net.attach(0, std::make_unique<CornerSource>());
                const MessageId rumor{0, 0};
                const auto r = net.run_until(
                    [&net, &rumor, n]() mutable { return net.tiles_knowing(rumor) == n; },
                    2000);
                Trial out;
                if (!r.completed) return out;
                out.completed = true;
                out.rounds = static_cast<double>(r.rounds);
                out.packets = static_cast<double>(net.metrics().packets_sent) /
                              static_cast<double>(n) /
                              static_cast<double>(r.rounds);
                return out;
            },
            opt.jobs);
        Accumulator rounds, packets;
        for (const Trial& t : trials) {
            if (!t.completed) continue;
            rounds.add(t.rounds);
            packets.add(t.packets);
        }
        table.add_row({std::to_string(side) + "x" + std::to_string(side),
                       std::to_string(n), format_number(rounds.mean(), 1),
                       std::to_string(estimate_ttl(diameter, kP)),
                       format_number(analytic::pittel_rounds(n), 1),
                       format_number(packets.mean(), 2)});
    }
    bench::emit(table, opt,
                "Ablation: broadcast scalability vs mesh size (p=0.5)");
    std::cout << "\nReading: rounds grow with the diameter (linear in the\n"
                 "side), per-tile per-round traffic stays flat - the locality\n"
                 "property that makes gossip viable at hundreds of IPs.\n";
    return 0;
}
