#include "apps/sensors.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace snoc::apps {
namespace {

GossipConfig default_config() {
    GossipConfig c;
    c.forward_p = 0.75;
    c.default_ttl = 12;
    return c;
}

TEST(FieldModel, DeterministicGradientAndDrift) {
    EXPECT_DOUBLE_EQ(field_temperature(0, 0, 0), 55.0);
    EXPECT_GT(field_temperature(0, 0, 0), field_temperature(4, 4, 0));
    // Drift is periodic with period 64 rounds.
    EXPECT_NEAR(field_temperature(2, 2, 10), field_temperature(2, 2, 74), 1e-12);
}

TEST(Sensors, FaultFreeFullCoverage) {
    GossipNetwork net(Topology::mesh(5, 5), default_config(), FaultScenario::none(), 1);
    const auto sn = deploy_sensors(net);
    for (int i = 0; i < 40; ++i) net.step();
    EXPECT_EQ(sn.collector->sensors_heard(), 24u);
    EXPECT_DOUBLE_EQ(sn.collector->coverage(sn.sensor_tiles, net.round(), 12), 1.0);
    // Staleness is bounded by sampling period + a few delivery rounds.
    EXPECT_LE(sn.collector->mean_staleness(sn.sensor_tiles, net.round()), 10.0);
}

TEST(Sensors, CollectedValuesTrackGroundTruth) {
    GossipNetwork net(Topology::mesh(5, 5), default_config(), FaultScenario::none(), 2);
    const auto sn = deploy_sensors(net);
    for (int i = 0; i < 40; ++i) net.step();
    for (TileId t : sn.sensor_tiles) {
        const auto& state = sn.collector->state_of(t);
        ASSERT_TRUE(state.has_value()) << "sensor " << t;
        const double truth =
            field_temperature(t % 5, t / 5, state->sampled_round);
        EXPECT_NEAR(state->value, truth, 0.5) << "sensor " << t;
    }
}

TEST(Sensors, FreshestReadingWinsOverStragglers) {
    // Readings can arrive out of order via different gossip paths; the
    // collector must keep the newest sample per sensor.
    GossipNetwork net(Topology::mesh(5, 5), default_config(), FaultScenario::none(), 3);
    const auto sn = deploy_sensors(net);
    for (int i = 0; i < 60; ++i) net.step();
    for (TileId t : sn.sensor_tiles) {
        const auto& state = sn.collector->state_of(t);
        ASSERT_TRUE(state.has_value());
        EXPECT_GE(state->received_round, state->sampled_round);
        // At round 60 with period 4, the freshest sample is recent.
        EXPECT_GE(state->sampled_round, 40u);
    }
}

TEST(Sensors, ToleratesHeavyOverflowLoss) {
    // "Non-critical sensors": losing half the packets only ages the data.
    FaultScenario s;
    s.p_overflow = 0.5;
    GossipNetwork net(Topology::mesh(5, 5), default_config(), s, 4);
    const auto sn = deploy_sensors(net);
    for (int i = 0; i < 60; ++i) net.step();
    EXPECT_GE(sn.collector->coverage(sn.sensor_tiles, net.round(), 16), 0.9);
}

TEST(Sensors, CrashedSensorGoesStale) {
    GossipNetwork net(Topology::mesh(5, 5), default_config(), FaultScenario::none(), 5);
    const auto sn = deploy_sensors(net);
    for (TileId t = 0; t < 25; ++t)
        if (t != 3) net.protect(t);
    net.force_exact_tile_crashes(1); // tile 3 dies before round 0
    for (int i = 0; i < 40; ++i) net.step();
    EXPECT_FALSE(sn.collector->state_of(3).has_value());
    // Everyone else still covered.
    std::vector<TileId> alive_sensors;
    for (TileId t : sn.sensor_tiles)
        if (t != 3) alive_sensors.push_back(t);
    EXPECT_DOUBLE_EQ(sn.collector->coverage(alive_sensors, net.round(), 12), 1.0);
}

TEST(Sensors, PeriodControlsTrafficVolume) {
    auto packets_with_period = [](Round period) {
        GossipNetwork net(Topology::mesh(5, 5), default_config(),
                          FaultScenario::none(), 6);
        SensorDeployment d;
        d.sensor.period = period;
        deploy_sensors(net, d);
        for (int i = 0; i < 41; ++i) net.step();
        return net.metrics().packets_sent;
    };
    EXPECT_GT(packets_with_period(2), 2 * packets_with_period(8));
}

} // namespace
} // namespace snoc::apps
