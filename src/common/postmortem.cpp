#include "common/postmortem.hpp"

#include <utility>

namespace snoc::postmortem {

namespace {

// Thread-local on purpose (see the header): concurrent trials each own a
// recorder, and a violation on one ThreadPool worker must dump that
// trial's evidence only.
thread_local Handler t_handler;
thread_local bool t_running = false;

} // namespace

ScopedHandler::ScopedHandler(Handler handler)
    : previous_(std::move(t_handler)) {
    t_handler = std::move(handler);
}

ScopedHandler::~ScopedHandler() { t_handler = std::move(previous_); }

bool armed() { return static_cast<bool>(t_handler) && !t_running; }

void notify(const char* reason, const std::string& detail) {
    if (!armed()) return;
    // Disarm while the handler runs: a contract failure inside the dump
    // must not recurse into another dump.
    t_running = true;
    try {
        t_handler(Context{reason, detail});
    } catch (...) {
        // A post-mortem dump is best-effort evidence preservation; a
        // failing dump must never mask the original violation.
    }
    t_running = false;
}

} // namespace snoc::postmortem
