# Empty dependencies file for test_producer_consumer.
# This may be replaced when dependencies are built.
