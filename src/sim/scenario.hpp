// Declarative experiment execution over the unified Interconnect layer.
//
// Every paper figure and every ablation is the same shape: a cartesian
// sweep over a few parameter axes (forward_p, TTL, defect count, p_upset,
// ...), a Monte-Carlo repeat per sweep cell, sometimes a retry when a
// TTL-tuned run dies before completing, and a table at the end.  The
// benches used to re-implement that loop by hand, each slightly
// differently (one of them could even retry forever).  ExperimentSpec
// describes the experiment; ScenarioRunner executes it through the
// shared ThreadPool (common/parallel.hpp) with deterministic per-trial
// seeding — results are bit-identical for any --jobs value — and returns
// per-cell RunReports plus aggregate stats ready for Table emission.
//
// Seeding contract (matches the hand-rolled loops it replaced, so table
// output is reproducible against old runs):
//   * repeat r of any cell starts from seed  base_seed + r;
//   * retry attempt a re-derives            seed + a * retry_seed_stride,
//     capped at max_attempts (the fix for the fig4_6 unbounded loop).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/interconnect.hpp"
#include "noc/traffic.hpp"
#include "sim/trace.hpp"

namespace snoc {

/// One sweep dimension: a named list of values (TTLs and defect counts
/// ride along as doubles; SweepPoint::index_of recovers list positions
/// for non-numeric axes such as architecture kinds).
struct SweepAxis {
    std::string name;
    std::vector<double> values;
};

/// The coordinates of one sweep cell — self-contained (owns its values),
/// so CellResults stay valid after the runner is gone.
struct SweepPoint {
    struct Coord {
        std::string name;
        std::size_t index{0}; ///< position in the axis' value list.
        double value{0.0};
    };
    std::vector<Coord> coords;

    /// Value of the named axis; ContractViolation if absent.
    double value(std::string_view axis) const;
    /// Index of the named axis' value in its list; ContractViolation if absent.
    std::size_t index_of(std::string_view axis) const;
    /// "p=0.5 crashes=2" — for captions and error messages.
    std::string label() const;
};

/// Aggregates over one cell's repeats.  Matching the bench convention
/// (and the old bench_util::average_of): runs that did not complete count
/// only against the completion rate; means are over completed runs.
struct CellStats {
    double completion_rate{0.0};
    double rounds{0.0};
    double seconds{0.0};
    double transmissions{0.0};
    double bits{0.0};
    double deliveries{0.0};
    double joules{0.0};
    std::size_t attempts{0}; ///< total attempts spent across all repeats.
    /// Invariant violations recorded by per-trial auditors, summed over
    /// every repeat (completed or not).  Stays 0 unless spec.audit is set.
    std::size_t audit_violations{0};
};

CellStats aggregate(const std::vector<RunReport>& reports);

struct CellResult {
    SweepPoint point;
    std::vector<RunReport> reports; ///< one per repeat, in repeat order.
    CellStats stats;
};

/// A declarative experiment: backend kind + sweep axes + repeat/seed/retry
/// policy.  Exactly one of `trial` (arbitrary per-seed measurement, e.g.
/// an app deployment) or `backend` + `trace` (declarative Interconnect
/// run) must be set.
struct ExperimentSpec {
    std::string name;

    std::vector<SweepAxis> axes; ///< cartesian product; empty = 1 cell.
    std::size_t repeats{1};
    std::uint64_t base_seed{0};
    Round max_rounds{3000};

    /// Retry-on-incomplete policy: an incomplete run is re-tried with a
    /// re-derived seed up to max_attempts times in total.  The default
    /// (1) disables retries; there is deliberately no "retry forever".
    std::size_t max_attempts{1};
    std::uint64_t retry_seed_stride{100};

    std::size_t jobs{0}; ///< trial fan-out workers; 0 = default_jobs().

    /// Round executor for gossip-backed trials (--engine).  The runner
    /// never builds networks itself — trial/backend lambdas must honour
    /// this when constructing their GossipSpec/GossipNetwork — but
    /// carrying it in the spec gives every bench one uniform plumbing
    /// path and stamps the choice into run manifests.
    EngineSelect engine{};

    /// Attach a fresh InvariantAuditor to every backend-flavour trial
    /// (each trial owns its own auditor, so parallel trials never share
    /// one) and report violation counts through
    /// RunReport::audit_violations / CellStats::audit_violations.  No-op
    /// for the `trial` flavour, which owns its backend construction.
    bool audit{false};

    /// Telemetry exports (see common/cli.hpp).  When any destination is
    /// set, every trial runs with a private Telemetry recorder attached
    /// (backend flavour: via set_trace_sink; traced_trial flavour: as the
    /// sink argument), its per-kind totals land in
    /// RunReport::trace_counts, and each trial's recording is exported
    /// under a per-trial name — the exact configured path for a single
    /// (cell, repeat), with a `_c<cell>_r<repeat>` suffix once the sweep
    /// has more than one trial.  --manifest adds one run manifest per
    /// trial next to its artifacts.  Plain-`trial` specs cannot attach a
    /// sink and assert that telemetry stays off.
    TelemetryOptions telemetry;

    /// Arbitrary trial body: must derive all randomness from `seed`.
    std::function<RunReport(const SweepPoint&, std::uint64_t seed)> trial;

    /// Like `trial`, but observable: the runner's Telemetry recorder (or
    /// nullptr when telemetry is off) is handed in for the trial to attach
    /// wherever its engine lives.
    std::function<RunReport(const SweepPoint&, std::uint64_t seed,
                            TraceSink* sink)>
        traced_trial;

    /// Declarative flavour: build a fresh backend per trial, run `trace`.
    std::function<std::unique_ptr<Interconnect>(const SweepPoint&,
                                                std::uint64_t seed)>
        backend;
    std::function<TrafficTrace(const SweepPoint&)> trace;
};

class ProgressSink;

class ScenarioRunner {
public:
    explicit ScenarioRunner(ExperimentSpec spec);

    const ExperimentSpec& spec() const { return spec_; }

    /// The sweep cells in row-major order (first axis slowest).
    std::vector<SweepPoint> cells() const;

    /// Watch the sweep make progress (telemetry/heartbeat.hpp): called
    /// once per completed trial with cumulative counts, once more per
    /// completed cell and at sweep end.  Pure observer — attaching one
    /// never changes results.  Not owned; must outlive run(); nullptr
    /// detaches.  Runs with --heartbeat-out additionally stream through
    /// an internal HeartbeatWriter; both sinks see every update.
    void set_progress_sink(ProgressSink* sink) { progress_ = sink; }

    /// Execute every (cell, repeat) trial across the thread pool and
    /// aggregate.  Deterministic: identical results for any jobs value.
    std::vector<CellResult> run();

    /// Generic one-row-per-cell emission: axis columns + the standard
    /// RunReport aggregates.  Figure benches with bespoke pivots build
    /// their tables from the CellResults directly.
    static Table summary_table(const std::vector<CellResult>& cells);

    /// Cross-trial event aggregation: one row per cell, one column per
    /// TraceEventKind, values summed over the cell's repeats.  Requires
    /// the sweep to have run with telemetry attached (trace_counts
    /// stamped); rows without recordings are all zero.
    static Table telemetry_table(const std::vector<CellResult>& cells);

private:
    RunReport run_trial(const SweepPoint& point, std::size_t cell,
                        std::size_t repeat, bool single_trial) const;

    ExperimentSpec spec_;
    ProgressSink* progress_{nullptr};
};

} // namespace snoc
