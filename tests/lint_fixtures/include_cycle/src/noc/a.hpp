#pragma once
#include "noc/b.hpp"
namespace snoc { struct A {}; }
