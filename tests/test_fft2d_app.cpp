#include "apps/fft2d_app.hpp"

#include <gtest/gtest.h>

namespace snoc::apps {
namespace {

GossipConfig default_config() {
    GossipConfig c;
    c.forward_p = 0.5;
    c.default_ttl = 30;
    return c;
}

TEST(ImagePayload, Roundtrip) {
    const auto img = make_test_image(8, 1);
    const auto payload = encode_image_payload(3, img);
    auto [task, decoded] = decode_image_payload(payload);
    EXPECT_EQ(task, 3u);
    ASSERT_EQ(decoded.width, img.width);
    ASSERT_EQ(decoded.height, img.height);
    // float32 quantisation: within 1e-6 relative.
    EXPECT_LT(max_abs_diff(decoded, img), 1e-5);
}

TEST(TestImage, DeterministicAndSeedSensitive) {
    const auto a = make_test_image(16, 1);
    const auto b = make_test_image(16, 1);
    const auto c = make_test_image(16, 2);
    EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 0.0);
    EXPECT_GT(max_abs_diff(a, c), 0.0);
}

TEST(Fft2dNoc, FaultFreeRunComputesSpectrum) {
    GossipNetwork net(Topology::mesh(4, 4), default_config(), FaultScenario::none(), 1);
    FftDeployment d;
    auto& root = deploy_fft2d(net, d, /*image_seed=*/5);
    const auto result = net.run_until([&root] { return root.done(); }, 300);
    ASSERT_TRUE(result.completed);
    // The distributed answer must equal the sequential oracle up to the
    // float32 payload quantisation.
    const auto oracle = fft2d(make_test_image(d.image_size, 5));
    EXPECT_LT(max_abs_diff(root.spectrum(), oracle), 1e-3);
    // Fig. 4-4: FFT2 completes in 5-8 rounds at p = 0.5.
    EXPECT_LE(*root.completion_round(), 14u);
}

TEST(Fft2dNoc, FloodingIsFaster) {
    GossipConfig flood = default_config();
    flood.forward_p = 1.0;
    GossipNetwork fast(Topology::mesh(4, 4), flood, FaultScenario::none(), 2);
    auto& root_fast = deploy_fft2d(fast, FftDeployment{}, 5);
    fast.run_until([&root_fast] { return root_fast.done(); }, 300);

    GossipConfig slow = default_config();
    slow.forward_p = 0.25;
    slow.default_ttl = 60;
    GossipNetwork lazy(Topology::mesh(4, 4), slow, FaultScenario::none(), 2);
    auto& root_lazy = deploy_fft2d(lazy, FftDeployment{}, 5);
    lazy.run_until([&root_lazy] { return root_lazy.done(); }, 1000);

    ASSERT_TRUE(root_fast.done());
    ASSERT_TRUE(root_lazy.done());
    EXPECT_LE(*root_fast.completion_round(), *root_lazy.completion_round());
}

TEST(Fft2dNoc, SurvivesUpsets) {
    FaultScenario s;
    s.p_upset = 0.4;
    GossipConfig c = default_config();
    c.default_ttl = 60;
    GossipNetwork net(Topology::mesh(4, 4), c, s, 3);
    FftDeployment d;
    auto& root = deploy_fft2d(net, d, 7);
    const auto result = net.run_until([&root] { return root.done(); }, 2000);
    ASSERT_TRUE(result.completed);
    const auto oracle = fft2d(make_test_image(d.image_size, 7));
    EXPECT_LT(max_abs_diff(root.spectrum(), oracle), 1e-3);
}

TEST(Fft2dNoc, DuplicatedWorkersSurviveWorkerCrash) {
    GossipNetwork net(Topology::mesh(4, 4), default_config(), FaultScenario::none(), 4);
    FftDeployment d;
    d.duplicate_workers = true;
    auto& root = deploy_fft2d(net, d, 9);
    for (TileId t = 0; t < 16; ++t)
        if (t != d.worker_tiles[0]) net.protect(t);
    net.force_exact_tile_crashes(1);
    const auto result = net.run_until([&root] { return root.done(); }, 500);
    EXPECT_TRUE(result.completed);
    EXPECT_FALSE(net.tile_alive(d.worker_tiles[0]));
}

TEST(Fft2dTrace, ShapeMatchesDeployment) {
    FftDeployment d;
    const auto trace = fft2d_trace(d);
    ASSERT_EQ(trace.phases.size(), 2u);
    EXPECT_EQ(trace.phases[0].messages.size(), 4u);
    EXPECT_EQ(trace.phases[1].messages.size(), 4u);
    // 8x8 quadrants of float32 pairs + 12-byte header.
    EXPECT_EQ(trace.phases[0].messages[0].bits, (12 + 64 * 8) * 8);
}

} // namespace
} // namespace snoc::apps
