// Decoder for the Mp3-style bitstream the pipeline's Output stage emits —
// the proof that the encoder's output is real coded audio, not just
// counted bits: unpack the entropy-coded lines, dequantise with the
// transmitted global gain and band scale factors, IMDCT, and overlap-add
// back to PCM.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace snoc::apps {

struct DecodedFrame {
    std::uint32_t frame_index{0};
    std::vector<double> lines; ///< dequantised MDCT lines.
};

/// Parse one kStreamTag chunk ([frame u32][marker u8][coded payload]).
/// Returns nullopt for skip markers or malformed chunks.
std::optional<DecodedFrame> decode_stream_chunk(std::span<const std::byte> chunk);

/// Decode a whole stream back to PCM.  `frame_samples` must match the
/// encoder's Mp3Config::frame_samples; missing (skipped) frames come back
/// as silence.  The output covers samples [0, frame_count * n) with the
/// encoder's lapped-window convention (the first hop ramps in from the
/// zero history, and the last hop lacks its successor's overlap half).
std::vector<double> decode_stream_to_pcm(
    const std::vector<std::vector<std::byte>>& chunks, std::size_t frame_samples,
    std::size_t frame_count);

/// Signal-to-noise ratio (dB) of `decoded` against `reference` over
/// [first, last).  Returns +inf-ish (300 dB cap) for a perfect match.
double snr_db(const std::vector<double>& reference, const std::vector<double>& decoded,
              std::size_t first, std::size_t last);

} // namespace snoc::apps
