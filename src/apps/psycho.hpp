// Psychoacoustic model (the Psychoacoustic Model stage of Fig. 4-7a).
//
// A deliberately simple but functional model: the PCM frame's spectrum is
// split into `band_count` bands; each band's masking threshold combines
// (a) self-masking at -18 dB below the band energy, (b) spreading from
// neighbouring bands at an additional -12 dB per band of distance, and
// (c) an absolute threshold floor.  The encoder quantises so that the
// quantisation noise stays near the threshold — more bits where the
// threshold is low relative to the energy (high SMR).
#pragma once

#include <cstddef>
#include <vector>

namespace snoc::apps {

struct PsychoParams {
    std::size_t band_count{16};
    double self_masking_db{-18.0};
    double spread_per_band_db{-12.0};
    double absolute_floor{1e-9};
};

struct PsychoAnalysis {
    std::vector<double> band_energy;    ///< linear power per band.
    std::vector<double> band_threshold; ///< allowed noise power per band.
    /// Signal-to-mask ratio in dB per band (>= 0 means audible detail).
    std::vector<double> smr_db;
};

/// Analyse one PCM frame (length must be a power of two).
PsychoAnalysis analyze_frame(const std::vector<double>& pcm, const PsychoParams& params);

/// Map the `n_coeffs` MDCT lines onto `band_count` equal bands; returns
/// the band index of each line.
std::vector<std::size_t> band_of_lines(std::size_t n_coeffs, std::size_t band_count);

} // namespace snoc::apps
