// Ablation (ours): the cost of strong reliability on top of stochastic
// communication (Sec. 4.2.3's "higher level protocol").
//
// Raw gossip gives "almost all or almost none" probabilistic delivery;
// the reliable channel (cumulative ACKs + retransmission with TTL
// escalation) turns that into exactly-once in-order delivery.  This bench
// measures what that guarantee costs in packets and rounds per item as
// the upset level grows — and shows raw gossip's delivery ratio falling
// while the reliable channel stays at 100%.
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "core/transport.hpp"

namespace {

using namespace snoc;

constexpr std::size_t kItems = 8;
constexpr TileId kSrc = 0, kDst = 15;

class RawSource final : public IpCore {
public:
    void on_round(TileContext& ctx) override {
        if (sent_ < kItems && ctx.round() % 2 == 0) {
            ctx.send(kDst, 0x5701, {static_cast<std::byte>(sent_)});
            ++sent_;
        }
    }
    void on_message(const Message&, TileContext&) override {}

private:
    std::size_t sent_{0};
};

class RawSink final : public IpCore {
public:
    void on_message(const Message& m, TileContext&) override {
        if (m.tag == 0x5701) ++received_;
    }
    std::size_t received() const { return received_; }

private:
    std::size_t received_{0};
};

class ReliableSource final : public IpCore {
public:
    ReliableSource() : sender_(kDst, 1) {}
    void on_round(TileContext& ctx) override {
        if (sent_ < kItems && ctx.round() % 2 == 0) {
            sender_.send(ctx, {static_cast<std::byte>(sent_)});
            ++sent_;
        }
        sender_.on_round(ctx);
    }
    void on_message(const Message& m, TileContext& ctx) override {
        sender_.on_message(m, ctx);
    }
    const ReliableSender& sender() const { return sender_; }

private:
    ReliableSender sender_;
    std::size_t sent_{0};
};

class ReliableSink final : public IpCore {
public:
    ReliableSink()
        : receiver_(kSrc, 1, [this](std::uint32_t, std::vector<std::byte>) {
              ++received_;
          }) {}
    void on_message(const Message& m, TileContext& ctx) override {
        receiver_.on_message(m, ctx);
    }
    std::size_t received() const { return received_; }

private:
    ReliableReceiver receiver_;
    std::size_t received_{0};
};

} // namespace

int main(int argc, char** argv) {
    using namespace snoc;
    const auto opt = bench::options(argc, argv, 10);

    struct Trial {
        double raw_del, raw_pkts, rel_del, rel_pkts, rel_rounds;
    };

    Table table({"p_upset", "raw delivery [%]", "reliable delivery [%]",
                 "raw pkts/item", "reliable pkts/item", "reliable rounds"});
    for (double upset : {0.0, 0.3, 0.5, 0.7, 0.85}) {
        const auto trials = run_trials(
            opt.repeats,
            [&](std::uint64_t seed) {
                FaultScenario s;
                s.p_upset = upset;
                // Deliberately undersized TTL: raw gossip struggles, the
                // reliable channel escalates its way through.
                GossipConfig c = bench::config_with_p(0.5, 8);

                Trial out{};
                GossipNetwork raw(Topology::mesh(4, 4), c, s, seed,
                                  bench::engine_select(opt));
                auto sink = std::make_unique<RawSink>();
                const RawSink& rs = *sink;
                raw.attach(kSrc, std::make_unique<RawSource>());
                raw.attach(kDst, std::move(sink));
                for (int i = 0; i < 120; ++i) raw.step();
                raw.drain();
                out.raw_del = 100.0 * static_cast<double>(rs.received()) / kItems;
                out.raw_pkts =
                    static_cast<double>(raw.metrics().packets_sent) / kItems;

                GossipNetwork rel(Topology::mesh(4, 4), c, s, seed,
                                  bench::engine_select(opt));
                auto rsink = std::make_unique<ReliableSink>();
                auto rsrc = std::make_unique<ReliableSource>();
                const ReliableSink& sink_ref = *rsink;
                const ReliableSource& src_ref = *rsrc;
                rel.attach(kSrc, std::move(rsrc));
                rel.attach(kDst, std::move(rsink));
                const auto run = rel.run_until(
                    [&] { return sink_ref.received() >= kItems && src_ref.sender().idle(); },
                    8000);
                out.rel_del = 100.0 * static_cast<double>(sink_ref.received()) / kItems;
                out.rel_pkts =
                    static_cast<double>(rel.metrics().packets_sent) / kItems;
                out.rel_rounds = static_cast<double>(run.rounds);
                return out;
            },
            opt.jobs);
        Accumulator raw_del, rel_del, raw_pkts, rel_pkts, rel_rounds;
        for (const Trial& t : trials) {
            raw_del.add(t.raw_del);
            raw_pkts.add(t.raw_pkts);
            rel_del.add(t.rel_del);
            rel_pkts.add(t.rel_pkts);
            rel_rounds.add(t.rel_rounds);
        }
        table.add_row({format_number(upset, 2), format_number(raw_del.mean(), 1),
                       format_number(rel_del.mean(), 1),
                       format_number(raw_pkts.mean(), 0),
                       format_number(rel_pkts.mean(), 0),
                       format_number(rel_rounds.mean(), 0)});
    }
    bench::emit(table, opt,
                "Ablation: raw gossip vs reliable transport (TTL 8, p=0.5, "
                "corner-to-corner 4x4)");
    return 0;
}
