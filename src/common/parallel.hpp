// Deterministic parallel Monte-Carlo trial fan-out.
//
// Every paper figure (Fig. 3-1, 4-4..4-11, 5-3) and every ablation is an
// average over seeds, and the trials are embarrassingly parallel: each
// one owns an independent GossipNetwork constructed from its trial
// index.  run_trials() executes fn(0), fn(1), ..., fn(n-1) on a shared
// thread pool and returns the results ordered by trial index, so the
// output is bit-identical regardless of worker count — jobs=1 and
// jobs=N interleave differently in time but never share RNG state, and
// every result lands in its own pre-allocated slot.
//
// Determinism contract (see DESIGN.md "Performance architecture"):
//   * fn must derive ALL randomness from its trial-index argument —
//     construct RngPool/RngStream/GossipNetwork *inside* fn, never
//     share a stream or a network across trials;
//   * fn must not mutate shared state (accumulate into the returned
//     value; aggregate after run_trials returns);
//   * under these rules, results[i] == fn(i) for every jobs value.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace snoc {

/// Worker count used when the caller does not specify one:
/// the SNOC_JOBS environment variable if set (and a positive integer),
/// otherwise std::thread::hardware_concurrency(), otherwise 1.
std::size_t default_jobs();

/// A reusable fixed-size pool of worker threads.  Jobs are opaque
/// void() callables processed FIFO; completion is the caller's business
/// (run_trials uses a per-batch countdown, wait_idle() drains all).
class ThreadPool {
public:
    explicit ThreadPool(std::size_t threads);
    ~ThreadPool();
    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Enqueue a job.  Never blocks; the queue is unbounded.
    void submit(std::function<void()> job);

    /// Block until the queue is empty and every worker is idle.
    void wait_idle();

    std::size_t size() const { return workers_.size(); }

    /// Process-wide pool sized by default_jobs(), created on first use.
    /// run_trials() draws its workers from here so repeated fan-outs
    /// reuse threads instead of spawning fresh ones per sweep point.
    static ThreadPool& shared();

private:
    void worker_loop();

    mutable std::mutex mutex_;
    std::condition_variable work_cv_;
    std::condition_variable idle_cv_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    std::size_t active_{0};
    bool stop_{false};
};

/// Run fn(0..n_trials-1) with up to `jobs` workers (0 = default_jobs())
/// and return the results in trial order.  The calling thread always
/// participates as one of the workers, so jobs=1 degenerates to the
/// plain serial loop with zero synchronisation overhead.  The result
/// type must be default-constructible (slots are pre-allocated).
/// The first exception thrown by any trial is rethrown here after all
/// in-flight trials finish; remaining trials are abandoned.
template <typename Fn>
auto run_trials(std::size_t n_trials, Fn&& fn, std::size_t jobs = 0)
    -> std::vector<std::decay_t<std::invoke_result_t<Fn&, std::uint64_t>>> {
    using R = std::decay_t<std::invoke_result_t<Fn&, std::uint64_t>>;
    if (jobs == 0) jobs = default_jobs();
    std::vector<R> results(n_trials);
    if (n_trials == 0) return results;
    if (jobs <= 1 || n_trials == 1) {
        for (std::uint64_t i = 0; i < n_trials; ++i)
            results[i] = fn(static_cast<std::uint64_t>(i));
        return results;
    }

    // Work-stealing over a shared atomic trial counter: each worker pulls
    // the next unclaimed index and writes fn(i) into its own slot.  Trial
    // order in `results` is by index, independent of scheduling.
    std::atomic<std::uint64_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mutex;
    auto work = [&] {
        for (;;) {
            const std::uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n_trials || failed.load(std::memory_order_relaxed)) break;
            try {
                results[i] = fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!error) error = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
            }
        }
    };

    // The caller is worker #1; helpers come from the shared pool.  Each
    // helper signals the countdown when it runs out of trials.
    const std::size_t helpers = std::min(jobs, n_trials) - 1;
    std::atomic<std::size_t> remaining{helpers};
    std::mutex done_mutex;
    std::condition_variable done_cv;
    ThreadPool& pool = ThreadPool::shared();
    for (std::size_t h = 0; h < helpers; ++h) {
        pool.submit([&] {
            work();
            if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                std::lock_guard<std::mutex> lock(done_mutex);
                done_cv.notify_all();
            }
        });
    }
    work();
    {
        std::unique_lock<std::mutex> lock(done_mutex);
        done_cv.wait(lock, [&] { return remaining.load(std::memory_order_acquire) == 0; });
    }
    if (error) std::rethrow_exception(error);
    return results;
}

} // namespace snoc
