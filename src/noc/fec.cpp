#include "noc/fec.hpp"

#include <array>
#include <cstring>

#include "common/expect.hpp"

namespace snoc::fec {

namespace {

constexpr bool is_pow2(unsigned x) { return x != 0 && (x & (x - 1)) == 0; }

/// Codeword position (1-based, 1..71) of each of the 64 data bits: the
/// non-power-of-two positions in order.
constexpr std::array<std::uint8_t, 64> make_data_positions() {
    std::array<std::uint8_t, 64> pos{};
    std::size_t k = 0;
    for (unsigned p = 1; p <= 71 && k < 64; ++p)
        if (!is_pow2(p)) pos[k++] = static_cast<std::uint8_t>(p);
    return pos;
}

constexpr auto kDataPos = make_data_positions();

/// Hamming syndrome contribution of the data bits alone.
std::uint8_t data_syndrome(std::uint64_t data) {
    std::uint8_t syndrome = 0;
    for (std::size_t k = 0; k < 64; ++k)
        if ((data >> k) & 1u) syndrome ^= kDataPos[k];
    return syndrome;
}

bool parity64(std::uint64_t v) {
    v ^= v >> 32;
    v ^= v >> 16;
    v ^= v >> 8;
    v ^= v >> 4;
    v ^= v >> 2;
    v ^= v >> 1;
    return v & 1u;
}

bool parity8(std::uint8_t v) { return parity64(v); }

} // namespace

Codeword encode_word(std::uint64_t data) {
    Codeword w;
    w.data = data;
    // Check bits 0..6: make each Hamming group XOR to zero.
    const std::uint8_t syndrome = data_syndrome(data);
    w.check = syndrome & 0x7Fu;
    // Check bit 7: overall parity over data + the 7 Hamming bits.
    const bool overall = parity64(data) ^ parity8(w.check & 0x7Fu);
    if (overall) w.check |= 0x80u;
    return w;
}

DecodeResult decode_word(Codeword word) {
    DecodeResult out;
    const std::uint8_t syndrome =
        data_syndrome(word.data) ^ (word.check & 0x7Fu);
    const bool overall_mismatch = parity64(word.data) ^
                                  parity8(word.check & 0x7Fu) ^
                                  ((word.check >> 7) & 1u);
    if (syndrome == 0 && !overall_mismatch) {
        out.data = word.data;
        out.status = WordStatus::Clean;
        return out;
    }
    if (syndrome == 0 && overall_mismatch) {
        // The overall parity bit itself flipped; data is intact.
        out.data = word.data;
        out.status = WordStatus::Corrected;
        return out;
    }
    if (!overall_mismatch) {
        // Non-zero syndrome with even overall parity: two bit errors.
        out.data = word.data;
        out.status = WordStatus::Uncorrectable;
        return out;
    }
    // Single error at position `syndrome`.
    if (syndrome > 71) {
        out.data = word.data;
        out.status = WordStatus::Uncorrectable; // invalid position
        return out;
    }
    if (is_pow2(syndrome)) {
        // A Hamming check bit flipped; data is intact.
        out.data = word.data;
        out.status = WordStatus::Corrected;
        return out;
    }
    std::uint64_t repaired = word.data;
    for (std::size_t k = 0; k < 64; ++k) {
        if (kDataPos[k] == syndrome) {
            repaired ^= (1ULL << k);
            break;
        }
    }
    out.data = repaired;
    out.status = WordStatus::Corrected;
    return out;
}

void flip_bit(Codeword& word, std::size_t bit) {
    SNOC_EXPECT(bit < 72);
    if (bit < 64)
        word.data ^= (1ULL << bit);
    else
        word.check ^= static_cast<std::uint8_t>(1u << (bit - 64));
}

ProtectedPayload protect(const std::vector<std::byte>& payload) {
    ProtectedPayload out;
    const auto length = static_cast<std::uint32_t>(payload.size());
    out.bytes.reserve(4 + ((payload.size() + 7) / 8) * 9);
    for (std::size_t i = 0; i < 4; ++i)
        out.bytes.push_back(static_cast<std::byte>((length >> (8 * i)) & 0xFF));
    for (std::size_t offset = 0; offset < payload.size(); offset += 8) {
        std::uint64_t word = 0;
        const std::size_t n = std::min<std::size_t>(8, payload.size() - offset);
        std::memcpy(&word, payload.data() + offset, n);
        const Codeword cw = encode_word(word);
        for (std::size_t i = 0; i < 8; ++i)
            out.bytes.push_back(static_cast<std::byte>((cw.data >> (8 * i)) & 0xFF));
        out.bytes.push_back(static_cast<std::byte>(cw.check));
    }
    return out;
}

RecoverResult recover(const std::vector<std::byte>& bytes) {
    RecoverResult out;
    if (bytes.size() < 4) {
        out.ok = false;
        return out;
    }
    std::uint32_t length = 0;
    for (std::size_t i = 0; i < 4; ++i)
        length |= static_cast<std::uint32_t>(bytes[i]) << (8 * i);
    const std::size_t words = (static_cast<std::size_t>(length) + 7) / 8;
    if (bytes.size() != 4 + words * 9) {
        out.ok = false;
        return out;
    }
    out.payload.reserve(length);
    for (std::size_t w = 0; w < words; ++w) {
        const std::size_t base = 4 + w * 9;
        Codeword cw;
        for (std::size_t i = 0; i < 8; ++i)
            cw.data |= static_cast<std::uint64_t>(bytes[base + i]) << (8 * i);
        cw.check = static_cast<std::uint8_t>(bytes[base + 8]);
        const auto decoded = decode_word(cw);
        if (decoded.status == WordStatus::Uncorrectable) out.ok = false;
        if (decoded.status == WordStatus::Corrected) ++out.corrected_words;
        const std::size_t n = std::min<std::size_t>(8, length - w * 8);
        for (std::size_t i = 0; i < n; ++i)
            out.payload.push_back(
                static_cast<std::byte>((decoded.data >> (8 * i)) & 0xFF));
    }
    return out;
}

} // namespace snoc::fec
