#include "telemetry/prof.hpp"

#include <algorithm>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include "common/annotations.hpp"

namespace snoc::prof {

namespace {

// Per-thread accumulators behind a shared_ptr so a thread's stats survive
// its exit (ThreadPool workers come and go across snapshot() calls).  The
// per-thread mutex is uncontended on the hot record() path; the global
// one is only taken on first use per thread and in snapshot()/reset().
struct ThreadRecords {
    Mutex mu;
    std::map<std::string, Stat> stats SNOC_GUARDED_BY(mu);
};

// Deliberately immortal (never destroyed): --prof reports via atexit, and
// these statics are first touched mid-run — after that handler registers —
// so destroying them at exit would run before the handler reads them.
Mutex& registry_mutex() {
    static Mutex* mu = new Mutex;
    return *mu;
}

std::vector<std::shared_ptr<ThreadRecords>>& registry()
    SNOC_REQUIRES(registry_mutex()) {
    static auto* threads = new std::vector<std::shared_ptr<ThreadRecords>>;
    return *threads;
}

ThreadRecords& local_records() {
    thread_local std::shared_ptr<ThreadRecords> records = [] {
        auto r = std::make_shared<ThreadRecords>();
        LockGuard lock(registry_mutex());
        registry().push_back(r);
        return r;
    }();
    return *records;
}

} // namespace

void detail::record(const char* name, double seconds) {
    auto& records = local_records();
    LockGuard lock(records.mu);
    Stat& stat = records.stats[name];
    ++stat.calls;
    stat.seconds += seconds;
}

void set_enabled(bool on) {
    detail::g_enabled.store(on,
                            std::memory_order_relaxed); // relaxed[enable-flag]
}

std::map<std::string, Stat> snapshot() {
    std::map<std::string, Stat> merged;
    LockGuard lock(registry_mutex());
    for (const auto& records : registry()) {
        LockGuard inner(records->mu);
        for (const auto& [name, stat] : records->stats) {
            Stat& out = merged[name];
            out.calls += stat.calls;
            out.seconds += stat.seconds;
        }
    }
    return merged;
}

void reset() {
    LockGuard lock(registry_mutex());
    for (const auto& records : registry()) {
        LockGuard inner(records->mu);
        records->stats.clear();
    }
}

std::string report() {
    const auto stats = snapshot();
    if (stats.empty()) return {};
    std::vector<std::pair<std::string, Stat>> rows(stats.begin(), stats.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
        if (a.second.seconds != b.second.seconds)
            return a.second.seconds > b.second.seconds;
        return a.first < b.first;
    });
    std::ostringstream os;
    os << "profile (wall-clock, merged across threads):\n";
    char buf[160];
    for (const auto& [name, stat] : rows) {
        const double avg_us =
            stat.calls ? stat.seconds * 1e6 / static_cast<double>(stat.calls)
                       : 0.0;
        std::snprintf(buf, sizeof buf, "  %-24s %12llu calls %12.6f s %10.3f us/call\n",
                      name.c_str(),
                      static_cast<unsigned long long>(stat.calls),
                      stat.seconds, avg_us);
        os << buf;
    }
    return os.str();
}

std::string json_report() {
    const auto stats = snapshot();
    std::ostringstream os;
    os << "{\n  \"schema\": \"snoc-prof-v1\",\n  \"entries\": {";
    bool first = true;
    for (const auto& [name, stat] : stats) {
        os << (first ? "\n" : ",\n");
        first = false;
        char buf[96];
        std::snprintf(buf, sizeof buf, "{\"calls\": %llu, \"seconds\": %.9f}",
                      static_cast<unsigned long long>(stat.calls),
                      stat.seconds);
        os << "    \"" << name << "\": " << buf;
    }
    os << (first ? "}" : "\n  }") << "\n}\n";
    return os.str();
}

void write_json_report(const std::string& path) {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << json_report();
}

} // namespace snoc::prof
