// MetricsRegistry tests: typed cell semantics (counter/gauge/histogram),
// deterministic snapshots, and the golden JSON + Prometheus expositions
// snoc_lint cross-checks against the SNOC_METRIC_LIST registry (every
// wire name must appear in both goldens; the lint holds them in
// lock-step with the X-macro table).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "telemetry/metrics_registry.hpp"

namespace snoc {
namespace {

TEST(MetricsRegistry, CountersAccumulate) {
    MetricsRegistry reg;
    EXPECT_EQ(reg.value(MetricId::TrialsTotal), 0u);
    reg.inc(MetricId::TrialsTotal);
    reg.inc(MetricId::TrialsTotal, 41);
    EXPECT_EQ(reg.value(MetricId::TrialsTotal), 42u);
}

TEST(MetricsRegistry, GaugesMoveBothWays) {
    MetricsRegistry reg;
    reg.set(MetricId::ActiveTrials, 5);
    reg.inc(MetricId::ActiveTrials, 2);
    reg.dec(MetricId::ActiveTrials, 3);
    EXPECT_EQ(reg.value(MetricId::ActiveTrials), 4u);
    reg.set(MetricId::LastSweepCells, 9);
    EXPECT_EQ(reg.value(MetricId::LastSweepCells), 9u);
}

TEST(MetricsRegistry, HistogramBucketsAreCumulative) {
    MetricsRegistry reg;
    reg.observe(MetricId::TrialRounds, 1);   // bucket le=1
    reg.observe(MetricId::TrialRounds, 3);   // bucket le=4
    reg.observe(MetricId::TrialRounds, 100); // bucket le=128
    reg.observe(MetricId::TrialRounds, 1u << 20); // +Inf only
    EXPECT_EQ(reg.histogram_count(MetricId::TrialRounds), 4u);
    EXPECT_EQ(reg.histogram_sum(MetricId::TrialRounds),
              1u + 3u + 100u + (1u << 20));
    // Cumulative le semantics: each bucket counts everything at or below.
    EXPECT_EQ(reg.histogram_bucket(MetricId::TrialRounds, 0), 1u);  // le=1
    EXPECT_EQ(reg.histogram_bucket(MetricId::TrialRounds, 2), 2u);  // le=4
    EXPECT_EQ(reg.histogram_bucket(MetricId::TrialRounds, 7), 3u);  // le=128
    EXPECT_EQ(reg.histogram_bucket(MetricId::TrialRounds,
                                   kHistogramBucketCount - 1),
              4u); // +Inf
}

TEST(MetricsRegistry, ResetZeroesEverything) {
    MetricsRegistry reg;
    reg.inc(MetricId::SweepsTotal, 3);
    reg.observe(MetricId::TrialDeliveries, 17);
    reg.reset();
    EXPECT_EQ(reg.value(MetricId::SweepsTotal), 0u);
    EXPECT_EQ(reg.histogram_count(MetricId::TrialDeliveries), 0u);
    EXPECT_EQ(reg.histogram_bucket(MetricId::TrialDeliveries,
                                   kHistogramBucketCount - 1),
              0u);
}

TEST(MetricsRegistry, DescTableIsConsistent) {
    // Wire names are unique and Prometheus-legal; kinds are filled in.
    for (std::size_t i = 0; i < kMetricCount; ++i) {
        const MetricDesc& d = kMetricDescs[i];
        ASSERT_NE(d.wire, nullptr);
        ASSERT_NE(d.help, nullptr);
        EXPECT_EQ(std::string(d.wire).find_first_not_of(
                      "abcdefghijklmnopqrstuvwxyz0123456789_"),
                  std::string::npos)
            << d.wire;
        for (std::size_t j = i + 1; j < kMetricCount; ++j)
            EXPECT_STRNE(d.wire, kMetricDescs[j].wire);
    }
}

/// Fill every metric with a distinct, deterministic pattern so the
/// goldens exercise non-zero values for all 18 entries.
void fill(MetricsRegistry& reg) {
    for (std::size_t i = 0; i < kMetricCount; ++i) {
        const auto id = static_cast<MetricId>(i);
        switch (metric_desc(id).kind) {
        case MetricKind::Counter: reg.inc(id, 10 * (i + 1)); break;
        case MetricKind::Gauge: reg.set(id, i + 1); break;
        case MetricKind::Histogram:
            reg.observe(id, 1);
            reg.observe(id, 5 * (i + 1));
            reg.observe(id, 2000);
            break;
        }
    }
}

TEST(MetricsRegistry, SnapshotsAreDeterministic) {
    MetricsRegistry a;
    MetricsRegistry b;
    fill(a);
    fill(b);
    std::ostringstream ja, jb, pa, pb;
    a.write_json(ja);
    b.write_json(jb);
    a.write_prometheus(pa);
    b.write_prometheus(pb);
    EXPECT_EQ(ja.str(), jb.str());
    EXPECT_EQ(pa.str(), pb.str());
    // A snapshot is read-only: writing twice off one registry matches too.
    std::ostringstream ja2;
    a.write_json(ja2);
    EXPECT_EQ(ja.str(), ja2.str());
}

class ExpositionGolden : public ::testing::TestWithParam<const char*> {};

TEST_P(ExpositionGolden, MatchesCommittedBytes) {
    const std::string which = GetParam();
    MetricsRegistry reg;
    fill(reg);
    std::ostringstream os;
    if (which == "json")
        reg.write_json(os);
    else
        reg.write_prometheus(os);
    const std::string image = os.str();

    // Every wire name must appear in the exposition — the invariant
    // snoc_lint's registry check leans on.
    for (std::size_t i = 0; i < kMetricCount; ++i)
        EXPECT_NE(image.find(kMetricDescs[i].wire), std::string::npos)
            << kMetricDescs[i].wire << " missing from " << which;

    const std::string path = std::string(SNOC_GOLDEN_DIR) +
                             "/metrics_registry." + which + ".golden";
    if (std::getenv("SNOC_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << image;
        GTEST_SKIP() << "golden updated: " << path;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << "missing golden " << path
                           << " (run with SNOC_UPDATE_GOLDEN=1 to capture)";
    std::ostringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(image, golden.str());
}

INSTANTIATE_TEST_SUITE_P(Expositions, ExpositionGolden,
                         ::testing::Values("json", "prom"));

} // namespace
} // namespace snoc
