file(REMOVE_RECURSE
  "CMakeFiles/test_deflection.dir/test_deflection.cpp.o"
  "CMakeFiles/test_deflection.dir/test_deflection.cpp.o.d"
  "test_deflection"
  "test_deflection.pdb"
  "test_deflection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deflection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
