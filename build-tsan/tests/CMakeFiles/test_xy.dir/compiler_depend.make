# Empty compiler generated dependencies file for test_xy.
# This may be replaced when dependencies are built.
