file(REMOVE_RECURSE
  "CMakeFiles/test_mp3_app.dir/test_mp3_app.cpp.o"
  "CMakeFiles/test_mp3_app.dir/test_mp3_app.cpp.o.d"
  "test_mp3_app"
  "test_mp3_app.pdb"
  "test_mp3_app[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mp3_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
