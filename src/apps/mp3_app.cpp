#include "apps/mp3_app.hpp"

#include <memory>

#include "apps/bitstream.hpp"
#include "apps/payload.hpp"
#include "common/expect.hpp"

namespace snoc::apps {

namespace {

std::vector<std::byte> encode_samples(std::uint32_t frame, const std::vector<double>& v) {
    PayloadWriter w;
    w.put<std::uint32_t>(frame);
    w.put<std::uint32_t>(static_cast<std::uint32_t>(v.size()));
    for (double x : v) w.put_f32(x);
    return w.take();
}

std::pair<std::uint32_t, std::vector<double>> decode_samples(
    std::span<const std::byte> payload) {
    PayloadReader r(payload);
    const auto frame = r.get<std::uint32_t>();
    const auto n = r.get<std::uint32_t>();
    std::vector<double> v(n);
    for (auto& x : v) x = r.get_f32();
    return {frame, std::move(v)};
}

// --------------------------------------------------------------------------
class AcquisitionIp final : public IpCore {
public:
    AcquisitionIp(const Mp3Config& config, const Mp3Deployment& map, std::uint64_t seed)
        : config_(config), map_(map), generator_(AudioParams{}, seed),
          history_(config.frame_samples, 0.0) {}

    void on_round(TileContext& ctx) override {
        if (next_frame_ >= config_.frame_count) return;
        if (ctx.round() % config_.frame_interval != 0) return;
        const auto fresh = generator_.frame(config_.frame_samples);
        // MDCT sees the 2n lapped window (previous frame + this frame).
        std::vector<double> window = history_;
        window.insert(window.end(), fresh.begin(), fresh.end());
        ctx.send(map_.mdct, kPcmWindowTag,
                 encode_samples(static_cast<std::uint32_t>(next_frame_), window));
        // The psychoacoustic model sees the new samples only.
        ctx.send(map_.psycho, kPcmFrameTag,
                 encode_samples(static_cast<std::uint32_t>(next_frame_), fresh));
        history_ = fresh;
        ++next_frame_;
    }

    void on_message(const Message&, TileContext&) override {}

private:
    Mp3Config config_;
    Mp3Deployment map_;
    ToneGenerator generator_;
    std::vector<double> history_;
    std::size_t next_frame_{0};
};

// --------------------------------------------------------------------------
class MdctIp final : public IpCore {
public:
    MdctIp(const Mp3Config& config, const Mp3Deployment& map)
        : map_(map), mdct_(config.frame_samples) {}

    void on_message(const Message& message, TileContext& ctx) override {
        if (message.tag != kPcmWindowTag) return;
        auto [frame, window] = decode_samples(message.payload);
        const auto coeffs = mdct_.forward(window);
        ctx.send(map_.encoder, kSpectrumTag, encode_samples(frame, coeffs));
    }

private:
    Mp3Deployment map_;
    Mdct mdct_;
};

// --------------------------------------------------------------------------
class PsychoIp final : public IpCore {
public:
    PsychoIp(const Mp3Config& config, const Mp3Deployment& map)
        : map_(map) {
        params_.band_count = config.band_count;
    }

    void on_message(const Message& message, TileContext& ctx) override {
        if (message.tag != kPcmFrameTag) return;
        auto [frame, pcm] = decode_samples(message.payload);
        const auto analysis = analyze_frame(pcm, params_);
        PayloadWriter w;
        w.put<std::uint32_t>(frame);
        w.put<std::uint32_t>(static_cast<std::uint32_t>(params_.band_count));
        for (double e : analysis.band_energy) w.put_f32(e);
        for (double t : analysis.band_threshold) w.put_f32(t);
        ctx.send(map_.encoder, kMaskTag, w.take());
    }

private:
    Mp3Deployment map_;
    PsychoParams params_;
};

// --------------------------------------------------------------------------
class EncoderIp final : public IpCore {
public:
    EncoderIp(const Mp3Config& config, const Mp3Deployment& map)
        : config_(config), map_(map),
          quantizer_(band_of_lines(config.frame_samples, config.band_count),
                     config.band_count),
          reservoir_(config.reservoir_capacity) {}

    void on_message(const Message& message, TileContext& ctx) override {
        if (message.tag == kSpectrumTag) {
            auto [frame, coeffs] = decode_samples(message.payload);
            pending_[frame].coeffs = std::move(coeffs);
            try_encode(frame, ctx);
        } else if (message.tag == kMaskTag) {
            PayloadReader r(message.payload);
            const auto frame = r.get<std::uint32_t>();
            const auto bands = r.get<std::uint32_t>();
            PsychoAnalysis a;
            a.band_energy.resize(bands);
            a.band_threshold.resize(bands);
            for (auto& e : a.band_energy) e = r.get_f32();
            for (auto& t : a.band_threshold) t = r.get_f32();
            pending_[frame].psycho = std::move(a);
            try_encode(frame, ctx);
        }
    }

private:
    struct Pending {
        std::optional<std::vector<double>> coeffs;
        std::optional<PsychoAnalysis> psycho;
    };

    void try_encode(std::uint32_t frame, TileContext& ctx) {
        auto it = pending_.find(frame);
        if (it == pending_.end() || !it->second.coeffs || !it->second.psycho) return;
        const std::size_t budget = reservoir_.available(config_.frame_budget_bits);
        const auto q = quantizer_.quantize(*it->second.coeffs, *it->second.psycho,
                                           budget, frame);
        reservoir_.settle(config_.frame_budget_bits, q.coded_bits);
        pending_.erase(it);

        auto [bytes, bits] = pack_lines(q.values);
        PayloadWriter w;
        w.put<std::uint32_t>(frame);
        w.put_f32(q.global_gain);
        w.put<std::uint32_t>(static_cast<std::uint32_t>(q.band_scale.size()));
        for (double s : q.band_scale) w.put_f32(s);
        w.put<std::uint32_t>(static_cast<std::uint32_t>(bits));
        w.put<std::uint32_t>(static_cast<std::uint32_t>(q.values.size()));
        for (std::byte b : bytes) w.put(b);
        ctx.send(map_.reservoir, kCodedTag, w.take());
    }

    Mp3Config config_;
    Mp3Deployment map_;
    IterativeQuantizer quantizer_;
    BitReservoir reservoir_;
    std::map<std::uint32_t, Pending> pending_;
};

// --------------------------------------------------------------------------
// Bitstream assembly: reorder coded frames, forward them in order to the
// Output tile.  In streaming mode a frame that stays missing for
// skip_after_rounds is abandoned (a skip marker is forwarded instead).
class ReservoirIp final : public IpCore {
public:
    ReservoirIp(const Mp3Config& config, const Mp3Deployment& map)
        : config_(config), map_(map) {}

    void on_message(const Message& message, TileContext& ctx) override {
        if (message.tag != kCodedTag) return;
        PayloadReader r(message.payload);
        const auto frame = r.get<std::uint32_t>();
        if (frame < next_frame_) return; // already skipped
        arrived_[frame] = std::vector<std::byte>(message.payload.begin(),
                                                 message.payload.end());
        flush(ctx);
    }

    void on_round(TileContext& ctx) override {
        flush(ctx);
        if (config_.skip_after_rounds == 0) return;
        if (next_frame_ >= config_.frame_count) return;
        // Streaming mode: give up on the head-of-line frame when stale.
        if (!head_wait_started_) {
            head_wait_started_ = ctx.round();
            return;
        }
        if (ctx.round() - *head_wait_started_ >= config_.skip_after_rounds) {
            PayloadWriter w;
            w.put<std::uint32_t>(next_frame_);
            w.put<std::uint8_t>(1); // skip marker
            ctx.send(map_.output, kStreamTag, w.take());
            ++next_frame_;
            head_wait_started_.reset();
        }
    }

private:
    void flush(TileContext& ctx) {
        auto it = arrived_.find(next_frame_);
        while (it != arrived_.end()) {
            PayloadWriter w;
            w.put<std::uint32_t>(next_frame_);
            w.put<std::uint8_t>(0); // data marker
            for (std::byte b : it->second) w.put(b);
            ctx.send(map_.output, kStreamTag, w.take());
            arrived_.erase(it);
            ++next_frame_;
            head_wait_started_.reset();
            it = arrived_.find(next_frame_);
        }
    }

    Mp3Config config_;
    Mp3Deployment map_;
    std::map<std::uint32_t, std::vector<std::byte>> arrived_;
    std::uint32_t next_frame_{0};
    std::optional<Round> head_wait_started_;
};

} // namespace

// --------------------------------------------------------------------------
Mp3OutputIp::Mp3OutputIp(const Mp3Config& config) : config_(config) {}

void Mp3OutputIp::on_message(const Message& message, TileContext& ctx) {
    if (message.tag != kStreamTag) return;
    PayloadReader r(message.payload);
    (void)r.get<std::uint32_t>(); // frame index
    const auto skip = r.get<std::uint8_t>();
    if (skip != 0) {
        ++frames_skipped_;
    } else {
        ++frames_received_;
        const std::size_t chunk_bits = r.remaining() * 8;
        total_bits_ += chunk_bits;
        emission_log_.emplace_back(ctx.round(), total_bits_);
        chunks_.emplace_back(message.payload.begin(), message.payload.end());
    }
    if (complete() && !completion_round_) completion_round_ = ctx.round();
}

Mp3OutputIp& deploy_mp3(GossipNetwork& net, const Mp3Config& config,
                        const Mp3Deployment& map, std::uint64_t audio_seed) {
    SNOC_EXPECT((config.frame_samples & (config.frame_samples - 1)) == 0);
    SNOC_EXPECT(net.topology().node_count() >= 16);
    net.attach(map.acquisition,
               std::make_unique<AcquisitionIp>(config, map, audio_seed));
    net.attach(map.mdct, std::make_unique<MdctIp>(config, map));
    net.attach(map.psycho, std::make_unique<PsychoIp>(config, map));
    net.attach(map.encoder, std::make_unique<EncoderIp>(config, map));
    net.attach(map.reservoir, std::make_unique<ReservoirIp>(config, map));
    auto output = std::make_unique<Mp3OutputIp>(config);
    Mp3OutputIp& ref = *output;
    net.attach(map.output, std::move(output));
    return ref;
}

BitrateReport bitrate_report(const Mp3OutputIp& output, const Mp3Config& config,
                             Round total_rounds, double round_seconds,
                             Round window_rounds) {
    SNOC_EXPECT(round_seconds > 0.0);
    SNOC_EXPECT(window_rounds > 0);
    BitrateReport report;
    const double total_seconds = static_cast<double>(total_rounds) * round_seconds;
    if (total_seconds > 0.0)
        report.mean_bits_per_second =
            static_cast<double>(output.total_coded_bits()) / total_seconds;
    report.completion_fraction =
        static_cast<double>(output.frames_received()) /
        static_cast<double>(config.frame_count);

    // Windowed rates for the jitter (error bars of Fig. 4-11).
    if (total_rounds >= window_rounds) {
        std::vector<double> window_bits(total_rounds / window_rounds + 1, 0.0);
        std::size_t previous = 0;
        for (const auto& [round, cumulative] : output.emission_log()) {
            window_bits[round / window_rounds] +=
                static_cast<double>(cumulative - previous);
            previous = cumulative;
        }
        double mean = 0.0;
        for (double b : window_bits) mean += b;
        mean /= static_cast<double>(window_bits.size());
        double var = 0.0;
        for (double b : window_bits) var += (b - mean) * (b - mean);
        var /= static_cast<double>(window_bits.size());
        const double window_seconds = static_cast<double>(window_rounds) * round_seconds;
        report.jitter_bits_per_second = std::sqrt(var) / window_seconds;
    }
    return report;
}

} // namespace snoc::apps
