// snoc_trace — query a JSONL trace dump produced with --trace-out, or a
// post-mortem bundle produced with --postmortem-out (the bundle's header
// line is recognised automatically; its event lines share the dialect).
//
//   snoc_trace summary   run.jsonl            headline counters + kind histogram
//   snoc_trace rounds    run.jsonl            per-round kind table
//   snoc_trace lifeline  run.jsonl 5:12       every event touching message 5:12
//   snoc_trace top-tiles run.jsonl [K]        K lossiest tiles (default 10)
//   snoc_trace top-links run.jsonl [K]        K busiest directed links (default 10)
//   snoc_trace header    run.postmortem.jsonl why the trial died (bundle header)
//
// Every command accepts --last-rounds=N (keep only the N highest rounds)
// and --since-round=N (drop everything before round N) to focus on the
// window around a failure.
//
// The heavy lifting lives in src/telemetry/query.{hpp,cpp} so tests can
// exercise the exact code this binary runs.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "telemetry/query.hpp"

namespace {

int usage() {
    std::cerr
        << "usage: snoc_trace <command> <trace.jsonl> [args] "
           "[--last-rounds=N] [--since-round=N]\n"
           "  summary   <trace.jsonl>          counters + kind histogram\n"
           "  rounds    <trace.jsonl>          per-round kind table\n"
           "  lifeline  <trace.jsonl> <o:seq>  one message's event history\n"
           "  top-tiles <trace.jsonl> [K]      lossiest tiles (default 10)\n"
           "  top-links <trace.jsonl> [K]      busiest links (default 10)\n"
           "  header    <bundle.jsonl>         post-mortem bundle header\n";
    return 2;
}

} // namespace

int main(int argc, char** argv) {
    const snoc::CliArgs args(argc, argv);
    const auto& positional = args.positional();
    if (positional.size() < 2) return usage();
    const std::string& command = positional[0];
    const std::string& path = positional[1];

    auto loaded = snoc::tracequery::load_jsonl_file(path);
    if (loaded.events.empty() && loaded.skipped == 0 && !loaded.postmortem) {
        std::cerr << "snoc_trace: no events loaded from " << path << '\n';
        return 1;
    }
    if (loaded.skipped > 0)
        std::cerr << "snoc_trace: warning: skipped " << loaded.skipped
                  << " malformed line(s)\n";

    if (args.has("since-round"))
        loaded.events = snoc::tracequery::since_round(
            loaded.events,
            static_cast<snoc::Round>(args.get_u64("since-round", 0)));
    if (args.has("last-rounds"))
        loaded.events = snoc::tracequery::last_rounds(
            loaded.events,
            static_cast<std::size_t>(args.get_u64("last-rounds", 0)));

    if (command == "header") {
        if (!loaded.postmortem) {
            std::cerr << "snoc_trace: " << path
                      << " carries no post-mortem header\n";
            return 1;
        }
        std::cout << snoc::tracequery::header_summary(*loaded.postmortem);
        return 0;
    }
    // A bundle's provenance is worth one stderr line even when the user
    // asked for an event-level view.
    if (loaded.postmortem)
        std::cerr << "snoc_trace: post-mortem bundle (reason: "
                  << loaded.postmortem->reason << ")\n";

    if (command == "summary") {
        std::cout << snoc::tracequery::summary(loaded.events);
        return 0;
    }
    if (command == "rounds") {
        std::cout << snoc::tracequery::per_round(loaded.events);
        return 0;
    }
    if (command == "lifeline") {
        if (positional.size() < 3) return usage();
        const auto id = snoc::tracequery::parse_message_id(positional[2]);
        if (!id) {
            std::cerr << "snoc_trace: bad message id '" << positional[2]
                      << "' (want origin:sequence, e.g. 5:12)\n";
            return 2;
        }
        std::cout << snoc::tracequery::lifeline(loaded.events, *id);
        return 0;
    }
    if (command == "top-tiles" || command == "top-links") {
        std::size_t k = 10;
        if (positional.size() >= 3)
            k = static_cast<std::size_t>(std::atoll(positional[2].c_str()));
        std::cout << (command == "top-tiles"
                          ? snoc::tracequery::top_tiles(loaded.events, k)
                          : snoc::tracequery::top_links(loaded.events, k));
        return 0;
    }
    return usage();
}
