# Empty compiler generated dependencies file for snoc_sim.
# This may be replaced when dependencies are built.
