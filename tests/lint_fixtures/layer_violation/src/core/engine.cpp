// BAD: the engine (layer core) must not see the scenario layer above it.
#include "sim/backends.hpp"
namespace snoc { int engine_stub() { return 0; } }
