file(REMOVE_RECURSE
  "CMakeFiles/pi_master_slave.dir/pi_master_slave.cpp.o"
  "CMakeFiles/pi_master_slave.dir/pi_master_slave.cpp.o.d"
  "pi_master_slave"
  "pi_master_slave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pi_master_slave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
