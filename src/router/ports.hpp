// Topology-port helpers shared by every packet-switched router stage.
//
// A router's ports are defined by the Topology: output port i of tile t
// leads to neighbours(t)[i] over out_links(t)[i], and the matching input
// port at the receiver is the index of t in the receiver's neighbour
// list.  Every backend used to re-derive these lookups privately; the
// router core makes them the one shared vocabulary the routing-policy,
// flow-control and arbitration stages all speak.
#pragma once

#include <cstddef>
#include <optional>

#include "common/expect.hpp"
#include "common/types.hpp"
#include "noc/topology.hpp"

namespace snoc::router {

/// Output-port index at `t` leading to neighbour `next`; nullopt when the
/// tiles are not adjacent.
inline std::optional<std::size_t> port_to(const Topology& topo, TileId t,
                                          TileId next) {
    const auto& nbrs = topo.neighbours(t);
    for (std::size_t i = 0; i < nbrs.size(); ++i)
        if (nbrs[i] == next) return i;
    return std::nullopt;
}

/// Input-port index at `to` whose upstream neighbour is `from`
/// (ContractViolation when they are not adjacent).
inline std::size_t input_port_from(const Topology& topo, TileId to, TileId from) {
    const auto port = port_to(topo, to, from);
    SNOC_ENSURE(port.has_value() && "no input port from neighbour");
    return *port;
}

/// Directed link id for the hop a -> b (ContractViolation when the tiles
/// are not adjacent).
inline LinkId link_between(const Topology& topo, TileId a, TileId b) {
    const auto port = port_to(topo, a, b);
    SNOC_ENSURE(port.has_value() && "hop endpoints are not neighbours");
    return topo.out_links(a)[*port];
}

} // namespace snoc::router
