// Deterministic XY (dimension-ordered) mesh routing — the "static routing"
// strawman of Ch. 1: "transmission of messages along a fixed path from
// source to destination would fail if even a single tile or a link on the
// path is faulty".  We implement it so the claim is measurable (ablation
// bench): same traffic, same crash patterns, delivery ratio vs. gossip.
#pragma once

#include <cstddef>
#include <vector>

#include "fault/injector.hpp"
#include "noc/topology.hpp"
#include "noc/traffic.hpp"
#include "sim/trace.hpp"

namespace snoc {

/// The XY path from src to dst (inclusive of both): first walk X, then Y.
std::vector<TileId> xy_route(const Topology& mesh, TileId src, TileId dst);

struct XyRunResult {
    std::size_t delivered{0};
    std::size_t lost{0};       ///< path crossed a dead tile or link.
    std::size_t rounds{0};     ///< sum over phases of the longest path (hops).
    std::size_t bits{0};       ///< link-level bits (one traversal per hop).
    std::size_t hops{0};       ///< total link transmissions (delivered paths).
};

/// Realise a trace on an XY-routed mesh with a fixed crash pattern.
/// Messages are independent; a phase costs its longest surviving path.
/// When `sink` is attached, each message emits MessageCreated and either
/// per-hop Transmitted + Delivered (surviving path) or a single CrashDrop
/// at the first dead tile/link — lost paths emit no Transmitted events,
/// mirroring XyRunResult::hops, which only counts delivered paths.
XyRunResult run_xy_trace(const Topology& mesh, const TrafficTrace& trace,
                         const CrashState& crashes, TraceSink* sink = nullptr);

} // namespace snoc
