#include "apps/sat.hpp"

#include <gtest/gtest.h>

namespace snoc::apps {
namespace {

Cnf tiny_sat() {
    // (x1 | x2) & (!x1 | x3) & (!x2 | !x3)
    return Cnf{3, {{1, 2}, {-1, 3}, {-2, -3}}};
}

Cnf tiny_unsat() {
    // (x1) & (!x1)
    return Cnf{1, {{1}, {-1}}};
}

TEST(Dpll, TrivialSat) {
    const auto r = dpll(tiny_sat());
    ASSERT_TRUE(r.satisfiable);
    EXPECT_TRUE(satisfies(tiny_sat(), r.model));
}

TEST(Dpll, TrivialUnsat) {
    EXPECT_FALSE(dpll(tiny_unsat()).satisfiable);
}

TEST(Dpll, EmptyFormulaIsSat) {
    const Cnf empty{4, {}};
    const auto r = dpll(empty);
    EXPECT_TRUE(r.satisfiable);
    EXPECT_TRUE(satisfies(empty, r.model));
}

TEST(Dpll, UnitPropagationChains) {
    // x1, x1->x2, x2->x3, x3->x4: all forced true with zero decisions.
    const Cnf chain{4, {{1}, {-1, 2}, {-2, 3}, {-3, 4}}};
    const auto r = dpll(chain);
    ASSERT_TRUE(r.satisfiable);
    for (std::size_t v = 1; v <= 4; ++v) EXPECT_EQ(r.model[v], 1);
    EXPECT_EQ(r.decisions, 0u);
    EXPECT_GE(r.propagations, 4u);
}

TEST(Dpll, AssumptionsRestrictSearch) {
    const auto cnf = tiny_sat();
    const auto forced = dpll(cnf, {-2});
    ASSERT_TRUE(forced.satisfiable);
    EXPECT_EQ(forced.model[2], -1);
    EXPECT_TRUE(satisfies(cnf, forced.model));
    // Contradictory assumptions: immediately UNSAT.
    EXPECT_FALSE(dpll(cnf, {1, -1}).satisfiable);
}

TEST(Dpll, AssumptionsCanMakeSatFormulaUnsat) {
    // x1|x2 with both forced false.
    const Cnf cnf{2, {{1, 2}}};
    EXPECT_FALSE(dpll(cnf, {-1, -2}).satisfiable);
}

TEST(Dpll, PigeonholeIsUnsat) {
    for (std::uint32_t holes : {1u, 2u, 3u}) {
        EXPECT_FALSE(dpll(pigeonhole(holes)).satisfiable) << holes;
    }
}

TEST(Dpll, PigeonholeStructure) {
    const auto php = pigeonhole(3);
    EXPECT_EQ(php.variables, 12u);
    // 4 "somewhere" clauses + 3 * C(4,2) exclusions.
    EXPECT_EQ(php.clauses.size(), 4u + 3u * 6u);
}

TEST(Dpll, AgreesWithBruteForceOnRandomInstances) {
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
        // Near the 3-SAT phase transition (ratio ~4.27) for a mix of
        // SAT and UNSAT instances.
        const auto cnf = random_ksat(10, 43, 3, seed);
        const auto r = dpll(cnf);
        EXPECT_EQ(r.satisfiable, brute_force_satisfiable(cnf)) << "seed " << seed;
        if (r.satisfiable) {
            EXPECT_TRUE(satisfies(cnf, r.model));
        }
    }
}

TEST(Dpll, CubesPartitionTheSearchSpace) {
    // SAT iff some cube is SAT; UNSAT iff every cube is UNSAT.
    for (std::uint64_t seed = 40; seed < 52; ++seed) {
        const auto cnf = random_ksat(12, 51, 3, seed);
        const bool whole = dpll(cnf).satisfiable;
        bool any_cube = false;
        for (std::uint32_t cube = 0; cube < 8; ++cube) {
            std::vector<Literal> assumptions;
            for (std::uint32_t v = 0; v < 3; ++v)
                assumptions.push_back((cube >> v) & 1u
                                          ? static_cast<Literal>(v + 1)
                                          : -static_cast<Literal>(v + 1));
            if (dpll(cnf, assumptions).satisfiable) any_cube = true;
        }
        EXPECT_EQ(whole, any_cube) << "seed " << seed;
    }
}

TEST(RandomKsat, ShapeAndDeterminism) {
    const auto a = random_ksat(10, 30, 3, 7);
    const auto b = random_ksat(10, 30, 3, 7);
    EXPECT_EQ(a.clauses.size(), 30u);
    for (std::size_t i = 0; i < a.clauses.size(); ++i) {
        EXPECT_EQ(a.clauses[i], b.clauses[i]);
        EXPECT_EQ(a.clauses[i].size(), 3u);
    }
}

// --- DIMACS I/O -------------------------------------------------------------

TEST(Dimacs, ParsesCanonicalInput) {
    const auto cnf = parse_dimacs(
        "c a comment\n"
        "p cnf 3 2\n"
        "1 -2 0\n"
        "2 3 0\n");
    EXPECT_EQ(cnf.variables, 3u);
    ASSERT_EQ(cnf.clauses.size(), 2u);
    EXPECT_EQ(cnf.clauses[0], (Clause{1, -2}));
    EXPECT_EQ(cnf.clauses[1], (Clause{2, 3}));
}

TEST(Dimacs, ToleratesFreeFormWhitespaceAndMultilineClauses) {
    const auto cnf = parse_dimacs("p cnf 2 1\n1\n-2\n0\n");
    ASSERT_EQ(cnf.clauses.size(), 1u);
    EXPECT_EQ(cnf.clauses[0], (Clause{1, -2}));
}

TEST(Dimacs, RoundtripsGeneratedFormulas) {
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
        const auto original = random_ksat(9, 30, 3, seed);
        const auto reparsed = parse_dimacs(to_dimacs(original));
        EXPECT_EQ(reparsed.variables, original.variables);
        ASSERT_EQ(reparsed.clauses.size(), original.clauses.size());
        for (std::size_t i = 0; i < original.clauses.size(); ++i)
            EXPECT_EQ(reparsed.clauses[i], original.clauses[i]);
    }
}

TEST(Dimacs, RejectsMalformedInput) {
    EXPECT_THROW(parse_dimacs(""), ContractViolation);                // no header
    EXPECT_THROW(parse_dimacs("p cnf 2 1\n1 0\n2 0\n"),
                 ContractViolation);                                  // clause count
    EXPECT_THROW(parse_dimacs("p cnf 2 1\n3 0\n"), ContractViolation); // var range
    EXPECT_THROW(parse_dimacs("p cnf 2 1\n1 2\n"), ContractViolation); // unterminated
    EXPECT_THROW(parse_dimacs("p cnf 2 1\nxyz 0\n"), ContractViolation);
    EXPECT_THROW(parse_dimacs("p sat 2 1\n"), ContractViolation);     // wrong kind
    EXPECT_THROW(parse_dimacs("1 0\np cnf 2 1\n"), ContractViolation);
}

TEST(Dimacs, ParsedFormulaSolvesCorrectly) {
    // The classic (a|b) & (!a|b) & (a|!b) & (!a|!b) — UNSAT.
    const auto unsat = parse_dimacs("p cnf 2 4\n1 2 0\n-1 2 0\n1 -2 0\n-1 -2 0\n");
    EXPECT_FALSE(dpll(unsat).satisfiable);
    const auto sat = parse_dimacs("p cnf 2 2\n1 2 0\n-1 2 0\n");
    const auto r = dpll(sat);
    ASSERT_TRUE(r.satisfiable);
    EXPECT_TRUE(satisfies(sat, r.model));
}

// --- NoC deployment -------------------------------------------------------

GossipConfig default_config() {
    GossipConfig c;
    c.forward_p = 0.5;
    c.default_ttl = 30;
    return c;
}

TEST(SatNoc, DistributedMatchesSequential) {
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
        const auto cnf = random_ksat(12, 51, 3, seed + 60);
        const bool expected = dpll(cnf).satisfiable;
        GossipNetwork net(Topology::mesh(5, 5), default_config(),
                          FaultScenario::none(), seed);
        auto& master = deploy_sat(net, cnf);
        const auto run = net.run_until([&master] { return master.done(); }, 500);
        ASSERT_TRUE(run.completed) << "seed " << seed;
        EXPECT_EQ(master.satisfiable(), expected) << "seed " << seed;
        if (master.satisfiable()) {
            EXPECT_TRUE(satisfies(cnf, master.model()));
        }
    }
}

TEST(SatNoc, UnsatNeedsAllCubes) {
    GossipNetwork net(Topology::mesh(5, 5), default_config(), FaultScenario::none(), 1);
    auto& master = deploy_sat(net, pigeonhole(3));
    const auto run = net.run_until([&master] { return master.done(); }, 500);
    ASSERT_TRUE(run.completed);
    EXPECT_FALSE(master.satisfiable());
}

TEST(SatNoc, SurvivesUpsets) {
    FaultScenario s;
    s.p_upset = 0.5;
    GossipConfig c = default_config();
    c.default_ttl = 60;
    const auto cnf = random_ksat(12, 45, 3, 99);
    const bool expected = dpll(cnf).satisfiable;
    GossipNetwork net(Topology::mesh(5, 5), c, s, 2);
    auto& master = deploy_sat(net, cnf);
    const auto run = net.run_until([&master] { return master.done(); }, 3000);
    ASSERT_TRUE(run.completed);
    EXPECT_EQ(master.satisfiable(), expected);
}

TEST(SatNoc, SatAnswerCanArriveBeforeAllCubesReport) {
    // On a satisfiable instance the master may finish before every cube's
    // reply: first-SAT-wins (the early-termination property).
    const Cnf easy{12, {{1, 2, 3}}}; // almost everything satisfies it
    GossipNetwork net(Topology::mesh(5, 5), default_config(), FaultScenario::none(), 3);
    auto& master = deploy_sat(net, easy);
    const auto run = net.run_until([&master] { return master.done(); }, 500);
    ASSERT_TRUE(run.completed);
    EXPECT_TRUE(master.satisfiable());
}

} // namespace
} // namespace snoc::apps
