// Clang thread-safety annotations + the annotated lock vocabulary.
//
// The simulator's shared-state concurrency — the ThreadPool behind
// run_trials, the event engine's shard batches, the ScenarioRunner's
// progress ledger, HeartbeatWriter, the prof registry — is protected by
// mutexes whose *discipline* used to live only in comments and in
// whatever races a TSan run happened to execute.  This header turns that
// discipline into a compile-time contract: under Clang, `-Wthread-safety`
// (the `SNOC_THREAD_SAFETY` CMake option, `-Werror` on the CI leg)
// proves every access to a `SNOC_GUARDED_BY` member happens with its
// capability held, every `SNOC_REQUIRES` function is called under the
// right lock, and every acquire has a release.  On other compilers the
// macros expand to nothing — annotations are zero-cost by construction
// (BM_GossipRound / BM_GossipRoundRecorded pin this).
//
// Usage recipe (enforced by snoc_lint's `concurrency` family, see
// DESIGN.md §16):
//   * a lock-protected class owns a `snoc::Mutex` (never a bare
//     `std::mutex` — rule conc-raw-mutex) and marks every member that
//     lock protects with `SNOC_GUARDED_BY(mutex_)` (rule conc-guarded-by);
//   * critical sections use `snoc::LockGuard`, condition waits use
//     `snoc::UniqueLock` + `snoc::CondVar` with an explicit re-check
//     loop (`while (!pred) cv.wait(lock);` — spurious wakeups, and the
//     loop keeps the guarded reads visible to the analysis, which does
//     not look inside wait-predicate lambdas);
//   * private `do_x_locked()` helpers declare `SNOC_REQUIRES(mutex_)`
//     instead of re-locking;
//   * members on deliberately lock-free paths stay `std::atomic`, and
//     every `memory_order_relaxed` site carries a `relaxed[tag]`
//     justification checked against scripts/ordering_allowlist.txt
//     (rule conc-relaxed-unjustified).
#pragma once

#include <condition_variable>
#include <mutex>

// Annotations are attributes under Clang, nothing elsewhere (GCC parses
// but ignores most of them and warns; MSVC has a different spelling).
#if defined(__clang__)
#define SNOC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SNOC_THREAD_ANNOTATION(x)
#endif

/// Declares a type to be a capability (a lock, in every use here).
#define SNOC_CAPABILITY(x) SNOC_THREAD_ANNOTATION(capability(x))
/// RAII types that acquire on construction and release on destruction.
#define SNOC_SCOPED_CAPABILITY SNOC_THREAD_ANNOTATION(scoped_lockable)
/// Data member readable/writable only with the capability held.
#define SNOC_GUARDED_BY(x) SNOC_THREAD_ANNOTATION(guarded_by(x))
/// Pointer member whose *pointee* is protected by the capability.
#define SNOC_PT_GUARDED_BY(x) SNOC_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function that must be called with the capability already held.
#define SNOC_REQUIRES(...) \
    SNOC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function that acquires the capability and holds it on return.
#define SNOC_ACQUIRE(...) \
    SNOC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function that releases a held capability.
#define SNOC_RELEASE(...) \
    SNOC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function that acquires the capability iff it returns `value`.
#define SNOC_TRY_ACQUIRE(...) \
    SNOC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Function that must NOT be called with the capability held (deadlock
/// documentation: public entry points of self-locking classes).
#define SNOC_EXCLUDES(...) SNOC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Static lock-ordering declarations.
#define SNOC_ACQUIRED_BEFORE(...) \
    SNOC_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define SNOC_ACQUIRED_AFTER(...) \
    SNOC_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
/// Function returning a reference to the named capability.
#define SNOC_RETURN_CAPABILITY(x) SNOC_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch — each use needs a comment saying why the analysis is
/// wrong about the code, not the other way around.  Currently unused.
#define SNOC_NO_THREAD_SAFETY_ANALYSIS \
    SNOC_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace snoc {

/// `std::mutex` as a named capability.  `native()` exists solely so
/// UniqueLock can hand the underlying handle to std::condition_variable;
/// locking through it would be invisible to the analysis, so don't.
class SNOC_CAPABILITY("mutex") Mutex {
public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() SNOC_ACQUIRE() { mu_.lock(); }
    void unlock() SNOC_RELEASE() { mu_.unlock(); }
    bool try_lock() SNOC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

    std::mutex& native() { return mu_; }

private:
    std::mutex mu_;
};

/// std::lock_guard over a Mutex, visible to the analysis.
class SNOC_SCOPED_CAPABILITY LockGuard {
public:
    explicit LockGuard(Mutex& mu) SNOC_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
    ~LockGuard() SNOC_RELEASE() { mu_.unlock(); }
    LockGuard(const LockGuard&) = delete;
    LockGuard& operator=(const LockGuard&) = delete;

private:
    Mutex& mu_;
};

/// std::unique_lock over a Mutex, for condition waits.  Only CondVar may
/// unlock/relock it (inside wait); the analysis models the capability as
/// held for the whole scope, which is exactly the contract a correct
/// `while (!pred) wait;` loop provides — the predicate is always
/// evaluated under the lock.
class SNOC_SCOPED_CAPABILITY UniqueLock {
public:
    explicit UniqueLock(Mutex& mu) SNOC_ACQUIRE(mu) : lock_(mu.native()) {}
    ~UniqueLock() SNOC_RELEASE() {}
    UniqueLock(const UniqueLock&) = delete;
    UniqueLock& operator=(const UniqueLock&) = delete;

    std::unique_lock<std::mutex>& native() { return lock_; }

private:
    std::unique_lock<std::mutex> lock_;
};

/// std::condition_variable bound to the annotated lock types.  Waits
/// take the UniqueLock so a caller cannot wait on a lock the analysis
/// never saw acquired.  No predicate overload on purpose: the analysis
/// cannot see through a predicate lambda, so waits are written as
/// explicit re-check loops (see the header comment).
class CondVar {
public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    void wait(UniqueLock& lock) {
        // NOLINTNEXTLINE(bugprone-spuriously-wake-up-functions): the
        // re-check loop lives at every call site by contract (no
        // predicate overload exists, so callers *must* loop).
        cv_.wait(lock.native());
    }
    void notify_one() noexcept { cv_.notify_one(); }
    void notify_all() noexcept { cv_.notify_all(); }

private:
    std::condition_variable cv_;
};

} // namespace snoc
