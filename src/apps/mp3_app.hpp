// Sec. 4.2 — the parallel MP3-style encoder (Fig. 4-7a) on a 4x4 NoC.
//
// Stage task graph (each stage is an IP core on its own tile):
//
//   SignalAcquisition --(PCM window)--> MDCT ----(spectrum)----+
//          |                                                   v
//          +---------(PCM frame)-----> Psychoacoustic --> IterativeEncoding
//                                                              |
//                                              (quantised frame)
//                                                              v
//                                    BitReservoir (bitstream assembly)
//                                                              |
//                                                    (coded bytes)
//                                                              v
//                                                           Output
//
// Every arrow is gossip traffic; the Output stage is the Fig. 4-11
// bit-rate monitor.  Frames flow pipelined: acquisition emits one frame
// every `frame_interval` rounds without waiting for downstream.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "apps/audio.hpp"
#include "apps/mdct.hpp"
#include "apps/psycho.hpp"
#include "apps/quantizer.hpp"
#include "core/engine.hpp"
#include "core/ip_core.hpp"

namespace snoc::apps {

inline constexpr std::uint32_t kPcmWindowTag = 0x4D503301; // ACQ -> MDCT
inline constexpr std::uint32_t kPcmFrameTag = 0x4D503302;  // ACQ -> PSY
inline constexpr std::uint32_t kSpectrumTag = 0x4D503303;  // MDCT -> ENC
inline constexpr std::uint32_t kMaskTag = 0x4D503304;      // PSY -> ENC
inline constexpr std::uint32_t kCodedTag = 0x4D503305;     // ENC -> RES
inline constexpr std::uint32_t kStreamTag = 0x4D503306;    // RES -> OUT

struct Mp3Config {
    std::size_t frame_samples{128};   ///< n (MDCT window is 2n), power of 2.
    std::size_t frame_count{24};      ///< frames to encode.
    Round frame_interval{2};          ///< rounds between acquisitions.
    std::size_t band_count{16};
    std::size_t frame_budget_bits{640};   ///< target coded size per frame.
    std::size_t reservoir_capacity{1280}; ///< bit reservoir depth.
    /// 0 = strict in-order output (latency experiments: a lost frame means
    /// the encoding never finishes); > 0 = streaming mode: the reservoir
    /// stage skips a missing frame after this many rounds (bit-rate
    /// experiments: graceful degradation).
    Round skip_after_rounds{0};
};

/// Tile placement of the six stages (defaults fit a 4x4 mesh, spread out
/// so every edge is multi-hop).
struct Mp3Deployment {
    TileId acquisition{0};
    TileId psycho{3};
    TileId mdct{12};
    TileId encoder{5};
    TileId reservoir{10};
    TileId output{15};
};

/// The Output stage: collects coded chunks, tracks per-frame arrival and
/// cumulative coded bits (the thesis' continuous bit-rate monitor).
class Mp3OutputIp final : public IpCore {
public:
    explicit Mp3OutputIp(const Mp3Config& config);

    void on_message(const Message& message, TileContext& ctx) override;

    std::size_t frames_received() const { return frames_received_; }
    std::size_t frames_skipped() const { return frames_skipped_; }
    std::size_t total_coded_bits() const { return total_bits_; }
    bool complete() const {
        return frames_received_ + frames_skipped_ >= config_.frame_count;
    }
    /// Round at which encoding finished (all frames accounted for).
    std::optional<Round> completion_round() const { return completion_round_; }
    /// (round, cumulative bits) samples, one per received chunk.
    const std::vector<std::pair<Round, std::size_t>>& emission_log() const {
        return emission_log_;
    }

    /// Raw stream chunks (the kStreamTag payloads, in output order) — the
    /// actual bitstream a decoder consumes (see apps/mp3_decoder.hpp).
    const std::vector<std::vector<std::byte>>& stream_chunks() const {
        return chunks_;
    }

private:
    Mp3Config config_;
    std::size_t frames_received_{0};
    std::size_t frames_skipped_{0};
    std::size_t total_bits_{0};
    std::optional<Round> completion_round_;
    std::vector<std::pair<Round, std::size_t>> emission_log_;
    std::vector<std::vector<std::byte>> chunks_;
};

/// Attach the whole pipeline; returns the Output stage for inspection.
Mp3OutputIp& deploy_mp3(GossipNetwork& net, const Mp3Config& config,
                        const Mp3Deployment& deployment = {},
                        std::uint64_t audio_seed = 7);

/// Derived bit-rate statistics from an output log.
struct BitrateReport {
    double mean_bits_per_second{0.0};
    double jitter_bits_per_second{0.0}; ///< std-dev over windows.
    double completion_fraction{0.0};    ///< frames output / frames expected.
};
BitrateReport bitrate_report(const Mp3OutputIp& output, const Mp3Config& config,
                             Round total_rounds, double round_seconds,
                             Round window_rounds = 8);

} // namespace snoc::apps
