// Figure 4-10: impact of on-chip failures on MP3 latency.
//
// Left panel: latency vs. dropped packets (buffer overflow probability) —
// flat until the fatal threshold (point "A" in the thesis at ~80%) where
// the encoding cannot complete because every copy of some packet is lost.
// Right panel: latency vs. sigma_synchr — the application always
// terminates, but the latency jitter (std-dev across runs) grows.
#include <iostream>

#include "apps/mp3_app.hpp"
#include "bench_util.hpp"

namespace {

snoc::apps::Mp3Config mp3_config() {
    snoc::apps::Mp3Config c;
    c.frame_samples = 64;
    c.frame_count = 12;
    c.frame_interval = 2;
    c.band_count = 8;
    c.frame_budget_bits = 400;
    c.reservoir_capacity = 800;
    return c;
}

struct SweepPoint {
    double latency{0.0};
    double jitter{0.0};
    double completion{0.0};
};

SweepPoint run_point(const snoc::FaultScenario& scenario, std::size_t repeats,
                     std::size_t jobs, snoc::EngineSelect engine) {
    using namespace snoc;
    const auto trials = run_trials(
        repeats,
        [&](std::uint64_t seed) -> double {
            GossipNetwork net(Topology::mesh(4, 4), bench::config_with_p(0.75, 50),
                              scenario, seed, engine);
            auto& output = apps::deploy_mp3(net, mp3_config());
            const auto r =
                net.run_until([&output] { return output.complete(); }, 4000);
            return r.completed ? static_cast<double>(r.rounds) : -1.0;
        },
        jobs);
    Accumulator rounds;
    std::size_t completed = 0;
    for (double r : trials) {
        if (r < 0.0) continue;
        ++completed;
        rounds.add(r);
    }
    SweepPoint p;
    p.completion = static_cast<double>(completed) / static_cast<double>(repeats);
    if (completed) {
        p.latency = rounds.mean();
        p.jitter = rounds.stddev();
    }
    return p;
}

} // namespace

int main(int argc, char** argv) {
    using namespace snoc;
    const auto opt = bench::options(argc, argv, 6);

    // Left panel: buffer overflows.
    Table overflow({"dropped packets [%]", "latency [rounds]", "jitter", "completion"});
    for (double drop : {0.0, 0.2, 0.4, 0.6, 0.7, 0.8, 0.9}) {
        FaultScenario s;
        s.p_overflow = drop;
        const auto p = run_point(s, opt.repeats, opt.jobs, bench::engine_select(opt));
        overflow.add_row({format_number(drop * 100, 0),
                          p.completion > 0 ? format_number(p.latency, 0) : "DNF",
                          p.completion > 0 ? format_number(p.jitter, 1) : "-",
                          format_number(p.completion * 100, 0) + "%"});
    }
    bench::emit(overflow, opt,
                "Fig. 4-10 (left): MP3 latency vs buffer overflow drops");

    // Right panel: synchronisation errors.
    Table synchr({"sigma_synchr [% of T_R]", "latency [rounds]", "jitter", "completion"});
    for (double sigma : {0.0, 0.1, 0.25, 0.5, 0.75, 1.0}) {
        FaultScenario s;
        s.sigma_synchr = sigma;
        const auto p = run_point(s, opt.repeats, opt.jobs, bench::engine_select(opt));
        synchr.add_row({format_number(sigma * 100, 0),
                        p.completion > 0 ? format_number(p.latency, 0) : "DNF",
                        p.completion > 0 ? format_number(p.jitter, 1) : "-",
                        format_number(p.completion * 100, 0) + "%"});
    }
    bench::emit(synchr, opt,
                "Fig. 4-10 (right): MP3 latency vs synchronisation errors");
    return 0;
}
