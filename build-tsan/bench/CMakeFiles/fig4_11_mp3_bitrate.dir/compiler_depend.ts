# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig4_11_mp3_bitrate.
