// Modified Discrete Cosine Transform (the MDCT stage of Fig. 4-7a).
//
// Standard lapped transform: 2N windowed time samples -> N coefficients,
//     X(k) = sum_{n=0}^{2N-1} w(n) x(n) cos( pi/N (n + 1/2 + N/2)(k + 1/2) )
// with the sine window w(n) = sin( pi/(2N) (n + 1/2) ), which satisfies
// the Princen-Bradley condition, so IMDCT + 50% overlap-add reconstructs
// the signal exactly (TDAC) — a property the tests verify.
#pragma once

#include <cstddef>
#include <vector>

namespace snoc::apps {

class Mdct {
public:
    /// `n` = number of output coefficients (window length is 2n).
    explicit Mdct(std::size_t n);

    std::size_t size() const { return n_; }

    /// Forward transform of 2n samples -> n coefficients.
    std::vector<double> forward(const std::vector<double>& window) const;

    /// Inverse transform of n coefficients -> 2n time-aliased samples
    /// (windowed); overlap-add of consecutive halves reconstructs.
    std::vector<double> inverse(const std::vector<double>& coeffs) const;

    /// The sine window value w(i), i in [0, 2n).
    double window(std::size_t i) const;

private:
    std::size_t n_;
    std::vector<double> window_; // precomputed w(n)
};

/// Convenience: MDCT analysis of a long signal with 50% overlap; returns
/// one coefficient frame per hop of n samples (the first frame sees n
/// zeros of history).
std::vector<std::vector<double>> mdct_analyze(const Mdct& mdct,
                                              const std::vector<double>& signal);

/// Overlap-add synthesis (inverse of mdct_analyze).  The output length is
/// frames*n; the first n samples suffer the leading-history ramp.
std::vector<double> mdct_synthesize(const Mdct& mdct,
                                    const std::vector<std::vector<double>>& frames);

} // namespace snoc::apps
