file(REMOVE_RECURSE
  "libsnoc_diversity.a"
)
