// Tunables of the stochastic communication scheme (Sec. 3.2).
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/expect.hpp"
#include "sim/round_clock.hpp"

namespace snoc {

/// How a link protects packets against data upsets (the ARQ-vs-FEC
/// discussion of Ch. 3).  `CrcDetect` is the thesis' scheme: scrambled
/// packets are dropped and gossip redundancy replaces retransmission.
/// `SecdedCorrect` adds Hamming(72,64) forward error correction under the
/// CRC: single-bit upsets per 64-bit word are repaired at the receiver at
/// the cost of 12.5% wire overhead.
enum class LinkProtection : std::uint8_t { CrcDetect, SecdedCorrect };

constexpr const char* to_string(LinkProtection p) {
    switch (p) {
    case LinkProtection::CrcDetect: return "crc-detect";
    case LinkProtection::SecdedCorrect: return "secded-correct";
    }
    return "?";
}

struct GossipConfig {
    /// p — probability that a message in the send buffer is forwarded over
    /// each output link in a round.  p = 1 degenerates to flooding
    /// (latency-optimal, energy-worst); the thesis sweeps {1, .75, .5, .25}.
    double forward_p{0.5};

    /// TTL assigned to newly created messages; decremented every round a
    /// copy is held, garbage-collected at 0.  Bounds bandwidth and energy.
    std::uint16_t default_ttl{24};

    /// Capacity of a tile's send buffer (list of messages to forward).
    std::size_t send_buffer_capacity{256};

    /// Capacity of each input port buffer.
    std::size_t in_buffer_capacity{256};

    /// Timing parameters for Eq. 2 (latency in seconds, Fig. 4-6).
    RoundTiming timing{};

    /// Sec. 3.2.2: "since a message might reach its destination before the
    /// broadcast is completed, the spread could be terminated even earlier
    /// in order to reduce the number of messages transmitted".  When set,
    /// a unicast rumor stops being forwarded network-wide once its
    /// destination has received it (an oracle idealisation of that
    /// optimisation — real hardware would approximate it with a small TTL
    /// or kill messages).  Broadcast rumors are unaffected.  Used by the
    /// energy accounting of the Fig. 4-6 comparison.
    bool stop_spread_on_delivery{false};

    /// Link-level protection scheme (see LinkProtection).
    LinkProtection link_protection{LinkProtection::CrcDetect};

    /// Diagnostic knob: serialise (and CRC / FEC-protect) the wire image
    /// anew for every port transmission instead of encoding each held
    /// message once per round and sharing the bytes across its ports.
    /// Observable behaviour must be identical either way —
    /// test_engine_equivalence asserts it metric-for-metric and
    /// perf_microbench's BM_GossipRoundReference measures what the
    /// sharing saves.  Never set this in real experiments.
    bool reference_encode_path{false};

    void validate() const {
        SNOC_EXPECT(forward_p >= 0.0 && forward_p <= 1.0);
        SNOC_EXPECT(default_ttl > 0);
        SNOC_EXPECT(send_buffer_capacity > 0);
        SNOC_EXPECT(in_buffer_capacity > 0);
    }

    static GossipConfig flooding() {
        GossipConfig c;
        c.forward_p = 1.0;
        return c;
    }
};

} // namespace snoc
