file(REMOVE_RECURSE
  "CMakeFiles/snoc_core.dir/analytic.cpp.o"
  "CMakeFiles/snoc_core.dir/analytic.cpp.o.d"
  "CMakeFiles/snoc_core.dir/engine.cpp.o"
  "CMakeFiles/snoc_core.dir/engine.cpp.o.d"
  "CMakeFiles/snoc_core.dir/gossip_statechart.cpp.o"
  "CMakeFiles/snoc_core.dir/gossip_statechart.cpp.o.d"
  "CMakeFiles/snoc_core.dir/send_buffer.cpp.o"
  "CMakeFiles/snoc_core.dir/send_buffer.cpp.o.d"
  "CMakeFiles/snoc_core.dir/transport.cpp.o"
  "CMakeFiles/snoc_core.dir/transport.cpp.o.d"
  "CMakeFiles/snoc_core.dir/tuning.cpp.o"
  "CMakeFiles/snoc_core.dir/tuning.cpp.o.d"
  "libsnoc_core.a"
  "libsnoc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snoc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
