"""Determinism + RNG-discipline checkers.

Absorbs the former standalone scripts/lint_determinism.py: same rules,
same allowlist file and format, but running on the shared Project walk
and reporting through the one snoc_lint report (scripts/
lint_determinism.py remains as a thin compatibility shim).

New over the old script:
* rng-raw-dist — all randomness must flow through common/rng.hpp's
  RngStream; constructing a `std::*_distribution` anywhere outside
  src/common/ bypasses the cached-threshold/stream discipline and is
  flagged even when seeded (distributions are implementation-defined
  across standard libraries, so results stop being host-independent).
* stale-allowlist — an allowlist entry whose file is gone or whose
  identifier no longer names an unordered container / mt19937 / chrono
  read in that file is an error: entries must rot loudly, not silently.
"""

from __future__ import annotations

import re
from pathlib import Path

from model import Finding, Project

ALLOWLIST_FILE = "scripts/determinism_allowlist.txt"
DETERMINISM_TOPS = ("src", "bench", "tools")

HARD_PATTERNS = [
    ("det-rand", re.compile(r"\bstd::rand\b|\bsrand\s*\("),
     "std::rand/srand: global hidden RNG state; use common/rng.hpp streams"),
    ("det-random-device", re.compile(r"\brandom_device\b"),
     "std::random_device: OS entropy is never reproducible; derive from the "
     "trial seed"),
    ("det-wall-clock",
     re.compile(r"(?<![\w.:>])time\s*\(|\bgettimeofday\s*\(|"
                r"(?<![\w.:>_])clock\s*\(\s*\)"),
     "wall-clock call: sim-visible time must come from the round/cycle model"),
]

# `mt19937 rng;` / `mt19937()`: unseeded unless the enclosing constructor
# seeds the member in its initializer list - allowlistable for that case.
MT19937_DECL = re.compile(r"\bmt19937(?:_64)?\s+(\w+)\s*;|\bmt19937(?:_64)?\s*\(\s*\)")

# Chrono clock reads: allowlistable per file (key `relpath:wall_clock`)
# for code that times the simulator itself rather than the simulation.
CHRONO_CLOCK = re.compile(r"\bstd::chrono::(?:steady|system|high_resolution)_clock\b")

UNORDERED_DECL = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;=]*?>\s*(\w+)\s*[;{(]")
RANGE_FOR = re.compile(r"\bfor\s*\(\s*[^;:)]*?:\s*(?:\w+(?:\.|->))*(\w+)\s*\)")

RAW_DISTRIBUTION = re.compile(
    r"\bstd::(?:uniform_int|uniform_real|bernoulli|normal|lognormal|discrete|"
    r"exponential|poisson|geometric|binomial|negative_binomial|gamma|weibull|"
    r"extreme_value|chi_squared|cauchy|fisher_f|student_t|piecewise_constant|"
    r"piecewise_linear)_distribution\b")


def load_allowlist(root: Path) -> dict[str, int]:
    """`relpath:identifier` keys -> line number in the allowlist file."""
    entries: dict[str, int] = {}
    path = root / ALLOWLIST_FILE
    if not path.exists():
        return entries
    for lineno, raw in enumerate(path.read_text().splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        entries.setdefault(line.split()[0], lineno)
    return entries


def check_determinism(project: Project) -> list[Finding]:
    allow = load_allowlist(project.root)
    findings: list[Finding] = []
    for src in sorted(project.by_top(*DETERMINISM_TOPS), key=lambda f: f.rel):
        rel = src.rel
        unordered_names: set[str] = set()
        for lineno, line in enumerate(src.code_lines(), 1):
            for rule, pattern, message in HARD_PATTERNS:
                if pattern.search(line):
                    findings.append(Finding(rule=rule, file=rel, line=lineno,
                                            message=message))
            for m in MT19937_DECL.finditer(line):
                name = m.group(1) or "<temporary>"
                key = f"{rel}:{name}"
                if key not in allow:
                    findings.append(Finding(
                        rule="det-mt19937-unseeded", file=rel, line=lineno,
                        message=f"default-constructed mt19937 '{name}': "
                                f"unseeded PRNG; seed it from the trial seed "
                                f"(or allowlist '{key}' if the constructor's "
                                f"initializer list seeds it)",
                        key=key))
            if CHRONO_CLOCK.search(line):
                key = f"{rel}:wall_clock"
                if key not in allow:
                    findings.append(Finding(
                        rule="det-chrono-clock", file=rel, line=lineno,
                        message=f"chrono clock read: wall time in simulator "
                                f"code; if this only ever measures the "
                                f"simulator (profiling/benchmark harness) and "
                                f"never feeds simulation state, allowlist "
                                f"'{key}' with that justification",
                        key=key))
            for m in UNORDERED_DECL.finditer(line):
                name = m.group(1)
                unordered_names.add(name)
                key = f"{rel}:{name}"
                if key not in allow:
                    findings.append(Finding(
                        rule="det-unordered-container", file=rel, line=lineno,
                        message=f"unordered container '{name}' is not "
                                f"allowlisted; add '{key}' to "
                                f"{ALLOWLIST_FILE} with a justification, or "
                                f"use an ordered/indexed container",
                        key=key))
        # Iteration over anything declared unordered in this file: hash-order
        # is the classic silent determinism leak, an error even when the
        # declaration itself is allowlisted.
        for lineno, line in enumerate(src.code_lines(), 1):
            m = RANGE_FOR.search(line)
            if m and m.group(1) in unordered_names:
                findings.append(Finding(
                    rule="det-unordered-iteration", file=rel, line=lineno,
                    message=f"range-for over unordered container "
                            f"'{m.group(1)}': iteration order is hash-order "
                            "and can leak into results; copy into a sorted "
                            "vector first",
                    key=f"iter:{m.group(1)}"))
    return findings


def check_rng_discipline(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for src in project.by_top("src", "bench", "tools", "examples"):
        if src.rel.startswith("src/common/"):
            continue  # RngStream's own implementation lives here.
        for lineno, line in enumerate(src.code_lines(), 1):
            m = RAW_DISTRIBUTION.search(line)
            if m:
                findings.append(Finding(
                    rule="rng-raw-dist", file=src.rel, line=lineno,
                    message=f"raw {m.group(0)}: all randomness must flow "
                            "through RngStream (common/rng.hpp) so streams "
                            "stay splittable and results host-independent",
                    key=m.group(0)))
    return findings


def check_allowlist_staleness(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for key, lineno in sorted(load_allowlist(project.root).items(),
                              key=lambda kv: kv[1]):
        rel, _, ident = key.rpartition(":")
        src = project.files.get(rel)
        if src is None:
            findings.append(Finding(
                rule="stale-allowlist", file=ALLOWLIST_FILE, line=lineno,
                message=f"entry '{key}': file '{rel}' does not exist (or is "
                        "not scanned); delete the entry",
                key=key))
            continue
        if ident == "wall_clock":
            alive = CHRONO_CLOCK.search(src.code) is not None
        else:
            alive = any(
                m.group(1) == ident
                for pattern in (UNORDERED_DECL, MT19937_DECL)
                for m in pattern.finditer(src.code))
        if not alive:
            findings.append(Finding(
                rule="stale-allowlist", file=ALLOWLIST_FILE, line=lineno,
                message=f"entry '{key}': '{rel}' no longer declares "
                        f"'{ident}' (as an unordered container, mt19937 or "
                        "chrono read); delete the entry",
                key=key))
    return findings


def check_hygiene(project: Project) -> list[Finding]:
    """Header hygiene: every first-party header starts an include-once
    region (missing #pragma once means double-inclusion surprises)."""
    findings: list[Finding] = []
    for src in project.by_top("src", "bench", "tools", "examples"):
        if src.is_header and "#pragma once" not in src.code:
            findings.append(Finding(
                rule="pragma-once", file=src.rel, line=1,
                message="header lacks #pragma once"))
    return findings
