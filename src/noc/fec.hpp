// Forward error correction for on-chip links.
//
// Chapter 3 weighs ARQ against FEC: "FEC is appropriate when a return
// channel is not available ... FEC, however, is less reliable than ARQ
// and incurs significant additional processing complexity".  Stochastic
// communication chooses a third road (error-detection + natural
// retransmission), but to make the trade-off measurable we implement the
// classic on-chip FEC: a Hamming(72,64) SECDED code — single-error
// correction, double-error detection, the code DRAM and on-chip buses
// actually use.
//
// Layout: 64 data bits + 8 check bits per word.  Check bits 0..6 are the
// Hamming parity bits over positions whose index has that bit set (in the
// 72-bit codeword, 1-based positions, parity positions at powers of two);
// check bit 7 is overall parity (the SECDED extension).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace snoc::fec {

/// Outcome of decoding one 72-bit word.
enum class WordStatus : std::uint8_t {
    Clean,          ///< no error detected.
    Corrected,      ///< single-bit error corrected.
    Uncorrectable,  ///< double (or worse) error detected.
};

struct Codeword {
    std::uint64_t data{0};
    std::uint8_t check{0};
};

/// Encode 64 data bits into a SECDED codeword.
Codeword encode_word(std::uint64_t data);

struct DecodeResult {
    std::uint64_t data{0};
    WordStatus status{WordStatus::Clean};
};

/// Decode (and possibly repair) a codeword.
DecodeResult decode_word(Codeword word);

/// Flip one bit of a codeword (bit < 72; bits 64..71 hit the check byte).
void flip_bit(Codeword& word, std::size_t bit);

/// --- Byte-stream framing ---------------------------------------------
/// Protect an arbitrary byte payload: the stream is chunked into 8-byte
/// words (zero-padded), each carried with its check byte.  Overhead is
/// 1/8 plus padding.

struct ProtectedPayload {
    std::vector<std::byte> bytes; ///< 9 bytes per 8 payload bytes + length.
};

ProtectedPayload protect(const std::vector<std::byte>& payload);

struct RecoverResult {
    std::vector<std::byte> payload;
    std::size_t corrected_words{0};
    bool ok{true}; ///< false if any word was uncorrectable / framing broke.
};

RecoverResult recover(const std::vector<std::byte>& protected_bytes);

} // namespace snoc::fec
