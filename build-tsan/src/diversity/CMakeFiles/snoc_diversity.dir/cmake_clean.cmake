file(REMOVE_RECURSE
  "CMakeFiles/snoc_diversity.dir/architecture.cpp.o"
  "CMakeFiles/snoc_diversity.dir/architecture.cpp.o.d"
  "libsnoc_diversity.a"
  "libsnoc_diversity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snoc_diversity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
