#pragma once
// Mini backend registry in the real file's X-macro shape.  "Valiant" is
// a new BackendKind the engine-equivalence marker below never picked up.
#define SNOC_BACKEND_KIND_LIST(X)                                              \
    X(Gossip, "gossip")                                                        \
    X(Bus, "bus")                                                              \
    X(Valiant, "valiant") /* the new backend nobody wired into the suite */

enum class BackendKind {
#define SNOC_BACKEND_KIND_ENUM(name, str) name,
    SNOC_BACKEND_KIND_LIST(SNOC_BACKEND_KIND_ENUM)
#undef SNOC_BACKEND_KIND_ENUM
};
