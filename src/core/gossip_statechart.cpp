#include "core/gossip_statechart.hpp"

namespace snoc::sc {

GossipTileChart::GossipTileChart(double forward_p, std::size_t buffer_capacity,
                                 std::uint64_t seed, TransmitFn transmit)
    : forward_p_(forward_p),
      buffer_(buffer_capacity),
      rng_(splitmix64(seed)),
      transmit_(std::move(transmit)) {
    SNOC_EXPECT(forward_p >= 0.0 && forward_p <= 1.0);
    SNOC_EXPECT(transmit_ != nullptr);
    build();
}

void GossipTileChart::build() {
    const StateId tile = chart_.add_state("Tile", Composition::Parallel);

    // --- RoundLoop region: Receive -> GarbageCollect -> Send -> Receive.
    const StateId loop = chart_.add_state("RoundLoop", Composition::Exclusive, tile);
    receive_ = chart_.add_state("Receive", Composition::Leaf, loop);
    collect_ = chart_.add_state("GarbageCollect", Composition::Leaf, loop);
    send_ = chart_.add_state("Send", Composition::Leaf, loop);
    chart_.set_initial(loop, receive_);

    // Receive: CRC-clean messages merge into the send buffer (dedup).
    Transition take;
    take.from = receive_;
    take.to = receive_;
    take.trigger = kEvMessage;
    take.action = [this](const Event& e) {
        SNOC_EXPECT(inbox_ != nullptr);
        const auto slot = static_cast<std::size_t>(e.arg);
        SNOC_EXPECT(slot < inbox_->size());
        buffer_.insert((*inbox_)[slot]);
    };
    chart_.add_transition(take);

    // Receive -> GarbageCollect on end of the receive phase: TTL
    // decrement and removal of expired rumors (Fig. 3-4 middle boxes).
    Transition age;
    age.from = receive_;
    age.to = collect_;
    age.trigger = kEvEndReceive;
    age.action = [this](const Event&) { ttl_expired_ += buffer_.age_and_collect(); };
    chart_.add_transition(age);

    // GarbageCollect -> Send: per message, roll the four port gates and
    // transmit through the open ones.
    Transition to_send;
    to_send.from = collect_;
    to_send.to = send_;
    to_send.trigger = kEvSendMessage;
    chart_.add_transition(to_send);

    Transition send_more;
    send_more.from = send_;
    send_more.to = send_;
    send_more.trigger = kEvSendMessage;
    chart_.add_transition(send_more);

    Transition wrap;
    wrap.from = send_;
    wrap.to = receive_;
    wrap.trigger = kEvEndRound;
    wrap.action = [this](const Event&) { ++rounds_; };
    chart_.add_transition(wrap);

    // Degenerate round with nothing to send: GarbageCollect -> Receive.
    Transition wrap_empty;
    wrap_empty.from = collect_;
    wrap_empty.to = receive_;
    wrap_empty.trigger = kEvEndRound;
    wrap_empty.action = [this](const Event&) { ++rounds_; };
    chart_.add_transition(wrap_empty);

    // --- PortGates region: four parallel {Closed, Open} toggles.
    const StateId gates = chart_.add_state("PortGates", Composition::Parallel, tile);
    for (std::size_t p = 0; p < kPortCount; ++p) {
        const auto port = static_cast<Port>(p);
        const StateId gate = chart_.add_state(std::string("Gate") + to_string(port),
                                              Composition::Exclusive, gates);
        gate_closed_[p] = chart_.add_state("Closed", Composition::Leaf, gate);
        gate_open_[p] = chart_.add_state("Open", Composition::Leaf, gate);
        chart_.set_initial(gate, gate_closed_[p]);

        // On every send event the gate re-rolls: Closed->Open w.p. p,
        // Open->Closed w.p. 1-p; staying put is the complementary case.
        // The RND circuit of Fig. 3-5 is drawn once per (message, port).
        Transition open;
        open.from = gate_closed_[p];
        open.to = gate_open_[p];
        open.trigger = kEvSendMessage;
        open.guard = [this](const Event&) { return rng_.bernoulli(forward_p_); };
        chart_.add_transition(open);

        Transition close;
        close.from = gate_open_[p];
        close.to = gate_closed_[p];
        close.trigger = kEvSendMessage;
        close.guard = [this](const Event&) { return !rng_.bernoulli(forward_p_); };
        chart_.add_transition(close);
    }

    chart_.start();
}

void GossipTileChart::create(Message message) { buffer_.insert(std::move(message)); }

void GossipTileChart::run_round(const std::vector<Message>& received) {
    inbox_ = &received;
    chart_.dispatch(Event{kEvRoundStart, 0});
    for (std::size_t i = 0; i < received.size(); ++i)
        chart_.dispatch(Event{kEvMessage, static_cast<std::int64_t>(i)});
    chart_.dispatch(Event{kEvEndReceive, 0});
    inbox_ = nullptr;

    // Snapshot: gates re-roll per message; open gates transmit.
    const auto messages = buffer_.messages(); // copy: transmit sees stable data
    for (const auto& m : messages) {
        chart_.dispatch(Event{kEvSendMessage, 0});
        for (std::size_t p = 0; p < kPortCount; ++p)
            if (chart_.in(gate_open_[p])) transmit_(m, static_cast<Port>(p));
    }
    chart_.dispatch(Event{kEvEndRound, 0});
}

} // namespace snoc::sc
