#include "sim/trace.hpp"

#include <ostream>
#include <sstream>

#include "common/expect.hpp"

namespace snoc {

std::optional<TraceEventKind> trace_kind_from_string(std::string_view name) {
    for (std::size_t i = 0; i < kTraceEventKinds; ++i)
        if (name == kTraceEventKindNames[i])
            return static_cast<TraceEventKind>(i);
    return std::nullopt;
}

void CountingSink::record(const TraceEvent& event) {
    ++counts_[static_cast<std::size_t>(event.kind)];
}

std::size_t CountingSink::count(TraceEventKind kind) const {
    return counts_[static_cast<std::size_t>(kind)];
}

std::size_t CountingSink::total() const {
    std::size_t sum = 0;
    for (std::size_t i = 0; i < kTraceEventKinds; ++i) sum += counts_[i];
    return sum;
}

RingBufferSink::RingBufferSink(std::size_t capacity) : capacity_(capacity) {
    SNOC_EXPECT(capacity > 0);
}

void RingBufferSink::record(const TraceEvent& event) {
    if (events_.size() == capacity_) {
        events_.pop_front();
        ++dropped_;
    }
    events_.push_back(event);
}

std::string format_event(const TraceEvent& event) {
    std::ostringstream os;
    os << 'r' << event.round << ' ' << to_string(event.kind) << " tile "
       << event.tile;
    if (event.peer != kNoTile) os << " -> " << event.peer;
    if (event.message.origin != kNoTile)
        os << " msg (" << event.message.origin << ',' << event.message.sequence
           << ')';
    return os.str();
}

void StreamSink::record(const TraceEvent& event) {
    os_ << format_event(event) << '\n';
}

void TeeSink::add(TraceSink* sink) {
    SNOC_EXPECT(sink != nullptr);
    sinks_.push_back(sink);
}

void TeeSink::record(const TraceEvent& event) {
    for (TraceSink* sink : sinks_) sink->record(event);
}

} // namespace snoc
