# Empty compiler generated dependencies file for test_mp3_decoder.
# This may be replaced when dependencies are built.
