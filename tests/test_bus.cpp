#include "bus/bus.hpp"

#include <gtest/gtest.h>

#include "bus/arbiter.hpp"
#include "common/expect.hpp"

namespace snoc {
namespace {

TEST(Arbiter, GrantsNothingWithoutRequests) {
    RoundRobinArbiter arb(4);
    EXPECT_FALSE(arb.grant({false, false, false, false}).has_value());
}

TEST(Arbiter, SingleRequesterAlwaysWins) {
    RoundRobinArbiter arb(4);
    for (int i = 0; i < 5; ++i) {
        const auto g = arb.grant({false, false, true, false});
        ASSERT_TRUE(g.has_value());
        EXPECT_EQ(*g, 2u);
    }
}

TEST(Arbiter, RotatesAmongContenders) {
    RoundRobinArbiter arb(3);
    const std::vector<bool> all{true, true, true};
    EXPECT_EQ(*arb.grant(all), 1u); // last_ starts at 0 -> next is 1
    EXPECT_EQ(*arb.grant(all), 2u);
    EXPECT_EQ(*arb.grant(all), 0u);
    EXPECT_EQ(*arb.grant(all), 1u);
}

TEST(Arbiter, StarvationFreedom) {
    // Under continuous contention every module is granted once per n grants.
    RoundRobinArbiter arb(5);
    const std::vector<bool> all(5, true);
    std::vector<int> grants(5, 0);
    for (int i = 0; i < 100; ++i) ++grants[*arb.grant(all)];
    for (int g : grants) EXPECT_EQ(g, 20);
}

TEST(Arbiter, MismatchedRequestWidthThrows) {
    RoundRobinArbiter arb(4);
    EXPECT_THROW(arb.grant({true, true}), ContractViolation);
}

TrafficTrace two_phase_trace() {
    TrafficTrace trace;
    TrafficPhase a, b;
    a.messages.push_back({0, 1, 4300});   // 4300 bits
    a.messages.push_back({2, 3, 4300});
    b.messages.push_back({3, 0, 8600});
    trace.phases.push_back(a);
    trace.phases.push_back(b);
    return trace;
}

TEST(SharedBus, SerialisesAllTransfers) {
    SharedBus bus(4, Technology::cmos_025um());
    const auto result = bus.run(two_phase_trace());
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(result.transfers, 3u);
    EXPECT_EQ(result.bits, 4300u + 4300u + 8600u);
    // Time = total bits / 43 MHz regardless of phases (fully serialised).
    EXPECT_NEAR(result.seconds, 17200.0 / 43e6, 1e-12);
    EXPECT_DOUBLE_EQ(result.joules, 17200.0 * 21.6e-10);
}

TEST(SharedBus, CrashedBusDeliversNothing) {
    SharedBus bus(4, Technology::cmos_025um());
    bus.crash();
    EXPECT_FALSE(bus.alive());
    const auto result = bus.run(two_phase_trace());
    EXPECT_FALSE(result.completed);
    EXPECT_EQ(result.transfers, 0u);
    EXPECT_DOUBLE_EQ(result.seconds, 0.0);
}

TEST(SharedBus, EmptyTraceCompletesInstantly) {
    SharedBus bus(4, Technology::cmos_025um());
    const auto result = bus.run({});
    EXPECT_TRUE(result.completed);
    EXPECT_DOUBLE_EQ(result.seconds, 0.0);
}

TEST(SharedBus, ContentionProducesWaiting) {
    TrafficTrace trace;
    TrafficPhase p;
    for (TileId s = 0; s < 8; ++s) p.messages.push_back({s, 0, 100});
    trace.phases.push_back(p);
    SharedBus bus(8, Technology::cmos_025um());
    const auto result = bus.run(trace);
    EXPECT_TRUE(result.completed);
    EXPECT_GE(result.max_wait_grants, 7u); // the last module waited for 7 others
}

TEST(SharedBus, SourceOutOfRangeThrows) {
    TrafficTrace trace;
    TrafficPhase p;
    p.messages.push_back({9, 0, 100});
    trace.phases.push_back(p);
    SharedBus bus(4, Technology::cmos_025um());
    EXPECT_THROW(bus.run(trace), ContractViolation);
}

TEST(TrafficTrace, UsefulBitsAndCount) {
    const auto trace = two_phase_trace();
    EXPECT_EQ(trace.message_count(), 3u);
    EXPECT_EQ(trace.useful_bits(), 17200u);
    EXPECT_EQ(TrafficTrace{}.message_count(), 0u);
    EXPECT_EQ(TrafficTrace{}.useful_bits(), 0u);
}

} // namespace
} // namespace snoc
