// The always-on flight recorder: a fixed-capacity ring-buffer TraceSink
// cheap enough to leave attached in production runs, plus the post-mortem
// bundle it dumps when something goes wrong.
//
// Telemetry (telemetry.hpp) keeps *everything* — per-round series,
// per-tile heatmaps, the verbatim log — which is what you want for a
// figure run and exactly what you cannot afford on a multi-hour sweep.
// FlightRecorder keeps only the newest events in a preallocated ring:
// record() is one array store plus an index increment, O(1) with no
// allocation after construction, so the overhead of leaving it attached
// is within noise of running untraced (BM_GossipRoundRecorded guards
// this).  When an InvariantAuditor violation, a DeadlockSentinel firing
// or any ContractViolation fires the post-mortem hook
// (common/postmortem.hpp), a PostmortemDumper drains the ring into a
// `*.postmortem.jsonl` bundle: one header object (reason, metrics
// snapshot, manifest echo) followed by the last N events in the exact
// JSONL dialect snoc_trace already reads.
//
// Sharded recordings: the event engine executes tile strips in parallel
// and each strip buffers its events locally before the canonical serial
// merge.  `lane(s)` exposes one ring per shard so a sharded producer can
// record without cross-thread contention; drain() then merges lanes
// deterministically — ascending round, ties broken by lane index then
// intra-lane order — which equals the canonical ascending-tile-strip
// order for any lane count.  A default recorder has a single lane and
// behaves as a plain ring.
//
// Concurrency model (DESIGN.md §16): deliberately lock-free and
// atomic-free.  Each lane is single-writer by contract (one shard), and
// drain()/size()/postmortem dumps only run after the producing phase has
// joined — the event engine's countdown barrier publishes every lane
// write before the merger reads it.  There is therefore nothing for a
// mutex or an atomic to protect, and record() stays one store + one
// increment (test_concurrency_stress hammers this contract under TSan).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/postmortem.hpp"
#include "core/metrics.hpp"
#include "sim/trace.hpp"

namespace snoc {

class FlightRecorder final : public TraceSink {
public:
    /// `capacity` newest events are kept per lane; older ones are
    /// overwritten (and counted, so the bundle says what it lost).
    explicit FlightRecorder(std::size_t capacity, std::size_t lanes = 1);

    /// Records into lane 0 — the single-producer path every backend's
    /// set_trace_sink uses.
    void record(const TraceEvent& event) override;

    /// The sink for one shard's private lane.  Lanes never share state,
    /// so parallel shards may record concurrently; drain() restores the
    /// canonical order.
    TraceSink& lane(std::size_t lane);

    std::size_t capacity() const { return capacity_; }
    std::size_t lane_count() const { return lanes_.size(); }

    /// Events currently held (all lanes; <= capacity * lanes).
    std::size_t size() const;
    /// Events overwritten since the last clear (all lanes).
    std::size_t dropped() const;
    /// Running per-kind totals over *every* event ever recorded — the
    /// ring forgets old events, the totals do not.  Summed across lanes
    /// at query time; each lane counts privately so concurrent shard
    /// writers never share a cache line, let alone a counter.
    std::vector<std::size_t> kind_totals() const;

    /// The retained events in deterministic order: ascending round, ties
    /// broken by lane index, then intra-lane insertion order.  With one
    /// lane this is plain insertion order (rounds are monotone anyway).
    std::vector<TraceEvent> drain() const;

    /// Forget everything (retry loops re-record an attempt from scratch).
    void clear();

private:
    struct Lane final : TraceSink {
        void record(const TraceEvent& event) override;
        std::size_t capacity{0};
        std::size_t next{0};     ///< ring write index.
        std::size_t dropped{0};  ///< overwritten events.
        std::vector<TraceEvent> ring; ///< grows to capacity, then wraps.
        std::vector<std::size_t> totals; ///< [kind], this lane, all time.
    };

    std::size_t capacity_;
    std::vector<Lane> lanes_;
};

/// Everything the bundle header records beyond the events themselves.
struct PostmortemInfo {
    std::string reason;     ///< hook cause ("invariant", "deadlock-sentinel"...).
    std::string detail;     ///< detector-formatted message.
    std::string experiment; ///< spec name / sweep-cell label, if any.
    std::string backend;    ///< backend name, if known.
    std::uint64_t seed{0};
    bool has_metrics{false};
    NetworkMetrics metrics; ///< live counters at dump time, when reachable.
};

/// Serialise header + drained events.  Deterministic for identical
/// recorder contents and info fields (the golden test depends on it).
void write_postmortem_bundle(const FlightRecorder& recorder,
                             const PostmortemInfo& info, std::ostream& os);
void write_postmortem_bundle(const FlightRecorder& recorder,
                             const PostmortemInfo& info,
                             const std::string& path);

/// RAII arming of the post-mortem hook for the current thread: on the
/// first notify() in its scope, writes the bundle to `path` and counts it
/// in the metrics registry; later notifies in the same scope are ignored
/// (one bundle per trial describes the first failure, which is the one
/// that matters).  The recorder must outlive the dumper.
class PostmortemDumper {
public:
    PostmortemDumper(std::string path, const FlightRecorder* recorder,
                     PostmortemInfo info);
    /// nullptr recorder => dumper stays disarmed (postmortems not requested).
    static const FlightRecorder* disarmed() { return nullptr; }

    bool dumped() const { return dumped_; }
    const std::string& path() const { return path_; }

    /// Provide the live NetworkMetrics to snapshot at dump time (e.g. the
    /// backend's counters while the backend is still alive).  The pointer
    /// must stay valid for the dumper's lifetime; nullptr detaches.
    void set_live_metrics(const NetworkMetrics* metrics) { live_ = metrics; }

private:
    std::string path_;
    const FlightRecorder* recorder_;
    PostmortemInfo info_;
    const NetworkMetrics* live_{nullptr};
    bool dumped_{false};
    postmortem::ScopedHandler scope_; ///< must be last: arms the hook.
};

} // namespace snoc
