file(REMOVE_RECURSE
  "CMakeFiles/test_mdct.dir/test_mdct.cpp.o"
  "CMakeFiles/test_mdct.dir/test_mdct.cpp.o.d"
  "test_mdct"
  "test_mdct.pdb"
  "test_mdct[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mdct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
