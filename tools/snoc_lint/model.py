"""Shared model for all snoc_lint checkers.

One walk of the tree produces `Project`: every first-party source file
with its comment-stripped text (so regex checkers never fire inside
comments or string literals) and the resolved first-party include graph
(so the layering checker and cycle detector see real edges, not guesses).
Checkers are pure functions Project -> [Finding]; they share this model
and never re-read the filesystem.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

SOURCE_EXTENSIONS = {".hpp", ".cpp", ".h", ".cc"}
SCAN_ROOTS = ("src", "bench", "tools", "tests", "examples")

# Never scanned: deliberately-bad lint fixtures, build trees, VCS metadata.
EXCLUDED_PARTS = {".git"}
EXCLUDED_NAMES = {"lint_fixtures"}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"', re.MULTILINE)


@dataclass
class Finding:
    """One lint result.  `key` identifies the finding across line-number
    churn for the baseline file; it defaults to the message, so checkers
    only set it when the message embeds volatile detail."""

    rule: str
    file: str  # repo-relative posix path; "" for project-level findings.
    line: int  # 1-based; 0 when the finding has no single line.
    message: str
    key: str = ""

    def identity(self) -> tuple[str, str, str]:
        return (self.rule, self.file, self.key or self.message)

    def __str__(self) -> str:
        where = self.file or "<project>"
        if self.line:
            where += f":{self.line}"
        return f"{where}: error: [{self.rule}] {self.message}"


class ConfigError(Exception):
    """Broken lint configuration (layers.toml etc.) - exit 2, not a finding."""


def strip_comments(text: str) -> str:
    """Blank out // and /* */ comments and string/char literals, preserving
    line structure so reported line numbers stay exact."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(c if c == "\n" else " ")
        i += 1
    return "".join(out)


@dataclass
class SourceFile:
    rel: str  # repo-relative posix path.
    raw: str  # file text as on disk.
    code: str  # comment/string-stripped text (same line structure).
    includes: list[tuple[int, str]] = field(default_factory=list)  # (line, spec)

    @property
    def is_header(self) -> bool:
        return self.rel.endswith((".hpp", ".h"))

    @property
    def top(self) -> str:
        """First path component ("src", "bench", ...)."""
        return self.rel.split("/", 1)[0]

    def code_lines(self) -> list[str]:
        return self.code.splitlines()


class Project:
    """The walked tree plus the resolved first-party include graph."""

    def __init__(self, root: Path, scan_roots: tuple[str, ...] = SCAN_ROOTS):
        self.root = root
        self.files: dict[str, SourceFile] = {}
        for top in scan_roots:
            base = root / top
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*")):
                if path.suffix not in SOURCE_EXTENSIONS:
                    continue
                parts = set(path.relative_to(root).parts)
                if parts & EXCLUDED_PARTS or parts & EXCLUDED_NAMES:
                    continue
                rel = path.relative_to(root).as_posix()
                raw = path.read_text(errors="replace")
                src = SourceFile(rel=rel, raw=raw, code=strip_comments(raw))
                # Include specs are string literals, so parse them from the
                # raw text (the stripper blanks literals out of `code`).
                for m in INCLUDE_RE.finditer(raw):
                    line = raw.count("\n", 0, m.start()) + 1
                    src.includes.append((line, m.group(1)))
                self.files[rel] = src
        # rel -> [(line, included rel)] for includes that resolve to a
        # first-party file; unresolved specs are system headers and skipped.
        self.include_graph: dict[str, list[tuple[int, str]]] = {}
        for rel, src in self.files.items():
            edges = []
            for line, spec in src.includes:
                target = self.resolve_include(rel, spec)
                if target is not None:
                    edges.append((line, target))
            self.include_graph[rel] = edges

    def resolve_include(self, from_rel: str, spec: str) -> str | None:
        """Quoted includes are rooted at src/ (`"common/types.hpp"`), at the
        including file's directory (`"bench_util.hpp"`), or at bench/ (tests
        include bench_util.hpp via an include dir)."""
        from_dir = from_rel.rsplit("/", 1)[0] if "/" in from_rel else ""
        candidates = [f"src/{spec}", f"{from_dir}/{spec}" if from_dir else spec,
                      f"bench/{spec}", spec]
        for cand in candidates:
            # Normalise "a/./b" or "a/../b" spellings, defensively.
            norm = []
            for part in cand.split("/"):
                if part in ("", "."):
                    continue
                if part == "..":
                    if norm:
                        norm.pop()
                    continue
                norm.append(part)
            cand = "/".join(norm)
            if cand in self.files:
                return cand
        return None

    def by_top(self, *tops: str) -> list[SourceFile]:
        return [f for f in self.files.values() if f.top in tops]


def strongly_connected_components(graph: dict[str, set[str]]) -> list[list[str]]:
    """Iterative Tarjan; returns SCCs with more than one node (the cycles)."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0
    for start in sorted(graph):
        if start in index:
            continue
        work: list[tuple[str, iter]] = [(start, iter(sorted(graph.get(start, ()))))]
        index[start] = low[start] = counter
        counter += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in graph:
                    continue
                if nxt not in index:
                    index[nxt] = low[nxt] = counter
                    counter += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(graph.get(nxt, ())))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                comp = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    comp.append(member)
                    if member == node:
                        break
                if len(comp) > 1:
                    sccs.append(sorted(comp))
    return sccs
