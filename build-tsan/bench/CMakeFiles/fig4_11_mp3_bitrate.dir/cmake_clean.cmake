file(REMOVE_RECURSE
  "CMakeFiles/fig4_11_mp3_bitrate.dir/fig4_11_mp3_bitrate.cpp.o"
  "CMakeFiles/fig4_11_mp3_bitrate.dir/fig4_11_mp3_bitrate.cpp.o.d"
  "fig4_11_mp3_bitrate"
  "fig4_11_mp3_bitrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_11_mp3_bitrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
