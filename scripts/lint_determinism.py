#!/usr/bin/env python3
"""Compatibility shim: the determinism linter now lives inside snoc_lint
(tools/snoc_lint/determinism.py) as one checker of the project-wide
static-analysis suite — shared file walker, shared allowlist format, one
report, SARIF output.  This entry point keeps `python3
scripts/lint_determinism.py` (CI muscle memory, old docs) working by
running exactly the determinism-family checkers.

Prefer:  python3 tools/snoc_lint            # the full suite
         python3 tools/snoc_lint --only determinism,rng,allowlist
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

TOOL_DIR = Path(__file__).resolve().parent.parent / "tools" / "snoc_lint"
sys.path.insert(0, str(TOOL_DIR))

# The CLI lives in the tool's __main__.py; load it under a private name
# (a plain `import __main__` would resolve to this very script).
_spec = importlib.util.spec_from_file_location("snoc_lint_cli",
                                               TOOL_DIR / "__main__.py")
snoc_lint = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(snoc_lint)

if __name__ == "__main__":
    sys.exit(snoc_lint.main(
        ["--only", "determinism,rng,allowlist", *sys.argv[1:]]))
