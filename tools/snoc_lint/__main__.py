"""snoc_lint - project-wide static analysis for the simulator.

Usage (from the repo root, or anywhere with --root):

    python3 tools/snoc_lint                      # lint the whole tree
    python3 tools/snoc_lint --only determinism   # one checker family
    python3 tools/snoc_lint --changed-files a.cpp b.hpp   # pre-commit mode
    python3 tools/snoc_lint --sarif-out lint.sarif --json-out lint.json
    python3 tools/snoc_lint --update-baseline    # absorb current findings

Checkers (--only takes a comma-separated subset):
    layering     layer DAG enforcement + include-cycle detection
                 (rules file: scripts/layers.toml)
    registry     TraceEventKind X-macro / NetworkMetrics / SNOC_CHECK-level
                 cross-checks
    determinism  the determinism linter (rand/entropy/wall-clock/unordered)
    rng          raw std::*_distribution outside src/common/
    hygiene      missing #pragma once
    allowlist    stale scripts/determinism_allowlist.txt entries
    concurrency  thread-safety discipline: raw mutex members, unannotated
                 members of lock-owning classes, unjustified
                 memory_order_relaxed, naked std::thread (allowlists:
                 scripts/concurrency_allowlist.txt,
                 scripts/ordering_allowlist.txt)

Exit status: 0 clean, 1 findings, 2 broken configuration.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import concurrency
import determinism
import layers
import registry
import report
from model import ConfigError, Finding, Project

CHECKERS = {
    "layering": layers.check_layering,
    "registry": registry.check_registries,
    "determinism": determinism.check_determinism,
    "rng": determinism.check_rng_discipline,
    "hygiene": determinism.check_hygiene,
    "allowlist": determinism.check_allowlist_staleness,
    "concurrency": concurrency.check_concurrency,
}

# Findings in these files are project-level: they must survive the
# --changed-files filter even when the file itself was not touched,
# because editing *other* files is what breaks them.
PROJECT_LEVEL_FILES = {
    "scripts/determinism_allowlist.txt",
    concurrency.CONCURRENCY_ALLOWLIST_FILE,
    concurrency.ORDERING_ALLOWLIST_FILE,
    report.BASELINE_FILE,
    registry.TRACE_HEADER,
    registry.METRICS_HEADER,
}


def parse_args(argv: list[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="snoc_lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=None,
                        help="repository root (default: this tool's repo)")
    parser.add_argument("--only", "--rules", dest="only", default=None,
                        metavar="CHECKERS",
                        help="comma-separated checker subset (see --list-checks)")
    parser.add_argument("--list-checks", action="store_true",
                        help="print checker names and exit")
    parser.add_argument("--changed-files", nargs="*", default=None,
                        metavar="FILE",
                        help="fast mode: only report findings in these "
                             "repo-relative files (plus project-level ones)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="stdout format (default text)")
    parser.add_argument("--json-out", default=None, metavar="FILE",
                        help="also write the machine-JSON report here")
    parser.add_argument("--sarif-out", default=None, metavar="FILE",
                        help="also write a SARIF 2.1.0 report here")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help=f"suppression baseline (default {report.BASELINE_FILE})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline (fixture/self-test mode)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline to suppress all current "
                             "findings, then exit 0")
    parser.add_argument("--baseline-prune", action="store_true",
                        help="drop baseline suppressions that no longer match "
                             "any finding, then exit 0")
    return parser.parse_args(argv)


def main(argv: list[str] | None = None) -> int:
    args = parse_args(sys.argv[1:] if argv is None else argv)
    if args.list_checks:
        for name in CHECKERS:
            print(name)
        return 0

    root = (Path(args.root).resolve() if args.root
            else Path(__file__).resolve().parent.parent.parent)

    selected = list(CHECKERS)
    if args.only:
        selected = [name.strip() for name in args.only.split(",") if name.strip()]
        unknown = [name for name in selected if name not in CHECKERS]
        if unknown:
            print(f"snoc_lint: unknown checker(s): {', '.join(unknown)} "
                  f"(see --list-checks)", file=sys.stderr)
            return 2

    try:
        project = Project(root)
        findings: list[Finding] = []
        for name in selected:
            findings.extend(CHECKERS[name](project))
    except ConfigError as err:
        print(f"snoc_lint: configuration error: {err}", file=sys.stderr)
        return 2

    if args.changed_files is not None:
        changed = set()
        for raw in args.changed_files:
            rel = Path(raw)
            if rel.is_absolute():
                try:
                    rel = rel.relative_to(root)
                except ValueError:
                    continue
            changed.add(rel.as_posix())
        findings = [f for f in findings
                    if f.file in changed or f.file in PROJECT_LEVEL_FILES
                    or not f.file]

    findings.sort(key=lambda f: (f.file, f.line, f.rule, f.message))

    if args.update_baseline:
        report.write_baseline(root, args.baseline, findings)
        print(f"snoc_lint: baseline updated with {len(findings)} "
              f"suppression(s)", file=sys.stderr)
        return 0

    if args.baseline_prune:
        if args.changed_files is not None:
            # A changed-files pass sees only a slice of the findings, so
            # pruning against it would delete live suppressions.
            print("snoc_lint: --baseline-prune requires a full-tree run",
                  file=sys.stderr)
            return 2
        removed = report.prune_baseline(root, args.baseline, findings)
        print(f"snoc_lint: pruned {removed} stale suppression(s)",
              file=sys.stderr)
        return 0

    suppressions = [] if args.no_baseline else \
        report.load_baseline(root, args.baseline)
    active, suppressed, stale = report.apply_baseline(findings, suppressions)
    # Stale suppressions only make sense on a full-tree run: a changed-files
    # pass legitimately leaves most baseline entries unmatched.
    if args.changed_files is None:
        active.extend(stale)

    if args.json_out:
        (root / args.json_out if not Path(args.json_out).is_absolute()
         else Path(args.json_out)).write_text(
            json.dumps(report.to_json(active, suppressed, len(project.files)),
                       indent=2) + "\n")
    if args.sarif_out:
        (root / args.sarif_out if not Path(args.sarif_out).is_absolute()
         else Path(args.sarif_out)).write_text(
            json.dumps(report.to_sarif(active, suppressed), indent=2) + "\n")

    if args.format == "json":
        print(json.dumps(report.to_json(active, suppressed,
                                        len(project.files)), indent=2))
    else:
        for finding in active:
            print(finding)
    mode = (f"changed-files ({len(args.changed_files or [])})"
            if args.changed_files is not None else "full")
    print(f"snoc_lint [{mode}]: scanned {len(project.files)} files, "
          f"{len(active)} finding(s), {len(suppressed)} baseline-suppressed",
          file=sys.stderr)
    return 1 if active else 0


if __name__ == "__main__":
    sys.exit(main())
