// The Telemetry recorder: a TraceSink that turns the engine's event
// stream into the three views the exporters and queries need —
//
//   * the verbatim event log (JSONL / Chrome-trace export),
//   * per-round time series (one counter per TraceEventKind per round,
//     a superset of NetworkMetrics::packets_per_round),
//   * per-tile and per-link spatial counters (mesh heatmaps).
//
// It is backend-agnostic: anything that speaks the TraceSink API (gossip
// engine, bus, XY, wormhole, deflection) feeds it the same way.  Like
// every sink it is write-only from the engine's point of view and holds
// no engine state, so attaching one cannot perturb a simulation.
#pragma once

#include <array>
#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "sim/trace.hpp"

namespace snoc {

class Telemetry final : public TraceSink {
public:
    using KindCounts = std::array<std::size_t, kTraceEventKinds>;
    /// (from, to) -> transmissions over that directed link.  An ordered
    /// map so iteration (exports, top-K queries) is deterministic.
    using LinkCounts = std::map<std::pair<TileId, TileId>, std::size_t>;

    void record(const TraceEvent& event) override;

    /// Drop everything recorded so far (retry loops re-record an attempt
    /// from scratch); cheaper than constructing a fresh recorder because
    /// the vectors keep their capacity.
    void clear();

    /// Every event, in emission order.
    const std::vector<TraceEvent>& events() const { return events_; }

    std::size_t count(TraceEventKind kind) const {
        return totals_[static_cast<std::size_t>(kind)];
    }
    const KindCounts& totals() const { return totals_; }
    std::size_t total() const;

    /// Rounds covered: 1 + the highest round stamped on any event.
    std::size_t rounds() const { return per_round_.size(); }
    /// Per-round per-kind counters; index [round][kind].
    const std::vector<KindCounts>& per_round() const { return per_round_; }

    /// Copies on the wire or in buffers at the end of each round, derived
    /// from the conservation law: cumulative transmitted+created minus
    /// every sunk fate (accepted copies later age out via ttl-expired or
    /// are evicted, so those terminate them too).
    std::vector<long long> in_flight_series() const;

    /// Per-tile per-kind counters; index [tile][kind].  Sized by the
    /// highest tile id seen.
    const std::vector<KindCounts>& per_tile() const { return per_tile_; }

    const LinkCounts& link_transmissions() const { return links_; }

private:
    std::vector<TraceEvent> events_;
    KindCounts totals_{};
    std::vector<KindCounts> per_round_;
    std::vector<KindCounts> per_tile_;
    LinkCounts links_;
};

} // namespace snoc
