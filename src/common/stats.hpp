// Statistics accumulators used by the experiment harnesses.
//
// The thesis reports averages over repeated simulations plus jitter
// (error bars in Fig. 4-11); Accumulator gives streaming mean/stddev
// (Welford), SampleSet keeps raw samples for percentiles and confidence
// intervals, Histogram buckets distributions (Fig. 4-5 surface cells).
#pragma once

#include <cstddef>
#include <vector>

namespace snoc {

/// Streaming mean / variance (Welford's algorithm): O(1) memory.
class Accumulator {
public:
    void add(double x);

    std::size_t count() const { return n_; }
    bool empty() const { return n_ == 0; }
    double mean() const;
    /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
    double variance() const;
    double stddev() const;
    double min() const;
    double max() const;
    double sum() const { return sum_; }

    /// Merge another accumulator into this one (parallel Welford).
    void merge(const Accumulator& other);

private:
    std::size_t n_{0};
    double mean_{0.0};
    double m2_{0.0};
    double min_{0.0};
    double max_{0.0};
    double sum_{0.0};
};

/// Keeps all samples; supports percentiles and normal-approx CIs.
class SampleSet {
public:
    void add(double x);
    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    double mean() const;
    double stddev() const;
    double min() const;
    double max() const;

    /// q in [0,1]; linear interpolation between order statistics.
    double percentile(double q) const;
    double median() const { return percentile(0.5); }

    /// Half-width of the normal-approximation 95% confidence interval.
    double ci95_halfwidth() const;

    const std::vector<double>& samples() const { return samples_; }

private:
    std::vector<double> samples_;
    mutable std::vector<double> sorted_;
    mutable bool sorted_valid_{false};
    void ensure_sorted() const;
};

/// Ordinary least squares over (x, y) pairs — the benches use it to
/// verify claims like Fig. 4-9's "energy increases almost linearly with
/// p" quantitatively (slope, intercept, r^2).
struct LinearFit {
    double slope{0.0};
    double intercept{0.0};
    double r_squared{0.0};
};

class Regression {
public:
    void add(double x, double y);
    std::size_t count() const { return n_; }

    /// Requires >= 2 points with non-degenerate x spread.
    LinearFit fit() const;
    /// Pearson correlation coefficient (0 when degenerate).
    double correlation() const;

private:
    std::size_t n_{0};
    double sx_{0.0}, sy_{0.0}, sxx_{0.0}, syy_{0.0}, sxy_{0.0};
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge buckets so nothing is silently lost.
class Histogram {
public:
    Histogram(double lo, double hi, std::size_t buckets);

    void add(double x);
    std::size_t bucket_count() const { return counts_.size(); }
    std::size_t count(std::size_t bucket) const;
    std::size_t total() const { return total_; }
    /// Midpoint of bucket i.
    double bucket_center(std::size_t i) const;

private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_{0};
};

} // namespace snoc
