// The post-mortem notification hook: the one seam between the layers
// that *detect* a fatal condition (contract checks in common, the
// invariant auditor in check, the DeadlockSentinel in router) and the
// layer that can *preserve evidence* about it (the telemetry flight
// recorder, which sits far above all of them).
//
// A detector calls `postmortem::notify(reason, detail)` immediately
// before it records/throws its violation.  If the current thread has a
// handler installed (a ScopedHandler, normally owned by a telemetry
// PostmortemDumper wrapping a FlightRecorder), the handler runs right
// there — while the evidence still exists — and typically dumps a
// `*.postmortem.jsonl` bundle.  With no handler armed, notify() is a
// cheap no-op, so detectors may call it unconditionally.
//
// The handler is thread-local on purpose: Monte-Carlo trials run
// concurrently on the shared ThreadPool and each trial owns its own
// recorder, so a violation on one worker must never dump a sibling
// trial's events.  notify() also re-enters safely: the handler is
// disarmed while it runs, so a contract failure *inside* a dump cannot
// recurse.
#pragma once

#include <functional>
#include <string>

namespace snoc::postmortem {

/// What the detector knows at the moment of failure.
struct Context {
    const char* reason; ///< short machine-readable cause, e.g. "invariant".
    std::string detail; ///< pre-formatted offending values / message.
};

using Handler = std::function<void(const Context&)>;

/// Install `handler` as this thread's post-mortem handler for the scope's
/// lifetime; the previous handler (normally none) is restored on exit.
class ScopedHandler {
public:
    explicit ScopedHandler(Handler handler);
    ~ScopedHandler();
    ScopedHandler(const ScopedHandler&) = delete;
    ScopedHandler& operator=(const ScopedHandler&) = delete;

private:
    Handler previous_;
};

/// True when the current thread has a handler armed (and not already
/// running) — lets a detector skip building an expensive `detail` string.
bool armed();

/// Invoke the current thread's handler, if any.  No-op when none is
/// installed or when called from inside a running handler.
void notify(const char* reason, const std::string& detail);

} // namespace snoc::postmortem
