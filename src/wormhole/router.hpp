// Flit-level wormhole-routed mesh — the conventional NoC the thesis
// declines to build ("the cost of implementing adaptive dynamic routing
// for the on-chip networks is prohibitive because of the need for very
// large buffers, lookup tables and complex shortest-path algorithms",
// Ch. 1, after Ni & McKinley [35]).  We build it anyway, as the strongest
// deterministic baseline:
//
//   * packets are segmented into flits (head / body / tail);
//   * dimension-ordered (XY) routing, which is deadlock-free on a mesh;
//   * per-input virtual channels with credit-based flow control;
//   * one switch traversal per output port per cycle, round-robin
//     arbitration between competing VCs.
//
// The simulator is cycle-driven (a cycle here is a link cycle, not a
// gossip round).  It reports per-packet latency, throughput and what
// happens when a router dies mid-worm: the worm blocks and everything
// behind it backs up — the failure mode stochastic communication avoids.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "noc/topology.hpp"
#include "router/arbiter.hpp"
#include "router/policy.hpp"
#include "sim/trace.hpp"

namespace snoc::wormhole {

/// Routing function.  Xy is fully deterministic; WestFirst is the classic
/// Glass-Ni partially-adaptive turn model: all westward hops happen first
/// (turns *into* west are prohibited — deadlock-free), and the remaining
/// minimal directions are chosen adaptively, which lets a worm steer
/// around congestion or a dead router when a productive alternative exists.
/// Both are the shared routing-policy stage of the layered router core
/// (router/policy.hpp); this enum keeps the wormhole-facing vocabulary.
enum class Routing : std::uint8_t { Xy, WestFirst };

constexpr const char* to_string(Routing r) {
    switch (r) {
    case Routing::Xy: return "xy";
    case Routing::WestFirst: return "west-first";
    }
    return "?";
}

constexpr router::PolicyKind policy_kind(Routing r) {
    return r == Routing::Xy ? router::PolicyKind::DimensionOrder
                            : router::PolicyKind::WestFirst;
}

struct Config {
    std::size_t vcs_per_port{2};      ///< virtual channels per input port.
    std::size_t vc_buffer_flits{4};   ///< buffer depth per VC (credits).
    std::size_t flits_per_packet{5};  ///< 1 head + body + 1 tail.
    Routing routing{Routing::Xy};

    void validate() const;
};

struct Flit {
    enum class Kind : std::uint8_t { Head, Body, Tail };
    Kind kind{Kind::Body};
    std::uint32_t packet{0};  ///< packet id.
    TileId destination{0};    ///< carried by every flit for simplicity.
};

struct PacketRecord {
    std::uint32_t id{0};
    TileId source{0};
    TileId destination{0};
    std::size_t injected_cycle{0};
    std::optional<std::size_t> delivered_cycle;
};

/// The whole mesh of routers, simulated cycle by cycle.
class Network {
public:
    Network(std::size_t width, std::size_t height, Config config);

    /// Queue a packet for injection at `source`'s network interface in the
    /// current cycle (actual injection occurs as VCs free up).
    std::uint32_t inject(TileId source, TileId destination);

    /// Kill a router: flits routed through it stall forever (wormhole's
    /// characteristic failure).
    void crash_router(TileId tile);

    /// Advance one link cycle.
    void step();
    void run(std::size_t cycles);

    std::size_t cycle() const { return cycle_; }
    std::size_t delivered() const { return delivered_; }
    /// Total link traversals performed by flits (ejections excluded) —
    /// the wire-traffic measure the unified RunReport's energy model uses.
    std::size_t flit_hops() const { return flit_hops_; }
    std::size_t injected() const { return records_.size(); }
    /// Packets injected but not delivered (in flight or blocked).
    std::size_t outstanding() const { return records_.size() - delivered_; }
    const std::vector<PacketRecord>& records() const { return records_; }
    /// Latency samples (cycles, injection to tail delivery).
    const SampleSet& latencies() const { return latencies_; }
    const Topology& topology() const { return topo_; }

    /// Attach a flight recorder (not owned; nullptr detaches).  Rounds are
    /// link cycles; message ids are {source, packet id}; one Transmitted
    /// per flit hop, one Delivered when the tail flit ejects.
    void set_trace_sink(TraceSink* sink) { trace_ = sink; }

private:
    struct VirtualChannel {
        std::deque<Flit> buffer;
        // Route state: locked output port + output VC while a worm passes.
        std::optional<std::size_t> out_port;
        std::optional<std::size_t> out_vc;
        // Exclusive ownership: the worm currently allocated to write into
        // this VC.  Set when an upstream head (or the local injector)
        // claims the VC, cleared when that worm's tail flit departs —
        // flits of two worms never interleave in one buffer.
        std::optional<std::uint32_t> reserved_for;
    };

    struct Router {
        // in_vcs[port][vc]; port 0..3 = links (index into in_links), the
        // last port is the local injection port.
        std::vector<std::vector<VirtualChannel>> in_vcs;
        bool alive{true};
    };

    std::size_t port_count(TileId t) const { return topo_.neighbours(t).size() + 1; }
    std::size_t local_port(TileId t) const { return topo_.neighbours(t).size(); }
    /// Candidate output ports under the configured routing policy, in
    /// preference order; empty when t == dst.
    std::vector<std::size_t> route_candidates(TileId t, TileId dst) const;
    /// Neighbour on the given output port.
    TileId port_neighbour(TileId t, std::size_t port) const;
    /// Credits available on the (neighbour, its input port from t, vc).
    std::size_t downstream_space(TileId t, std::size_t out_port, std::size_t vc) const;

    Topology topo_;
    Config config_;
    std::unique_ptr<const router::RoutingPolicy> policy_;
    std::vector<Router> routers_;
    std::size_t cycle_{0};
    std::uint32_t next_packet_{0};
    std::size_t delivered_{0};
    std::size_t flit_hops_{0};
    std::vector<PacketRecord> records_;
    SampleSet latencies_;
    // Pending injections per tile (packets waiting for a free local VC).
    std::vector<std::deque<std::uint32_t>> injection_queues_;
    // Per-tile flit-generation progress for the worm under injection.
    struct InjectState {
        std::optional<std::uint32_t> packet;
        std::size_t generated{0};
        std::size_t vc{0};
    };
    std::vector<InjectState> inject_state_;
    // Rotating-priority arbiter per (tile, output port incl. eject) over
    // the (input port, VC) slots — the shared arbitration stage.
    std::vector<std::vector<router::RotatingArbiter>> arbiters_;
    TraceSink* trace_{nullptr};

    void trace_event(TraceEventKind kind, TileId tile, TileId peer,
                     std::uint32_t packet);
};

/// Offered-load experiment: Bernoulli packet injection at every tile with
/// uniformly random destinations; reports average latency and accepted
/// throughput (flits/tile/cycle).  The classic saturation-curve harness.
struct LoadPoint {
    double offered_load{0.0};   ///< injection probability per tile per cycle.
    double avg_latency{0.0};    ///< cycles (delivered packets only).
    double throughput{0.0};     ///< delivered flits / tile / cycle.
    double delivered_fraction{0.0};
};

LoadPoint run_uniform_load(std::size_t side, const Config& config, double offered_load,
                           std::size_t warmup_cycles, std::size_t measure_cycles,
                           std::uint64_t seed);

} // namespace snoc::wormhole
