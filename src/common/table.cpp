#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/expect.hpp"

namespace snoc {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
    SNOC_EXPECT(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
    SNOC_EXPECT(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

const std::vector<std::string>& Table::row(std::size_t i) const {
    SNOC_EXPECT(i < rows_.size());
    return rows_[i];
}

void Table::print(std::ostream& os) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto rule = [&] {
        os << '+';
        for (std::size_t w : widths) {
            for (std::size_t i = 0; i < w + 2; ++i) os << '-';
            os << '+';
        }
        os << '\n';
    };
    auto line = [&](const std::vector<std::string>& cells) {
        os << '|';
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << ' ' << cells[c];
            for (std::size_t i = cells[c].size(); i < widths[c]; ++i) os << ' ';
            os << " |";
        }
        os << '\n';
    };

    rule();
    line(headers_);
    rule();
    for (const auto& row : rows_) line(row);
    rule();
}

namespace {
std::string csv_escape(const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"') out += "\"\"";
        else out += ch;
    }
    out += '"';
    return out;
}
} // namespace

void Table::print_csv(std::ostream& os) const {
    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c) os << ',';
            os << csv_escape(cells[c]);
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto& row : rows_) emit(row);
}

namespace {
std::string json_escape(const std::string& cell) {
    std::string out;
    out.reserve(cell.size() + 2);
    for (char ch : cell) {
        switch (ch) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", ch);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}
} // namespace

void Table::print_json(std::ostream& os) const {
    os << "[";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        os << (r ? ",\n " : "\n ") << '{';
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            if (c) os << ", ";
            os << '"' << json_escape(headers_[c]) << "\": \""
               << json_escape(rows_[r][c]) << '"';
        }
        os << '}';
    }
    os << "\n]\n";
}

std::string format_number(double value, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, value);
    std::string s(buf);
    if (s.find('.') != std::string::npos) {
        while (!s.empty() && s.back() == '0') s.pop_back();
        if (!s.empty() && s.back() == '.') s.pop_back();
    }
    return s;
}

std::string format_sci(double value, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*e", precision, value);
    return {buf};
}

} // namespace snoc
