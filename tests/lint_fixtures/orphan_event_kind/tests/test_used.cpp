#include "sim/trace.hpp"
int main() { return static_cast<int>(snoc::TraceEventKind::Used); }
