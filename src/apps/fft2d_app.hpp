// Sec. 4.1.2 — the parallel 2-D FFT mapped onto a 4x4 NoC (Fig. 4-3).
//
// The root tile holds the input image, performs the 2-D decimation split,
// and broadcasts each quadrant as a task rumor.  Worker tiles each own one
// quadrant task: they compute the (N/2 x N/2) 2-D FFT locally and gossip
// the result back.  The root executes the combining butterfly, completing
// the full transform.  Workers can be duplicated exactly like the pi
// slaves: replicas emit result messages with a shared task-level id.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "apps/fft.hpp"
#include "core/engine.hpp"
#include "core/ip_core.hpp"
#include "noc/traffic.hpp"

namespace snoc::apps {

inline constexpr std::uint32_t kFftWorkTag = 0x46465457;   // 'FFTW'
inline constexpr std::uint32_t kFftResultTag = 0x46465452; // 'FFTR'

/// Payload codec for images (float32 re/im pairs + dimensions + task id).
std::vector<std::byte> encode_image_payload(std::uint32_t task, const ComplexImage& img);
std::pair<std::uint32_t, ComplexImage> decode_image_payload(
    std::span<const std::byte> payload);

class FftRootIp final : public IpCore {
public:
    explicit FftRootIp(ComplexImage input);

    void on_start(TileContext& ctx) override;
    void on_message(const Message& message, TileContext& ctx) override;

    bool done() const { return done_; }
    const ComplexImage& spectrum() const;
    std::optional<Round> completion_round() const { return completion_round_; }

private:
    ComplexImage input_;
    std::array<ComplexImage, 4> results_{};
    std::array<bool, 4> have_{};
    std::size_t received_{0};
    bool done_{false};
    ComplexImage spectrum_{};
    std::optional<Round> completion_round_;
};

class FftWorkerIp final : public IpCore {
public:
    FftWorkerIp(std::uint32_t task, TileId root_tile);

    void on_message(const Message& message, TileContext& ctx) override;

private:
    std::uint32_t task_;
    TileId root_;
    bool answered_{false};
};

struct FftDeployment {
    TileId root_tile{5};                      ///< tile 6 in thesis numbering.
    std::array<TileId, 4> worker_tiles{1, 6, 9, 14};
    std::array<TileId, 4> replica_tiles{3, 4, 11, 12};
    bool duplicate_workers{false};
    std::size_t image_size{16};               ///< N (power of two).
};

/// Attach root + workers to a network on a (at least) 4x4 mesh; the input
/// image is a deterministic synthetic pattern seeded by `image_seed`.
FftRootIp& deploy_fft2d(GossipNetwork& net, const FftDeployment& deployment,
                        std::uint64_t image_seed = 1);

/// Deterministic synthetic test image (mixed sinusoid + impulse pattern).
ComplexImage make_test_image(std::size_t n, std::uint64_t seed);

/// Backend-independent trace for the bus / XY baselines.
TrafficTrace fft2d_trace(const FftDeployment& deployment);

} // namespace snoc::apps
