#include "bus/broadcast_tree.hpp"

#include <queue>

#include "common/expect.hpp"

namespace snoc {

std::vector<TileId> spanning_tree(const Topology& topo, TileId root) {
    SNOC_EXPECT(root < topo.node_count());
    std::vector<TileId> parent(topo.node_count(), kNoTile);
    std::queue<TileId> frontier;
    parent[root] = root;
    frontier.push(root);
    while (!frontier.empty()) {
        const TileId cur = frontier.front();
        frontier.pop();
        for (TileId next : topo.neighbours(cur)) {
            if (parent[next] != kNoTile) continue;
            parent[next] = cur;
            frontier.push(next);
        }
    }
    return parent;
}

TreeBroadcastResult tree_broadcast(const Topology& topo, TileId root,
                                   const CrashState& crashes) {
    SNOC_EXPECT(crashes.dead_tiles.size() == topo.node_count());
    const auto parent = spanning_tree(topo, root);
    TreeBroadcastResult result;
    if (crashes.dead_tiles[root]) return result;

    // BFS down the tree, pruning at dead tiles.
    std::vector<std::size_t> depth(topo.node_count(), 0);
    std::vector<bool> reached(topo.node_count(), false);
    reached[root] = true;
    result.reached = 1;
    std::queue<TileId> frontier;
    frontier.push(root);
    while (!frontier.empty()) {
        const TileId cur = frontier.front();
        frontier.pop();
        for (TileId next = 0; next < topo.node_count(); ++next) {
            if (parent[next] != cur || next == cur) continue;
            ++result.transmissions; // the parent transmits regardless
            if (crashes.dead_tiles[next]) continue; // subtree lost
            reached[next] = true;
            ++result.reached;
            depth[next] = depth[cur] + 1;
            result.depth = std::max(result.depth, depth[next]);
            frontier.push(next);
        }
    }
    return result;
}

} // namespace snoc
