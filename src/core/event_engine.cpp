#include "core/event_engine.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <functional>
#include <optional>

#include "common/annotations.hpp"
#include "common/expect.hpp"
#include "common/parallel.hpp"
#include "noc/fec.hpp"
#include "noc/packet.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/prof.hpp"

namespace snoc {

EventEngine::EventEngine(GossipNetwork& net, std::size_t shards)
    : net_(net), requested_shards_(shards == 0 ? 1 : shards) {}

std::size_t EventEngine::shard_of(TileId t) const {
    // Contiguous ascending strips: shard s owns { t : floor(t*S/n) == s }.
    return static_cast<std::size_t>(t) * shards_.size() / net_.tiles_.size();
}

std::size_t EventEngine::shard_merge_index(std::size_t s) const {
    return s; // canonical merge order: ascending strips. [mutation-point:shard-order]
}

void EventEngine::bootstrap() {
    if (bootstrapped_) return;
    bootstrapped_ = true;
    const std::size_t n = net_.tiles_.size();
    SNOC_EXPECT(n > 0);
    shards_.resize(std::min(requested_shards_, n));
    for (TileId t = 0; t < n; ++t) {
        const auto& buffer = net_.tiles_[t].send_buffer;
        // The lockstep age fold sums cumulative eviction counters over
        // every tile, dead or alive; match its baseline exactly.
        evictions_seen_ += buffer.overflow_drops();
        if (net_.crash_state_.dead_tiles[t]) continue;
        Shard& sh = shards_[shard_of(t)];
        if (net_.tiles_[t].core) sh.cores.push_back(t);
        if (!buffer.empty()) sh.active.push_back(t);
        // known() is a superset of the held messages (ids survive ageing
        // and eviction) — exactly the knows() predicate tiles_knowing
        // counts.  Iteration order is irrelevant for a counter map.
        for (const MessageId& id : buffer.known()) ++knowers_[id];
    }
    evictions_folded_ = net_.sendbuf_overflow_snapshot_;
    bool scaled = false;
    for (double s : net_.clock_scale_)
        if (s > 1.0) scaled = true;
    dense_clocks_ = net_.injector_.scenario().sigma_synchr > 0.0 || scaled;
    elapsed_accum_ = net_.clocks_.elapsed();
}

// ---------------------------------------------------------------------------
// Shard fan-out.  run_trials() is unsuitable here: its completion barrier
// waits for every *helper job* to execute, and an engine sharding inside a
// trial that is itself running on a pool worker could then deadlock (all
// workers blocked in barriers, helper jobs stuck behind them in the
// queue).  This batch instead counts *shards*: the caller participates,
// can finish every shard alone if the pool is saturated, and late-waking
// helpers find the counter exhausted and exit without running anything.
namespace {
struct ShardBatch {
    ShardBatch(std::function<void(std::size_t)> f, std::size_t n)
        : fn(std::move(f)), total(n) {}

    const std::function<void(std::size_t)> fn; ///< immutable after construction.
    const std::size_t total;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    Mutex mutex;
    CondVar cv;
    std::exception_ptr error SNOC_GUARDED_BY(mutex);

    void work() {
        for (;;) {
            const std::size_t s =
                next.fetch_add(1, std::memory_order_relaxed); // relaxed[claim-counter]
            if (s >= total) return;
            try {
                fn(s);
            } catch (...) {
                LockGuard lock(mutex);
                if (!error) error = std::current_exception();
            }
            if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == total) {
                LockGuard lock(mutex);
                cv.notify_all();
            }
        }
    }
};
} // namespace

void EventEngine::run_sharded(const std::function<void(std::size_t)>& fn) {
    const std::size_t total = shards_.size();
    if (total == 1) {
        fn(0);
        return;
    }
    auto batch = std::make_shared<ShardBatch>(fn, total);
    const std::size_t helpers = std::min(total - 1, ThreadPool::shared().size());
    for (std::size_t h = 0; h < helpers; ++h)
        ThreadPool::shared().submit([batch] { batch->work(); });
    batch->work();
    {
        UniqueLock lock(batch->mutex);
        while (batch->done.load(std::memory_order_acquire) != batch->total)
            batch->cv.wait(lock);
    }
    // All error writes happen strictly before the final `done` increment,
    // so this post-barrier read needs the lock only to satisfy the
    // guarded_by contract (it is uncontended by construction).
    std::exception_ptr error;
    {
        LockGuard lock(batch->mutex);
        error = batch->error;
    }
    if (error) std::rethrow_exception(error);
}

GossipNetwork::StepSink EventEngine::shard_sink(Shard& sh) {
    GossipNetwork::StepSink sink;
    sink.metrics = &sh.delta;
    sink.trace_buffer = &sh.events;
    sink.tracing = net_.trace_ != nullptr;
    sink.unicasts = &sh.unicasts;
    sink.inserted = &sh.inserted;
    sink.activated = &sh.newly_active;
    return sink;
}

void EventEngine::merge_delta(NetworkMetrics& delta) {
    NetworkMetrics& m = net_.metrics_;
    m.packets_sent += delta.packets_sent;
    m.bits_sent += delta.bits_sent;
    m.messages_created += delta.messages_created;
    m.deliveries += delta.deliveries;
    m.duplicates_ignored += delta.duplicates_ignored;
    m.crc_drops += delta.crc_drops;
    m.upsets_undetected += delta.upsets_undetected;
    m.overflow_drops += delta.overflow_drops;
    m.ttl_expired += delta.ttl_expired;
    m.crash_drops += delta.crash_drops;
    m.port_overflow_drops += delta.port_overflow_drops;
    m.packets_accepted += delta.packets_accepted;
    m.skew_deferrals += delta.skew_deferrals;
    m.fec_corrected += delta.fec_corrected;
    m.fec_uncorrectable += delta.fec_uncorrectable;
    delta = NetworkMetrics{};
}

void EventEngine::merge_shard_effects() {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        Shard& sh = shards_[shard_merge_index(i)];
        merge_delta(sh.delta);
        if (net_.trace_)
            for (const TraceEvent& ev : sh.events) net_.trace_->record(ev);
        sh.events.clear();
        for (const MessageId& id : sh.unicasts) net_.delivered_unicasts_.insert(id);
        sh.unicasts.clear();
        for (const MessageId& id : sh.inserted) ++knowers_[id];
        sh.inserted.clear();
        evictions_seen_ += sh.evictions;
        sh.evictions = 0;
    }
}

void EventEngine::merge_activations() {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        Shard& sh = shards_[shard_merge_index(i)];
        if (sh.newly_active.empty()) continue;
        // Activations arrive in ascending tile order (deliveries are
        // processed sorted by destination; cores iterate ascending), and
        // a 0 -> 1 transition means the tile was not on the list — so a
        // single in-place merge keeps `active` sorted and unique.
        const auto middle = static_cast<std::ptrdiff_t>(sh.active.size());
        sh.active.insert(sh.active.end(), sh.newly_active.begin(),
                         sh.newly_active.end());
        std::inplace_merge(sh.active.begin(), sh.active.begin() + middle,
                           sh.active.end());
        sh.newly_active.clear();
    }
}

// ---------------------------------------------------------------------------
// Phases.  Each mirrors its lockstep counterpart exactly; comments here
// only explain what is hoisted serial vs. fanned out (see the header and
// DESIGN.md §12 for the equivalence argument).

void EventEngine::receive_phase() {
    auto& bucket = net_.in_flight_[net_.round_ % GossipNetwork::kInFlightRing];
    if (bucket.empty()) return;
    net_.arrivals_scratch_.clear();
    std::swap(net_.arrivals_scratch_, bucket);
    backlog_touched_.clear();
    // Serial pass 1, in bucket order: everything that consumes the global
    // overflow stream or touches cross-shard structures (the ring, the
    // backlog counters) — crash drops, slow-clock deferrals, forced and
    // port-capacity overflows.  Survivors are routed to their owning
    // shard tagged with their bucket position.
    std::uint32_t seq = 0;
    for (auto& [dest, arrival] : net_.arrivals_scratch_) {
        ++seq;
        if (net_.crash_state_.dead_tiles[dest]) {
            ++net_.metrics_.crash_drops;
            net_.trace(TraceEventKind::CrashDrop, dest);
            continue;
        }
        if (!net_.tile_active_this_round(dest)) {
            net_.in_flight_[(net_.round_ + 1) % GossipNetwork::kInFlightRing]
                .emplace_back(dest, std::move(arrival));
            continue;
        }
        auto& tile = net_.tiles_[dest];
        if (net_.injector_.overflow_drop()) {
            ++net_.metrics_.overflow_drops;
            ++net_.metrics_.port_overflow_drops;
            net_.trace(TraceEventKind::OverflowDrop, dest);
            continue;
        }
        if (tile.inbox_backlog >= net_.config_.in_buffer_capacity) {
            ++net_.metrics_.overflow_drops;
            ++net_.metrics_.port_overflow_drops;
            net_.trace(TraceEventKind::OverflowDrop, dest);
            continue;
        }
        ++tile.inbox_backlog;
        backlog_touched_.push_back(dest);
        shards_[shard_of(dest)].arrivals.push_back(
            Work{dest, seq, std::move(arrival)});
    }
    // Parallel pass 2: decode (FEC strip + CRC — the expensive part) and
    // deliver.  Sorting by (destination, bucket position) keeps per-tile
    // arrival order identical to lockstep and makes the concatenated
    // shard output independent of the shard count.
    run_sharded([this](std::size_t s) {
        Shard& sh = shards_[s];
        std::sort(sh.arrivals.begin(), sh.arrivals.end(),
                  [](const Work& a, const Work& b) {
                      return a.dest != b.dest ? a.dest < b.dest : a.seq < b.seq;
                  });
        GossipNetwork::StepSink sink = shard_sink(sh);
        for (Work& w : sh.arrivals) {
            std::optional<Message> decoded;
            bool corrected_this_packet = false;
            if (net_.config_.link_protection == LinkProtection::SecdedCorrect) {
                auto recovered = fec::recover(*w.arrival.wire);
                if (!recovered.ok) {
                    ++sink.metrics->fec_uncorrectable;
                    net_.sink_trace(sink, TraceEventKind::FecUncorrectable, w.dest);
                    continue;
                }
                sink.metrics->fec_corrected += recovered.corrected_words;
                corrected_this_packet = recovered.corrected_words > 0;
                decoded = Packet::decode_wire(recovered.payload);
            } else {
                decoded = Packet::decode_wire(*w.arrival.wire);
            }
            if (!decoded) {
                ++sink.metrics->crc_drops;
                net_.sink_trace(sink, TraceEventKind::CrcDrop, w.dest);
                continue;
            }
            if (w.arrival.corrupted && !corrected_this_packet)
                ++sink.metrics->upsets_undetected;
            net_.deliver_and_insert(w.dest, std::move(*decoded), sink);
        }
        sh.arrivals.clear();
        sh.evictions += sink.evictions;
    });
    merge_shard_effects();
    merge_activations();
    for (TileId t : backlog_touched_) net_.tiles_[t].inbox_backlog = 0;
}

void EventEngine::age_phase() {
    run_sharded([this](std::size_t s) {
        Shard& sh = shards_[s];
        const bool tracing = net_.trace_ != nullptr;
        std::vector<MessageId> expired;
        std::size_t w = 0;
        for (std::size_t r = 0; r < sh.active.size(); ++r) {
            const TileId t = sh.active[r];
            auto& buffer = net_.tiles_[t].send_buffer;
            if (net_.tile_active_this_round(t)) {
                expired.clear();
                sh.delta.ttl_expired +=
                    buffer.age_and_collect(tracing ? &expired : nullptr);
                for (const MessageId& id : expired) {
                    TraceEvent ev;
                    ev.round = net_.round_;
                    ev.kind = TraceEventKind::TtlExpired;
                    ev.tile = t;
                    ev.message = id;
                    sh.events.push_back(ev);
                }
            }
            // Ageing is the only way a buffer empties; drop the tile from
            // the active list the moment it holds nothing to forward.
            if (!buffer.empty()) sh.active[w++] = t;
        }
        sh.active.resize(w);
    });
    merge_shard_effects();
    // The lockstep fold adds this round's eviction delta (cumulative
    // counters minus the last snapshot) — deliberately stale by the part
    // of the round that runs after ageing.  evictions_seen_ advances at
    // the receive/compute merges, so the staleness matches exactly.
    net_.metrics_.overflow_drops += evictions_seen_ - evictions_folded_;
    evictions_folded_ = evictions_seen_;
}

void EventEngine::compute_phase() {
    run_sharded([this](std::size_t s) {
        Shard& sh = shards_[s];
        GossipNetwork::StepSink sink = shard_sink(sh);
        for (const TileId t : sh.cores) {
            if (!net_.tile_active_this_round(t)) continue;
            net_.core_round(t, sink);
        }
        sh.evictions += sink.evictions;
    });
    merge_shard_effects();
    merge_activations();
}

void EventEngine::forward_phase() {
    // Pass A (parallel): per-tile port gating and encoding.  Only the
    // tile's own stream is consumed, in the lockstep per-tile order, and
    // the encode-once wire image is built off the hot serial path.
    run_sharded([this](std::size_t s) {
        Shard& sh = shards_[s];
        for (const TileId t : sh.active) {
            if (!net_.tile_active_this_round(t)) continue;
            auto& tile = net_.tiles_[t];
            const auto& nbrs = net_.topology_.neighbours(t);
            const auto& links = net_.topology_.out_links(t);
            std::size_t budget = net_.forward_capacity_[t];
            const auto& msgs = tile.send_buffer.messages();
            const std::size_t offset =
                (budget >= msgs.size())
                    ? 0
                    : static_cast<std::size_t>(net_.round_) % msgs.size();
            for (std::size_t mi = 0; mi < msgs.size(); ++mi) {
                const Message& m = msgs[(mi + offset) % msgs.size()];
                if (budget == 0) break;
                if (net_.config_.stop_spread_on_delivery &&
                    net_.delivered_unicasts_.contains(m.id))
                    continue;
                std::shared_ptr<const std::vector<std::byte>> wire;
                for (std::size_t i = 0; i < nbrs.size() && budget > 0; ++i) {
                    if (!net_.forward_rng_[t].bernoulli(net_.config_.forward_p))
                        continue;
                    if (net_.crash_state_.dead_links[links[i]]) continue;
                    if (net_.route_filter_[t] && !net_.route_filter_[t](m, nbrs[i]))
                        continue;
                    if (!wire || net_.config_.reference_encode_path)
                        wire = net_.encode_message(m);
                    sh.plans.push_back(Plan{t, nbrs[i], links[i], m.id, wire});
                    --budget;
                }
            }
        }
    });
    // Pass B (serial, canonical order): replay the planned transmissions
    // through enqueue_transmission so upset draws, skew checks, ring
    // appends, link counters and traces happen in the exact lockstep
    // sequence — ascending strips concatenate to ascending tiles.
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        Shard& sh = shards_[shard_merge_index(i)];
        for (Plan& p : sh.plans)
            net_.enqueue_transmission(p.from, p.to, p.link, p.id, std::move(p.wire));
        sh.plans.clear();
    }
}

void EventEngine::clock_phase() {
    if (dense_clocks_) {
        net_.advance_clocks();
        return;
    }
    // No jitter draws owed and no clock-scale islands: every live clock
    // advances by exactly t_r, skew stays identically zero, and elapsed
    // time is the same addition sequence the lockstep loop performs
    // (accumulated, not multiplied, for bitwise-equal doubles).
    elapsed_accum_ += net_.clocks_.t_r();
}

void EventEngine::step() {
    net_.packets_this_round_ = 0;
    {
        SNOC_PROF("event/receive");
        receive_phase();
    }
    {
        SNOC_PROF("event/age");
        age_phase();
    }
    {
        SNOC_PROF("event/compute");
        compute_phase();
    }
    {
        SNOC_PROF("event/forward");
        forward_phase();
    }
    clock_phase();
    net_.metrics_.packets_per_round.push_back(net_.packets_this_round_);
    ++net_.round_;
    net_.metrics_.rounds = net_.round_;
    MetricsRegistry::global().inc(MetricId::EventEngineRoundsTotal);
    SNOC_CHECK(2, net_.ledger().balanced());
}

// ---------------------------------------------------------------------------

bool EventEngine::no_active_tiles() const {
    for (const Shard& sh : shards_)
        if (!sh.active.empty()) return false;
    return true;
}

std::size_t EventEngine::tiles_knowing(const MessageId& id) const {
    const auto it = knowers_.find(id);
    return it == knowers_.end() ? 0 : it->second;
}

double EventEngine::elapsed_seconds() const {
    return dense_clocks_ ? net_.clocks_.elapsed() : elapsed_accum_;
}

bool EventEngine::active_set_consistent() const {
    if (!bootstrapped_) return true;
    std::size_t listed = 0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        const auto& active = shards_[s].active;
        for (std::size_t i = 0; i < active.size(); ++i) {
            const TileId t = active[i];
            if (i > 0 && active[i - 1] >= t) return false; // sorted, unique
            if (shard_of(t) != s) return false;            // owned strip
            if (net_.crash_state_.dead_tiles[t]) return false;
            if (net_.tiles_[t].send_buffer.empty()) return false;
        }
        listed += active.size();
    }
    // Completeness: every live tile with a non-empty buffer is listed.
    std::size_t expected = 0;
    for (TileId t = 0; t < net_.tiles_.size(); ++t)
        if (!net_.crash_state_.dead_tiles[t] &&
            !net_.tiles_[t].send_buffer.empty())
            ++expected;
    return listed == expected;
}

} // namespace snoc
