// Accounting stage of the layered router core: the one place packet
// backends turn simulation happenings into NetworkMetrics counters and
// TraceEvents.  Every packet-switched backend used to hand-roll both —
// a private trace_event() helper and ad-hoc counter arithmetic — which
// is exactly how counters drift from the event stream.  Here each
// happening updates the counters and fires the event in one call, so
// the InvariantAuditor's record-vs-counter and histogram checks hold by
// construction.
#pragma once

#include <cstddef>

#include "common/types.hpp"
#include "core/metrics.hpp"
#include "noc/topology.hpp"
#include "sim/trace.hpp"

namespace snoc::router {

/// Fire one trace event at an attached sink (no-op when detached) — the
/// emission idiom every backend used to hand-roll privately.
inline void emit(TraceSink* sink, Round round, TraceEventKind kind, TileId tile,
                 TileId peer, MessageId id) {
    if (!sink) return;
    TraceEvent event;
    event.round = round;
    event.kind = kind;
    event.tile = tile;
    event.peer = peer;
    event.message = id;
    sink->record(event);
}

/// Shared metrics + trace bookkeeping for packet backends.  Maintains the
/// full NetworkMetrics taxonomy the auditor's check_metrics law covers:
/// the per-round, per-tile and per-link histograms always sum to the
/// matching global counters.
class Accounting {
public:
    Accounting() = default;

    /// Size the per-tile / per-link histograms for `topo`.
    void attach(const Topology& topo);

    void set_trace_sink(TraceSink* sink) { sink_ = sink; }
    TraceSink* trace_sink() const { return sink_; }

    const NetworkMetrics& metrics() const { return metrics_; }

    /// Record that the clock reached `round` (metrics.rounds is the
    /// furthest round seen; events may not cover every round).
    void advance_to(Round round);

    void created(Round round, TileId tile, MessageId id);
    void transmitted(Round round, TileId from, TileId to, LinkId link,
                     MessageId id, std::size_t bits);
    void delivered(Round round, TileId tile, MessageId id);
    void crash_drop(Round round, TileId tile, MessageId id);
    void ttl_expired(Round round, TileId tile, MessageId id);

    /// Push the counters accumulated since the previous call into the
    /// process-wide MetricsRegistry (router_* namespace).  Called once
    /// per router cycle, not per packet, so the live registry stays a
    /// cycle fresh at the cost of five relaxed atomic adds per step.
    void publish_registry();

private:
    struct Published {
        std::size_t created{0};
        std::size_t transmitted{0};
        std::size_t delivered{0};
        std::size_t crash_drops{0};
        std::size_t ttl_expired{0};
    };

    NetworkMetrics metrics_;
    TraceSink* sink_{nullptr};
    Published published_; ///< high-water marks already in the registry.
};

} // namespace snoc::router
