file(REMOVE_RECURSE
  "libsnoc_wormhole.a"
)
