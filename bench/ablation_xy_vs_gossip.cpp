// Ablation (ours): deterministic XY routing vs. stochastic communication
// under tile crash failures — quantifying the Ch. 1 claim that static
// routing "would fail if even a single tile or a link on the path is
// faulty" while gossip degrades gracefully.
#include <iostream>

#include "apps/trace_app.hpp"
#include "bench_util.hpp"
#include "bus/xy_router.hpp"

int main(int argc, char** argv) {
    using namespace snoc;
    const bool csv = bench::want_csv(argc, argv);
    const auto mesh = Topology::mesh(5, 5);
    const std::size_t kRepeats = bench::want_repeats(argc, argv, 20);
    const std::size_t kJobs = bench::want_jobs(argc, argv);

    // Corner-to-corner traffic: long routes, maximal crash exposure.
    TrafficTrace trace;
    TrafficPhase phase;
    phase.messages.push_back({0, 24, 256});
    phase.messages.push_back({4, 20, 256});
    phase.messages.push_back({20, 4, 256});
    phase.messages.push_back({24, 0, 256});
    trace.phases.push_back(phase);
    const std::vector<TileId> endpoints{0, 4, 20, 24};

    Table table({"p_tiles", "XY delivery [%]", "gossip delivery [%]",
                 "gossip completion [%]"});
    struct Trial {
        std::size_t xy_delivered{0}, xy_total{0};
        std::size_t gossip_delivered{0};
        bool gossip_completed{false};
    };

    for (double p_tiles : {0.0, 0.05, 0.1, 0.15, 0.2, 0.3}) {
        const auto trials = run_trials(
            kRepeats,
            [&](std::uint64_t seed) {
                FaultScenario s;
                s.p_tiles = p_tiles;
                RngPool pool(seed);
                FaultInjector inj(s, pool);
                const auto crashes = inj.roll_crashes(mesh, endpoints);
                Trial out;
                const auto xy = run_xy_trace(mesh, trace, crashes);
                out.xy_delivered = xy.delivered;
                out.xy_total = xy.delivered + xy.lost;

                GossipNetwork net(mesh, bench::config_with_p(0.5, 40), s, seed);
                apps::TraceDriver driver(net, trace);
                for (TileId t : endpoints) net.protect(t);
                const auto r =
                    net.run_until([&driver] { return driver.complete(); }, 1000);
                out.gossip_delivered = driver.delivered_messages();
                out.gossip_completed = r.completed;
                return out;
            },
            kJobs);
        std::size_t xy_delivered = 0, xy_total = 0;
        std::size_t gossip_delivered = 0, gossip_completed = 0;
        for (const Trial& t : trials) {
            xy_delivered += t.xy_delivered;
            xy_total += t.xy_total;
            gossip_delivered += t.gossip_delivered;
            if (t.gossip_completed) ++gossip_completed;
        }
        table.add_row({format_number(p_tiles, 2),
                       format_number(100.0 * xy_delivered / xy_total, 1),
                       format_number(100.0 * gossip_delivered /
                                         (kRepeats * trace.message_count()),
                                     1),
                       format_number(100.0 * gossip_completed / kRepeats, 0)});
    }
    bench::emit(table, csv, "Ablation: XY routing vs gossip under tile crashes");
    return 0;
}
