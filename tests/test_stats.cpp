#include "common/stats.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/expect.hpp"

namespace snoc {
namespace {

TEST(Accumulator, EmptyState) {
    Accumulator a;
    EXPECT_TRUE(a.empty());
    EXPECT_EQ(a.count(), 0u);
    EXPECT_THROW(a.mean(), ContractViolation);
    EXPECT_THROW(a.min(), ContractViolation);
    EXPECT_THROW(a.max(), ContractViolation);
}

TEST(Accumulator, SingleSample) {
    Accumulator a;
    a.add(42.0);
    EXPECT_DOUBLE_EQ(a.mean(), 42.0);
    EXPECT_DOUBLE_EQ(a.variance(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 42.0);
    EXPECT_DOUBLE_EQ(a.max(), 42.0);
    EXPECT_DOUBLE_EQ(a.sum(), 42.0);
}

TEST(Accumulator, KnownMeanAndVariance) {
    Accumulator a;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    // Sample variance with n-1: sum of squares = 32, /7.
    EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(a.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
}

TEST(Accumulator, MergeMatchesSequential) {
    Accumulator whole, left, right;
    for (int i = 0; i < 50; ++i) {
        const double x = 0.37 * i * i - 3.0 * i + 1.0;
        whole.add(x);
        (i < 20 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(left.min(), whole.min());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Accumulator, MergeWithEmpty) {
    Accumulator a, empty;
    a.add(1.0);
    a.add(3.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(SampleSet, PercentilesInterpolate) {
    SampleSet s;
    for (double x : {10.0, 20.0, 30.0, 40.0}) s.add(x);
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.0), 40.0);
    EXPECT_DOUBLE_EQ(s.median(), 25.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.0 / 3.0), 20.0);
}

TEST(SampleSet, PercentileSingleSample) {
    SampleSet s;
    s.add(7.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.5), 7.0);
    EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(SampleSet, RejectsBadQuantile) {
    SampleSet s;
    s.add(1.0);
    EXPECT_THROW(s.percentile(-0.1), ContractViolation);
    EXPECT_THROW(s.percentile(1.1), ContractViolation);
}

TEST(SampleSet, CiShrinksWithSamples) {
    SampleSet small, large;
    for (int i = 0; i < 10; ++i) small.add(i % 2 ? 1.0 : -1.0);
    for (int i = 0; i < 1000; ++i) large.add(i % 2 ? 1.0 : -1.0);
    EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(SampleSet, AddingInvalidatesSortCache) {
    SampleSet s;
    s.add(5.0);
    EXPECT_DOUBLE_EQ(s.median(), 5.0);
    s.add(1.0);
    s.add(9.0);
    EXPECT_DOUBLE_EQ(s.median(), 5.0);
    s.add(100.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
}

TEST(Histogram, BucketsAndClamping) {
    Histogram h(0.0, 10.0, 5);
    h.add(0.5);   // bucket 0
    h.add(9.9);   // bucket 4
    h.add(-3.0);  // clamps to 0
    h.add(42.0);  // clamps to 4
    h.add(5.0);   // bucket 2
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(2), 1u);
    EXPECT_EQ(h.count(4), 2u);
    EXPECT_DOUBLE_EQ(h.bucket_center(0), 1.0);
    EXPECT_DOUBLE_EQ(h.bucket_center(4), 9.0);
}

TEST(Histogram, RejectsDegenerateRange) {
    EXPECT_THROW(Histogram(1.0, 1.0, 4), ContractViolation);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), ContractViolation);
}

TEST(Regression, ExactLineRecovered) {
    Regression r;
    for (double x : {0.0, 1.0, 2.0, 3.0, 4.0}) r.add(x, 3.0 * x - 2.0);
    const auto fit = r.fit();
    EXPECT_NEAR(fit.slope, 3.0, 1e-12);
    EXPECT_NEAR(fit.intercept, -2.0, 1e-12);
    EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
    EXPECT_NEAR(r.correlation(), 1.0, 1e-12);
}

TEST(Regression, NegativeCorrelation) {
    Regression r;
    for (double x : {0.0, 1.0, 2.0, 3.0}) r.add(x, 10.0 - 2.0 * x);
    EXPECT_NEAR(r.correlation(), -1.0, 1e-12);
    EXPECT_NEAR(r.fit().slope, -2.0, 1e-12);
}

TEST(Regression, NoisyDataLowersR2) {
    Regression r;
    const double noise[] = {0.5, -1.0, 0.8, -0.3, 0.6, -0.7, 0.2, -0.4};
    for (int i = 0; i < 8; ++i) r.add(i, 2.0 * i + noise[i]);
    const auto fit = r.fit();
    EXPECT_NEAR(fit.slope, 2.0, 0.2);
    EXPECT_LT(fit.r_squared, 1.0);
    EXPECT_GT(fit.r_squared, 0.9);
}

TEST(Regression, ConstantYIsPerfectFlatFit) {
    Regression r;
    for (double x : {1.0, 2.0, 3.0}) r.add(x, 7.0);
    const auto fit = r.fit();
    EXPECT_NEAR(fit.slope, 0.0, 1e-12);
    EXPECT_NEAR(fit.intercept, 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(fit.r_squared, 1.0);
    EXPECT_DOUBLE_EQ(r.correlation(), 0.0);
}

TEST(Regression, DegenerateInputsRejected) {
    Regression r;
    r.add(1.0, 2.0);
    EXPECT_THROW(r.fit(), ContractViolation); // one point
    r.add(1.0, 5.0);
    EXPECT_THROW(r.fit(), ContractViolation); // zero x variance
    EXPECT_DOUBLE_EQ(r.correlation(), 0.0);
}

// Property sweep: Welford mean equals naive mean for many shapes.
class AccumulatorSweep : public ::testing::TestWithParam<int> {};

TEST_P(AccumulatorSweep, MeanMatchesNaive) {
    const int n = GetParam();
    Accumulator a;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = std::sin(0.1 * i) * 100.0 + i;
        a.add(x);
        sum += x;
    }
    EXPECT_NEAR(a.mean(), sum / n, 1e-9 * n);
    EXPECT_EQ(a.count(), static_cast<std::size_t>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, AccumulatorSweep, ::testing::Values(1, 2, 7, 64, 1000));

} // namespace
} // namespace snoc
