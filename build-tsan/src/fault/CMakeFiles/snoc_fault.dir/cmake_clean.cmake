file(REMOVE_RECURSE
  "CMakeFiles/snoc_fault.dir/fault_model.cpp.o"
  "CMakeFiles/snoc_fault.dir/fault_model.cpp.o.d"
  "CMakeFiles/snoc_fault.dir/injector.cpp.o"
  "CMakeFiles/snoc_fault.dir/injector.cpp.o.d"
  "libsnoc_fault.a"
  "libsnoc_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snoc_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
