#include "bus/bus.hpp"

#include <algorithm>
#include <deque>

#include "common/expect.hpp"

namespace snoc {

SharedBus::SharedBus(std::size_t modules, Technology tech)
    : modules_(modules), tech_(tech) {
    SNOC_EXPECT(modules > 0);
    SNOC_EXPECT(tech.bus_frequency_hz > 0.0);
}

BusRunResult SharedBus::run(const TrafficTrace& trace) {
    BusRunResult result;
    if (!alive_) return result; // completed == false

    RoundRobinArbiter arbiter(modules_);
    for (const auto& phase : trace.phases) {
        // Per-module FIFO of pending transfers for this phase.
        std::vector<std::deque<const LogicalMessage*>> pending(modules_);
        std::size_t remaining = 0;
        for (const auto& m : phase.messages) {
            SNOC_EXPECT(m.src < modules_);
            pending[m.src].push_back(&m);
            ++remaining;
        }
        std::vector<std::size_t> waited(modules_, 0);
        while (remaining > 0) {
            std::vector<bool> requests(modules_, false);
            for (std::size_t i = 0; i < modules_; ++i)
                requests[i] = !pending[i].empty();
            const auto winner = arbiter.grant(requests);
            SNOC_EXPECT(winner.has_value());
            const LogicalMessage* m = pending[*winner].front();
            pending[*winner].pop_front();
            --remaining;

            result.seconds += static_cast<double>(m->bits) / tech_.bus_frequency_hz;
            result.bits += m->bits;
            ++result.transfers;
            for (std::size_t i = 0; i < modules_; ++i)
                if (i != *winner && requests[i]) ++waited[i];
        }
        result.max_wait_grants = std::max(
            result.max_wait_grants,
            static_cast<std::size_t>(*std::max_element(waited.begin(), waited.end())));
    }
    result.joules = static_cast<double>(result.bits) * tech_.bus_ebit_joules;
    result.completed = true;
    return result;
}

} // namespace snoc
