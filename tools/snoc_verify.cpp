// snoc_verify — static deadlock/livelock verification of the router-policy
// registry (src/analysis/).  No simulation: verdicts come from channel
// dependency graph analysis and livelock-budget checks over every
// registered (policy, mesh, flow-control) cell and every backend.
//
//   snoc_verify                     verdict table on stdout; exit 1 on any
//                                   deadlock-capable / livelock-unbounded.
//   snoc_verify --sarif <path|->    additionally write the SARIF 2.1.0 run
//                                   (scripts/merge_sarif.py folds it into
//                                   snoc_lint's stream for the CI gate).
//   snoc_verify --probe <name>      verdicts for a deliberately-broken
//                                   probe ("cyclic-turn",
//                                   "unbounded-deflection"); exits 1,
//                                   because the probes must violate.
//   snoc_verify --self-test         the verifier verifies itself: the
//                                   cyclic probe must be caught statically
//                                   (a concrete CDG channel cycle) AND
//                                   dynamically (DeadlockSentinel trips on
//                                   a RouterCore wired with it, while the
//                                   XY control run drains); the unbounded
//                                   budget must be refused.  Exit 2 if any
//                                   leg fails to catch its mutation.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/probes.hpp"
#include "analysis/verify.hpp"

namespace {

using snoc::analysis::ConfigVerdict;
using snoc::analysis::Verdict;

int usage() {
    std::cerr << "usage: snoc_verify [--sarif <path|->] [--probe <name>] "
                 "[--self-test]\n";
    return 2;
}

bool write_sarif_to(const std::vector<ConfigVerdict>& verdicts,
                    const std::string& path) {
    if (path == "-") {
        snoc::analysis::write_sarif(verdicts, std::cout);
        return true;
    }
    std::ofstream out(path);
    if (!out) {
        std::cerr << "snoc_verify: cannot open " << path << '\n';
        return false;
    }
    snoc::analysis::write_sarif(verdicts, out);
    return true;
}

int self_test() {
    std::size_t failures = 0;
    const auto fail = [&](const std::string& what) {
        std::cerr << "self-test FAIL: " << what << '\n';
        ++failures;
    };

    // Static leg 1: the re-enabled forbidden turn must yield a concrete
    // channel cycle on every probed mesh.
    for (const ConfigVerdict& v : snoc::analysis::probe_verdicts("cyclic-turn")) {
        if (v.verdict != Verdict::DeadlockCapable)
            fail(v.subject + " not flagged deadlock-capable (got " +
                 snoc::analysis::to_string(v.verdict) + ")");
        else if (v.detail.find("->") == std::string::npos)
            fail(v.subject + " cycle report lacks a channel sequence");
        else
            std::cout << "self-test ok: " << v.subject << ": " << v.detail
                      << '\n';
    }

    // Static leg 2: a misroute policy without a finite budget must be
    // refused the livelock escape.
    for (const ConfigVerdict& v :
         snoc::analysis::probe_verdicts("unbounded-deflection")) {
        if (v.verdict != Verdict::LivelockUnbounded)
            fail(v.subject + " accepted without a finite hop budget");
        else
            std::cout << "self-test ok: " << v.subject
                      << ": livelock-unbounded refused\n";
    }

    // Dynamic leg: the same broken turn set, run through the real
    // RouterCore pipeline, must wedge and trip the DeadlockSentinel —
    // while the identical traffic under XY drains with the sentinel
    // silent.  This is the cross-check that the static verdicts and the
    // runtime watchdog agree on what a deadlock is.
    const auto probe = snoc::analysis::probe_dynamic_deadlock();
    if (!probe.wedged)
        fail("cyclic-turn ring traffic did not wedge the 2x2 core");
    if (!probe.sentinel_fired)
        fail("DeadlockSentinel stayed silent on the wedged core");
    if (!probe.control_drained)
        fail("XY control run did not drain the same traffic");
    if (probe.control_sentinel)
        fail("DeadlockSentinel fired on the deadlock-free XY control");
    if (failures == 0)
        std::cout << "self-test ok: dynamic wedge caught after "
                  << probe.stalled_cycles << " stalled cycles; XY control "
                     "drained clean\n";

    if (failures != 0) {
        std::cerr << "self-test: " << failures << " leg(s) failed\n";
        return 2;
    }
    std::cout << "self-test: all legs passed\n";
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    std::string sarif_path;
    std::string probe_name;
    bool run_self_test = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--sarif" && i + 1 < argc) {
            sarif_path = argv[++i];
        } else if (arg == "--probe" && i + 1 < argc) {
            probe_name = argv[++i];
        } else if (arg == "--self-test") {
            run_self_test = true;
        } else {
            return usage();
        }
    }
    if (run_self_test) return self_test();

    try {
        const std::vector<ConfigVerdict> verdicts =
            probe_name.empty() ? snoc::analysis::verify_registry()
                               : snoc::analysis::probe_verdicts(probe_name);
        snoc::analysis::write_report(verdicts, std::cout);
        if (!sarif_path.empty() && !write_sarif_to(verdicts, sarif_path))
            return 2;
        for (const ConfigVerdict& v : verdicts)
            if (!snoc::analysis::verdict_ok(v.verdict)) return 1;
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "snoc_verify: " << e.what() << '\n';
        return 2;
    }
}
