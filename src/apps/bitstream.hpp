// Bit-exact packing of quantised frames — the Bit Reservoir stage really
// assembles a bitstream, so the output bit-rate the Fig. 4-11 monitor
// reports is the size of real coded bytes, not an estimate.
//
// Line code (matches coded_bits_of in quantizer.hpp):
//   zero line            -> '0'
//   non-zero magnitude m -> len(m) '1' bits, a terminating '0', the
//                           len(m)-1 low bits of m (the leading 1 is
//                           implied), and one sign bit.
// Cost: 1 bit for zero, 2*len(m)+1 otherwise — exactly coded_bits_of().
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace snoc::apps {

class BitWriter {
public:
    void put_bit(bool bit);
    void put_bits(std::uint32_t value, std::size_t count); // MSB first
    void put_line(std::int32_t value);

    std::size_t bit_count() const { return bits_; }
    /// Final byte padded with zeros.
    std::vector<std::byte> take();

private:
    std::vector<std::byte> bytes_;
    std::size_t bits_{0};
};

class BitReader {
public:
    explicit BitReader(std::vector<std::byte> bytes, std::size_t bit_count);

    bool get_bit();
    std::uint32_t get_bits(std::size_t count);
    std::int32_t get_line();

    std::size_t bits_left() const { return bit_count_ - pos_; }

private:
    std::vector<std::byte> bytes_;
    std::size_t bit_count_;
    std::size_t pos_{0};
};

/// Pack / unpack a whole vector of lines.
std::pair<std::vector<std::byte>, std::size_t> pack_lines(
    const std::vector<std::int32_t>& lines);
std::vector<std::int32_t> unpack_lines(const std::vector<std::byte>& bytes,
                                       std::size_t bit_count, std::size_t line_count);

} // namespace snoc::apps
