// Deflection (hot-potato) routing — the bufferless middle ground between
// deterministic XY and stochastic gossip.  Every packet in a router must
// leave on *some* output every cycle: productive ports are preferred, and
// when contention or a dead neighbour blocks them the packet is deflected
// onto any free port.  No buffers, no retransmissions — misrouting plays
// the role buffering plays elsewhere.
//
// Included as a third routing baseline for the ablations: deflection
// tolerates crashes better than XY (it can walk around a corpse by
// accident) but offers no delivery guarantee and can livelock; gossip
// turns both problems into probability.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "fault/injector.hpp"
#include "noc/topology.hpp"
#include "sim/trace.hpp"

namespace snoc::deflection {

struct PacketRecord {
    std::uint32_t id{0};
    TileId source{0};
    TileId destination{0};
    std::size_t injected_cycle{0};
    std::optional<std::size_t> delivered_cycle;
    std::size_t hops{0};        ///< total link traversals (incl. deflections).
    bool dropped{false};        ///< exceeded the hop budget (livelock guard).
};

struct Config {
    std::size_t max_hops{256};  ///< hop budget before a packet is dropped.
};

class Network {
public:
    Network(std::size_t width, std::size_t height, Config config, std::uint64_t seed);

    /// Apply a crash pattern: packets never enter dead tiles.
    void apply_crashes(const CrashState& crashes);

    std::uint32_t inject(TileId source, TileId destination);
    void step();
    void run(std::size_t cycles);

    std::size_t cycle() const { return cycle_; }
    std::size_t delivered() const { return delivered_; }
    std::size_t dropped() const { return dropped_; }
    std::size_t in_flight() const;
    const std::vector<PacketRecord>& records() const { return records_; }
    const SampleSet& latencies() const { return latencies_; }
    const SampleSet& hop_counts() const { return hops_; }

    /// Attach a flight recorder (not owned; nullptr detaches).  Rounds are
    /// cycles; one Transmitted per link traversal (a walled-in stall burns
    /// hop budget without one), Delivered on arrival, TtlExpired when the
    /// hop budget — deflection's TTL analogue — runs out.
    void set_trace_sink(TraceSink* sink) { trace_ = sink; }

private:
    struct Moving {
        std::uint32_t id{0};
        TileId at{0};
    };

    Topology topo_;
    Config config_;
    RngStream rng_;
    std::vector<bool> dead_;
    std::vector<Moving> flying_;
    std::vector<PacketRecord> records_;
    std::size_t cycle_{0};
    std::size_t delivered_{0};
    std::size_t dropped_{0};
    SampleSet latencies_;
    SampleSet hops_;
    TraceSink* trace_{nullptr};

    void trace_event(TraceEventKind kind, TileId tile, TileId peer,
                     const PacketRecord& rec);
};

} // namespace snoc::deflection
