#include "telemetry/telemetry.hpp"

namespace snoc {

void Telemetry::record(const TraceEvent& event) {
    events_.push_back(event);
    const auto kind = static_cast<std::size_t>(event.kind);
    ++totals_[kind];
    if (per_round_.size() <= event.round)
        per_round_.resize(static_cast<std::size_t>(event.round) + 1);
    ++per_round_[event.round][kind];
    if (event.tile != kNoTile) {
        if (per_tile_.size() <= event.tile)
            per_tile_.resize(static_cast<std::size_t>(event.tile) + 1);
        ++per_tile_[event.tile][kind];
        if (event.kind == TraceEventKind::Transmitted && event.peer != kNoTile)
            ++links_[{event.tile, event.peer}];
    }
}

void Telemetry::clear() {
    events_.clear();
    totals_.fill(0);
    per_round_.clear();
    per_tile_.clear();
    links_.clear();
}

std::size_t Telemetry::total() const {
    std::size_t sum = 0;
    for (const std::size_t c : totals_) sum += c;
    return sum;
}

std::vector<long long> Telemetry::in_flight_series() const {
    // Wire-copy balance per round: every transmission puts one copy in
    // flight; each receive-side fate (crash sink, port overflow, FEC or
    // CRC drop, duplicate, accepted merge) takes one out.  Matches the
    // conservation ledger's wire law, cumulated.
    std::vector<long long> series(per_round_.size(), 0);
    long long balance = 0;
    for (std::size_t r = 0; r < per_round_.size(); ++r) {
        const KindCounts& c = per_round_[r];
        const auto at = [&](TraceEventKind k) {
            return static_cast<long long>(c[static_cast<std::size_t>(k)]);
        };
        balance += at(TraceEventKind::Transmitted);
        balance -= at(TraceEventKind::CrashDrop);
        balance -= at(TraceEventKind::OverflowDrop);
        balance -= at(TraceEventKind::FecUncorrectable);
        balance -= at(TraceEventKind::CrcDrop);
        balance -= at(TraceEventKind::DuplicateIgnored);
        balance -= at(TraceEventKind::Accepted);
        series[r] = balance;
    }
    return series;
}

} // namespace snoc
