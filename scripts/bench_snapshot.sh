#!/usr/bin/env bash
# Engine performance snapshot: runs the sparse-broadcast microbenchmarks
# (lockstep vs event, ns/round) and the two scalability anchor cells
# (lockstep 256x256 full broadcast; event 1000x1000 sparse wavefront),
# then writes BENCH_engine.json — machine info, git SHA, the per-side
# ns/round table and the headline ratios.  Also runs the flow-control
# ablation (xy / wormhole / deflection / store-forward / cut-through /
# adaptive on the fig4_6 pi workload) and writes BENCH_router.json.
# Commit the refreshed snapshots alongside engine- or router-performance
# changes so regressions show up in review.
#
#   scripts/bench_snapshot.sh [build-dir]      # default build/
#
# The snapshot asserts the acceptance figures and exits non-zero if any
# regresses:
#   * event >= 5x lockstep rounds/s on the largest sparse cell,
#   * the event 1000x1000 cell completes in less wall time than the
#     lockstep 256x256 broadcast,
#   * cut-through needs fewer cycles than store-and-forward, and the
#     fault-adaptive policy's faulted completion rate is no worse than
#     the dimension-ordered schemes'.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
OUT="BENCH_engine.json"
OUT_ROUTER="BENCH_router.json"

if [[ ! -x "$BUILD_DIR/bench/perf_microbench" ]]; then
    echo "bench_snapshot: $BUILD_DIR/bench/perf_microbench missing — build first" >&2
    exit 1
fi

MICRO_JSON="$(mktemp)"
SCAL_LOCKSTEP="$(mktemp)"
SCAL_EVENT="$(mktemp)"
ROUTER_JSON="$(mktemp)"
trap 'rm -f "$MICRO_JSON" "$SCAL_LOCKSTEP" "$SCAL_EVENT" "$ROUTER_JSON"' EXIT

# --- Router snapshot: flow-control schemes on the fig4_6 workload -------
"$BUILD_DIR/bench/ablation_flow_control" \
    --repeats 5 --json > "$ROUTER_JSON"

ROUTER_JSON="$ROUTER_JSON" OUT_ROUTER="$OUT_ROUTER" python3 - <<'PY'
import json, os, platform, subprocess, sys

def sh(*cmd):
    return subprocess.run(cmd, capture_output=True, text=True).stdout.strip()

text = open(os.environ["ROUTER_JSON"]).read()
start = text.index("\n[\n") + 1
end = text.index("\n]", start) + 2
rows = json.loads(text[start:end])

def cell(backend, faults):
    for row in rows:
        if row["backend"] == backend and row["faults"] == faults:
            return row
    sys.exit(f"bench_snapshot: no row for {backend}/{faults}")

cpu = ""
try:
    with open("/proc/cpuinfo") as f:
        for line in f:
            if line.startswith("model name"):
                cpu = line.split(":", 1)[1].strip()
                break
except OSError:
    pass

snapshot = {
    "schema_version": 1,
    "machine": {
        "uname": " ".join(platform.uname()),
        "cpu": cpu,
        "cores": os.cpu_count(),
    },
    "git_sha": sh("git", "rev-parse", "HEAD"),
    "workload": "fig4_6 Master-Slave pi scatter/gather + corner exchange, "
                "5 repeats, healthy and p_tiles=0.1",
    "rows": rows,
}
with open(os.environ["OUT_ROUTER"], "w") as f:
    json.dump(snapshot, f, indent=2, sort_keys=True)
    f.write("\n")

vct = float(cell("cut-through", "none")["cycles"])
saf = float(cell("store-forward", "none")["cycles"])
adaptive_ok = float(cell("adaptive", "p_tiles=0.1")["completion"]) >= \
    float(cell("store-forward", "p_tiles=0.1")["completion"])
print(f"cut-through vs store-and-forward cycles: {vct:.0f} vs {saf:.0f}")
print(f"adaptive faulted completion >= store-forward's: {adaptive_ok}")
ok = vct < saf and adaptive_ok
print(f"wrote {os.environ['OUT_ROUTER']}" + ("" if ok else " (TARGETS MISSED)"))
sys.exit(0 if ok else 1)
PY

# --- Engine snapshot ----------------------------------------------------

"$BUILD_DIR/bench/perf_microbench" \
    '--benchmark_filter=SparseBroadcast|GossipRound' \
    --benchmark_format=json > "$MICRO_JSON"

# Anchor cells: the full 256x256 broadcast is the classic dense workload
# (everything active until the TTL drain); the 1000x1000 short-TTL
# wavefront is the sparse one the event engine exists for.
"$BUILD_DIR/bench/ablation_scalability" \
    --sides 256 --repeats 1 --engine lockstep --json > "$SCAL_LOCKSTEP"
"$BUILD_DIR/bench/ablation_scalability" \
    --sides 1000 --ttl 40 --repeats 1 --engine event --json > "$SCAL_EVENT"

MICRO_JSON="$MICRO_JSON" SCAL_LOCKSTEP="$SCAL_LOCKSTEP" SCAL_EVENT="$SCAL_EVENT" \
OUT="$OUT" python3 - <<'PY'
import json, os, platform, re, subprocess, sys

def sh(*cmd):
    return subprocess.run(cmd, capture_output=True, text=True).stdout.strip()

# perf_microbench appends its plain-text fan-out summary after the
# benchmark JSON; raw_decode stops at the end of the JSON object.
with open(os.environ["MICRO_JSON"]) as f:
    micro, _ = json.JSONDecoder().raw_decode(f.read())

ns_per_round = {"lockstep": {}, "event": {}}
gossip_round = {"detached": {}, "recorded": {}}
for b in micro["benchmarks"]:
    m = re.match(r"BM_SparseBroadcast(Lockstep|Event)/(\d+)", b["name"])
    if m:
        engine, side = m.group(1).lower(), int(m.group(2))
        ns_per_round[engine][side] = 1e9 / b["items_per_second"]
        continue
    m = re.match(r"BM_GossipRound(Recorded)?/(\d+)$", b["name"])
    if m:
        variant = "recorded" if m.group(1) else "detached"
        gossip_round[variant][int(m.group(2))] = 1e9 / b["items_per_second"]

# Flight-recorder overhead: BM_GossipRoundRecorded vs BM_GossipRound,
# per mesh side.  Budget is <= 5% (a ring write is one array store); the
# ratio is recorded in the snapshot so regressions show up in review, but
# is not hard-gated here — microbenchmark noise on shared CI machines
# routinely exceeds the budget itself.
recorder_overhead = {
    s: gossip_round["recorded"][s] / gossip_round["detached"][s]
    for s in sorted(set(gossip_round["detached"]) & set(gossip_round["recorded"]))
}

sides = sorted(set(ns_per_round["lockstep"]) & set(ns_per_round["event"]))
speedup = {s: ns_per_round["lockstep"][s] / ns_per_round["event"][s] for s in sides}
largest = max(sides)

def wall_cell(path):
    text = open(os.environ[path]).read()
    # The table is pretty-printed as a "[" line, row lines, a "]" line —
    # column names themselves contain brackets ("coverage [%]"), so slice
    # on whole lines rather than the first bracket characters.
    start = text.index("\n[\n") + 1
    end = text.index("\n]", start) + 2
    rows = json.loads(text[start:end])
    return {
        "mesh": rows[0]["mesh"],
        "rounds": float(rows[0]["rounds"]),
        "coverage_pct": float(rows[0]["coverage [%]"]),
        "wall_s": float(rows[0]["wall [s]"]),
    }

lockstep_cell = wall_cell("SCAL_LOCKSTEP")
event_cell = wall_cell("SCAL_EVENT")

cpu = ""
try:
    with open("/proc/cpuinfo") as f:
        for line in f:
            if line.startswith("model name"):
                cpu = line.split(":", 1)[1].strip()
                break
except OSError:
    pass

snapshot = {
    "schema_version": 1,
    "machine": {
        "uname": " ".join(platform.uname()),
        "cpu": cpu,
        "cores": os.cpu_count(),
    },
    "git_sha": sh("git", "rev-parse", "HEAD"),
    "workload": "sparse corner broadcast, p=0.5, ttl=20 (microbench); "
                "scalability anchor cells below",
    "ns_per_round": ns_per_round,
    "sparse_speedup_event_over_lockstep": speedup,
    "gossip_round_ns": gossip_round,
    "flight_recorder_overhead": recorder_overhead,
    "scalability": {
        "lockstep_256x256_broadcast": lockstep_cell,
        "event_1000x1000_sparse": event_cell,
    },
}
with open(os.environ["OUT"], "w") as f:
    json.dump(snapshot, f, indent=2, sort_keys=True)
    f.write("\n")

headline = speedup[largest]
for side, ratio in recorder_overhead.items():
    note = "" if ratio <= 1.05 else "  (over the 5% budget)"
    print(f"flight-recorder overhead at {side}x{side}: "
          f"{(ratio - 1.0) * 100:+.1f}%{note}")
print(f"sparse speedup at {largest}x{largest}: {headline:.1f}x "
      f"(target >= 5x)")
print(f"event 1000x1000: {event_cell['wall_s']:.2f}s vs "
      f"lockstep 256x256: {lockstep_cell['wall_s']:.2f}s")
ok = headline >= 5.0 and event_cell["wall_s"] < lockstep_cell["wall_s"]
print(f"wrote {os.environ['OUT']}" + ("" if ok else " (TARGETS MISSED)"))
sys.exit(0 if ok else 1)
PY
