# Empty compiler generated dependencies file for snoc_bus.
# This may be replaced when dependencies are built.
