#include "apps/psycho.hpp"

#include <algorithm>
#include <cmath>

#include "apps/fft.hpp"
#include "common/expect.hpp"

namespace snoc::apps {

namespace {
double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }
} // namespace

std::vector<std::size_t> band_of_lines(std::size_t n_coeffs, std::size_t band_count) {
    SNOC_EXPECT(band_count > 0);
    SNOC_EXPECT(n_coeffs >= band_count);
    std::vector<std::size_t> map(n_coeffs);
    for (std::size_t i = 0; i < n_coeffs; ++i) map[i] = i * band_count / n_coeffs;
    return map;
}

PsychoAnalysis analyze_frame(const std::vector<double>& pcm, const PsychoParams& params) {
    SNOC_EXPECT(!pcm.empty());
    SNOC_EXPECT((pcm.size() & (pcm.size() - 1)) == 0);

    // Power spectrum of the frame (positive frequencies only).
    std::vector<Complex> spectrum(pcm.begin(), pcm.end());
    fft(spectrum);
    const std::size_t half = pcm.size() / 2;

    PsychoAnalysis out;
    out.band_energy.assign(params.band_count, 0.0);
    const auto bands = band_of_lines(half, params.band_count);
    for (std::size_t i = 0; i < half; ++i)
        out.band_energy[bands[i]] += std::norm(spectrum[i]) /
                                     static_cast<double>(pcm.size());

    // Masking: self term + spreading from neighbours + absolute floor.
    out.band_threshold.assign(params.band_count, params.absolute_floor);
    for (std::size_t i = 0; i < params.band_count; ++i) {
        for (std::size_t j = 0; j < params.band_count; ++j) {
            const double dist = std::abs(static_cast<double>(i) - static_cast<double>(j));
            const double atten_db = params.self_masking_db + dist * params.spread_per_band_db;
            out.band_threshold[i] = std::max(
                out.band_threshold[i], out.band_energy[j] * db_to_linear(atten_db));
        }
    }

    out.smr_db.assign(params.band_count, 0.0);
    for (std::size_t i = 0; i < params.band_count; ++i) {
        const double e = std::max(out.band_energy[i], params.absolute_floor);
        out.smr_db[i] = 10.0 * std::log10(e / out.band_threshold[i]);
    }
    return out;
}

} // namespace snoc::apps
