file(REMOVE_RECURSE
  "CMakeFiles/snoc_noc.dir/fec.cpp.o"
  "CMakeFiles/snoc_noc.dir/fec.cpp.o.d"
  "CMakeFiles/snoc_noc.dir/packet.cpp.o"
  "CMakeFiles/snoc_noc.dir/packet.cpp.o.d"
  "CMakeFiles/snoc_noc.dir/topology.cpp.o"
  "CMakeFiles/snoc_noc.dir/topology.cpp.o.d"
  "libsnoc_noc.a"
  "libsnoc_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snoc_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
