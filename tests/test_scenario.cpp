// The declarative experiment runner (sim/scenario.hpp): cell enumeration,
// the seeding/retry contract, aggregation semantics, and the headline
// determinism property — a sweep must produce bit-identical RunReports
// for any --jobs value.  Run under ThreadSanitizer via
// `cmake -DSNOC_SANITIZE=thread` + `ctest -L scenario`.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/expect.hpp"
#include "sim/backends.hpp"
#include "sim/scenario.hpp"

namespace snoc {
namespace {

TrafficTrace small_trace() {
    TrafficTrace trace;
    TrafficPhase phase;
    phase.messages.push_back({0, 24, 256});
    phase.messages.push_back({24, 0, 256});
    trace.phases.push_back(phase);
    return trace;
}

ExperimentSpec trivial_spec() {
    ExperimentSpec spec;
    spec.trial = [](const SweepPoint&, std::uint64_t seed) {
        RunReport r;
        r.completed = true;
        r.rounds = static_cast<Round>(seed);
        return r;
    };
    return spec;
}

TEST(ScenarioRunner, RequiresExactlyOneExecutionFlavour) {
    ExperimentSpec neither;
    EXPECT_THROW(ScenarioRunner{neither}, ContractViolation);

    ExperimentSpec both = trivial_spec();
    both.backend = [](const SweepPoint&, std::uint64_t seed) {
        return make_interconnect(BackendKind::Bus, FaultScenario::none(), seed);
    };
    both.trace = [](const SweepPoint&) { return TrafficTrace{}; };
    EXPECT_THROW(ScenarioRunner{both}, ContractViolation);

    EXPECT_NO_THROW(ScenarioRunner{trivial_spec()});
}

TEST(ScenarioRunner, CellsEnumerateRowMajor) {
    ExperimentSpec spec = trivial_spec();
    spec.axes = {{"a", {1, 2}}, {"b", {10, 20, 30}}};
    const auto cells = ScenarioRunner(spec).cells();
    ASSERT_EQ(cells.size(), 6u);
    // First axis slowest: (1,10) (1,20) (1,30) (2,10) (2,20) (2,30).
    EXPECT_DOUBLE_EQ(cells[0].value("a"), 1.0);
    EXPECT_DOUBLE_EQ(cells[0].value("b"), 10.0);
    EXPECT_DOUBLE_EQ(cells[2].value("b"), 30.0);
    EXPECT_DOUBLE_EQ(cells[3].value("a"), 2.0);
    EXPECT_DOUBLE_EQ(cells[3].value("b"), 10.0);
    EXPECT_EQ(cells[5].index_of("a"), 1u);
    EXPECT_EQ(cells[5].index_of("b"), 2u);
    EXPECT_EQ(cells[0].label(), "a=1 b=10");
}

TEST(SweepPoint, UnknownAxisThrows) {
    ExperimentSpec spec = trivial_spec();
    spec.axes = {{"p", {0.5}}};
    const auto cells = ScenarioRunner(spec).cells();
    EXPECT_THROW(cells[0].value("q"), ContractViolation);
    EXPECT_THROW(cells[0].index_of("q"), ContractViolation);
}

TEST(ScenarioRunner, RepeatSeedsAreBaseSeedPlusRepeat) {
    ExperimentSpec spec = trivial_spec();
    spec.repeats = 4;
    spec.base_seed = 100;
    const auto cells = ScenarioRunner(spec).run();
    ASSERT_EQ(cells.size(), 1u);
    ASSERT_EQ(cells[0].reports.size(), 4u);
    for (std::size_t r = 0; r < 4; ++r) {
        EXPECT_EQ(cells[0].reports[r].seed, 100u + r);
        EXPECT_EQ(cells[0].reports[r].attempts, 1u);
    }
}

TEST(ScenarioRunner, RetryPolicyRederivesSeedsAndStops) {
    // Completes only once the seed jumps two strides out.
    ExperimentSpec spec;
    spec.repeats = 1;
    spec.base_seed = 5;
    spec.max_attempts = 10;
    spec.retry_seed_stride = 100;
    spec.trial = [](const SweepPoint&, std::uint64_t seed) {
        RunReport r;
        r.completed = seed >= 205;
        return r;
    };
    const auto cells = ScenarioRunner(spec).run();
    const RunReport& r = cells[0].reports[0];
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.seed, 205u); // 5, 105, 205 — third attempt.
    EXPECT_EQ(r.attempts, 3u);
    EXPECT_EQ(cells[0].stats.attempts, 3u);
}

TEST(ScenarioRunner, RetryCapBoundsAttempts) {
    // The old fig4_6 loop retried forever; the runner must stop at the cap.
    ExperimentSpec spec;
    spec.max_attempts = 7;
    spec.trial = [](const SweepPoint&, std::uint64_t) {
        return RunReport{}; // never completes.
    };
    const auto cells = ScenarioRunner(spec).run();
    const RunReport& r = cells[0].reports[0];
    EXPECT_FALSE(r.completed);
    EXPECT_EQ(r.attempts, 7u);
    EXPECT_DOUBLE_EQ(cells[0].stats.completion_rate, 0.0);
}

TEST(Aggregate, MeansAreOverCompletedRunsOnly) {
    std::vector<RunReport> reports(4);
    reports[0].completed = true;
    reports[0].rounds = 10;
    reports[0].transmissions = 100;
    reports[1].completed = false;
    reports[1].rounds = 999; // must not pollute the means.
    reports[2].completed = true;
    reports[2].rounds = 20;
    reports[2].transmissions = 300;
    reports[3].completed = false;
    const CellStats stats = aggregate(reports);
    EXPECT_DOUBLE_EQ(stats.completion_rate, 0.5);
    EXPECT_DOUBLE_EQ(stats.rounds, 15.0);
    EXPECT_DOUBLE_EQ(stats.transmissions, 200.0);
}

TEST(Aggregate, EmptyAndAllIncompleteAreZero) {
    EXPECT_DOUBLE_EQ(aggregate({}).completion_rate, 0.0);
    std::vector<RunReport> incomplete(3);
    const CellStats stats = aggregate(incomplete);
    EXPECT_DOUBLE_EQ(stats.completion_rate, 0.0);
    EXPECT_DOUBLE_EQ(stats.rounds, 0.0);
}

// The headline property: a real gossip sweep is bit-identical whether the
// fan-out uses one worker or eight.
TEST(ScenarioRunner, SweepIsDeterministicAcrossJobCounts) {
    const auto run_with_jobs = [](std::size_t jobs) {
        ExperimentSpec spec;
        spec.axes = {{"p_tiles", {0.0, 0.1, 0.2}}};
        spec.repeats = 4;
        spec.jobs = jobs;
        spec.max_rounds = 500;
        spec.backend = [](const SweepPoint& pt, std::uint64_t seed) {
            GossipSpec gspec;
            gspec.config.forward_p = 0.5;
            gspec.config.default_ttl = 40;
            gspec.protect = {0, 24};
            FaultScenario scenario;
            scenario.p_tiles = pt.value("p_tiles");
            return std::make_unique<GossipAdapter>(std::move(gspec), scenario,
                                                   seed);
        };
        spec.trace = [](const SweepPoint&) { return small_trace(); };
        return ScenarioRunner(spec).run();
    };
    const auto serial = run_with_jobs(1);
    const auto parallel = run_with_jobs(8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t c = 0; c < serial.size(); ++c) {
        ASSERT_EQ(serial[c].reports.size(), parallel[c].reports.size());
        for (std::size_t r = 0; r < serial[c].reports.size(); ++r) {
            const RunReport& a = serial[c].reports[r];
            const RunReport& b = parallel[c].reports[r];
            EXPECT_EQ(a.completed, b.completed) << c << "," << r;
            EXPECT_EQ(a.rounds, b.rounds) << c << "," << r;
            EXPECT_EQ(a.transmissions, b.transmissions) << c << "," << r;
            EXPECT_EQ(a.bits, b.bits) << c << "," << r;
            EXPECT_EQ(a.deliveries, b.deliveries) << c << "," << r;
            EXPECT_EQ(a.seed, b.seed) << c << "," << r;
            EXPECT_DOUBLE_EQ(a.seconds, b.seconds) << c << "," << r;
        }
        EXPECT_DOUBLE_EQ(serial[c].stats.rounds, parallel[c].stats.rounds);
        EXPECT_DOUBLE_EQ(serial[c].stats.completion_rate,
                         parallel[c].stats.completion_rate);
    }
}

TEST(ScenarioRunner, SummaryTableHasAxisAndMetricColumns) {
    ExperimentSpec spec = trivial_spec();
    spec.axes = {{"p", {0.25, 0.5}}};
    spec.repeats = 2;
    const auto cells = ScenarioRunner(spec).run();
    const Table table = ScenarioRunner::summary_table(cells);
    EXPECT_EQ(table.headers().front(), "p");
    EXPECT_EQ(table.row_count(), 2u);
    EXPECT_EQ(table.row(0)[0], "0.25");
    EXPECT_EQ(table.row(1)[0], "0.5");
}

} // namespace
} // namespace snoc
