// engine-equivalence-backends: gossip bus
#include "core/interconnect.hpp"
int main() { return static_cast<int>(BackendKind::Gossip); }
