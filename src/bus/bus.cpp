#include "bus/bus.hpp"

#include <algorithm>
#include <deque>

#include "common/expect.hpp"

namespace snoc {

namespace {

void emit(TraceSink* sink, Round round, TraceEventKind kind, TileId tile,
          TileId peer, MessageId id) {
    if (!sink) return;
    TraceEvent event;
    event.round = round;
    event.kind = kind;
    event.tile = tile;
    event.peer = peer;
    event.message = id;
    sink->record(event);
}

} // namespace

SharedBus::SharedBus(std::size_t modules, Technology tech)
    : modules_(modules), tech_(tech) {
    SNOC_EXPECT(modules > 0);
    SNOC_EXPECT(tech.bus_frequency_hz > 0.0);
}

BusRunResult SharedBus::run(const TrafficTrace& trace) {
    BusRunResult result;
    // Message ids for tracing: origin = source module, sequence = that
    // module's injection count, mirroring the gossip engine's scheme.
    std::vector<std::uint32_t> next_sequence(modules_, 0);
    if (!alive_) {
        // completed == false; every offered message sinks into the dead
        // medium (the single point of failure made visible in the trace).
        for (std::size_t p = 0; p < trace.phases.size(); ++p) {
            for (const auto& m : trace.phases[p].messages) {
                const MessageId id{m.src, next_sequence[m.src]++};
                const auto round = static_cast<Round>(p);
                emit(trace_, round, TraceEventKind::MessageCreated, m.src,
                     kNoTile, id);
                emit(trace_, round, TraceEventKind::CrashDrop, m.src, kNoTile,
                     id);
            }
        }
        return result;
    }

    RoundRobinArbiter arbiter(modules_);
    for (std::size_t p = 0; p < trace.phases.size(); ++p) {
        const auto& phase = trace.phases[p];
        const auto round = static_cast<Round>(p);
        // Per-module FIFO of pending transfers for this phase.
        std::vector<std::deque<std::pair<const LogicalMessage*, MessageId>>>
            pending(modules_);
        std::size_t remaining = 0;
        for (const auto& m : phase.messages) {
            SNOC_EXPECT(m.src < modules_);
            const MessageId id{m.src, next_sequence[m.src]++};
            pending[m.src].emplace_back(&m, id);
            emit(trace_, round, TraceEventKind::MessageCreated, m.src, kNoTile,
                 id);
            ++remaining;
        }
        std::vector<std::size_t> waited(modules_, 0);
        while (remaining > 0) {
            std::vector<bool> requests(modules_, false);
            for (std::size_t i = 0; i < modules_; ++i)
                requests[i] = !pending[i].empty();
            const auto winner = arbiter.grant(requests);
            SNOC_EXPECT(winner.has_value());
            const auto [m, id] = pending[*winner].front();
            pending[*winner].pop_front();
            --remaining;

            result.seconds += static_cast<double>(m->bits) / tech_.bus_frequency_hz;
            result.bits += m->bits;
            ++result.transfers;
            emit(trace_, round, TraceEventKind::Transmitted, m->src, m->dst, id);
            emit(trace_, round, TraceEventKind::Delivered, m->dst, kNoTile, id);
            for (std::size_t i = 0; i < modules_; ++i)
                if (i != *winner && requests[i]) ++waited[i];
        }
        result.max_wait_grants = std::max(
            result.max_wait_grants,
            static_cast<std::size_t>(*std::max_element(waited.begin(), waited.end())));
    }
    result.joules = static_cast<double>(result.bits) * tech_.bus_ebit_joules;
    result.completed = true;
    return result;
}

} // namespace snoc
