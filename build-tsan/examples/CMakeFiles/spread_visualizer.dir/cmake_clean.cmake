file(REMOVE_RECURSE
  "CMakeFiles/spread_visualizer.dir/spread_visualizer.cpp.o"
  "CMakeFiles/spread_visualizer.dir/spread_visualizer.cpp.o.d"
  "spread_visualizer"
  "spread_visualizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spread_visualizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
