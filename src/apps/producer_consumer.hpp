// The Producer - Consumer walkthrough of Sec. 3.2.1 / Fig. 3-3: a producer
// on one tile streams numbered items; a consumer on another tile collects
// them.  Neither knows where the other lives — the gossip layer finds it.
#pragma once

#include <cstdint>
#include <vector>

#include "core/engine.hpp"
#include "core/ip_core.hpp"

namespace snoc::apps {

inline constexpr std::uint32_t kItemTag = 0x50524F44; // 'PROD'

class ProducerIp final : public IpCore {
public:
    /// Emit `item_count` items, one every `interval` rounds, addressed to
    /// `consumer_tile`.
    ProducerIp(TileId consumer_tile, std::size_t item_count, Round interval = 1);

    void on_round(TileContext& ctx) override;
    void on_message(const Message&, TileContext&) override {}

    std::size_t items_sent() const { return next_item_; }

private:
    TileId consumer_;
    std::size_t item_count_;
    Round interval_;
    std::size_t next_item_{0};
};

class ConsumerIp final : public IpCore {
public:
    explicit ConsumerIp(std::size_t expected) : expected_(expected) {}

    void on_message(const Message& message, TileContext& ctx) override;

    std::size_t received_count() const { return received_items_.size(); }
    bool complete() const { return received_items_.size() >= expected_; }
    /// Round at which each item arrived (index = arrival order).
    const std::vector<Round>& arrival_rounds() const { return arrival_rounds_; }
    const std::vector<std::uint64_t>& received_items() const { return received_items_; }

private:
    std::size_t expected_;
    std::vector<std::uint64_t> received_items_;
    std::vector<Round> arrival_rounds_;
};

/// Wire the Fig. 3-3 scenario onto a network: producer on `producer_tile`,
/// consumer on `consumer_tile`.  Returns the consumer for inspection (owned
/// by the network).
ConsumerIp& make_producer_consumer(GossipNetwork& net, TileId producer_tile,
                                   TileId consumer_tile, std::size_t items,
                                   Round interval = 1);

} // namespace snoc::apps
