# Empty compiler generated dependencies file for fig4_10_mp3_failures.
# This may be replaced when dependencies are built.
