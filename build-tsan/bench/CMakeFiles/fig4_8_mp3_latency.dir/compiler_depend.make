# Empty compiler generated dependencies file for fig4_8_mp3_latency.
# This may be replaced when dependencies are built.
