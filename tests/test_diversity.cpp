#include "diversity/architecture.hpp"

#include <gtest/gtest.h>

namespace snoc::diversity {
namespace {

GossipConfig default_config() {
    GossipConfig c;
    c.forward_p = 0.75;
    c.default_ttl = 40;
    return c;
}

TEST(Architecture, FlatIsPlainMesh) {
    const auto a = make_architecture(ArchitectureKind::FlatNoc);
    EXPECT_EQ(a.topology.node_count(), 64u);
    EXPECT_TRUE(a.topology.is_grid());
    EXPECT_EQ(a.hub, kNoTile);
    EXPECT_EQ(a.mapping.sensors.size(), 16u);
    EXPECT_EQ(a.mapping.aggregators.size(), 4u);
}

TEST(Architecture, ClusteredShapesHaveHub) {
    for (auto kind :
         {ArchitectureKind::HierarchicalNoc, ArchitectureKind::BusConnectedNocs}) {
        const auto a = make_architecture(kind);
        EXPECT_EQ(a.topology.node_count(), 65u) << to_string(kind);
        EXPECT_EQ(a.hub, 64u);
        EXPECT_GE(a.hub_capacity, 1u);
        // The hub links exactly the four gateways.
        EXPECT_EQ(a.topology.neighbours(a.hub).size(), 4u);
    }
}

TEST(Architecture, BusHubIsSerialised) {
    const auto hier = make_architecture(ArchitectureKind::HierarchicalNoc);
    const auto bus = make_architecture(ArchitectureKind::BusConnectedNocs);
    EXPECT_EQ(bus.hub_capacity, 1u);
    EXPECT_GT(hier.hub_capacity, bus.hub_capacity);
}

TEST(Architecture, TaskTilesAreDistinct) {
    for (auto kind : {ArchitectureKind::FlatNoc, ArchitectureKind::HierarchicalNoc,
                      ArchitectureKind::BusConnectedNocs}) {
        const auto a = make_architecture(kind);
        std::vector<TileId> all = a.mapping.sensors;
        all.insert(all.end(), a.mapping.aggregators.begin(), a.mapping.aggregators.end());
        all.push_back(a.mapping.combiner);
        std::sort(all.begin(), all.end());
        EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end())
            << to_string(kind);
        for (TileId t : all) EXPECT_LT(t, a.topology.node_count());
    }
}

TEST(Architecture, GatewayMeshHasNoHubButSecondLevelLinks) {
    const auto a = make_architecture(ArchitectureKind::CentralRouterMesh);
    EXPECT_EQ(a.topology.node_count(), 64u);
    EXPECT_EQ(a.hub, kNoTile);
    // Each gateway connects to its 2 intra-cluster neighbours + 3 peers.
    std::size_t five_degree = 0;
    for (TileId t = 0; t < 64; ++t)
        if (a.topology.neighbours(t).size() == 5) ++five_degree;
    EXPECT_EQ(five_degree, 4u);
}

TEST(RunBeamforming, AllArchitecturesComplete) {
    for (auto kind : {ArchitectureKind::FlatNoc, ArchitectureKind::HierarchicalNoc,
                      ArchitectureKind::CentralRouterMesh,
                      ArchitectureKind::BusConnectedNocs}) {
        const auto r = run_beamforming(kind, /*frames=*/2, default_config(),
                                       FaultScenario::none(), 1);
        EXPECT_TRUE(r.completed) << to_string(kind);
        EXPECT_GT(r.transmissions, 0u);
        EXPECT_GT(r.rounds, 0u);
    }
}

TEST(RunBeamforming, Fig53TransmissionOrdering) {
    // Fig. 5-3: the hierarchical NoC has the lowest number of message
    // transmissions; the flat NoC the highest.
    std::size_t flat = 0, hier = 0;
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
        flat += run_beamforming(ArchitectureKind::FlatNoc, 2, default_config(),
                                FaultScenario::none(), seed)
                    .transmissions;
        hier += run_beamforming(ArchitectureKind::HierarchicalNoc, 2, default_config(),
                                FaultScenario::none(), seed)
                    .transmissions;
    }
    EXPECT_LT(hier, flat);
}

TEST(RunBeamforming, Fig53LatencyOrdering) {
    // Fig. 5-3: the flat NoC has (slightly) better latency; the serialised
    // bus bridge is the slowest.
    std::size_t flat = 0, bus = 0;
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
        flat += run_beamforming(ArchitectureKind::FlatNoc, 2, default_config(),
                                FaultScenario::none(), seed)
                    .rounds;
        bus += run_beamforming(ArchitectureKind::BusConnectedNocs, 2, default_config(),
                               FaultScenario::none(), seed)
                   .rounds;
    }
    EXPECT_LE(flat, bus);
}

TEST(RunBeamforming, DeterministicPerSeed) {
    const auto a = run_beamforming(ArchitectureKind::HierarchicalNoc, 2,
                                   default_config(), FaultScenario::none(), 9);
    const auto b = run_beamforming(ArchitectureKind::HierarchicalNoc, 2,
                                   default_config(), FaultScenario::none(), 9);
    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_EQ(a.transmissions, b.transmissions);
}

} // namespace
} // namespace snoc::diversity
