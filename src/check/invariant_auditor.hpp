// The runtime invariant auditor — the correctness net under every
// reproduced figure.  It plugs into the unified Interconnect layer
// (Interconnect::set_auditor) and verifies, per round and at end of run,
// that the simulator neither leaks nor double-counts message copies:
//
//   * the two conservation laws of check/ledger.hpp (wire + buffer);
//   * send-buffer occupancy <= capacity on every tile, every round;
//   * per-message TTL monotonicity (a rumor's TTL never grows at a tile);
//   * counter monotonicity (rounds, packets, bits — and therefore the
//     energy accumulator, joules = bits * E_bit — never decrease);
//   * NetworkMetrics structural consistency (per-link, per-tile and
//     per-round histograms each sum to the global counters);
//   * RunReport self-consistency for every backend (deliveries + drops
//     == offered messages; completion implies full delivery; budgets
//     respected), plus wormhole/deflection record-vs-counter accounting.
//
// The auditor is a pure observer: attaching one never changes simulation
// behaviour, and every check reads state the engine already exposes.
// Violations are recorded, not thrown, so a test can assert on the whole
// list; throw_if_dirty() converts them into a ContractViolation for
// harnesses that want loud failure.  One auditor audits one run at a
// time (begin_run resets the per-run streak state); auditors are not
// thread-safe — give each concurrent trial its own (ExperimentSpec::audit
// does exactly that).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/ledger.hpp"
#include "common/types.hpp"
#include "core/interconnect.hpp"
#include "core/metrics.hpp"
#include "noc/traffic.hpp"

namespace snoc {
class GossipNetwork;
namespace wormhole {
class Network;
}
namespace deflection {
class Network;
}
namespace router {
class RouterCore;
}
} // namespace snoc

namespace snoc::check {

struct Violation {
    std::string invariant; ///< short law name, e.g. "wire-conservation".
    std::string detail;    ///< offending values, pre-formatted.
};

class InvariantAuditor {
public:
    /// Reset the per-run streak state (counter snapshots, TTL history)
    /// and remember `label` as the context prefix for new violations.
    /// Recorded violations survive — an auditor accumulates across the
    /// runs it audits.
    void begin_run(std::string label);

    /// Backend-independent RunReport self-consistency.  `trace` non-null
    /// enables the logical delivery accounting (the run(trace, limit)
    /// flavour); app-driven run_until reports carry raw engine counters
    /// where per-tile broadcast deliveries can legitimately exceed the
    /// created-message count, so those checks need the trace to anchor
    /// them.  `limit` > 0 additionally checks the round budget.
    void check_report(const RunReport& report, BackendKind kind,
                      const TrafficTrace* trace = nullptr, Round limit = 0);

    /// Per-round gossip invariants: conservation, occupancy, TTL and
    /// counter monotonicity.  Call at any round boundary.
    void check_round(const GossipNetwork& net);

    /// End-of-run gossip invariants: everything per-round checks, plus
    /// the full per-round histogram sum.
    void check_final(const GossipNetwork& net);

    // --- building blocks (public so negative tests can prove detection) ----
    void check_conservation(const ConservationLedger& ledger);
    void check_occupancy(TileId tile, std::size_t size, std::size_t capacity);
    void check_metrics(const NetworkMetrics& metrics, bool include_round_histogram);

    /// Wormhole record-vs-counter accounting (delivered records match the
    /// delivery counter; no packet delivered before it was injected).
    void check_wormhole(const wormhole::Network& net);

    /// Deflection record-vs-counter accounting (delivered/dropped record
    /// flags match the counters; every packet has exactly one fate).
    void check_deflection(const deflection::Network& net);

    /// Router-core record-vs-counter accounting (every packet has exactly
    /// one fate; causality; the hop budget holds; the shared-accounting
    /// counters match the per-packet records).
    void check_router(const router::RouterCore& core);

    bool clean() const { return violations_.empty(); }
    const std::vector<Violation>& violations() const { return violations_; }
    /// Total violations seen, including ones dropped past the storage cap.
    std::size_t violation_count() const { return total_violations_; }
    std::size_t rounds_audited() const { return rounds_audited_; }

    std::string summary() const;
    /// Throw ContractViolation when any violation was recorded.
    void throw_if_dirty() const;
    /// Forget everything (violations and per-run state).
    void reset();

private:
    void violate(const char* invariant, std::string detail);

    // Scalar counters that must never decrease between rounds.
    struct CounterSnapshot {
        std::size_t rounds{0}, packets_sent{0}, bits_sent{0}, messages_created{0},
            deliveries{0}, duplicates_ignored{0}, crc_drops{0}, overflow_drops{0},
            ttl_expired{0}, crash_drops{0}, port_overflow_drops{0},
            packets_accepted{0}, fec_uncorrectable{0}, skew_deferrals{0},
            upsets_undetected{0}, fec_corrected{0};
    };
    void check_monotonic(const CounterSnapshot& now);

    static constexpr std::size_t kMaxStoredViolations = 64;

    std::string label_;
    std::vector<Violation> violations_;
    std::size_t total_violations_{0};
    std::size_t rounds_audited_{0};
    bool have_snapshot_{false};
    CounterSnapshot last_;
    // Last seen TTL per (tile, message id); lookup-only, never iterated,
    // so its order can't leak into results.
    std::vector<std::unordered_map<MessageId, std::uint16_t>> last_ttl_;
};

} // namespace snoc::check
