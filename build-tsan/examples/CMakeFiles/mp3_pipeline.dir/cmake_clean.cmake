file(REMOVE_RECURSE
  "CMakeFiles/mp3_pipeline.dir/mp3_pipeline.cpp.o"
  "CMakeFiles/mp3_pipeline.dir/mp3_pipeline.cpp.o.d"
  "mp3_pipeline"
  "mp3_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp3_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
