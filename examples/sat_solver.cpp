// Parallel SAT solving on the NoC (the first application class named in
// Sec. 4): the master splits the formula into 8 cubes over the first 3
// variables, slaves solve their cube with DPLL under assumptions, and the
// verdict gossips back — all of it fault-tolerant for free.
//
// Usage: sat_solver [vars] [clauses] [seed]
#include <cstdlib>
#include <iostream>

#include "apps/sat.hpp"

using namespace snoc;
using namespace snoc::apps;

namespace {

bool run_instance(const char* label, const Cnf& cnf, FaultScenario scenario,
                  std::uint64_t seed) {
    GossipConfig config;
    config.forward_p = 0.5;
    config.default_ttl = 40;
    GossipNetwork net(Topology::mesh(5, 5), config, scenario, seed);
    auto& master = deploy_sat(net, cnf);
    const auto run = net.run_until([&master] { return master.done(); }, 2000);

    std::cout << label << ": " << cnf.variables << " vars, "
              << cnf.clauses.size() << " clauses, faults {"
              << scenario.describe() << "}\n";
    if (!run.completed) {
        std::cout << "  did not finish within the round budget\n\n";
        return false;
    }
    std::cout << "  " << (master.satisfiable() ? "SAT" : "UNSAT") << " after "
              << run.rounds << " rounds, " << net.metrics().packets_sent
              << " packets";
    const auto sequential = dpll(cnf);
    std::cout << " (sequential DPLL agrees: "
              << (sequential.satisfiable == master.satisfiable() ? "yes" : "NO!")
              << ")\n";
    if (master.satisfiable()) {
        std::cout << "  model:";
        for (std::size_t v = 1; v <= std::min<std::size_t>(cnf.variables, 16); ++v)
            std::cout << ' ' << (master.model()[v] > 0 ? "" : "-") << 'x' << v;
        if (cnf.variables > 16) std::cout << " ...";
        std::cout << "  (verified against every clause)\n";
    }
    std::cout << '\n';
    return sequential.satisfiable == master.satisfiable();
}

} // namespace

int main(int argc, char** argv) {
    const auto vars =
        argc > 1 ? static_cast<std::uint32_t>(std::strtoul(argv[1], nullptr, 10)) : 14;
    const auto clauses =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : vars * 43ull / 10;
    const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 5;

    std::cout << "Cube-and-conquer SAT over a 5x5 stochastic NoC\n\n";
    bool ok = true;
    ok &= run_instance("random 3-SAT", random_ksat(vars, clauses, 3, seed),
                       FaultScenario::none(), seed);
    ok &= run_instance("pigeonhole PHP(4,3) [always UNSAT]", pigeonhole(3),
                       FaultScenario::none(), seed);
    FaultScenario noisy;
    noisy.p_upset = 0.4;
    ok &= run_instance("random 3-SAT under 40% data upsets",
                       random_ksat(vars, clauses, 3, seed + 1), noisy, seed + 1);
    return ok ? 0 : 1;
}
