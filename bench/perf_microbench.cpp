// google-benchmark microbenchmarks of the hot paths: CRC, packet codec,
// a full gossip round, FFT and MDCT kernels.  Not a paper figure — this
// guards the simulator's own performance.
#include <benchmark/benchmark.h>

#include <memory>

#include "apps/fft.hpp"
#include "apps/mdct.hpp"
#include "core/engine.hpp"
#include "noc/crc.hpp"
#include "noc/packet.hpp"

namespace {

using namespace snoc;

void BM_Crc32(benchmark::State& state) {
    std::vector<std::byte> data(static_cast<std::size_t>(state.range(0)),
                                std::byte{0x5A});
    for (auto _ : state)
        benchmark::DoNotOptimize(crc::crc32(std::span<const std::byte>(data)));
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(64)->Arg(1024)->Arg(65536);

void BM_PacketEncodeDecode(benchmark::State& state) {
    Message m;
    m.id = MessageId{3, 9};
    m.payload.assign(static_cast<std::size_t>(state.range(0)), std::byte{0x42});
    for (auto _ : state) {
        auto p = Packet::encode(m);
        benchmark::DoNotOptimize(p.decode());
    }
}
BENCHMARK(BM_PacketEncodeDecode)->Arg(32)->Arg(512)->Arg(4096);

class BroadcastSource final : public IpCore {
public:
    void on_start(TileContext& ctx) override {
        ctx.send(kBroadcast, 1, std::vector<std::byte>(32, std::byte{1}));
    }
    void on_message(const Message&, TileContext&) override {}
};

void BM_GossipRound(benchmark::State& state) {
    const auto side = static_cast<std::size_t>(state.range(0));
    GossipConfig c;
    c.forward_p = 0.5;
    c.default_ttl = 1000; // keep the rumor alive through the benchmark
    for (auto _ : state) {
        state.PauseTiming();
        GossipNetwork net(Topology::mesh(side, side), c, FaultScenario::none(), 1);
        net.attach(0, std::make_unique<BroadcastSource>());
        for (int i = 0; i < 5; ++i) net.step(); // warm the spread up
        state.ResumeTiming();
        for (int i = 0; i < 10; ++i) net.step();
    }
    state.SetItemsProcessed(state.iterations() * 10);
}
BENCHMARK(BM_GossipRound)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMicrosecond);

void BM_Fft(benchmark::State& state) {
    std::vector<apps::Complex> v(static_cast<std::size_t>(state.range(0)));
    for (std::size_t i = 0; i < v.size(); ++i)
        v[i] = apps::Complex(static_cast<double>(i % 7), 0.0);
    for (auto _ : state) {
        auto copy = v;
        apps::fft(copy);
        benchmark::DoNotOptimize(copy.data());
    }
}
BENCHMARK(BM_Fft)->Arg(256)->Arg(1024)->Arg(4096);

void BM_Mdct(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    apps::Mdct mdct(n);
    std::vector<double> window(2 * n, 0.25);
    for (auto _ : state) benchmark::DoNotOptimize(mdct.forward(window));
}
BENCHMARK(BM_Mdct)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
