# Empty dependencies file for pi_master_slave.
# This may be replaced when dependencies are built.
