file(REMOVE_RECURSE
  "CMakeFiles/test_islands.dir/test_islands.cpp.o"
  "CMakeFiles/test_islands.dir/test_islands.cpp.o.d"
  "test_islands"
  "test_islands.pdb"
  "test_islands[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_islands.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
