#pragma once
// Mini registry header in the real file's shape.  "Orphan" is listed but
// never bumped anywhere, and its wire name is absent from both committed
// exposition goldens.
#define SNOC_METRIC_LIST(X)                        \
    X(counter, Used, "snoc_used_total",            \
      "A metric something actually feeds")         \
    X(counter, Orphan, "snoc_orphan_total",        \
      "A metric nothing feeds")
enum class MetricId {
#define SNOC_METRIC(kind, name, wire, help) name,
    SNOC_METRIC_LIST(SNOC_METRIC)
#undef SNOC_METRIC
};
