file(REMOVE_RECURSE
  "CMakeFiles/test_crc.dir/test_crc.cpp.o"
  "CMakeFiles/test_crc.dir/test_crc.cpp.o.d"
  "test_crc"
  "test_crc.pdb"
  "test_crc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
