// The layered router core: one per-tile switch pipeline composed from
// the orthogonal stages of this module —
//
//   ports       (router/ports.hpp — the Topology's port vocabulary)
//   policy      (router/policy.hpp — where may a packet go next)
//   arbitration (router/arbiter.hpp — who wins a contended output)
//   accounting  (router/accounting.hpp — counters + trace events)
//
// — plus the flow-control schemes implemented here: store-and-forward
// (a packet is re-transmitted only after it has fully arrived; per-hop
// latency = the full serialization time) and virtual cut-through (the
// header may be switched one cycle after it arrives, with the tail
// streaming behind; per-hop latency ~ 1 cycle, the tail trailing by the
// packet length).  Wormhole flit streaming (src/wormhole) and bufferless
// deflection (src/bus/deflection.*) are the other two flow-control
// schemes of the zoo; they compose the same stages around their own
// buffering rules.
//
// The core is packet-granular and cycle-timed, and fully deterministic:
// no RNG, ascending tile/port scans, rotating arbiters (DESIGN.md §13
// states the stage contracts).
#pragma once

#include <cstdint>
#include <deque>
#include <iterator>
#include <memory>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "fault/injector.hpp"
#include "noc/topology.hpp"
#include "router/accounting.hpp"
#include "router/arbiter.hpp"
#include "router/policy.hpp"
#include "sim/trace.hpp"

namespace snoc::router {

/// The flow-control schemes the core implements directly.  (The other
/// members of the zoo — wormhole flit streaming, bufferless deflection —
/// live in their own modules on the same stages.)
#define SNOC_FLOW_CONTROL_LIST(X)                                              \
    X(StoreAndForward, "store-and-forward") /* forward only complete packets */\
    X(CutThrough, "cut-through")            /* forward once the header lands */

enum class FlowControl : std::uint8_t {
#define SNOC_FLOW_CONTROL_ENUM(name, str) name,
    SNOC_FLOW_CONTROL_LIST(SNOC_FLOW_CONTROL_ENUM)
#undef SNOC_FLOW_CONTROL_ENUM
};

inline constexpr const char* kFlowControlNames[] = {
#define SNOC_FLOW_CONTROL_NAME(name, str) str,
    SNOC_FLOW_CONTROL_LIST(SNOC_FLOW_CONTROL_NAME)
#undef SNOC_FLOW_CONTROL_NAME
};

constexpr const char* to_string(FlowControl f) {
    const auto i = static_cast<std::size_t>(f);
    return i < std::size(kFlowControlNames) ? kFlowControlNames[i] : "?";
}

struct RouterConfig {
    FlowControl flow{FlowControl::StoreAndForward};
    PolicyKind policy{PolicyKind::DimensionOrder};
    std::size_t flits_per_packet{5}; ///< link serialization time, cycles/hop.
    std::size_t buffer_packets{4};   ///< input-FIFO capacity, in packets.
    std::size_t max_hops{256};       ///< hop budget (detour livelock guard).
    /// DeadlockSentinel watchdog: consecutive zero-progress cycles (with
    /// packets outstanding) before the sentinel fires.  0 = auto, sized so
    /// every in-flight tail has time to finish streaming first.  The
    /// sentinel is compiled out entirely at SNOC_CHECK_LEVEL 0.
    std::size_t stall_limit{0};
    /// Set when static analysis (snoc_verify) proved this configuration's
    /// channel dependency graph acyclic: the sentinel firing anyway is
    /// then an invariant violation, not a telemetry event, and throws
    /// ContractViolation.
    bool expect_deadlock_free{false};

    void validate() const;
};

struct PacketRecord {
    std::uint32_t id{0};
    TileId source{0};
    TileId destination{0};
    std::size_t bits{0};
    std::size_t injected_cycle{0};
    std::optional<std::size_t> delivered_cycle;
    std::size_t hops{0};  ///< link traversals (minimal + detours).
    bool dropped{false};  ///< crash-dropped or hop budget exhausted.
};

/// A mesh of identical routers, stepped one link cycle at a time.
class RouterCore {
public:
    RouterCore(Topology topo, RouterConfig config);
    /// Wire an explicit policy object instead of make_policy(config.policy)
    /// — how snoc_verify's mutation probes run deliberately-broken turn
    /// sets through the real pipeline.  `policy` must not be null.
    RouterCore(Topology topo, RouterConfig config,
               std::unique_ptr<const RoutingPolicy> policy);

    /// Apply a crash pattern: dead tiles accept nothing (injections at
    /// them crash-drop immediately), dead links carry nothing.
    void apply_crashes(const CrashState& crashes);

    /// Queue a packet at `source`'s injection port (one packet enters the
    /// local input FIFO per cycle as space frees up).
    std::uint32_t inject(TileId source, TileId destination, std::size_t bits);

    /// Advance one link cycle: injection, head-of-line fate resolution
    /// (crash / TTL drops), per-output switch arbitration, then the moves.
    void step();
    void run(std::size_t cycles);

    std::size_t cycle() const { return cycle_; }
    std::size_t delivered() const { return delivered_; }
    std::size_t dropped() const { return dropped_; }
    /// Packets injected but not yet delivered or dropped.
    std::size_t in_flight() const { return outstanding_; }
    bool idle() const { return outstanding_ == 0; }

    /// DeadlockSentinel observables (always false/0 in a level-0 build):
    /// the watchdog fires after `stall_limit` consecutive cycles with
    /// packets outstanding and zero progress — no admission, no move, no
    /// ejection, no drop.  run() stops stepping once it has fired.
    bool sentinel_fired() const { return sentinel_fired_; }
    /// Current zero-progress streak (resets whenever anything moves).
    std::size_t stalled_cycles() const { return stalled_cycles_; }
    /// The resolved watchdog threshold (config value, or the auto size).
    std::size_t stall_limit() const { return stall_limit_; }

    const std::vector<PacketRecord>& records() const { return records_; }
    const Topology& topology() const { return topo_; }
    const RouterConfig& config() const { return config_; }
    const RoutingPolicy& policy() const { return *policy_; }

    /// Full shared-accounting metrics (per-round/tile/link histograms
    /// included); rounds are link cycles.
    const NetworkMetrics& metrics() const { return accounting_.metrics(); }
    void set_trace_sink(TraceSink* sink) { accounting_.set_trace_sink(sink); }

    /// The rotating arbiter at (tile, output); output indexes follow the
    /// neighbour list with the ejection port last.  Slot indexes are the
    /// input ports, local injection last — the fairness observables the
    /// starvation-freedom stress test reads.
    const RotatingArbiter& arbiter(TileId t, std::size_t output) const;

private:
    /// One packet resident in (or streaming into) an input FIFO.
    struct Buffered {
        std::uint32_t id{0};
        TileId from{kNoTile};    ///< upstream neighbour (kNoTile = source).
        std::size_t head_at{0};  ///< cycle the header arrived.
        std::size_t full_at{0};  ///< cycle the tail arrived / arrives.
    };

    std::size_t input_count(TileId t) const { return topo_.neighbours(t).size() + 1; }
    std::size_t local_port(TileId t) const { return topo_.neighbours(t).size(); }
    std::size_t output_count(TileId t) const { return topo_.neighbours(t).size() + 1; }
    std::size_t eject_port(TileId t) const { return topo_.neighbours(t).size(); }

    bool head_ready(const Buffered& head) const;
    /// First viable-and-available candidate output for `head` at `t`:
    /// policy preference order, filtered by crashes, link occupancy and
    /// downstream buffer space (including slots committed this cycle).
    std::optional<std::size_t> choose_output(TileId t, const Buffered& head) const;
    void drop_head(TileId t, std::size_t in_port, bool ttl);
    void resolve_head_fates(TileId t, std::size_t in_port);

    Topology topo_;
    RouterConfig config_;
    std::unique_ptr<const RoutingPolicy> policy_;
    std::vector<bool> dead_tiles_;
    std::vector<bool> dead_links_;

    std::vector<std::vector<std::deque<Buffered>>> in_;    ///< [tile][input].
    std::vector<std::vector<RotatingArbiter>> arbiters_;   ///< [tile][output].
    std::vector<std::vector<std::size_t>> link_free_at_;   ///< [tile][link out].
    std::vector<std::deque<std::uint32_t>> pending_;       ///< injection queues.
    /// Downstream FIFO slots committed during the current decide phase
    /// ([tile][input]); cleared every cycle.
    std::vector<std::vector<std::size_t>> committed_;

    std::vector<PacketRecord> records_;
    std::size_t cycle_{0};
    std::size_t delivered_{0};
    std::size_t dropped_{0};
    std::size_t outstanding_{0};
    std::size_t stall_limit_{0};    ///< resolved watchdog threshold.
    std::size_t stalled_cycles_{0}; ///< current zero-progress streak.
    bool sentinel_fired_{false};
    Accounting accounting_;
};

} // namespace snoc::router
