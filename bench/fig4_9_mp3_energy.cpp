// Figure 4-9: energy dissipation of the MP3 application vs. the
// forwarding probability p (at p_upset = 0).
//
// Expected shape: energy grows almost linearly with p — the total packet
// count is dictated by p (Eq. 3), which is exactly the latency/energy
// trade-off knob the thesis advertises.
#include <iostream>

#include "apps/mp3_app.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
    using namespace snoc;
    const auto opt = bench::options(argc, argv, 5);
    const auto tech = Technology::cmos_025um();
    const std::vector<double> kPs{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};

    apps::Mp3Config cfg;
    cfg.frame_samples = 64;
    cfg.frame_count = 12;
    cfg.frame_interval = 2;
    cfg.band_count = 8;
    cfg.frame_budget_bits = 400;
    cfg.reservoir_capacity = 800;

    Table table({"p", "energy [J]", "packets", "latency [rounds]", "completion"});
    double first_energy = 0.0, last_energy = 0.0;
    Regression linearity;
    struct Trial {
        bool completed{false};
        double rounds{0.0}, joules{0.0}, packets{0.0};
    };
    for (double p : kPs) {
        const auto trials = run_trials(
            opt.repeats,
            [&](std::uint64_t seed) {
                GossipNetwork net(Topology::mesh(4, 4), bench::config_with_p(p, 40),
                                  FaultScenario::none(), seed,
                                  bench::engine_select(opt));
                auto& output = apps::deploy_mp3(net, cfg);
                const auto r =
                    net.run_until([&output] { return output.complete(); }, 4000);
                Trial out;
                if (!r.completed) return out;
                out.completed = true;
                out.rounds = static_cast<double>(r.rounds);
                net.drain(); // energy runs until every rumor's TTL expires
                out.joules = static_cast<double>(net.metrics().bits_sent) *
                             tech.link_ebit_joules;
                out.packets = static_cast<double>(net.metrics().packets_sent);
                return out;
            },
            opt.jobs);
        Accumulator joules, packets, rounds;
        std::size_t completed = 0;
        for (const Trial& t : trials) {
            if (!t.completed) continue;
            ++completed;
            rounds.add(t.rounds);
            joules.add(t.joules);
            packets.add(t.packets);
        }
        table.add_row({format_number(p, 1),
                       completed ? format_sci(joules.mean(), 3) : "-",
                       completed ? format_number(packets.mean(), 0) : "-",
                       completed ? format_number(rounds.mean(), 0) : "DNF",
                       format_number(100.0 * completed / opt.repeats, 0) + "%"});
        if (completed) {
            if (first_energy == 0.0) first_energy = joules.mean();
            last_energy = joules.mean();
            linearity.add(p, joules.mean());
        }
    }
    bench::emit(table, opt, "Fig. 4-9: MP3 energy dissipation vs p");
    std::cout << "\nenergy(p=1)/energy(p~0.1) = "
              << format_number(last_energy / first_energy, 1)
              << " (approximately linear growth expected)\n";
    if (linearity.count() >= 2) {
        const auto fit = linearity.fit();
        std::cout << "linear fit: E = " << format_sci(fit.slope, 2) << " * p + "
                  << format_sci(fit.intercept, 2)
                  << ", r^2 = " << format_number(fit.r_squared, 5)
                  << " (paper: 'increases almost linearly')\n";
    }
    return 0;
}
