# Empty dependencies file for test_mp3_app.
# This may be replaced when dependencies are built.
