// Minimal command-line option parsing for the bench and example binaries.
//
// Supports `--flag`, `--key=value` and `--key value`; anything else is a
// positional argument.  Unknown flags are collected so callers can reject
// them with a usage string (benches accept a uniform set: --csv,
// --repeats=N, --seed=N, --jobs=N).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace snoc {

class CliArgs {
public:
    CliArgs(int argc, char** argv);

    /// True if `--name` appeared (with or without a value).
    bool has(const std::string& name) const;

    /// Value of `--name=value` / `--name value`; nullopt if absent or bare.
    std::optional<std::string> value(const std::string& name) const;

    /// Typed accessors with defaults.
    std::uint64_t get_u64(const std::string& name, std::uint64_t fallback) const;
    double get_double(const std::string& name, double fallback) const;
    std::string get_string(const std::string& name, std::string fallback) const;

    const std::vector<std::string>& positional() const { return positional_; }
    const std::string& program() const { return program_; }

    /// Option names seen that are not in `known` (for usage errors).
    std::vector<std::string> unknown_options(
        const std::vector<std::string>& known) const;

private:
    std::string program_;
    std::map<std::string, std::optional<std::string>> options_;
    std::vector<std::string> positional_;
};

/// Worker count for the parallel trial fan-out (common/parallel.hpp):
/// `--jobs N` beats the SNOC_JOBS environment variable beats the
/// hardware concurrency.  Always >= 1; `--jobs 1` forces serial runs.
std::size_t resolve_jobs(const CliArgs& args);

/// Telemetry export destinations (plain paths — this lives below the
/// telemetry layer so BenchOptions and ExperimentSpec can carry it
/// without a layering inversion).  Empty path = that exporter is off;
/// with everything off, tracing never attaches a sink and costs nothing.
struct TelemetryOptions {
    std::string trace_jsonl_out; ///< --trace-out: JSONL event dump.
    std::string chrome_out;      ///< --chrome-out: Chrome trace_event JSON.
    std::string heatmap_out;     ///< --heatmap-out: per-tile CSV (+ .links.csv).
    bool manifest{false};        ///< --manifest: write run manifests next to
                                 ///< every exported artifact.
    std::size_t grid_width{0};   ///< --grid-width: adds x,y heatmap columns.

    /// --postmortem-out: arm a flight recorder per trial and dump a
    /// `*.postmortem.jsonl` bundle there when a contract violation,
    /// invariant-auditor finding or deadlock-sentinel firing aborts the
    /// trial.  Cheap enough to leave on for real sweeps.
    std::string postmortem_out;
    /// --flight-capacity: newest events kept per flight-recorder lane.
    std::size_t flight_capacity{4096};
    /// --heartbeat-out: stream JSONL progress heartbeats here (snoc_top
    /// tails this file).
    std::string heartbeat_out;
    /// --heartbeat-every: emit a heartbeat every N completed trials
    /// (cell and sweep boundaries always emit; 0 = boundaries only).
    std::size_t heartbeat_every{1};
    /// --metrics-out: write MetricsRegistry snapshots at sweep end —
    /// `<path>` gets the JSON exposition, `<path>.prom` the Prometheus
    /// text exposition.
    std::string metrics_out;
    /// Path of the --prof-out profile dump, echoed into run manifests so
    /// the profile stays attributable to the run that produced it (set by
    /// parse_bench_options; the dump itself is written by bench_util's
    /// atexit hook).
    std::string prof_out_ref;

    bool enabled() const {
        return !trace_jsonl_out.empty() || !chrome_out.empty() ||
               !heatmap_out.empty();
    }
    /// Any trial-side observability requested (tracing or post-mortems)?
    bool observes_trials() const {
        return enabled() || !postmortem_out.empty();
    }
};

/// Which round-execution engine drives a GossipNetwork.  A plain enum
/// living below the core layer (same reasoning as TelemetryOptions above)
/// so BenchOptions, ExperimentSpec and GossipSpec can carry the choice
/// without a layering inversion; core/event_engine.hpp implements it.
enum class EngineKind : std::uint8_t {
    Lockstep, ///< reference engine: every tile visited every round.
    Event,    ///< sparse active-set engine, optionally sharded.
};

const char* to_string(EngineKind kind);
/// Parse "lockstep" / "event"; nullopt on anything else.
std::optional<EngineKind> engine_kind_from_string(std::string_view name);

/// Engine choice plus intra-trial shard workers for one GossipNetwork.
/// `shards` only matters for the event engine: the mesh is partitioned
/// into that many contiguous tile strips executed on the shared
/// ThreadPool.  Results are byte-identical for any shard count.
struct EngineSelect {
    EngineKind kind{EngineKind::Lockstep};
    std::size_t shards{1};
};

/// `--engine lockstep|event` beats the SNOC_ENGINE environment variable
/// beats the lockstep default.  ContractViolation on unknown names.
EngineKind resolve_engine(const CliArgs& args);

/// The uniform flag set every bench binary accepts, parsed in exactly one
/// place: --csv | --json (table output format), --repeats=N, --jobs=N,
/// --seed=N, --engine=lockstep|event, plus the telemetry/profiling flags
/// (--trace-out=PATH, --chrome-out=PATH, --heatmap-out=PATH,
/// --grid-width=N, --manifest, --prof).  Benches with extra flags
/// construct CliArgs themselves and call the CliArgs overload.
struct BenchOptions {
    bool csv{false};
    bool json{false};
    std::size_t repeats{1};   ///< --repeats, else the bench's default (> 0).
    std::size_t jobs{1};      ///< resolved worker count (resolve_jobs).
    std::uint64_t seed{0};    ///< --seed base seed for the sweep.
    /// --engine: which engine gossip-backed runs construct (resolve_engine).
    EngineKind engine{EngineKind::Lockstep};
    TelemetryOptions telemetry; ///< export destinations, off by default.
    bool prof{false};         ///< --prof: simulator wall-clock profile report.
    /// --prof-out: also dump the profile as deterministic-schema JSON
    /// (referenced from run manifests); implies --prof.
    std::string prof_out;
};

BenchOptions parse_bench_options(const CliArgs& args, std::size_t default_repeats);
BenchOptions parse_bench_options(int argc, char** argv, std::size_t default_repeats);

} // namespace snoc
