file(REMOVE_RECURSE
  "CMakeFiles/test_xy.dir/test_xy.cpp.o"
  "CMakeFiles/test_xy.dir/test_xy.cpp.o.d"
  "test_xy"
  "test_xy.pdb"
  "test_xy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
