#include "apps/master_slave_pi.hpp"

#include <memory>

#include "apps/payload.hpp"
#include "common/expect.hpp"

namespace snoc::apps {

double pi_partial_sum(std::uint64_t first, std::uint64_t last, std::uint64_t terms) {
    SNOC_EXPECT(first <= last);
    SNOC_EXPECT(terms > 0);
    const double n = static_cast<double>(terms);
    double acc = 0.0;
    for (std::uint64_t i = first; i < last; ++i) {
        const double x = (static_cast<double>(i) + 0.5) / n;
        acc += 4.0 / (1.0 + x * x);
    }
    return acc / n;
}

double pi_reference(std::uint64_t terms) { return pi_partial_sum(0, terms, terms); }

// --------------------------------------------------------------------------
PiMasterIp::PiMasterIp(std::size_t slave_count, std::uint64_t terms,
                       std::vector<TileId> slave_tiles)
    : slave_count_(slave_count),
      terms_(terms),
      slave_tiles_(std::move(slave_tiles)),
      have_(slave_count, false),
      partials_(slave_count, 0.0) {
    SNOC_EXPECT(slave_count > 0);
    SNOC_EXPECT(terms >= slave_count);
    SNOC_EXPECT(slave_tiles_.empty() || slave_tiles_.size() == slave_count);
}

void PiMasterIp::on_start(TileContext& ctx) {
    // Work assignments travel as broadcast rumors carrying the task id:
    // the master does not know (or care) which tiles host which slaves,
    // or how many replicas each task has.
    for (std::uint32_t task = 0; task < slave_count_; ++task) {
        const std::uint64_t lo = terms_ * task / slave_count_;
        const std::uint64_t hi = terms_ * (task + 1) / slave_count_;
        PayloadWriter w;
        w.put<std::uint32_t>(task);
        w.put<std::uint64_t>(lo);
        w.put<std::uint64_t>(hi);
        w.put<std::uint64_t>(terms_);
        const TileId dst = slave_tiles_.empty() ? kBroadcast : slave_tiles_[task];
        ctx.send(dst, kPiWorkTag, w.take());
    }
}

void PiMasterIp::on_message(const Message& message, TileContext& ctx) {
    if (message.tag != kPiResultTag || done_) return;
    PayloadReader r(message.payload);
    const auto task = r.get<std::uint32_t>();
    const auto value = r.get<double>();
    if (task >= slave_count_ || have_[task]) return;
    have_[task] = true;
    partials_[task] = value;
    if (++received_ == slave_count_) {
        done_ = true;
        completion_round_ = ctx.round();
    }
}

double PiMasterIp::pi() const {
    SNOC_EXPECT(done_);
    double acc = 0.0;
    for (double p : partials_) acc += p;
    return acc;
}

// --------------------------------------------------------------------------
PiSlaveIp::PiSlaveIp(std::uint32_t task, TileId master_tile)
    : task_(task), master_(master_tile) {}

void PiSlaveIp::on_message(const Message& message, TileContext& ctx) {
    if (message.tag != kPiWorkTag || answered_) return;
    PayloadReader r(message.payload);
    const auto task = r.get<std::uint32_t>();
    if (task != task_) return; // assignment for a different slave
    const auto lo = r.get<std::uint64_t>();
    const auto hi = r.get<std::uint64_t>();
    const auto terms = r.get<std::uint64_t>();
    const double partial = pi_partial_sum(lo, hi, terms);

    PayloadWriter w;
    w.put<std::uint32_t>(task_);
    w.put<double>(partial);
    // Replicas of this task emit *the same rumor* (identical id + payload),
    // so duplication adds fault-tolerance without adding unique messages.
    ctx.send_with_id(MessageId{TileContext::replica_origin(task_), 0}, master_,
                     kPiResultTag, w.take());
    answered_ = true;
}

// --------------------------------------------------------------------------
namespace {

/// Tiles hosting the primary slaves / the replicas on a 5x5 grid with the
/// master at the centre: primaries on the 8-neighbourhood ring, replicas
/// on the outer ring corners/edges (Fig. 4-2's P1..P8 placement).
const std::vector<TileId> kPrimarySlaves = {6, 7, 8, 11, 13, 16, 17, 18};
const std::vector<TileId> kReplicaSlaves = {0, 2, 4, 10, 14, 20, 22, 24};

} // namespace

PiMasterIp& deploy_pi(GossipNetwork& net, const PiDeployment& d) {
    SNOC_EXPECT(net.topology().node_count() >= 25);
    SNOC_EXPECT(d.slave_count <= kPrimarySlaves.size());
    std::vector<TileId> direct_tiles;
    if (d.direct_addressing)
        direct_tiles.assign(kPrimarySlaves.begin(),
                            kPrimarySlaves.begin() +
                                static_cast<std::ptrdiff_t>(d.slave_count));
    auto master =
        std::make_unique<PiMasterIp>(d.slave_count, d.terms, std::move(direct_tiles));
    PiMasterIp& ref = *master;
    net.attach(d.master_tile, std::move(master));
    for (std::uint32_t task = 0; task < d.slave_count; ++task) {
        net.attach(kPrimarySlaves[task], std::make_unique<PiSlaveIp>(task, d.master_tile));
        if (d.duplicate_slaves)
            net.attach(kReplicaSlaves[task],
                       std::make_unique<PiSlaveIp>(task, d.master_tile));
    }
    return ref;
}

TrafficTrace pi_trace(const PiDeployment& d) {
    // Message sizes mirror the payloads above (plus header framing).
    constexpr std::size_t kWorkBits = (4 + 8 + 8 + 8) * 8;
    constexpr std::size_t kResultBits = (4 + 8) * 8;
    TrafficTrace trace;
    TrafficPhase work, results;
    for (std::uint32_t task = 0; task < d.slave_count; ++task) {
        work.messages.push_back({d.master_tile, kPrimarySlaves[task], kWorkBits});
        results.messages.push_back({kPrimarySlaves[task], d.master_tile, kResultBits});
    }
    trace.phases.push_back(std::move(work));
    trace.phases.push_back(std::move(results));
    return trace;
}

} // namespace snoc::apps
