// Parallel SAT solving over stochastic communication.
//
// Sec. 4 opening: "Stochastic communication can have wide applicability,
// ranging from parallel SAT solvers and multimedia applications to
// periodic data acquisition from non-critical sensors."  This module
// makes the first of those concrete: a from-scratch DPLL solver (unit
// propagation + pure-literal elimination + branching) and a
// cube-and-conquer master/slave scheme — the master fixes the first k
// variables into 2^k cubes, broadcasts them as work rumors, slaves solve
// their cube under assumptions and gossip back SAT (with a model) or
// UNSAT; the master answers SAT on the first model, UNSAT once every cube
// failed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/ip_core.hpp"

namespace snoc::apps {

/// A literal: positive var v is +v, negated is -v (DIMACS style, v >= 1).
using Literal = std::int32_t;
using Clause = std::vector<Literal>;

struct Cnf {
    std::uint32_t variables{0};
    std::vector<Clause> clauses;
};

/// tri-state assignment: 0 unassigned, +1 true, -1 false (index = var).
using Assignment = std::vector<std::int8_t>;

/// Does `assignment` (total or partial) satisfy every clause?
bool satisfies(const Cnf& cnf, const Assignment& assignment);

struct SatResult {
    bool satisfiable{false};
    Assignment model; ///< valid iff satisfiable.
    std::size_t decisions{0};
    std::size_t propagations{0};
};

/// Complete DPLL search; `assumptions` pre-assigns literals (the cube).
SatResult dpll(const Cnf& cnf, const std::vector<Literal>& assumptions = {});

/// Brute-force oracle for tests (variables <= 24).
bool brute_force_satisfiable(const Cnf& cnf);

/// Deterministic random k-SAT instance.
Cnf random_ksat(std::uint32_t variables, std::size_t clauses, std::size_t k,
                std::uint64_t seed);

/// Pigeonhole principle PHP(n+1, n): always UNSAT, classically hard.
Cnf pigeonhole(std::uint32_t holes);

/// DIMACS CNF interchange ("p cnf <vars> <clauses>", 0-terminated
/// clauses, 'c' comment lines) — parse throws ContractViolation on
/// malformed input; the pair round-trips.
Cnf parse_dimacs(std::istream& in);
Cnf parse_dimacs(const std::string& text);
std::string to_dimacs(const Cnf& cnf);

/// --- NoC deployment -----------------------------------------------------

inline constexpr std::uint32_t kSatWorkTag = 0x53415457;   // 'SATW'
inline constexpr std::uint32_t kSatResultTag = 0x53415452; // 'SATR'

class SatMasterIp final : public IpCore {
public:
    /// 2^split_vars cubes are distributed; slave `i` owns cube `i`.
    SatMasterIp(Cnf cnf, std::uint32_t split_vars);

    void on_start(TileContext& ctx) override;
    void on_message(const Message& message, TileContext& ctx) override;

    bool done() const { return done_; }
    bool satisfiable() const;
    const Assignment& model() const;
    std::optional<Round> completion_round() const { return completion_round_; }

private:
    Cnf cnf_;
    std::uint32_t split_vars_;
    std::size_t cubes_;
    std::vector<bool> answered_;
    std::size_t unsat_count_{0};
    bool done_{false};
    bool satisfiable_{false};
    Assignment model_;
    std::optional<Round> completion_round_;
};

class SatSlaveIp final : public IpCore {
public:
    /// The slave owns `cube` and solves the shared formula under it.
    SatSlaveIp(Cnf cnf, std::uint32_t cube, TileId master_tile);

    void on_message(const Message& message, TileContext& ctx) override;

private:
    Cnf cnf_;
    std::uint32_t cube_;
    TileId master_;
    bool answered_{false};
};

struct SatDeployment {
    TileId master_tile{12};
    std::uint32_t split_vars{3}; ///< 8 cubes on the 8-slave ring.
};

/// Attach master + 2^split_vars slaves onto a 5x5 mesh network.
SatMasterIp& deploy_sat(GossipNetwork& net, Cnf cnf,
                        const SatDeployment& deployment = {});

} // namespace snoc::apps
