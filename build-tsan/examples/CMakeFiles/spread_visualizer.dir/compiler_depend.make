# Empty compiler generated dependencies file for spread_visualizer.
# This may be replaced when dependencies are built.
