#include "apps/trace_app.hpp"

#include <gtest/gtest.h>

namespace snoc::apps {
namespace {

GossipConfig default_config() {
    GossipConfig c;
    c.forward_p = 0.75;
    c.default_ttl = 30;
    return c;
}

TrafficTrace simple_trace() {
    TrafficTrace trace;
    TrafficPhase a, b;
    a.messages.push_back({0, 15, 256});
    a.messages.push_back({3, 12, 256});
    b.messages.push_back({15, 0, 128});
    trace.phases.push_back(a);
    trace.phases.push_back(b);
    return trace;
}

TEST(TraceDriver, CompletesSimpleTrace) {
    GossipNetwork net(Topology::mesh(4, 4), default_config(), FaultScenario::none(), 1);
    TraceDriver driver(net, simple_trace());
    EXPECT_FALSE(driver.complete());
    const auto result = net.run_until([&driver] { return driver.complete(); }, 300);
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(driver.delivered_messages(), 3u);
}

TEST(TraceDriver, PhasesAreOrdered) {
    // Phase 2 cannot finish before phase 1: track the phase counter.
    GossipNetwork net(Topology::mesh(4, 4), default_config(), FaultScenario::none(), 2);
    TraceDriver driver(net, simple_trace());
    std::size_t last_phase = 0;
    while (!driver.complete() && net.round() < 300) {
        EXPECT_GE(driver.current_phase(), last_phase);
        last_phase = driver.current_phase();
        net.step();
    }
    EXPECT_TRUE(driver.complete());
}

TEST(TraceDriver, EmptyTraceIsInstantlyComplete) {
    GossipNetwork net(Topology::mesh(4, 4), default_config(), FaultScenario::none(), 3);
    TraceDriver driver(net, TrafficTrace{});
    EXPECT_TRUE(driver.complete());
}

TEST(TraceDriver, ManyPhasesPipeline) {
    TrafficTrace trace;
    for (int f = 0; f < 10; ++f) {
        TrafficPhase p;
        p.messages.push_back({0, 5, 64});
        p.messages.push_back({5, 10, 64});
        trace.phases.push_back(p);
    }
    GossipNetwork net(Topology::mesh(4, 4), default_config(), FaultScenario::none(), 4);
    TraceDriver driver(net, trace);
    const auto result = net.run_until([&driver] { return driver.complete(); }, 2000);
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(driver.delivered_messages(), 20u);
}

TEST(TraceDriver, SurvivesUpsets) {
    FaultScenario s;
    s.p_upset = 0.4;
    GossipConfig c = default_config();
    c.default_ttl = 60;
    GossipNetwork net(Topology::mesh(4, 4), c, s, 5);
    TraceDriver driver(net, simple_trace());
    const auto result = net.run_until([&driver] { return driver.complete(); }, 2000);
    EXPECT_TRUE(result.completed);
}

TEST(TraceDriver, RejectsOutOfRangeTiles) {
    GossipNetwork net(Topology::mesh(2, 2), default_config(), FaultScenario::none(), 6);
    TrafficTrace trace;
    TrafficPhase p;
    p.messages.push_back({0, 99, 8});
    trace.phases.push_back(p);
    EXPECT_THROW(TraceDriver(net, trace), ContractViolation);
}

TEST(TraceDriver, SelfMessageCountsAsDelivered) {
    // A tile sending to itself: the rumor is known at origin and never
    // delivered (the network filters self-rumors), so the driver must not
    // be used with src == dst; document by asserting the behaviour.
    TrafficTrace trace;
    TrafficPhase p;
    p.messages.push_back({0, 15, 64});
    trace.phases.push_back(p);
    GossipNetwork net(Topology::mesh(4, 4), default_config(), FaultScenario::none(), 7);
    TraceDriver driver(net, trace);
    net.run_until([&driver] { return driver.complete(); }, 300);
    EXPECT_TRUE(driver.complete());
}

} // namespace
} // namespace snoc::apps
