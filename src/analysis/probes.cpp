#include "analysis/probes.hpp"

#include "router/ports.hpp"

namespace snoc::analysis {

namespace {

bool tile_dead(const std::vector<bool>& dead, TileId t) {
    return !dead.empty() && dead[t];
}

} // namespace

std::vector<std::size_t> CyclicTurnPolicy::candidates(
    const Topology& topo, TileId at, TileId from, TileId dst,
    const std::vector<bool>& dead) const {
    (void)from;
    std::vector<std::size_t> out;
    if (at == dst) return out;
    const std::size_t x = topo.x_of(at), y = topo.y_of(at);
    const std::size_t dx = topo.x_of(dst), dy = topo.y_of(dst);
    // Every minimal direction, west still first in preference — but no
    // longer exclusive, so the forbidden turn-into-west reappears: a
    // packet may go north/south now and west later.
    const auto offer = [&](std::size_t nx, std::size_t ny) {
        const TileId next = topo.at(nx, ny);
        if (tile_dead(dead, next)) return;
        if (const auto p = router::port_to(topo, at, next)) out.push_back(*p);
    };
    if (dx < x) offer(x - 1, y);
    if (dx > x) offer(x + 1, y);
    if (dy > y) offer(x, y + 1);
    if (dy < y) offer(x, y - 1);
    return out;
}

DynamicProbeResult probe_dynamic_deadlock() {
    // A 2x2 mesh is the smallest ring the re-enabled turn closes; four
    // crossing two-hop flows with single-packet buffers wedge it.
    const auto make_config = [] {
        router::RouterConfig config;
        config.flits_per_packet = 1;
        config.buffer_packets = 1;
        config.max_hops = 4096; // the hop budget must not rescue the wedge.
        config.stall_limit = 64;
        return config;
    };
    const auto inject_ring = [](router::RouterCore& core) {
        // Tiles of mesh(2,2): 0=(0,0) 1=(1,0) 2=(0,1) 3=(1,1).  Each flow
        // crosses the ring diagonally, so every minimal route turns.
        for (std::size_t burst = 0; burst < 8; ++burst) {
            core.inject(0, 3, 64);
            core.inject(1, 2, 64);
            core.inject(3, 0, 64);
            core.inject(2, 1, 64);
        }
    };

    DynamicProbeResult result;
    {
        router::RouterCore core(Topology::mesh(2, 2), make_config(),
                                std::make_unique<CyclicTurnPolicy>());
        inject_ring(core);
        core.run(4096);
        result.wedged = !core.idle();
        result.sentinel_fired = core.sentinel_fired();
        result.stalled_cycles = core.stalled_cycles();
    }
    {
        auto config = make_config();
        config.policy = router::PolicyKind::DimensionOrder;
        router::RouterCore core(Topology::mesh(2, 2), config);
        inject_ring(core);
        core.run(4096);
        result.control_drained = core.idle();
        result.control_sentinel = core.sentinel_fired();
    }
    return result;
}

} // namespace snoc::analysis
