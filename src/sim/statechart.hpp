// A small hierarchical statechart engine (Harel, "Statecharts: a visual
// formalism for complex systems" — reference [20] of the thesis).
//
// The thesis implemented its case studies in Stateflow, "a formalism
// defined in [20], where a system is described by a hierarchical state
// machine with both parallel and exclusive states" (Fig. 4-1).  This
// module provides the same modelling substrate: composite states are
// either *exclusive* (XOR: exactly one child active) or *parallel* (AND:
// all children active), transitions carry event triggers, guards and
// actions, and events are processed run-to-completion.
//
// src/sim/gossip_statechart.* expresses the Fig. 3-4 tile algorithm in
// this formalism and the tests check it agrees with the native engine.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "common/expect.hpp"

namespace snoc::sc {

using StateId = std::size_t;
using EventId = std::uint32_t;

inline constexpr StateId kNoState = static_cast<StateId>(-1);

enum class Composition : std::uint8_t {
    Leaf,      ///< no children.
    Exclusive, ///< XOR: exactly one child active.
    Parallel,  ///< AND: all children active.
};

/// Payload-free event with an integer argument (enough for round numbers,
/// port indices and the like; richer data lives in the chart's context).
struct Event {
    EventId id{0};
    std::int64_t arg{0};
};

class Statechart;

/// A transition between sibling (or cross-hierarchy) states.
struct Transition {
    StateId from{kNoState};
    StateId to{kNoState};
    EventId trigger{0};
    std::function<bool(const Event&)> guard;   ///< optional.
    std::function<void(const Event&)> action;  ///< optional.
};

class Statechart {
public:
    /// Create a state; `parent == kNoState` makes it the root (only one).
    StateId add_state(std::string name, Composition composition,
                      StateId parent = kNoState);

    /// Designate the initial child of an exclusive composite.
    void set_initial(StateId composite, StateId child);

    /// Entry / exit hooks.
    void on_entry(StateId state, std::function<void()> hook);
    void on_exit(StateId state, std::function<void()> hook);

    void add_transition(Transition transition);

    /// Enter the initial configuration (runs entry hooks root-down).
    void start();

    /// Queue an event; `process()` drains run-to-completion.
    void post(Event event);
    void process();
    /// Convenience: post + process.
    void dispatch(Event event) {
        post(event);
        process();
    }

    bool started() const { return started_; }
    bool in(StateId state) const;
    /// Name of a state (for diagnostics).
    const std::string& name(StateId state) const;
    /// Currently active leaf states (sorted by id).
    std::vector<StateId> active_leaves() const;

private:
    struct State {
        std::string name;
        Composition composition{Composition::Leaf};
        StateId parent{kNoState};
        std::vector<StateId> children;
        StateId initial{kNoState};
        std::function<void()> entry;
        std::function<void()> exit;
    };

    void enter(StateId state);
    void exit(StateId state);
    bool fire_first_matching(const Event& event, std::vector<bool>& fired,
                             const std::vector<bool>& snapshot);
    bool is_ancestor(StateId maybe_ancestor, StateId state) const;
    /// Least common ancestor of two states.
    StateId lca(StateId a, StateId b) const;

    std::vector<State> states_;
    std::vector<Transition> transitions_;
    std::vector<bool> active_;
    StateId root_{kNoState};
    bool started_{false};
    std::queue<Event> queue_;
    bool processing_{false};
    // States exited while processing the current event: transitions out of
    // them are no longer eligible (a region fires at most once per event).
    std::vector<bool> exited_mark_;
};

} // namespace snoc::sc
